package ckdsl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/sym"
)

// Compile validates a parsed Spec ("registration") and lowers it to an
// executable engine checker. Registration failures are CompileErrors —
// the same failure class as parse errors, mirroring a CSA checker that
// does not build.
func Compile(spec *Spec) (*Compiled, error) {
	if err := validate(spec); err != nil {
		return nil, err
	}
	return &Compiled{spec: spec}, nil
}

// CompileSource parses and compiles DSL text in one step.
func CompileSource(src string) (*Compiled, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(spec)
}

// validate applies registration-time semantic checks: every sink must be
// fed by a compatible source, like a CSA checker whose callbacks
// reference program-state maps that were never registered.
func validate(spec *Spec) error {
	req := func(ok bool, line int, msg string) error {
		if ok {
			return nil
		}
		return &CompileError{Line: line, Msg: msg}
	}
	for _, sk := range spec.Sinks {
		var err error
		switch sk.Kind {
		case SinkDerefUnchecked:
			err = req(spec.yieldsAny("nullable"), sk.Line,
				"sink 'deref unchecked' requires a source yielding nullable")
		case SinkDerefFreed, SinkCallArgFreed:
			err = req(spec.hasSourceKind(SrcCallFrees), sk.Line,
				"freed-state sink requires a 'frees' source")
		case SinkCallArgLocked:
			err = req(spec.hasSourceKind(SrcCallLocks), sk.Line,
				"locked-state sink requires a 'locks' source")
		case SinkCallArgUnterminated:
			err = req(spec.hasSourceKind(SrcCallWrites), sk.Line,
				"unterminated-state sink requires a 'writes ... unterminated' source")
		case SinkIndexTainted:
			err = req(spec.yieldsAny("taint"), sk.Line,
				"sink 'index tainted' requires a source yielding taint")
		case SinkEndHeld:
			if sk.Holding == "alloc" {
				err = req(spec.yieldsAny("alloc"), sk.Line,
					"sink 'end-of-function holding alloc' requires a source yielding alloc")
			} else {
				err = req(spec.hasSourceKind(SrcCallLocks), sk.Line,
					"sink 'end-of-function holding locked' requires a 'locks' source")
			}
		case SinkUseUninit, SinkEndUninitCleanup:
			err = req(spec.hasSourceKind(SrcDeclUninit), sk.Line,
				"uninit sink requires a 'decl uninit' source")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Compiled is an executable checker lowered from a Spec.
type Compiled struct {
	spec *Spec
}

// Spec returns the underlying spec.
func (ck *Compiled) Spec() *Spec { return ck.spec }

// Name implements checker.Checker.
func (ck *Compiled) Name() string { return "knighter." + ck.spec.Name }

// Fingerprint implements checker.Fingerprinter for the scan-service
// result cache. A Compiled checker's behaviour is fully determined by
// its spec, and Spec.String is canonical (parse∘print is the identity
// on semantics), so hashing the rendering is a sound semantic key: two
// refinement rounds that produce the same spec — the common case for
// rejected or no-op refinements — hit the same cache entries.
func (ck *Compiled) Fingerprint() string {
	h := sha256.Sum256([]byte("ckdsl:v1:" + ck.spec.String()))
	return hex.EncodeToString(h[:16])
}

// BugType implements checker.Checker.
func (ck *Compiled) BugType() string { return ck.spec.BugTypeName }

// Per-checker fact domains.
func (ck *Compiled) dom(which string) string { return "ck:" + ck.spec.Name + ":" + which }

const (
	stNullableUnchecked = "nullable:unchecked"
	stNullableChecked   = "nullable:checked"
	stAllocHeld         = "alloc:held"
	stTaintUnchecked    = "taint:unchecked"
	stTaintChecked      = "taint:checked"
	stFreed             = "freed"
	stUninit            = "uninit"
	stUninitCleanup     = "uninit+cleanup"
	stInit              = "init"
	stUnterminated      = "unterminated"
)

// keyOf maps a value to a tracking key. In alias mode keys follow values
// (symbols), so aliases share state; in syntactic mode the caller uses
// exprKey instead.
func keyOf(v sym.Value) (string, bool) { return checker.ValueKey(v) }

func exprKey(e minic.Expr) string { return "e:" + minic.FormatExpr(minic.Unparen(e)) }

// baseOf returns the pointer expression a dereference expression derefs.
func baseOf(e minic.Expr) minic.Expr {
	switch x := minic.Unparen(e).(type) {
	case *minic.MemberExpr:
		return x.X
	case *minic.IndexExpr:
		return x.X
	case *minic.UnaryExpr:
		if x.Op == minic.Star {
			return x.X
		}
	}
	return nil
}

// keyForArg maps a call argument to a tracking key: by value in alias
// mode (so freeing NULL or a fresh pointer is recognized), by argument
// spelling in syntactic mode (which cannot see NULL-clearing — the
// aliasing false positives the paper attributes to weak checkers).
func (ck *Compiled) keyForArg(v sym.Value, expr minic.Expr) (string, bool) {
	if ck.spec.TrackAlias || expr == nil {
		return keyOf(v)
	}
	return exprKey(expr), true
}

// isBounded reports whether a boundcheck guard recorded a comparison
// involving this value on the current path.
func (ck *Compiled) isBounded(st *sym.State, v sym.Value) bool {
	if !ck.spec.hasGuardKind(GuardBoundCheck) {
		return false
	}
	key, ok := keyOf(v)
	if !ok {
		return false
	}
	_, bounded := st.Fact(ck.dom("bounded"), key)
	return bounded
}

// symbolFromKey recovers a symbol value from a "s<N>" tracking key.
func symbolFromKey(key string) (sym.Value, bool) {
	var id int32
	if _, err := fmt.Sscanf(key, "s%d", &id); err == nil {
		return sym.MakeSym(sym.SymbolID(id)), true
	}
	return sym.Unknown, false
}

func (ck *Compiled) message(rule SinkRule, fallback string) string {
	if rule.Message != "" {
		return rule.Message
	}
	return fallback
}

// --- callbacks ---

// CheckDecl implements checker.DeclChecker.
func (ck *Compiled) CheckDecl(d *minic.DeclStmt, region sym.RegionID, c *checker.Context) {
	for _, src := range ck.spec.Sources {
		if src.Kind != SrcDeclUninit {
			continue
		}
		if d.Init != nil {
			continue
		}
		if src.CleanupOnly && d.Cleanup == "" {
			continue
		}
		// Track only pointers and plain ints (arrays are always
		// "initialized" storage for our purposes).
		if d.Type.IsArray() {
			continue
		}
		status := stUninit
		if d.Cleanup != "" {
			status = stUninitCleanup
		}
		c.SetState(c.State().SetRegionFact(ck.dom("uninit"), region, status))
	}
}

// CheckPostCall implements checker.PostCallChecker: sources fire here.
func (ck *Compiled) CheckPostCall(ev *checker.CallEvent, c *checker.Context) {
	st := c.State()
	for _, src := range ck.spec.Sources {
		if src.Callee != ev.Callee {
			continue
		}
		switch src.Kind {
		case SrcCallYields:
			if ck.spec.TrackAlias || src.Yields != "nullable" {
				if key, ok := keyOf(ev.Ret); ok {
					var status string
					switch src.Yields {
					case "nullable":
						status = stNullableUnchecked
					case "alloc":
						status = stAllocHeld
					case "taint":
						status = stTaintUnchecked
					}
					st = st.SetFact(ck.dom("track"), key, status)
					st = st.SetFact(ck.dom("desc"), key, ev.Callee+"()")
				}
			}
			// Syntactic nullable tracking happens in CheckBind.
		case SrcCallFrees:
			v := ev.Args[src.Arg] // strict: hallucinated index crashes
			if key, ok := ck.keyForArg(v, ev.ArgExpr(src.Arg)); ok {
				st = st.SetFact(ck.dom("track"), key, stFreed)
				st = st.SetFact(ck.dom("desc"), key, ev.Callee+"()")
				// Propagate to derived pointers (e.g. private data
				// obtained via netdev_priv()).
				for _, child := range st.FactKeys(ck.dom("derived")) {
					if parent, _ := st.Fact(ck.dom("derived"), child); parent == key {
						st = st.SetFact(ck.dom("track"), child, stFreed)
						st = st.SetFact(ck.dom("desc"), child, "data derived from "+ev.Callee+"() argument")
					}
				}
			}
		case SrcCallLocks:
			v := ev.Args[src.Arg]
			if key, ok := keyOf(v); ok {
				st = st.SetFact(ck.dom("lock"), key, "locked")
			}
		case SrcCallUnlocks:
			v := ev.Args[src.Arg]
			if key, ok := keyOf(v); ok {
				st = st.DelFact(ck.dom("lock"), key)
			}
		case SrcCallDerives:
			pv := ev.Args[src.Arg]
			if pkey, ok := keyOf(pv); ok {
				if rkey, ok2 := keyOf(ev.Ret); ok2 {
					st = st.SetFact(ck.dom("derived"), rkey, pkey)
				}
			}
		case SrcCallWrites:
			r := ck.argBufferRegion(ev, src.Arg)
			if r != sym.NoRegion {
				st = st.SetRegionFact(ck.dom("unterm"), r, stUnterminated)
			}
		}
	}
	// Guards that neutralize on calls.
	for _, g := range ck.spec.Guards {
		if g.Kind == GuardCallReleases && g.Callee == ev.Callee {
			v := ev.Args[g.Arg]
			if key, ok := keyOf(v); ok {
				st = st.DelFact(ck.dom("track"), key)
			}
		}
	}
	// Built-in escape rule for leak tracking: a held allocation passed to
	// any other function may be stored by the callee; stop tracking it.
	if ck.spec.yieldsAny("alloc") {
		for i, v := range ev.Args {
			_ = i
			if key, ok := keyOf(v); ok {
				if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stAllocHeld && !ck.isAllocSource(ev.Callee) {
					st = st.DelFact(ck.dom("track"), key)
				}
			}
		}
	}
	c.SetState(st)
}

func (ck *Compiled) isAllocSource(callee string) bool {
	for _, src := range ck.spec.Sources {
		if src.Kind == SrcCallYields && src.Yields == "alloc" && src.Callee == callee {
			return true
		}
	}
	return false
}

// CheckPreCall implements checker.PreCallChecker: call-argument sinks
// fire here, before this call's own source effects apply.
func (ck *Compiled) CheckPreCall(ev *checker.CallEvent, c *checker.Context) {
	st := c.State()
	for _, rule := range ck.spec.Sinks {
		switch rule.Kind {
		case SinkCallArgFreed:
			if rule.Callee != ev.Callee {
				continue
			}
			v := ev.Args[rule.Arg]
			if key, ok := ck.keyForArg(v, ev.ArgExpr(rule.Arg)); ok {
				if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stFreed {
					desc, _ := st.Fact(ck.dom("desc"), key)
					c.Report(ck, ck.message(rule, fmt.Sprintf("double free: argument already freed by %v", desc)), sym.NoRegion)
				}
			}
		case SinkCallArgLocked:
			if rule.Callee != ev.Callee {
				continue
			}
			v := ev.Args[rule.Arg]
			if key, ok := keyOf(v); ok {
				if _, locked := st.Fact(ck.dom("lock"), key); locked {
					c.Report(ck, ck.message(rule, "double lock: lock is already held"), sym.NoRegion)
				}
			}
		case SinkCallArgUnterminated:
			if rule.Callee != ev.Callee {
				continue
			}
			r := ck.argBufferRegion(ev, rule.Arg)
			if r == sym.NoRegion {
				continue
			}
			if s, ok := st.RegionFact(ck.dom("unterm"), r); ok && s == stUnterminated {
				c.Report(ck, ck.message(rule, "string operation on buffer that may lack a terminating NUL"), r)
				st = st.DelRegionFact(ck.dom("unterm"), r)
				c.SetState(st)
			}
		case SinkCallArgNegative:
			if rule.Callee != ev.Callee {
				continue
			}
			v := ev.Args[rule.Arg]
			if v.IsSymbol() && st.RangeOf(v).CanBeNegative() && !ck.isBounded(st, v) {
				c.Report(ck, ck.message(rule, "possibly negative value used where a non-negative value is required"), sym.NoRegion)
			}
		case SinkCopyOverflow:
			if rule.Callee != ev.Callee {
				continue
			}
			size := ev.Args[rule.SizeArg]
			bufLen := ck.argBufferLen(ev, rule.BufArg, c)
			if bufLen <= 0 {
				continue
			}
			if ck.isBounded(st, size) {
				continue
			}
			limit := int64(bufLen - rule.Slack)
			if st.RangeOf(size).CanExceed(limit) {
				c.Report(ck, ck.message(rule, fmt.Sprintf("copy may exceed buffer capacity (%d bytes, limit %d)", bufLen, limit)), sym.NoRegion)
			}
		case SinkMulOverflow:
			if rule.Callee != ev.Callee {
				continue
			}
			arg := ev.Expr.Args[rule.Arg] // strict: hallucinated index crashes
			mul, ok := minic.Unparen(arg).(*minic.BinaryExpr)
			if !ok || mul.Op != minic.Star {
				continue
			}
			lv, rv := c.ValueOf(mul.X), c.ValueOf(mul.Y)
			if ck.isBounded(st, lv) || ck.isBounded(st, rv) {
				continue
			}
			ra := st.RangeOf(lv).AtLeast(0)
			rb := st.RangeOf(rv).AtLeast(0)
			if ra.MulCanOverflow(rb, rule.Bits) {
				c.Report(ck, ck.message(rule, fmt.Sprintf("unchecked multiplication may overflow %d bits before allocation", rule.Bits)), sym.NoRegion)
			}
		}
	}
}

// argBufferRegion resolves the buffer region named by a call argument.
func (ck *Compiled) argBufferRegion(ev *checker.CallEvent, i int) sym.RegionID {
	if i < len(ev.ArgRegions) && ev.ArgRegions[i] != sym.NoRegion {
		return ev.ArgRegions[i]
	}
	if i < len(ev.ArgPointees) && ev.ArgPointees[i] != sym.NoRegion {
		return ev.ArgPointees[i]
	}
	return sym.NoRegion
}

// argBufferLen resolves the declared fixed length of a buffer argument.
func (ck *Compiled) argBufferLen(ev *checker.CallEvent, i int, c *checker.Context) int {
	r := ck.argBufferRegion(ev, i)
	if r == sym.NoRegion {
		return 0
	}
	if reg := c.Arena().Region(r); reg != nil && reg.ArrayLen > 0 {
		return reg.ArrayLen
	}
	// Fall back to the declared type of a named argument.
	if e := ev.ArgExpr(i); e != nil {
		if id, ok := minic.Unparen(e).(*minic.Ident); ok {
			if t, ok := c.DeclType(id.Name); ok && t.IsArray() {
				return t.ArrayLen
			}
		}
	}
	return 0
}

// CheckBind implements checker.BindChecker.
func (ck *Compiled) CheckBind(ev *checker.BindEvent, c *checker.Context) {
	st := c.State()
	// Syntactic nullable tracking: "lhs = alloc(...)".
	if !ck.spec.TrackAlias {
		for _, src := range ck.spec.Sources {
			if src.Kind != SrcCallYields || src.Yields != "nullable" {
				continue
			}
			if call, ok := minic.Unparen(ev.RHS).(*minic.CallExpr); ok && call.Fun == src.Callee {
				var key string
				if ev.LHS != nil {
					key = exprKey(ev.LHS)
				} else {
					// Declaration initializer: key by the variable name
					// so later guards/sinks written against the same
					// spelling match.
					key = "e:" + c.Describe(ev.Region)
				}
				st = st.SetFact(ck.dom("track"), key, stNullableUnchecked)
				st = st.SetFact(ck.dom("desc"), key, src.Callee+"()")
			}
		}
	}
	// Initialization guard for uninit tracking.
	if ck.spec.hasGuardKind(GuardAssignInit) {
		if s, ok := st.RegionFact(ck.dom("uninit"), ev.Region); ok && strings.HasPrefix(s.(string), "uninit") {
			st = st.SetRegionFact(ck.dom("uninit"), ev.Region, stInit)
		}
	}
	// Built-in escape for leak tracking: storing a held allocation into
	// anything but a plain local (a struct field, a global, an array
	// slot) publishes it — someone else can free it.
	if ck.spec.yieldsAny("alloc") {
		if key, ok := keyOf(ev.Value); ok {
			if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stAllocHeld {
				if reg := c.Arena().Region(ev.Region); reg != nil && reg.Kind != sym.VarRegion {
					st = st.DelFact(ck.dom("track"), key)
				}
			}
		}
	}
	// Buffer-termination guard: buf[i] = 0.
	if ck.spec.hasGuardKind(GuardTerminate) {
		if ev.Value.IsNullConst() {
			if reg := c.Arena().Region(ev.Region); reg != nil && reg.Kind == sym.ElemRegion {
				if _, ok := st.RegionFact(ck.dom("unterm"), reg.Parent); ok {
					st = st.DelRegionFact(ck.dom("unterm"), reg.Parent)
				}
			}
		}
	}
	c.SetState(st)
}

// CheckBranchCondition implements checker.BranchChecker: null and bound
// guards mark tracked state as checked.
func (ck *Compiled) CheckBranchCondition(cond minic.Expr, c *checker.Context) {
	st := c.State()
	for _, g := range ck.spec.Guards {
		switch g.Kind {
		case GuardNullCheck:
			target := nullCheckTarget(cond, ck.spec.Unwrap, c)
			if target == nil {
				continue
			}
			var keys []string
			if ck.spec.TrackAlias {
				if k, ok := keyOf(c.ValueOf(target)); ok {
					keys = append(keys, k)
				}
			} else {
				keys = append(keys, exprKey(target))
			}
			for _, k := range keys {
				if s, tracked := st.Fact(ck.dom("track"), k); tracked && s == stNullableUnchecked {
					st = st.SetFact(ck.dom("track"), k, stNullableChecked)
				}
			}
		case GuardBoundCheck:
			e := minic.UnwrapCalls(cond, ck.spec.Unwrap...)
			bin, ok := e.(*minic.BinaryExpr)
			if !ok {
				continue
			}
			switch bin.Op {
			case minic.Lt, minic.Gt, minic.Le, minic.Ge, minic.EqEq, minic.NotEq:
				for _, side := range []minic.Expr{bin.X, bin.Y} {
					if k, ok := keyOf(c.ValueOf(side)); ok {
						if s, tracked := st.Fact(ck.dom("track"), k); tracked && s == stTaintUnchecked {
							st = st.SetFact(ck.dom("track"), k, stTaintChecked)
						}
						// Any value that took part in a comparison counts
						// as "developer bounded it somehow" for the
						// size-reasoning sinks, even when the bound is
						// not a constant the range engine understands.
						st = st.SetFact(ck.dom("bounded"), k, "bounded")
					}
				}
			}
		}
	}
	c.SetState(st)
}

// nullCheckTarget recognizes the null-check shapes a checker understands:
// if (!p), if (p), if (p == NULL), if (p != NULL) — seeing through the
// configured wrapper macros.
func nullCheckTarget(cond minic.Expr, unwrap []string, c *checker.Context) minic.Expr {
	e := minic.UnwrapCalls(cond, unwrap...)
	switch x := e.(type) {
	case *minic.UnaryExpr:
		if x.Op == minic.Bang {
			return minic.UnwrapCalls(x.X, unwrap...)
		}
	case *minic.BinaryExpr:
		if x.Op == minic.EqEq || x.Op == minic.NotEq {
			if c.ValueOf(x.Y).IsNullConst() {
				return minic.UnwrapCalls(x.X, unwrap...)
			}
			if c.ValueOf(x.X).IsNullConst() {
				return minic.UnwrapCalls(x.Y, unwrap...)
			}
		}
	case *minic.Ident, *minic.MemberExpr, *minic.IndexExpr:
		return e
	}
	return nil
}

// CheckLocation implements checker.LocationChecker: dereference and
// index sinks.
func (ck *Compiled) CheckLocation(ac *checker.Access, c *checker.Context) {
	st := c.State()
	for _, rule := range ck.spec.Sinks {
		switch rule.Kind {
		case SinkDerefUnchecked:
			if ac.Direct {
				continue
			}
			var key string
			var ok bool
			if ck.spec.TrackAlias {
				key, ok = keyOf(ac.PtrValue)
			} else if base := baseOf(ac.Expr); base != nil {
				key, ok = exprKey(base), true
			}
			if !ok {
				continue
			}
			if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stNullableUnchecked {
				desc, _ := st.Fact(ck.dom("desc"), key)
				c.Report(ck, ck.message(rule, fmt.Sprintf("%v may return NULL and is dereferenced without a check", desc)), ac.Pointee)
				st = st.SetFact(ck.dom("track"), key, stNullableChecked)
				c.SetState(st)
			}
		case SinkDerefFreed:
			if ac.Direct {
				continue
			}
			var key string
			var ok bool
			if ck.spec.TrackAlias {
				key, ok = keyOf(ac.PtrValue)
			} else if base := baseOf(ac.Expr); base != nil {
				key, ok = exprKey(base), true
			}
			if !ok {
				continue
			}
			if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stFreed {
				desc, _ := st.Fact(ck.dom("desc"), key)
				c.Report(ck, ck.message(rule, fmt.Sprintf("use after free: memory was released via %v", desc)), ac.Pointee)
			}
		case SinkUseUninit:
			if !ac.IsLoad || !ac.Direct {
				continue
			}
			if s, ok := st.RegionFact(ck.dom("uninit"), ac.Pointee); ok && strings.HasPrefix(s.(string), "uninit") {
				c.Report(ck, ck.message(rule, fmt.Sprintf("'%s' may be used uninitialized", c.Describe(ac.Pointee))), ac.Pointee)
				st = st.SetRegionFact(ck.dom("uninit"), ac.Pointee, stInit)
				c.SetState(st)
			}
		case SinkIndexTainted:
			if ac.Index.IsUnknown() {
				continue
			}
			key, ok := keyOf(ac.Index)
			if !ok {
				continue
			}
			if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stTaintUnchecked {
				if ac.ArrayLen > 0 && !st.RangeOf(ac.Index).CanExceed(int64(ac.ArrayLen-1)) {
					continue
				}
				c.Report(ck, ck.message(rule, "untrusted index used without a bounds check"), ac.Pointee)
				st = st.SetFact(ck.dom("track"), key, stTaintChecked)
				c.SetState(st)
			}
		case SinkIndexConstOOB:
			if ac.ArrayLen > 0 && ac.Index.IsConcreteInt() && ac.Index.Int >= int64(ac.ArrayLen) {
				c.Report(ck, ck.message(rule, fmt.Sprintf("index %d is past the end of a %d-element array", ac.Index.Int, ac.ArrayLen)), ac.Pointee)
			}
		}
	}
}

// CheckEndFunction implements checker.EndFunctionChecker: leak, lock, and
// uninit-cleanup sinks.
func (ck *Compiled) CheckEndFunction(ev *checker.ReturnEvent, c *checker.Context) {
	st := c.State()
	// Returning a tracked allocation transfers ownership to the caller.
	if ck.spec.yieldsAny("alloc") {
		if key, ok := keyOf(ev.Value); ok {
			if s, tracked := st.Fact(ck.dom("track"), key); tracked && s == stAllocHeld {
				st = st.DelFact(ck.dom("track"), key)
				c.SetState(st)
			}
		}
	}
	for _, rule := range ck.spec.Sinks {
		switch rule.Kind {
		case SinkEndHeld:
			if rule.Holding == "alloc" {
				for _, key := range st.FactKeys(ck.dom("track")) {
					if s, _ := st.Fact(ck.dom("track"), key); s == stAllocHeld {
						// Allocation known to be NULL on this path (the
						// failed-allocation branch) leaks nothing.
						if v, ok := symbolFromKey(key); ok && st.NullnessOf(v) == sym.IsNull {
							continue
						}
						desc, _ := st.Fact(ck.dom("desc"), key)
						c.Report(ck, ck.message(rule, fmt.Sprintf("memory allocated by %v is leaked on this path", desc)), sym.NoRegion)
					}
				}
			} else {
				for range st.FactKeys(ck.dom("lock")) {
					c.Report(ck, ck.message(rule, "function returns while still holding a lock"), sym.NoRegion)
					break
				}
			}
		case SinkEndUninitCleanup:
			for _, r := range st.FactRegions(ck.dom("uninit")) {
				if s, _ := st.RegionFact(ck.dom("uninit"), r); s == stUninitCleanup {
					c.Report(ck, ck.message(rule, fmt.Sprintf("cleanup handler may run on uninitialized '%s'", c.Describe(r))), r)
				}
			}
		}
	}
}
