package ckdsl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSpec generates a structurally valid Spec whose sinks always have
// matching sources (so Compile accepts it).
func randomSpec(r *rand.Rand) *Spec {
	s := &Spec{
		Name:        "gen_" + string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))),
		BugTypeName: []string{"Null-Pointer-Dereference", "Use-After-Free", "Memory-Leak", "Misuse"}[r.Intn(4)],
		TrackAlias:  r.Intn(2) == 0,
	}
	if r.Intn(3) == 0 {
		s.Description = "generated spec"
	}
	if r.Intn(3) == 0 {
		s.Unwrap = []string{"unlikely", "likely"}
	}
	callees := []string{"kzalloc", "devm_kzalloc", "kfree", "spin_lock", "spin_unlock", "copy_from_user"}
	callee := func() string { return callees[r.Intn(len(callees))] }

	// Choose one coherent source/sink family per spec.
	switch r.Intn(6) {
	case 0: // nullable
		s.Sources = append(s.Sources, SourceRule{Kind: SrcCallYields, Callee: callee(), Yields: "nullable"})
		s.Guards = append(s.Guards, GuardRule{Kind: GuardNullCheck})
		s.Sinks = append(s.Sinks, SinkRule{Kind: SinkDerefUnchecked, Message: "m"})
	case 1: // freed
		s.Sources = append(s.Sources, SourceRule{Kind: SrcCallFrees, Callee: callee(), Arg: r.Intn(2)})
		if r.Intn(2) == 0 {
			s.Sources = append(s.Sources, SourceRule{Kind: SrcCallDerives, Callee: callee(), Arg: 0})
		}
		s.Sinks = append(s.Sinks, SinkRule{Kind: SinkDerefFreed})
		if r.Intn(2) == 0 {
			s.Sinks = append(s.Sinks, SinkRule{Kind: SinkCallArgFreed, Callee: callee(), Arg: 0})
		}
	case 2: // alloc
		s.Sources = append(s.Sources, SourceRule{Kind: SrcCallYields, Callee: callee(), Yields: "alloc"})
		s.Guards = append(s.Guards, GuardRule{Kind: GuardCallReleases, Callee: "kfree", Arg: 0})
		s.Sinks = append(s.Sinks, SinkRule{Kind: SinkEndHeld, Holding: "alloc", Message: "leak"})
	case 3: // locks
		s.Sources = append(s.Sources,
			SourceRule{Kind: SrcCallLocks, Callee: "spin_lock", Arg: 0},
			SourceRule{Kind: SrcCallUnlocks, Callee: "spin_unlock", Arg: 0})
		s.Sinks = append(s.Sinks,
			SinkRule{Kind: SinkEndHeld, Holding: "locked"},
			SinkRule{Kind: SinkCallArgLocked, Callee: "spin_lock", Arg: 0})
	case 4: // uninit
		s.Sources = append(s.Sources, SourceRule{Kind: SrcDeclUninit, CleanupOnly: r.Intn(2) == 0})
		s.Guards = append(s.Guards, GuardRule{Kind: GuardAssignInit})
		if r.Intn(2) == 0 {
			s.Sinks = append(s.Sinks, SinkRule{Kind: SinkEndUninitCleanup})
		} else {
			s.Sinks = append(s.Sinks, SinkRule{Kind: SinkUseUninit})
		}
	default: // range sinks need no sources
		if r.Intn(2) == 0 {
			s.Sinks = append(s.Sinks, SinkRule{Kind: SinkMulOverflow, Callee: callee(), Arg: 0, Bits: 32})
		} else {
			s.Sinks = append(s.Sinks, SinkRule{Kind: SinkCopyOverflow, Callee: "copy_from_user", SizeArg: 2, BufArg: 0, Slack: 1})
		}
		if r.Intn(2) == 0 {
			s.Guards = append(s.Guards, GuardRule{Kind: GuardBoundCheck})
		}
	}
	return s
}

// Property: String -> Parse -> String is a fixed point and the reparsed
// spec compiles whenever the original did.
func TestSpecPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1 := randomSpec(r)
		text := s1.String()
		s2, err := Parse(text)
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, text)
			return false
		}
		if s2.String() != text {
			t.Logf("round trip not stable:\n%s\nvs\n%s", text, s2.String())
			return false
		}
		_, err1 := Compile(s1)
		_, err2 := Compile(s2)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("compile disagreement: %v vs %v", err1, err2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LineCount is positive and consistent with the rendered text.
func TestSpecLineCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSpec(r)
		n := s.LineCount()
		return n >= 4 && n <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: capabilities are stable under print/parse round trips.
func TestCapabilitiesStableUnderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1 := randomSpec(r)
		s2, err := Parse(s1.String())
		if err != nil {
			return false
		}
		return s1.Capabilities() == s2.Capabilities()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
