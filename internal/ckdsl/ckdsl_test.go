package ckdsl

import (
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

func analyze(t *testing.T, dsl, src string) *engine.Result {
	t.Helper()
	ck, err := CompileSource(dsl)
	if err != nil {
		t.Fatalf("compile checker: %v", err)
	}
	f, err := minic.ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse code: %v", err)
	}
	return engine.AnalyzeFile(f, engine.Options{Checkers: []checker.Checker{ck}})
}

func wantReports(t *testing.T, res *engine.Result, n int, what string) {
	t.Helper()
	if len(res.RuntimeErrs) != 0 {
		t.Fatalf("%s: unexpected runtime errors: %v", what, res.RuntimeErrs)
	}
	if len(res.Reports) != n {
		var got []string
		for _, r := range res.Reports {
			got = append(got, r.String())
		}
		t.Fatalf("%s: reports = %d, want %d\n%s", what, len(res.Reports), n, strings.Join(got, "\n"))
	}
}

// --- archetype DSL programs, one per paper bug category ---

const npdDSL = `
checker npd_devm_kzalloc {
  bugtype "Null-Pointer-Dereference"
  description "missing NULL check on devm_kzalloc() result"
  track aliases
  unwrap "unlikely" "likely"
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked report "pointer may be NULL when dereferenced" }
}
`

func TestNPDArchetype(t *testing.T) {
	buggy := `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, sizeof(struct priv), GFP_KERNEL);
	p->count = 0;
	return 0;
}
`
	fixed := `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, sizeof(struct priv), GFP_KERNEL);
	if (!p)
		return -ENOMEM;
	p->count = 0;
	return 0;
}
`
	wantReports(t, analyze(t, npdDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, npdDSL, fixed), 0, "fixed")
}

func TestNPDUnlikelyGuard(t *testing.T) {
	src := `
int reg(struct dev *d)
{
	struct pmx *pmx = devm_kzalloc(d, 8, GFP_KERNEL);
	if (unlikely(!pmx))
		return -ENOMEM;
	pmx->pfc = d;
	return 0;
}
`
	// With unwrap configured the check is recognized.
	wantReports(t, analyze(t, npdDSL, src), 0, "unwrap")
	// Without unwrap (a naive synthesized checker) it is an FP.
	naive := strings.Replace(npdDSL, "  unwrap \"unlikely\" \"likely\"\n", "", 1)
	wantReports(t, analyze(t, naive, src), 1, "naive")
}

func TestNPDSyntacticModeMissesAliases(t *testing.T) {
	aliasSrc := `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, 8, GFP_KERNEL);
	struct priv *q = p;
	if (!q)
		return -ENOMEM;
	p->count = 0;
	return 0;
}
`
	// Semantic (alias) mode: no FP.
	wantReports(t, analyze(t, npdDSL, aliasSrc), 0, "alias mode")
	// Syntactic mode (no 'track aliases'): the q-check does not clear p.
	syntactic := strings.Replace(npdDSL, "  track aliases\n", "", 1)
	wantReports(t, analyze(t, syntactic, aliasSrc), 1, "syntactic mode")
}

const uafDSL = `
checker uaf_free_netdev {
  bugtype "Use-After-Free"
  track aliases
  source { call "free_netdev" frees arg 0 }
  source { call "netdev_priv" derives arg 0 }
  sink { deref freed report "private data used after free_netdev()" }
}
`

func TestUAFArchetype(t *testing.T) {
	buggy := `
void drv_remove(struct platform_device *pdev)
{
	struct net_device *ndev = platform_get_drvdata(pdev);
	struct board_info *dm = netdev_priv(ndev);
	free_netdev(ndev);
	if (dm->power_supply)
		regulator_disable(dm->power_supply);
}
`
	fixed := `
void drv_remove(struct platform_device *pdev)
{
	struct net_device *ndev = platform_get_drvdata(pdev);
	struct board_info *dm = netdev_priv(ndev);
	if (dm->power_supply)
		regulator_disable(dm->power_supply);
	free_netdev(ndev);
}
`
	res := analyze(t, uafDSL, buggy)
	if len(res.Reports) < 1 {
		t.Fatalf("buggy: no UAF reported")
	}
	if res.Reports[0].BugType != "Use-After-Free" {
		t.Errorf("bugtype = %s", res.Reports[0].BugType)
	}
	wantReports(t, analyze(t, uafDSL, fixed), 0, "fixed")
}

const dfDSL = `
checker double_free_kfree {
  bugtype "Double-Free"
  track aliases
  source { call "kfree" frees arg 0 }
  sink { call "kfree" arg 0 freed report "double free of the same allocation" }
}
`

func TestDoubleFreeArchetype(t *testing.T) {
	buggy := `
void teardown(struct ctx *c)
{
	kfree(c->buf);
	kfree(c->buf);
}
`
	fixed := `
void teardown(struct ctx *c)
{
	kfree(c->buf);
	c->buf = NULL;
	kfree(c->other);
}
`
	wantReports(t, analyze(t, dfDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, dfDSL, fixed), 0, "fixed")
}

const leakDSL = `
checker leak_kmalloc {
  bugtype "Memory-Leak"
  track aliases
  source { call "kmalloc" yields alloc }
  guard { call "kfree" releases arg 0 }
  sink { end-of-function holding alloc report "allocation leaked on error path" }
}
`

func TestMemLeakArchetype(t *testing.T) {
	buggy := `
int setup(struct dev *d, int n)
{
	char *tmp = kmalloc(64, GFP_KERNEL);
	if (n < 0)
		return -EINVAL;
	kfree(tmp);
	return 0;
}
`
	fixed := `
int setup(struct dev *d, int n)
{
	char *tmp = kmalloc(64, GFP_KERNEL);
	if (n < 0) {
		kfree(tmp);
		return -EINVAL;
	}
	kfree(tmp);
	return 0;
}
`
	wantReports(t, analyze(t, leakDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, leakDSL, fixed), 0, "fixed")
}

func TestMemLeakEscapeSuppression(t *testing.T) {
	// Storing into a structure or returning the pointer transfers
	// ownership: no leak report.
	escaped := `
char *make(struct dev *d)
{
	char *tmp = kmalloc(64, GFP_KERNEL);
	return tmp;
}
`
	stored := `
int attach(struct dev *d)
{
	char *tmp = kmalloc(64, GFP_KERNEL);
	register_buffer(d, tmp);
	return 0;
}
`
	wantReports(t, analyze(t, leakDSL, escaped), 0, "returned")
	wantReports(t, analyze(t, leakDSL, stored), 0, "passed to callee")
}

const ubiDSL = `
checker ubi_cleanup_ptr {
  bugtype "Use-Before-Initialization"
  source { decl uninit cleanup-only }
  guard { assign initializes }
  sink { end-of-function cleanup uninit report "cleanup may run on uninitialized pointer" }
}
`

func TestUBIArchetype(t *testing.T) {
	buggy := `
int ice_set_fc(struct ice_port_info *pi, int mode)
{
	struct caps *pcaps __free(kfree);
	if (!pi)
		return -EINVAL;
	pcaps = kzalloc(sizeof(struct caps), GFP_KERNEL);
	use(pcaps);
	return 0;
}
`
	fixed := `
int ice_set_fc(struct ice_port_info *pi, int mode)
{
	struct caps *pcaps __free(kfree) = NULL;
	if (!pi)
		return -EINVAL;
	pcaps = kzalloc(sizeof(struct caps), GFP_KERNEL);
	use(pcaps);
	return 0;
}
`
	wantReports(t, analyze(t, ubiDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, ubiDSL, fixed), 0, "fixed")
}

func TestUBIAssignedOnEveryPathIsQuiet(t *testing.T) {
	// The x509_cert_parse pattern from paper Fig. 8b: uninitialized at
	// declaration but assigned on every path before any return.
	src := `
struct cert *parse(void)
{
	struct cert *cert __free(put_cert);
	cert = kzalloc(32, GFP_KERNEL);
	if (!cert)
		return NULL;
	return cert;
}
`
	wantReports(t, analyze(t, ubiDSL, src), 0, "assigned on all paths")
}

const lockDSL = `
checker lock_balance {
  bugtype "Concurrency"
  source { call "spin_lock" locks arg 0 }
  source { call "spin_unlock" unlocks arg 0 }
  sink { end-of-function holding locked report "return with lock held" }
  sink { call "spin_lock" arg 0 locked report "double lock" }
}
`

func TestLockArchetype(t *testing.T) {
	buggy := `
int update(struct dev *d, int n)
{
	spin_lock(&d->lock);
	if (n < 0)
		return -EINVAL;
	d->value = n;
	spin_unlock(&d->lock);
	return 0;
}
`
	fixed := `
int update(struct dev *d, int n)
{
	spin_lock(&d->lock);
	if (n < 0) {
		spin_unlock(&d->lock);
		return -EINVAL;
	}
	d->value = n;
	spin_unlock(&d->lock);
	return 0;
}
`
	wantReports(t, analyze(t, lockDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, lockDSL, fixed), 0, "fixed")
}

func TestDoubleLock(t *testing.T) {
	src := `
void twice(struct dev *d)
{
	spin_lock(&d->lock);
	spin_lock(&d->lock);
	spin_unlock(&d->lock);
	spin_unlock(&d->lock);
}
`
	res := analyze(t, lockDSL, src)
	found := false
	for _, r := range res.Reports {
		if strings.Contains(r.Message, "double lock") {
			found = true
		}
	}
	if !found {
		t.Errorf("double lock not reported: %v", res.Reports)
	}
}

const bufOverDSL = `
checker cfu_bounds {
  bugtype "Buffer-Overflow"
  sink { call "copy_from_user" size-arg 2 buf-arg 0 slack 1 report "copy_from_user may overflow buffer" }
}
`

func TestBufferOverflowArchetype(t *testing.T) {
	buggy := `
int lockstat_write(char *ubuf, size_t nbytes)
{
	char mybuf[64];
	memset(mybuf, 0, sizeof(mybuf));
	if (copy_from_user(mybuf, ubuf, nbytes))
		return -EFAULT;
	return 0;
}
`
	fixedMin := `
int lockstat_write(char *ubuf, size_t nbytes)
{
	char mybuf[64];
	size_t bsize;
	memset(mybuf, 0, sizeof(mybuf));
	bsize = min(nbytes, sizeof(mybuf) - 1);
	if (copy_from_user(mybuf, ubuf, bsize))
		return -EFAULT;
	return 0;
}
`
	fixedGuard := `
int bucket_write(char *ubuf, size_t size)
{
	char buf[128];
	if (size > sizeof(buf) - 1)
		return -EINVAL;
	if (copy_from_user(buf, ubuf, size))
		return -EFAULT;
	buf[size] = 0;
	return 0;
}
`
	wantReports(t, analyze(t, bufOverDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, bufOverDSL, fixedMin), 0, "min() bound")
	wantReports(t, analyze(t, bufOverDSL, fixedGuard), 0, "guard bound")
}

const intOverDSL = `
checker mul_overflow_kmalloc {
  bugtype "Integer-Overflow"
  sink { mul-overflow into "kmalloc" arg 0 bits 32 report "size multiplication may overflow" }
}
`

func TestIntegerOverflowArchetype(t *testing.T) {
	buggy := `
char *alloc_table(size_t count)
{
	return kmalloc(count * 16, GFP_KERNEL);
}
`
	fixedGuard := `
char *alloc_table(size_t count)
{
	if (count > 4096)
		return NULL;
	return kmalloc(count * 16, GFP_KERNEL);
}
`
	fixedHelper := `
char *alloc_table(size_t count)
{
	return kmalloc(array_size(count, 16), GFP_KERNEL);
}
`
	wantReports(t, analyze(t, intOverDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, intOverDSL, fixedGuard), 0, "range guard")
	wantReports(t, analyze(t, intOverDSL, fixedHelper), 0, "array_size helper")
}

const oobDSL = `
checker oob_tainted_index {
  bugtype "Out-of-Bound"
  track aliases
  source { call "le16_to_cpu" yields taint }
  guard { boundcheck }
  sink { index tainted report "untrusted index without bounds check" }
}
`

func TestOOBArchetype(t *testing.T) {
	buggy := `
int lookup(struct pkt *p)
{
	int table[16];
	int idx = le16_to_cpu(p->hdr);
	fill(table);
	return table[idx];
}
`
	fixed := `
int lookup(struct pkt *p)
{
	int table[16];
	int idx = le16_to_cpu(p->hdr);
	fill(table);
	if (idx >= 16)
		return -EINVAL;
	return table[idx];
}
`
	wantReports(t, analyze(t, oobDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, oobDSL, fixed), 0, "fixed")
}

const misuseTermDSL = `
checker unterminated_sscanf {
  bugtype "Misuse"
  source { call "copy_from_user" writes arg 0 unterminated }
  guard { terminate elem zero }
  sink { call "sscanf" arg 0 unterminated report "sscanf on possibly unterminated buffer" }
}
`

func TestMisuseTerminationArchetype(t *testing.T) {
	buggy := `
int parse_input(char *ubuf, size_t size)
{
	char buf[32];
	int val;
	if (copy_from_user(buf, ubuf, size))
		return -EFAULT;
	sscanf(buf, "%d", &val);
	return val;
}
`
	fixed := `
int parse_input(char *ubuf, size_t size)
{
	char buf[32];
	int val;
	if (copy_from_user(buf, ubuf, size))
		return -EFAULT;
	buf[size] = 0;
	sscanf(buf, "%d", &val);
	return val;
}
`
	wantReports(t, analyze(t, misuseTermDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, misuseTermDSL, fixed), 0, "fixed")
}

const misuseIrqDSL = `
checker irq_unchecked_sign {
  bugtype "Misuse"
  sink { call "request_irq" arg 0 possibly-negative report "platform_get_irq() result used without sign check" }
}
`

func TestMisuseNegativeIrqArchetype(t *testing.T) {
	buggy := `
int wire_irq(struct platform_device *pdev)
{
	int irq = platform_get_irq(pdev, 0);
	return request_irq(irq, handler);
}
`
	fixed := `
int wire_irq(struct platform_device *pdev)
{
	int irq = platform_get_irq(pdev, 0);
	if (irq < 0)
		return irq;
	return request_irq(irq, handler);
}
`
	wantReports(t, analyze(t, misuseIrqDSL, buggy), 1, "buggy")
	wantReports(t, analyze(t, misuseIrqDSL, fixed), 0, "fixed")
}

// --- compilation failure and runtime failure modes ---

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`checker x { bugtype "B" sink { deref unchecked } bogus-directive }`, "unknown directive"},
		{`checker x { sink { deref unchecked } }`, "no bugtype"},
		{`checker x { bugtype "B" }`, "no sink"},
		{`checker x { bugtype "B" source { call "f" yields banana } sink { deref unchecked } }`, "unknown yield class"},
		{`checker x { bugtype "B" sink { deref sideways } }`, "unknown deref state"},
		{`checker { bugtype "B" }`, "expected checker name"},
		{`checker x { bugtype "B" sink { deref unchecked }`, "unexpected end"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse error = %q, want substring %q", err.Error(), tc.want)
		}
	}
}

func TestRegistrationErrors(t *testing.T) {
	// Sink references freed state but nothing frees: registration-time
	// compile error (like referencing an unregistered CSA state map).
	src := `
checker bad {
  bugtype "Use-After-Free"
  sink { deref freed }
}
`
	_, err := CompileSource(src)
	if err == nil {
		t.Fatal("expected registration error")
	}
	if !strings.Contains(err.Error(), "requires a 'frees' source") {
		t.Errorf("error = %v", err)
	}
}

func TestRuntimeErrorFromHallucinatedArgIndex(t *testing.T) {
	// kfree has one argument; 'frees arg 3' panics at analysis time —
	// the pipeline's "runtime error" failure symptom.
	dsl := `
checker crash {
  bugtype "Double-Free"
  source { call "kfree" frees arg 3 }
  sink { call "kfree" arg 0 freed }
}
`
	ck, err := CompileSource(dsl)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f, err := minic.ParseFile("t.c", "void f(struct x *p)\n{\n\tkfree(p);\n}\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := engine.AnalyzeFile(f, engine.Options{Checkers: []checker.Checker{ck}})
	if len(res.RuntimeErrs) != 1 {
		t.Fatalf("runtime errors = %d, want 1", len(res.RuntimeErrs))
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, dsl := range []string{npdDSL, uafDSL, dfDSL, leakDSL, ubiDSL, lockDSL,
		bufOverDSL, intOverDSL, oobDSL, misuseTermDSL, misuseIrqDSL} {
		s1, err := Parse(dsl)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, dsl)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse canonical form: %v\n%s", err, s1.String())
		}
		if s1.String() != s2.String() {
			t.Errorf("canonical form not stable:\n%s\nvs\n%s", s1.String(), s2.String())
		}
	}
}

func TestCapabilities(t *testing.T) {
	s, err := Parse(npdDSL)
	if err != nil {
		t.Fatal(err)
	}
	caps := s.Capabilities()
	if !caps.PathSensitive || !caps.RegionBased {
		t.Errorf("NPD caps = %+v", caps)
	}
	if caps.ASTTraveler {
		t.Error("alias-tracking checker must not be AST traveler")
	}
	syntactic := strings.Replace(npdDSL, "  track aliases\n", "", 1)
	s2, _ := Parse(syntactic)
	if !s2.Capabilities().ASTTraveler {
		t.Error("syntactic checker should classify as AST traveler")
	}
	s3, _ := Parse(uafDSL)
	if !s3.Capabilities().PathSensitive {
		t.Errorf("UAF caps = %+v", s3.Capabilities())
	}
}

func TestLineCount(t *testing.T) {
	s, _ := Parse(npdDSL)
	if n := s.LineCount(); n < 7 || n > 12 {
		t.Errorf("LineCount = %d, expected a small checker", n)
	}
}

func TestDSLComments(t *testing.T) {
	src := `
# A commented checker.
checker with_comments {
  bugtype "Null-Pointer-Dereference"  # inline comment
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`
	if _, err := CompileSource(src); err != nil {
		t.Fatalf("comments should parse: %v", err)
	}
}
