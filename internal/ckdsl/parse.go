package ckdsl

import (
	"fmt"
	"strconv"
	"strings"
)

// CompileError is a checker "compilation" failure: either a syntax error
// in the DSL text or a registration-time semantic rejection. Its message
// format feeds the synthesis pipeline's repair agent.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("checker:%d: %s", e.Line, e.Msg)
	}
	return "checker: " + e.Msg
}

type dslToken struct {
	text   string
	isStr  bool
	isInt  bool
	intVal int
	line   int
}

func scanDSL(src string) ([]dslToken, error) {
	var toks []dslToken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}':
			toks = append(toks, dslToken{text: string(c), line: line})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= len(src) || src[j] != '"' {
				return nil, &CompileError{Line: line, Msg: "unterminated string literal"}
			}
			toks = append(toks, dslToken{text: src[i+1 : j], isStr: true, line: line})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n{}\"#", rune(src[j])) {
				j++
			}
			word := src[i:j]
			tk := dslToken{text: word, line: line}
			if n, err := strconv.Atoi(word); err == nil {
				tk.isInt = true
				tk.intVal = n
			}
			toks = append(toks, tk)
			i = j
		}
	}
	return toks, nil
}

type dslParser struct {
	toks []dslToken
	pos  int
}

func (p *dslParser) cur() dslToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	last := 1
	if len(p.toks) > 0 {
		last = p.toks[len(p.toks)-1].line
	}
	return dslToken{text: "<eof>", line: last}
}

func (p *dslParser) next() dslToken { t := p.cur(); p.pos++; return t }

func (p *dslParser) errf(format string, args ...any) error {
	return &CompileError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *dslParser) expectWord(w string) error {
	t := p.next()
	if t.isStr || t.text != w {
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %q", w, t.text)}
	}
	return nil
}

func (p *dslParser) expectString() (string, int, error) {
	t := p.next()
	if !t.isStr {
		return "", t.line, &CompileError{Line: t.line, Msg: fmt.Sprintf("expected string literal, found %q", t.text)}
	}
	return t.text, t.line, nil
}

func (p *dslParser) expectInt() (int, error) {
	t := p.next()
	if !t.isInt {
		return 0, &CompileError{Line: t.line, Msg: fmt.Sprintf("expected integer, found %q", t.text)}
	}
	return t.intVal, nil
}

// Parse parses DSL source into a Spec. Errors are CompileErrors (the
// pipeline's "compilation failure" class).
func Parse(src string) (*Spec, error) {
	toks, err := scanDSL(src)
	if err != nil {
		return nil, err
	}
	p := &dslParser{toks: toks}
	if err := p.expectWord("checker"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.isStr || name.text == "{" {
		return nil, &CompileError{Line: name.line, Msg: "expected checker name"}
	}
	spec := &Spec{Name: name.text}
	if err := p.expectWord("{"); err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.text == "}" && !t.isStr {
			p.next()
			break
		}
		if t.text == "<eof>" {
			return nil, p.errf("unexpected end of checker body")
		}
		if err := p.parseDirective(spec); err != nil {
			return nil, err
		}
	}
	if spec.BugTypeName == "" {
		return nil, &CompileError{Msg: "checker has no bugtype directive"}
	}
	if len(spec.Sinks) == 0 {
		return nil, &CompileError{Msg: "checker has no sink: it can never report"}
	}
	return spec, nil
}

func (p *dslParser) parseDirective(spec *Spec) error {
	t := p.next()
	if t.isStr {
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("unexpected string %q at directive position", t.text)}
	}
	switch t.text {
	case "bugtype":
		s, _, err := p.expectString()
		if err != nil {
			return err
		}
		spec.BugTypeName = s
	case "description":
		s, _, err := p.expectString()
		if err != nil {
			return err
		}
		spec.Description = s
	case "track":
		w := p.next()
		switch w.text {
		case "aliases":
			spec.TrackAlias = true
		case "regions":
			spec.TrackAlias = false
		default:
			return &CompileError{Line: w.line, Msg: fmt.Sprintf("unknown track mode %q (want aliases or regions)", w.text)}
		}
	case "unwrap":
		for p.cur().isStr {
			spec.Unwrap = append(spec.Unwrap, p.next().text)
		}
		if len(spec.Unwrap) == 0 {
			return p.errf("unwrap requires at least one wrapper name")
		}
	case "source":
		return p.parseSource(spec)
	case "guard":
		return p.parseGuard(spec)
	case "sink":
		return p.parseSink(spec)
	default:
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("unknown directive %q", t.text)}
	}
	return nil
}

func (p *dslParser) parseSource(spec *Spec) error {
	if err := p.expectWord("{"); err != nil {
		return err
	}
	t := p.next()
	var rule SourceRule
	rule.Line = t.line
	switch t.text {
	case "call":
		callee, _, err := p.expectString()
		if err != nil {
			return err
		}
		rule.Callee = callee
		verb := p.next()
		switch verb.text {
		case "yields":
			rule.Kind = SrcCallYields
			y := p.next()
			switch y.text {
			case "nullable", "alloc", "taint":
				rule.Yields = y.text
			default:
				return &CompileError{Line: y.line, Msg: fmt.Sprintf("unknown yield class %q (want nullable, alloc, or taint)", y.text)}
			}
		case "frees", "locks", "unlocks", "derives", "writes":
			switch verb.text {
			case "frees":
				rule.Kind = SrcCallFrees
			case "locks":
				rule.Kind = SrcCallLocks
			case "unlocks":
				rule.Kind = SrcCallUnlocks
			case "derives":
				rule.Kind = SrcCallDerives
			case "writes":
				rule.Kind = SrcCallWrites
			}
			if err := p.expectWord("arg"); err != nil {
				return err
			}
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			rule.Arg = n
			if rule.Kind == SrcCallWrites {
				if err := p.expectWord("unterminated"); err != nil {
					return err
				}
			}
		default:
			return &CompileError{Line: verb.line, Msg: fmt.Sprintf("unknown source verb %q", verb.text)}
		}
	case "decl":
		if err := p.expectWord("uninit"); err != nil {
			return err
		}
		rule.Kind = SrcDeclUninit
		if p.cur().text == "cleanup-only" && !p.cur().isStr {
			p.next()
			rule.CleanupOnly = true
		}
	default:
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("unknown source form %q", t.text)}
	}
	spec.Sources = append(spec.Sources, rule)
	return p.expectWord("}")
}

func (p *dslParser) parseGuard(spec *Spec) error {
	if err := p.expectWord("{"); err != nil {
		return err
	}
	t := p.next()
	var rule GuardRule
	rule.Line = t.line
	switch t.text {
	case "nullcheck":
		rule.Kind = GuardNullCheck
	case "boundcheck":
		rule.Kind = GuardBoundCheck
	case "assign":
		if err := p.expectWord("initializes"); err != nil {
			return err
		}
		rule.Kind = GuardAssignInit
	case "terminate":
		if err := p.expectWord("elem"); err != nil {
			return err
		}
		if err := p.expectWord("zero"); err != nil {
			return err
		}
		rule.Kind = GuardTerminate
	case "call":
		callee, _, err := p.expectString()
		if err != nil {
			return err
		}
		rule.Callee = callee
		if err := p.expectWord("releases"); err != nil {
			return err
		}
		if err := p.expectWord("arg"); err != nil {
			return err
		}
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		rule.Kind = GuardCallReleases
		rule.Arg = n
	default:
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("unknown guard form %q", t.text)}
	}
	spec.Guards = append(spec.Guards, rule)
	return p.expectWord("}")
}

func (p *dslParser) parseSink(spec *Spec) error {
	if err := p.expectWord("{"); err != nil {
		return err
	}
	t := p.next()
	var rule SinkRule
	rule.Line = t.line
	switch t.text {
	case "deref":
		w := p.next()
		switch w.text {
		case "unchecked":
			rule.Kind = SinkDerefUnchecked
		case "freed":
			rule.Kind = SinkDerefFreed
		default:
			return &CompileError{Line: w.line, Msg: fmt.Sprintf("unknown deref state %q (want unchecked or freed)", w.text)}
		}
	case "use":
		if err := p.expectWord("uninit"); err != nil {
			return err
		}
		rule.Kind = SinkUseUninit
	case "index":
		w := p.next()
		switch w.text {
		case "tainted":
			rule.Kind = SinkIndexTainted
		case "constant-oob":
			rule.Kind = SinkIndexConstOOB
		default:
			return &CompileError{Line: w.line, Msg: fmt.Sprintf("unknown index sink %q", w.text)}
		}
	case "end-of-function":
		w := p.next()
		switch w.text {
		case "holding":
			rule.Kind = SinkEndHeld
			h := p.next()
			if h.text != "alloc" && h.text != "locked" {
				return &CompileError{Line: h.line, Msg: fmt.Sprintf("unknown held state %q (want alloc or locked)", h.text)}
			}
			rule.Holding = h.text
		case "cleanup":
			if err := p.expectWord("uninit"); err != nil {
				return err
			}
			rule.Kind = SinkEndUninitCleanup
		default:
			return &CompileError{Line: w.line, Msg: fmt.Sprintf("unknown end-of-function sink %q", w.text)}
		}
	case "mul-overflow":
		if err := p.expectWord("into"); err != nil {
			return err
		}
		callee, _, err := p.expectString()
		if err != nil {
			return err
		}
		rule.Kind = SinkMulOverflow
		rule.Callee = callee
		if err := p.expectWord("arg"); err != nil {
			return err
		}
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		rule.Arg = n
		if err := p.expectWord("bits"); err != nil {
			return err
		}
		b, err := p.expectInt()
		if err != nil {
			return err
		}
		rule.Bits = uint(b)
	case "call":
		callee, _, err := p.expectString()
		if err != nil {
			return err
		}
		rule.Callee = callee
		w := p.next()
		switch w.text {
		case "arg":
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			rule.Arg = n
			st := p.next()
			switch st.text {
			case "freed":
				rule.Kind = SinkCallArgFreed
			case "locked":
				rule.Kind = SinkCallArgLocked
			case "unterminated":
				rule.Kind = SinkCallArgUnterminated
			case "possibly-negative":
				rule.Kind = SinkCallArgNegative
			default:
				return &CompileError{Line: st.line, Msg: fmt.Sprintf("unknown call-arg state %q", st.text)}
			}
		case "size-arg":
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			rule.SizeArg = n
			if err := p.expectWord("buf-arg"); err != nil {
				return err
			}
			m, err := p.expectInt()
			if err != nil {
				return err
			}
			rule.BufArg = m
			rule.Kind = SinkCopyOverflow
			if p.cur().text == "slack" && !p.cur().isStr {
				p.next()
				k, err := p.expectInt()
				if err != nil {
					return err
				}
				rule.Slack = k
			}
		default:
			return &CompileError{Line: w.line, Msg: fmt.Sprintf("unknown call sink form %q", w.text)}
		}
	default:
		return &CompileError{Line: t.line, Msg: fmt.Sprintf("unknown sink form %q", t.text)}
	}
	if p.cur().text == "report" && !p.cur().isStr {
		p.next()
		msg, _, err := p.expectString()
		if err != nil {
			return err
		}
		rule.Message = msg
	}
	spec.Sinks = append(spec.Sinks, rule)
	return p.expectWord("}")
}
