// Package ckdsl defines the checker DSL — the artifact KNighter's
// synthesis pipeline generates, repairs, validates, and refines.
//
// A DSL program plays the role of the C++ CSA checker in the paper: it is
// human-readable, can fail to parse ("compilation error"), can be
// rejected at registration ("compilation error"), can crash during
// analysis ("runtime error"), and can be semantically wrong or over-broad
// (invalid checkers / false positives). The compiler lowers a parsed Spec
// onto the engine's checker callback interfaces.
package ckdsl

import (
	"fmt"
	"strings"
)

// SourceKind enumerates taint-introduction rules.
type SourceKind int

// Source kinds.
const (
	SrcCallYields  SourceKind = iota // call "f" yields nullable|alloc|taint
	SrcCallFrees                     // call "f" frees arg N
	SrcCallLocks                     // call "f" locks arg N
	SrcCallUnlocks                   // call "f" unlocks arg N
	SrcCallDerives                   // call "f" derives arg N   (ret derived from arg)
	SrcCallWrites                    // call "f" writes arg N unterminated
	SrcDeclUninit                    // decl uninit [cleanup-only]
)

// GuardKind enumerates rules that neutralize tracked state.
type GuardKind int

// Guard kinds.
const (
	GuardNullCheck    GuardKind = iota // nullcheck
	GuardBoundCheck                    // boundcheck
	GuardCallReleases                  // call "f" releases arg N
	GuardAssignInit                    // assign initializes
	GuardTerminate                     // terminate elem zero
)

// SinkKind enumerates report-triggering rules.
type SinkKind int

// Sink kinds.
const (
	SinkDerefUnchecked      SinkKind = iota // deref unchecked
	SinkDerefFreed                          // deref freed
	SinkCallArgFreed                        // call "f" arg N freed
	SinkCallArgLocked                       // call "f" arg N locked
	SinkCallArgUnterminated                 // call "f" arg N unterminated
	SinkCallArgNegative                     // call "f" arg N possibly-negative
	SinkCopyOverflow                        // call "f" size-arg N buf-arg M slack K
	SinkMulOverflow                         // mul-overflow into "f" arg N bits B
	SinkIndexTainted                        // index tainted
	SinkIndexConstOOB                       // index constant-oob
	SinkEndHeld                             // end-of-function holding alloc|locked
	SinkEndUninitCleanup                    // end-of-function cleanup uninit
	SinkUseUninit                           // use uninit
)

// SourceRule introduces tracked state.
type SourceRule struct {
	Kind        SourceKind
	Callee      string
	Arg         int
	Yields      string // "nullable" | "alloc" | "taint"
	CleanupOnly bool
	Line        int
}

// GuardRule neutralizes tracked state.
type GuardRule struct {
	Kind   GuardKind
	Callee string
	Arg    int
	Line   int
}

// SinkRule triggers a report.
type SinkRule struct {
	Kind    SinkKind
	Callee  string
	Arg     int
	SizeArg int
	BufArg  int
	Slack   int
	Bits    uint
	Holding string // for SinkEndHeld: "alloc" | "locked"
	Message string
	Line    int
}

// Spec is a parsed checker program.
type Spec struct {
	Name        string
	BugTypeName string
	Description string
	Unwrap      []string // wrapper macros guards see through
	TrackAlias  bool     // value-based (semantic) vs syntactic tracking
	Sources     []SourceRule
	Guards      []GuardRule
	Sinks       []SinkRule
}

// yieldsAny reports whether any source yields the given taint class.
func (s *Spec) yieldsAny(class string) bool {
	for _, src := range s.Sources {
		if src.Kind == SrcCallYields && src.Yields == class {
			return true
		}
	}
	return false
}

func (s *Spec) hasSourceKind(k SourceKind) bool {
	for _, src := range s.Sources {
		if src.Kind == k {
			return true
		}
	}
	return false
}

func (s *Spec) hasGuardKind(k GuardKind) bool {
	for _, g := range s.Guards {
		if g.Kind == k {
			return true
		}
	}
	return false
}

// String renders the spec in canonical DSL syntax; parsing the output
// yields an equivalent spec.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checker %s {\n", s.Name)
	fmt.Fprintf(&b, "  bugtype %q\n", s.BugTypeName)
	if s.Description != "" {
		fmt.Fprintf(&b, "  description %q\n", s.Description)
	}
	if s.TrackAlias {
		b.WriteString("  track aliases\n")
	}
	if len(s.Unwrap) > 0 {
		b.WriteString("  unwrap")
		for _, u := range s.Unwrap {
			fmt.Fprintf(&b, " %q", u)
		}
		b.WriteString("\n")
	}
	for _, src := range s.Sources {
		b.WriteString("  source { ")
		switch src.Kind {
		case SrcCallYields:
			fmt.Fprintf(&b, "call %q yields %s", src.Callee, src.Yields)
		case SrcCallFrees:
			fmt.Fprintf(&b, "call %q frees arg %d", src.Callee, src.Arg)
		case SrcCallLocks:
			fmt.Fprintf(&b, "call %q locks arg %d", src.Callee, src.Arg)
		case SrcCallUnlocks:
			fmt.Fprintf(&b, "call %q unlocks arg %d", src.Callee, src.Arg)
		case SrcCallDerives:
			fmt.Fprintf(&b, "call %q derives arg %d", src.Callee, src.Arg)
		case SrcCallWrites:
			fmt.Fprintf(&b, "call %q writes arg %d unterminated", src.Callee, src.Arg)
		case SrcDeclUninit:
			b.WriteString("decl uninit")
			if src.CleanupOnly {
				b.WriteString(" cleanup-only")
			}
		}
		b.WriteString(" }\n")
	}
	for _, g := range s.Guards {
		b.WriteString("  guard { ")
		switch g.Kind {
		case GuardNullCheck:
			b.WriteString("nullcheck")
		case GuardBoundCheck:
			b.WriteString("boundcheck")
		case GuardCallReleases:
			fmt.Fprintf(&b, "call %q releases arg %d", g.Callee, g.Arg)
		case GuardAssignInit:
			b.WriteString("assign initializes")
		case GuardTerminate:
			b.WriteString("terminate elem zero")
		}
		b.WriteString(" }\n")
	}
	for _, sk := range s.Sinks {
		b.WriteString("  sink { ")
		switch sk.Kind {
		case SinkDerefUnchecked:
			b.WriteString("deref unchecked")
		case SinkDerefFreed:
			b.WriteString("deref freed")
		case SinkCallArgFreed:
			fmt.Fprintf(&b, "call %q arg %d freed", sk.Callee, sk.Arg)
		case SinkCallArgLocked:
			fmt.Fprintf(&b, "call %q arg %d locked", sk.Callee, sk.Arg)
		case SinkCallArgUnterminated:
			fmt.Fprintf(&b, "call %q arg %d unterminated", sk.Callee, sk.Arg)
		case SinkCallArgNegative:
			fmt.Fprintf(&b, "call %q arg %d possibly-negative", sk.Callee, sk.Arg)
		case SinkCopyOverflow:
			fmt.Fprintf(&b, "call %q size-arg %d buf-arg %d slack %d", sk.Callee, sk.SizeArg, sk.BufArg, sk.Slack)
		case SinkMulOverflow:
			fmt.Fprintf(&b, "mul-overflow into %q arg %d bits %d", sk.Callee, sk.Arg, sk.Bits)
		case SinkIndexTainted:
			b.WriteString("index tainted")
		case SinkIndexConstOOB:
			b.WriteString("index constant-oob")
		case SinkEndHeld:
			fmt.Fprintf(&b, "end-of-function holding %s", sk.Holding)
		case SinkEndUninitCleanup:
			b.WriteString("end-of-function cleanup uninit")
		case SinkUseUninit:
			b.WriteString("use uninit")
		}
		if sk.Message != "" {
			fmt.Fprintf(&b, " report %q", sk.Message)
		}
		b.WriteString(" }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// LineCount returns the number of non-blank lines in the canonical
// rendering (the paper's checker-LoC metric analog).
func (s *Spec) LineCount() int {
	n := 0
	for _, l := range strings.Split(s.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// Capabilities classifies the static-analysis machinery a spec uses,
// mirroring the paper's §5.1 capability taxonomy.
type Capabilities struct {
	PathSensitive bool // branch-dependent state (guards or end-of-function sinks)
	RegionBased   bool // region/field/element reasoning
	StateTracking bool // >= 2 independent state domains
	ASTTraveler   bool // purely syntactic tracking (no alias tracking)
}

// Capabilities derives the capability profile of the spec, mirroring the
// paper's §5.1 taxonomy: almost all checkers are path-sensitive, a
// subset reasons about memory regions, "advanced state tracking" means
// cross-callback custom state beyond one boolean map, and a few purely
// syntactic checkers are classified as AST travelers.
func (s *Spec) Capabilities() Capabilities {
	var c Capabilities
	// A checker is an AST traveler when it keys its object tracking by
	// source spelling instead of values.
	if !s.TrackAlias && (s.yieldsAny("nullable") || s.hasSourceKind(SrcCallFrees)) {
		c.ASTTraveler = true
	}
	// Everything the engine runs is path-sensitive except the purely
	// syntactic trackers.
	c.PathSensitive = !c.ASTTraveler
	for _, sk := range s.Sinks {
		switch sk.Kind {
		case SinkDerefUnchecked, SinkDerefFreed, SinkIndexTainted, SinkIndexConstOOB,
			SinkCopyOverflow, SinkCallArgUnterminated:
			c.RegionBased = true
		}
	}
	domains := map[string]bool{}
	for _, src := range s.Sources {
		switch src.Kind {
		case SrcCallYields:
			domains["track:"+src.Yields] = true
		case SrcCallFrees:
			domains["freed"] = true
		case SrcCallDerives:
			domains["derived"] = true
		case SrcCallLocks, SrcCallUnlocks:
			domains["lock"] = true
		case SrcCallWrites:
			domains["term"] = true
		case SrcDeclUninit:
			domains["uninit"] = true
		}
	}
	for _, g := range s.Guards {
		if g.Kind == GuardBoundCheck {
			domains["bounded"] = true
		}
	}
	if len(domains) >= 2 || (s.TrackAlias && len(domains) >= 1) {
		c.StateTracking = true
	}
	return c
}
