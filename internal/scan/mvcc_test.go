package scan

import (
	"context"
	"testing"
	"time"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// corpusAt deep-copies the codebase's current corpus sources so a cold
// codebase can be rebuilt later from exactly this state, whatever
// mutations land in between.
func corpusAt(cb *Codebase) *kernel.Corpus {
	files := make([]*kernel.SourceFile, len(cb.Corpus.Files))
	for i, f := range cb.Corpus.Files {
		cp := *f
		files[i] = &cp
	}
	return &kernel.Corpus{Files: files}
}

// coldScanOf parses the given corpus state from scratch and scans it —
// the ground truth a pinned snapshot must reproduce byte-for-byte.
func coldScanOf(t *testing.T, corpus *kernel.Corpus) *Result {
	t.Helper()
	cold, err := NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	return cold.RunOne(compileChecker(t), Options{Workers: 1})
}

// TestSnapshotReaderSeesPinnedGeneration is the tentpole acceptance
// criterion: a scan admitted (pinned) before a changeset commits sees
// the pre-changeset corpus byte-identically — as if the writer never
// existed — while a scan admitted after sees the post-changeset corpus.
func TestSnapshotReaderSeesPinnedGeneration(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	files := pickFiles(t, cb, 2, 2)
	for _, i := range files {
		canonicalize(t, inc, i)
	}
	before := corpusAt(cb)
	genBefore := cb.Generation()

	// Admit a reader now: it pins the pre-changeset generation.
	pinned := cb.Pin()
	defer pinned.Release()
	if pinned.Generation() != genBefore {
		t.Fatalf("pinned generation = %d, want %d", pinned.Generation(), genBefore)
	}

	// Commit a changeset behind the pinned reader's back.
	var changes []Change
	for _, i := range files {
		j := len(cb.Files()[i].Funcs) - 1
		changes = append(changes, Change{
			Path:   cb.Files()[i].Name,
			Func:   cb.Files()[i].Funcs[j].Name,
			Source: tweakedFunc(t, cb, i, j),
		})
	}
	if _, err := inc.ApplyChangeset(changes); err != nil {
		t.Fatal(err)
	}
	if cb.Generation() != genBefore+1 {
		t.Fatalf("live generation = %d, want %d", cb.Generation(), genBefore+1)
	}

	// The pinned reader scans the OLD world, byte-identically.
	all := make([]int, len(pinned.Files()))
	for i := range all {
		all[i] = i
	}
	old := inc.RunFilesAt(pinned.Snapshot, all, []checker.Checker{ck}, Options{Workers: 1})
	if old.Generation != genBefore {
		t.Fatalf("pinned scan reported generation %d, want %d", old.Generation, genBefore)
	}
	if got, want := resultBytes(t, old), resultBytes(t, coldScanOf(t, before)); got != want {
		t.Fatalf("pinned scan != cold scan of pinned state\ngot:  %s\nwant: %s", got, want)
	}

	// A fresh reader scans the NEW world, byte-identically.
	now := inc.RunOne(ck, Options{Workers: 1})
	if now.Generation != genBefore+1 {
		t.Fatalf("fresh scan reported generation %d, want %d", now.Generation, genBefore+1)
	}
	if got, want := resultBytes(t, now), resultBytes(t, coldScanOf(t, corpusAt(cb))); got != want {
		t.Fatalf("fresh scan != cold scan of live state\ngot:  %s\nwant: %s", got, want)
	}
}

// TestPinnedSnapshotsCountsSupersededGenerations: pins at the live
// generation are invisible (nothing is held back), pins at superseded
// generations count once per distinct generation, and releasing the
// last pin of a generation drops it from the gauge.
func TestPinnedSnapshotsCountsSupersededGenerations(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	p1 := cb.Pin()
	p2 := cb.Pin()
	if n := cb.PinnedSnapshots(); n != 0 {
		t.Fatalf("pins at live generation counted as %d superseded, want 0", n)
	}

	canonicalize(t, inc, 0) // bump the generation; p1/p2 now pin an old one
	if n := cb.PinnedSnapshots(); n != 1 {
		t.Fatalf("PinnedSnapshots = %d after commit, want 1 (one distinct old generation)", n)
	}

	p1.Release()
	if n := cb.PinnedSnapshots(); n != 1 {
		t.Fatalf("PinnedSnapshots = %d after releasing one of two pins, want 1", n)
	}
	p2.Release()
	p2.Release() // idempotent: double release must not underflow
	if n := cb.PinnedSnapshots(); n != 0 {
		t.Fatalf("PinnedSnapshots = %d after releasing all pins, want 0", n)
	}
}

// TestAsyncChangesetTokensCommitInOrder: async changesets reserve
// generation tokens at submission and commit in token order; a failed
// async changeset burns its token (an empty commit) without touching
// the corpus, so later tokens — and min_generation waits on the failed
// one — still resolve.
func TestAsyncChangesetTokensCommitInOrder(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))
	canonicalize(t, inc, 0)
	base := cb.Generation()
	path := cb.Files()[0].Name
	goodSrc := minic.FormatFile(cb.Files()[0])

	a := inc.ApplyChangesetAsync([]Change{{Path: path, Source: goodSrc}})
	b := inc.ApplyChangesetAsync([]Change{{Path: path, Source: "int broken("}})
	c := inc.ApplyChangesetAsync([]Change{{Path: path, Source: goodSrc}})

	if a.Generation != base+1 || b.Generation != base+2 || c.Generation != base+3 {
		t.Fatalf("tokens = %d,%d,%d, want %d,%d,%d",
			a.Generation, b.Generation, c.Generation, base+1, base+2, base+3)
	}

	if cs, err := a.Result(); err != nil || cs.Generation != base+1 {
		t.Fatalf("changeset A: cs=%+v err=%v", cs, err)
	}
	if _, err := b.Result(); err == nil {
		t.Fatal("changeset B (broken source) committed, want error")
	}
	if cs, err := c.Result(); err != nil || cs.Generation != base+3 {
		t.Fatalf("changeset C: cs=%+v err=%v", cs, err)
	}

	// B's failure burned generation base+2 without corrupting state: the
	// live corpus still equals a cold parse of its own sources.
	if got := cb.Generation(); got != base+3 {
		t.Fatalf("final generation = %d, want %d", got, base+3)
	}
	want := resultBytes(t, coldScanOf(t, corpusAt(cb)))
	if got := resultBytes(t, inc.RunOne(compileChecker(t), Options{Workers: 1})); got != want {
		t.Fatalf("post-async corpus != cold parse\ngot:  %s\nwant: %s", got, want)
	}
}

// TestWaitForGeneration covers the min_generation primitive: already
// satisfied → immediate true; satisfied by a later commit → true; never
// satisfied within the deadline → false.
func TestWaitForGeneration(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	ctx := context.Background()
	if !cb.WaitForGeneration(ctx, cb.Generation()) {
		t.Fatal("WaitForGeneration(current) = false, want immediate true")
	}

	target := cb.Generation() + 1
	done := make(chan bool, 1)
	go func() {
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		done <- cb.WaitForGeneration(wctx, target)
	}()
	canonicalize(t, inc, 0)
	if !<-done {
		t.Fatalf("WaitForGeneration(%d) = false after commit reached it", target)
	}

	wctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if cb.WaitForGeneration(wctx, cb.Generation()+100) {
		t.Fatal("WaitForGeneration(unreachable) = true, want timeout false")
	}
}
