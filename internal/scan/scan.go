// Package scan orchestrates whole-corpus analysis runs: the
// reproduction's analog of scanning the Linux tree with -j32 (§5).
package scan

import (
	"fmt"
	"runtime"
	"sync"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/minic"
)

// Codebase is a parsed corpus, reusable across many checker runs.
type Codebase struct {
	Corpus *kernel.Corpus
	Files  []*minic.File
}

// NewCodebase parses every corpus file once.
func NewCodebase(c *kernel.Corpus) (*Codebase, error) {
	cb := &Codebase{Corpus: c}
	for _, f := range c.Files {
		pf, err := minic.ParseFile(f.Path, f.Src)
		if err != nil {
			return nil, fmt.Errorf("scan: parse %s: %w", f.Path, err)
		}
		cb.Files = append(cb.Files, pf)
	}
	return cb, nil
}

// Options configures a scan.
type Options struct {
	// Workers is the parallelism degree (default: GOMAXPROCS).
	Workers int
	// MaxReports caps the collected reports (0 = unlimited). The paper
	// caps refinement-phase scans at 100 warnings.
	MaxReports int
	// Engine passes through per-function analysis options.
	Engine engine.Options
}

// Result of a corpus scan.
type Result struct {
	Reports      []*checker.Report
	RuntimeErrs  []engine.RuntimeErr
	FilesScanned int
	FuncsScanned int
	Truncated    bool
}

// Run scans the whole codebase with the given checkers. Results are
// deterministic regardless of parallelism: per-file results are merged
// in file order.
func (cb *Codebase) Run(checkers []checker.Checker, opts Options) *Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perFile := make([]*engine.Result, len(cb.Files))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				eo := opts.Engine
				eo.Checkers = checkers
				perFile[i] = engine.AnalyzeFile(cb.Files[i], eo)
			}
		}()
	}
	for i := range cb.Files {
		idx <- i
	}
	close(idx)
	wg.Wait()

	out := &Result{FilesScanned: len(cb.Files)}
	for i, r := range perFile {
		out.FuncsScanned += len(cb.Files[i].Funcs)
		out.RuntimeErrs = append(out.RuntimeErrs, r.RuntimeErrs...)
		for _, rep := range r.Reports {
			if opts.MaxReports > 0 && len(out.Reports) >= opts.MaxReports {
				out.Truncated = true
				return out
			}
			out.Reports = append(out.Reports, rep)
		}
	}
	return out
}

// RunOne scans with a single checker (the per-checker refinement scans).
func (cb *Codebase) RunOne(ck checker.Checker, opts Options) *Result {
	return cb.Run([]checker.Checker{ck}, opts)
}
