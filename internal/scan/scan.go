// Package scan orchestrates whole-corpus analysis runs: the
// reproduction's analog of scanning the Linux tree with -j32 (§5). It
// offers two schedulers: Codebase.Run, a file-level fan-out that always
// analyzes everything, and Incremental, a function-level scheduler that
// consults a content-addressed result cache and only analyzes misses.
// The codebase is mutable: Patch and Replace swap in new source for one
// file, and ApplyChangeset applies a commit-sized multi-file changeset
// atomically — either way only the touched files re-parse and re-hash,
// and every other file's cache entries stay warm.
package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// Codebase is a parsed corpus, reusable across many checker runs and
// mutable between them (Patch, Replace, ApplyChangeset).
type Codebase struct {
	// mu guards Files, Corpus file sources, and the generation counter.
	// Scans hold the read lock for their whole run; mutations take the
	// write lock, so a patch waits for in-flight scans and blocks new
	// ones until the swap is done.
	mu     sync.RWMutex
	Corpus *kernel.Corpus
	Files  []*minic.File
	// generation counts applied mutations (0 = as parsed); numFuncs
	// mirrors the total function count. Both atomic so liveness and
	// stats probes can read them without queueing behind a pending
	// mutation's write lock.
	generation atomic.Int64
	numFuncs   atomic.Int64

	// Content hashes for the incremental scheduler, computed lazily and
	// memoized: a function's analysis depends on its own source, its
	// position (reports carry absolute line/col), and the file-level
	// declarations it can see, so the hash covers all three.
	hashMu     sync.Mutex
	ctxHashes  []string
	funcHashes map[[2]int]string
}

// NewCodebase parses every corpus file once.
func NewCodebase(c *kernel.Corpus) (*Codebase, error) {
	cb := &Codebase{Corpus: c}
	for _, f := range c.Files {
		pf, err := minic.ParseFile(f.Path, f.Src)
		if err != nil {
			return nil, fmt.Errorf("scan: parse %s: %w", f.Path, err)
		}
		cb.Files = append(cb.Files, pf)
		cb.numFuncs.Add(int64(len(pf.Funcs)))
	}
	return cb, nil
}

// FuncHash returns the content address of function j of file i: a hash
// of the canonical rendering of the function, its source position, and
// the file context (file name, structs, globals) its analysis can
// observe.
func (cb *Codebase) FuncHash(i, j int) string {
	cb.mu.RLock()
	defer cb.mu.RUnlock()
	return cb.funcHash(i, j)
}

// funcHash is FuncHash with cb.mu already held (read or write).
func (cb *Codebase) funcHash(i, j int) string {
	cb.hashMu.Lock()
	defer cb.hashMu.Unlock()
	if cb.funcHashes == nil {
		cb.funcHashes = map[[2]int]string{}
	}
	k := [2]int{i, j}
	if h, ok := cb.funcHashes[k]; ok {
		return h
	}
	if cb.ctxHashes == nil {
		cb.ctxHashes = make([]string, len(cb.Files))
	}
	f := cb.Files[i]
	if cb.ctxHashes[i] == "" {
		ctx := minic.FormatFile(&minic.File{Name: f.Name, Structs: f.Structs, Globals: f.Globals})
		cb.ctxHashes[i] = store.Hash("filectx:v1", f.Name, ctx)
	}
	fn := f.Funcs[j]
	// v2: the declaration position is part of the function's identity —
	// cached reports carry absolute line/col, so a function whose text
	// is unchanged but which moved within its file must re-analyze.
	h := store.Hash("func:v2", cb.ctxHashes[i],
		fmt.Sprintf("%d:%d", fn.Pos.Line, fn.Pos.Col), minic.FormatFunc(fn))
	cb.funcHashes[k] = h
	return h
}

// invalidateFileHashes drops the memoized hashes of file i (after a
// mutation swapped its AST). Caller holds cb.mu for writing.
func (cb *Codebase) invalidateFileHashes(i int) {
	cb.hashMu.Lock()
	defer cb.hashMu.Unlock()
	if cb.ctxHashes != nil {
		cb.ctxHashes[i] = ""
	}
	for k := range cb.funcHashes {
		if k[0] == i {
			delete(cb.funcHashes, k)
		}
	}
}

// FileIndex returns the index of the parsed file with the given path,
// or -1.
func (cb *Codebase) FileIndex(path string) int {
	cb.mu.RLock()
	defer cb.mu.RUnlock()
	return cb.fileIndex(path)
}

func (cb *Codebase) fileIndex(path string) int {
	for i, f := range cb.Files {
		if f.Name == path {
			return i
		}
	}
	return -1
}

// Generation returns the number of mutations applied to the codebase
// since it was parsed. It never blocks, even behind a pending mutation.
func (cb *Codebase) Generation() int64 {
	return cb.generation.Load()
}

// NumFuncs returns the current total function count across all files.
// Like Generation, it never blocks.
func (cb *Codebase) NumFuncs() int {
	return int(cb.numFuncs.Load())
}

// Options configures a scan.
type Options struct {
	// Workers is the parallelism degree (default: GOMAXPROCS).
	Workers int
	// MaxReports caps the collected reports (0 = unlimited). The paper
	// caps refinement-phase scans at 100 warnings.
	MaxReports int
	// FuncTimeout is a per-function wall-clock budget (0 = none), so one
	// pathological function cannot stall a whole scan or a kserve batch
	// request. Functions over budget yield truncated, uncacheable
	// results counted in Result.FuncsTimedOut.
	FuncTimeout time.Duration
	// Context, when non-nil, aborts the scan early on cancellation:
	// remaining functions are skipped, in-flight ones unwind at the
	// engine's amortized check points, and the result comes back flagged
	// Canceled. Canceled per-function results are never cached, so an
	// aborted scan leaves no wrong entries behind — kserve uses this to
	// stop paying for scans whose client already disconnected.
	Context context.Context
	// Engine passes through per-function analysis options.
	Engine engine.Options
}

// engineOptions resolves the effective engine options for a scan.
func (o Options) engineOptions(checkers []checker.Checker) engine.Options {
	eo := o.Engine
	eo.Checkers = checkers
	if o.FuncTimeout > 0 {
		eo.Timeout = o.FuncTimeout
	}
	if o.Context != nil {
		eo.Ctx = o.Context
	}
	return eo
}

// canceled reports whether the scan's context (if any) is done.
func (o Options) canceled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Result of a corpus scan.
type Result struct {
	Reports      []*checker.Report
	RuntimeErrs  []engine.RuntimeErr
	FilesScanned int
	FuncsScanned int
	Truncated    bool
	// FuncsTimedOut counts functions whose analysis was cut short by the
	// per-function timeout budget (function-level scheduler only; the
	// file-level Codebase.Run lacks per-function granularity).
	FuncsTimedOut int
	// Canceled marks a scan aborted by Options.Context: some functions
	// were skipped or cut short, and none of those were cached.
	Canceled bool
	// CacheHits and CacheMisses count per-function cache outcomes for
	// incremental scans (both zero for uncached Codebase.Run scans and
	// for uncacheable checker batches).
	CacheHits   int
	CacheMisses int
	// CacheCoalesced counts misses that were served by another in-flight
	// computation of the same key instead of analyzing here (stores
	// wrapped in store.NewCoalesced only). Always <= CacheMisses.
	CacheCoalesced int
	// Elapsed is this scan's own wall time — for RunBatch entries, the
	// individual checker's cost, not the whole batch's.
	Elapsed time.Duration
}

// Run scans the whole codebase with the given checkers. Results are
// deterministic regardless of parallelism: per-file results are merged
// in file order.
func (cb *Codebase) Run(checkers []checker.Checker, opts Options) *Result {
	cb.mu.RLock()
	defer cb.mu.RUnlock()
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eo := opts.engineOptions(checkers)
	perFile := make([]*engine.Result, len(cb.Files))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				perFile[i] = engine.AnalyzeFile(cb.Files[i], eo)
			}
		}()
	}
	for i := range cb.Files {
		idx <- i
	}
	close(idx)
	wg.Wait()

	out := &Result{FilesScanned: len(cb.Files)}
	for i, r := range perFile {
		out.FuncsScanned += len(cb.Files[i].Funcs)
		out.RuntimeErrs = append(out.RuntimeErrs, r.RuntimeErrs...)
		for _, rep := range r.Reports {
			if opts.MaxReports > 0 && len(out.Reports) >= opts.MaxReports {
				// Stop collecting reports but keep aggregating counters
				// and runtime errors from the remaining files, so a
				// truncated result still reflects the whole scan.
				out.Truncated = true
				break
			}
			out.Reports = append(out.Reports, rep)
		}
	}
	out.Elapsed = time.Since(start)
	return out
}

// RunOne scans with a single checker (the per-checker refinement scans).
func (cb *Codebase) RunOne(ck checker.Checker, opts Options) *Result {
	return cb.Run([]checker.Checker{ck}, opts)
}
