// Package scan orchestrates whole-corpus analysis runs: the
// reproduction's analog of scanning the Linux tree with -j32 (§5). It
// offers two schedulers: Codebase.Run, a file-level fan-out that always
// analyzes everything, and Incremental, a function-level scheduler that
// consults a content-addressed result cache and only analyzes misses.
package scan

import (
	"fmt"
	"runtime"
	"sync"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// Codebase is a parsed corpus, reusable across many checker runs.
type Codebase struct {
	Corpus *kernel.Corpus
	Files  []*minic.File

	// Content hashes for the incremental scheduler, computed lazily and
	// memoized: a function's analysis depends on its own source plus the
	// file-level declarations it can see, so the hash covers both.
	hashMu     sync.Mutex
	ctxHashes  []string
	funcHashes map[[2]int]string
}

// NewCodebase parses every corpus file once.
func NewCodebase(c *kernel.Corpus) (*Codebase, error) {
	cb := &Codebase{Corpus: c}
	for _, f := range c.Files {
		pf, err := minic.ParseFile(f.Path, f.Src)
		if err != nil {
			return nil, fmt.Errorf("scan: parse %s: %w", f.Path, err)
		}
		cb.Files = append(cb.Files, pf)
	}
	return cb, nil
}

// FuncHash returns the content address of function j of file i: a hash
// of the canonical rendering of the function plus the file context
// (file name, structs, globals) its analysis can observe.
func (cb *Codebase) FuncHash(i, j int) string {
	cb.hashMu.Lock()
	defer cb.hashMu.Unlock()
	if cb.funcHashes == nil {
		cb.funcHashes = map[[2]int]string{}
	}
	k := [2]int{i, j}
	if h, ok := cb.funcHashes[k]; ok {
		return h
	}
	if cb.ctxHashes == nil {
		cb.ctxHashes = make([]string, len(cb.Files))
	}
	f := cb.Files[i]
	if cb.ctxHashes[i] == "" {
		ctx := minic.FormatFile(&minic.File{Name: f.Name, Structs: f.Structs, Globals: f.Globals})
		cb.ctxHashes[i] = store.Hash("filectx:v1", f.Name, ctx)
	}
	h := store.Hash("func:v1", cb.ctxHashes[i], minic.FormatFunc(f.Funcs[j]))
	cb.funcHashes[k] = h
	return h
}

// FileIndex returns the index of the parsed file with the given path,
// or -1.
func (cb *Codebase) FileIndex(path string) int {
	for i, f := range cb.Files {
		if f.Name == path {
			return i
		}
	}
	return -1
}

// Options configures a scan.
type Options struct {
	// Workers is the parallelism degree (default: GOMAXPROCS).
	Workers int
	// MaxReports caps the collected reports (0 = unlimited). The paper
	// caps refinement-phase scans at 100 warnings.
	MaxReports int
	// Engine passes through per-function analysis options.
	Engine engine.Options
}

// Result of a corpus scan.
type Result struct {
	Reports      []*checker.Report
	RuntimeErrs  []engine.RuntimeErr
	FilesScanned int
	FuncsScanned int
	Truncated    bool
	// CacheHits and CacheMisses count per-function cache outcomes for
	// incremental scans (both zero for uncached Codebase.Run scans and
	// for uncacheable checker batches).
	CacheHits   int
	CacheMisses int
}

// Run scans the whole codebase with the given checkers. Results are
// deterministic regardless of parallelism: per-file results are merged
// in file order.
func (cb *Codebase) Run(checkers []checker.Checker, opts Options) *Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perFile := make([]*engine.Result, len(cb.Files))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				eo := opts.Engine
				eo.Checkers = checkers
				perFile[i] = engine.AnalyzeFile(cb.Files[i], eo)
			}
		}()
	}
	for i := range cb.Files {
		idx <- i
	}
	close(idx)
	wg.Wait()

	out := &Result{FilesScanned: len(cb.Files)}
	for i, r := range perFile {
		out.FuncsScanned += len(cb.Files[i].Funcs)
		out.RuntimeErrs = append(out.RuntimeErrs, r.RuntimeErrs...)
		for _, rep := range r.Reports {
			if opts.MaxReports > 0 && len(out.Reports) >= opts.MaxReports {
				// Stop collecting reports but keep aggregating counters
				// and runtime errors from the remaining files, so a
				// truncated result still reflects the whole scan.
				out.Truncated = true
				break
			}
			out.Reports = append(out.Reports, rep)
		}
	}
	return out
}

// RunOne scans with a single checker (the per-checker refinement scans).
func (cb *Codebase) RunOne(ck checker.Checker, opts Options) *Result {
	return cb.Run([]checker.Checker{ck}, opts)
}
