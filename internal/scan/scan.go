// Package scan orchestrates whole-corpus analysis runs: the
// reproduction's analog of scanning the Linux tree with -j32 (§5). It
// offers two schedulers: Codebase.Run, a file-level fan-out that always
// analyzes everything, and Incremental, a function-level scheduler that
// consults a content-addressed result cache and only analyzes misses.
//
// The codebase is mutable and multi-version: Patch and Replace swap in
// new source for one file, and ApplyChangeset applies a commit-sized
// multi-file changeset atomically — either way only the touched files
// re-parse and re-hash, and every other file's cache entries stay warm.
// Mutations are MVCC copy-on-write: each commit builds the next
// immutable Snapshot off to the side and publishes it with a single
// pointer swap, so a scan pinned to the previous generation never
// blocks on a writer and never observes a half-applied changeset.
// ApplyChangesetAsync reserves a generation token up front and commits
// in the background, in token order.
package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/minic"
)

// Codebase is a parsed corpus, reusable across many checker runs and
// mutable between them (Patch, Replace, ApplyChangeset,
// ApplyChangesetAsync). The live parse state lives in an immutable
// Snapshot behind an atomic pointer: readers pin it and run lock-free;
// writers serialize on a short mutation lock, build the successor
// snapshot, and commit by swapping the pointer.
type Codebase struct {
	Corpus *kernel.Corpus

	// snap is the live (committed) snapshot. generation and numFuncs
	// mirror it atomically so liveness and stats probes never touch a
	// lock, even mid-commit.
	snap       atomic.Pointer[Snapshot]
	generation atomic.Int64
	numFuncs   atomic.Int64

	// Writer coordination. wmu serializes stage+commit; nextGen is the
	// highest generation handed out (committed or reserved by an async
	// changeset). Sync writers wait on wcond until every reserved ticket
	// ahead of them has committed; async commits wait until the ticket
	// just below theirs is live, so generations publish in token order.
	wmu     sync.Mutex
	wcond   *sync.Cond
	nextGen int64

	// Pin registry: generation -> active pin count, for the
	// pinned_snapshots stat. Snapshots stay valid after unpinning (GC
	// owns their lifetime); the registry is observability, not safety.
	pinMu sync.Mutex
	pins  map[int64]int

	// watch is closed and replaced on every commit, waking
	// WaitForGeneration callers.
	watchMu sync.Mutex
	watch   chan struct{}
}

// NewCodebase parses every corpus file once into generation 0.
func NewCodebase(c *kernel.Corpus) (*Codebase, error) {
	var files []*minic.File
	for _, f := range c.Files {
		pf, err := minic.ParseFile(f.Path, f.Src)
		if err != nil {
			return nil, fmt.Errorf("scan: parse %s: %w", f.Path, err)
		}
		files = append(files, pf)
	}
	cb := &Codebase{Corpus: c, pins: map[int64]int{}, watch: make(chan struct{})}
	cb.wcond = sync.NewCond(&cb.wmu)
	s := newSnapshot(0, files)
	cb.snap.Store(s)
	cb.numFuncs.Store(int64(s.numFuncs))
	return cb, nil
}

// Files returns the live snapshot's parsed files. The slice and its
// contents are immutable; a concurrent changeset publishes a NEW slice
// rather than mutating this one, so the returned value is a consistent
// point-in-time view. Callers that index repeatedly and need one
// generation throughout should Pin instead.
func (cb *Codebase) Files() []*minic.File {
	return cb.snap.Load().files
}

// NumFiles returns the corpus file count (fixed for the codebase's
// lifetime: changesets replace file contents, never add or remove
// files).
func (cb *Codebase) NumFiles() int {
	return len(cb.snap.Load().files)
}

// FuncHash returns the content address of function j of file i in the
// live snapshot (see Snapshot.FuncHash).
func (cb *Codebase) FuncHash(i, j int) string {
	return cb.snap.Load().FuncHash(i, j)
}

// FileIndex returns the index of the parsed file with the given path,
// or -1.
func (cb *Codebase) FileIndex(path string) int {
	return cb.snap.Load().FileIndex(path)
}

// Generation returns the committed generation: the number of mutations
// applied to the codebase since it was parsed (0 = as parsed; failed
// async changesets burn their reserved token with an empty commit, so
// the counter also advances past them). It never blocks, even
// mid-commit.
func (cb *Codebase) Generation() int64 {
	return cb.generation.Load()
}

// NumFuncs returns the current total function count across all files.
// Like Generation, it never blocks.
func (cb *Codebase) NumFuncs() int {
	return int(cb.numFuncs.Load())
}

// Options configures a scan.
type Options struct {
	// Workers is the parallelism degree (default: GOMAXPROCS).
	Workers int
	// MaxReports caps the collected reports (0 = unlimited). The paper
	// caps refinement-phase scans at 100 warnings.
	MaxReports int
	// FuncTimeout is a per-function wall-clock budget (0 = none), so one
	// pathological function cannot stall a whole scan or a kserve batch
	// request. Functions over budget yield truncated, uncacheable
	// results counted in Result.FuncsTimedOut.
	FuncTimeout time.Duration
	// Context, when non-nil, aborts the scan early on cancellation:
	// remaining functions are skipped, in-flight ones unwind at the
	// engine's amortized check points, and the result comes back flagged
	// Canceled. Canceled per-function results are never cached, so an
	// aborted scan leaves no wrong entries behind — kserve uses this to
	// stop paying for scans whose client already disconnected.
	Context context.Context
	// Engine passes through per-function analysis options.
	Engine engine.Options
}

// engineOptions resolves the effective engine options for a scan.
func (o Options) engineOptions(checkers []checker.Checker) engine.Options {
	eo := o.Engine
	eo.Checkers = checkers
	if o.FuncTimeout > 0 {
		eo.Timeout = o.FuncTimeout
	}
	if o.Context != nil {
		eo.Ctx = o.Context
	}
	return eo
}

// canceled reports whether the scan's context (if any) is done.
func (o Options) canceled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Result of a corpus scan.
type Result struct {
	Reports      []*checker.Report
	RuntimeErrs  []engine.RuntimeErr
	FilesScanned int
	FuncsScanned int
	Truncated    bool
	// FuncsTimedOut counts functions whose analysis was cut short by the
	// per-function timeout budget (function-level scheduler only; the
	// file-level Codebase.Run lacks per-function granularity).
	FuncsTimedOut int
	// Canceled marks a scan aborted by Options.Context: some functions
	// were skipped or cut short, and none of those were cached.
	Canceled bool
	// CacheHits and CacheMisses count per-function cache outcomes for
	// incremental scans (both zero for uncached Codebase.Run scans and
	// for uncacheable checker batches).
	CacheHits   int
	CacheMisses int
	// CacheCoalesced counts misses that were served by another in-flight
	// computation of the same key instead of analyzing here (stores
	// wrapped in store.NewCoalesced only). Always <= CacheMisses.
	CacheCoalesced int
	// FileCuts, parallel to the scanned file list, records how many
	// reports and runtime errors each file contributed to the flat
	// Reports and RuntimeErrs slices — the merge cursor a shard
	// coordinator uses to interleave partials from several shards back
	// into global file order (function-level scheduler only). Counts
	// reflect what was actually appended, so a MaxReports truncation
	// mid-file yields that file's partial count.
	FileCuts []FileCut
	// Generation is the snapshot generation the scan was pinned to at
	// admission: every report in this result was computed against
	// exactly that corpus state.
	Generation int64
	// Elapsed is this scan's own wall time — for RunBatch entries, the
	// individual checker's cost, not the whole batch's.
	Elapsed time.Duration
}

// FileCut records one scanned file's contribution to a Result's flat
// Reports and RuntimeErrs slices, in scan order.
type FileCut struct {
	Reports     int
	RuntimeErrs int
}

// Run scans the whole codebase with the given checkers. The scan pins
// the live snapshot at entry and runs lock-free: a changeset landing
// mid-scan commits the next generation without disturbing this one.
// Results are deterministic regardless of parallelism: per-file
// results are merged in file order.
func (cb *Codebase) Run(checkers []checker.Checker, opts Options) *Result {
	snap := cb.Pin()
	defer snap.Release()
	return snap.runFileLevel(checkers, opts)
}

// runFileLevel is the uncached file-level fan-out over one immutable
// snapshot.
func (s *Snapshot) runFileLevel(checkers []checker.Checker, opts Options) *Result {
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eo := opts.engineOptions(checkers)
	perFile := make([]*engine.Result, len(s.files))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				perFile[i] = engine.AnalyzeFile(s.files[i], eo)
			}
		}()
	}
	for i := range s.files {
		idx <- i
	}
	close(idx)
	wg.Wait()

	out := &Result{FilesScanned: len(s.files), Generation: s.gen}
	for i, r := range perFile {
		out.FuncsScanned += len(s.files[i].Funcs)
		out.RuntimeErrs = append(out.RuntimeErrs, r.RuntimeErrs...)
		for _, rep := range r.Reports {
			if opts.MaxReports > 0 && len(out.Reports) >= opts.MaxReports {
				// Stop collecting reports but keep aggregating counters
				// and runtime errors from the remaining files, so a
				// truncated result still reflects the whole scan.
				out.Truncated = true
				break
			}
			out.Reports = append(out.Reports, rep)
		}
	}
	out.Elapsed = time.Since(start)
	return out
}

// RunOne scans with a single checker (the per-checker refinement scans).
func (cb *Codebase) RunOne(ck checker.Checker, opts Options) *Result {
	return cb.Run([]checker.Checker{ck}, opts)
}
