package scan

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// fuzzScale keeps each fuzz iteration's corpus small enough that one
// run (generate + mutate + two full scans) stays well under a second.
const fuzzScale = 0.02

// fuzzCorpusTemplate is generated once; each fuzz iteration clones it
// (sources are strings, so a fresh []*SourceFile is a full logical copy)
// rather than paying kernel.Generate again.
var (
	fuzzTemplateOnce sync.Once
	fuzzTemplate     *kernel.Corpus
)

func fuzzCorpus() *kernel.Corpus {
	fuzzTemplateOnce.Do(func() {
		fuzzTemplate = kernel.Generate(kernel.Config{Seed: 1, Scale: fuzzScale})
	})
	clone := *fuzzTemplate
	clone.Files = make([]*kernel.SourceFile, len(fuzzTemplate.Files))
	for i, f := range fuzzTemplate.Files {
		cp := *f
		clone.Files[i] = &cp
	}
	return &clone
}

// fuzzTweakFunc renders fn with an inert local declaration whose name is
// derived from variant, so different variants produce different content
// hashes while analysis results stay position-shifted but valid.
// variant%4 == 0 returns the canonical rendering unchanged — the
// "mutation that changes nothing" case, which must cost zero misses.
func fuzzTweakFunc(fn *minic.FuncDecl, variant byte) (string, error) {
	src := minic.FormatFunc(fn)
	if variant%4 == 0 {
		return src, nil
	}
	brace := strings.Index(src, "{")
	if brace < 0 {
		return "", fmt.Errorf("no body in rendered function %s", fn.Name)
	}
	return src[:brace+1] + fmt.Sprintf("\n\tint fz_%d;", variant%32) + src[brace+1:], nil
}

// fuzzReplaceSrc renders file f whole, optionally dropping its last
// function (variant%2 == 1 and the file has more than one), exercising
// the delete-a-function invalidation path.
func fuzzReplaceSrc(f *minic.File, variant byte) string {
	funcs := f.Funcs
	if variant%2 == 1 && len(funcs) > 1 {
		funcs = funcs[:len(funcs)-1]
	}
	return minic.FormatFile(&minic.File{
		Name: f.Name, Structs: f.Structs, Globals: f.Globals, Funcs: funcs,
	})
}

// FuzzMutationEquivalence is the property-testing harness behind every
// corpus-mutation path: an arbitrary interleaving of Patch, Replace,
// ApplyChangeset, and warm scans must leave the incremental scheduler
// byte-identical to a cold scan of the final corpus. Any missed
// invalidation, hash-memo leak, or half-applied changeset shows up as a
// stale cache entry and fails the final comparison.
//
// The byte stream is interpreted as (opcode, fileSel, variant) triples;
// every derived operation is valid by construction, so the harness
// explores mutation interleavings rather than parser error paths (those
// have their own tests).
func FuzzMutationEquivalence(f *testing.F) {
	// Seeds: a no-op, each single op kind, a scan-interleaved sequence,
	// and a changeset-heavy sequence (deterministic corpus, so these
	// replay identically everywhere).
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 3, 1, 1, 4, 2})
	f.Add([]byte{3, 0, 0, 0, 1, 5, 3, 0, 0, 2, 2, 3})
	f.Add([]byte{2, 0, 1, 2, 5, 3, 2, 9, 0, 3, 0, 0, 2, 7, 2})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 2, 2, 6, 3, 0, 0, 0, 1, 9, 1, 2, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		cb, err := NewCodebase(fuzzCorpus())
		if err != nil {
			t.Fatal(err)
		}
		inc := NewIncremental(cb, store.NewMemory(0))
		ck := compileChecker(t)

		// Concurrent snapshot readers: while the mutation sequence runs,
		// each reader repeatedly pins whatever generation is live and
		// scans it lock-free. Every result is verified after the join
		// against a cold parse of that generation's recorded sources — a
		// reader must see exactly its admission-time corpus, bit for bit,
		// no matter which commits raced past it.
		byGen := map[int64]*kernel.Corpus{cb.Generation(): corpusAt(cb)}
		type pinnedScan struct {
			gen int64
			res *Result
		}
		var (
			readers  sync.WaitGroup
			scansMu  sync.Mutex
			scans    []pinnedScan
			stopRead = make(chan struct{})
		)
		all := make([]int, len(cb.Files()))
		for i := range all {
			all[i] = i
		}
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for n := 0; n < 3; n++ {
					snap := cb.Pin()
					res := inc.RunFilesAt(snap.Snapshot, all, []checker.Checker{ck}, Options{Workers: 1})
					gen := snap.Generation()
					snap.Release()
					scansMu.Lock()
					scans = append(scans, pinnedScan{gen, res})
					scansMu.Unlock()
					select {
					case <-stopRead:
						return
					default:
					}
				}
			}()
		}

		const maxOps = 6
		for ops := 0; len(data) >= 3 && ops < maxOps; ops++ {
			kind, fileSel, variant := data[0]%4, data[1], data[2]
			data = data[3:]
			i := int(fileSel) % len(cb.Files())
			switch kind {
			case 0: // single-function patch
				funcs := cb.Files()[i].Funcs
				if len(funcs) == 0 {
					continue
				}
				j := int(variant) % len(funcs)
				src, err := fuzzTweakFunc(funcs[j], variant)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := inc.Patch(cb.Files()[i].Name, funcs[j].Name, src); err != nil {
					t.Fatal(err)
				}
			case 1: // whole-file replace
				if _, err := inc.Replace(cb.Files()[i].Name, fuzzReplaceSrc(cb.Files()[i], variant)); err != nil {
					t.Fatal(err)
				}
			case 2: // multi-file changeset: replace file i, patch file i2
				i2 := (i + 1 + int(variant)%3) % len(cb.Files())
				changes := []Change{{Path: cb.Files()[i].Name, Source: fuzzReplaceSrc(cb.Files()[i], variant)}}
				if i2 != i && len(cb.Files()[i2].Funcs) > 0 {
					funcs := cb.Files()[i2].Funcs
					j := int(variant) % len(funcs)
					src, err := fuzzTweakFunc(funcs[j], variant+1)
					if err != nil {
						t.Fatal(err)
					}
					changes = append(changes, Change{Path: cb.Files()[i2].Name, Func: funcs[j].Name, Source: src})
				}
				if _, err := inc.ApplyChangeset(changes); err != nil {
					t.Fatal(err)
				}
			case 3: // warm the cache mid-sequence, so later mutations must
				// really invalidate entries rather than never populate them
				inc.RunFiles([]int{i}, []checker.Checker{ck}, Options{Workers: 2})
			}
			if _, ok := byGen[cb.Generation()]; !ok {
				byGen[cb.Generation()] = corpusAt(cb)
			}
		}

		close(stopRead)
		readers.Wait()

		// Each pinned reader saw exactly its admission-time generation:
		// its result is byte-identical to a cold, uncached scan of the
		// sources recorded when that generation committed.
		coldByGen := map[int64]string{}
		for _, ps := range scans {
			if ps.res.Generation != ps.gen {
				t.Fatalf("pinned reader at generation %d got result stamped %d", ps.gen, ps.res.Generation)
			}
			want, ok := coldByGen[ps.gen]
			if !ok {
				src, recorded := byGen[ps.gen]
				if !recorded {
					t.Fatalf("reader pinned generation %d, which no mutation recorded", ps.gen)
				}
				coldCb, err := NewCodebase(src)
				if err != nil {
					t.Fatalf("generation %d does not re-parse: %v", ps.gen, err)
				}
				want = resultBytes(t, coldCb.RunOne(ck, Options{Workers: 1}))
				coldByGen[ps.gen] = want
			}
			if got := resultBytes(t, ps.res); got != want {
				t.Fatalf("pinned reader diverged from cold scan of generation %d:\nreader: %s\ncold:   %s", ps.gen, got, want)
			}
		}

		// The property: however the sequence interleaved, the incremental
		// scan of the mutated corpus — through whatever cache state the
		// sequence left behind — is byte-identical to a cold, uncached
		// scan of a freshly parsed copy of the same sources.
		got := resultBytes(t, inc.RunOne(ck, Options{Workers: 1}))
		coldCb, err := NewCodebase(cb.Corpus)
		if err != nil {
			t.Fatalf("final corpus does not re-parse: %v", err)
		}
		want := resultBytes(t, coldCb.RunOne(ck, Options{Workers: 1}))
		if got != want {
			t.Fatalf("incremental scan diverged from cold scan after mutation sequence:\nincremental: %s\ncold:        %s", got, want)
		}
		// And a second pass must be all hits, still byte-identical.
		warm := inc.RunOne(ck, Options{Workers: 1})
		if warm.CacheMisses != 0 {
			t.Fatalf("fully-warm re-scan missed %d times", warm.CacheMisses)
		}
		if resultBytes(t, warm) != want {
			t.Fatal("warm re-scan diverged from cold scan")
		}
	})
}
