package scan

import (
	"runtime"
	"sync"

	"knighter/internal/checker"
)

// RunBatch scans the given files once per checker, scheduling the
// checkers over a bounded worker pool that shares the backing store —
// the StaAgent-style many-revision evaluation shape, where N checker
// revisions of one request re-scan a mostly-warm corpus. Results are
// returned in checker order; each is exactly what RunFiles would return
// for that checker alone, so per-checker results are deterministic and
// independent of pool interleaving.
//
// concurrency bounds the number of checkers in flight (default:
// GOMAXPROCS, capped at the checker count). When the pool runs more
// than one checker at once and the caller did not pin opts.Workers,
// each inner scan's parallelism is scaled down so the batch does not
// oversubscribe the machine by concurrency×GOMAXPROCS.
//
// The batch pins ONE snapshot for all its checkers: every entry scans
// the same generation, even if changesets commit while the batch runs,
// so the per-checker results are mutually consistent.
//
// A nil files slice scans every file.
func (inc *Incremental) RunBatch(checkers []checker.Checker, files []int, opts Options, concurrency int) []*Result {
	snap := inc.cb.Pin()
	defer snap.Release()
	if files == nil {
		files = make([]int, len(snap.files))
		for i := range files {
			files[i] = i
		}
	}
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(checkers) {
		concurrency = len(checkers)
	}
	if concurrency > 1 && opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0) / concurrency
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}

	results := make([]*Result, len(checkers))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = inc.RunFilesAt(snap.Snapshot, files, []checker.Checker{checkers[i]}, opts)
			}
		}()
	}
	for i := range checkers {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return results
}
