package scan

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/obs"
	"knighter/internal/store"
)

// Incremental is the function-level scan scheduler. Where Codebase.Run
// fans out whole files and always re-analyzes everything, Incremental
// consults a content-addressed result store per (function, checker
// batch, engine bounds) triple, analyzes only the misses, and merges
// everything back deterministically in file/function order — so a warm
// re-scan of an unchanged corpus with an unchanged checker does no
// symbolic execution at all, and its reports are identical to a cold
// scan's.
type Incremental struct {
	cb *Codebase
	st store.Store
	// stages, when non-nil, receives per-scan stage durations (set once
	// at boot, before serving).
	stages StageObserver
}

// StageObserver receives the aggregate duration of each scan stage —
// kserve adapts it onto a latency histogram labeled by stage. Durations
// for the concurrent stages (cache_probe, engine_eval) are summed
// across workers, so they measure work done, not wall time.
type StageObserver interface {
	ObserveStage(stage string, d time.Duration)
}

// Scan stage names, as reported to StageObserver and trace timelines.
const (
	// StageSnapshotPin is scan admission: pinning the live MVCC snapshot
	// the whole scan will read. Its duration is the pin itself (a lock-
	// free pointer load plus registry bookkeeping); its count carries the
	// pinned generation, so a trace shows at a glance which corpus state
	// the scan saw.
	StageSnapshotPin = "snapshot_pin"
	// StageParse is the serial key-computation prologue: rendering each
	// function to its canonical source and hashing it with its file
	// context (memoized across scans, so a warm daemon pays it once).
	StageParse = "parse"
	// StageCacheProbe is the summed store.Get time across workers.
	StageCacheProbe = "cache_probe"
	// StageEngineEval is the summed symbolic-execution time across
	// workers (misses only — a fully warm scan has none).
	StageEngineEval = "engine_eval"
	// StageSerialize is the deterministic merge of per-function results
	// into the final report order.
	StageSerialize = "serialize"
)

// SetStageObserver wires o into every subsequent scan. Call once at
// boot, before the scheduler serves traffic.
func (inc *Incremental) SetStageObserver(o StageObserver) { inc.stages = o }

// NewIncremental wraps a codebase with a result store. A nil store gets
// a default in-memory LRU tier.
func NewIncremental(cb *Codebase, st store.Store) *Incremental {
	if st == nil {
		st = store.NewMemory(0)
	}
	return &Incremental{cb: cb, st: st}
}

// Codebase returns the underlying parsed corpus.
func (inc *Incremental) Codebase() *Codebase { return inc.cb }

// Store returns the backing result store.
func (inc *Incremental) Store() store.Store { return inc.st }

// Stats snapshots the backing store's counters.
func (inc *Incremental) Stats() store.Stats { return inc.st.Stats() }

// Patch applies a single-function patch to the codebase (see
// Codebase.Patch) and invalidates the stale store entries the mutation
// orphaned. Entries of unchanged functions — in this file and every
// other — stay warm.
func (inc *Incremental) Patch(path, funcName, funcSrc string) (*Mutation, error) {
	m, err := inc.cb.Patch(path, funcName, funcSrc)
	if err != nil {
		return nil, err
	}
	m.StoreInvalidated = inc.invalidateHashes(m.StaleHashes)
	return m, nil
}

// Replace swaps in new source for a whole file (see Codebase.Replace)
// and invalidates the stale store entries the mutation orphaned.
func (inc *Incremental) Replace(path, src string) (*Mutation, error) {
	m, err := inc.cb.Replace(path, src)
	if err != nil {
		return nil, err
	}
	m.StoreInvalidated = inc.invalidateHashes(m.StaleHashes)
	return m, nil
}

// Run scans every file through the cache.
func (inc *Incremental) Run(checkers []checker.Checker, opts Options) *Result {
	files := make([]int, inc.cb.NumFiles())
	for i := range files {
		files[i] = i
	}
	return inc.RunFiles(files, checkers, opts)
}

// RunOne scans every file with a single checker.
func (inc *Incremental) RunOne(ck checker.Checker, opts Options) *Result {
	return inc.Run([]checker.Checker{ck}, opts)
}

// RunFile scans a single file through the cache (the refinement loop's
// stillWarnsAt re-scans, which are near-pure cache hits).
func (inc *Incremental) RunFile(i int, checkers []checker.Checker, opts Options) *Result {
	return inc.RunFiles([]int{i}, checkers, opts)
}

// unit identifies one schedulable analysis: function fn of file file.
type unit struct {
	file int
	fn   int
}

// RunFiles scans the given file indices through the cache. The merge
// order — and therefore the report sequence — depends only on the order
// of files and the function order within each file, never on worker
// interleaving or cache state.
//
// The scan pins the live snapshot at entry and runs lock-free against
// it: a concurrent changeset commits the next generation without
// waiting for this scan or being waited on by it, and the result is
// byte-identical to a cold scan of the pinned generation.
func (inc *Incremental) RunFiles(files []int, checkers []checker.Checker, opts Options) *Result {
	pinStart := time.Now()
	snap := inc.cb.Pin()
	defer snap.Release()
	return inc.runFiles(snap.Snapshot, pinStart, files, checkers, opts)
}

// RunFilesAt scans the given file indices against an explicit snapshot
// — one the caller pinned earlier, typically to hold several scans
// (a batch, or a reader asserting repeatability) to one generation.
// The caller owns the pin's lifetime; a nil snapshot pins the live one.
func (inc *Incremental) RunFilesAt(snap *Snapshot, files []int, checkers []checker.Checker, opts Options) *Result {
	if snap == nil {
		return inc.RunFiles(files, checkers, opts)
	}
	return inc.runFiles(snap, time.Now(), files, checkers, opts)
}

// runFiles is the scheduler body, reading only the immutable snap.
func (inc *Incremental) runFiles(snap *Snapshot, pinStart time.Time, files []int, checkers []checker.Checker, opts Options) *Result {
	start := time.Now()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eo := opts.engineOptions(checkers)
	ckFP, cacheable := checkersFingerprint(checkers)
	engFP := opts.Engine.Fingerprint()

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// Stage timing is strictly opt-in: with no trace on the context and
	// no observer installed, the hot path pays zero extra clock reads.
	tr := obs.TraceFrom(ctx)
	timed := tr != nil || inc.stages != nil
	stage := func(name string, begin time.Time, d time.Duration, n int) {
		tr.Observe(name, begin, d, n)
		if inc.stages != nil {
			inc.stages.ObserveStage(name, d)
		}
	}
	if timed {
		// The pin span's count is the pinned generation — the one fact a
		// trace reader wants from admission.
		stage(StageSnapshotPin, pinStart, start.Sub(pinStart), int(snap.gen))
	}

	var units []unit
	for _, i := range files {
		for j := range snap.files[i].Funcs {
			units = append(units, unit{file: i, fn: j})
		}
	}
	perFunc := make([]*engine.Result, len(units))
	keys := make([]store.Key, len(units))
	if cacheable {
		// Key computation stays serial: pure hashing, no I/O.
		keyStart := time.Now()
		for u, un := range units {
			keys[u] = store.Key{
				FuncHash:  snap.FuncHash(un.file, un.fn),
				CheckerFP: ckFP,
				EngineFP:  engFP,
			}
		}
		if timed {
			stage(StageParse, keyStart, time.Since(keyStart), len(units))
		}
	}

	// The cache probe runs INSIDE the worker pool, not as a serial
	// prologue: with a remote tier every Get can be a network round-trip,
	// and a fleet-warm scan is nothing but Gets — serializing them would
	// make the scan's headline path single-threaded I/O. Each worker
	// probes, then computes on miss; with a coalescing store, concurrent
	// misses on one key — this scan racing an identical scan from another
	// request — compute once and share (critical once the remote tier
	// widens the window between miss and put).
	var hits, misses, coalesced atomic.Int64
	var busyNS, evalNS atomic.Int64
	workStart := time.Now()
	if len(units) > 0 {
		co, _ := inc.st.(store.ComputeCoalescer)
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Stage timing costs two clock reads per WORKER, not per
				// unit: each worker's busy window is measured whole, and
				// the probe stage is busy time minus the separately-timed
				// engine evals. A fully warm scan therefore pays no
				// per-hit timing at all on its hot path.
				var t0 time.Time
				if timed {
					t0 = time.Now()
					defer func() { busyNS.Add(int64(time.Since(t0))) }()
				}
				for u := range ch {
					un := units[u]
					f := snap.files[un.file]
					if opts.canceled() {
						// The scan was aborted: mark the remaining units
						// canceled without probing, analyzing, or caching
						// them — a disconnected client stops paying even
						// for cache lookups.
						perFunc[u] = &engine.Result{Truncated: true, Canceled: true}
						continue
					}
					if !cacheable {
						perFunc[u] = engine.AnalyzeFunc(f, f.Funcs[un.fn], eo)
						continue
					}
					r, ok := inc.st.Get(ctx, keys[u])
					if ok {
						perFunc[u] = r
						hits.Add(1)
						continue
					}
					misses.Add(1)
					// A timed-out or canceled result depends on wall-clock
					// speed or the caller's lifetime, not just the key's
					// inputs — caching it would poison later scans.
					compute := func() (*engine.Result, bool) {
						var e0 time.Time
						if timed {
							e0 = time.Now()
						}
						r := engine.AnalyzeFunc(f, f.Funcs[un.fn], eo)
						if timed {
							evalNS.Add(int64(time.Since(e0)))
						}
						return r, !r.TimedOut && !r.Canceled
					}
					if co != nil {
						r, shared := co.GetOrCompute(ctx, keys[u], compute)
						perFunc[u] = r
						if shared {
							coalesced.Add(1)
						}
						continue
					}
					r, cacheOK := compute()
					perFunc[u] = r
					if cacheOK {
						inc.st.Put(ctx, keys[u], r)
					}
				}
			}()
		}
		for u := range units {
			ch <- u
		}
		close(ch)
		wg.Wait()
	}

	if timed && cacheable && len(units) > 0 {
		// The probe and eval stages interleave across workers, so both
		// anchor at the worker pool's start; their durations are summed
		// work, not wall time. Probe time is what remains of the workers'
		// busy windows once the engine evals are subtracted — exact when
		// the scan is fully warm (no evals at all), and a close bound
		// otherwise.
		probe := busyNS.Load() - evalNS.Load()
		if probe < 0 {
			probe = 0
		}
		stage(StageCacheProbe, workStart, time.Duration(probe), int(hits.Load()+misses.Load()))
		stage(StageEngineEval, workStart, time.Duration(evalNS.Load()), int(misses.Load()))
	}

	// Deterministic merge: per-function results fold into a per-file
	// result in function order (deduplicating within the file, exactly
	// like engine.AnalyzeFile), then files concatenate in the given
	// order — byte-identical to the uncached Codebase.Run path.
	mergeStart := time.Now()
	out := &Result{FilesScanned: len(files), Generation: snap.gen}
	if cacheable {
		out.CacheHits = int(hits.Load())
		out.CacheMisses = int(misses.Load())
		out.CacheCoalesced = int(coalesced.Load())
	}
	for _, r := range perFunc {
		if r.TimedOut {
			out.FuncsTimedOut++
		}
		if r.Canceled {
			out.Canceled = true
		}
	}
	u := 0
	out.FileCuts = make([]FileCut, 0, len(files))
	for _, i := range files {
		fileRes := &engine.Result{}
		for range snap.files[i].Funcs {
			fileRes.Merge(perFunc[u])
			out.FuncsScanned++
			u++
		}
		repBefore, errBefore := len(out.Reports), len(out.RuntimeErrs)
		out.RuntimeErrs = append(out.RuntimeErrs, fileRes.RuntimeErrs...)
		for _, rep := range fileRes.Reports {
			if opts.MaxReports > 0 && len(out.Reports) >= opts.MaxReports {
				out.Truncated = true
				break
			}
			out.Reports = append(out.Reports, rep)
		}
		out.FileCuts = append(out.FileCuts, FileCut{
			Reports:     len(out.Reports) - repBefore,
			RuntimeErrs: len(out.RuntimeErrs) - errBefore,
		})
	}
	if timed {
		stage(StageSerialize, mergeStart, time.Since(mergeStart), len(units))
	}
	out.Elapsed = time.Since(start)
	return out
}

// checkersFingerprint combines the fingerprints of an ordered checker
// batch. It returns ok=false — caching disabled — if any checker does
// not implement checker.Fingerprinter, since the cache cannot prove two
// such checkers behave identically.
func checkersFingerprint(cks []checker.Checker) (string, bool) {
	parts := make([]string, 0, len(cks)+1)
	parts = append(parts, "checkers:v1")
	for _, ck := range cks {
		fp, ok := ck.(checker.Fingerprinter)
		if !ok {
			return "", false
		}
		parts = append(parts, fp.Fingerprint())
	}
	return store.Hash(parts...), true
}
