package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// Snapshot is one immutable generation of the parsed corpus: the file
// ASTs, the function count, and a lazily filled content-hash memo. A
// scan pins the live snapshot once at admission and reads it lock-free
// to completion — a changeset committing mid-scan builds the NEXT
// snapshot off to the side and swaps the live pointer, so the pinned
// one never changes underneath the reader.
//
// Everything reachable from a Snapshot is read-only except the hash
// memo, which is guarded by its own mutex and only ever converges
// toward the same values (content hashes are pure functions of the
// immutable ASTs).
type Snapshot struct {
	gen      int64
	files    []*minic.File
	numFuncs int

	// Content hashes for the incremental scheduler, computed lazily and
	// memoized: a function's analysis depends on its own source, its
	// position (reports carry absolute line/col), and the file-level
	// declarations it can see, so the hash covers all three. Successor
	// snapshots inherit the memo entries of untouched files, so a warm
	// daemon pays each hash once per content, not once per generation.
	hashMu     sync.Mutex
	ctxHashes  []string
	funcHashes map[[2]int]string
}

// newSnapshot builds generation gen over the given parsed files with a
// cold hash memo.
func newSnapshot(gen int64, files []*minic.File) *Snapshot {
	s := &Snapshot{
		gen:        gen,
		files:      files,
		ctxHashes:  make([]string, len(files)),
		funcHashes: make(map[[2]int]string),
	}
	for _, f := range files {
		s.numFuncs += len(f.Funcs)
	}
	return s
}

// next builds the successor snapshot: untouched files share their ASTs
// and their memoized hashes with the parent; files in work swap in new
// ASTs and start with a cold memo. The parent is not modified — readers
// pinned to it keep seeing exactly what they pinned.
func (s *Snapshot) next(gen int64, work map[int]*minic.File) *Snapshot {
	files := make([]*minic.File, len(s.files))
	copy(files, s.files)
	for i, nf := range work {
		files[i] = nf
	}
	n := &Snapshot{
		gen:        gen,
		files:      files,
		ctxHashes:  make([]string, len(files)),
		funcHashes: make(map[[2]int]string, len(s.funcHashes)),
	}
	for _, f := range files {
		n.numFuncs += len(f.Funcs)
	}
	s.hashMu.Lock()
	copy(n.ctxHashes, s.ctxHashes)
	for k, h := range s.funcHashes {
		if _, touched := work[k[0]]; !touched {
			n.funcHashes[k] = h
		}
	}
	s.hashMu.Unlock()
	for i := range work {
		n.ctxHashes[i] = ""
	}
	return n
}

// Generation returns the snapshot's generation number.
func (s *Snapshot) Generation() int64 { return s.gen }

// Files returns the snapshot's parsed files. The slice and everything
// it points to are immutable — callers must not modify them.
func (s *Snapshot) Files() []*minic.File { return s.files }

// NumFuncs returns the total function count across all files.
func (s *Snapshot) NumFuncs() int { return s.numFuncs }

// FileIndex returns the index of the parsed file with the given path,
// or -1.
func (s *Snapshot) FileIndex(path string) int {
	for i, f := range s.files {
		if f.Name == path {
			return i
		}
	}
	return -1
}

// FuncHash returns the content address of function j of file i: a hash
// of the canonical rendering of the function, its source position, and
// the file context (file name, structs, globals) its analysis can
// observe.
func (s *Snapshot) FuncHash(i, j int) string {
	s.hashMu.Lock()
	defer s.hashMu.Unlock()
	k := [2]int{i, j}
	if h, ok := s.funcHashes[k]; ok {
		return h
	}
	f := s.files[i]
	if s.ctxHashes[i] == "" {
		ctx := minic.FormatFile(&minic.File{Name: f.Name, Structs: f.Structs, Globals: f.Globals})
		s.ctxHashes[i] = store.Hash("filectx:v1", f.Name, ctx)
	}
	fn := f.Funcs[j]
	// v2: the declaration position is part of the function's identity —
	// cached reports carry absolute line/col, so a function whose text
	// is unchanged but which moved within its file must re-analyze.
	h := store.Hash("func:v2", s.ctxHashes[i],
		fmt.Sprintf("%d:%d", fn.Pos.Line, fn.Pos.Col), minic.FormatFunc(fn))
	s.funcHashes[k] = h
	return h
}

// Run scans every file of the snapshot with the given checkers,
// uncached — the file-level fan-out of Codebase.Run, against an
// explicit generation. It takes no locks: the snapshot is immutable.
func (s *Snapshot) Run(checkers []checker.Checker, opts Options) *Result {
	return s.runFileLevel(checkers, opts)
}

// PinnedSnapshot is a Snapshot held alive in the codebase's pin
// registry, so operators can see how many old generations in-flight
// scans still retain. Release it when the scan completes; releasing
// twice is harmless.
type PinnedSnapshot struct {
	*Snapshot
	cb       *Codebase
	released atomic.Bool
}

// Release drops the pin. Idempotent.
func (p *PinnedSnapshot) Release() {
	if p.released.CompareAndSwap(false, true) {
		p.cb.unpin(p.gen)
	}
}

// Pin returns the live snapshot, registered in the pin registry until
// released. This is scan admission: everything the scan reads after
// this point comes from the pinned generation, unaffected by
// concurrent changesets.
func (cb *Codebase) Pin() *PinnedSnapshot {
	cb.pinMu.Lock()
	// Load inside pinMu so a concurrent commit cannot slip between the
	// load and the registration: the registry entry always covers the
	// snapshot actually returned.
	s := cb.snap.Load()
	cb.pins[s.gen]++
	cb.pinMu.Unlock()
	return &PinnedSnapshot{Snapshot: s, cb: cb}
}

func (cb *Codebase) unpin(gen int64) {
	cb.pinMu.Lock()
	if n := cb.pins[gen]; n <= 1 {
		delete(cb.pins, gen)
	} else {
		cb.pins[gen] = n - 1
	}
	cb.pinMu.Unlock()
}

// Snapshot returns the live snapshot without pinning it — a peek for
// callers that only need a consistent read and don't care about the
// pin registry's bookkeeping. The returned snapshot is immutable and
// safe to read indefinitely either way.
func (cb *Codebase) Snapshot() *Snapshot {
	return cb.snap.Load()
}

// PinnedSnapshots counts distinct generations that in-flight scans
// still hold pinned and that are older than the live generation — the
// retained-old-snapshot figure /stats and the
// corpus_pinned_snapshots gauge expose.
func (cb *Codebase) PinnedSnapshots() int {
	live := cb.generation.Load()
	cb.pinMu.Lock()
	defer cb.pinMu.Unlock()
	n := 0
	for gen := range cb.pins {
		if gen < live {
			n++
		}
	}
	return n
}

// WaitForGeneration blocks until the committed generation is >= min or
// ctx is done, and reports whether the bound was reached. It is the
// read-your-writes primitive behind the API's min_generation: a client
// holding a generation token from an async changeset passes it here
// (via /scan's min_generation) to be served at-or-after its own write.
func (cb *Codebase) WaitForGeneration(ctx context.Context, min int64) bool {
	for {
		if cb.generation.Load() >= min {
			return true
		}
		cb.watchMu.Lock()
		ch := cb.watch
		cb.watchMu.Unlock()
		// Recheck after picking up the channel: a commit between the
		// first check and the channel grab would otherwise be missed.
		if cb.generation.Load() >= min {
			return true
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return cb.generation.Load() >= min
		}
	}
}

// notifyGeneration wakes every WaitForGeneration waiter after a commit.
func (cb *Codebase) notifyGeneration() {
	cb.watchMu.Lock()
	close(cb.watch)
	cb.watch = make(chan struct{})
	cb.watchMu.Unlock()
}
