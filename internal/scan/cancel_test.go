package scan

import (
	"context"
	"sync"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/store"
)

// TestScanCanceledContextSkipsAndFlags: a scan whose context is already
// canceled does no analysis, caches nothing, and comes back flagged.
func TestScanCanceledContextSkipsAndFlags(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	mem := store.NewMemory(0)
	inc := NewIncremental(cb, mem)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := inc.RunOne(ck, Options{Context: ctx})
	if !res.Canceled {
		t.Fatal("canceled scan not flagged")
	}
	if res.CacheHits != 0 {
		t.Fatalf("canceled scan hit %d entries in an empty store", res.CacheHits)
	}
	if s := mem.Stats(); s.Puts != 0 || s.Entries != 0 {
		t.Fatalf("canceled scan cached %d entries (%d puts); canceled results must never be cached", s.Entries, s.Puts)
	}

	// A subsequent scan with a live context sees a completely cold store
	// and produces exactly what an uncached scan produces.
	clean := inc.RunOne(ck, Options{Workers: 1})
	if clean.Canceled {
		t.Fatal("clean scan inherited the Canceled flag")
	}
	plain := cb.RunOne(ck, Options{Workers: 1})
	if resultBytes(t, clean) != resultBytes(t, plain) {
		t.Fatal("scan after cancellation differs from uncached scan")
	}
}

// TestScanMidFlightCancellation: canceling while the scan runs aborts
// it, and whatever partial results were computed before the cut are all
// clean cache entries — a later scan reuses them and still matches a
// cold scan byte-for-byte.
func TestScanMidFlightCancellation(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	mem := store.NewMemory(0)
	inc := NewIncremental(cb, mem)

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	// Cancel from inside the scan: the store sees a Put for each
	// completed function, so canceling on the first Put guarantees the
	// scan is genuinely mid-flight.
	st := &cancelOnPut{Store: mem, f: func() { once.Do(cancel) }}
	incCut := NewIncremental(cb, st)
	res := incCut.Run([]checker.Checker{ck}, Options{Workers: 2, Context: ctx})
	_ = res // Canceled is timing-dependent with workers>1; the invariants below are not.

	// Whatever did get cached must be clean: a fresh scan over the same
	// store matches an uncached scan exactly.
	after := inc.RunOne(ck, Options{Workers: 1})
	plain := cb.RunOne(ck, Options{Workers: 1})
	if resultBytes(t, after) != resultBytes(t, plain) {
		t.Fatal("scan over a cancellation-interrupted store differs from uncached scan")
	}
}

// cancelOnPut triggers f on every Put, then forwards to the wrapped
// store.
type cancelOnPut struct {
	store.Store
	f func()
}

func (c *cancelOnPut) Put(ctx context.Context, k store.Key, r *engine.Result) {
	c.f()
	c.Store.Put(ctx, k, r)
}
