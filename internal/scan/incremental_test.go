package scan

import (
	"encoding/json"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/engine"
	"knighter/internal/store"
)

// resultBytes serializes everything observable about a scan result so
// two results can be compared byte-for-byte.
func resultBytes(t *testing.T, r *Result) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Reports      []*checker.Report
		RuntimeErrs  []engine.RuntimeErr
		FilesScanned int
		FuncsScanned int
		Truncated    bool
	}{r.Reports, r.RuntimeErrs, r.FilesScanned, r.FuncsScanned, r.Truncated})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestIncrementalMatchesUncachedScan(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	plain := cb.RunOne(ck, Options{Workers: 1})

	inc := NewIncremental(cb, store.NewMemory(0))
	cold := inc.RunOne(ck, Options{Workers: 1})
	if cold.CacheHits != 0 || cold.CacheMisses == 0 {
		t.Fatalf("cold scan: hits=%d misses=%d", cold.CacheHits, cold.CacheMisses)
	}
	warm := inc.RunOne(ck, Options{Workers: 1})
	if warm.CacheMisses != 0 {
		t.Fatalf("warm scan missed %d times", warm.CacheMisses)
	}
	if warm.CacheHits != cold.CacheMisses {
		t.Fatalf("warm hits = %d, want %d", warm.CacheHits, cold.CacheMisses)
	}

	want := resultBytes(t, plain)
	if got := resultBytes(t, cold); got != want {
		t.Fatal("cold incremental scan differs from uncached scan")
	}
	if got := resultBytes(t, warm); got != want {
		t.Fatal("warm incremental scan differs from uncached scan")
	}
}

func TestIncrementalDeterministicAcrossWorkersAndCacheState(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	base := cb.RunOne(ck, Options{Workers: 1})
	want := resultBytes(t, base)

	if got := resultBytes(t, cb.RunOne(ck, Options{Workers: 8})); got != want {
		t.Fatal("Workers=8 uncached scan differs from Workers=1")
	}
	for _, workers := range []int{1, 8} {
		inc := NewIncremental(cb, store.NewMemory(0))
		cold := inc.RunOne(ck, Options{Workers: workers})
		warm := inc.RunOne(ck, Options{Workers: workers})
		if got := resultBytes(t, cold); got != want {
			t.Fatalf("cold incremental workers=%d differs", workers)
		}
		if got := resultBytes(t, warm); got != want {
			t.Fatalf("warm incremental workers=%d differs", workers)
		}
	}
}

func TestIncrementalMaxReportsAggregatesFully(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	full := cb.RunOne(ck, Options{})
	totalFuncs := full.FuncsScanned

	for name, run := range map[string]func() *Result{
		"plain":       func() *Result { return cb.RunOne(ck, Options{MaxReports: 2}) },
		"incremental": func() *Result { return NewIncremental(cb, nil).RunOne(ck, Options{MaxReports: 2}) },
	} {
		res := run()
		if len(res.Reports) != 2 || !res.Truncated {
			t.Fatalf("%s: reports=%d truncated=%v", name, len(res.Reports), res.Truncated)
		}
		// The truncated result must still account for the whole scan.
		if res.FuncsScanned != totalFuncs {
			t.Fatalf("%s: FuncsScanned=%d, want %d", name, res.FuncsScanned, totalFuncs)
		}
		if res.FilesScanned != len(cb.Files()) {
			t.Fatalf("%s: FilesScanned=%d, want %d", name, res.FilesScanned, len(cb.Files()))
		}
	}
}

// unfingerprintedChecker wraps a checker behind the base interface, so
// the Fingerprint method is not promoted and scans must bypass the
// cache.
type unfingerprintedChecker struct{ checker.Checker }

func TestIncrementalBypassesCacheForUnfingerprintedCheckers(t *testing.T) {
	cb := buildCodebase(t)
	ck := unfingerprintedChecker{compileChecker(t)}
	st := store.NewMemory(0)
	inc := NewIncremental(cb, st)

	first := inc.RunOne(ck, Options{})
	second := inc.RunOne(ck, Options{})
	if first.CacheHits != 0 || second.CacheHits != 0 {
		t.Fatal("cache used for a checker without a fingerprint")
	}
	if s := st.Stats(); s.Puts != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("store touched: %+v", s)
	}
	if resultBytes(t, first) != resultBytes(t, second) {
		t.Fatal("uncacheable scans not deterministic")
	}
}

func TestIncrementalKeysSeparateCheckersAndEngineOptions(t *testing.T) {
	cb := buildCodebase(t)
	ck1 := compileChecker(t)
	ck2, err := ckdsl.CompileSource(`
checker scan_other {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(cb, store.NewMemory(0))
	inc.RunOne(ck1, Options{})
	// A different checker must not hit ck1's entries.
	if res := inc.RunOne(ck2, Options{}); res.CacheHits != 0 {
		t.Fatalf("checker fingerprint collision: %d hits", res.CacheHits)
	}
	// Different engine bounds must not hit either.
	if res := inc.RunOne(ck1, Options{Engine: engine.Options{MaxPaths: 7}}); res.CacheHits != 0 {
		t.Fatalf("engine fingerprint collision: %d hits", res.CacheHits)
	}
	// Zero options and explicit defaults are the same configuration.
	if res := inc.RunOne(ck1, Options{Engine: engine.Options{
		MaxBlockVisits: 2, MaxPaths: 512, MaxSteps: 20000, MaxTrace: 24,
	}}); res.CacheMisses != 0 {
		t.Fatalf("explicit-default engine options missed %d times", res.CacheMisses)
	}
}

func TestIncrementalRunFileWarmsOnlyThatFile(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	one := inc.RunFile(0, []checker.Checker{ck}, Options{})
	if one.FilesScanned != 1 || one.FuncsScanned != len(cb.Files()[0].Funcs) {
		t.Fatalf("RunFile scanned files=%d funcs=%d", one.FilesScanned, one.FuncsScanned)
	}
	again := inc.RunFile(0, []checker.Checker{ck}, Options{})
	if again.CacheMisses != 0 {
		t.Fatalf("re-scan of file 0 missed %d times", again.CacheMisses)
	}
	full := inc.RunOne(ck, Options{})
	if full.CacheHits != len(cb.Files()[0].Funcs) {
		t.Fatalf("full scan hit %d entries, want %d (file 0 only)", full.CacheHits, len(cb.Files()[0].Funcs))
	}
}

func TestFuncHashSensitivity(t *testing.T) {
	cb := buildCodebase(t)
	if cb.FuncHash(0, 0) != cb.FuncHash(0, 0) {
		t.Fatal("FuncHash not deterministic")
	}
	if len(cb.Files()[0].Funcs) > 1 && cb.FuncHash(0, 0) == cb.FuncHash(0, 1) {
		t.Fatal("distinct functions share a hash")
	}
	if cb.FileIndex(cb.Files()[0].Name) != 0 {
		t.Fatal("FileIndex broken")
	}
	if cb.FileIndex("no/such/file.c") != -1 {
		t.Fatal("FileIndex found a nonexistent file")
	}
}
