package scan

// Mutation describes one applied corpus mutation, in particular which
// pre-mutation function hashes became unreachable — the store entries
// addressed by them are garbage and may be invalidated.
type Mutation struct {
	// Path and File identify the mutated file.
	Path string
	File int
	// Funcs is the file's function count after the mutation.
	Funcs int
	// Changed counts functions whose content hash differs from before
	// (exactly the functions an incremental re-scan will miss on).
	Changed int
	// StaleHashes are the pre-mutation hashes that no longer address any
	// function of the file. Hashes shared by unchanged functions are NOT
	// listed: their cache entries are still live.
	StaleHashes []string
	// StoreInvalidated counts the store entries dropped for StaleHashes.
	// Populated by Incremental.Patch/Replace (zero for bare Codebase
	// mutations, which have no store).
	StoreInvalidated int
	// Generation is the codebase generation after this mutation.
	Generation int64
}

// Replace swaps in new source text for the file at path, re-parses only
// that file, and recomputes only its hashes — every other file's cache
// entries stay warm. Content addressing keeps even the replaced file
// partially warm: functions whose rendering, position, and file context
// are unchanged still hit.
//
// Replace never waits for in-flight scans and never blocks new ones:
// it commits a new snapshot generation, and readers pinned to the old
// one keep running against it. The corpus's ground-truth ledgers
// (Bugs, Baits) are not rewritten; callers that mutate bug sites own
// the bookkeeping.
//
// Replace is a one-op changeset: every mutation path shares
// ApplyChangeset's stage-validate-commit machinery, so the byte-level
// cold-scan equivalence the property harness checks holds for all of
// them by construction.
func (cb *Codebase) Replace(path, src string) (*Mutation, error) {
	cs, err := cb.ApplyChangeset([]Change{{Path: path, Source: src}})
	if err != nil {
		return nil, err
	}
	return cs.mutation(), nil
}

// Patch replaces the named function of the file at path with funcSrc,
// which must parse to exactly one function and nothing else (a struct
// or global in the patch would change the file context behind every
// sibling function's back). The file is re-rendered canonically and
// re-parsed, so the in-memory AST — including every position a report
// can carry — is byte-equivalent to a cold parse of the stored source.
//
// After a Patch, an incremental re-scan misses only on the patched
// file's changed functions: the patched one, plus any sibling the
// rendering shifted to a new position.
func (cb *Codebase) Patch(path, funcName, funcSrc string) (*Mutation, error) {
	cs, err := cb.ApplyChangeset([]Change{{Path: path, Func: funcName, Source: funcSrc}})
	if err != nil {
		return nil, err
	}
	return cs.mutation(), nil
}
