package scan

import (
	"fmt"
	"sort"

	"knighter/internal/minic"
)

// Mutation describes one applied corpus mutation, in particular which
// pre-mutation function hashes became unreachable — the store entries
// addressed by them are garbage and may be invalidated.
type Mutation struct {
	// Path and File identify the mutated file.
	Path string
	File int
	// Funcs is the file's function count after the mutation.
	Funcs int
	// Changed counts functions whose content hash differs from before
	// (exactly the functions an incremental re-scan will miss on).
	Changed int
	// StaleHashes are the pre-mutation hashes that no longer address any
	// function of the file. Hashes shared by unchanged functions are NOT
	// listed: their cache entries are still live.
	StaleHashes []string
	// StoreInvalidated counts the store entries dropped for StaleHashes.
	// Populated by Incremental.Patch/Replace (zero for bare Codebase
	// mutations, which have no store).
	StoreInvalidated int
	// Generation is the codebase generation after this mutation.
	Generation int64
}

// Replace swaps in new source text for the file at path, re-parses only
// that file, and recomputes only its hashes — every other file's cache
// entries stay warm. Content addressing keeps even the replaced file
// partially warm: functions whose rendering, position, and file context
// are unchanged still hit.
//
// Replace blocks until in-flight scans drain (they hold the codebase
// read lock) and blocks new scans until the swap is done. The corpus's
// ground-truth ledgers (Bugs, Baits) are not rewritten; callers that
// mutate bug sites own the bookkeeping.
func (cb *Codebase) Replace(path, src string) (*Mutation, error) {
	nf, err := minic.ParseFile(path, src)
	if err != nil {
		return nil, fmt.Errorf("scan: replace %s: %w", path, err)
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	i := cb.fileIndex(path)
	if i < 0 {
		return nil, fmt.Errorf("scan: replace %s: no such file", path)
	}
	return cb.swapFile(i, nf, src), nil
}

// Patch replaces the named function of the file at path with funcSrc,
// which must parse to exactly one function and nothing else (a struct
// or global in the patch would change the file context behind every
// sibling function's back). The file is re-rendered canonically and
// re-parsed, so the in-memory AST — including every position a report
// can carry — is byte-equivalent to a cold parse of the stored source.
//
// After a Patch, an incremental re-scan misses only on the patched
// file's changed functions: the patched one, plus any sibling the
// rendering shifted to a new position.
func (cb *Codebase) Patch(path, funcName, funcSrc string) (*Mutation, error) {
	pf, err := minic.ParseFile(path, funcSrc)
	if err != nil {
		return nil, fmt.Errorf("scan: patch %s.%s: %w", path, funcName, err)
	}
	if len(pf.Funcs) != 1 || len(pf.Structs) != 0 || len(pf.Globals) != 0 {
		return nil, fmt.Errorf("scan: patch %s.%s: patch source must contain exactly one function and no declarations (got %d funcs, %d structs, %d globals)",
			path, funcName, len(pf.Funcs), len(pf.Structs), len(pf.Globals))
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	i := cb.fileIndex(path)
	if i < 0 {
		return nil, fmt.Errorf("scan: patch %s.%s: no such file", path, funcName)
	}
	old := cb.Files[i]
	j := -1
	for idx, fn := range old.Funcs {
		if fn.Name == funcName {
			j = idx
			break
		}
	}
	if j < 0 {
		return nil, fmt.Errorf("scan: patch %s.%s: no such function", path, funcName)
	}
	funcs := make([]*minic.FuncDecl, len(old.Funcs))
	copy(funcs, old.Funcs)
	funcs[j] = pf.Funcs[0]
	src := minic.FormatFile(&minic.File{
		Name: old.Name, Structs: old.Structs, Globals: old.Globals, Funcs: funcs,
	})
	nf, err := minic.ParseFile(path, src)
	if err != nil {
		// The canonical printer emitted something the parser rejects —
		// a printer bug, but surface it rather than corrupt the file.
		return nil, fmt.Errorf("scan: patch %s.%s: re-parse of patched file: %w", path, funcName, err)
	}
	return cb.swapFile(i, nf, src), nil
}

// swapFile installs the new AST and source for file i and recomputes its
// hashes. Caller holds cb.mu for writing.
func (cb *Codebase) swapFile(i int, nf *minic.File, src string) *Mutation {
	oldHashes := make(map[string]bool, len(cb.Files[i].Funcs))
	for j := range cb.Files[i].Funcs {
		oldHashes[cb.funcHash(i, j)] = true
	}
	cb.numFuncs.Add(int64(len(nf.Funcs) - len(cb.Files[i].Funcs)))
	cb.Files[i] = nf
	cb.Corpus.Files[i].Src = src
	cb.invalidateFileHashes(i)

	m := &Mutation{
		Path:       nf.Name,
		File:       i,
		Funcs:      len(nf.Funcs),
		Generation: cb.generation.Add(1),
	}
	newHashes := make(map[string]bool, len(nf.Funcs))
	for j := range nf.Funcs {
		h := cb.funcHash(i, j)
		newHashes[h] = true
		if !oldHashes[h] {
			m.Changed++
		}
	}
	for h := range oldHashes {
		if !newHashes[h] {
			m.StaleHashes = append(m.StaleHashes, h)
		}
	}
	sort.Strings(m.StaleHashes)
	return m
}
