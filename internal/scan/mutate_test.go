package scan

import (
	"strings"
	"testing"
	"time"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// pickFile returns the index of a corpus file with at least minFuncs
// functions.
func pickFile(t *testing.T, cb *Codebase, minFuncs int) int {
	t.Helper()
	for i, f := range cb.Files() {
		if len(f.Funcs) >= minFuncs {
			return i
		}
	}
	t.Fatalf("no corpus file with >= %d functions", minFuncs)
	return -1
}

// canonicalize replaces file i with its canonical rendering, so that
// later patches (which re-render the file) shift no sibling positions
// beyond those the patch itself moves.
func canonicalize(t *testing.T, inc *Incremental, i int) {
	t.Helper()
	cb := inc.Codebase()
	if _, err := inc.Replace(cb.Files()[i].Name, minic.FormatFile(cb.Files()[i])); err != nil {
		t.Fatal(err)
	}
}

// tweakedFunc renders function j of file i with an extra (inert) local
// declaration, producing a valid patch whose analysis result is
// unchanged but whose content hash is not.
func tweakedFunc(t *testing.T, cb *Codebase, i, j int) string {
	t.Helper()
	src := minic.FormatFunc(cb.Files()[i].Funcs[j])
	brace := strings.Index(src, "{")
	if brace < 0 {
		t.Fatalf("no body in rendered function:\n%s", src)
	}
	return src[:brace+1] + "\n\tint patched_probe;" + src[brace+1:]
}

func TestPatchMissesOnlyThePatchedFunction(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	st := store.NewMemory(0)
	inc := NewIncremental(cb, st)

	i := pickFile(t, cb, 2)
	path := cb.Files()[i].Name
	canonicalize(t, inc, i)
	inc.RunOne(ck, Options{Workers: 1}) // warm everything
	total := inc.RunOne(ck, Options{Workers: 1})
	if total.CacheMisses != 0 {
		t.Fatalf("warm-up left %d misses", total.CacheMisses)
	}

	// Patch the last function: nothing below it shifts, so exactly one
	// function's hash changes.
	j := len(cb.Files()[i].Funcs) - 1
	name := cb.Files()[i].Funcs[j].Name
	m, err := inc.Patch(path, name, tweakedFunc(t, cb, i, j))
	if err != nil {
		t.Fatal(err)
	}
	if m.Changed != 1 || len(m.StaleHashes) != 1 {
		t.Fatalf("mutation = %+v, want exactly one changed function", m)
	}
	if m.StoreInvalidated != 1 {
		t.Fatalf("store invalidated %d entries, want 1 (one checker, one engine config)", m.StoreInvalidated)
	}

	rescan := inc.RunOne(ck, Options{Workers: 1})
	if rescan.CacheMisses != 1 {
		t.Fatalf("re-scan after one-function patch missed %d times, want 1", rescan.CacheMisses)
	}
	if rescan.CacheHits != total.CacheHits-1 {
		t.Fatalf("re-scan hits = %d, want %d (all but the patched function)", rescan.CacheHits, total.CacheHits-1)
	}

	// Determinism: the incremental re-scan must be byte-identical to a
	// cold scan of the mutated corpus.
	cold, err := NewCodebase(cb.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, cold.RunOne(ck, Options{Workers: 1}))
	if got := resultBytes(t, rescan); got != want {
		t.Fatal("post-patch incremental scan differs from cold scan of the mutated corpus")
	}
	warm := inc.RunOne(ck, Options{Workers: 1})
	if warm.CacheMisses != 0 {
		t.Fatalf("second post-patch scan missed %d times", warm.CacheMisses)
	}
	if got := resultBytes(t, warm); got != want {
		t.Fatal("fully-warm post-patch scan differs from cold scan of the mutated corpus")
	}
}

func TestPatchConfinesMissesToTheFile(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	i := pickFile(t, cb, 3)
	path := cb.Files()[i].Name
	canonicalize(t, inc, i)
	inc.RunOne(ck, Options{Workers: 1})

	// Patch the FIRST function with a body that is one line longer:
	// every sibling below it shifts, so their hashes change too — but
	// the damage must stay inside this file.
	name := cb.Files()[i].Funcs[0].Name
	m, err := inc.Patch(path, name, tweakedFunc(t, cb, i, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Changed < 1 || m.Changed > len(cb.Files()[i].Funcs) {
		t.Fatalf("changed = %d, want within [1, %d]", m.Changed, len(cb.Files()[i].Funcs))
	}

	// Every other file re-scans without a single miss.
	var others []int
	for fi := range cb.Files() {
		if fi != i {
			others = append(others, fi)
		}
	}
	if res := inc.RunFiles(others, []checker.Checker{ck}, Options{Workers: 1}); res.CacheMisses != 0 {
		t.Fatalf("scan of untouched files missed %d times after a patch elsewhere", res.CacheMisses)
	}
	// And the patched file misses exactly on the changed functions.
	if res := inc.RunFile(i, []checker.Checker{ck}, Options{Workers: 1}); res.CacheMisses != m.Changed {
		t.Fatalf("patched file missed %d times, want %d", res.CacheMisses, m.Changed)
	}
}

func TestReplaceDeleteFunctionKeepsSiblingsWarm(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	inc := NewIncremental(cb, store.NewMemory(0))

	i := pickFile(t, cb, 3)
	path := cb.Files()[i].Name
	canonicalize(t, inc, i)
	inc.RunOne(ck, Options{Workers: 1})
	before := len(cb.Files()[i].Funcs)

	// Drop the last function: the survivors keep their text, position,
	// and file context, so the replacement costs zero re-analysis.
	f := cb.Files()[i]
	m, err := inc.Replace(path, minic.FormatFile(&minic.File{
		Name: f.Name, Structs: f.Structs, Globals: f.Globals, Funcs: f.Funcs[:before-1],
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Funcs != before-1 {
		t.Fatalf("funcs after delete = %d, want %d", m.Funcs, before-1)
	}
	if m.Changed != 0 {
		t.Fatalf("deleting the last function changed %d sibling hashes, want 0", m.Changed)
	}
	if len(m.StaleHashes) != 1 {
		t.Fatalf("stale hashes = %d, want 1 (the deleted function)", len(m.StaleHashes))
	}
	if res := inc.RunFile(i, []checker.Checker{ck}, Options{Workers: 1}); res.CacheMisses != 0 {
		t.Fatalf("re-scan after delete missed %d times, want 0", res.CacheMisses)
	}

	// Byte-identical to a cold scan of the shrunken corpus.
	cold, err := NewCodebase(cb.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, cold.RunOne(ck, Options{Workers: 1}))
	if got := resultBytes(t, inc.RunOne(ck, Options{Workers: 1})); got != want {
		t.Fatal("post-delete incremental scan differs from cold scan")
	}
}

func TestMutationRejectsBadInput(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))
	path := cb.Files()[0].Name
	fn := cb.Files()[0].Funcs[0]
	good := minic.FormatFunc(fn)

	cases := []struct {
		name string
		run  func() error
	}{
		{"replace unknown file", func() error {
			_, err := inc.Replace("no/such/file.c", good)
			return err
		}},
		{"replace parse error", func() error {
			_, err := inc.Replace(path, "int broken(")
			return err
		}},
		{"patch unknown file", func() error {
			_, err := inc.Patch("no/such/file.c", fn.Name, good)
			return err
		}},
		{"patch unknown function", func() error {
			_, err := inc.Patch(path, "no_such_function", good)
			return err
		}},
		{"patch parse error", func() error {
			_, err := inc.Patch(path, fn.Name, "int broken(")
			return err
		}},
		{"patch with two functions", func() error {
			_, err := inc.Patch(path, fn.Name, good+"\n"+strings.Replace(good, fn.Name, fn.Name+"_b", 1))
			return err
		}},
		{"patch smuggling a global", func() error {
			_, err := inc.Patch(path, fn.Name, "int smuggled_global;\n"+good)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if g := cb.Generation(); g != 0 {
		t.Fatalf("rejected mutations bumped generation to %d", g)
	}
}

func TestGenerationAndFuncCountTrackMutations(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))
	if cb.Generation() != 0 {
		t.Fatalf("fresh codebase generation = %d", cb.Generation())
	}
	funcs := cb.NumFuncs()
	i := pickFile(t, cb, 2)
	canonicalize(t, inc, i)
	if cb.Generation() != 1 {
		t.Fatalf("generation after one replace = %d", cb.Generation())
	}
	if cb.NumFuncs() != funcs {
		t.Fatalf("canonicalizing changed the function count: %d -> %d", funcs, cb.NumFuncs())
	}
	name := cb.Files()[i].Funcs[0].Name
	if _, err := inc.Patch(cb.Files()[i].Name, name, tweakedFunc(t, cb, i, 0)); err != nil {
		t.Fatal(err)
	}
	if cb.Generation() != 2 {
		t.Fatalf("generation after patch = %d", cb.Generation())
	}
}

func TestFuncTimeoutResultsAreNotCached(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	st := store.NewMemory(0)
	inc := NewIncremental(cb, st)

	// A 1ns budget times out every function before any analysis.
	res := inc.RunFile(0, []checker.Checker{ck}, Options{Workers: 1, FuncTimeout: time.Nanosecond})
	n := len(cb.Files()[0].Funcs)
	if res.FuncsTimedOut != n {
		t.Fatalf("timed out %d of %d functions", res.FuncsTimedOut, n)
	}
	if s := st.Stats(); s.Puts != 0 {
		t.Fatalf("timed-out results were cached: %+v", s)
	}

	// Without the budget the same scan is a full (cold) analysis whose
	// results do get cached — the poisoned-cache scenario this guards.
	full := inc.RunFile(0, []checker.Checker{ck}, Options{Workers: 1})
	if full.CacheHits != 0 || full.FuncsTimedOut != 0 {
		t.Fatalf("post-timeout scan: hits=%d timedout=%d", full.CacheHits, full.FuncsTimedOut)
	}
	if warm := inc.RunFile(0, []checker.Checker{ck}, Options{Workers: 1}); warm.CacheMisses != 0 {
		t.Fatalf("warm scan missed %d times", warm.CacheMisses)
	}
}
