package scan

import (
	"fmt"
	"sort"

	"knighter/internal/minic"
	"knighter/internal/store"
)

// Change is one element of a changeset: a whole-file replacement (Func
// empty) or a single-function patch (Func names the function Source
// replaces). Patch sources follow the same rule as Codebase.Patch: one
// function, no struct or global declarations.
type Change struct {
	Path   string
	Func   string
	Source string
}

// FileChange reports what a changeset did to one file, with the same
// semantics as the per-file fields of Mutation.
type FileChange struct {
	// Path and File identify the mutated file.
	Path string
	File int
	// Funcs is the file's function count after the changeset.
	Funcs int
	// Changed counts functions whose content hash differs from before
	// (exactly the functions an incremental re-scan will miss on).
	Changed int
	// StaleHashes are the pre-changeset hashes that no longer address any
	// function of the file.
	StaleHashes []string
}

// Changeset describes one atomically applied multi-file changeset: the
// commit-sized unit of corpus mutation. However many files it touches,
// it costs one snapshot swap and exactly one generation bump.
type Changeset struct {
	// Ops is the number of changes applied.
	Ops int
	// Files holds per-file outcomes, in first-touch order.
	Files []*FileChange
	// Changed totals changed functions across all touched files.
	Changed int
	// StaleHashes is the sorted union of every file's orphaned hashes.
	StaleHashes []string
	// StoreInvalidated counts the store entries dropped for StaleHashes.
	// Populated by Incremental.ApplyChangeset (zero for bare Codebase
	// changesets, which have no store).
	StoreInvalidated int
	// Generation is the codebase generation after this changeset.
	Generation int64
}

// mutation converts a single-op changeset into the per-file Mutation
// view that Patch and Replace return.
func (cs *Changeset) mutation() *Mutation {
	fc := cs.Files[0]
	return &Mutation{
		Path:             fc.Path,
		File:             fc.File,
		Funcs:            fc.Funcs,
		Changed:          fc.Changed,
		StaleHashes:      fc.StaleHashes,
		StoreInvalidated: cs.StoreInvalidated,
		Generation:       cs.Generation,
	}
}

// opContext names one change for error messages: standalone mutations
// keep their historical "scan: replace <path>" shape, multi-op
// changesets gain the op index.
func opContext(oi, n int, c Change) string {
	verb := fmt.Sprintf("replace %s", c.Path)
	if c.Func != "" {
		verb = fmt.Sprintf("patch %s.%s", c.Path, c.Func)
	}
	if n == 1 {
		return "scan: " + verb
	}
	return fmt.Sprintf("scan: changeset op %d (%s)", oi, verb)
}

// parseChanges parses every op's source BEFORE the mutation lock is
// taken: the raw parses read nothing from the codebase, and they are
// the expensive part of a mutation — doing them outside keeps the
// writer-serialized window to the stage and swap themselves.
func parseChanges(changes []Change) ([]*minic.File, error) {
	parsed := make([]*minic.File, len(changes))
	for oi, c := range changes {
		where := opContext(oi, len(changes), c)
		pf, err := minic.ParseFile(c.Path, c.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", where, err)
		}
		if c.Func != "" && (len(pf.Funcs) != 1 || len(pf.Structs) != 0 || len(pf.Globals) != 0) {
			return nil, fmt.Errorf("%s: patch source must contain exactly one function and no declarations (got %d funcs, %d structs, %d globals)",
				where, len(pf.Funcs), len(pf.Structs), len(pf.Globals))
		}
		parsed[oi] = pf
	}
	return parsed, nil
}

// stageChanges builds each touched file's final AST and source against
// the parent snapshot, without mutating anything: a bad op — unknown
// file, unknown function, re-parse failure — rejects the whole
// changeset and no generation is consumed by the sync path.
//
// Ops apply in order against the staged state, so a patch may target a
// function introduced by an earlier replace of the same file in the
// same changeset.
func stageChanges(parent *Snapshot, changes []Change, parsed []*minic.File) (work map[int]*minic.File, srcs map[int]string, touched []int, err error) {
	work = map[int]*minic.File{}
	srcs = map[int]string{}
	stage := func(i int, nf *minic.File, src string) {
		if _, seen := work[i]; !seen {
			touched = append(touched, i)
		}
		work[i] = nf
		srcs[i] = src
	}
	for oi, c := range changes {
		where := opContext(oi, len(changes), c)
		i := parent.FileIndex(c.Path)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("%s: no such file", where)
		}
		if c.Func == "" {
			stage(i, parsed[oi], c.Source)
			continue
		}
		pf := parsed[oi]
		old := parent.files[i]
		if staged, ok := work[i]; ok {
			old = staged
		}
		j := -1
		for idx, fn := range old.Funcs {
			if fn.Name == c.Func {
				j = idx
				break
			}
		}
		if j < 0 {
			return nil, nil, nil, fmt.Errorf("%s: no such function", where)
		}
		funcs := make([]*minic.FuncDecl, len(old.Funcs))
		copy(funcs, old.Funcs)
		funcs[j] = pf.Funcs[0]
		// The file is re-rendered canonically and re-parsed, so the
		// in-memory AST — including every position a report can carry —
		// is byte-equivalent to a cold parse of the stored source.
		src := minic.FormatFile(&minic.File{
			Name: old.Name, Structs: old.Structs, Globals: old.Globals, Funcs: funcs,
		})
		nf, perr := minic.ParseFile(c.Path, src)
		if perr != nil {
			// The canonical printer emitted something the parser rejects —
			// a printer bug, but surface it rather than corrupt the file.
			return nil, nil, nil, fmt.Errorf("%s: re-parse of patched file: %w", where, perr)
		}
		stage(i, nf, src)
	}
	return work, srcs, touched, nil
}

// commitLocked publishes generation gen: it builds the successor
// snapshot off the parent, diffs the touched files' content hashes,
// rewrites the corpus ground-truth sources, and swaps the live
// pointer. Caller holds cb.wmu and has already reserved gen
// (cb.nextGen >= gen, cb.generation == gen-1). An empty work map
// publishes a content-identical snapshot — how a failed async
// changeset burns its reserved token without stranding later ones.
func (cb *Codebase) commitLocked(parent *Snapshot, ops int, work map[int]*minic.File, srcs map[int]string, touched []int, gen int64) *Changeset {
	// Pre-changeset hashes come from the parent's memo, which still
	// reflects the old ASTs and is shared by every reader pinned to it.
	oldHashes := make(map[int]map[string]bool, len(touched))
	for _, i := range touched {
		hs := make(map[string]bool, len(parent.files[i].Funcs))
		for j := range parent.files[i].Funcs {
			hs[parent.FuncHash(i, j)] = true
		}
		oldHashes[i] = hs
	}
	next := parent.next(gen, work)
	cs := &Changeset{Ops: ops, Generation: gen}
	for _, i := range touched {
		fc := &FileChange{Path: next.files[i].Name, File: i, Funcs: len(next.files[i].Funcs)}
		newHashes := make(map[string]bool, fc.Funcs)
		for j := 0; j < fc.Funcs; j++ {
			h := next.FuncHash(i, j)
			newHashes[h] = true
			if !oldHashes[i][h] {
				fc.Changed++
			}
		}
		for h := range oldHashes[i] {
			if !newHashes[h] {
				fc.StaleHashes = append(fc.StaleHashes, h)
			}
		}
		sort.Strings(fc.StaleHashes)
		cs.Files = append(cs.Files, fc)
		cs.Changed += fc.Changed
		cs.StaleHashes = append(cs.StaleHashes, fc.StaleHashes...)
	}
	sort.Strings(cs.StaleHashes)
	// The corpus ground truth mirrors the committed generation: srcs
	// rewrite under wmu, so NewCodebase(cb.Corpus) at writer quiescence
	// reproduces the live snapshot exactly.
	for _, i := range touched {
		cb.Corpus.Files[i].Src = srcs[i]
	}
	// Publish: one pointer swap makes the generation live; the atomics
	// follow so lock-free probes agree with the snapshot they'd pin.
	cb.snap.Store(next)
	cb.numFuncs.Store(int64(next.numFuncs))
	cb.generation.Store(gen)
	cb.notifyGeneration()
	cb.wcond.Broadcast()
	return cs
}

// ApplyChangeset applies every change atomically: all ops are validated
// and staged against working copies first, so a bad op — unknown file,
// unknown function, parse error — rejects the whole changeset, leaves
// the codebase untouched, and consumes no generation. On success every
// touched file swaps in at once, as a single new snapshot and a single
// generation bump, and only the touched files re-parse.
//
// Unlike the old write-lock design, ApplyChangeset never waits for
// in-flight scans and never blocks new ones: readers pinned to the
// previous generation keep running against it while this commit
// publishes the next. It does serialize with other writers, waiting
// its turn behind any async changeset tokens already reserved.
func (cb *Codebase) ApplyChangeset(changes []Change) (*Changeset, error) {
	if len(changes) == 0 {
		return nil, fmt.Errorf("scan: empty changeset")
	}
	parsed, err := parseChanges(changes)
	if err != nil {
		return nil, err
	}
	cb.wmu.Lock()
	defer cb.wmu.Unlock()
	// Wait until every reserved async token ahead of us has committed:
	// generations publish in token order, and a sync changeset's
	// generation is only assigned here — on success — so a rejected one
	// never burns a number.
	for cb.generation.Load() != cb.nextGen {
		cb.wcond.Wait()
	}
	parent := cb.snap.Load()
	work, srcs, touched, err := stageChanges(parent, changes, parsed)
	if err != nil {
		return nil, err
	}
	cb.nextGen++
	return cb.commitLocked(parent, len(changes), work, srcs, touched, cb.nextGen), nil
}

// ApplyChangeset applies a multi-file changeset to the codebase (see
// Codebase.ApplyChangeset) and invalidates every orphaned store entry in
// one pass over the store. Invalidation runs after the commit, against
// the committed generation's stale-hash set — never against mid-build
// state — and stale entries are content-addressed, so the window
// between swap and invalidation can serve no wrong results, only
// unreachable ones.
func (inc *Incremental) ApplyChangeset(changes []Change) (*Changeset, error) {
	cs, err := inc.cb.ApplyChangeset(changes)
	if err != nil {
		return nil, err
	}
	cs.StoreInvalidated = inc.invalidateHashes(cs.StaleHashes)
	return cs, nil
}

// invalidateHashes drops every store entry addressed by the given
// pre-mutation function hashes, preferring the store's bulk path (one
// lock acquisition, one pass) over per-hash calls.
func (inc *Incremental) invalidateHashes(hashes []string) int {
	if len(hashes) == 0 {
		return 0
	}
	if bulk, ok := inc.st.(store.BulkInvalidator); ok {
		return bulk.InvalidateFuncs(hashes)
	}
	inv, ok := inc.st.(store.Invalidator)
	if !ok {
		return 0
	}
	n := 0
	for _, h := range hashes {
		n += inv.InvalidateFunc(h)
	}
	return n
}
