package scan

import (
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
)

const scanNPD = `
checker scan_npd {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

func buildCodebase(t *testing.T) *Codebase {
	t.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cb, err := NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	return cb
}

func compileChecker(t *testing.T) *ckdsl.Compiled {
	t.Helper()
	ck, err := ckdsl.CompileSource(scanNPD)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func fingerprint(reports []*checker.Report) string {
	var keys []string
	for _, r := range reports {
		keys = append(keys, r.Key())
	}
	return strings.Join(keys, "|")
}

func TestScanDeterministicAcrossWorkerCounts(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	base := cb.RunOne(ck, Options{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		got := cb.RunOne(ck, Options{Workers: workers})
		if fingerprint(got.Reports) != fingerprint(base.Reports) {
			t.Fatalf("workers=%d produced different reports", workers)
		}
	}
}

func TestScanFindsSeededBugs(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	res := cb.RunOne(ck, Options{})
	found := 0
	for _, r := range res.Reports {
		if _, ok := cb.Corpus.IsBugSite(r.File, r.Func); ok {
			found++
		}
	}
	// The corpus seeds 8 devm_kzalloc NPD bugs regardless of scale.
	if found != 8 {
		t.Errorf("seeded devm_kzalloc bugs found = %d, want 8", found)
	}
}

func TestScanMaxReportsCap(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	res := cb.RunOne(ck, Options{MaxReports: 3})
	if len(res.Reports) != 3 || !res.Truncated {
		t.Errorf("cap: %d reports, truncated=%v", len(res.Reports), res.Truncated)
	}
}

func TestScanCountsFilesAndFuncs(t *testing.T) {
	cb := buildCodebase(t)
	res := cb.Run(nil, Options{})
	if res.FilesScanned != len(cb.Corpus.Files) {
		t.Errorf("files scanned = %d, want %d", res.FilesScanned, len(cb.Corpus.Files))
	}
	if res.FuncsScanned == 0 {
		t.Error("no functions counted")
	}
}

func TestRunMultipleCheckersMergesNamespaces(t *testing.T) {
	cb := buildCodebase(t)
	ck1 := compileChecker(t)
	ck2, err := ckdsl.CompileSource(strings.ReplaceAll(scanNPD, "scan_npd", "scan_npd_b"))
	if err != nil {
		t.Fatal(err)
	}
	both := cb.Run([]checker.Checker{ck1, ck2}, Options{})
	// Identical logic under two names: every site reported twice.
	single := cb.RunOne(ck1, Options{})
	if len(both.Reports) != 2*len(single.Reports) {
		t.Errorf("batched scan reports = %d, want %d", len(both.Reports), 2*len(single.Reports))
	}
}
