package scan

import (
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/store"
)

// pickFiles returns the indices of n distinct corpus files, each with at
// least minFuncs functions.
func pickFiles(t *testing.T, cb *Codebase, n, minFuncs int) []int {
	t.Helper()
	var out []int
	for i, f := range cb.Files() {
		if len(f.Funcs) >= minFuncs {
			out = append(out, i)
			if len(out) == n {
				return out
			}
		}
	}
	t.Fatalf("corpus has only %d files with >= %d functions, need %d", len(out), minFuncs, n)
	return nil
}

// TestChangesetConfinesMissesToTouchedFiles is the tentpole acceptance
// criterion: a K-file changeset misses only on functions in the K
// touched files, and the post-changeset scan is byte-identical to a cold
// scan of the mutated corpus.
func TestChangesetConfinesMissesToTouchedFiles(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	st := store.NewMemory(0)
	inc := NewIncremental(cb, st)

	const k = 3
	files := pickFiles(t, cb, k, 2)
	for _, i := range files {
		canonicalize(t, inc, i)
	}
	genBefore := cb.Generation()
	inc.RunOne(ck, Options{Workers: 1}) // warm everything
	warm := inc.RunOne(ck, Options{Workers: 1})
	if warm.CacheMisses != 0 {
		t.Fatalf("warm-up left %d misses", warm.CacheMisses)
	}

	// One change per file, patching each file's LAST function so nothing
	// below it shifts: exactly one hash changes per touched file.
	var changes []Change
	for _, i := range files {
		j := len(cb.Files()[i].Funcs) - 1
		changes = append(changes, Change{
			Path:   cb.Files()[i].Name,
			Func:   cb.Files()[i].Funcs[j].Name,
			Source: tweakedFunc(t, cb, i, j),
		})
	}
	cs, err := inc.ApplyChangeset(changes)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Ops != k || len(cs.Files) != k {
		t.Fatalf("changeset touched %d ops / %d files, want %d", cs.Ops, len(cs.Files), k)
	}
	if cs.Changed != k || len(cs.StaleHashes) != k {
		t.Fatalf("changeset changed %d funcs / %d stale hashes, want %d each", cs.Changed, len(cs.StaleHashes), k)
	}
	if cs.StoreInvalidated != k {
		t.Fatalf("store invalidated %d entries, want %d (one checker, one engine config)", cs.StoreInvalidated, k)
	}
	if cs.Generation != genBefore+1 {
		t.Fatalf("generation = %d, want %d (one bump for the whole changeset)", cs.Generation, genBefore+1)
	}

	// Miss confinement: the full re-scan misses exactly k times — one per
	// touched file — and hits everything else.
	rescan := inc.RunOne(ck, Options{Workers: 1})
	if rescan.CacheMisses != k {
		t.Fatalf("post-changeset scan missed %d times, want %d", rescan.CacheMisses, k)
	}
	if rescan.CacheHits != warm.CacheHits-k {
		t.Fatalf("post-changeset hits = %d, want %d", rescan.CacheHits, warm.CacheHits-k)
	}

	// Untouched files re-scan without a single miss.
	var others []int
	touched := map[int]bool{}
	for _, i := range files {
		touched[i] = true
	}
	for fi := range cb.Files() {
		if !touched[fi] {
			others = append(others, fi)
		}
	}
	if res := inc.RunFiles(others, []checker.Checker{ck}, Options{Workers: 1}); res.CacheMisses != 0 {
		t.Fatalf("scan of untouched files missed %d times after a changeset elsewhere", res.CacheMisses)
	}

	// Byte-identical to a cold scan of the mutated corpus.
	cold, err := NewCodebase(cb.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, cold.RunOne(ck, Options{Workers: 1}))
	if got := resultBytes(t, inc.RunOne(ck, Options{Workers: 1})); got != want {
		t.Fatal("post-changeset incremental scan differs from cold scan of the mutated corpus")
	}
}

// TestChangesetIsAtomic verifies all-or-nothing semantics: a changeset
// whose last op is invalid must leave the codebase byte-identical to its
// pre-changeset state — no partial file swaps, no generation bump, no
// store invalidation.
func TestChangesetIsAtomic(t *testing.T) {
	cb := buildCodebase(t)
	ck := compileChecker(t)
	st := store.NewMemory(0)
	inc := NewIncremental(cb, st)

	files := pickFiles(t, cb, 2, 2)
	for _, i := range files {
		canonicalize(t, inc, i)
	}
	inc.RunOne(ck, Options{Workers: 1})
	genBefore := cb.Generation()
	srcBefore := cb.Corpus.Files[files[0]].Src

	bad := []struct {
		name    string
		changes []Change
	}{
		{"second op unknown file", []Change{
			{Path: cb.Files()[files[0]].Name, Source: minic.FormatFile(cb.Files()[files[0]])},
			{Path: "no/such/file.c", Source: "int x;"},
		}},
		{"second op parse error", []Change{
			{Path: cb.Files()[files[0]].Name, Source: minic.FormatFile(cb.Files()[files[0]])},
			{Path: cb.Files()[files[1]].Name, Source: "int broken("},
		}},
		{"second op unknown function", []Change{
			{Path: cb.Files()[files[0]].Name, Source: minic.FormatFile(cb.Files()[files[0]])},
			{Path: cb.Files()[files[1]].Name, Func: "no_such_function", Source: "int f(void)\n{\n\treturn 0;\n}"},
		}},
		{"patch smuggling a global", []Change{
			{Path: cb.Files()[files[0]].Name, Func: cb.Files()[files[0]].Funcs[0].Name,
				Source: "int smuggled;\n" + minic.FormatFunc(cb.Files()[files[0]].Funcs[0])},
		}},
		{"empty changeset", nil},
	}
	for _, tc := range bad {
		if _, err := inc.ApplyChangeset(tc.changes); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if g := cb.Generation(); g != genBefore {
		t.Fatalf("rejected changesets bumped generation %d -> %d", genBefore, g)
	}
	if cb.Corpus.Files[files[0]].Src != srcBefore {
		t.Fatal("rejected changeset mutated a file staged by an earlier valid op")
	}
	// The cache survived intact: a re-scan is all hits.
	if res := inc.RunOne(ck, Options{Workers: 1}); res.CacheMisses != 0 {
		t.Fatalf("rejected changesets cost %d cache misses", res.CacheMisses)
	}
}

// TestChangesetOpsComposeInOrder verifies that later ops see earlier
// ops' staged state: a replace that renames a function, followed by a
// patch of the new name, works in one changeset.
func TestChangesetOpsComposeInOrder(t *testing.T) {
	cb := buildCodebase(t)
	inc := NewIncremental(cb, store.NewMemory(0))
	i := pickFile(t, cb, 2)
	path := cb.Files()[i].Name

	// Replace: rename the last function.
	f := cb.Files()[i]
	j := len(f.Funcs) - 1
	oldName := f.Funcs[j].Name
	newName := oldName + "_renamed"
	renamed := strings.Replace(minic.FormatFile(f), oldName+"(", newName+"(", 1)

	// Patch: tweak the renamed function (only resolvable post-replace).
	patched := strings.Replace(tweakedFunc(t, cb, i, j), oldName+"(", newName+"(", 1)

	cs, err := inc.ApplyChangeset([]Change{
		{Path: path, Source: renamed},
		{Path: path, Func: newName, Source: patched},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Files) != 1 {
		t.Fatalf("two ops on one file produced %d file changes, want 1", len(cs.Files))
	}
	if got := cb.Files()[i].Funcs[j].Name; got != newName {
		t.Fatalf("final function name = %q, want %q", got, newName)
	}
	// Same-name patch against the PRE-replace state must fail, proving
	// ops really compose against staged state rather than the codebase.
	if _, err := cb.ApplyChangeset([]Change{
		{Path: path, Func: oldName, Source: minic.FormatFunc(f.Funcs[0])},
	}); err == nil {
		t.Fatal("patch of a renamed-away function succeeded")
	}
}

// TestChangesetEquivalentToSequentialMutations: one K-file changeset
// must leave the corpus and scan results in exactly the state K
// sequential Replaces would — with one generation bump instead of K.
func TestChangesetEquivalentToSequentialMutations(t *testing.T) {
	ck := compileChecker(t)

	build := func() (*Codebase, *Incremental) {
		cb := buildCodebase(t)
		return cb, NewIncremental(cb, store.NewMemory(0))
	}
	cbA, incA := build()
	cbB, incB := build()

	files := pickFiles(t, cbA, 3, 1)
	var changes []Change
	for _, i := range files {
		f := cbA.Files()[i]
		src := minic.FormatFile(f)
		changes = append(changes, Change{Path: f.Name, Source: src})
	}

	if _, err := incA.ApplyChangeset(changes); err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		if _, err := incB.Replace(c.Path, c.Source); err != nil {
			t.Fatal(err)
		}
	}
	if g := cbA.Generation(); g != 1 {
		t.Fatalf("changeset bumped generation %d times, want 1", g)
	}
	if g := cbB.Generation(); g != int64(len(files)) {
		t.Fatalf("sequential replaces bumped generation %d times, want %d", g, len(files))
	}
	a := resultBytes(t, incA.RunOne(ck, Options{Workers: 1}))
	b := resultBytes(t, incB.RunOne(ck, Options{Workers: 1}))
	if a != b {
		t.Fatal("changeset and sequential mutations diverged")
	}
}
