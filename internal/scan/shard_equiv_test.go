// Sharded-merge equivalence fuzzing. This lives in package scan_test
// (not scan) because it drives internal/shard, which imports
// internal/api, which imports scan — an in-package test would be an
// import cycle. It is the sharded sibling of FuzzMutationEquivalence:
// that harness proves arbitrary mutation interleavings leave the
// incremental scheduler byte-identical to a cold scan; this one proves
// that partitioning the same scan across shard owners — each a fully
// independent replica with its own parse, its own cache, and its own
// (identical) mutation history — and merging the partials is
// byte-identical to the single-host scan, truncation included.
package scan_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"knighter/internal/api"
	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/shard"
	"knighter/internal/store"
)

// The corpus template is generated once; every replica gets a clone
// (sources are strings, so a fresh []*SourceFile is a full logical
// copy) — replicas mutate their corpora in place, so they cannot share
// one.
var (
	shardEquivOnce     sync.Once
	shardEquivTemplate *kernel.Corpus
)

func shardEquivCorpus() *kernel.Corpus {
	shardEquivOnce.Do(func() {
		shardEquivTemplate = kernel.Generate(kernel.Config{Seed: 1, Scale: 0.02})
	})
	clone := *shardEquivTemplate
	clone.Files = make([]*kernel.SourceFile, len(shardEquivTemplate.Files))
	for i, sf := range shardEquivTemplate.Files {
		cp := *sf
		clone.Files[i] = &cp
	}
	return &clone
}

const shardEquivChecker = `
checker shard_equiv {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

// shardReplica is one independent fleet member: its own parse of the
// corpus and its own result store.
type shardReplica struct {
	cb  *scan.Codebase
	inc *scan.Incremental
}

func newShardReplica(t *testing.T) *shardReplica {
	t.Helper()
	cb, err := scan.NewCodebase(shardEquivCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return &shardReplica{cb: cb, inc: scan.NewIncremental(cb, store.NewMemory(0))}
}

func (r *shardReplica) fileIdx(t *testing.T, paths []string) []int {
	t.Helper()
	idx := make([]int, len(paths))
	for i, p := range paths {
		if idx[i] = r.cb.FileIndex(p); idx[i] < 0 {
			t.Fatalf("unknown file %s", p)
		}
	}
	return idx
}

// tweakChange patches one function of file f with an inert declaration
// derived from variant — the same mutation shape FuzzMutationEquivalence
// uses, expressed as a changeset op every replica can replay.
func tweakChange(t *testing.T, f *minic.File, variant byte) (scan.Change, bool) {
	t.Helper()
	if len(f.Funcs) == 0 {
		return scan.Change{}, false
	}
	fn := f.Funcs[int(variant)%len(f.Funcs)]
	src := minic.FormatFunc(fn)
	brace := strings.Index(src, "{")
	if brace < 0 {
		t.Fatalf("no body in rendered function %s", fn.Name)
	}
	src = src[:brace+1] + fmt.Sprintf("\n\tint sz_%d;", variant%16) + src[brace+1:]
	return scan.Change{Path: f.Name, Func: fn.Name, Source: src}, true
}

// scanBytes strips the nondeterministic fields (timings, cache
// counters, the merge-cursor cuts) and marshals the rest — the
// byte-identity contract's surface.
func scanBytes(t *testing.T, resp *api.ScanResponse) string {
	t.Helper()
	c := *resp
	c.ElapsedMS = 0
	c.Cache = api.CacheStats{}
	c.FileCuts = nil
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// FuzzShardedScanEquivalence: an arbitrary interleaving of fleet-wide
// changesets and per-replica cache warming must leave a partitioned
// scatter/merge byte-identical to a single-host scan of the same
// generation. Any partition-order mistake, cut-accounting slip, or
// divergent truncation shows up as a byte diff.
func FuzzShardedScanEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{3, 0, 0, 1, 5, 9, 2, 7})
	f.Add([]byte{5, 1, 1, 0, 0, 2, 2, 4, 4, 8, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		sel := byte(0)
		if len(data) > 0 {
			sel, data = data[0], data[1:]
		}
		nShards := 2 + int(sel)%2 // 2 or 3 shard owners
		maxReports := 0
		if sel%2 == 1 {
			maxReports = 4 // exercise mid-merge truncation equivalence
		}

		// replicas[0..nShards-1] are the shard owners; control is the
		// single host every merge must match.
		replicas := make([]*shardReplica, nShards)
		for i := range replicas {
			replicas[i] = newShardReplica(t)
		}
		control := newShardReplica(t)
		ck := mustCompile(t)
		cks := []checker.Checker{ck}

		// Interleave up to 4 ops: each is a fleet-wide changeset (applied
		// to every replica AND the control, like the generation feed
		// replays it) optionally preceded by one replica warming part of
		// its cache — so owners reach the final generation with
		// DIFFERENT cache states, which the equivalence must not see.
		for ops := 0; len(data) >= 2 && ops < 4; ops++ {
			fileSel, variant := data[0], data[1]
			data = data[2:]
			files := control.cb.Files()
			fi := int(fileSel) % len(files)
			if variant%2 == 1 {
				warm := replicas[int(variant)%nShards]
				warm.inc.RunFiles([]int{fi % len(warm.cb.Files())}, cks, scan.Options{Workers: 1})
			}
			change, ok := tweakChange(t, files[fi], variant)
			if !ok {
				continue
			}
			for _, r := range append(append([]*shardReplica{}, replicas...), control) {
				if _, err := r.inc.ApplyChangeset([]scan.Change{change}); err != nil {
					t.Fatal(err)
				}
			}
		}

		paths := make([]string, len(control.cb.Files()))
		for i, cf := range control.cb.Files() {
			paths[i] = cf.Name
		}
		ring := shard.Ring{Count: nShards}
		parts := make([]*api.ScanResponse, nShards)
		for s, part := range ring.Partition(paths) {
			if len(part) == 0 {
				continue
			}
			// Sub-scans run uncapped with cuts, exactly like a shard-local
			// /scan; the cap is the coordinator's to apply mid-merge.
			res := replicas[s].inc.RunFiles(replicas[s].fileIdx(t, part), cks, scan.Options{Workers: 1})
			parts[s] = api.ScanResult("shard_equiv", res, true, true)
		}
		merged, err := shard.MergeScan("shard_equiv", paths, ring, parts, maxReports)
		if err != nil {
			t.Fatal(err)
		}

		res := control.inc.RunFiles(control.fileIdx(t, paths), cks,
			scan.Options{Workers: 1, MaxReports: maxReports})
		want := api.ScanResult("shard_equiv", res, true, false)
		if got, wantB := scanBytes(t, merged), scanBytes(t, want); got != wantB {
			t.Fatalf("sharded merge diverged from single host (%d shards, max_reports=%d):\nmerged: %s\nsingle: %s",
				nShards, maxReports, got, wantB)
		}
	})
}

func mustCompile(t *testing.T) checker.Checker {
	t.Helper()
	ck, err := ckdsl.CompileSource(shardEquivChecker)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}
