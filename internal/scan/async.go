package scan

import (
	"fmt"

	"knighter/internal/minic"
)

// AsyncChangeset is a changeset commit in flight. The generation token
// is assigned synchronously — reserving the changeset's place in the
// commit order before ApplyChangesetAsync returns — and the parse,
// stage, and swap happen in the background. Clients hold the token and
// either wait on Done/Result or poll the codebase's generation (kserve
// exposes both, via /changeset/status and min_generation).
type AsyncChangeset struct {
	// Generation is the token this changeset will commit as. It is
	// reserved up front: the codebase's committed generation reaches it
	// exactly when this changeset is visible (or has failed — a failed
	// async changeset publishes an empty commit at its token, so the
	// counter still advances and later tokens are never stranded).
	Generation int64

	done       chan struct{}
	cs         *Changeset
	err        error
	invalidate func([]string) int
}

// Done is closed once the changeset has committed (or failed). After
// Done, Result returns without blocking.
func (a *AsyncChangeset) Done() <-chan struct{} { return a.done }

// Result blocks until the commit completes and returns its outcome: the
// applied changeset, or the error that voided it. A voided changeset
// still consumed its generation token (as an empty commit).
func (a *AsyncChangeset) Result() (*Changeset, error) {
	<-a.done
	return a.cs, a.err
}

// ApplyChangesetAsync reserves the next generation token and returns
// immediately; the changeset parses, stages, and commits in the
// background, in token order behind any writers ahead of it. The
// returned AsyncChangeset's Generation is valid the moment this
// returns — a client can pass it straight back as min_generation to
// read its own write.
//
// Failure semantics differ from the sync path: the token is already
// public, so a changeset that fails validation publishes an EMPTY
// commit at its generation (content unchanged, counter advanced) and
// reports the error through Result. Callers that need
// reject-means-no-generation semantics use the sync ApplyChangeset.
func (cb *Codebase) ApplyChangesetAsync(changes []Change) *AsyncChangeset {
	return cb.applyChangesetAsync(changes, nil)
}

// ApplyChangesetAsync is the store-aware variant: after the background
// commit lands, the orphaned store entries of the committed generation
// are invalidated (see Incremental.ApplyChangeset) before Done closes.
func (inc *Incremental) ApplyChangesetAsync(changes []Change) *AsyncChangeset {
	return inc.cb.applyChangesetAsync(changes, inc.invalidateHashes)
}

func (cb *Codebase) applyChangesetAsync(changes []Change, invalidate func([]string) int) *AsyncChangeset {
	a := &AsyncChangeset{done: make(chan struct{}), invalidate: invalidate}
	cb.wmu.Lock()
	cb.nextGen++
	a.Generation = cb.nextGen
	cb.wmu.Unlock()
	go a.run(cb, changes)
	return a
}

func (a *AsyncChangeset) run(cb *Codebase, changes []Change) {
	// Parse outside the mutation lock, like the sync path: the raw
	// parses are the expensive part and read nothing from the codebase.
	var parsed []*minic.File
	var err error
	if len(changes) == 0 {
		err = fmt.Errorf("scan: empty changeset")
	} else {
		parsed, err = parseChanges(changes)
	}

	cb.wmu.Lock()
	// Commit strictly in token order: wait until the generation just
	// below ours is live. Every earlier token belongs to another async
	// changeset whose goroutine will publish (real or empty commit), and
	// sync writers only number themselves when nothing is reserved, so
	// this always makes progress.
	for cb.generation.Load() != a.Generation-1 {
		cb.wcond.Wait()
	}
	parent := cb.snap.Load()
	var cs *Changeset
	if err == nil {
		work, srcs, touched, serr := stageChanges(parent, changes, parsed)
		if serr != nil {
			err = serr
		} else {
			cs = cb.commitLocked(parent, len(changes), work, srcs, touched, a.Generation)
		}
	}
	if cs == nil {
		// Burn the token: an empty commit at our generation keeps the
		// counter monotonic and in token order, so later async commits
		// and min_generation waiters are never stranded behind a failure.
		cb.commitLocked(parent, 0, nil, nil, nil, a.Generation)
	}
	cb.wmu.Unlock()

	// Store invalidation runs after the swap, against the committed
	// generation's stale hashes — outside the writer lock, because a
	// store pass can be slow (remote tier) and stale entries are
	// content-addressed garbage, not corruption.
	if cs != nil && a.invalidate != nil {
		cs.StoreInvalidated = a.invalidate(cs.StaleHashes)
	}
	a.cs, a.err = cs, err
	close(a.done)
}
