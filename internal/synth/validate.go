package synth

import (
	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
	"knighter/internal/vcs"
)

// Validation is the outcome of differential validation (§3.1.4): the
// checker is run on the pre-patch and post-patch objects of the commit.
type Validation struct {
	NBuggy       int
	NPatched     int
	Valid        bool
	RuntimeError bool
}

// Validator runs checkers against both sides of a commit. A checker is
// valid iff N_buggy > N_patched && N_patched < TValid.
type Validator struct {
	TValid int
}

// NewValidator returns a validator with the given threshold (paper
// default 50).
func NewValidator(tValid int) *Validator {
	if tValid <= 0 {
		tValid = 50
	}
	return &Validator{TValid: tValid}
}

// Validate scans the commit's buggy and patched file with the checker.
func (v *Validator) Validate(ck checker.Checker, c *vcs.Commit) Validation {
	nb, rb := countReports(ck, c.File, c.Before)
	np, rp := countReports(ck, c.File, c.After)
	out := Validation{NBuggy: nb, NPatched: np, RuntimeError: rb || rp}
	if out.RuntimeError {
		return out
	}
	out.Valid = nb > np && np < v.TValid
	return out
}

// countReports analyzes one file version, returning the report count and
// whether the analyzer crashed.
func countReports(ck checker.Checker, path, src string) (int, bool) {
	f, err := minic.ParseFile(path, src)
	if err != nil {
		return 0, false
	}
	res := engine.AnalyzeFile(f, engine.Options{Checkers: []checker.Checker{ck}})
	return len(res.Reports), len(res.RuntimeErrs) > 0
}
