package synth

import (
	"testing"

	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/vcs"
)

func findCommit(t *testing.T, store *vcs.Store, class, flavor string) *vcs.Commit {
	t.Helper()
	for _, c := range store.All() {
		if c.Class == class && c.Flavor == flavor {
			return c
		}
	}
	t.Fatalf("no commit %s/%s", class, flavor)
	return nil
}

const npdArchetype = `
checker t_npd {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

func TestValidatorAcceptsDiscriminatingChecker(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassNPD, "devm_kzalloc")
	ck, err := ckdsl.CompileSource(npdArchetype)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(50).Validate(ck, c)
	if !v.Valid || v.NBuggy == 0 || v.NPatched != 0 {
		t.Fatalf("validation = %+v", v)
	}
}

func TestValidatorRejectsFlagBoth(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassNPD, "devm_kzalloc")
	// No nullcheck guard: the patched version is flagged too.
	noGuard := `
checker t_bad {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  sink { deref unchecked }
}
`
	ck, err := ckdsl.CompileSource(noGuard)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(50).Validate(ck, c)
	if v.Valid {
		t.Fatalf("guardless checker validated: %+v", v)
	}
	if v.NBuggy == 0 || v.NPatched == 0 {
		t.Fatalf("expected flag-both shape, got %+v", v)
	}
}

func TestValidatorRejectsMissBoth(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassNPD, "devm_kzalloc")
	wrongAnchor := `
checker t_miss {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "some_other_alloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`
	ck, err := ckdsl.CompileSource(wrongAnchor)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(50).Validate(ck, c)
	if v.Valid || v.NBuggy != 0 || v.NPatched != 0 {
		t.Fatalf("validation = %+v", v)
	}
}

func TestValidatorReportsRuntimeError(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassDoubleFree, "kfree")
	crash := `
checker t_crash {
  bugtype "Double-Free"
  source { call "kfree" frees arg 7 }
  sink { call "kfree" arg 0 freed }
}
`
	ck, err := ckdsl.CompileSource(crash)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(50).Validate(ck, c)
	if !v.RuntimeError {
		t.Fatalf("expected runtime error, got %+v", v)
	}
}

func TestGenCheckerOnCapableCommit(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassNPD, "devm_kzalloc")
	pipe := NewPipeline(llm.NewOracle(llm.O3Mini), Options{})
	out := pipe.GenChecker(c)
	if !out.Valid {
		t.Fatalf("synthesis failed: %+v", out.Failed)
	}
	if out.Spec == nil || out.Checker == nil {
		t.Fatal("valid outcome missing artifacts")
	}
	anchored := false
	for _, src := range out.Spec.Sources {
		if src.Callee == "devm_kzalloc" {
			anchored = true
		}
	}
	if !anchored {
		t.Errorf("checker not anchored on the patch API:\n%s", out.Spec.String())
	}
	if out.NBuggy <= out.NPatched {
		t.Errorf("validation counts: buggy %d, patched %d", out.NBuggy, out.NPatched)
	}
	if out.Usage.Calls == 0 || out.Usage.InputTokens == 0 {
		t.Error("no usage accounted")
	}
}

func TestGenCheckerOnIncapableCommitRecordsSymptoms(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := findCommit(t, store, kernel.ClassNPD, "kstrdup") // destiny: incapable
	pipe := NewPipeline(llm.NewOracle(llm.O3Mini), Options{})
	out := pipe.GenChecker(c)
	if out.Valid {
		t.Fatal("incapable commit yielded a valid checker")
	}
	if out.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", out.Iterations)
	}
	if len(out.Failed) != 10 {
		t.Errorf("failed records = %d, want 10", len(out.Failed))
	}
	for _, f := range out.Failed {
		switch f.Symptom {
		case SymptomCompile, SymptomRuntime, SymptomFlagBoth, SymptomMissBoth:
		default:
			t.Errorf("unknown symptom %q", f.Symptom)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	run := func() []bool {
		pipe := NewPipeline(llm.NewOracle(llm.O3Mini), Options{})
		var out []bool
		for _, c := range store.All()[:12] {
			out = append(out, pipe.GenChecker(c).Valid)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("validity differs at commit %d", i)
		}
	}
}

func TestSymptomClassification(t *testing.T) {
	if !SymptomFlagBoth.IsSemantic() || !SymptomMissBoth.IsSemantic() {
		t.Error("semantic symptoms misclassified")
	}
	if SymptomCompile.IsSemantic() || SymptomRuntime.IsSemantic() {
		t.Error("non-semantic symptoms misclassified")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 10 || o.MaxRepairAttempts != 5 || o.TValid != 50 {
		t.Errorf("defaults = %+v", o)
	}
}
