// Package synth implements Algorithm 1 of the paper: the multi-stage
// checker-synthesis pipeline (pattern analysis → plan synthesis →
// implementation → syntax repair → differential validation).
package synth

import (
	"knighter/internal/ckdsl"
	"knighter/internal/llm"
	"knighter/internal/vcs"
)

// Options configures the pipeline (paper defaults: 10 iterations, 5
// repair attempts, T_valid = 50).
type Options struct {
	MaxIterations     int
	MaxRepairAttempts int
	TValid            int
	// SingleStage skips the pattern/plan stages (the Table 3 ablation).
	SingleStage bool
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.MaxRepairAttempts <= 0 {
		o.MaxRepairAttempts = 5
	}
	if o.TValid <= 0 {
		o.TValid = 50
	}
	return o
}

// Symptom classifies one failed synthesis attempt (§5.1 taxonomy).
type Symptom string

// Failure symptoms.
const (
	SymptomCompile  Symptom = "compile-error"
	SymptomRuntime  Symptom = "runtime-error"
	SymptomFlagBoth Symptom = "semantic-flag-both"
	SymptomMissBoth Symptom = "semantic-miss-both"
)

// IsSemantic reports whether the symptom is a semantic failure.
func (s Symptom) IsSemantic() bool {
	return s == SymptomFlagBoth || s == SymptomMissBoth
}

// AttemptRecord is the telemetry of one iteration.
type AttemptRecord struct {
	Iteration      int
	Symptom        Symptom
	RepairAttempts int
}

// Outcome is the result of GenChecker for one commit.
type Outcome struct {
	Commit *vcs.Commit
	// Spec and Checker are set when a valid checker was produced.
	Spec    *ckdsl.Spec
	Checker *ckdsl.Compiled
	// Valid reports whether synthesis succeeded within MaxIterations.
	Valid bool
	// Iterations used (successful one included).
	Iterations int
	// Failed attempt records, in order.
	Failed []AttemptRecord
	// Pattern and Plan of the successful iteration (or the last one).
	Pattern *llm.PatternAnalysis
	Plan    *llm.Plan
	// Usage totals all agent calls for this commit.
	Usage llm.Usage
	// Validation counts from the successful iteration.
	NBuggy, NPatched int
}

// Pipeline drives checker synthesis for commits.
type Pipeline struct {
	Model llm.Model
	Opts  Options
	Val   *Validator
}

// NewPipeline builds a pipeline with the given model and options.
func NewPipeline(model llm.Model, opts Options) *Pipeline {
	return &Pipeline{Model: model, Opts: opts.withDefaults(), Val: NewValidator(opts.withDefaults().TValid)}
}

// GenChecker runs Algorithm 1 for one commit.
func (p *Pipeline) GenChecker(c *vcs.Commit) *Outcome {
	out := &Outcome{Commit: c}
	for iter := 1; iter <= p.Opts.MaxIterations; iter++ {
		out.Iterations = iter

		// Stage 1+2: pattern analysis and plan synthesis. The
		// single-stage ablation skips the explicit stages (the model
		// still reads the patch internally, but without the structured
		// intermediate artifacts its output degrades — handled by the
		// model profile).
		var pa *llm.PatternAnalysis
		var plan *llm.Plan
		if p.Opts.SingleStage {
			var u llm.Usage
			pa, u = p.analyzeSilently(c, iter)
			out.Usage.Add(llm.Usage{InputTokens: u.InputTokens, Calls: 0})
			plan = &llm.Plan{Steps: nil, Accurate: pa.Accurate}
		} else {
			var u llm.Usage
			pa, u = p.Model.AnalyzePattern(c, iter)
			out.Usage.Add(u)
			plan, u = p.Model.SynthesizePlan(c, pa, iter)
			out.Usage.Add(u)
		}
		out.Pattern, out.Plan = pa, plan

		// Stage 3: implementation plus bounded syntax repair.
		text, u := p.Model.ImplementChecker(c, pa, plan, iter)
		out.Usage.Add(u)
		var compiled *ckdsl.Compiled
		var cerr error
		repairs := 0
		for {
			compiled, cerr = ckdsl.CompileSource(text)
			if cerr == nil || repairs >= p.Opts.MaxRepairAttempts {
				break
			}
			repairs++
			text, u = p.Model.RepairChecker(c, iter, repairs, text, cerr.Error())
			out.Usage.Add(u)
		}
		if cerr != nil {
			out.Failed = append(out.Failed, AttemptRecord{Iteration: iter, Symptom: SymptomCompile, RepairAttempts: repairs})
			continue
		}

		// Stage 4: differential validation against the patch.
		v := p.Val.Validate(compiled, c)
		if v.RuntimeError {
			out.Failed = append(out.Failed, AttemptRecord{Iteration: iter, Symptom: SymptomRuntime, RepairAttempts: repairs})
			continue
		}
		if v.Valid {
			out.Valid = true
			out.Spec = compiled.Spec()
			out.Checker = compiled
			out.NBuggy, out.NPatched = v.NBuggy, v.NPatched
			return out
		}
		sym := SymptomMissBoth
		if v.NBuggy > 0 {
			sym = SymptomFlagBoth
		}
		out.Failed = append(out.Failed, AttemptRecord{Iteration: iter, Symptom: sym, RepairAttempts: repairs})
	}
	return out
}

// analyzeSilently performs the internal patch reading for single-stage
// mode without emitting the staged prompts (only the merged prompt cost
// is charged).
func (p *Pipeline) analyzeSilently(c *vcs.Commit, iter int) (*llm.PatternAnalysis, llm.Usage) {
	pa, u := p.Model.AnalyzePattern(c, iter)
	return pa, u
}
