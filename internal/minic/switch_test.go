package minic

import (
	"strings"
	"testing"
)

func TestSwitchDesugarsToIfChain(t *testing.T) {
	src := `
int f(int state)
{
	switch (state) {
	case 0:
		return 10;
	case 1:
		return 11;
	default:
		return -1;
	}
}
`
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ifs, ok := fn.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("top = %T", fn.Body.Stmts[0])
	}
	cond, ok := ifs.Cond.(*BinaryExpr)
	if !ok || cond.Op != EqEq {
		t.Fatalf("cond = %v", FormatExpr(ifs.Cond))
	}
	second, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %T", ifs.Else)
	}
	if _, ok := second.Else.(*Block); !ok {
		t.Fatalf("default arm = %T", second.Else)
	}
	// Round trip through the printer (as an if-chain).
	out := FormatFunc(fn)
	if !strings.Contains(out, "state == 0") || !strings.Contains(out, "else") {
		t.Errorf("printed form:\n%s", out)
	}
	if _, err := ParseFile("rt.c", out); err != nil {
		t.Errorf("printed form does not reparse: %v", err)
	}
}

func TestSwitchTrailingBreaksStripped(t *testing.T) {
	src := `
int f(int state, struct dev *d)
{
	int r = 0;
	switch (state) {
	case 1:
		r = d->a;
		break;
	case 2:
		r = d->b;
		break;
	}
	return r;
}
`
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// No BreakStmt may survive (it would be a CFG error outside loops).
	var found bool
	var visit func(s Stmt)
	visit = func(s Stmt) {
		switch x := s.(type) {
		case *BreakStmt:
			found = true
		case *Block:
			for _, sub := range x.Stmts {
				visit(sub)
			}
		case *IfStmt:
			visit(x.Then)
			if x.Else != nil {
				visit(x.Else)
			}
		}
	}
	for _, s := range fn.Body.Stmts {
		visit(s)
	}
	if found {
		t.Error("trailing break survived desugaring")
	}
}

func TestSwitchRejectsFallthrough(t *testing.T) {
	src := `
int f(int state)
{
	switch (state) {
	case 0:
		log_it();
	case 1:
		return 1;
	}
	return 0;
}
`
	_, err := ParseFile("t.c", src)
	if err == nil || !strings.Contains(err.Error(), "fallthrough") {
		t.Fatalf("err = %v, want fallthrough rejection", err)
	}
}

func TestSwitchCaseAfterDefaultRejected(t *testing.T) {
	src := `
int f(int s)
{
	switch (s) {
	default:
		return 0;
	case 1:
		return 1;
	}
}
`
	if _, err := ParseFile("t.c", src); err == nil {
		t.Fatal("case after default should be rejected")
	}
}

func TestSwitchSymbolicConstants(t *testing.T) {
	src := `
int f(int cmd)
{
	switch (cmd) {
	case CMD_START:
		return start();
	case CMD_STOP:
		return stop();
	default:
		return -EINVAL;
	}
}
`
	if _, err := ParseFile("t.c", src); err != nil {
		t.Fatalf("symbolic case labels: %v", err)
	}
}

func TestSwitchLabelGrouping(t *testing.T) {
	src := `
int f(int cmd)
{
	switch (cmd) {
	case 0:
	case 1:
		return 10;
	default:
		return -1;
	}
}
`
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("grouped labels: %v", err)
	}
	ifs := fn.Body.Stmts[0].(*IfStmt)
	cond, ok := ifs.Cond.(*BinaryExpr)
	if !ok || cond.Op != PipePipe {
		t.Fatalf("grouped cond = %v", FormatExpr(ifs.Cond))
	}
}

func TestSwitchCaseEndingInGotoAllowed(t *testing.T) {
	src := `
int f(int cmd)
{
	switch (cmd) {
	case 0:
		goto out;
	case 1:
		return 1;
	}
	return 2;
out:
	return 0;
}
`
	if _, err := ParseFile("t.c", src); err != nil {
		t.Fatalf("goto-terminated case: %v", err)
	}
}
