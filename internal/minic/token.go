// Package minic implements a lexer, parser, and AST for a small C subset
// ("mini-C") sufficient to express the Linux-kernel idioms analyzed by the
// KNighter reproduction: pointers, structs, fixed-size arrays, goto-based
// error paths, sizeof, cleanup attributes (__free), and the allocator /
// locking / copy_from_user call patterns the paper's ten bug categories
// are built from.
package minic

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keywords get dedicated kinds so the parser can dispatch on
// them without string comparisons.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal (decimal or hex)
	STRING // "..." literal, value holds the unquoted text
	CHAR   // 'c' literal, value holds the unquoted text

	// Keywords.
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwGoto
	KwBreak
	KwContinue
	KwSizeof
	KwSwitch
	KwCase
	KwDefault
	KwStatic
	KwConst
	KwUnsigned
	KwVoid
	KwInt
	KwChar
	KwLong
	KwBool
	KwFree // __free cleanup attribute

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Colon    // :
	Question // ?
	Arrow    // ->
	Dot      // .
	Amp      // &
	AmpAmp   // &&
	Pipe     // |
	PipePipe // ||
	Caret    // ^
	Tilde    // ~
	Bang     // !
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	Shl      // <<
	Shr      // >>
	Assign   // =
	PlusEq   // +=
	MinusEq  // -=
	StarEq   // *=
	SlashEq  // /=
	OrEq     // |=
	AndEq    // &=
	Inc      // ++
	Dec      // --
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", STRING: "string", CHAR: "char",
	KwStruct: "struct", KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwGoto: "goto", KwBreak: "break", KwContinue: "continue",
	KwSizeof: "sizeof", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwStatic: "static", KwConst: "const", KwUnsigned: "unsigned",
	KwVoid: "void", KwInt: "int", KwChar: "char", KwLong: "long", KwBool: "bool",
	KwFree: "__free",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Colon: ":", Question: "?", Arrow: "->", Dot: ".",
	Amp: "&", AmpAmp: "&&", Pipe: "|", PipePipe: "||", Caret: "^", Tilde: "~",
	Bang: "!", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==", NotEq: "!=",
	Shl: "<<", Shr: ">>", Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	SlashEq: "/=", OrEq: "|=", AndEq: "&=", Inc: "++", Dec: "--",
}

// String returns a human-readable name for the kind, used in parse errors.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"struct": KwStruct, "if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "goto": KwGoto, "break": KwBreak, "continue": KwContinue,
	"sizeof": KwSizeof, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"static": KwStatic, "const": KwConst, "unsigned": KwUnsigned,
	"void": KwVoid, "int": KwInt, "char": KwChar, "long": KwLong, "bool": KwBool,
	"__free": KwFree,
}

// typeWords are identifiers treated as primitive type names in addition to
// the keyword types. They cover the kernel typedefs the corpus uses.
var typeWords = map[string]bool{
	"size_t": true, "ssize_t": true, "u8": true, "u16": true, "u32": true,
	"u64": true, "s8": true, "s16": true, "s32": true, "s64": true,
	"gfp_t": true, "loff_t": true, "dma_addr_t": true, "irqreturn_t": true,
	"uintptr_t": true,
}

// IsTypeWord reports whether name is one of the recognized primitive
// typedef names (size_t, u32, ...).
func IsTypeWord(name string) bool { return typeWords[name] }

// Pos is a source position (1-based line and column) within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position in the conventional file:line:col form.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Val  string // text for IDENT/INT/STRING/CHAR
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Val
	case STRING:
		return fmt.Sprintf("%q", t.Val)
	case CHAR:
		return "'" + t.Val + "'"
	default:
		return t.Kind.String()
	}
}
