package minic

// Node is the common interface of all AST nodes.
type Node interface {
	NodePos() Pos
}

// Type is a (simplified) mini-C type: a base name, a pointer depth, and an
// optional fixed array length. Examples:
//
//	int            -> {Base: "int"}
//	struct foo *   -> {Base: "struct foo", Stars: 1}
//	char buf[64]   -> {Base: "char", ArrayLen: 64}
type Type struct {
	Base     string // "int", "char", "void", "size_t", "struct foo", ...
	Stars    int    // pointer depth
	ArrayLen int    // >0 for fixed arrays, 0 otherwise
	Unsigned bool
}

// IsPointer reports whether the type has pointer depth >= 1.
func (t Type) IsPointer() bool { return t.Stars > 0 }

// IsArray reports whether the type is a fixed-size array.
func (t Type) IsArray() bool { return t.ArrayLen > 0 }

// String renders the type in C syntax (arrays render only the element
// part; the declarator carries the [N]).
func (t Type) String() string {
	s := t.Base
	if t.Unsigned {
		s = "unsigned " + s
	}
	for i := 0; i < t.Stars; i++ {
		s += " *"
	}
	return s
}

// File is a parsed translation unit.
type File struct {
	Name    string
	Structs []*StructDecl
	Globals []*DeclStmt
	Funcs   []*FuncDecl
}

// LookupFunc returns the function with the given name, or nil.
func (f *File) LookupFunc(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// LookupStruct returns the struct declaration with the given name, or nil.
func (f *File) LookupStruct(name string) *StructDecl {
	for _, s := range f.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StructDecl is a struct definition.
type StructDecl struct {
	Name   string
	Fields []*Field
	Pos    Pos
}

// NodePos implements Node.
func (d *StructDecl) NodePos() Pos { return d.Pos }

// Field is a single struct member.
type Field struct {
	Type Type
	Name string
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Static bool
	Ret    Type
	Name   string
	Params []*Param
	Body   *Block
	Pos    Pos
}

// NodePos implements Node.
func (d *FuncDecl) NodePos() Pos { return d.Pos }

// Param is a formal function parameter.
type Param struct {
	Type Type
	Name string
	Pos  Pos
}

// --- Statements ---

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a { ... } statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares a single local variable, optionally initialized and
// optionally carrying a kernel-style __free(fn) cleanup attribute.
type DeclStmt struct {
	Type    Type
	Name    string
	Init    Expr   // may be nil
	Cleanup string // "" or the __free() cleanup function name
	Pos     Pos
}

// ExprStmt wraps an expression evaluated for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt, may be nil
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from the function; X may be nil.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// GotoStmt transfers control to a label.
type GotoStmt struct {
	Label string
	Pos   Pos
}

// LabeledStmt attaches a label to a statement (the statement may be nil
// when the label directly precedes '}').
type LabeledStmt struct {
	Label string
	Stmt  Stmt // may be nil
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// NodePos implements Node.
func (s *Block) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *DeclStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *ExprStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *IfStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *WhileStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *ForStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *ReturnStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *GotoStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *LabeledStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *BreakStmt) NodePos() Pos { return s.Pos }

// NodePos implements Node.
func (s *ContinueStmt) NodePos() Pos { return s.Pos }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*GotoStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// --- Expressions ---

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable or symbolic-constant reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal; Val holds the parsed value and Text the
// original spelling (to preserve hex forms when printing).
type IntLit struct {
	Val  int64
	Text string
	Pos  Pos
}

// StrLit is a string literal (unquoted text).
type StrLit struct {
	Val string
	Pos Pos
}

// CharLit is a character literal (unquoted text).
type CharLit struct {
	Val string
	Pos Pos
}

// CallExpr is a direct call fun(args...).
type CallExpr struct {
	Fun  string
	Args []Expr
	Pos  Pos
}

// UnaryExpr is a prefix operation: ! - ~ * & ++ --.
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op  Kind // Inc or Dec
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind
	X, Y Expr
	Pos  Pos
}

// AssignExpr is an assignment (possibly compound: +=, -=, ...).
type AssignExpr struct {
	Op  Kind // Assign, PlusEq, ...
	LHS Expr
	RHS Expr
	Pos Pos
}

// IndexExpr is x[i].
type IndexExpr struct {
	X   Expr
	Idx Expr
	Pos Pos
}

// MemberExpr is x.name or x->name.
type MemberExpr struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	X   Expr
	Pos Pos
}

// SizeofExpr is sizeof(type) or sizeof(expr). Exactly one of Type/X is set.
type SizeofExpr struct {
	Type *Type // sizeof(type) form
	X    Expr  // sizeof expr form
	Pos  Pos
}

// CastExpr is (type)expr.
type CastExpr struct {
	Type Type
	X    Expr
	Pos  Pos
}

// CondExpr is the ternary cond ? then : else.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// NodePos implements Node.
func (e *Ident) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *IntLit) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *StrLit) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *CharLit) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *CallExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *UnaryExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *PostfixExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *BinaryExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *AssignExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *IndexExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *MemberExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *ParenExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *SizeofExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *CastExpr) NodePos() Pos { return e.Pos }

// NodePos implements Node.
func (e *CondExpr) NodePos() Pos { return e.Pos }

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*StrLit) exprNode()      {}
func (*CharLit) exprNode()     {}
func (*CallExpr) exprNode()    {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*BinaryExpr) exprNode()  {}
func (*AssignExpr) exprNode()  {}
func (*IndexExpr) exprNode()   {}
func (*MemberExpr) exprNode()  {}
func (*ParenExpr) exprNode()   {}
func (*SizeofExpr) exprNode()  {}
func (*CastExpr) exprNode()    {}
func (*CondExpr) exprNode()    {}

// Unparen strips any number of ParenExpr wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// UnwrapCalls strips ParenExpr wrappers and single-argument calls to the
// named wrapper functions (e.g. unlikely/likely). It is the AST-side
// analog of a checker "seeing through" kernel annotation macros.
func UnwrapCalls(e Expr, wrappers ...string) Expr {
	for {
		e = Unparen(e)
		c, ok := e.(*CallExpr)
		if !ok || len(c.Args) != 1 {
			return e
		}
		found := false
		for _, w := range wrappers {
			if c.Fun == w {
				found = true
				break
			}
		}
		if !found {
			return e
		}
		e = c.Args[0]
	}
}
