package minic

import (
	"fmt"
	"strings"
)

// FormatFile renders the file back to mini-C source. The output is
// canonical (tabs, one statement per line) so that diffing two versions of
// a function produces clean unified diffs.
func FormatFile(f *File) string {
	var sb strings.Builder
	for i, s := range f.Structs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printStruct(&sb, s)
	}
	if len(f.Structs) > 0 && (len(f.Globals) > 0 || len(f.Funcs) > 0) {
		sb.WriteByte('\n')
	}
	for _, g := range f.Globals {
		printDeclLine(&sb, g, 0)
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		sb.WriteByte('\n')
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(FormatFunc(fn))
	}
	return sb.String()
}

// FormatFunc renders a single function definition.
func FormatFunc(fn *FuncDecl) string {
	var sb strings.Builder
	if fn.Static {
		sb.WriteString("static ")
	}
	sb.WriteString(typeDecl(fn.Ret, fn.Name))
	sb.WriteByte('(')
	if len(fn.Params) == 0 {
		sb.WriteString("void")
	}
	for i, p := range fn.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(typeDecl(p.Type, p.Name))
	}
	sb.WriteString(")\n")
	printBlock(&sb, fn.Body, 0)
	return sb.String()
}

// FormatStmt renders a single statement at indent 0.
func FormatStmt(s Stmt) string {
	var sb strings.Builder
	printStmt(&sb, s, 0)
	return strings.TrimRight(sb.String(), "\n")
}

// FormatExpr renders a single expression.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printStruct(sb *strings.Builder, s *StructDecl) {
	fmt.Fprintf(sb, "struct %s {\n", s.Name)
	for _, f := range s.Fields {
		sb.WriteByte('\t')
		sb.WriteString(typeDecl(f.Type, f.Name))
		if f.Type.IsArray() {
			fmt.Fprintf(sb, "[%d]", f.Type.ArrayLen)
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("};\n")
}

// typeDecl renders "type name" with the pointer stars attached to the
// name, C-style.
func typeDecl(t Type, name string) string {
	base := t.Base
	if t.Unsigned && base != "int" {
		base = "unsigned " + base
	} else if t.Unsigned {
		base = "unsigned int"
	}
	stars := strings.Repeat("*", t.Stars)
	if name == "" {
		if stars != "" {
			return base + " " + stars
		}
		return base
	}
	return base + " " + stars + name
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteByte('\t')
	}
}

func printBlock(sb *strings.Builder, b *Block, depth int) {
	indent(sb, depth)
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		printStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}\n")
}

func printDeclLine(sb *strings.Builder, d *DeclStmt, depth int) {
	indent(sb, depth)
	sb.WriteString(typeDecl(d.Type, d.Name))
	if d.Type.IsArray() {
		fmt.Fprintf(sb, "[%d]", d.Type.ArrayLen)
	}
	if d.Cleanup != "" {
		fmt.Fprintf(sb, " __free(%s)", d.Cleanup)
	}
	if d.Init != nil {
		sb.WriteString(" = ")
		printExpr(sb, d.Init)
	}
	sb.WriteString(";\n")
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Block:
		if len(st.Stmts) == 0 {
			indent(sb, depth)
			sb.WriteString(";\n")
			return
		}
		printBlock(sb, st, depth)
	case *DeclStmt:
		printDeclLine(sb, st, depth)
	case *ExprStmt:
		indent(sb, depth)
		printExpr(sb, st.X)
		sb.WriteString(";\n")
	case *IfStmt:
		indent(sb, depth)
		sb.WriteString("if (")
		printExpr(sb, st.Cond)
		sb.WriteString(")\n")
		printSubStmt(sb, st.Then, depth)
		if st.Else != nil {
			indent(sb, depth)
			sb.WriteString("else\n")
			printSubStmt(sb, st.Else, depth)
		}
	case *WhileStmt:
		indent(sb, depth)
		sb.WriteString("while (")
		printExpr(sb, st.Cond)
		sb.WriteString(")\n")
		printSubStmt(sb, st.Body, depth)
	case *ForStmt:
		indent(sb, depth)
		sb.WriteString("for (")
		switch init := st.Init.(type) {
		case nil:
			sb.WriteString(";")
		case *DeclStmt:
			sb.WriteString(typeDecl(init.Type, init.Name))
			if init.Init != nil {
				sb.WriteString(" = ")
				printExpr(sb, init.Init)
			}
			sb.WriteString(";")
		case *ExprStmt:
			printExpr(sb, init.X)
			sb.WriteString(";")
		}
		sb.WriteString(" ")
		if st.Cond != nil {
			printExpr(sb, st.Cond)
		}
		sb.WriteString("; ")
		if st.Post != nil {
			printExpr(sb, st.Post)
		}
		sb.WriteString(")\n")
		printSubStmt(sb, st.Body, depth)
	case *ReturnStmt:
		indent(sb, depth)
		sb.WriteString("return")
		if st.X != nil {
			sb.WriteByte(' ')
			printExpr(sb, st.X)
		}
		sb.WriteString(";\n")
	case *GotoStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "goto %s;\n", st.Label)
	case *LabeledStmt:
		// Labels outdent one level, kernel style.
		if depth > 0 {
			indent(sb, depth-1)
		}
		fmt.Fprintf(sb, "%s:\n", st.Label)
		if st.Stmt != nil {
			printStmt(sb, st.Stmt, depth)
		}
	case *BreakStmt:
		indent(sb, depth)
		sb.WriteString("break;\n")
	case *ContinueStmt:
		indent(sb, depth)
		sb.WriteString("continue;\n")
	default:
		panic(fmt.Sprintf("minic: unknown statement %T", s))
	}
}

// printSubStmt prints the body of an if/while/for: blocks inline, other
// statements indented one level.
func printSubStmt(sb *strings.Builder, s Stmt, depth int) {
	if b, ok := s.(*Block); ok {
		printBlock(sb, b, depth)
		return
	}
	printStmt(sb, s, depth+1)
}

var opText = map[Kind]string{
	AmpAmp: "&&", PipePipe: "||", Pipe: "|", Caret: "^", Amp: "&",
	EqEq: "==", NotEq: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	Shl: "<<", Shr: ">>", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Bang: "!", Tilde: "~", Inc: "++", Dec: "--",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	OrEq: "|=", AndEq: "&=",
}

func printExpr(sb *strings.Builder, e Expr) {
	switch ex := e.(type) {
	case *Ident:
		sb.WriteString(ex.Name)
	case *IntLit:
		if ex.Text != "" {
			sb.WriteString(ex.Text)
		} else {
			fmt.Fprintf(sb, "%d", ex.Val)
		}
	case *StrLit:
		fmt.Fprintf(sb, "\"%s\"", ex.Val)
	case *CharLit:
		fmt.Fprintf(sb, "'%s'", ex.Val)
	case *CallExpr:
		sb.WriteString(ex.Fun)
		sb.WriteByte('(')
		for i, a := range ex.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *UnaryExpr:
		sb.WriteString(opText[ex.Op])
		printOperand(sb, ex.X)
	case *PostfixExpr:
		printOperand(sb, ex.X)
		sb.WriteString(opText[ex.Op])
	case *BinaryExpr:
		printOperand(sb, ex.X)
		sb.WriteByte(' ')
		sb.WriteString(opText[ex.Op])
		sb.WriteByte(' ')
		printOperand(sb, ex.Y)
	case *AssignExpr:
		printExpr(sb, ex.LHS)
		sb.WriteByte(' ')
		sb.WriteString(opText[ex.Op])
		sb.WriteByte(' ')
		printExpr(sb, ex.RHS)
	case *IndexExpr:
		printOperand(sb, ex.X)
		sb.WriteByte('[')
		printExpr(sb, ex.Idx)
		sb.WriteByte(']')
	case *MemberExpr:
		printOperand(sb, ex.X)
		if ex.Arrow {
			sb.WriteString("->")
		} else {
			sb.WriteByte('.')
		}
		sb.WriteString(ex.Name)
	case *ParenExpr:
		sb.WriteByte('(')
		printExpr(sb, ex.X)
		sb.WriteByte(')')
	case *SizeofExpr:
		sb.WriteString("sizeof(")
		if ex.Type != nil {
			sb.WriteString(typeDecl(*ex.Type, ""))
		} else {
			printExpr(sb, ex.X)
		}
		sb.WriteByte(')')
	case *CastExpr:
		sb.WriteByte('(')
		sb.WriteString(typeDecl(ex.Type, ""))
		sb.WriteByte(')')
		printOperand(sb, ex.X)
	case *CondExpr:
		printOperand(sb, ex.Cond)
		sb.WriteString(" ? ")
		printExpr(sb, ex.Then)
		sb.WriteString(" : ")
		printExpr(sb, ex.Else)
	default:
		panic(fmt.Sprintf("minic: unknown expression %T", e))
	}
}

// printOperand wraps compound sub-expressions in parentheses so the
// printed form re-parses with the same structure regardless of the
// original precedence context.
func printOperand(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Ident, *IntLit, *StrLit, *CharLit, *CallExpr, *ParenExpr,
		*SizeofExpr, *IndexExpr, *MemberExpr:
		printExpr(sb, e)
	default:
		sb.WriteByte('(')
		printExpr(sb, e)
		sb.WriteByte(')')
	}
}
