package minic

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// stripPos recursively clears all Pos fields so that structural equality
// between an AST and its print→reparse round-trip can be checked.
func stripPos(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if !v.IsNil() {
			stripPos(v.Elem())
		}
	case reflect.Interface:
		if !v.IsNil() {
			stripPos(v.Elem())
		}
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(Pos{}) {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		for i := 0; i < v.NumField(); i++ {
			stripPos(v.Field(i))
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			stripPos(v.Index(i))
		}
	}
}

func normalized(f *File) *File {
	stripPos(reflect.ValueOf(f))
	return f
}

func roundTrip(t *testing.T, src string) {
	t.Helper()
	f1, err := ParseFile("rt.c", src)
	if err != nil {
		t.Fatalf("parse original: %v\n%s", err, src)
	}
	out := FormatFile(f1)
	f2, err := ParseFile("rt.c", out)
	if err != nil {
		t.Fatalf("parse printed: %v\n--- printed ---\n%s", err, out)
	}
	// Printing the reparsed AST must be a fixed point.
	out2 := FormatFile(f2)
	if out != out2 {
		t.Fatalf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out, out2)
	}
}

func TestRoundTripKernelish(t *testing.T) { roundTrip(t, kernelishSrc) }

func TestRoundTripConstructs(t *testing.T) {
	srcs := []string{
		"int f(void)\n{\n\treturn (a + b) * c;\n}\n",
		"int f(int x)\n{\n\tif (x == 0)\n\t\treturn -1;\n\telse if (x > 10)\n\t\treturn 1;\n\treturn 0;\n}\n",
		"void f(void)\n{\n\tchar buf[64];\n\tmemset(buf, 0, sizeof(buf));\n\tbuf[0] = 'x';\n}\n",
		"void f(struct dev *d)\n{\n\td->priv->count += 1;\n\t(*d).x = 0;\n}\n",
		"int f(int n)\n{\n\tint s = 0;\n\tfor (int i = 0; i < n; i++)\n\t\ts += i;\n\treturn s;\n}\n",
		"int f(size_t n)\n{\n\treturn n > 0 ? 1 : 0;\n}\n",
		"void f(void)\n{\n\tu32 v = (u32)get();\n\tput(v << 8 | 3);\n}\n",
		"int f(int a)\n{\n\twhile (a > 0) {\n\t\ta--;\n\t\tif (a == 3)\n\t\t\tbreak;\n\t\tcontinue;\n\t}\n\treturn a;\n}\n",
		"void f(struct p *q)\n{\n\tstruct p *alias __free(kfree) = q;\n\tuse(alias);\n}\n",
	}
	for _, src := range srcs {
		roundTrip(t, src)
	}
}

// --- randomized round-trip property test ---

type astGen struct{ r *rand.Rand }

func (g *astGen) ident() string {
	names := []string{"a", "b", "ptr", "dev", "buf", "len", "ret", "idx", "tmp"}
	return names[g.r.Intn(len(names))]
}

func (g *astGen) expr(depth int) Expr {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return &Ident{Name: g.ident()}
		case 1:
			return &IntLit{Val: int64(g.r.Intn(100))}
		default:
			return &StrLit{Val: "msg"}
		}
	}
	switch g.r.Intn(8) {
	case 0:
		ops := []Kind{Plus, Minus, Star, Slash, AmpAmp, PipePipe, EqEq, NotEq, Lt, Shl, Amp, Pipe}
		return &BinaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.expr(depth - 1), Y: g.expr(depth - 1)}
	case 1:
		ops := []Kind{Bang, Minus, Tilde, Star, Amp}
		return &UnaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.expr(depth - 1)}
	case 2:
		n := g.r.Intn(3)
		c := &CallExpr{Fun: "fn_" + g.ident()}
		for i := 0; i < n; i++ {
			c.Args = append(c.Args, g.expr(depth-1))
		}
		return c
	case 3:
		return &MemberExpr{X: &Ident{Name: g.ident()}, Name: g.ident(), Arrow: g.r.Intn(2) == 0}
	case 4:
		return &IndexExpr{X: &Ident{Name: g.ident()}, Idx: g.expr(depth - 1)}
	case 5:
		return &CondExpr{Cond: g.expr(depth - 1), Then: g.expr(depth - 1), Else: g.expr(depth - 1)}
	case 6:
		return &SizeofExpr{X: &Ident{Name: g.ident()}}
	default:
		return &Ident{Name: g.ident()}
	}
}

func (g *astGen) stmt(depth int) Stmt {
	if depth <= 0 {
		return &ExprStmt{X: &AssignExpr{Op: Assign, LHS: &Ident{Name: g.ident()}, RHS: g.expr(1)}}
	}
	switch g.r.Intn(6) {
	case 0:
		return &IfStmt{Cond: g.expr(depth - 1), Then: g.block(depth - 1), Else: g.block(depth - 1)}
	case 1:
		return &ReturnStmt{X: g.expr(depth - 1)}
	case 2:
		return &DeclStmt{Type: Type{Base: "int"}, Name: "v" + g.ident(), Init: g.expr(depth - 1)}
	case 3:
		return &WhileStmt{Cond: g.expr(depth - 1), Body: g.block(depth - 1)}
	case 4:
		return &ExprStmt{X: &CallExpr{Fun: "do_" + g.ident(), Args: []Expr{g.expr(depth - 1)}}}
	default:
		return &ExprStmt{X: &AssignExpr{Op: Assign, LHS: &Ident{Name: g.ident()}, RHS: g.expr(depth - 1)}}
	}
}

func (g *astGen) block(depth int) *Block {
	b := &Block{}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt(depth))
	}
	return b
}

// TestRoundTripRandomASTs is a property test: for randomly generated ASTs,
// print → parse → print must be a fixed point and the reparsed AST must be
// structurally identical (modulo positions and literal spellings).
func TestRoundTripRandomASTs(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := &astGen{r: rand.New(rand.NewSource(seed))}
		fn := &FuncDecl{
			Ret:    Type{Base: "int"},
			Name:   "synthetic",
			Params: []*Param{{Type: Type{Base: "int"}, Name: "n"}},
			Body:   g.block(3),
		}
		src := FormatFunc(fn)
		f2, err := ParseFile("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, src)
		}
		src2 := FormatFile(f2)
		if !strings.HasPrefix(src2, src[:len(src)-1]) && src != src2 {
			t.Fatalf("seed %d: print not stable\n--- 1 ---\n%s\n--- 2 ---\n%s", seed, src, src2)
		}
		f3, err := ParseFile("gen.c", src2)
		if err != nil {
			t.Fatalf("seed %d: second reparse failed: %v", seed, err)
		}
		if !reflect.DeepEqual(normalized(f2), normalized(f3)) {
			t.Fatalf("seed %d: ASTs differ after round trip\n%s", seed, src)
		}
	}
}

func TestFormatExprParens(t *testing.T) {
	// Structure must survive printing: (a+b)*c stays distinct from a+b*c.
	e1, _ := ParseExpr("(a + b) * c")
	e2, _ := ParseExpr("a + b * c")
	s1, s2 := FormatExpr(e1), FormatExpr(e2)
	r1, err := ParseExpr(s1)
	if err != nil {
		t.Fatalf("reparse %q: %v", s1, err)
	}
	r2, err := ParseExpr(s2)
	if err != nil {
		t.Fatalf("reparse %q: %v", s2, err)
	}
	top1 := r1.(*BinaryExpr)
	top2 := r2.(*BinaryExpr)
	if top1.Op != Star {
		t.Errorf("e1 top op = %v, want *", top1.Op)
	}
	if top2.Op != Plus {
		t.Errorf("e2 top op = %v, want +", top2.Op)
	}
}
