package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error at a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// ParseFile lexes and parses a translation unit.
func ParseFile(name, src string) (*File, error) {
	toks, err := Lex(name, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile(name)
}

// ParseFunc parses a source snippet expected to contain exactly one
// function and returns it. Struct declarations preceding the function are
// allowed and ignored.
func ParseFunc(name, src string) (*FuncDecl, error) {
	f, err := ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	if len(f.Funcs) != 1 {
		return nil, fmt.Errorf("minic: expected exactly one function in %s, got %d", name, len(f.Funcs))
	}
	return f.Funcs[0], nil
}

// ParseExpr parses a standalone expression (used by tests and by the
// checker DSL for pattern snippets).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex("<expr>", src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errorf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(ahead int) Kind {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %s, found %s", k, p.cur())
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool {
	switch p.cur().Kind {
	case KwStruct, KwConst, KwUnsigned, KwVoid, KwInt, KwChar, KwLong, KwBool:
		return true
	case IDENT:
		return IsTypeWord(p.cur().Val)
	}
	return false
}

// parseType parses const/unsigned qualifiers, a base type, and trailing
// '*' pointer markers.
func (p *Parser) parseType() (Type, error) {
	var t Type
	for p.accept(KwConst) {
	}
	if p.accept(KwUnsigned) {
		t.Unsigned = true
		// "unsigned" alone means unsigned int.
		t.Base = "int"
	}
	switch p.cur().Kind {
	case KwStruct:
		p.next()
		id, err := p.expect(IDENT)
		if err != nil {
			return t, err
		}
		t.Base = "struct " + id.Val
	case KwVoid, KwInt, KwChar, KwBool:
		t.Base = p.next().Val
	case KwLong:
		p.next()
		t.Base = "long"
		// "long long" / "long int"
		if p.at(KwLong) {
			p.next()
			t.Base = "long long"
		}
		p.accept(KwInt)
	case IDENT:
		if IsTypeWord(p.cur().Val) {
			t.Base = p.next().Val
		} else if t.Base == "" {
			return t, p.errorf("expected type, found %s", p.cur())
		}
	default:
		if t.Base == "" {
			return t, p.errorf("expected type, found %s", p.cur())
		}
	}
	for p.accept(KwConst) {
	}
	for p.accept(Star) {
		t.Stars++
		for p.accept(KwConst) {
		}
	}
	return t, nil
}

func (p *Parser) parseFile(name string) (*File, error) {
	f := &File{Name: name}
	for !p.at(EOF) {
		isStatic := p.accept(KwStatic)
		if p.at(KwStruct) && p.peekKind(2) == LBrace {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		item, err := p.parseTopLevel(isStatic)
		if err != nil {
			return nil, err
		}
		switch it := item.(type) {
		case *FuncDecl:
			f.Funcs = append(f.Funcs, it)
		case *DeclStmt:
			f.Globals = append(f.Globals, it)
		}
	}
	return f, nil
}

func (p *Parser) parseStructDecl() (*StructDecl, error) {
	pos := p.cur().Pos
	if _, err := p.expect(KwStruct); err != nil {
		return nil, err
	}
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: id.Val, Pos: pos}
	for !p.at(RBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(LBracket) {
			n, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			v, _ := strconv.ParseInt(strings.TrimRight(n.Val, "uUlL"), 0, 64)
			ft.ArrayLen = int(v)
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, &Field{Type: ft, Name: fn.Val, Pos: fn.Pos})
	}
	p.next() // }
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseTopLevel parses either a function definition or a global variable
// declaration (after any leading 'static' was consumed by the caller).
func (p *Parser) parseTopLevel(static bool) (Node, error) {
	pos := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.at(LParen) {
		return p.parseFuncRest(static, t, id, pos)
	}
	// Global variable declaration.
	d := &DeclStmt{Type: t, Name: id.Val, Pos: pos}
	if p.accept(LBracket) {
		n, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		v, _ := strconv.ParseInt(strings.TrimRight(n.Val, "uUlL"), 0, 64)
		d.Type.ArrayLen = int(v)
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(Assign) {
		init, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFuncRest(static bool, ret Type, id Token, pos Pos) (*FuncDecl, error) {
	fd := &FuncDecl{Static: static, Ret: ret, Name: id.Val, Pos: pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.at(KwVoid) && p.peekKind(1) == RParen {
		p.next()
	}
	for !p.at(RParen) {
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(LBracket) {
			// Array parameter decays to pointer.
			if p.at(INT) {
				p.next()
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			pt.Stars++
		}
		fd.Params = append(fd.Params, &Param{Type: pt, Name: pn.Val, Pos: pn.Pos})
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	pos := p.cur().Pos
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, p.errorf("unexpected EOF inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		rs := &ReturnStmt{Pos: pos}
		if !p.at(Semi) {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case KwGoto:
		p.next()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &GotoStmt{Label: id.Val, Pos: pos}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case KwSwitch:
		return p.parseSwitch()
	case Semi:
		p.next()
		return &Block{Pos: pos}, nil
	case IDENT:
		if p.peekKind(1) == Colon {
			label := p.next().Val
			p.next() // :
			if p.at(RBrace) {
				return &LabeledStmt{Label: label, Pos: pos}, nil
			}
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &LabeledStmt{Label: label, Stmt: inner, Pos: pos}, nil
		}
	}
	if p.atTypeStart() && !p.atCastOrSizeofContext() {
		return p.parseDecl()
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Pos: pos}, nil
}

// atCastOrSizeofContext distinguishes a declaration "struct x *p;" from an
// expression statement beginning with a cast or sizeof (which cannot occur
// at statement start in practice). It exists to keep the decl/expr
// dispatch conservative.
func (p *Parser) atCastOrSizeofContext() bool { return false }

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.accept(KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: pos}
	if !p.at(Semi) {
		if p.atTypeStart() {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			fs.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{X: x, Pos: x.NodePos()}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// parseSwitch parses a switch statement and desugars it into an
// if/else-if chain on equality comparisons. Each case body must end in
// break or return (C fallthrough is not supported — the desugaring would
// silently change semantics, so the parser rejects it). The scrutinee is
// bound once via a synthetic comparison against each case label.
func (p *Parser) parseSwitch() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	scrutinee, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	type arm struct {
		labels    []Expr // case labels sharing this body; empty for default
		isDefault bool
		body      []Stmt
		pos       Pos
	}
	// endsControl reports whether a non-empty body transfers control
	// (break out of the switch, return, or goto) — the condition under
	// which a following case is not a fallthrough.
	endsControl := func(body []Stmt) bool {
		if len(body) == 0 {
			return false
		}
		switch body[len(body)-1].(type) {
		case *BreakStmt, *ReturnStmt, *GotoStmt:
			return true
		}
		return false
	}
	var arms []*arm
	var cur *arm
	newLabel := func(labelPos Pos) error {
		if cur != nil && len(cur.body) > 0 && !endsControl(cur.body) {
			return &ParseError{Pos: labelPos, Msg: "switch fallthrough is not supported; end the previous case with break or return"}
		}
		return nil
	}
	for !p.at(RBrace) {
		switch p.cur().Kind {
		case KwCase:
			casePos := p.next().Pos
			label, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			if err := newLabel(casePos); err != nil {
				return nil, err
			}
			if cur != nil && cur.isDefault {
				return nil, &ParseError{Pos: casePos, Msg: "case after default"}
			}
			if cur != nil && len(cur.body) == 0 && !cur.isDefault {
				// "case A: case B: body" — labels group onto one arm.
				cur.labels = append(cur.labels, label)
				continue
			}
			cur = &arm{labels: []Expr{label}, pos: casePos}
			arms = append(arms, cur)
		case KwDefault:
			defPos := p.next().Pos
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			if err := newLabel(defPos); err != nil {
				return nil, err
			}
			cur = &arm{isDefault: true, pos: defPos}
			arms = append(arms, cur)
		case EOF:
			return nil, p.errorf("unexpected EOF inside switch")
		default:
			if cur == nil {
				return nil, p.errorf("statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.body = append(cur.body, s)
		}
	}
	p.next() // }

	// Desugar: drop trailing breaks (the if/else chain has no
	// fallthrough) and fold into a right-nested conditional.
	strip := func(body []Stmt) []Stmt {
		if n := len(body); n > 0 {
			if _, ok := body[n-1].(*BreakStmt); ok {
				return body[:n-1]
			}
		}
		return body
	}
	var out Stmt
	for i := len(arms) - 1; i >= 0; i-- {
		a := arms[i]
		blk := &Block{Stmts: strip(a.body), Pos: a.pos}
		if a.isDefault {
			out = blk
			continue
		}
		var cond Expr
		for _, l := range a.labels {
			eq := &BinaryExpr{Op: EqEq, X: scrutinee, Y: l, Pos: a.pos}
			if cond == nil {
				cond = eq
			} else {
				cond = &BinaryExpr{Op: PipePipe, X: cond, Y: eq, Pos: a.pos}
			}
		}
		out = &IfStmt{Cond: cond, Then: blk, Else: out, Pos: a.pos}
	}
	if out == nil {
		out = &Block{Pos: pos}
	}
	return out, nil
}

// parseDecl parses a local declaration statement (consuming the ';').
func (p *Parser) parseDecl() (Stmt, error) {
	pos := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Type: t, Name: id.Val, Pos: pos}
	if p.accept(LBracket) {
		n, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		v, perr := strconv.ParseInt(strings.TrimRight(n.Val, "uUlL"), 0, 64)
		if perr != nil {
			return nil, p.errorf("bad array length %q", n.Val)
		}
		d.Type.ArrayLen = int(v)
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(KwFree) {
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		fn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d.Cleanup = fn.Val
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
	}
	if p.accept(Assign) {
		init, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return d, nil
}

// --- Expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[Kind]bool{
	Assign: true, PlusEq: true, MinusEq: true, StarEq: true,
	SlashEq: true, OrEq: true, AndEq: true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Kind] {
		op := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs, Pos: lhs.NodePos()}, nil
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	cond, err := p.parseBinaryExpr(1)
	if err != nil {
		return nil, err
	}
	if p.accept(Question) {
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		els, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: cond, Then: then, Else: els, Pos: cond.NodePos()}, nil
	}
	return cond, nil
}

// binary operator precedence; higher binds tighter.
func precOf(k Kind) int {
	switch k {
	case PipePipe:
		return 1
	case AmpAmp:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec := precOf(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, Pos: lhs.NodePos()}
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case Bang, Tilde, Minus, Plus, Star, Amp:
		op := p.next().Kind
		if op == Plus { // unary plus is a no-op
			return p.parseUnaryExpr()
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Pos: pos}, nil
	case Inc, Dec:
		op := p.next().Kind
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Pos: pos}, nil
	case KwSizeof:
		p.next()
		if p.at(LParen) && p.typeFollowsParen() {
			p.next() // (
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &SizeofExpr{Type: &t, Pos: pos}, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		// Canonicalize sizeof(expr): the parentheses belong to the sizeof
		// form, not to the operand, so strip any ParenExpr wrapper.
		return &SizeofExpr{X: Unparen(x), Pos: pos}, nil
	case LParen:
		if p.typeFollowsParen() {
			p.next() // (
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: t, X: x, Pos: pos}, nil
		}
	}
	return p.parsePostfixExpr()
}

// typeFollowsParen reports whether the token after the current '(' begins
// a type (cast or sizeof(type) form).
func (p *Parser) typeFollowsParen() bool {
	if !p.at(LParen) {
		return false
	}
	switch p.peekKind(1) {
	case KwStruct, KwConst, KwUnsigned, KwVoid, KwInt, KwChar, KwLong, KwBool:
		return true
	case IDENT:
		return IsTypeWord(p.toks[p.pos+1].Val)
	}
	return false
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx, Pos: pos}
		case Dot:
			p.next()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Name: id.Val, Pos: pos}
		case Arrow:
			p.next()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Name: id.Val, Arrow: true, Pos: pos}
		case Inc, Dec:
			op := p.next().Kind
			x = &PostfixExpr{Op: op, X: x, Pos: pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case IDENT:
		id := p.next()
		if p.at(LParen) {
			p.next()
			call := &CallExpr{Fun: id.Val, Pos: pos}
			for !p.at(RParen) {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: id.Val, Pos: pos}, nil
	case INT:
		t := p.next()
		v, err := strconv.ParseInt(strings.TrimRight(t.Val, "uUlL"), 0, 64)
		if err != nil {
			return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("bad integer literal %q", t.Val)}
		}
		return &IntLit{Val: v, Text: t.Val, Pos: pos}, nil
	case STRING:
		t := p.next()
		return &StrLit{Val: t.Val, Pos: pos}, nil
	case CHAR:
		t := p.next()
		return &CharLit{Val: t.Val, Pos: pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &ParenExpr{X: x, Pos: pos}, nil
	}
	return nil, p.errorf("unexpected %s in expression", p.cur())
}
