package minic

import "testing"

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("t.c", "int x = 42;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []Kind{KwInt, IDENT, Assign, INT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"->": Arrow, "&&": AmpAmp, "||": PipePipe, "==": EqEq, "!=": NotEq,
		"<=": Le, ">=": Ge, "<<": Shl, ">>": Shr, "+=": PlusEq, "-=": MinusEq,
		"++": Inc, "--": Dec, "*": Star, "&": Amp, "!": Bang, "~": Tilde,
		"?": Question, ":": Colon, "%": Percent, "^": Caret,
	}
	for src, want := range cases {
		toks, err := Lex("t.c", src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if toks[0].Kind != want {
			t.Errorf("Lex(%q) = %v, want %v", src, toks[0].Kind, want)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("t.c", "struct structx __free sizeof sizeofx")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []Kind{KwStruct, IDENT, KwFree, KwSizeof, IDENT, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `int a; // line comment
/* block
   comment */ int b;
#include <linux/module.h>
int c;`
	toks, err := Lex("t.c", src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var idents []string
	for _, tok := range toks {
		if tok.Kind == IDENT {
			idents = append(idents, tok.Val)
		}
	}
	if len(idents) != 3 || idents[0] != "a" || idents[1] != "b" || idents[2] != "c" {
		t.Errorf("idents = %v, want [a b c]", idents)
	}
}

func TestLexHexAndSuffixes(t *testing.T) {
	toks, err := Lex("t.c", "0x1F 42UL 7u")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Val != "0x1F" || toks[1].Val != "42UL" || toks[2].Val != "7u" {
		t.Errorf("unexpected literal spellings: %v %v %v", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("t.c", `"hello \"world\"\n"`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != STRING {
		t.Fatalf("got %v, want STRING", toks[0].Kind)
	}
	if toks[0].Val != `hello \"world\"\n` {
		t.Errorf("string value = %q", toks[0].Val)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("f.c", "int\nx;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 1 {
		t.Errorf("x at %v, want 2:1", toks[1].Pos)
	}
	if toks[1].Pos.File != "f.c" {
		t.Errorf("file = %q, want f.c", toks[1].Pos.File)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", "`"} {
		if _, err := Lex("t.c", src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexCharLiteral(t *testing.T) {
	toks, err := Lex("t.c", `'a' '\0'`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != CHAR || toks[0].Val != "a" {
		t.Errorf("first = %v %q", toks[0].Kind, toks[0].Val)
	}
	if toks[1].Kind != CHAR || toks[1].Val != `\0` {
		t.Errorf("second = %v %q", toks[1].Kind, toks[1].Val)
	}
}
