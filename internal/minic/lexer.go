package minic

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error at a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns mini-C source text into a token stream. Comments (// and
// /* */) and preprocessor-style lines beginning with '#' are skipped.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file is used for positions only.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the tokens (terminated by an
// EOF token) or the first lexical error.
func Lex(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '#' && lx.col == 1:
			// Preprocessor directive: skip the line. The corpus uses these
			// only as decorative #include lines.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Next returns the next token in the stream.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Val: word, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Val: word, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		if c == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		// Swallow integer suffixes (UL, ULL, u, l ...).
		for lx.off < len(lx.src) && strings.ContainsRune("uUlL", rune(lx.peek())) {
			lx.advance()
		}
		return Token{Kind: INT, Val: lx.src[start:lx.off], Pos: pos}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: pos, Msg: "unterminated string literal"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && lx.off < len(lx.src) {
				sb.WriteByte(ch)
				sb.WriteByte(lx.advance())
				continue
			}
			if ch == '\n' {
				return Token{}, &LexError{Pos: pos, Msg: "newline in string literal"}
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRING, Val: sb.String(), Pos: pos}, nil
	case c == '\'':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: pos, Msg: "unterminated char literal"}
			}
			ch := lx.advance()
			if ch == '\'' {
				break
			}
			if ch == '\\' && lx.off < len(lx.src) {
				sb.WriteByte(ch)
				sb.WriteByte(lx.advance())
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: CHAR, Val: sb.String(), Pos: pos}, nil
	}

	// Operators and punctuation. Longest match first.
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	twoKinds := map[string]Kind{
		"->": Arrow, "&&": AmpAmp, "||": PipePipe, "<=": Le, ">=": Ge,
		"==": EqEq, "!=": NotEq, "<<": Shl, ">>": Shr, "+=": PlusEq,
		"-=": MinusEq, "*=": StarEq, "/=": SlashEq, "|=": OrEq, "&=": AndEq,
		"++": Inc, "--": Dec,
	}
	if k, ok := twoKinds[two]; ok {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	oneKinds := map[byte]Kind{
		'(': LParen, ')': RParen, '{': LBrace, '}': RBrace, '[': LBracket,
		']': RBracket, ';': Semi, ',': Comma, ':': Colon, '?': Question,
		'.': Dot, '&': Amp, '|': Pipe, '^': Caret, '~': Tilde, '!': Bang,
		'+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
		'<': Lt, '>': Gt, '=': Assign,
	}
	if k, ok := oneKinds[c]; ok {
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}
