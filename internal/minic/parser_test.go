package minic

import (
	"strings"
	"testing"
)

const kernelishSrc = `
struct spi_bus {
	int irq;
	struct spi_sub *spi_int[8];
	char name[32];
};

static int pci1xxxx_spi_probe(struct pci_dev *pdev, int iter)
{
	struct spi_bus *spi_bus;
	struct spi_sub *spi_sub_ptr;
	int ret;

	spi_bus = devm_kzalloc(&pdev->dev, sizeof(struct spi_bus), GFP_KERNEL);
	if (!spi_bus)
		return -ENOMEM;
	spi_sub_ptr = spi_bus->spi_int[iter];
	if (spi_sub_ptr->irq < 0)
		goto err_free;
	for (int i = 0; i < 8; i++)
		spi_bus->spi_int[i] = 0;
	while (ret > 0)
		ret--;
	return 0;
err_free:
	kfree(spi_bus);
	return -EINVAL;
}
`

func TestParseKernelishFunction(t *testing.T) {
	f, err := ParseFile("probe.c", kernelishSrc)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "spi_bus" {
		t.Fatalf("structs = %+v", f.Structs)
	}
	if len(f.Structs[0].Fields) != 3 {
		t.Fatalf("fields = %d, want 3", len(f.Structs[0].Fields))
	}
	if f.Structs[0].Fields[1].Type.ArrayLen != 8 || f.Structs[0].Fields[1].Type.Stars != 1 {
		t.Errorf("spi_int type = %+v", f.Structs[0].Fields[1].Type)
	}
	fn := f.LookupFunc("pci1xxxx_spi_probe")
	if fn == nil {
		t.Fatal("function not found")
	}
	if !fn.Static {
		t.Error("expected static function")
	}
	if len(fn.Params) != 2 {
		t.Errorf("params = %d, want 2", len(fn.Params))
	}
	if fn.Params[0].Type.Base != "struct pci_dev" || fn.Params[0].Type.Stars != 1 {
		t.Errorf("param 0 type = %+v", fn.Params[0].Type)
	}
}

func TestParseDeclWithCleanup(t *testing.T) {
	src := `
int f(void)
{
	struct x509_certificate *cert __free(x509_free_certificate);
	struct ctx *c __free(kfree) = 0;
	return 0;
}
`
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	d0 := fn.Body.Stmts[0].(*DeclStmt)
	if d0.Cleanup != "x509_free_certificate" || d0.Init != nil {
		t.Errorf("decl 0 = %+v", d0)
	}
	d1 := fn.Body.Stmts[1].(*DeclStmt)
	if d1.Cleanup != "kfree" || d1.Init == nil {
		t.Errorf("decl 1 = %+v", d1)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c == d && !e")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	// Expect ((a + (b*c)) == d) && (!e)
	and, ok := e.(*BinaryExpr)
	if !ok || and.Op != AmpAmp {
		t.Fatalf("top = %T %v", e, e)
	}
	eq, ok := and.X.(*BinaryExpr)
	if !ok || eq.Op != EqEq {
		t.Fatalf("lhs = %T", and.X)
	}
	add, ok := eq.X.(*BinaryExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("eq lhs = %T", eq.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != Star {
		t.Fatalf("add rhs = %T", add.Y)
	}
	if _, ok := and.Y.(*UnaryExpr); !ok {
		t.Fatalf("rhs = %T", and.Y)
	}
}

func TestParseTernaryAndAssign(t *testing.T) {
	e, err := ParseExpr("x = a > b ? a : b")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	as, ok := e.(*AssignExpr)
	if !ok {
		t.Fatalf("top = %T", e)
	}
	if _, ok := as.RHS.(*CondExpr); !ok {
		t.Fatalf("rhs = %T", as.RHS)
	}
}

func TestParseCastAndSizeof(t *testing.T) {
	e, err := ParseExpr("(struct foo *)p")
	if err != nil {
		t.Fatalf("cast: %v", err)
	}
	c, ok := e.(*CastExpr)
	if !ok || c.Type.Base != "struct foo" || c.Type.Stars != 1 {
		t.Fatalf("cast = %T %+v", e, e)
	}
	e, err = ParseExpr("sizeof(struct foo)")
	if err != nil {
		t.Fatalf("sizeof type: %v", err)
	}
	sz, ok := e.(*SizeofExpr)
	if !ok || sz.Type == nil {
		t.Fatalf("sizeof = %T", e)
	}
	e, err = ParseExpr("sizeof(mybuf)")
	if err != nil {
		t.Fatalf("sizeof expr: %v", err)
	}
	sz, ok = e.(*SizeofExpr)
	if !ok || sz.X == nil {
		t.Fatalf("sizeof = %T %+v", e, e)
	}
}

func TestParseMemberChains(t *testing.T) {
	e, err := ParseExpr("adpt->phy.digital")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	outer, ok := e.(*MemberExpr)
	if !ok || outer.Name != "digital" || outer.Arrow {
		t.Fatalf("outer = %+v", e)
	}
	inner, ok := outer.X.(*MemberExpr)
	if !ok || inner.Name != "phy" || !inner.Arrow {
		t.Fatalf("inner = %+v", outer.X)
	}
}

func TestParseGotoLabels(t *testing.T) {
	src := `
int f(int a)
{
	if (a)
		goto out;
	a = 1;
out:
	return a;
}
`
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	found := false
	for _, s := range fn.Body.Stmts {
		if l, ok := s.(*LabeledStmt); ok && l.Label == "out" {
			found = true
			if _, ok := l.Stmt.(*ReturnStmt); !ok {
				t.Errorf("label stmt = %T", l.Stmt)
			}
		}
	}
	if !found {
		t.Error("label 'out' not found")
	}
}

func TestParseLabelAtBlockEnd(t *testing.T) {
	src := "void f(void)\n{\n\tgoto out;\nout:\n}\n"
	fn, err := ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1].(*LabeledStmt)
	if last.Stmt != nil {
		t.Errorf("trailing label stmt = %v", last.Stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( {}",
		"int f(void) { int; }",
		"int f(void) { return 0 }",
		"struct s { int x }",
		"int f(void) { if a) return 0; }",
		"int f(void) { x = ; }",
	}
	for _, src := range bad {
		if _, err := ParseFile("t.c", src); err == nil {
			t.Errorf("ParseFile(%q): expected error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseFile("bad.c", "int f(void) {\n\treturn 0\n}\n")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Pos.File != "bad.c" || pe.Pos.Line != 3 {
		t.Errorf("pos = %v, want bad.c:3", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "bad.c:3") {
		t.Errorf("error text = %q", pe.Error())
	}
}

func TestParseGlobals(t *testing.T) {
	src := `
static int debug_level = 2;
int counters[16];

int get(void)
{
	return debug_level;
}
`
	f, err := ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(f.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(f.Globals))
	}
	if f.Globals[1].Type.ArrayLen != 16 {
		t.Errorf("counters type = %+v", f.Globals[1].Type)
	}
}

func TestParseNegativeReturnConstant(t *testing.T) {
	fn, err := ParseFunc("t.c", "int f(void)\n{\n\treturn -ENOMEM;\n}\n")
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	ret := fn.Body.Stmts[0].(*ReturnStmt)
	u, ok := ret.X.(*UnaryExpr)
	if !ok || u.Op != Minus {
		t.Fatalf("return expr = %T", ret.X)
	}
	if id, ok := u.X.(*Ident); !ok || id.Name != "ENOMEM" {
		t.Fatalf("operand = %+v", u.X)
	}
}

func TestUnwrapCalls(t *testing.T) {
	e, err := ParseExpr("unlikely(!pmx)")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	u := UnwrapCalls(e, "unlikely", "likely")
	un, ok := u.(*UnaryExpr)
	if !ok || un.Op != Bang {
		t.Fatalf("unwrapped = %T %+v", u, u)
	}
	// Non-wrapper calls are not unwrapped.
	e2, _ := ParseExpr("other(!pmx)")
	if _, ok := UnwrapCalls(e2, "unlikely").(*CallExpr); !ok {
		t.Error("other() should not be unwrapped")
	}
	// Nested wrappers unwrap fully.
	e3, _ := ParseExpr("likely((unlikely(x)))")
	if id, ok := UnwrapCalls(e3, "unlikely", "likely").(*Ident); !ok || id.Name != "x" {
		t.Errorf("nested unwrap = %+v", UnwrapCalls(e3, "unlikely", "likely"))
	}
}

func TestParseCompoundAssignAndPostfix(t *testing.T) {
	fn, err := ParseFunc("t.c", "void f(int n)\n{\n\tn += 4;\n\tn++;\n\t--n;\n}\n")
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	s0 := fn.Body.Stmts[0].(*ExprStmt).X.(*AssignExpr)
	if s0.Op != PlusEq {
		t.Errorf("op = %v", s0.Op)
	}
	if _, ok := fn.Body.Stmts[1].(*ExprStmt).X.(*PostfixExpr); !ok {
		t.Errorf("stmt 1 = %T", fn.Body.Stmts[1].(*ExprStmt).X)
	}
	if _, ok := fn.Body.Stmts[2].(*ExprStmt).X.(*UnaryExpr); !ok {
		t.Errorf("stmt 2 = %T", fn.Body.Stmts[2].(*ExprStmt).X)
	}
}
