package checker

import (
	"strings"
	"testing"

	"knighter/internal/minic"
	"knighter/internal/sym"
)

type namedChecker struct{ name, bug string }

func (n namedChecker) Name() string    { return n.name }
func (n namedChecker) BugType() string { return n.bug }

func TestReportKeyAndString(t *testing.T) {
	r := &Report{
		Checker: "knighter.x", BugType: "Null-Pointer-Dereference",
		Message: "boom", File: "a/b.c", Func: "probe",
		Pos: minic.Pos{File: "a/b.c", Line: 10, Col: 3},
	}
	if r.Key() != "knighter.x|a/b.c|10:3" {
		t.Errorf("key = %q", r.Key())
	}
	s := r.String()
	for _, want := range []string{"a/b.c:10:3", "knighter.x", "Null-Pointer-Dereference", "boom", "probe"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestValueKey(t *testing.T) {
	if k, ok := ValueKey(sym.MakeSym(7)); !ok || k != "s7" {
		t.Errorf("symbol key = %q %v", k, ok)
	}
	if k, ok := ValueKey(sym.MakeLoc(4)); !ok || k != "r4" {
		t.Errorf("loc key = %q %v", k, ok)
	}
	if _, ok := ValueKey(sym.MakeInt(0)); ok {
		t.Error("concrete ints must not get keys")
	}
	if _, ok := ValueKey(sym.Unknown); ok {
		t.Error("unknown must not get a key")
	}
	// Aliases (same symbol) share a key; distinct symbols do not.
	k1, _ := ValueKey(sym.MakeSym(3))
	k2, _ := ValueKey(sym.MakeSym(3))
	k3, _ := ValueKey(sym.MakeSym(4))
	if k1 != k2 || k1 == k3 {
		t.Errorf("alias keying broken: %q %q %q", k1, k2, k3)
	}
}

func TestContextStateAndReporting(t *testing.T) {
	arena := sym.NewArena()
	pos := minic.Pos{File: "f.c", Line: 5, Col: 2}
	r := arena.VarRegion("p", pos)
	var got []*Report
	ctx := NewContext(arena, sym.NewState(), map[minic.Expr]sym.Value{},
		[]TraceStep{{Pos: pos, Note: "entered"}},
		"probe", "f.c", pos, map[string]minic.Type{"p": {Base: "int", Stars: 1}},
		func(rep *Report) { got = append(got, rep) })

	// State replacement is visible.
	st := ctx.State().SetFact("D", "k", 1)
	ctx.SetState(st)
	if v, ok := ctx.State().Fact("D", "k"); !ok || v != 1 {
		t.Error("SetState not applied")
	}
	ctx.SetState(nil) // nil must be ignored
	if _, ok := ctx.State().Fact("D", "k"); !ok {
		t.Error("nil SetState clobbered the state")
	}

	if tp, ok := ctx.DeclType("p"); !ok || tp.Stars != 1 {
		t.Errorf("DeclType = %+v %v", tp, ok)
	}
	if ctx.Describe(r) != "p" {
		t.Errorf("Describe = %q", ctx.Describe(r))
	}

	ck := namedChecker{"knighter.t", "Misuse"}
	ctx.Report(ck, "msg", r)
	if len(got) != 1 {
		t.Fatalf("reports = %d", len(got))
	}
	rep := got[0]
	if rep.Checker != "knighter.t" || rep.BugType != "Misuse" || rep.Func != "probe" ||
		rep.RegionAt != "p" || len(rep.Trace) != 1 {
		t.Errorf("report = %+v", rep)
	}
	// Trace must be copied, not aliased.
	rep.Trace[0].Note = "mutated"
	ctx.Report(ck, "msg2", sym.NoRegion)
	if got[1].Trace[0].Note == "mutated" {
		t.Error("trace slices aliased between reports")
	}
}

func TestCallEventAccessors(t *testing.T) {
	call := &minic.CallExpr{Fun: "f", Args: []minic.Expr{&minic.Ident{Name: "a"}}}
	ev := &CallEvent{Callee: "f", Expr: call, Args: []sym.Value{sym.MakeInt(1)}}
	if ev.Arg(0).Int != 1 {
		t.Error("Arg(0) wrong")
	}
	if !ev.Arg(5).IsUnknown() {
		t.Error("out-of-range Arg must be Unknown")
	}
	if ev.ArgExpr(0) == nil || ev.ArgExpr(3) != nil {
		t.Error("ArgExpr bounds wrong")
	}
}

func TestValueOfUsesUnparen(t *testing.T) {
	arena := sym.NewArena()
	inner := &minic.Ident{Name: "x"}
	wrapped := &minic.ParenExpr{X: inner}
	vals := map[minic.Expr]sym.Value{inner: sym.MakeInt(9)}
	ctx := NewContext(arena, sym.NewState(), vals, nil, "f", "f.c",
		minic.Pos{}, nil, func(*Report) {})
	if got := ctx.ValueOf(wrapped); !got.IsConcreteInt() || got.Int != 9 {
		t.Errorf("ValueOf(paren) = %v", got)
	}
}
