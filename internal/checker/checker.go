// Package checker defines the checker-facing API of the analyzer: the
// callback interfaces checkers implement, the events they receive, the
// context through which they read/update program state, and bug reports.
//
// It mirrors the Clang Static Analyzer checker surface the paper's
// synthesized artifacts program against (checkPostCall, checkBind,
// checkBranchCondition, checkLocation, ... — paper §2.1).
package checker

import (
	"fmt"

	"knighter/internal/minic"
	"knighter/internal/sym"
)

// Checker is the base interface; concrete behaviour comes from the
// optional callback interfaces below, which the engine discovers by type
// assertion (the analog of CSA's Checker<check::PostCall, ...> template).
type Checker interface {
	// Name identifies the checker in reports (e.g. "knighter.NPDDevmKzalloc").
	Name() string
	// BugType is the headline category for reports from this checker.
	BugType() string
}

// Fingerprinter is implemented by checkers whose behaviour is fully
// determined by a canonical serialization (e.g. a compiled DSL spec).
// The scan-service result cache only caches analysis results for
// checkers that implement it: two checkers with equal fingerprints must
// produce identical results on identical input.
type Fingerprinter interface {
	// Fingerprint returns a stable content hash of the checker's
	// semantics.
	Fingerprint() string
}

// PostCallChecker runs after a call expression is evaluated.
type PostCallChecker interface {
	CheckPostCall(ev *CallEvent, c *Context)
}

// PreCallChecker runs before a call's effects are applied (arguments are
// already evaluated).
type PreCallChecker interface {
	CheckPreCall(ev *CallEvent, c *Context)
}

// BranchChecker runs on every branch condition before the path splits.
type BranchChecker interface {
	CheckBranchCondition(cond minic.Expr, c *Context)
}

// LocationChecker runs on every memory access (loads and stores).
type LocationChecker interface {
	CheckLocation(ac *Access, c *Context)
}

// BindChecker runs when a value is stored to a region (assignments and
// initializations).
type BindChecker interface {
	CheckBind(bind *BindEvent, c *Context)
}

// DeclChecker runs when a local variable declaration is processed.
type DeclChecker interface {
	CheckDecl(d *minic.DeclStmt, region sym.RegionID, c *Context)
}

// EndFunctionChecker runs when a path reaches a return.
type EndFunctionChecker interface {
	CheckEndFunction(ret *ReturnEvent, c *Context)
}

// CallEvent describes an observed function call.
type CallEvent struct {
	Callee     string
	Expr       *minic.CallExpr
	Args       []sym.Value
	ArgRegions []sym.RegionID // region holding each argument lvalue (NoRegion if not an lvalue)
	// ArgPointees[i] is the region an argument points to: for &x it is
	// x's region; for a pointer-valued symbol it is its symbolic pointee.
	ArgPointees []sym.RegionID
	Ret         sym.Value
	Pos         minic.Pos
}

// Arg returns the i-th argument value, or Unknown if out of range.
func (ev *CallEvent) Arg(i int) sym.Value {
	if i < 0 || i >= len(ev.Args) {
		return sym.Unknown
	}
	return ev.Args[i]
}

// ArgExpr returns the i-th argument expression, or nil.
func (ev *CallEvent) ArgExpr(i int) minic.Expr {
	if ev.Expr == nil || i < 0 || i >= len(ev.Expr.Args) {
		return nil
	}
	return ev.Expr.Args[i]
}

// Access describes a memory access (the analog of checkLocation).
type Access struct {
	// PtrValue is the pointer being dereferenced (Unknown for direct
	// variable accesses).
	PtrValue sym.Value
	// Pointee is the region being read or written.
	Pointee sym.RegionID
	IsLoad  bool
	// Direct is true for plain variable reads (no pointer dereference).
	Direct bool
	// FieldName is set for member accesses.
	FieldName string
	// Index and ArrayLen are set for array subscript accesses on
	// fixed-size arrays (ArrayLen 0 otherwise).
	Index    sym.Value
	ArrayLen int
	// UninitLoad marks a load from a declared-but-never-assigned local.
	UninitLoad bool
	Expr       minic.Expr
	Pos        minic.Pos
}

// BindEvent describes a store of a value into a region.
type BindEvent struct {
	Region sym.RegionID
	Value  sym.Value
	// IsInit is true when the bind comes from a declaration initializer.
	IsInit bool
	LHS    minic.Expr // nil for declaration initializers
	RHS    minic.Expr
	Pos    minic.Pos
}

// ReturnEvent describes the end of a path at a return statement.
type ReturnEvent struct {
	Expr  minic.Expr // may be nil
	Value sym.Value
	Pos   minic.Pos
}

// TraceStep is one step of a path trace attached to a report.
type TraceStep struct {
	Pos  minic.Pos
	Note string
}

// Report is a single bug report.
type Report struct {
	Checker  string
	BugType  string
	Message  string
	File     string
	Func     string
	Pos      minic.Pos
	RegionAt string // human-readable region description
	Trace    []TraceStep
}

// Key returns a deduplication key: one report per checker+site.
func (r *Report) Key() string {
	return fmt.Sprintf("%s|%s|%d:%d", r.Checker, r.File, r.Pos.Line, r.Pos.Col)
}

func (r *Report) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s: %s (in %s)",
		r.File, r.Pos.Line, r.Pos.Col, r.Checker, r.BugType, r.Message, r.Func)
}

// Context is handed to every callback. It exposes the current program
// state (immutable; replace via SetState), the region arena, value lookup
// for already-evaluated expressions, and report emission.
type Context struct {
	arena  *sym.Arena
	state  *sym.State
	values map[minic.Expr]sym.Value
	trace  []TraceStep
	fn     string
	file   string
	pos    minic.Pos
	sink   func(*Report)
	// declTypes maps local/param names to their declared types, for
	// sizeof-style queries by checkers.
	declTypes map[string]minic.Type
}

// NewContext is used by the engine (and tests) to construct a context.
func NewContext(arena *sym.Arena, state *sym.State, values map[minic.Expr]sym.Value,
	trace []TraceStep, fn, file string, pos minic.Pos,
	declTypes map[string]minic.Type, sink func(*Report)) *Context {
	return &Context{arena: arena, state: state, values: values, trace: trace,
		fn: fn, file: file, pos: pos, declTypes: declTypes, sink: sink}
}

// Arena returns the region arena.
func (c *Context) Arena() *sym.Arena { return c.arena }

// State returns the current program state.
func (c *Context) State() *sym.State { return c.state }

// SetState replaces the program state; the engine picks up the change
// after the callback returns.
func (c *Context) SetState(s *sym.State) {
	if s != nil {
		c.state = s
	}
}

// ValueOf returns the evaluated value of an expression from the current
// statement's evaluation cache (sub-expressions of the event's expression
// are present).
func (c *Context) ValueOf(e minic.Expr) sym.Value {
	if v, ok := c.values[e]; ok {
		return v
	}
	// Strip wrappers the evaluator normalizes away.
	if v, ok := c.values[minic.Unparen(e)]; ok {
		return v
	}
	return sym.Unknown
}

// FuncName returns the function under analysis.
func (c *Context) FuncName() string { return c.fn }

// FileName returns the file under analysis.
func (c *Context) FileName() string { return c.file }

// Pos returns the source position of the current event.
func (c *Context) Pos() minic.Pos { return c.pos }

// DeclType looks up the declared type of a named local or parameter.
func (c *Context) DeclType(name string) (minic.Type, bool) {
	t, ok := c.declTypes[name]
	return t, ok
}

// Describe renders a region path for report messages.
func (c *Context) Describe(r sym.RegionID) string { return c.arena.Describe(r) }

// Trace returns a copy of the current path trace.
func (c *Context) Trace() []TraceStep {
	out := make([]TraceStep, len(c.trace))
	copy(out, c.trace)
	return out
}

// Report emits a bug report at the event position.
func (c *Context) Report(ck Checker, msg string, region sym.RegionID) {
	c.ReportAt(ck, msg, region, c.pos)
}

// ReportAt emits a bug report at an explicit position.
func (c *Context) ReportAt(ck Checker, msg string, region sym.RegionID, pos minic.Pos) {
	r := &Report{
		Checker: ck.Name(),
		BugType: ck.BugType(),
		Message: msg,
		File:    c.file,
		Func:    c.fn,
		Pos:     pos,
		Trace:   c.Trace(),
	}
	if region != sym.NoRegion {
		r.RegionAt = c.arena.Describe(region)
	}
	c.sink(r)
}

// ValueKey returns a state-map key identifying what a pointer value
// refers to: symbols key by symbol id (so aliases created by assignment
// share tracking), locations by region id.
func ValueKey(v sym.Value) (string, bool) {
	switch v.Kind {
	case sym.KindSymbol:
		return sym.SymbolKey(v.Sym), true
	case sym.KindLoc:
		return sym.RegionKey(v.Reg), true
	default:
		return "", false
	}
}
