package api

import (
	"knighter/internal/scan"
	"knighter/internal/store"
)

// CacheOf maps a scan result's cache counters onto the wire shape.
func CacheOf(res *scan.Result) CacheStats {
	return CacheStats{
		Hits:      res.CacheHits,
		Misses:    res.CacheMisses,
		HitRate:   store.Stats{Hits: int64(res.CacheHits), Misses: int64(res.CacheMisses)}.HitRate(),
		Coalesced: res.CacheCoalesced,
	}
}

// ScanResult maps a scan result onto the wire response. Both kserve's
// handlers and the shard fan-out's local-fallback path produce their
// ScanResponse through this one function, so a sub-scan served remotely
// and one recomputed locally are byte-identical for the same snapshot.
//
// includeCuts additionally attaches the per-file merge cursor
// (FileCuts) — set on shard-local sub-scan replies and fallback
// partials, never on client-facing merged responses.
func ScanResult(name string, res *scan.Result, includeTrace, includeCuts bool) *ScanResponse {
	resp := &ScanResponse{
		Checker:      name,
		Reports:      make([]Report, 0, len(res.Reports)),
		FilesScanned: res.FilesScanned,
		FuncsScanned: res.FuncsScanned,
		Truncated:    res.Truncated,
		Canceled:     res.Canceled,
		TimedOut:     res.FuncsTimedOut,
		Cache:        CacheOf(res),
		Generation:   res.Generation,
		// The scan's own wall time: for a batch entry this is the
		// individual checker's cost, not the whole batch's.
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
	for _, rep := range res.Reports {
		rj := Report{
			Checker: rep.Checker, BugType: rep.BugType, Message: rep.Message,
			File: rep.File, Func: rep.Func, Line: rep.Pos.Line, Col: rep.Pos.Col,
			Region: rep.RegionAt,
		}
		if includeTrace {
			for _, t := range rep.Trace {
				rj.Trace = append(rj.Trace, TraceStep{Line: t.Pos.Line, Col: t.Pos.Col, Note: t.Note})
			}
		}
		resp.Reports = append(resp.Reports, rj)
	}
	for _, re := range res.RuntimeErrs {
		resp.RuntimeErrs = append(resp.RuntimeErrs, re.Error())
	}
	if includeCuts {
		resp.FileCuts = make([]FileCut, len(res.FileCuts))
		for i, c := range res.FileCuts {
			resp.FileCuts[i] = FileCut{Reports: c.Reports, RuntimeErrs: c.RuntimeErrs}
		}
	}
	return resp
}
