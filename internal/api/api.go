// Package api defines the wire types of the scan service: every
// request and response body kserve speaks, plus the uniform error
// envelope and the generation-awareness conventions shared by all of
// them. Clients (the refinement loop, the eval harness, tests, fleet
// siblings) import this package instead of re-declaring ad-hoc structs
// against the JSON.
//
// Conventions:
//
//   - Every response — success or error — carries the corpus generation
//     it was served against, both in the body ("generation") and in the
//     GenerationHeader. A scan's generation is the snapshot it pinned;
//     a mutation's is the generation it committed.
//   - Scan-shaped requests accept "min_generation": serve-at-or-after.
//     The daemon waits a bounded interval for the corpus to reach that
//     generation and answers 409 (ErrGenerationUnavailable) with the
//     current generation and a retry hint if it cannot.
//   - Errors use the envelope {"error": {"code", "message",
//     "retry_after_ms"}}. The old flat string key has been replaced by
//     the envelope; for one release the bare message is duplicated at
//     "error_legacy" for clients mid-migration (see README,
//     "API envelope").
package api

import (
	"knighter/internal/obs"
	"knighter/internal/store"
)

// GenerationHeader is the response header carrying the corpus
// generation the request was served against, on every endpoint
// including errors — so even a shed or rejected request tells the
// client where the corpus stands.
const GenerationHeader = "X-KN-Generation"

// Error codes. Stable strings, coarser than HTTP status codes only
// where HTTP is too coarse (409 means "generation unavailable" here).
const (
	// ErrBadRequest: malformed body or missing required field (400).
	ErrBadRequest = "bad_request"
	// ErrMethodNotAllowed: wrong HTTP method (405).
	ErrMethodNotAllowed = "method_not_allowed"
	// ErrNotFound: unknown file path or unknown resource (404).
	ErrNotFound = "not_found"
	// ErrUnprocessable: well-formed but rejected — checker does not
	// compile, changeset fails validation (422).
	ErrUnprocessable = "unprocessable"
	// ErrOverloaded: shed by admission control; retry_after_ms is set
	// (429, with the Retry-After header as before).
	ErrOverloaded = "overloaded"
	// ErrGenerationUnavailable: min_generation not reached within the
	// bounded wait; the body's generation is the current one and
	// retry_after_ms hints when to ask again (409).
	ErrGenerationUnavailable = "generation_unavailable"
	// ErrUnavailable: a subsystem is not configured (e.g. /metrics
	// without a registry) (404/503).
	ErrUnavailable = "unavailable"
)

// Error is the uniform error envelope's payload.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, when > 0, hints when retrying may succeed —
	// admission sheds and unsatisfied min_generation waits set it.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Err *Error `json:"error"`
	// LegacyError duplicates Err.Message where clients of the removed
	// flat `"error": "<msg>"` shape can reach it with a one-key change.
	// Deprecated: read Err instead; this field lasts one release.
	LegacyError string `json:"error_legacy,omitempty"`
	// Generation is the corpus generation at the time of the error —
	// for ErrGenerationUnavailable, the generation the daemon is AT.
	Generation int64 `json:"generation"`
	// TraceID is the request's trace id — the same value as the
	// X-Trace-Id response header, duplicated in the body so a client
	// that only logs bodies can still feed GET /trace/{id}. Empty on
	// paths that run outside the tracing middleware.
	TraceID string `json:"trace_id,omitempty"`
}

// ScanRequest is the POST /scan body.
type ScanRequest struct {
	// Checker is the checker-DSL program text.
	Checker string `json:"checker"`
	// Files optionally restricts the scan to these corpus paths.
	Files []string `json:"files,omitempty"`
	// MaxReports caps collected reports (0 = unlimited).
	MaxReports int `json:"max_reports,omitempty"`
	// Workers overrides the parallelism degree (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// FuncTimeoutMS overrides the server's per-function analysis budget
	// in milliseconds (0 = server default).
	FuncTimeoutMS int `json:"func_timeout_ms,omitempty"`
	// MinGeneration, when > 0, asks to be served at-or-after that corpus
	// generation — read-your-writes for a client holding a changeset
	// token. The daemon waits a bounded interval; if the corpus does not
	// reach the generation in time the request fails 409 with
	// ErrGenerationUnavailable.
	MinGeneration int64 `json:"min_generation,omitempty"`
	// IncludeTrace adds the per-report path trace to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
	// IncludeTiming adds the request's trace id and per-stage span
	// timeline to the response — the same timeline the slow-request log
	// prints, on demand.
	IncludeTiming bool `json:"include_timing,omitempty"`
	// ShardLocal marks a sub-scan inside a sharded fan-out: the serving
	// replica must scan exactly Files on its local snapshot — no
	// re-scattering — and include per-file cuts in the response so the
	// coordinator can merge partials in global file order. Set by the
	// scatter client, not by end clients.
	ShardLocal bool `json:"shard_local,omitempty"`
}

// Report is one bug report on the wire.
type Report struct {
	Checker string      `json:"checker"`
	BugType string      `json:"bug_type"`
	Message string      `json:"message"`
	File    string      `json:"file"`
	Func    string      `json:"func"`
	Line    int         `json:"line"`
	Col     int         `json:"col"`
	Region  string      `json:"region,omitempty"`
	Trace   []TraceStep `json:"trace,omitempty"`
}

// TraceStep is one step of a report's path trace.
type TraceStep struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note"`
}

// CacheStats reports per-request cache effectiveness.
type CacheStats struct {
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// Coalesced counts misses served by sharing another request's
	// in-flight computation of the same key.
	Coalesced int `json:"coalesced,omitempty"`
}

// ScanResponse is the POST /scan reply, and one entry of POST /batch.
type ScanResponse struct {
	Checker string `json:"checker"`
	// Error is the per-entry compile error inside a batch reply (the
	// whole-request error path uses ErrorResponse instead).
	Error        string     `json:"error,omitempty"`
	Reports      []Report   `json:"reports"`
	FilesScanned int        `json:"files_scanned"`
	FuncsScanned int        `json:"funcs_scanned"`
	RuntimeErrs  []string   `json:"runtime_errs,omitempty"`
	Truncated    bool       `json:"truncated"`
	Canceled     bool       `json:"canceled,omitempty"`
	TimedOut     int        `json:"funcs_timed_out,omitempty"`
	Cache        CacheStats `json:"cache"`
	// Generation is the snapshot generation the scan pinned: every
	// report above was computed against exactly that corpus state.
	Generation int64   `json:"generation"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// TraceID and Timing are present when the request asked for
	// include_timing: the request's trace id (echoed in the X-Trace-Id
	// response header too) and its per-stage span timeline.
	TraceID string     `json:"trace_id,omitempty"`
	Timing  []obs.Span `json:"timing,omitempty"`
	// FileCuts is present only on shard-local sub-scan replies: for each
	// requested file in request order, how many of the flat Reports and
	// RuntimeErrs entries it contributed. The coordinator slices partials
	// by these cuts to reassemble the global file order exactly.
	FileCuts []FileCut `json:"file_cuts,omitempty"`
}

// FileCut is one file's contribution to a sub-scan reply's flat report
// and runtime-error slices, in request file order.
type FileCut struct {
	Reports     int `json:"reports"`
	RuntimeErrs int `json:"runtime_errs,omitempty"`
}

// BatchRequest is the POST /batch body: N checker revisions evaluated
// over the shared store in one request.
type BatchRequest struct {
	// Checkers are the checker-DSL program texts.
	Checkers []string `json:"checkers"`
	// Files optionally restricts every scan to these corpus paths.
	Files []string `json:"files,omitempty"`
	// MaxReports caps collected reports per checker (0 = unlimited).
	MaxReports int `json:"max_reports,omitempty"`
	// Workers overrides each scan's parallelism (0 = auto-scaled to the
	// pool size).
	Workers int `json:"workers,omitempty"`
	// Concurrency bounds how many checkers run at once (0 = GOMAXPROCS).
	Concurrency int `json:"concurrency,omitempty"`
	// FuncTimeoutMS overrides the server's per-function analysis budget.
	FuncTimeoutMS int `json:"func_timeout_ms,omitempty"`
	// MinGeneration: serve-at-or-after, as on ScanRequest. The whole
	// batch pins ONE snapshot at or after it.
	MinGeneration int64 `json:"min_generation,omitempty"`
	// IncludeTrace adds per-report path traces to the responses.
	IncludeTrace bool `json:"include_trace,omitempty"`
	// IncludeTiming adds the request's trace id and stage timeline to
	// the batch reply (one trace per HTTP request; entries share it).
	IncludeTiming bool `json:"include_timing,omitempty"`
	// ShardLocal marks a sub-batch inside a sharded fan-out, with the
	// same contract as ScanRequest.ShardLocal.
	ShardLocal bool `json:"shard_local,omitempty"`
}

// BatchResponse is the POST /batch reply: per-checker results in
// request order plus aggregate cache effectiveness.
type BatchResponse struct {
	Results []*ScanResponse `json:"results"`
	// CheckersRun counts checkers that compiled and scanned;
	// CheckerErrors counts entries rejected at compile time.
	CheckersRun   int        `json:"checkers_run"`
	CheckerErrors int        `json:"checker_errors"`
	Cache         CacheStats `json:"cache"`
	// Generation is the single snapshot generation every entry scanned:
	// the batch pins once, so all results are mutually consistent.
	Generation int64   `json:"generation"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// TraceID and Timing are present when the request asked for
	// include_timing; the timeline aggregates all entries' stages.
	TraceID string     `json:"trace_id,omitempty"`
	Timing  []obs.Span `json:"timing,omitempty"`
}

// PatchRequest is the POST /patch body. An empty Func replaces the
// whole file with Source; otherwise Source must be a single function
// that replaces Func within the file.
type PatchRequest struct {
	Path   string `json:"path"`
	Func   string `json:"func,omitempty"`
	Source string `json:"source"`
}

// PatchResponse reports what one mutation touched — and, critically,
// what it did NOT: ChangedFuncs is exactly the number of functions the
// next scan will miss on.
type PatchResponse struct {
	Path             string  `json:"path"`
	Mode             string  `json:"mode"` // "patch" or "replace"
	Funcs            int     `json:"funcs"`
	ChangedFuncs     int     `json:"changed_funcs"`
	StaleHashes      int     `json:"stale_hashes"`
	StoreInvalidated int     `json:"store_invalidated"`
	Generation       int64   `json:"generation"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

// Change is one element of a changeset request. Each change follows
// /patch semantics (empty func = whole-file replace, set func =
// single-function patch).
type Change struct {
	Path   string `json:"path"`
	Func   string `json:"func,omitempty"`
	Source string `json:"source"`
}

// ChangesetRequest is the POST /changeset body: a commit-sized batch of
// file updates applied atomically — one snapshot swap, one generation
// bump, and a bad change rejects the entire set.
type ChangesetRequest struct {
	Changes []Change `json:"changes"`
	// Async, when true, reserves a generation token and returns
	// immediately with status "pending"; the changeset commits in the
	// background in token order. Poll GET /changeset/status, or pass the
	// token as min_generation on the next scan to read your write.
	Async bool `json:"async,omitempty"`
}

// Changeset status values, as reported by ChangesetResponse.Status and
// GET /changeset/status.
const (
	// StatusPending: token reserved, commit in flight.
	StatusPending = "pending"
	// StatusCommitted: the changeset is visible at its generation.
	StatusCommitted = "committed"
	// StatusFailed: validation failed after the token was reserved; the
	// generation was burned with an empty commit (corpus unchanged).
	StatusFailed = "failed"
)

// ChangesetResponse is the POST /changeset reply. A sync changeset
// returns status "committed" with the full outcome; an async one
// returns status "pending" with only the reserved Generation token.
type ChangesetResponse struct {
	Async  bool   `json:"async,omitempty"`
	Status string `json:"status"`
	// Generation: for sync, the committed generation; for async, the
	// reserved token the commit WILL land at.
	Generation       int64    `json:"generation"`
	Ops              int      `json:"ops,omitempty"`
	Files            []string `json:"files,omitempty"`
	ChangedFuncs     int      `json:"changed_funcs,omitempty"`
	StaleHashes      int      `json:"stale_hashes,omitempty"`
	StoreInvalidated int      `json:"store_invalidated,omitempty"`
	ElapsedMS        float64  `json:"elapsed_ms"`
}

// ChangesetStatus is the GET /changeset/status?generation=N reply: the
// recorded outcome of an async changeset.
type ChangesetStatus struct {
	Generation int64  `json:"generation"`
	Status     string `json:"status"`
	// Ops/Files/ChangedFuncs/StaleHashes/StoreInvalidated carry the
	// committed outcome once Status is "committed".
	Ops              int      `json:"ops,omitempty"`
	Files            []string `json:"files,omitempty"`
	ChangedFuncs     int      `json:"changed_funcs,omitempty"`
	StaleHashes      int      `json:"stale_hashes,omitempty"`
	StoreInvalidated int      `json:"store_invalidated,omitempty"`
	// Error is the validation failure once Status is "failed".
	Error string `json:"error,omitempty"`
}

// FeedEntry is one fleet-wide changeset commit in the generation feed
// a sharded fleet runs through kcached: the coordinator that committed
// generation N publishes (N, changes); a shard that finds itself behind
// pulls the entries it is missing and replays them in order.
type FeedEntry struct {
	Generation int64    `json:"generation"`
	Changes    []Change `json:"changes"`
}

// FeedPage is the GET /feed?from=N reply: the retained entries with
// generation > from, in ascending generation order.
type FeedPage struct {
	Entries []FeedEntry `json:"entries"`
	// Latest is the highest generation ever published (0 = empty feed).
	// A shard whose local generation is below Latest but whose gap is
	// not covered by Entries (the feed evicted them) cannot converge
	// from the feed alone.
	Latest int64 `json:"latest"`
}

// ConvergeResponse is the POST /converge reply: the shard pulled the
// generation feed and replayed every entry it was missing.
type ConvergeResponse struct {
	Generation int64 `json:"generation"`
	// Applied counts feed entries replayed by this call.
	Applied   int     `json:"applied"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ShardStats is the GET /stats view of the shard fan-out layer,
// present only when the daemon runs sharded (-shard-count > 1).
type ShardStats struct {
	Index int      `json:"index"`
	Count int      `json:"count"`
	Peers []string `json:"peers"`
	// Scatters counts coordinated fan-outs; Degraded counts scatters
	// where at least one partition fell back to the local snapshot;
	// Hedged counts sub-scans whose local hedge fired.
	Scatters int64 `json:"scatters"`
	Degraded int64 `json:"degraded_scatters"`
	Hedged   int64 `json:"hedged_sub_scans"`
	// SubScansServed counts shard-local sub-scans this replica answered
	// for other coordinators; Converges counts feed replays.
	SubScansServed int64 `json:"sub_scans_served"`
	Converges      int64 `json:"converges"`
	FeedPublishes  int64 `json:"feed_publishes"`
	// PeerHealthy, indexed by shard, is each peer's last-observed
	// scatter health (self is always true).
	PeerHealthy []bool `json:"peer_healthy"`
}

// AdmissionStats is the GET /stats view of an admission gate.
type AdmissionStats struct {
	MaxInflight        int   `json:"max_inflight"`
	MaxQueued          int64 `json:"max_queued"`
	MaxQueuedPerClient int64 `json:"max_queued_per_client,omitempty"`
	Inflight           int64 `json:"inflight"`
	Queued             int64 `json:"queued"`
	QueuedClients      int   `json:"queued_clients"`
	Admitted           int64 `json:"admitted"`
	Shed               int64 `json:"shed"`
	// FairnessShed counts sheds caused by the per-client bound alone —
	// requests that would have queued had another client sent them.
	FairnessShed int64 `json:"fairness_shed"`
	// MaxCost, when > 0, bounds the summed cost weight (checkers ×
	// files) of admitted requests; CostWeight is the weight currently
	// outstanding and CostShed counts requests shed by the cost bound
	// alone (they had an inflight token but weighed too much).
	MaxCost    int64 `json:"max_cost,omitempty"`
	CostWeight int64 `json:"cost_weight"`
	CostShed   int64 `json:"cost_shed,omitempty"`
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	Files         int     `json:"files"`
	Funcs         int     `json:"funcs"`
	Generation    int64   `json:"generation"`
	// PinnedSnapshots counts old generations in-flight scans still hold
	// pinned — retained corpus versions an operator can watch.
	PinnedSnapshots int         `json:"pinned_snapshots"`
	Scans           int64       `json:"scans"`
	Batches         int64       `json:"batches"`
	Patches         int64       `json:"patches"`
	Changesets      int64       `json:"changesets"`
	AsyncChangesets int64       `json:"async_changesets"`
	ScanErrors      int64       `json:"scan_errors"`
	ScansCanceled   int64       `json:"scans_canceled"`
	ReportsServed   int64       `json:"reports_served"`
	GCRemoved       int64       `json:"gc_removed"`
	Store           store.Stats `json:"store"`
	StoreHitRate    float64     `json:"store_hit_rate"`
	// Remote is present only when the daemon runs with a fleet cache
	// tier (-cache-remote): the client-side view of the shared tier's
	// health, including circuit-breaker state.
	Remote *store.RemoteStats `json:"remote,omitempty"`
	// Admission is present only when the daemon runs with read
	// admission control (-max-inflight > 0); WriteAdmission mirrors it
	// for the write gate (-max-inflight-writes), which exists so
	// changeset storms shed writes without ever shedding reads.
	Admission      *AdmissionStats `json:"admission,omitempty"`
	WriteAdmission *AdmissionStats `json:"write_admission,omitempty"`
	// Shards is present only when the daemon runs sharded
	// (-shard-count > 1): the fan-out layer's counters and peer health.
	Shards *ShardStats `json:"shards,omitempty"`
	// TraceStore is present when the daemon retains traces
	// (-trace-retain > 0): the tail-sampling store's keep/sample/evict
	// counters.
	TraceStore *obs.TraceStoreStats `json:"trace_store,omitempty"`
	// ScanExemplars maps scan-duration histogram bucket upper bounds to
	// the trace id of the last scan that landed in each — the /stats
	// twin of the /metrics # EXEMPLAR comments.
	ScanExemplars map[string]string `json:"scan_exemplars,omitempty"`
}

// TraceListResponse is the GET /traces reply: the newest retained
// traces in the local store, newest first.
type TraceListResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

// HealthzResponse is the GET /healthz reply.
type HealthzResponse struct {
	OK         bool  `json:"ok"`
	Files      int   `json:"files"`
	Generation int64 `json:"generation"`
	// PinnedSnapshots mirrors StatsResponse's field so a liveness probe
	// can watch snapshot retention without the full stats body.
	PinnedSnapshots int `json:"pinned_snapshots"`
}
