// Package patch renders unified diffs between two versions of a source
// file. The diffs are what the synthesis pipeline's agents "read" (the
// paper's input patches) and what commit messages embed.
package patch

import (
	"fmt"
	"strings"
)

// Diff computes a unified diff between two texts with the given number of
// context lines. Paths label the --- / +++ header.
func Diff(aPath, bPath, a, b string, context int) string {
	al := splitLines(a)
	bl := splitLines(b)
	ops := diffOps(al, bl)
	if !hasChange(ops) {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", aPath, bPath)
	for _, h := range hunks(ops, context) {
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", h.aStart+1, h.aLen, h.bStart+1, h.bLen)
		for _, op := range h.ops {
			switch op.kind {
			case opEq:
				sb.WriteString(" " + op.text + "\n")
			case opDel:
				sb.WriteString("-" + op.text + "\n")
			case opAdd:
				sb.WriteString("+" + op.text + "\n")
			}
		}
	}
	return sb.String()
}

// Stats reports the number of added and removed lines in a unified diff.
func Stats(diff string) (added, removed int) {
	for _, line := range strings.Split(diff, "\n") {
		if strings.HasPrefix(line, "+") && !strings.HasPrefix(line, "+++") {
			added++
		}
		if strings.HasPrefix(line, "-") && !strings.HasPrefix(line, "---") {
			removed++
		}
	}
	return added, removed
}

// AddedLines returns the inserted lines of a unified diff (without '+').
func AddedLines(diff string) []string {
	var out []string
	for _, line := range strings.Split(diff, "\n") {
		if strings.HasPrefix(line, "+") && !strings.HasPrefix(line, "+++") {
			out = append(out, strings.TrimPrefix(line, "+"))
		}
	}
	return out
}

// RemovedLines returns the deleted lines of a unified diff (without '-').
func RemovedLines(diff string) []string {
	var out []string
	for _, line := range strings.Split(diff, "\n") {
		if strings.HasPrefix(line, "-") && !strings.HasPrefix(line, "---") {
			out = append(out, strings.TrimPrefix(line, "-"))
		}
	}
	return out
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

type opKind int

const (
	opEq opKind = iota
	opDel
	opAdd
)

type diffOp struct {
	kind opKind
	text string
}

func hasChange(ops []diffOp) bool {
	for _, op := range ops {
		if op.kind != opEq {
			return true
		}
	}
	return false
}

// diffOps computes an edit script via longest-common-subsequence DP. The
// inputs are function-sized, so the quadratic table is fine.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEq, a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDel, a[i]})
			i++
		default:
			ops = append(ops, diffOp{opAdd, b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDel, a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opAdd, b[j]})
	}
	return ops
}

type hunk struct {
	aStart, aLen int
	bStart, bLen int
	ops          []diffOp
}

// hunks groups an edit script into unified-diff hunks with context lines.
func hunks(ops []diffOp, context int) []hunk {
	// Mark op indexes that belong to a hunk (changes +/- context).
	include := make([]bool, len(ops))
	for i, op := range ops {
		if op.kind == opEq {
			continue
		}
		lo := i - context
		if lo < 0 {
			lo = 0
		}
		hi := i + context
		if hi >= len(ops) {
			hi = len(ops) - 1
		}
		for k := lo; k <= hi; k++ {
			include[k] = true
		}
	}
	var out []hunk
	aLine, bLine := 0, 0
	i := 0
	for i < len(ops) {
		if !include[i] {
			if ops[i].kind != opAdd {
				aLine++
			}
			if ops[i].kind != opDel {
				bLine++
			}
			i++
			continue
		}
		h := hunk{aStart: aLine, bStart: bLine}
		for i < len(ops) && include[i] {
			op := ops[i]
			h.ops = append(h.ops, op)
			if op.kind != opAdd {
				aLine++
				h.aLen++
			}
			if op.kind != opDel {
				bLine++
				h.bLen++
			}
			i++
		}
		out = append(out, h)
	}
	return out
}
