package patch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDiffBasic(t *testing.T) {
	a := "line1\nline2\nline3\n"
	b := "line1\nline2 changed\nline3\n"
	d := Diff("f.c", "f.c", a, b, 3)
	if !strings.Contains(d, "-line2\n") || !strings.Contains(d, "+line2 changed\n") {
		t.Errorf("diff:\n%s", d)
	}
	add, rem := Stats(d)
	if add != 1 || rem != 1 {
		t.Errorf("stats = +%d -%d", add, rem)
	}
}

func TestDiffIdentical(t *testing.T) {
	if d := Diff("f.c", "f.c", "same\n", "same\n", 3); d != "" {
		t.Errorf("identical inputs produced a diff:\n%s", d)
	}
}

func TestDiffPureInsertion(t *testing.T) {
	a := "int f(void)\n{\n\tp = alloc();\n\tuse(p);\n}\n"
	b := "int f(void)\n{\n\tp = alloc();\n\tif (!p)\n\t\treturn -ENOMEM;\n\tuse(p);\n}\n"
	d := Diff("x.c", "x.c", a, b, 3)
	add, rem := Stats(d)
	if add != 2 || rem != 0 {
		t.Errorf("stats = +%d -%d, want +2 -0\n%s", add, rem, d)
	}
	added := AddedLines(d)
	if len(added) != 2 || !strings.Contains(added[0], "if (!p)") {
		t.Errorf("added = %q", added)
	}
	if len(RemovedLines(d)) != 0 {
		t.Errorf("removed = %q", RemovedLines(d))
	}
}

func TestDiffContextWindow(t *testing.T) {
	var a, b strings.Builder
	for i := 0; i < 40; i++ {
		a.WriteString("ctx\n")
		b.WriteString("ctx\n")
	}
	b.WriteString("tail\n")
	d := Diff("f", "f", a.String(), b.String(), 2)
	// Only 2 context lines + 1 added line should appear.
	lines := strings.Split(strings.TrimSpace(d), "\n")
	// header(2) + hunk(1) + 2 ctx + 1 add = 6
	if len(lines) != 6 {
		t.Errorf("lines = %d, want 6:\n%s", len(lines), d)
	}
}

func TestDiffMultipleHunks(t *testing.T) {
	var al, bl []string
	for i := 0; i < 30; i++ {
		al = append(al, "same")
		bl = append(bl, "same")
	}
	al[2] = "old-head"
	bl[2] = "new-head"
	al[27] = "old-tail"
	bl[27] = "new-tail"
	d := Diff("f", "f", strings.Join(al, "\n")+"\n", strings.Join(bl, "\n")+"\n", 2)
	hunks := 0
	for _, line := range strings.Split(d, "\n") {
		if strings.HasPrefix(line, "@@") {
			hunks++
		}
	}
	if hunks != 2 {
		t.Errorf("want 2 hunks, got %d:\n%s", hunks, d)
	}
}

// Property: the diff reconstructs b when applied conceptually — i.e. the
// equal+added lines in order equal b's lines, and equal+removed equal a's.
func TestDiffReconstruction(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		words := []string{"alpha", "beta", "gamma", "delta"}
		var a, b []string
		for i, op := range ops {
			w := words[int(op)%len(words)]
			switch op % 3 {
			case 0:
				a = append(a, w)
				b = append(b, w)
			case 1:
				a = append(a, w+"-old")
			case 2:
				b = append(b, w+"-new")
			}
			_ = i
		}
		at := strings.Join(a, "\n") + "\n"
		bt := strings.Join(b, "\n") + "\n"
		if len(a) == 0 {
			at = ""
		}
		if len(b) == 0 {
			bt = ""
		}
		d := Diff("f", "f", at, bt, 1000) // full context
		if d == "" {
			return at == bt
		}
		var ra, rb []string
		for _, line := range strings.Split(d, "\n") {
			switch {
			case strings.HasPrefix(line, "--- "), strings.HasPrefix(line, "+++ "),
				strings.HasPrefix(line, "@@"), line == "":
			case strings.HasPrefix(line, "+"):
				rb = append(rb, line[1:])
			case strings.HasPrefix(line, "-"):
				ra = append(ra, line[1:])
			case strings.HasPrefix(line, " "):
				ra = append(ra, line[1:])
				rb = append(rb, line[1:])
			}
		}
		return strings.Join(ra, "\n") == strings.Join(a, "\n") &&
			strings.Join(rb, "\n") == strings.Join(b, "\n")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
