package engine

import (
	"math"
	"strings"
	"time"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/sym"
)

// namedConstants models the kernel macro constants the corpus uses so
// that error-path expressions like -ENOMEM fold to concrete values.
var namedConstants = map[string]int64{
	"NULL": 0, "true": 1, "false": 0,
	"ENOMEM": 12, "EINVAL": 22, "EFAULT": 14, "EBUSY": 16, "ENODEV": 19,
	"EIO": 5, "EAGAIN": 11, "ENOSPC": 28, "EPERM": 1, "ERANGE": 34,
	"GFP_KERNEL": 3264, "GFP_ATOMIC": 2080, "GFP_NOWAIT": 2048,
	"U8_MAX": 0xFF, "U16_MAX": 0xFFFF, "U32_MAX": 0xFFFFFFFF,
	"INT_MAX": math.MaxInt32, "PAGE_SIZE": 4096, "SZ_4K": 4096,
}

// unsignedBases are primitive type names treated as unsigned for range
// seeding.
var unsignedBases = map[string]bool{
	"size_t": true, "u8": true, "u16": true, "u32": true, "u64": true,
	"bool": true, "gfp_t": true, "dma_addr_t": true, "uintptr_t": true,
}

func isUnsignedType(t minic.Type) bool { return t.Unsigned || unsignedBases[t.Base] }

// evalCheckInterval amortizes the deadline check in evalExpr: one clock
// read per this many expression evaluations. Small enough that a block
// of straight-line code respects FuncTimeout within a few hundred
// evaluations, large enough that the common (no-timeout-set or
// fast-function) case pays only a counter increment.
const evalCheckInterval = 256

// evalExpr evaluates e on the current path, recording the value of every
// visited sub-expression in pc.values (the cache assume() and checkers
// read from). It is also the analysis's hard cancellation point: every
// evalCheckInterval evaluations the per-function deadline is re-checked,
// and an expired budget aborts mid-block via a timeoutAbort panic that
// AnalyzeFunc converts into a truncated, uncacheable TimedOut result.
func (ex *exec) evalExpr(pc *pathCtx, e minic.Expr) sym.Value {
	ex.evals++
	if ex.evals%evalCheckInterval == 0 {
		if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
			panic(timeoutAbort{})
		}
		if ex.canceled() {
			panic(cancelAbort{})
		}
	}
	v := ex.evalExprUncached(pc, e)
	pc.values[e] = v
	return v
}

func (ex *exec) evalExprUncached(pc *pathCtx, e minic.Expr) sym.Value {
	switch x := e.(type) {
	case *minic.IntLit:
		return sym.MakeInt(x.Val)
	case *minic.CharLit:
		if len(x.Val) == 1 {
			return sym.MakeInt(int64(x.Val[0]))
		}
		return sym.MakeInt(0)
	case *minic.StrLit:
		s := ex.arena.NewSymbol("strlit", x.Pos)
		pc.state = pc.state.WithNullness(s, sym.NotNull)
		return sym.MakeSym(s)
	case *minic.Ident:
		if c, ok := namedConstants[x.Name]; ok {
			return sym.MakeInt(c)
		}
		return ex.loadVar(pc, x)
	case *minic.ParenExpr:
		return ex.evalExpr(pc, x.X)
	case *minic.CastExpr:
		return ex.evalExpr(pc, x.X)
	case *minic.SizeofExpr:
		return sym.MakeInt(ex.sizeofValue(x))
	case *minic.UnaryExpr:
		return ex.evalUnary(pc, x)
	case *minic.PostfixExpr:
		return ex.evalIncDec(pc, x.X, x.Op, x.Pos)
	case *minic.BinaryExpr:
		lv := ex.evalExpr(pc, x.X)
		rv := ex.evalExpr(pc, x.Y)
		return ex.foldBinary(x.Op, lv, rv)
	case *minic.AssignExpr:
		return ex.evalAssign(pc, x)
	case *minic.CondExpr:
		cv := ex.evalExpr(pc, x.Cond)
		tv := ex.evalExpr(pc, x.Then)
		ev := ex.evalExpr(pc, x.Else)
		if cv.IsConcreteInt() {
			if cv.Int != 0 {
				return tv
			}
			return ev
		}
		return sym.Unknown
	case *minic.CallExpr:
		return ex.evalCall(pc, x)
	case *minic.MemberExpr:
		r, ptr := ex.memberRegion(pc, x, true)
		return ex.loadRegion(pc, r, &checker.Access{
			PtrValue: ptr, Pointee: r, IsLoad: true, Direct: !x.Arrow,
			FieldName: x.Name, Expr: x, Pos: x.Pos,
		})
	case *minic.IndexExpr:
		r, ptr, idxV, alen := ex.indexRegion(pc, x)
		return ex.loadRegion(pc, r, &checker.Access{
			PtrValue: ptr, Pointee: r, IsLoad: true, Index: idxV,
			ArrayLen: alen, Expr: x, Pos: x.Pos,
		})
	}
	return sym.Unknown
}

func (ex *exec) evalUnary(pc *pathCtx, x *minic.UnaryExpr) sym.Value {
	switch x.Op {
	case minic.Amp:
		r, ok := ex.lvalueRegion(pc, x.X, false)
		if !ok {
			return sym.Unknown
		}
		return sym.MakeLoc(r)
	case minic.Star:
		pv := ex.evalExpr(pc, x.X)
		r := ex.pointeeOf(pv, x.Pos)
		return ex.loadRegion(pc, r, &checker.Access{
			PtrValue: pv, Pointee: r, IsLoad: true, Expr: x, Pos: x.Pos,
		})
	case minic.Inc, minic.Dec:
		return ex.evalIncDec(pc, x.X, x.Op, x.Pos)
	}
	v := ex.evalExpr(pc, x.X)
	if v.IsConcreteInt() {
		switch x.Op {
		case minic.Minus:
			return sym.MakeInt(-v.Int)
		case minic.Bang:
			if v.Int == 0 {
				return sym.MakeInt(1)
			}
			return sym.MakeInt(0)
		case minic.Tilde:
			return sym.MakeInt(^v.Int)
		}
	}
	return sym.Unknown
}

func (ex *exec) evalIncDec(pc *pathCtx, target minic.Expr, op minic.Kind, pos minic.Pos) sym.Value {
	r, ok := ex.lvalueRegion(pc, target, false)
	if !ok {
		return sym.Unknown
	}
	old, _ := pc.state.LookupRegion(r)
	var next sym.Value
	if old.IsConcreteInt() {
		d := int64(1)
		if op == minic.Dec {
			d = -1
		}
		next = sym.MakeInt(old.Int + d)
	} else {
		next = sym.MakeSym(ex.arena.NewSymbol("arith", pos))
	}
	pc.state = pc.state.BindRegion(r, next)
	return old
}

func (ex *exec) evalAssign(pc *pathCtx, x *minic.AssignExpr) sym.Value {
	rv := ex.evalExpr(pc, x.RHS)
	lr, ok := ex.lvalueRegion(pc, x.LHS, true)
	if !ok {
		return rv
	}
	val := rv
	if x.Op != minic.Assign {
		cur, _ := pc.state.LookupRegion(lr)
		var binOp minic.Kind
		switch x.Op {
		case minic.PlusEq:
			binOp = minic.Plus
		case minic.MinusEq:
			binOp = minic.Minus
		case minic.StarEq:
			binOp = minic.Star
		case minic.SlashEq:
			binOp = minic.Slash
		case minic.OrEq:
			binOp = minic.Pipe
		case minic.AndEq:
			binOp = minic.Amp
		}
		val = ex.foldBinary(binOp, cur, rv)
		if val.IsUnknown() {
			val = sym.MakeSym(ex.arena.NewSymbol("arith", x.Pos))
		}
	}
	ev := &checker.BindEvent{Region: lr, Value: val, LHS: x.LHS, RHS: x.RHS, Pos: x.Pos}
	ex.forEachChecker(pc, x.Pos, func(ck checker.Checker, c *checker.Context) {
		if bc, ok := ck.(checker.BindChecker); ok {
			bc.CheckBind(ev, c)
		}
	})
	pc.state = pc.state.BindRegion(lr, val)
	return val
}

func (ex *exec) foldBinary(op minic.Kind, a, b sym.Value) sym.Value {
	if a.IsConcreteInt() && b.IsConcreteInt() {
		x, y := a.Int, b.Int
		switch op {
		case minic.Plus:
			return sym.MakeInt(x + y)
		case minic.Minus:
			return sym.MakeInt(x - y)
		case minic.Star:
			return sym.MakeInt(x * y)
		case minic.Slash:
			if y != 0 {
				return sym.MakeInt(x / y)
			}
		case minic.Percent:
			if y != 0 {
				return sym.MakeInt(x % y)
			}
		case minic.Shl:
			if y >= 0 && y < 63 {
				return sym.MakeInt(x << uint(y))
			}
		case minic.Shr:
			if y >= 0 && y < 63 {
				return sym.MakeInt(x >> uint(y))
			}
		case minic.Amp:
			return sym.MakeInt(x & y)
		case minic.Pipe:
			return sym.MakeInt(x | y)
		case minic.Caret:
			return sym.MakeInt(x ^ y)
		case minic.EqEq:
			return boolVal(x == y)
		case minic.NotEq:
			return boolVal(x != y)
		case minic.Lt:
			return boolVal(x < y)
		case minic.Gt:
			return boolVal(x > y)
		case minic.Le:
			return boolVal(x <= y)
		case minic.Ge:
			return boolVal(x >= y)
		case minic.AmpAmp:
			return boolVal(x != 0 && y != 0)
		case minic.PipePipe:
			return boolVal(x != 0 || y != 0)
		}
	}
	return sym.Unknown
}

func boolVal(b bool) sym.Value {
	if b {
		return sym.MakeInt(1)
	}
	return sym.MakeInt(0)
}

// loadVar loads a plain variable, firing the Location callback.
func (ex *exec) loadVar(pc *pathCtx, id *minic.Ident) sym.Value {
	var r sym.RegionID
	if _, isLocal := ex.decls[id.Name]; isLocal || ex.localDeclared[id.Name] {
		r = ex.arena.VarRegion(id.Name, id.Pos)
	} else {
		r = ex.arena.GlobalRegion(id.Name, id.Pos)
	}
	_, bound := pc.state.LookupRegion(r)
	return ex.loadRegion(pc, r, &checker.Access{
		Pointee: r, IsLoad: true, Direct: true,
		UninitLoad: !bound && ex.localDeclared[id.Name],
		Expr:       id, Pos: id.Pos,
	})
}

// loadRegion returns the value stored in r, conjuring (and binding) a
// fresh symbol for never-written regions, and fires the Location event.
func (ex *exec) loadRegion(pc *pathCtx, r sym.RegionID, ac *checker.Access) sym.Value {
	ex.fireLocation(pc, ac)
	if v, ok := pc.state.LookupRegion(r); ok {
		return v
	}
	s := ex.arena.NewSymbol("load:"+ex.arena.Describe(r), ac.Pos)
	if reg := ex.arena.Region(r); reg != nil {
		if t, ok := ex.typeOfRegion(r); ok && isUnsignedType(t) && !t.IsPointer() {
			pc.state = pc.state.WithRange(s, sym.FullRange.AtLeast(0))
		}
	}
	v := sym.MakeSym(s)
	pc.state = pc.state.BindRegion(r, v)
	return v
}

func (ex *exec) fireLocation(pc *pathCtx, ac *checker.Access) {
	ex.forEachChecker(pc, ac.Pos, func(ck checker.Checker, c *checker.Context) {
		if lc, ok := ck.(checker.LocationChecker); ok {
			lc.CheckLocation(ac, c)
		}
	})
}

// lvalueRegion resolves an expression to the region it denotes. When
// forStore is true the access events fired for any embedded dereference
// are marked as stores.
func (ex *exec) lvalueRegion(pc *pathCtx, e minic.Expr, forStore bool) (sym.RegionID, bool) {
	switch x := minic.Unparen(e).(type) {
	case *minic.Ident:
		if _, isLocal := ex.decls[x.Name]; isLocal || ex.localDeclared[x.Name] {
			return ex.arena.VarRegion(x.Name, x.Pos), true
		}
		return ex.arena.GlobalRegion(x.Name, x.Pos), true
	case *minic.MemberExpr:
		r, ptr := ex.memberRegion(pc, x, false)
		if x.Arrow {
			ex.fireLocation(pc, &checker.Access{
				PtrValue: ptr, Pointee: r, IsLoad: !forStore, FieldName: x.Name,
				Expr: x, Pos: x.Pos,
			})
		}
		return r, true
	case *minic.IndexExpr:
		r, ptr, idxV, alen := ex.indexRegion(pc, x)
		ex.fireLocation(pc, &checker.Access{
			PtrValue: ptr, Pointee: r, IsLoad: !forStore, Index: idxV,
			ArrayLen: alen, Expr: x, Pos: x.Pos,
		})
		return r, true
	case *minic.UnaryExpr:
		if x.Op == minic.Star {
			pv := ex.evalExpr(pc, x.X)
			r := ex.pointeeOf(pv, x.Pos)
			ex.fireLocation(pc, &checker.Access{
				PtrValue: pv, Pointee: r, IsLoad: !forStore, Expr: x, Pos: x.Pos,
			})
			return r, true
		}
	case *minic.CastExpr:
		return ex.lvalueRegion(pc, x.X, forStore)
	}
	return sym.NoRegion, false
}

// memberRegion resolves x.f / x->f to a field region. Returns the region
// and, for arrow accesses, the pointer value that was dereferenced. The
// load event for the *resulting field* is fired by the caller; this
// method does not fire it (it does evaluate the base, which fires base
// events).
func (ex *exec) memberRegion(pc *pathCtx, x *minic.MemberExpr, _ bool) (sym.RegionID, sym.Value) {
	if x.Arrow {
		pv := ex.evalExpr(pc, x.X)
		base := ex.pointeeOf(pv, x.Pos)
		return ex.arena.FieldRegion(base, x.Name, x.Pos), pv
	}
	base, ok := ex.lvalueRegion(pc, x.X, false)
	if !ok {
		pv := ex.evalExpr(pc, x.X)
		base = ex.pointeeOf(pv, x.Pos)
		return ex.arena.FieldRegion(base, x.Name, x.Pos), pv
	}
	return ex.arena.FieldRegion(base, x.Name, x.Pos), sym.Unknown
}

// indexRegion resolves a[i] to an element region; returns region, any
// dereferenced pointer value, the index value, and the declared array
// length (0 when unknown).
func (ex *exec) indexRegion(pc *pathCtx, x *minic.IndexExpr) (sym.RegionID, sym.Value, sym.Value, int) {
	idxV := ex.evalExpr(pc, x.Idx)
	idxConst := int64(-1)
	if idxV.IsConcreteInt() && idxV.Int >= 0 {
		idxConst = idxV.Int
	}
	// Array-typed lvalue base: subscript the array region directly.
	if base, ok := ex.lvalueRegionForArray(pc, x.X); ok {
		alen := 0
		if reg := ex.arena.Region(base); reg != nil {
			alen = reg.ArrayLen
		}
		return ex.arena.ElemRegion(base, idxConst, x.Pos), sym.Unknown, idxV, alen
	}
	// Pointer base: dereference.
	pv := ex.evalExpr(pc, x.X)
	base := ex.pointeeOf(pv, x.Pos)
	alen := 0
	if reg := ex.arena.Region(base); reg != nil {
		alen = reg.ArrayLen
	}
	return ex.arena.ElemRegion(base, idxConst, x.Pos), pv, idxV, alen
}

// lvalueRegionForArray resolves base expressions that denote fixed
// arrays (array-typed variables and array-typed struct fields).
func (ex *exec) lvalueRegionForArray(pc *pathCtx, e minic.Expr) (sym.RegionID, bool) {
	switch x := minic.Unparen(e).(type) {
	case *minic.Ident:
		if t, ok := ex.decls[x.Name]; ok && t.IsArray() {
			r := ex.arena.VarRegion(x.Name, x.Pos)
			ex.arena.SetArrayLen(r, t.ArrayLen)
			return r, true
		}
	case *minic.MemberExpr:
		if ft, ok := ex.fieldType(x); ok && ft.IsArray() {
			r, _ := ex.memberRegion(pc, x, false)
			ex.arena.SetArrayLen(r, ft.ArrayLen)
			if x.Arrow {
				// The base dereference still fires via memberRegion's
				// base evaluation.
				_ = r
			}
			return r, true
		}
	}
	return sym.NoRegion, false
}

// pointeeOf returns the region a pointer value points to, conjuring a
// symbolic region for opaque pointers.
func (ex *exec) pointeeOf(v sym.Value, pos minic.Pos) sym.RegionID {
	switch v.Kind {
	case sym.KindLoc:
		return v.Reg
	case sym.KindSymbol:
		prov := ""
		if info := ex.arena.Symbol(v.Sym); info != nil {
			prov = info.ConjuredBy
		}
		if strings.HasPrefix(prov, "param:") || strings.HasPrefix(prov, "load:") {
			prov = ""
		}
		return ex.arena.SymRegionFor(v.Sym, prov, pos)
	default:
		s := ex.arena.NewSymbol("opaque", pos)
		return ex.arena.SymRegionFor(s, "", pos)
	}
}

// --- calls ---

func (ex *exec) evalCall(pc *pathCtx, call *minic.CallExpr) sym.Value {
	// Annotation wrappers are identity functions.
	if (call.Fun == "unlikely" || call.Fun == "likely") && len(call.Args) == 1 {
		return ex.evalExpr(pc, call.Args[0])
	}

	args := make([]sym.Value, len(call.Args))
	argRegions := make([]sym.RegionID, len(call.Args))
	argPointees := make([]sym.RegionID, len(call.Args))
	for i, a := range call.Args {
		args[i] = ex.evalExpr(pc, a)
		if id, ok := minic.Unparen(a).(*minic.Ident); ok {
			if _, isKnown := ex.decls[id.Name]; isKnown || ex.localDeclared[id.Name] {
				argRegions[i] = ex.arena.VarRegion(id.Name, id.Pos)
			}
		}
		switch args[i].Kind {
		case sym.KindLoc:
			argPointees[i] = args[i].Reg
		case sym.KindSymbol:
			if r, ok := ex.arena.ExistingSymRegion(args[i].Sym); ok {
				argPointees[i] = r
			}
		}
	}

	ev := &checker.CallEvent{
		Callee: call.Fun, Expr: call, Args: args,
		ArgRegions: argRegions, ArgPointees: argPointees, Pos: call.Pos,
	}
	ex.forEachChecker(pc, call.Pos, func(ck checker.Checker, c *checker.Context) {
		if pcc, ok := ck.(checker.PreCallChecker); ok {
			pcc.CheckPreCall(ev, c)
		}
	})

	ret := ex.builtinReturn(pc, call, args)
	ev.Ret = ret
	ex.forEachChecker(pc, call.Pos, func(ck checker.Checker, c *checker.Context) {
		if pcc, ok := ck.(checker.PostCallChecker); ok {
			pcc.CheckPostCall(ev, c)
		}
	})
	return ret
}

// builtinReturn models return values for a small set of pure helpers and
// conjures fresh symbols for everything else.
func (ex *exec) builtinReturn(pc *pathCtx, call *minic.CallExpr, args []sym.Value) sym.Value {
	switch call.Fun {
	case "min", "max":
		if len(args) == 2 {
			return ex.minMax(pc, call.Fun == "min", args[0], args[1], call.Pos)
		}
	case "min_t", "max_t":
		if len(args) == 3 {
			return ex.minMax(pc, call.Fun == "min_t", args[1], args[2], call.Pos)
		}
	case "array_size", "array3_size", "struct_size":
		// Kernel overflow-safe size helpers: non-negative, saturating.
		s := ex.arena.NewSymbol(call.Fun, call.Pos)
		pc.state = pc.state.WithRange(s, sym.FullRange.AtLeast(0))
		return sym.MakeSym(s)
	}
	s := ex.arena.NewSymbol(call.Fun, call.Pos)
	return sym.MakeSym(s)
}

func (ex *exec) minMax(pc *pathCtx, isMin bool, a, b sym.Value, pos minic.Pos) sym.Value {
	ra, rb := pc.state.RangeOf(a), pc.state.RangeOf(b)
	var out sym.Range
	if isMin {
		out = sym.Range{Min: min64(ra.Min, rb.Min), Max: min64(ra.Max, rb.Max)}
	} else {
		out = sym.Range{Min: max64(ra.Min, rb.Min), Max: max64(ra.Max, rb.Max)}
	}
	s := ex.arena.NewSymbol("minmax", pos)
	pc.state = pc.state.WithRange(s, out)
	return sym.MakeSym(s)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- sizeof / type resolution ---

var primitiveSizes = map[string]int64{
	"char": 1, "bool": 1, "u8": 1, "s8": 1,
	"u16": 2, "s16": 2,
	"int": 4, "u32": 4, "s32": 4, "unsigned": 4, "gfp_t": 4, "irqreturn_t": 4,
	"long": 8, "long long": 8, "u64": 8, "s64": 8, "size_t": 8, "ssize_t": 8,
	"loff_t": 8, "dma_addr_t": 8, "uintptr_t": 8, "void": 1,
}

func (ex *exec) sizeofValue(x *minic.SizeofExpr) int64 {
	if x.Type != nil {
		return ex.sizeOfType(*x.Type, 0)
	}
	if t, ok := ex.typeOfExpr(x.X); ok {
		return ex.sizeOfType(t, 0)
	}
	return 8
}

func (ex *exec) sizeOfType(t minic.Type, depth int) int64 {
	if depth > 8 {
		return 8
	}
	var elem int64
	switch {
	case t.Stars > 0:
		elem = 8
	case strings.HasPrefix(t.Base, "struct "):
		name := strings.TrimPrefix(t.Base, "struct ")
		sd := ex.structs[name]
		if sd == nil {
			elem = 8
		} else {
			var total int64
			for _, f := range sd.Fields {
				total += ex.sizeOfType(f.Type, depth+1)
			}
			if total == 0 {
				total = 1
			}
			elem = total
		}
	default:
		if s, ok := primitiveSizes[t.Base]; ok {
			elem = s
		} else {
			elem = 4
		}
	}
	if t.ArrayLen > 0 && t.Stars == 0 {
		return elem * int64(t.ArrayLen)
	}
	return elem
}

// typeOfExpr resolves the static type of simple expressions (enough for
// sizeof(expr) and buffer-length reasoning).
func (ex *exec) typeOfExpr(e minic.Expr) (minic.Type, bool) {
	switch x := minic.Unparen(e).(type) {
	case *minic.Ident:
		t, ok := ex.decls[x.Name]
		return t, ok
	case *minic.UnaryExpr:
		if x.Op == minic.Star {
			t, ok := ex.typeOfExpr(x.X)
			if ok && t.Stars > 0 {
				t.Stars--
				return t, true
			}
		}
	case *minic.MemberExpr:
		return ex.fieldType(x)
	case *minic.IndexExpr:
		t, ok := ex.typeOfExpr(x.X)
		if !ok {
			return t, false
		}
		if t.ArrayLen > 0 {
			t.ArrayLen = 0
			return t, true
		}
		if t.Stars > 0 {
			t.Stars--
			return t, true
		}
	case *minic.CastExpr:
		return x.Type, true
	}
	return minic.Type{}, false
}

// fieldType resolves the declared type of a member access via the
// file's struct table.
func (ex *exec) fieldType(m *minic.MemberExpr) (minic.Type, bool) {
	bt, ok := ex.typeOfExpr(m.X)
	if !ok {
		return minic.Type{}, false
	}
	if !strings.HasPrefix(bt.Base, "struct ") {
		return minic.Type{}, false
	}
	sd := ex.structs[strings.TrimPrefix(bt.Base, "struct ")]
	if sd == nil {
		return minic.Type{}, false
	}
	for _, f := range sd.Fields {
		if f.Name == m.Name {
			return f.Type, true
		}
	}
	return minic.Type{}, false
}

// typeOfRegion resolves the declared type of a var region.
func (ex *exec) typeOfRegion(r sym.RegionID) (minic.Type, bool) {
	reg := ex.arena.Region(r)
	if reg == nil || (reg.Kind != sym.VarRegion && reg.Kind != sym.GlobalRegion) {
		return minic.Type{}, false
	}
	t, ok := ex.decls[reg.Name]
	return t, ok
}
