package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/minic"
)

// progGen emits random but parseable mini-C programs exercising the
// engine's full statement/expression surface.
type progGen struct{ r *rand.Rand }

func (g *progGen) ident() string {
	return []string{"a", "b", "p", "q", "buf", "n", "ret", "dev"}[g.r.Intn(8)]
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return g.ident()
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(100))
		default:
			return "NULL"
		}
	}
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1),
			[]string{"+", "-", "*", "/", "==", "!=", "<", ">", "&&", "||"}[g.r.Intn(10)], g.expr(depth-1))
	case 1:
		return "!" + g.expr(depth-1)
	case 2:
		return fmt.Sprintf("fn_%s(%s)", g.ident(), g.expr(depth-1))
	case 3:
		return g.ident() + "->" + g.ident()
	case 4:
		return fmt.Sprintf("%s[%s]", g.ident(), g.expr(depth-1))
	case 5:
		return "sizeof(" + g.ident() + ")"
	case 6:
		return fmt.Sprintf("unlikely(%s)", g.expr(depth-1))
	case 7:
		return "&" + g.ident()
	default:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	}
}

func (g *progGen) stmt(depth, indent int) string {
	pad := ""
	for i := 0; i < indent; i++ {
		pad += "\t"
	}
	if depth <= 0 {
		return pad + g.ident() + " = " + g.expr(1) + ";\n"
	}
	switch g.r.Intn(7) {
	case 0:
		s := pad + "if (" + g.expr(depth-1) + ") {\n" + g.stmt(depth-1, indent+1)
		if g.r.Intn(2) == 0 {
			s += pad + "} else {\n" + g.stmt(depth-1, indent+1)
		}
		return s + pad + "}\n"
	case 1:
		return pad + "while (" + g.expr(depth-1) + ") {\n" + g.stmt(depth-1, indent+1) + pad + "}\n"
	case 2:
		return pad + "for (int i = 0; i < " + fmt.Sprintf("%d", 1+g.r.Intn(5)) + "; i++) {\n" +
			g.stmt(depth-1, indent+1) + pad + "}\n"
	case 3:
		return pad + "return " + g.expr(depth-1) + ";\n"
	case 4:
		return pad + "fn_" + g.ident() + "(" + g.expr(depth-1) + ");\n"
	case 5:
		return pad + g.ident() + " = " + g.expr(depth-1) + ";\n"
	default:
		return pad + "int v" + g.ident() + " = " + g.expr(depth-1) + ";\n"
	}
}

func (g *progGen) program() string {
	body := ""
	n := 2 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		body += g.stmt(2, 1)
	}
	return "struct s {\n\tint x;\n\tu8 *base;\n};\n\n" +
		"int fuzz_target(struct s *dev, size_t n, int a, int b)\n{\n" +
		"\tchar buf[32];\n\tstruct s *p;\n\tstruct s *q;\n\tint ret;\n" +
		body + "\treturn 0;\n}\n"
}

// fuzzChecker combines every tracking domain so random programs exercise
// all callback paths.
const fuzzCheckerDSL = `
checker fuzz_all {
  bugtype "Null-Pointer-Dereference"
  track aliases
  unwrap "unlikely" "likely"
  source { call "fn_p" yields nullable }
  source { call "fn_q" frees arg 0 }
  source { call "fn_a" yields taint }
  source { decl uninit }
  guard { nullcheck }
  guard { boundcheck }
  guard { assign initializes }
  sink { deref unchecked }
  sink { deref freed }
  sink { index tainted }
  sink { use uninit }
  sink { mul-overflow into "fn_b" arg 0 bits 32 }
}
`

// TestEngineRobustOnRandomPrograms is a property/fuzz test: for hundreds
// of random programs, the engine must terminate within its budgets and
// never crash (checker panics surface as RuntimeErrs; none are expected
// from the DSL-compiled checker).
func TestEngineRobustOnRandomPrograms(t *testing.T) {
	ck := mustFuzzChecker(t)
	for seed := int64(0); seed < 300; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		f, err := minic.ParseFile("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}, MaxSteps: 30000})
		if len(res.RuntimeErrs) != 0 {
			t.Fatalf("seed %d: checker crashed: %v\n%s", seed, res.RuntimeErrs, src)
		}
		if res.Steps > 30000 {
			t.Fatalf("seed %d: engine exceeded step budget", seed)
		}
	}
}

// TestEngineDeterministicOnRandomPrograms re-analyzes random programs and
// requires byte-identical report sets.
func TestEngineDeterministicOnRandomPrograms(t *testing.T) {
	ck := mustFuzzChecker(t)
	for seed := int64(0); seed < 50; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		f, err := minic.ParseFile("fuzz.c", src)
		if err != nil {
			t.Fatal(err)
		}
		a := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
		b := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
		if len(a.Reports) != len(b.Reports) {
			t.Fatalf("seed %d: report counts differ (%d vs %d)", seed, len(a.Reports), len(b.Reports))
		}
		for i := range a.Reports {
			if a.Reports[i].Key() != b.Reports[i].Key() {
				t.Fatalf("seed %d: report %d differs", seed, i)
			}
		}
	}
}

func mustFuzzChecker(t *testing.T) checker.Checker {
	t.Helper()
	ck, err := ckdsl.CompileSource(fuzzCheckerDSL)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}
