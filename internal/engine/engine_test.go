package engine

import (
	"fmt"
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/sym"
)

func parse(t *testing.T, src string) *minic.File {
	t.Helper()
	f, err := minic.ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// recorder logs engine events for introspection tests.
type recorder struct {
	calls     []string
	locations []string
	binds     []string
	branches  []string
	ends      int
	decls     []string
}

func (r *recorder) Name() string    { return "test.Recorder" }
func (r *recorder) BugType() string { return "None" }

func (r *recorder) CheckPostCall(ev *checker.CallEvent, c *checker.Context) {
	r.calls = append(r.calls, ev.Callee)
}

func (r *recorder) CheckLocation(ac *checker.Access, c *checker.Context) {
	kind := "load"
	if !ac.IsLoad {
		kind = "store"
	}
	r.locations = append(r.locations, fmt.Sprintf("%s:%s", kind, c.Describe(ac.Pointee)))
}

func (r *recorder) CheckBind(ev *checker.BindEvent, c *checker.Context) {
	r.binds = append(r.binds, c.Describe(ev.Region))
}

func (r *recorder) CheckBranchCondition(cond minic.Expr, c *checker.Context) {
	r.branches = append(r.branches, minic.FormatExpr(cond))
}

func (r *recorder) CheckEndFunction(ev *checker.ReturnEvent, c *checker.Context) {
	r.ends++
}

func (r *recorder) CheckDecl(d *minic.DeclStmt, region sym.RegionID, c *checker.Context) {
	r.decls = append(r.decls, d.Name)
}

func TestEventsFire(t *testing.T) {
	f := parse(t, `
int f(struct dev *d)
{
	int x = probe(d);
	if (x)
		d->state = 1;
	return x;
}
`)
	rec := &recorder{}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{rec}})
	if len(res.RuntimeErrs) != 0 {
		t.Fatalf("runtime errors: %v", res.RuntimeErrs)
	}
	if len(rec.calls) == 0 || rec.calls[0] != "probe" {
		t.Errorf("calls = %v", rec.calls)
	}
	if len(rec.branches) == 0 {
		t.Error("no branch conditions observed")
	}
	if rec.ends < 2 {
		t.Errorf("ends = %d, want >= 2 (two paths)", rec.ends)
	}
	foundStore := false
	for _, l := range rec.locations {
		if strings.HasPrefix(l, "store:") && strings.Contains(l, "state") {
			foundStore = true
		}
	}
	if !foundStore {
		t.Errorf("no store to d->state observed: %v", rec.locations)
	}
	if len(rec.decls) != 1 || rec.decls[0] != "x" {
		t.Errorf("decls = %v", rec.decls)
	}
}

// assertChecker inspects state at calls to special probe functions.
type assertChecker struct {
	t         *testing.T
	reachable map[string]int
	onProbe   func(name string, ev *checker.CallEvent, c *checker.Context)
}

func (a *assertChecker) Name() string    { return "test.Assert" }
func (a *assertChecker) BugType() string { return "None" }

func (a *assertChecker) CheckPostCall(ev *checker.CallEvent, c *checker.Context) {
	if strings.HasPrefix(ev.Callee, "__probe") {
		a.reachable[ev.Callee]++
		if a.onProbe != nil {
			a.onProbe(ev.Callee, ev, c)
		}
	}
}

func TestInfeasiblePathPruned(t *testing.T) {
	f := parse(t, `
int f(int x)
{
	if (x == 0) {
		if (x != 0)
			__probe_dead();
		__probe_live();
	}
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_dead"] != 0 {
		t.Error("contradictory path was explored")
	}
	if a.reachable["__probe_live"] == 0 {
		t.Error("feasible path was not explored")
	}
}

func TestNullnessConstraintOnBranch(t *testing.T) {
	f := parse(t, `
int f(void)
{
	struct x *p = alloc_thing();
	if (!p)
		return -1;
	__probe_nonnull(p);
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		if name != "__probe_nonnull" {
			return
		}
		if got := c.State().NullnessOf(ev.Arg(0)); got != sym.NotNull {
			t.Errorf("nullness at probe = %v, want non-null", got)
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_nonnull"] != 1 {
		t.Errorf("probe reached %d times, want 1", a.reachable["__probe_nonnull"])
	}
}

func TestRangeConstraintOnBranch(t *testing.T) {
	f := parse(t, `
int f(size_t n)
{
	if (n > 63)
		return -1;
	__probe_small(n);
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		r := c.State().RangeOf(ev.Arg(0))
		if r.CanExceed(63) {
			t.Errorf("range at probe = %v, want <= 63", r)
		}
		if r.CanBeNegative() {
			t.Errorf("size_t param should be non-negative, got %v", r)
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_small"] == 0 {
		t.Error("probe not reached")
	}
}

func TestSizeofFolding(t *testing.T) {
	f := parse(t, `
struct hdr {
	int a;
	char name[16];
};

int f(size_t n)
{
	char mybuf[64];
	if (n > sizeof(mybuf) - 1)
		return -1;
	__probe_bounded(n);
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		r := c.State().RangeOf(ev.Arg(0))
		if r.Max != 63 {
			t.Errorf("range max = %v, want 63", r)
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_bounded"] == 0 {
		t.Error("probe not reached")
	}
}

func TestUnlikelyWrapperTransparentToEngine(t *testing.T) {
	f := parse(t, `
int f(void)
{
	struct x *p = alloc_thing();
	if (unlikely(!p))
		return -1;
	__probe_ok(p);
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		if got := c.State().NullnessOf(ev.Arg(0)); got != sym.NotNull {
			t.Errorf("nullness = %v, want non-null (engine must see through unlikely)", got)
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_ok"] != 1 {
		t.Errorf("probe reached %d times", a.reachable["__probe_ok"])
	}
}

func TestLoopBounding(t *testing.T) {
	f := parse(t, `
int f(int n)
{
	int s = 0;
	while (n > 0) {
		s += n;
		n--;
	}
	return s;
}
`)
	res := AnalyzeFile(f, Options{MaxBlockVisits: 2})
	if res.Steps >= 20000 {
		t.Errorf("loop did not bound: %d steps", res.Steps)
	}
	if res.Paths == 0 {
		t.Error("no paths completed")
	}
}

func TestMinBuiltinConstrainsRange(t *testing.T) {
	f := parse(t, `
int f(size_t nbytes)
{
	char mybuf[64];
	size_t bsize;
	bsize = min(nbytes, sizeof(mybuf) - 1);
	__probe_min(bsize);
	return 0;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		r := c.State().RangeOf(ev.Arg(0))
		if r.CanExceed(63) {
			t.Errorf("min() result range = %v, want <= 63", r)
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_min"] == 0 {
		t.Error("probe not reached")
	}
}

func TestGotoErrorPathStateFlow(t *testing.T) {
	f := parse(t, `
int f(void)
{
	struct x *p = alloc_thing();
	int ret = 0;
	if (!p)
		goto err;
	__probe_nonnull_goto(p);
	return 0;
err:
	__probe_err(p);
	return -1;
}
`)
	a := &assertChecker{t: t, reachable: map[string]int{}}
	a.onProbe = func(name string, ev *checker.CallEvent, c *checker.Context) {
		nl := c.State().NullnessOf(ev.Arg(0))
		switch name {
		case "__probe_nonnull_goto":
			if nl != sym.NotNull {
				t.Errorf("fall-through path: nullness = %v", nl)
			}
		case "__probe_err":
			if nl != sym.IsNull {
				t.Errorf("error path: nullness = %v, want null", nl)
			}
		}
	}
	AnalyzeFile(f, Options{Checkers: []checker.Checker{a}})
	if a.reachable["__probe_err"] == 0 || a.reachable["__probe_nonnull_goto"] == 0 {
		t.Errorf("paths missing: %v", a.reachable)
	}
}

type panicChecker struct{}

func (panicChecker) Name() string    { return "test.Panic" }
func (panicChecker) BugType() string { return "None" }
func (panicChecker) CheckPostCall(ev *checker.CallEvent, c *checker.Context) {
	panic("checker exploded")
}

func TestRuntimeErrorRecovered(t *testing.T) {
	f := parse(t, "int f(void)\n{\n\treturn do_thing();\n}\n")
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{panicChecker{}}})
	if len(res.RuntimeErrs) != 1 {
		t.Fatalf("runtime errors = %d, want 1", len(res.RuntimeErrs))
	}
	re := res.RuntimeErrs[0]
	if re.Checker != "test.Panic" || !strings.Contains(re.Panic, "exploded") {
		t.Errorf("runtime error = %+v", re)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
int f(struct dev *d, int n)
{
	struct buf *b = devm_kzalloc(d, n, 0);
	if (n > 10) {
		b->len = n;
		return 1;
	}
	for (int i = 0; i < n; i++)
		b->data[i] = i;
	return 0;
}
`
	run := func() string {
		f := parse(t, src)
		rec := &recorder{}
		AnalyzeFile(f, Options{Checkers: []checker.Checker{rec}})
		return strings.Join(rec.locations, ",") + "|" + strings.Join(rec.calls, ",")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("non-deterministic run %d:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// --- a hand-written NPD checker mirroring paper Figure 2c ---

type npdChecker struct {
	allocFn  string
	unwrap   []string
	reported []*checker.Report
}

const npdMap = "PossibleNullPtrMap"

func (n *npdChecker) Name() string    { return "test.NPDDevmKzalloc" }
func (n *npdChecker) BugType() string { return "Null-Pointer-Dereference" }

func (n *npdChecker) CheckPostCall(ev *checker.CallEvent, c *checker.Context) {
	if ev.Callee != n.allocFn {
		return
	}
	if key, ok := checker.ValueKey(ev.Ret); ok {
		c.SetState(c.State().SetFact(npdMap, key, false)) // false = unchecked
	}
}

func (n *npdChecker) CheckBranchCondition(cond minic.Expr, c *checker.Context) {
	e := minic.UnwrapCalls(cond, n.unwrap...)
	var target minic.Expr
	switch x := e.(type) {
	case *minic.UnaryExpr: // if (!ptr)
		if x.Op == minic.Bang {
			target = x.X
		}
	case *minic.BinaryExpr: // if (ptr == NULL) / if (ptr != NULL)
		if x.Op == minic.EqEq || x.Op == minic.NotEq {
			if lv := c.ValueOf(x.Y); lv.IsNullConst() {
				target = x.X
			} else if lv := c.ValueOf(x.X); lv.IsNullConst() {
				target = x.Y
			}
		}
	case *minic.Ident: // if (ptr)
		target = x
	}
	if target == nil {
		return
	}
	key, ok := checker.ValueKey(c.ValueOf(target))
	if !ok {
		return
	}
	if _, tracked := c.State().Fact(npdMap, key); tracked {
		c.SetState(c.State().SetFact(npdMap, key, true)) // mark checked
	}
}

func (n *npdChecker) CheckLocation(ac *checker.Access, c *checker.Context) {
	key, ok := checker.ValueKey(ac.PtrValue)
	if !ok {
		return
	}
	if v, tracked := c.State().Fact(npdMap, key); tracked && v == false {
		c.Report(n, "pointer may be NULL when dereferenced", ac.Pointee)
		// Avoid cascading reports for the same pointer on this path.
		c.SetState(c.State().SetFact(npdMap, key, true))
	}
}

func TestNPDCheckerFindsBug(t *testing.T) {
	f := parse(t, `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, sizeof(struct priv), GFP_KERNEL);
	p->count = 0;
	return 0;
}
`)
	ck := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1: %v", len(res.Reports), res.Reports)
	}
	r := res.Reports[0]
	if r.BugType != "Null-Pointer-Dereference" || !strings.Contains(r.RegionAt, "count") {
		t.Errorf("report = %+v", r)
	}
}

func TestNPDCheckerAcceptsPatchedCode(t *testing.T) {
	f := parse(t, `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, sizeof(struct priv), GFP_KERNEL);
	if (!p)
		return -ENOMEM;
	p->count = 0;
	return 0;
}
`)
	ck := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
	if len(res.Reports) != 0 {
		t.Fatalf("reports = %d, want 0: %v", len(res.Reports), res.Reports)
	}
}

func TestNPDCheckerAliasing(t *testing.T) {
	// The alias q = p is checked; deref of p must be recognized as safe
	// because tracking keys on the value (symbol), not the variable.
	f := parse(t, `
int probe(struct dev *d)
{
	struct priv *p = devm_kzalloc(d, 8, GFP_KERNEL);
	struct priv *q = p;
	if (!q)
		return -ENOMEM;
	p->count = 0;
	return 0;
}
`)
	ck := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
	if len(res.Reports) != 0 {
		t.Fatalf("alias-checked pointer misreported: %v", res.Reports)
	}
}

func TestNPDCheckerUnlikelyFalsePositiveAndRefinement(t *testing.T) {
	// A naive checker that does not unwrap unlikely() reports an FP
	// (paper Figure 7); the refined checker (unwrap configured) does not.
	src := `
int reg(struct dev *d)
{
	struct pmx *pmx = devm_kzalloc(d, 8, GFP_KERNEL);
	if (unlikely(!pmx))
		return -ENOMEM;
	pmx->pfc = d;
	return 0;
}
`
	naive := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(parse(t, src), Options{Checkers: []checker.Checker{naive}})
	if len(res.Reports) != 1 {
		t.Fatalf("naive checker reports = %d, want 1 (the FP)", len(res.Reports))
	}
	refined := &npdChecker{allocFn: "devm_kzalloc", unwrap: []string{"unlikely", "likely"}}
	res = AnalyzeFile(parse(t, src), Options{Checkers: []checker.Checker{refined}})
	if len(res.Reports) != 0 {
		t.Fatalf("refined checker reports = %d, want 0", len(res.Reports))
	}
}

func TestReportDeduplication(t *testing.T) {
	// The same deref site reached via two paths must report once.
	f := parse(t, `
int probe(struct dev *d, int flag)
{
	struct priv *p = devm_kzalloc(d, 8, GFP_KERNEL);
	if (flag)
		log_flag();
	p->count = 0;
	return 0;
}
`)
	ck := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (deduplicated)", len(res.Reports))
	}
}

func TestReportHasTrace(t *testing.T) {
	f := parse(t, `
int probe(struct dev *d, int flag)
{
	struct priv *p = devm_kzalloc(d, 8, GFP_KERNEL);
	if (flag)
		p->count = 1;
	return 0;
}
`)
	ck := &npdChecker{allocFn: "devm_kzalloc"}
	res := AnalyzeFile(f, Options{Checkers: []checker.Checker{ck}})
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	if len(res.Reports[0].Trace) == 0 {
		t.Error("report has no path trace")
	}
}
