package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"knighter/internal/checker"
)

// Fingerprint returns a stable content hash of the analysis bounds that
// affect per-function results. Unset bounds hash identically to their
// defaults, so Options{} and Options{MaxPaths: 512, ...} share cache
// entries. Checkers are deliberately excluded: the scan-service cache
// keys them separately, so one engine configuration can be shared across
// many checker runs. Timeout is also excluded — it is a wall-clock
// liveness guard, not a semantic bound, and results it truncates are
// flagged TimedOut and never cached.
func (o Options) Fingerprint() string {
	d := o.withDefaults()
	h := sha256.Sum256([]byte(fmt.Sprintf("engine:v1:%d:%d:%d:%d",
		d.MaxBlockVisits, d.MaxPaths, d.MaxSteps, d.MaxTrace)))
	return hex.EncodeToString(h[:16])
}

// Clone returns a result whose slices do not share backing arrays with
// r, so a cached result can be handed to callers that append to or
// re-sort the slices. Reports themselves are shared: they are immutable
// once emitted.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{Paths: r.Paths, Steps: r.Steps, Truncated: r.Truncated, TimedOut: r.TimedOut, Canceled: r.Canceled}
	if r.Reports != nil {
		out.Reports = make([]*checker.Report, len(r.Reports))
		copy(out.Reports, r.Reports)
	}
	if r.RuntimeErrs != nil {
		out.RuntimeErrs = make([]RuntimeErr, len(r.RuntimeErrs))
		copy(out.RuntimeErrs, r.RuntimeErrs)
	}
	return out
}
