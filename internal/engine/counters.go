package engine

import "sync/atomic"

// Process-wide operational counters. The engine's timeout and
// cancellation guards deliberately fail quiet — a function over budget
// yields a truncated, uncacheable result and the scan moves on — which
// makes them exactly the events an operator cannot see without
// counting: a corpus whose warm-scan latency regressed because one
// pathological function times out on every request looks identical to
// a cache problem from /stats alone. The counters are cumulative and
// monotonic, meant to be exposed as Prometheus counters (kserve wires
// them into /metrics via counter funcs).
var (
	timeouts atomic.Int64
	cancels  atomic.Int64
	crashes  atomic.Int64
)

// Totals is a snapshot of the engine's cumulative operational counters.
type Totals struct {
	// Timeouts counts per-function analyses cut short by
	// Options.Timeout (frame-level or mid-block).
	Timeouts int64
	// Cancels counts per-function analyses aborted by Options.Ctx
	// cancellation, including functions skipped because the context was
	// already done at entry.
	Cancels int64
	// Crashes counts checker panics recovered into RuntimeErrs.
	Crashes int64
}

// CounterTotals snapshots the counters.
func CounterTotals() Totals {
	return Totals{
		Timeouts: timeouts.Load(),
		Cancels:  cancels.Load(),
		Crashes:  crashes.Load(),
	}
}

// countOutcome folds one finished per-function result into the
// process-wide counters (AnalyzeFunc defers it around every analysis,
// whatever path produced the result).
func countOutcome(res *Result) {
	if res.TimedOut {
		timeouts.Add(1)
	}
	if res.Canceled {
		cancels.Add(1)
	}
	if n := len(res.RuntimeErrs); n > 0 {
		crashes.Add(int64(n))
	}
}
