package engine

import (
	"knighter/internal/minic"
	"knighter/internal/sym"
)

// assume returns the state refined by taking the branch on cond, or nil
// when the branch is infeasible under the current constraints. It reads
// sub-expression values from the path's evaluation cache (populated by
// the preceding evalExpr of the condition), so it never re-evaluates and
// never duplicates side effects.
func (ex *exec) assume(pc *pathCtx, cond minic.Expr, branch bool) *sym.State {
	return ex.assumeIn(pc.state, pc, cond, branch)
}

func (ex *exec) assumeIn(st *sym.State, pc *pathCtx, cond minic.Expr, branch bool) *sym.State {
	e := minic.UnwrapCalls(cond, "unlikely", "likely")
	switch x := e.(type) {
	case *minic.UnaryExpr:
		if x.Op == minic.Bang {
			return ex.assumeIn(st, pc, x.X, !branch)
		}
	case *minic.BinaryExpr:
		switch x.Op {
		case minic.AmpAmp:
			if branch {
				s := ex.assumeIn(st, pc, x.X, true)
				if s == nil {
					return nil
				}
				return ex.assumeIn(s, pc, x.Y, true)
			}
			// !(a && b): at least one is false — no single refinement
			// is sound, leave unconstrained (matches a bifurcation-free
			// approximation).
			return st
		case minic.PipePipe:
			if !branch {
				s := ex.assumeIn(st, pc, x.X, false)
				if s == nil {
					return nil
				}
				return ex.assumeIn(s, pc, x.Y, false)
			}
			return st
		case minic.EqEq, minic.NotEq:
			return ex.assumeEquality(st, pc, x, branch)
		case minic.Lt, minic.Gt, minic.Le, minic.Ge:
			return ex.assumeRelational(st, pc, x, branch)
		}
	}
	// Truthiness of a plain value.
	v := pc.values[e]
	switch v.Kind {
	case sym.KindInt:
		if (v.Int != 0) == branch {
			return st
		}
		return nil
	case sym.KindLoc:
		if branch {
			return st
		}
		return nil // a location is never null
	case sym.KindSymbol:
		return ex.constrainTruthiness(st, v.Sym, branch)
	default:
		return st
	}
}

// constrainTruthiness applies "sym != 0" (truthy) or "sym == 0" (falsy).
func (ex *exec) constrainTruthiness(st *sym.State, s sym.SymbolID, truthy bool) *sym.State {
	v := sym.MakeSym(s)
	nl := st.NullnessOf(v)
	r := st.RangeOf(v)
	if truthy {
		if nl == sym.IsNull {
			return nil
		}
		if r.IsSingleton() && r.Min == 0 {
			return nil
		}
		st = st.WithNullness(s, sym.NotNull)
		// Trim a zero endpoint when possible.
		if r.Min == 0 {
			st = st.WithRange(s, r.AtLeast(1))
		}
		return st
	}
	if nl == sym.NotNull {
		return nil
	}
	if !r.Contains(0) {
		return nil
	}
	st = st.WithNullness(s, sym.IsNull)
	return st.WithRange(s, sym.SingletonRange(0))
}

func (ex *exec) assumeEquality(st *sym.State, pc *pathCtx, x *minic.BinaryExpr, branch bool) *sym.State {
	lv, rv := pc.values[minic.UnwrapCalls(x.X, "unlikely", "likely")], pc.values[minic.UnwrapCalls(x.Y, "unlikely", "likely")]
	if v, ok := pc.values[x.X]; ok {
		lv = v
	}
	if v, ok := pc.values[x.Y]; ok {
		rv = v
	}
	wantEqual := (x.Op == minic.EqEq) == branch

	// Both concrete: feasibility only.
	if lv.IsConcreteInt() && rv.IsConcreteInt() {
		if (lv.Int == rv.Int) == wantEqual {
			return st
		}
		return nil
	}
	// Symbol vs concrete (either order).
	s, c, ok := symConstPair(lv, rv)
	if !ok {
		// Loc vs null constant: a Loc can never equal 0.
		if lv.IsLoc() && rv.IsNullConst() || rv.IsLoc() && lv.IsNullConst() {
			if wantEqual {
				return nil
			}
			return st
		}
		return st
	}
	v := sym.MakeSym(s)
	r := st.RangeOf(v)
	nl := st.NullnessOf(v)
	if wantEqual {
		if !r.Contains(c) {
			return nil
		}
		if c == 0 && nl == sym.NotNull {
			return nil
		}
		st = st.WithRange(s, sym.SingletonRange(c))
		if c == 0 {
			st = st.WithNullness(s, sym.IsNull)
		} else {
			st = st.WithNullness(s, sym.NotNull)
		}
		return st
	}
	// Not equal to c.
	if r.IsSingleton() && r.Min == c {
		return nil
	}
	if c == 0 {
		if nl == sym.IsNull {
			return nil
		}
		st = st.WithNullness(s, sym.NotNull)
	}
	// Trim interval endpoints.
	if r.Min == c {
		st = st.WithRange(s, r.AtLeast(c+1))
	} else if r.Max == c {
		st = st.WithRange(s, r.AtMost(c-1))
	}
	return st
}

func (ex *exec) assumeRelational(st *sym.State, pc *pathCtx, x *minic.BinaryExpr, branch bool) *sym.State {
	lv, rv := pc.values[x.X], pc.values[x.Y]
	op := x.Op
	if !branch {
		op = negateRel(op)
	}
	// Concrete-concrete: feasibility.
	if lv.IsConcreteInt() && rv.IsConcreteInt() {
		if relHolds(op, lv.Int, rv.Int) {
			return st
		}
		return nil
	}
	// sym REL const
	if lv.IsSymbol() && rv.IsConcreteInt() {
		return constrainRel(st, lv.Sym, op, rv.Int)
	}
	// const REL sym  ==>  sym (flipped REL) const
	if rv.IsSymbol() && lv.IsConcreteInt() {
		return constrainRel(st, rv.Sym, flipRel(op), lv.Int)
	}
	return st
}

func negateRel(op minic.Kind) minic.Kind {
	switch op {
	case minic.Lt:
		return minic.Ge
	case minic.Ge:
		return minic.Lt
	case minic.Gt:
		return minic.Le
	case minic.Le:
		return minic.Gt
	}
	return op
}

func flipRel(op minic.Kind) minic.Kind {
	switch op {
	case minic.Lt:
		return minic.Gt
	case minic.Gt:
		return minic.Lt
	case minic.Le:
		return minic.Ge
	case minic.Ge:
		return minic.Le
	}
	return op
}

func relHolds(op minic.Kind, a, b int64) bool {
	switch op {
	case minic.Lt:
		return a < b
	case minic.Gt:
		return a > b
	case minic.Le:
		return a <= b
	case minic.Ge:
		return a >= b
	}
	return true
}

// constrainRel refines "sym OP c"; returns nil when infeasible.
func constrainRel(st *sym.State, s sym.SymbolID, op minic.Kind, c int64) *sym.State {
	v := sym.MakeSym(s)
	r := st.RangeOf(v)
	switch op {
	case minic.Lt:
		r = r.AtMost(c - 1)
	case minic.Le:
		r = r.AtMost(c)
	case minic.Gt:
		r = r.AtLeast(c + 1)
	case minic.Ge:
		r = r.AtLeast(c)
	}
	if r.IsEmpty() {
		return nil
	}
	st = st.WithRange(s, r)
	// A strictly positive or strictly negative value is non-null.
	if !r.Contains(0) {
		st = st.WithNullness(s, sym.NotNull)
	}
	return st
}

func symConstPair(a, b sym.Value) (sym.SymbolID, int64, bool) {
	if a.IsSymbol() && b.IsConcreteInt() {
		return a.Sym, b.Int, true
	}
	if b.IsSymbol() && a.IsConcreteInt() {
		return b.Sym, a.Int, true
	}
	return 0, 0, false
}
