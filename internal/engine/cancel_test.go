package engine

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestCanceledContextAbortsImmediately: a context canceled before the
// call yields a flagged, truncated result without building the CFG.
func TestCanceledContextAbortsImmediately(t *testing.T) {
	f := parse(t, timeoutSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := AnalyzeFunc(f, f.Funcs[0], Options{Ctx: ctx})
	if !res.Canceled || !res.Truncated {
		t.Fatalf("Canceled=%v Truncated=%v, want both true", res.Canceled, res.Truncated)
	}
	if res.TimedOut {
		t.Fatal("cancellation misreported as a timeout")
	}
	if res.Steps != 0 {
		t.Fatalf("pre-canceled analysis did %d steps", res.Steps)
	}
}

// TestCancellationMidBlock mirrors TestHardCancellationMidBlock for the
// context path: one enormous straight-line block is a single frame, so
// only the eval-level amortized check can see a cancellation that
// arrives mid-block.
func TestCancellationMidBlock(t *testing.T) {
	var b strings.Builder
	b.WriteString("int grind(int a)\n{\n\tint x = 0;\n")
	for i := 0; i < 120000; i++ {
		b.WriteString("\tx = x + a;\n")
	}
	b.WriteString("\treturn x;\n}\n")
	f := parse(t, b.String())

	// An un-canceled context changes nothing.
	full := AnalyzeFunc(f, f.Funcs[0], Options{Ctx: context.Background()})
	if full.Canceled || full.Truncated {
		t.Fatalf("live context aborted analysis: Canceled=%v Truncated=%v", full.Canceled, full.Truncated)
	}

	// Cancel 2ms in: 120k statements cannot finish that fast, so the
	// abort must land mid-block via the evaluator's amortized check.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cut := AnalyzeFunc(f, f.Funcs[0], Options{Ctx: ctx})
	elapsed := time.Since(start)
	if !cut.Canceled || !cut.Truncated {
		t.Fatalf("Canceled=%v Truncated=%v, want both true (mid-block cancellation)", cut.Canceled, cut.Truncated)
	}
	if cut.TimedOut {
		t.Fatal("cancellation misreported as a timeout")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(cut.RuntimeErrs) != 0 {
		t.Fatalf("cancellation recorded as a checker crash: %v", cut.RuntimeErrs)
	}
}

// TestCtxExcludedFromFingerprint: like Timeout, the context is an
// operational guard — it must not fragment the cache key space.
func TestCtxExcludedFromFingerprint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plain := Options{}
	withCtx := Options{Ctx: ctx}
	if plain.Fingerprint() != withCtx.Fingerprint() {
		t.Fatal("Ctx changed the engine fingerprint")
	}
}

// TestCanceledSurvivesMergeAndClone: the flag must propagate like
// TimedOut, or a canceled per-function result could be folded into a
// file result that looks complete.
func TestCanceledSurvivesMergeAndClone(t *testing.T) {
	r := &Result{}
	r.Merge(&Result{Canceled: true})
	if !r.Canceled {
		t.Fatal("Merge dropped Canceled")
	}
	if !r.Clone().Canceled {
		t.Fatal("Clone dropped Canceled")
	}
}
