package engine

import (
	"testing"
	"time"
)

const timeoutSrc = `
int work(int n)
{
	int acc = 0;
	int i = 0;
	while (i < n) {
		if (acc > 100) {
			acc = acc - 1;
		} else {
			acc = acc + 2;
		}
		i = i + 1;
	}
	return acc;
}
`

func TestTimeoutTruncatesAndFlags(t *testing.T) {
	f := parse(t, timeoutSrc)

	full := AnalyzeFunc(f, f.Funcs[0], Options{})
	if full.TimedOut {
		t.Fatal("unbounded analysis flagged as timed out")
	}
	if full.Paths == 0 {
		t.Fatal("unbounded analysis explored no paths")
	}

	// A 1ns budget is always exceeded by the first deadline check, so
	// the result must come back truncated and flagged, regardless of
	// machine speed.
	cut := AnalyzeFunc(f, f.Funcs[0], Options{Timeout: time.Nanosecond})
	if !cut.TimedOut || !cut.Truncated {
		t.Fatalf("TimedOut=%v Truncated=%v, want both true", cut.TimedOut, cut.Truncated)
	}
	if cut.Steps >= full.Steps {
		t.Fatalf("timed-out analysis did %d steps, full analysis %d", cut.Steps, full.Steps)
	}
}

func TestTimeoutExcludedFromFingerprint(t *testing.T) {
	a := Options{}.Fingerprint()
	b := Options{Timeout: time.Second}.Fingerprint()
	if a != b {
		t.Fatal("Timeout changed the engine fingerprint; timed-out results are uncacheable, so the bound must not fragment the cache")
	}
}

func TestTimeoutSurvivesMergeAndClone(t *testing.T) {
	r := &Result{}
	r.Merge(&Result{TimedOut: true})
	if !r.TimedOut {
		t.Fatal("Merge dropped TimedOut")
	}
	if !r.Clone().TimedOut {
		t.Fatal("Clone dropped TimedOut")
	}
}
