package engine

import (
	"strings"
	"testing"
	"time"
)

const timeoutSrc = `
int work(int n)
{
	int acc = 0;
	int i = 0;
	while (i < n) {
		if (acc > 100) {
			acc = acc - 1;
		} else {
			acc = acc + 2;
		}
		i = i + 1;
	}
	return acc;
}
`

func TestTimeoutTruncatesAndFlags(t *testing.T) {
	f := parse(t, timeoutSrc)

	full := AnalyzeFunc(f, f.Funcs[0], Options{})
	if full.TimedOut {
		t.Fatal("unbounded analysis flagged as timed out")
	}
	if full.Paths == 0 {
		t.Fatal("unbounded analysis explored no paths")
	}

	// A 1ns budget is always exceeded by the first deadline check, so
	// the result must come back truncated and flagged, regardless of
	// machine speed.
	cut := AnalyzeFunc(f, f.Funcs[0], Options{Timeout: time.Nanosecond})
	if !cut.TimedOut || !cut.Truncated {
		t.Fatalf("TimedOut=%v Truncated=%v, want both true", cut.TimedOut, cut.Truncated)
	}
	if cut.Steps >= full.Steps {
		t.Fatalf("timed-out analysis did %d steps, full analysis %d", cut.Steps, full.Steps)
	}
}

// TestHardCancellationMidBlock pins the interruptible-analysis
// guarantee: a single enormous straight-line block is ONE frame, so the
// frame-level deadline check in run() sees it only at entry — the
// eval-level check must abort it mid-block. Without hard cancellation
// this function runs every statement to completion and comes back
// without the TimedOut flag.
func TestHardCancellationMidBlock(t *testing.T) {
	var b strings.Builder
	b.WriteString("int grind(int a)\n{\n\tint x = 0;\n")
	for i := 0; i < 120000; i++ {
		b.WriteString("\tx = x + a;\n")
	}
	b.WriteString("\treturn x;\n}\n")
	f := parse(t, b.String())

	// Unbounded: the whole block executes, no spurious aborts.
	full := AnalyzeFunc(f, f.Funcs[0], Options{})
	if full.TimedOut || full.Truncated {
		t.Fatalf("unbounded analysis aborted: TimedOut=%v Truncated=%v", full.TimedOut, full.Truncated)
	}

	// A 2ms budget expires while the block is still executing (120k
	// statements cannot finish that fast), long after the only
	// frame-level check already passed.
	start := time.Now()
	cut := AnalyzeFunc(f, f.Funcs[0], Options{Timeout: 2 * time.Millisecond})
	elapsed := time.Since(start)
	if !cut.TimedOut || !cut.Truncated {
		t.Fatalf("TimedOut=%v Truncated=%v, want both true (mid-block cancellation)", cut.TimedOut, cut.Truncated)
	}
	// Generous bound: the abort must land near the budget, not after the
	// block drains (the unbounded run above takes far longer than this).
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, budget was 2ms", elapsed)
	}
	if len(cut.RuntimeErrs) != 0 {
		t.Fatalf("timeout recorded as a checker crash: %v", cut.RuntimeErrs)
	}
}

func TestTimeoutExcludedFromFingerprint(t *testing.T) {
	a := Options{}.Fingerprint()
	b := Options{Timeout: time.Second}.Fingerprint()
	if a != b {
		t.Fatal("Timeout changed the engine fingerprint; timed-out results are uncacheable, so the bound must not fragment the cache")
	}
}

func TestTimeoutSurvivesMergeAndClone(t *testing.T) {
	r := &Result{}
	r.Merge(&Result{TimedOut: true})
	if !r.TimedOut {
		t.Fatal("Merge dropped TimedOut")
	}
	if !r.Clone().TimedOut {
		t.Fatal("Clone dropped TimedOut")
	}
}
