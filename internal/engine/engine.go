// Package engine implements the path-sensitive symbolic execution core —
// the reproduction's analog of the Clang Static Analyzer (paper §2.1).
//
// It walks each function's CFG, threading immutable sym.States along
// every feasible path (an exploded graph), dispatches checker callbacks
// at program points, applies branch constraints, bounds loops, and
// collects deduplicated bug reports.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"knighter/internal/cfg"
	"knighter/internal/checker"
	"knighter/internal/minic"
	"knighter/internal/sym"
)

// Options configures an analysis run.
type Options struct {
	Checkers []checker.Checker
	// MaxBlockVisits bounds per-path loop iterations (default 2).
	MaxBlockVisits int
	// MaxPaths bounds the number of completed paths per function
	// (default 512).
	MaxPaths int
	// MaxSteps is a global per-function work bound (default 20000).
	MaxSteps int
	// MaxTrace bounds the recorded path-trace length (default 24).
	MaxTrace int
	// Timeout is a wall-clock budget for analyzing one function (0 = no
	// budget). Unlike the Max* bounds it is an operational guard, not a
	// semantic one: a function that exceeds it gets a truncated result
	// flagged TimedOut, which the scan-service cache refuses to store.
	// It is deliberately excluded from Fingerprint. The budget is
	// enforced both between frames and — via the evaluator's amortized
	// deadline check — in the middle of a single enormous block.
	Timeout time.Duration
	// Ctx, when non-nil, lets the caller abort analysis early: its
	// cancellation is checked at the same amortized points as the
	// deadline, yielding a truncated result flagged Canceled. Like
	// Timeout it is an operational guard excluded from Fingerprint, and
	// canceled results must never be cached — they reflect where the
	// caller gave up, not what the function contains.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxBlockVisits <= 0 {
		o.MaxBlockVisits = 2
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 512
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20000
	}
	if o.MaxTrace <= 0 {
		o.MaxTrace = 24
	}
	return o
}

// Result accumulates the outcome of analyzing one or more functions.
type Result struct {
	Reports   []*checker.Report
	Paths     int
	Steps     int
	Truncated bool
	// TimedOut marks a result cut short by Options.Timeout. Timed-out
	// results are nondeterministic (they depend on wall-clock speed) and
	// must never be cached.
	TimedOut bool `json:",omitempty"`
	// Canceled marks a result cut short by Options.Ctx cancellation.
	// Like TimedOut it reflects the caller's circumstances, not the
	// function's content, and must never be cached.
	Canceled bool `json:",omitempty"`
	// RuntimeErrs records checker crashes ("the analyzer encountered
	// problems on source files"), keyed by function.
	RuntimeErrs []RuntimeErr
}

// RuntimeErr describes a checker crash during analysis of a function.
type RuntimeErr struct {
	Func    string
	Checker string
	Panic   string
}

func (e RuntimeErr) Error() string {
	return fmt.Sprintf("analyzer crash in %s (checker %s): %s", e.Func, e.Checker, e.Panic)
}

// Merge folds other into r.
func (r *Result) Merge(other *Result) {
	seen := map[string]bool{}
	for _, rep := range r.Reports {
		seen[rep.Key()] = true
	}
	for _, rep := range other.Reports {
		if !seen[rep.Key()] {
			seen[rep.Key()] = true
			r.Reports = append(r.Reports, rep)
		}
	}
	r.Paths += other.Paths
	r.Steps += other.Steps
	r.Truncated = r.Truncated || other.Truncated
	r.TimedOut = r.TimedOut || other.TimedOut
	r.Canceled = r.Canceled || other.Canceled
	r.RuntimeErrs = append(r.RuntimeErrs, other.RuntimeErrs...)
}

// AnalyzeFile analyzes every function in the file.
func AnalyzeFile(file *minic.File, opts Options) *Result {
	total := &Result{}
	for _, fn := range file.Funcs {
		total.Merge(AnalyzeFunc(file, fn, opts))
	}
	return total
}

// AnalyzeFunc analyzes a single function. A checker panic is recovered
// and recorded as a RuntimeErr on the result (the analog of CSA's "the
// analyzer encountered problems on source files").
func AnalyzeFunc(file *minic.File, fn *minic.FuncDecl, opts Options) (res *Result) {
	opts = opts.withDefaults()
	res = &Result{}
	// Registered before the recover defer so it runs after it (LIFO):
	// by then the sentinel panics have been folded into the result's
	// flags and every exit path — early cancel, CFG failure, sentinel,
	// checker crash, clean finish — is counted from one place.
	defer func() { countOutcome(res) }()
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		// Already canceled: do not even build the CFG.
		res.Truncated = true
		res.Canceled = true
		return res
	}
	graph, err := cfg.Build(fn)
	if err != nil {
		// Malformed control flow: skip the function (parity with CSA,
		// which skips bodies it cannot lower).
		return res
	}
	ex := &exec{
		file:    file,
		fn:      fn,
		graph:   graph,
		arena:   sym.NewArena(),
		opts:    opts,
		res:     res,
		reports: map[string]*checker.Report{},
		structs: map[string]*minic.StructDecl{},
		decls:   map[string]minic.Type{},
		visited: map[visitKey]bool{},
	}
	if opts.Timeout > 0 {
		ex.deadline = time.Now().Add(opts.Timeout)
	}
	if opts.Ctx != nil {
		ex.done = opts.Ctx.Done()
	}
	for _, s := range file.Structs {
		ex.structs[s.Name] = s
	}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(timeoutAbort); ok {
				// Hard cancellation: the eval-level deadline check fired
				// mid-block. The partial result is truncated exactly like a
				// frame-level timeout, and equally uncacheable.
				res.Truncated = true
				res.TimedOut = true
				return
			}
			if _, ok := p.(cancelAbort); ok {
				// The caller's context was canceled mid-block (client
				// disconnect, shutdown): same unwinding, different flag.
				res.Truncated = true
				res.Canceled = true
				return
			}
			res.RuntimeErrs = append(res.RuntimeErrs, RuntimeErr{
				Func: fn.Name, Checker: ex.activeChecker, Panic: fmt.Sprint(p),
			})
		}
	}()
	ex.run()
	return res
}

// timeoutAbort is the panic sentinel the evaluator throws when the
// per-function deadline passes in the middle of a block, unwinding
// straight out of an arbitrarily deep expression walk. It is recovered
// in AnalyzeFunc, never escapes the package, and must not be confused
// with a checker crash.
type timeoutAbort struct{}

// cancelAbort is the same mechanism for Options.Ctx cancellation.
type cancelAbort struct{}

type visitKey struct {
	block int
	fp    string
}

// exec holds per-function analysis machinery shared across all paths.
type exec struct {
	file    *minic.File
	fn      *minic.FuncDecl
	graph   *cfg.Graph
	arena   *sym.Arena
	opts    Options
	res     *Result
	reports map[string]*checker.Report
	structs map[string]*minic.StructDecl
	decls   map[string]minic.Type // declared types of params/locals/globals
	visited map[visitKey]bool
	// deadline is the wall-clock cutoff for this function's analysis
	// (zero = unbounded).
	deadline time.Time
	// done is the caller's cancellation signal (nil = none), checked at
	// the same amortized points as the deadline.
	done <-chan struct{}
	// evals counts expression evaluations; every evalCheckInterval of
	// them the deadline is re-checked, so even one enormous block — which
	// the frame-level check in run() only sees at entry — cannot outlive
	// its budget.
	evals int
	// localDeclared tracks names declared as locals so uninitialized
	// loads can be flagged.
	localDeclared map[string]bool
	activeChecker string
}

// frame is one pending exploded node: a CFG block to execute with an
// incoming state.
type frame struct {
	block  *cfg.Block
	state  *sym.State
	visits map[int]int
	trace  []checker.TraceStep
}

func (ex *exec) run() {
	init := sym.NewState()
	ex.localDeclared = map[string]bool{}
	// Bind parameters to fresh symbols.
	for _, p := range ex.fn.Params {
		r := ex.arena.VarRegion(p.Name, p.Pos)
		s := ex.arena.NewSymbol("param:"+p.Name, p.Pos)
		init = init.BindRegion(r, sym.MakeSym(s))
		if isUnsignedType(p.Type) && !p.Type.IsPointer() {
			init = init.WithRange(s, sym.FullRange.AtLeast(0))
		}
		ex.decls[p.Name] = p.Type
		if p.Type.IsArray() {
			ex.arena.SetArrayLen(r, p.Type.ArrayLen)
		}
	}
	for _, g := range ex.file.Globals {
		ex.decls[g.Name] = g.Type
	}
	stack := []*frame{{block: ex.graph.Entry(), state: init, visits: map[int]int{}}}
	for len(stack) > 0 {
		ex.res.Steps++
		if ex.res.Steps > ex.opts.MaxSteps || ex.res.Paths >= ex.opts.MaxPaths {
			ex.res.Truncated = true
			return
		}
		// The deadline and cancellation checks are amortized over 16 steps
		// so unbounded-speed paths do not pay a clock read per frame.
		if ex.res.Steps&15 == 1 {
			if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
				ex.res.Truncated = true
				ex.res.TimedOut = true
				return
			}
			if ex.canceled() {
				ex.res.Truncated = true
				ex.res.Canceled = true
				return
			}
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		f.visits[f.block.ID]++
		if f.visits[f.block.ID] > ex.opts.MaxBlockVisits {
			continue // loop bound reached; abandon path
		}
		vk := visitKey{block: f.block.ID, fp: f.state.Fingerprint()}
		if ex.visited[vk] {
			continue // already explored this block with this state
		}
		ex.visited[vk] = true

		pc := &pathCtx{ex: ex, state: f.state, trace: f.trace, values: map[minic.Expr]sym.Value{}}
		for _, s := range f.block.Stmts {
			pc.values = map[minic.Expr]sym.Value{}
			ex.execStmt(pc, s)
			if pc.dead {
				break
			}
		}
		if pc.dead {
			ex.res.Paths++
			continue
		}
		switch t := f.block.Term.(type) {
		case *cfg.Return:
			pc.values = map[minic.Expr]sym.Value{}
			var rv sym.Value
			if t.X != nil {
				rv = ex.evalExpr(pc, t.X)
			}
			ev := &checker.ReturnEvent{Expr: t.X, Value: rv, Pos: t.Pos}
			ex.forEachChecker(pc, t.Pos, func(ck checker.Checker, c *checker.Context) {
				if ec, ok := ck.(checker.EndFunctionChecker); ok {
					ec.CheckEndFunction(ev, c)
				}
			})
			ex.res.Paths++
		case *cfg.Jump:
			stack = append(stack, &frame{block: t.To, state: pc.state, visits: cloneVisits(f.visits), trace: pc.trace})
		case *cfg.Branch:
			pc.values = map[minic.Expr]sym.Value{}
			ex.evalExpr(pc, t.Cond) // populate value cache (with side effects once)
			ex.forEachChecker(pc, t.Pos, func(ck checker.Checker, c *checker.Context) {
				if bc, ok := ck.(checker.BranchChecker); ok {
					bc.CheckBranchCondition(t.Cond, c)
				}
			})
			condDesc := minic.FormatExpr(t.Cond)
			if st := ex.assume(pc, t.Cond, false); st != nil {
				tr := appendTrace(ex.opts, pc.trace, checker.TraceStep{Pos: t.Pos, Note: "assuming '" + condDesc + "' is false"})
				stack = append(stack, &frame{block: t.Else, state: st, visits: cloneVisits(f.visits), trace: tr})
			} else {
				ex.res.Paths++
			}
			if st := ex.assume(pc, t.Cond, true); st != nil {
				tr := appendTrace(ex.opts, pc.trace, checker.TraceStep{Pos: t.Pos, Note: "assuming '" + condDesc + "' is true"})
				stack = append(stack, &frame{block: t.Then, state: st, visits: cloneVisits(f.visits), trace: tr})
			} else {
				ex.res.Paths++
			}
		}
	}
}

// canceled reports (non-blockingly) whether the caller's context is done.
func (ex *exec) canceled() bool {
	if ex.done == nil {
		return false
	}
	select {
	case <-ex.done:
		return true
	default:
		return false
	}
}

func cloneVisits(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// appendTrace appends without sharing backing arrays between paths.
func appendTrace(opts Options, trace []checker.TraceStep, step checker.TraceStep) []checker.TraceStep {
	if len(trace) >= opts.MaxTrace {
		return trace
	}
	out := make([]checker.TraceStep, len(trace), len(trace)+1)
	copy(out, trace)
	return append(out, step)
}

// pathCtx is the mutable evaluation context for one block execution on
// one path.
type pathCtx struct {
	ex     *exec
	state  *sym.State
	values map[minic.Expr]sym.Value
	trace  []checker.TraceStep
	dead   bool
}

// forEachChecker invokes fn for every registered checker with a fresh
// Context, propagating state updates and report emission.
func (ex *exec) forEachChecker(pc *pathCtx, pos minic.Pos, fn func(checker.Checker, *checker.Context)) {
	for _, ck := range ex.opts.Checkers {
		ex.activeChecker = ck.Name()
		c := checker.NewContext(ex.arena, pc.state, pc.values, pc.trace,
			ex.fn.Name, ex.file.Name, pos, ex.decls, ex.addReport)
		fn(ck, c)
		pc.state = c.State()
	}
	ex.activeChecker = ""
}

func (ex *exec) addReport(r *checker.Report) {
	k := r.Key()
	if _, dup := ex.reports[k]; dup {
		return
	}
	ex.reports[k] = r
	ex.res.Reports = append(ex.res.Reports, r)
	sort.SliceStable(ex.res.Reports, func(i, j int) bool {
		a, b := ex.res.Reports[i], ex.res.Reports[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Checker < b.Checker
	})
}

// execStmt executes one simple statement on the current path.
func (ex *exec) execStmt(pc *pathCtx, s minic.Stmt) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		r := ex.arena.VarRegion(st.Name, st.Pos)
		ex.decls[st.Name] = st.Type
		ex.localDeclared[st.Name] = true
		if st.Type.IsArray() {
			ex.arena.SetArrayLen(r, st.Type.ArrayLen)
		}
		ex.forEachChecker(pc, st.Pos, func(ck checker.Checker, c *checker.Context) {
			if dc, ok := ck.(checker.DeclChecker); ok {
				dc.CheckDecl(st, r, c)
			}
		})
		if st.Init != nil {
			v := ex.evalExpr(pc, st.Init)
			ev := &checker.BindEvent{Region: r, Value: v, IsInit: true, RHS: st.Init, Pos: st.Pos}
			ex.forEachChecker(pc, st.Pos, func(ck checker.Checker, c *checker.Context) {
				if bc, ok := ck.(checker.BindChecker); ok {
					bc.CheckBind(ev, c)
				}
			})
			pc.state = pc.state.BindRegion(r, v)
		}
	case *minic.ExprStmt:
		ex.evalExpr(pc, st.X)
	default:
		// cfg lowering leaves only Decl/Expr statements in blocks.
	}
}
