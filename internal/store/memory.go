package store

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"

	"knighter/internal/engine"
)

// DefaultMemoryBytes bounds the in-memory tier when the caller passes a
// non-positive capacity: 64 MiB of serialized results, room for a
// full-scale corpus (a few thousand functions) times a handful of live
// checker fingerprints even when reports are verbose.
const DefaultMemoryBytes = 64 << 20

// Memory is the in-memory LRU tier, bounded by the total serialized size
// of its entries rather than their count — a pathological checker that
// caches huge report lists displaces proportionally more small entries,
// instead of hiding behind a per-entry quota.
type Memory struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	// byFunc indexes live entry IDs by their key's FuncHash so corpus
	// mutation can drop a function's entries without a full sweep.
	byFunc map[string]map[string]*list.Element
	stats  Stats
}

type memEntry struct {
	id       string
	funcHash string
	weight   int64
	res      *engine.Result
}

// weigh returns r's serialized size — the entry's eviction weight, and
// the same bytes a disk-tier entry would occupy. A result that fails to
// marshal (impossible for engine.Result in practice) gets a conservative
// flat weight rather than a free ride.
func weigh(r *engine.Result) int64 {
	data, err := json.Marshal(r)
	if err != nil {
		return 1 << 10
	}
	return int64(len(data))
}

// NewMemory returns an LRU store holding at most maxBytes of serialized
// results (DefaultMemoryBytes when maxBytes <= 0).
func NewMemory(maxBytes int64) *Memory {
	if maxBytes <= 0 {
		maxBytes = DefaultMemoryBytes
	}
	return &Memory{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		byFunc:   map[string]map[string]*list.Element{},
	}
}

// Get implements Store. The context is unused — a map lookup has no
// network wait to abort.
func (m *Memory) Get(_ context.Context, k Key) (*engine.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k.ID()]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).res.Clone(), true
}

// Put implements Store.
func (m *Memory) Put(_ context.Context, k Key, r *engine.Result) {
	if r == nil {
		return
	}
	id := k.ID()
	stored := r.Clone()
	w := weigh(stored)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if el, ok := m.entries[id]; ok {
		e := el.Value.(*memEntry)
		m.bytes += w - e.weight
		e.res, e.weight = stored, w
		m.ll.MoveToFront(el)
		m.evictLocked()
		return
	}
	el := m.ll.PushFront(&memEntry{id: id, funcHash: k.FuncHash, weight: w, res: stored})
	m.entries[id] = el
	if m.byFunc[k.FuncHash] == nil {
		m.byFunc[k.FuncHash] = map[string]*list.Element{}
	}
	m.byFunc[k.FuncHash][id] = el
	m.bytes += w
	m.evictLocked()
}

// evictLocked drops least-recently-used entries until the tier is back
// under its byte budget. The most recent entry is always kept, even when
// it alone exceeds the budget: refusing oversized entries would disable
// caching for exactly the functions that are most expensive to
// recompute.
func (m *Memory) evictLocked() {
	for m.bytes > m.maxBytes && m.ll.Len() > 1 {
		m.removeLocked(m.ll.Back())
		m.stats.Evictions++
	}
}

// InvalidateFunc implements Invalidator: it drops every entry keyed by
// funcHash (any checker or engine fingerprint).
func (m *Memory) InvalidateFunc(funcHash string) int {
	return m.InvalidateFuncs([]string{funcHash})
}

// InvalidateFuncs implements BulkInvalidator: one lock acquisition drops
// the entries of every given hash (a changeset's whole orphan set).
func (m *Memory) InvalidateFuncs(funcHashes []string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, fh := range funcHashes {
		ids := m.byFunc[fh]
		n += len(ids)
		for _, el := range ids {
			m.removeLocked(el)
		}
	}
	m.stats.Invalidated += int64(n)
	return n
}

// removeLocked unlinks an element from the list, both indexes, and the
// byte accounting.
func (m *Memory) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	m.ll.Remove(el)
	delete(m.entries, e.id)
	m.bytes -= e.weight
	if ids := m.byFunc[e.funcHash]; ids != nil {
		delete(ids, e.id)
		if len(ids) == 0 {
			delete(m.byFunc, e.funcHash)
		}
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = m.ll.Len()
	s.Bytes = m.bytes
	return s
}
