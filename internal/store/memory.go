package store

import (
	"container/list"
	"sync"

	"knighter/internal/engine"
)

// DefaultMemoryEntries bounds the in-memory tier when the caller passes
// a non-positive capacity. Sized for a full-scale corpus (a few thousand
// functions) times a handful of live checker fingerprints.
const DefaultMemoryEntries = 1 << 14

// Memory is the in-memory LRU tier.
type Memory struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	// byFunc indexes live entry IDs by their key's FuncHash so corpus
	// mutation can drop a function's entries without a full sweep.
	byFunc map[string]map[string]*list.Element
	stats  Stats
}

type memEntry struct {
	id       string
	funcHash string
	res      *engine.Result
}

// NewMemory returns an LRU store holding at most maxEntries results
// (DefaultMemoryEntries when maxEntries <= 0).
func NewMemory(maxEntries int) *Memory {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoryEntries
	}
	return &Memory{
		max:     maxEntries,
		ll:      list.New(),
		entries: map[string]*list.Element{},
		byFunc:  map[string]map[string]*list.Element{},
	}
}

// Get implements Store.
func (m *Memory) Get(k Key) (*engine.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k.ID()]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).res.Clone(), true
}

// Put implements Store.
func (m *Memory) Put(k Key, r *engine.Result) {
	if r == nil {
		return
	}
	id := k.ID()
	stored := r.Clone()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if el, ok := m.entries[id]; ok {
		el.Value.(*memEntry).res = stored
		m.ll.MoveToFront(el)
		return
	}
	el := m.ll.PushFront(&memEntry{id: id, funcHash: k.FuncHash, res: stored})
	m.entries[id] = el
	if m.byFunc[k.FuncHash] == nil {
		m.byFunc[k.FuncHash] = map[string]*list.Element{}
	}
	m.byFunc[k.FuncHash][id] = el
	for m.ll.Len() > m.max {
		m.removeLocked(m.ll.Back())
		m.stats.Evictions++
	}
}

// InvalidateFunc implements Invalidator: it drops every entry keyed by
// funcHash (any checker or engine fingerprint).
func (m *Memory) InvalidateFunc(funcHash string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.byFunc[funcHash]
	n := len(ids)
	for _, el := range ids {
		m.removeLocked(el)
	}
	m.stats.Invalidated += int64(n)
	return n
}

// removeLocked unlinks an element from the list and both indexes.
func (m *Memory) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	m.ll.Remove(el)
	delete(m.entries, e.id)
	if ids := m.byFunc[e.funcHash]; ids != nil {
		delete(ids, e.id)
		if len(ids) == 0 {
			delete(m.byFunc, e.funcHash)
		}
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = m.ll.Len()
	return s
}
