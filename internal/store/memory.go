package store

import (
	"container/list"
	"sync"

	"knighter/internal/engine"
)

// DefaultMemoryEntries bounds the in-memory tier when the caller passes
// a non-positive capacity. Sized for a full-scale corpus (a few thousand
// functions) times a handful of live checker fingerprints.
const DefaultMemoryEntries = 1 << 14

// Memory is the in-memory LRU tier.
type Memory struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	stats   Stats
}

type memEntry struct {
	id  string
	res *engine.Result
}

// NewMemory returns an LRU store holding at most maxEntries results
// (DefaultMemoryEntries when maxEntries <= 0).
func NewMemory(maxEntries int) *Memory {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoryEntries
	}
	return &Memory{max: maxEntries, ll: list.New(), entries: map[string]*list.Element{}}
}

// Get implements Store.
func (m *Memory) Get(k Key) (*engine.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k.ID()]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).res.Clone(), true
}

// Put implements Store.
func (m *Memory) Put(k Key, r *engine.Result) {
	if r == nil {
		return
	}
	id := k.ID()
	stored := r.Clone()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if el, ok := m.entries[id]; ok {
		el.Value.(*memEntry).res = stored
		m.ll.MoveToFront(el)
		return
	}
	m.entries[id] = m.ll.PushFront(&memEntry{id: id, res: stored})
	for m.ll.Len() > m.max {
		back := m.ll.Back()
		m.ll.Remove(back)
		delete(m.entries, back.Value.(*memEntry).id)
		m.stats.Evictions++
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = m.ll.Len()
	return s
}
