package store

import (
	"context"
	"time"

	"knighter/internal/engine"
	"knighter/internal/obs"
)

// Instrumented wraps a Store with per-tier metrics: request totals,
// hit/miss/put counters, operation latency histograms, and coalesced
// computation counts, all labeled by tier name. kserve wraps every tier
// of its composition (memory, remote, disk, and the coalescing
// composite) so /metrics answers the question /stats cannot: not just
// how often the cache hits, but WHERE — and how long each tier's
// answer takes, which is the number that exposes a degraded remote tier
// hiding behind its circuit breaker.
//
// The wrapper forwards every optional Store extension. Wrapping a tier
// that lacks one degrades the same way the unwrapped tier would:
// invalidation falls through to zero, and GetOrCompute falls back to
// get-compute-put without coalescing.
type Instrumented struct {
	st   Store
	tier string

	coalesced *obs.Counter
	getDur    *obs.Histogram
	putDur    *obs.Histogram

	// sampleMask throttles the latency histograms: an op is timed only
	// when its key's leading hash nibble masks to zero, so mask 0 times
	// everything and mask 2^n-1 times one key in 2^n. Counters always
	// count every op.
	sampleMask uint8
}

// SampleLatency makes the wrapper time only one in 2^shift operations
// (counters still see every op; shift is capped at 4) and returns the
// wrapper for chaining. The latency histograms then hold a uniform
// sample — the distribution is intact, only _count is smaller than
// requests_total. Use it on tiers whose per-op cost is comparable to
// reading the clock (the in-memory tier, the coalescing wrapper):
// timing a ~1µs hit twice per layer is how an observability layer eats
// the cache speedup it was built to explain. Remote and disk tiers
// keep full timing — their ops are orders of magnitude above the
// sampling overhead.
func (i *Instrumented) SampleLatency(shift uint) *Instrumented {
	if shift > 4 {
		shift = 4
	}
	i.sampleMask = 1<<shift - 1
	return i
}

// sampled reports whether this op's latency should be measured. The
// decision derives from the key's content address rather than a shared
// counter, so the fast path touches no shared cache line: the leading
// hex nibble of the function hash is uniform over keys.
func (i *Instrumented) sampled(k Key) bool {
	if i.sampleMask == 0 || len(k.FuncHash) == 0 {
		return true
	}
	c := k.FuncHash[0]
	var nib uint8
	switch {
	case c >= '0' && c <= '9':
		nib = c - '0'
	case c >= 'a' && c <= 'f':
		nib = c - 'a' + 10
	case c >= 'A' && c <= 'F':
		nib = c - 'A' + 10
	default:
		nib = c
	}
	return nib&i.sampleMask == 0
}

// Instrument wraps st with metrics registered in reg under the shared
// per-tier families (store_requests_total{tier=...} and friends), so
// every tier of a composition lands in the same exposition series.
//
// The request/hit/miss/put series are callback-backed: every tier
// already counts those events in its own Stats() atomics — the counters
// /stats has always read — so the wrapper reads them at scrape time
// instead of maintaining a second copy. Keeping duplicate counters in
// the wrapper cost a fully warm scan ~8% in contended counter updates;
// the callback design makes the counting free because the tiers were
// paying for it anyway.
func Instrument(reg *obs.Registry, tier string, st Store) *Instrumented {
	stat := func(pick func(Stats) int64) func() float64 {
		return func() float64 { return float64(pick(st.Stats())) }
	}
	reg.CounterVec("store_requests_total",
		"Store operations (gets + puts) that reached the tier.", "tier").
		WithFunc(stat(func(s Stats) int64 { return s.Hits + s.Misses + s.Puts }), tier)
	reg.CounterVec("store_hits_total", "Gets answered by the tier.", "tier").
		WithFunc(stat(func(s Stats) int64 { return s.Hits }), tier)
	reg.CounterVec("store_misses_total", "Gets the tier could not answer.", "tier").
		WithFunc(stat(func(s Stats) int64 { return s.Misses }), tier)
	reg.CounterVec("store_puts_total", "Results written to the tier.", "tier").
		WithFunc(stat(func(s Stats) int64 { return s.Puts }), tier)
	coalesced := reg.CounterVec("store_coalesced_total",
		"Computations saved by sharing another request's in-flight result.", "tier")
	opDur := reg.HistogramVec("store_op_duration_seconds",
		"Latency of one store operation against the tier.", nil, "tier", "op")
	return &Instrumented{
		st:        st,
		tier:      tier,
		coalesced: coalesced.With(tier),
		getDur:    opDur.With(tier, "get"),
		putDur:    opDur.With(tier, "put"),
	}
}

// Inner returns the wrapped store.
func (i *Instrumented) Inner() Store { return i.st }

// Get implements Store. The tier counts the hit or miss itself (its
// Stats() backs the exposed counters); the wrapper only times the op,
// and only for sampled keys — the unsampled fast path touches no shared
// state at all.
func (i *Instrumented) Get(ctx context.Context, k Key) (*engine.Result, bool) {
	if !i.sampled(k) {
		return i.st.Get(ctx, k)
	}
	start := time.Now()
	r, ok := i.st.Get(ctx, k)
	i.getDur.Observe(time.Since(start).Seconds())
	return r, ok
}

// Put implements Store.
func (i *Instrumented) Put(ctx context.Context, k Key, r *engine.Result) {
	if !i.sampled(k) {
		i.st.Put(ctx, k, r)
		return
	}
	start := time.Now()
	i.st.Put(ctx, k, r)
	i.putDur.Observe(time.Since(start).Seconds())
}

// Stats implements Store by forwarding — the wrapper adds exposition,
// never its own view of the counters.
func (i *Instrumented) Stats() Stats { return i.st.Stats() }

// GetOrCompute implements ComputeCoalescer, forwarding when the wrapped
// tier coalesces and falling back to get-compute-put when it does not.
// Shared results count into store_coalesced_total{tier=...}.
func (i *Instrumented) GetOrCompute(ctx context.Context, k Key, compute func() (*engine.Result, bool)) (*engine.Result, bool) {
	if co, ok := i.st.(ComputeCoalescer); ok {
		r, shared := co.GetOrCompute(ctx, k, compute)
		if shared {
			i.coalesced.Inc()
		}
		return r, shared
	}
	if r, ok := i.Get(ctx, k); ok {
		return r, false
	}
	r, cacheable := compute()
	if cacheable {
		i.Put(ctx, k, r)
	}
	return r, false
}

// InvalidateFunc implements Invalidator by forwarding through the
// widest invalidation interface the wrapped tier supports.
func (i *Instrumented) InvalidateFunc(funcHash string) int {
	return i.InvalidateFuncs([]string{funcHash})
}

// InvalidateFuncs implements BulkInvalidator the same way.
func (i *Instrumented) InvalidateFuncs(funcHashes []string) int {
	return invalidateAll(i.st, funcHashes)
}
