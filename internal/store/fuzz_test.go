package store

import (
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

// fuzzResult builds results of varying serialized size from a variant
// byte, so the weight accounting sees entries of different weights.
func fuzzResult(variant byte) *engine.Result {
	msg := strings.Repeat("x", 1+int(variant)%97)
	return &engine.Result{
		Reports: []*checker.Report{{
			Checker: "fz", BugType: "T", Message: msg,
			File: "a.c", Func: "f", Pos: minic.Pos{File: "a.c", Line: int(variant), Col: 1},
		}},
		Paths: int(variant), Steps: 1,
	}
}

// FuzzMemoryWeightInvariants drives the byte-weighted LRU through
// arbitrary put/get/invalidate/bulk-invalidate sequences and checks its
// internal bookkeeping after every step: the byte total must equal the
// sum of live entry weights, every index must agree on the live set, and
// the budget must hold whenever more than one entry is cached.
func FuzzMemoryWeightInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 2, 3, 1, 0})
	f.Add([]byte{0, 1, 9, 0, 1, 9, 2, 1, 0})
	f.Add([]byte{0, 0, 200, 0, 1, 200, 0, 2, 200, 1, 0, 0, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tight budget (room for roughly two mid-sized entries) makes
		// eviction fire constantly.
		m := NewMemory(2 * weigh(fuzzResult(48)))
		check := func(op string) {
			t.Helper()
			var bytes int64
			indexed := 0
			for el := m.ll.Front(); el != nil; el = el.Next() {
				e := el.Value.(*memEntry)
				bytes += e.weight
				if m.entries[e.id] != el {
					t.Fatalf("%s: list entry %s missing from id index", op, e.id)
				}
				if m.byFunc[e.funcHash][e.id] != el {
					t.Fatalf("%s: list entry %s missing from func index", op, e.id)
				}
			}
			for _, ids := range m.byFunc {
				indexed += len(ids)
			}
			if bytes != m.bytes {
				t.Fatalf("%s: byte total %d != sum of live weights %d", op, m.bytes, bytes)
			}
			if len(m.entries) != m.ll.Len() || indexed != m.ll.Len() {
				t.Fatalf("%s: index sizes diverge: entries=%d byFunc=%d list=%d",
					op, len(m.entries), indexed, m.ll.Len())
			}
			if m.bytes > m.maxBytes && m.ll.Len() > 1 {
				t.Fatalf("%s: over budget (%d > %d) with %d entries", op, m.bytes, m.maxBytes, m.ll.Len())
			}
			if s := m.Stats(); s.Bytes != bytes || s.Entries != m.ll.Len() {
				t.Fatalf("%s: Stats()=%+v disagrees with live set (%d bytes, %d entries)",
					op, s, bytes, m.ll.Len())
			}
		}
		for len(data) >= 3 {
			op, sel, variant := data[0]%4, data[1]%8, data[2]
			data = data[3:]
			k := Key{FuncHash: string([]byte{'f', sel % 4}), CheckerFP: string([]byte{'c', sel / 4}), EngineFP: "e"}
			switch op {
			case 0:
				m.Put(bg, k, fuzzResult(variant))
				check("put")
			case 1:
				m.Get(bg, k)
				check("get")
			case 2:
				m.InvalidateFunc(k.FuncHash)
				check("invalidate")
			case 3:
				m.InvalidateFuncs([]string{"f\x00", "f\x01", string([]byte{'f', variant % 4})})
				check("bulk-invalidate")
			}
		}
	})
}
