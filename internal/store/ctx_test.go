package store

import "context"

// bg is the context used by store tests that do not exercise trace
// propagation or cancellation.
var bg = context.Background()
