package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDiskInvalidateCountsOnlyStatConfirmedFiles pins the
// InvalidateFunc x GC counter-drift fix: a globbed name whose stat
// fails (here a dangling symlink, standing in for a file a concurrent
// GC sweep removed between the glob and the stat) must not be counted —
// the old code counted len(names) and double-decremented the books.
func TestDiskInvalidateCountsOnlyStatConfirmedFiles(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(bg, fkey("fA", "ck1"), result("a1"))
	d.Put(bg, fkey("fA", "ck2"), result("a2"))

	// A name the glob will list but the stat will reject.
	phantom := filepath.Join(d.funcDir("fA"), "phantom.json")
	if err := os.Symlink(filepath.Join(d.dir, "no-such-target"), phantom); err != nil {
		t.Skipf("symlink: %v", err)
	}

	if n := d.InvalidateFunc("fA"); n != 2 {
		t.Fatalf("InvalidateFunc counted %d entries, want 2 (phantom file counted)", n)
	}
	st := d.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("books drifted: %+v", st)
	}
	if st.Invalidated != 2 {
		t.Fatalf("Invalidated = %d want 2", st.Invalidated)
	}
}

// TestDiskBooksNeverNegativeUnderInvalidateGCRace hammers InvalidateFuncs
// against concurrent GC sweeps: whatever the interleaving, the final
// counters must match the real tree and never dip below zero.
func TestDiskBooksNeverNegativeUnderInvalidateGCRace(t *testing.T) {
	d, err := NewDisk(t.TempDir(), DiskMaxBytes(1)) // budget evicts everything each sweep
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				fh := fmt.Sprintf("f%d-%d", w, i%8)
				d.Put(bg, fkey(fh, "ck"), result("x"))
				if i%3 == 0 {
					d.InvalidateFuncs([]string{fh})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			d.GC(time.Nanosecond) // everything already written is "old"
		}
	}()
	wg.Wait()
	d.GC(time.Nanosecond)

	st := d.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("books went negative: %+v", st)
	}
	entries, bytes := d.walk()
	if st.Entries != entries || st.Bytes != bytes {
		t.Fatalf("books drifted from the tree: counters (%d, %d) tree (%d, %d)",
			st.Entries, st.Bytes, entries, bytes)
	}
}

// TestDiskGCLoopStopsOnContextCancel pins the unstoppable-GC-goroutine
// fix: canceling the context passed to StartGCLoop must stop the
// sweeps, so a daemon's graceful drain never races one.
func TestDiskGCLoopStopsOnContextCancel(t *testing.T) {
	old := minGCInterval
	minGCInterval = 2 * time.Millisecond
	defer func() { minGCInterval = old }()

	d, err := NewDisk(t.TempDir(), DiskMaxBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	var sweeps atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	d.StartGCLoop(ctx, 0, func(int, time.Duration, error) { sweeps.Add(1) })

	deadline := time.Now().Add(2 * time.Second)
	for sweeps.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sweeps.Load() < 3 {
		t.Fatalf("GC loop barely ran: %d sweeps", sweeps.Load())
	}
	cancel()
	// One sweep may already be in flight at cancel time; after it lands,
	// the count must freeze.
	time.Sleep(20 * time.Millisecond)
	frozen := sweeps.Load()
	time.Sleep(50 * time.Millisecond)
	if got := sweeps.Load(); got != frozen {
		t.Fatalf("GC loop kept sweeping after cancel: %d -> %d", frozen, got)
	}
}

// TestTieredStatsReportsBackTierUnconditionally pins the Stats
// misreporting fix: when the back tier is legitimately empty (full
// invalidation), the composite must report empty — not fall back to the
// front tier's promoted copies. The per-tier breakdown stays available
// via TierStats.
func TestTieredStatsReportsBackTierUnconditionally(t *testing.T) {
	front, back := NewMemory(0), NewMemory(0)
	tier := NewTiered(front, back)

	tier.Put(bg, fkey("fA", "ck"), result("x"))
	if tier.Stats().Entries != 1 {
		t.Fatalf("stats after put: %+v", tier.Stats())
	}

	// Drop the back tier only: the composite's truth is the back tier,
	// so it must report zero even though the front still holds a copy.
	back.InvalidateFunc("fA")
	st := tier.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("composite reported front-tier counts for an empty back tier: %+v", st)
	}
	f, b := tier.TierStats()
	if f.Entries != 1 {
		t.Fatalf("front tier breakdown lost: %+v", f)
	}
	if b.Entries != 0 {
		t.Fatalf("back tier breakdown wrong: %+v", b)
	}
}
