package store

import (
	"context"
	"testing"
	"time"

	"knighter/internal/engine"
)

// gateStore wraps a Store and blocks every Get until the gate channel
// closes or the context dies — a stand-in for a slow remote tier.
type gateStore struct {
	Store
	gate <-chan struct{}
}

func (g *gateStore) Get(ctx context.Context, k Key) (*engine.Result, bool) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, false
	}
	return g.Store.Get(ctx, k)
}

func TestHedgedLocalHitWinsOverSlowRemote(t *testing.T) {
	gate := make(chan struct{}) // never closes: remote hangs until canceled
	remote := &gateStore{Store: NewMemory(0), gate: gate}
	local := NewMemory(0)
	local.Put(bg, fkey("fA", "ck"), result("local"))

	h := NewHedged(remote, local)
	done := make(chan struct{})
	var got *engine.Result
	var ok bool
	go func() {
		got, ok = h.Get(bg, fkey("fA", "ck"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged Get waited on the hung remote despite a local hit")
	}
	if !ok || got == nil {
		t.Fatal("local hit lost")
	}
	if lw, rw := h.WinStats(); lw != 1 || rw != 0 {
		t.Fatalf("win stats = local %d remote %d", lw, rw)
	}
}

func TestHedgedRemoteHitPromotesToLocal(t *testing.T) {
	remote := NewMemory(0)
	remote.Put(bg, fkey("fA", "ck"), result("fleet"))
	local := NewMemory(0)

	h := NewHedged(remote, local)
	got, ok := h.Get(bg, fkey("fA", "ck"))
	if !ok || !sameResult(t, got, result("fleet")) {
		t.Fatalf("remote hit lost: ok=%v", ok)
	}
	if lw, rw := h.WinStats(); rw != 1 || lw != 0 {
		t.Fatalf("win stats = local %d remote %d", lw, rw)
	}
	// The hit was promoted: the local tier now answers on its own.
	if _, ok := local.Get(bg, fkey("fA", "ck")); !ok {
		t.Fatal("remote hit not promoted into the local tier")
	}
}

func TestHedgedMissWaitsForBothSides(t *testing.T) {
	// The remote is slow but HAS the entry; the local side misses
	// instantly. The hedge must not declare a miss off the fast local
	// answer — it must wait for the remote hit.
	gate := make(chan struct{})
	remoteMem := NewMemory(0)
	remoteMem.Put(bg, fkey("fA", "ck"), result("slow-remote"))
	remote := &gateStore{Store: remoteMem, gate: gate}
	local := NewMemory(0)

	h := NewHedged(remote, local)
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	got, ok := h.Get(bg, fkey("fA", "ck"))
	if !ok || !sameResult(t, got, result("slow-remote")) {
		t.Fatalf("fast local miss masked the remote hit: ok=%v", ok)
	}

	// And a genuine double miss is a miss.
	if _, ok := h.Get(bg, fkey("fB", "ck")); ok {
		t.Fatal("hit on a key neither side holds")
	}
	st := h.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHedgedPutAndInvalidateReachBothSides(t *testing.T) {
	remote := NewMemory(0)
	local := NewMemory(0)
	h := NewHedged(remote, local)

	h.Put(bg, fkey("fA", "ck"), result("x"))
	if _, ok := remote.Get(bg, fkey("fA", "ck")); !ok {
		t.Fatal("Put did not reach the remote side")
	}
	if _, ok := local.Get(bg, fkey("fA", "ck")); !ok {
		t.Fatal("Put did not reach the local side")
	}

	if n := h.InvalidateFuncs([]string{"fA"}); n != 2 {
		t.Fatalf("invalidated %d entries across both sides, want 2", n)
	}
	if _, ok := h.Get(bg, fkey("fA", "ck")); ok {
		t.Fatal("entry survived invalidation")
	}
}
