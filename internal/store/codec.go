package store

import (
	"encoding/binary"
	"errors"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

// Binary payload codec for the segment disk tier.
//
// A warm segment Get costs one index probe and one pread — a few
// hundred nanoseconds — which left encoding/json's reflective decode
// (~1.3µs even for an empty result) as the dominant cost of the disk
// hit path. The segment tier therefore stores results in a small
// hand-rolled binary format: length-prefixed strings and uvarints over
// the flat Result/Report/TraceStep/RuntimeErr shapes, no reflection, no
// field-name matching.
//
// The first byte is a format tag. Binary records start with
// resultCodecV1 (0x01); JSON objects start with '{' (0x7B), so records
// migrated from the file-per-entry layout — or written by an older
// binary — are recognized and decoded through encoding/json instead.
// The wire protocol (remote tier / kcached) stays JSON: this codec is
// a private storage format, not an interchange one.
const resultCodecV1 = 0x01

// encodeResult serializes r in the binary format.
func encodeResult(r *engine.Result) []byte {
	// Pre-size roughly: fixed header plus strings; the buffer grows as
	// needed, this just avoids most re-allocations.
	buf := make([]byte, 0, 64+96*len(r.Reports)+48*len(r.RuntimeErrs))
	buf = append(buf, resultCodecV1)
	buf = binary.AppendUvarint(buf, uint64(r.Paths))
	buf = binary.AppendUvarint(buf, uint64(r.Steps))
	var flags byte
	if r.Truncated {
		flags |= 1
	}
	if r.TimedOut {
		flags |= 2
	}
	if r.Canceled {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(r.Reports)))
	for _, rep := range r.Reports {
		buf = appendString(buf, rep.Checker)
		buf = appendString(buf, rep.BugType)
		buf = appendString(buf, rep.Message)
		buf = appendString(buf, rep.File)
		buf = appendString(buf, rep.Func)
		buf = appendPos(buf, rep.Pos)
		buf = appendString(buf, rep.RegionAt)
		buf = binary.AppendUvarint(buf, uint64(len(rep.Trace)))
		for _, step := range rep.Trace {
			buf = appendPos(buf, step.Pos)
			buf = appendString(buf, step.Note)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.RuntimeErrs)))
	for _, re := range r.RuntimeErrs {
		buf = appendString(buf, re.Func)
		buf = appendString(buf, re.Checker)
		buf = appendString(buf, re.Panic)
	}
	return buf
}

var errCodec = errors.New("store: corrupt binary result payload")

// decodeResult parses a binary payload produced by encodeResult. The
// caller has already checked the format tag.
func decodeResult(data []byte) (*engine.Result, error) {
	d := &codecReader{buf: data[1:]}
	r := &engine.Result{}
	r.Paths = int(d.uvarint())
	r.Steps = int(d.uvarint())
	flags := d.byte()
	r.Truncated = flags&1 != 0
	r.TimedOut = flags&2 != 0
	r.Canceled = flags&4 != 0
	if n := d.uvarint(); n > 0 {
		if n > uint64(len(data)) { // length sanity: every report costs >= 1 byte
			return nil, errCodec
		}
		r.Reports = make([]*checker.Report, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			rep := &checker.Report{
				Checker: d.string(),
				BugType: d.string(),
				Message: d.string(),
				File:    d.string(),
				Func:    d.string(),
				Pos:     d.pos(),
			}
			rep.RegionAt = d.string()
			if steps := d.uvarint(); steps > 0 {
				if steps > uint64(len(data)) {
					return nil, errCodec
				}
				rep.Trace = make([]checker.TraceStep, 0, steps)
				for j := uint64(0); j < steps && d.err == nil; j++ {
					rep.Trace = append(rep.Trace, checker.TraceStep{Pos: d.pos(), Note: d.string()})
				}
			}
			r.Reports = append(r.Reports, rep)
		}
	}
	if n := d.uvarint(); n > 0 {
		if n > uint64(len(data)) {
			return nil, errCodec
		}
		r.RuntimeErrs = make([]engine.RuntimeErr, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.RuntimeErrs = append(r.RuntimeErrs, engine.RuntimeErr{
				Func:    d.string(),
				Checker: d.string(),
				Panic:   d.string(),
			})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendPos(buf []byte, p minic.Pos) []byte {
	buf = appendString(buf, p.File)
	buf = binary.AppendUvarint(buf, uint64(p.Line))
	return binary.AppendUvarint(buf, uint64(p.Col))
}

// codecReader is a cursor over a binary payload; the first failed read
// latches err and every later read returns zero values, so decode code
// stays linear and checks the error once at the end.
type codecReader struct {
	buf []byte
	err error
}

func (d *codecReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errCodec
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *codecReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = errCodec
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *codecReader) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = errCodec
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *codecReader) pos() minic.Pos {
	return minic.Pos{File: d.string(), Line: int(d.uvarint()), Col: int(d.uvarint())}
}
