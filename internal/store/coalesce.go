package store

import (
	"context"
	"sync"

	"knighter/internal/engine"
)

// ComputeCoalescer is the optional Store extension the incremental
// scheduler uses to collapse duplicate in-flight computations: N
// concurrent misses on one key run the analysis once and share the
// result. It matters most once a network tier widens the miss window —
// with a remote round-trip between "miss" and "put", a popular key can
// easily have many identical computations racing.
type ComputeCoalescer interface {
	Store
	// GetOrCompute returns the cached result for k, or runs compute to
	// produce it. compute returns the result and whether it is cacheable
	// (timed-out or canceled results are not). The second return reports
	// whether the result was shared from another caller's in-flight
	// computation rather than computed (or fetched) by this one.
	GetOrCompute(ctx context.Context, k Key, compute func() (*engine.Result, bool)) (*engine.Result, bool)
}

// Coalesced wraps a Store with singleflight coalescing. Get, Put, Stats,
// and invalidation forward to the wrapped tier unchanged; GetOrCompute
// adds the flight table.
type Coalesced struct {
	st Store

	mu        sync.Mutex
	flights   map[string]*flight
	coalesced int64
}

// flight is one in-progress computation. res holds a private clone of
// the leader's result once done is closed; followers clone from it, so
// no caller's mutations can reach another caller.
type flight struct {
	done      chan struct{}
	res       *engine.Result
	cacheable bool
}

// NewCoalesced wraps st with a flight table.
func NewCoalesced(st Store) *Coalesced {
	return &Coalesced{st: st, flights: map[string]*flight{}}
}

// Inner returns the wrapped store.
func (c *Coalesced) Inner() Store { return c.st }

// Get implements Store.
func (c *Coalesced) Get(ctx context.Context, k Key) (*engine.Result, bool) { return c.st.Get(ctx, k) }

// Put implements Store.
func (c *Coalesced) Put(ctx context.Context, k Key, r *engine.Result) { c.st.Put(ctx, k, r) }

// Stats implements Store: the wrapped tier's counters plus the number of
// computations saved by coalescing.
func (c *Coalesced) Stats() Stats {
	s := c.st.Stats()
	c.mu.Lock()
	s.Coalesced = c.coalesced
	c.mu.Unlock()
	return s
}

// GetOrCompute implements ComputeCoalescer.
func (c *Coalesced) GetOrCompute(ctx context.Context, k Key, compute func() (*engine.Result, bool)) (*engine.Result, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The write-through publish must not be aborted by the caller
	// disconnecting right after the computation finished — the bytes are
	// valid for everyone — but it should keep the request's trace id so
	// the publish shows up under the same trace in the kcached log.
	putCtx := context.WithoutCancel(ctx)
	id := k.ID()
	c.mu.Lock()
	if fl, ok := c.flights[id]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.cacheable {
			c.mu.Lock()
			c.coalesced++
			c.mu.Unlock()
			return fl.res.Clone(), true
		}
		// The leader's result was uncacheable — truncated by ITS wall
		// clock or context, not ours. Sharing it would spread one
		// caller's timeout to every coalesced sibling, so compute our
		// own.
		res, cacheable := compute()
		if cacheable {
			c.st.Put(putCtx, k, res)
		}
		return res, false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[id] = fl
	c.mu.Unlock()

	finish := func(res *engine.Result, cacheable bool) {
		fl.res, fl.cacheable = res.Clone(), cacheable
		c.mu.Lock()
		delete(c.flights, id)
		c.mu.Unlock()
		close(fl.done)
	}

	// Leader. Deliberately NO re-check of the store here: between the
	// caller's miss and this call another flight may have completed and
	// published, but probing for that would cost a remote round-trip on
	// every ordinary miss (the common case) to save a duplicate
	// computation in a rare race — and the duplicate is harmless, since
	// both compute identical bytes and Put is write-through.
	//
	// Followers are released BEFORE the write-through publish: with a
	// remote tier the Put is a network round-trip, and coalesced callers
	// only need the bytes, not the publication. A same-key flight that
	// starts during our Put recomputes rather than waits — rare, and
	// identical bytes either way.
	res, cacheable := compute()
	finish(res, cacheable)
	if cacheable {
		c.st.Put(putCtx, k, res)
	}
	return res, false
}

// InvalidateFunc implements Invalidator by forwarding.
func (c *Coalesced) InvalidateFunc(funcHash string) int {
	return c.InvalidateFuncs([]string{funcHash})
}

// InvalidateFuncs implements BulkInvalidator by forwarding (with the
// same per-hash fallback Tiered applies).
func (c *Coalesced) InvalidateFuncs(funcHashes []string) int {
	return invalidateAll(c.st, funcHashes)
}
