package store

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"knighter/internal/engine"
)

// newCacheTS serves a store over the kcached protocol for client tests.
func newCacheTS(t *testing.T, st Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewCacheServer(st).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newRemote(t *testing.T, url string, cfg RemoteConfig) *Remote {
	t.Helper()
	r, err := NewRemote(url, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRemoteRoundTrip(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)
	r := newRemote(t, ts.URL, RemoteConfig{})

	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("empty remote hit")
	}
	r.Put(bg, key(1), result("one"))
	got, ok := r.Get(bg, key(1))
	if !ok {
		t.Fatal("miss after put")
	}
	want, _ := json.Marshal(result("one"))
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("round trip altered the result:\nwant %s\nhave %s", want, have)
	}
	// The result must be served from the backing store, not a client
	// cache: a second client sees it too.
	r2 := newRemote(t, ts.URL, RemoteConfig{})
	if _, ok := r2.Get(bg, key(1)); !ok {
		t.Fatal("second client missed an entry the first stored")
	}
	rs := r.RemoteStats()
	if rs.Hits != 1 || rs.Misses != 1 || rs.Puts != 1 || rs.Errors != 0 {
		t.Fatalf("stats = %+v", rs)
	}
}

func TestRemoteInvalidate(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)
	r := newRemote(t, ts.URL, RemoteConfig{})

	r.Put(bg, fkey("fA", "ck1"), result("a1"))
	r.Put(bg, fkey("fA", "ck2"), result("a2"))
	r.Put(bg, fkey("fB", "ck1"), result("b1"))
	if n := r.InvalidateFuncs([]string{"fA"}); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := r.Get(bg, fkey("fA", "ck1")); ok {
		t.Fatal("fA/ck1 survived invalidation")
	}
	if _, ok := r.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("fB/ck1 dropped by unrelated invalidation")
	}
}

// TestRemoteServerValidatesAddress pins the anti-poisoning check: a PUT
// or GET whose key components do not hash to the path's content address
// is rejected, so a buggy client cannot publish an entry under a key
// other replicas would trust.
func TestRemoteServerValidatesAddress(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)

	data, _ := json.Marshal(result("evil"))
	// Claim the ID of one key while sending another key's components.
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+"/entry/"+fkey("fX", "ck").ID()+"?fh=fY&ck=ck&eng=eng",
		strings.NewReader(string(data)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched key accepted: status %d", resp.StatusCode)
	}
	if back.Stats().Puts != 0 {
		t.Fatal("mismatched key reached the backing store")
	}
}

// TestRemoteServerRejectsCorruptPut: bytes that do not decode as an
// engine.Result never enter the shared store.
func TestRemoteServerRejectsCorruptPut(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)
	k := fkey("fX", "ck")
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+"/entry/"+k.ID()+"?fh="+k.FuncHash+"&ck="+k.CheckerFP+"&eng="+k.EngineFP,
		strings.NewReader(`{"Reports": "not-a-list"`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body accepted: status %d", resp.StatusCode)
	}
	if back.Stats().Puts != 0 {
		t.Fatal("corrupt body reached the backing store")
	}
}

// TestRemoteServerRejectsUncacheablePut: the engine-wide invariant that
// timed-out and canceled results are never cached holds at the shared
// tier too — a single non-conforming client must not be able to poison
// every replica's warm hits with truncated results.
func TestRemoteServerRejectsUncacheablePut(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)
	for name, res := range map[string]*engine.Result{
		"timed-out": {Truncated: true, TimedOut: true},
		"canceled":  {Truncated: true, Canceled: true},
	} {
		k := fkey("fX", "ck")
		data, _ := json.Marshal(res)
		req, _ := http.NewRequest(http.MethodPut,
			ts.URL+"/entry/"+k.ID()+"?fh="+k.FuncHash+"&ck="+k.CheckerFP+"&eng="+k.EngineFP,
			strings.NewReader(string(data)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s result accepted: status %d", name, resp.StatusCode)
		}
	}
	if back.Stats().Puts != 0 {
		t.Fatal("uncacheable result reached the backing store")
	}
	// The client side never even sends one.
	r := newRemote(t, ts.URL, RemoteConfig{})
	r.Put(bg, fkey("fX", "ck"), &engine.Result{Truncated: true, TimedOut: true})
	if rs := r.RemoteStats(); rs.Puts != 0 || rs.Errors != 0 {
		t.Fatalf("client sent an uncacheable result: %+v", rs)
	}
}

// TestRemoteFlaggedEntryIsMiss: an old or foreign daemon that serves a
// timed-out/canceled entry anyway is treated as a healthy miss — the
// truncation must not propagate, but the daemon did answer, so the
// breaker stays closed.
func TestRemoteFlaggedEntryIsMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&engine.Result{Truncated: true, TimedOut: true})
	}))
	t.Cleanup(ts.Close)
	r := newRemote(t, ts.URL, RemoteConfig{})
	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("flagged entry served as a hit")
	}
	rs := r.RemoteStats()
	if rs.Misses != 1 || rs.Errors != 0 || rs.BreakerOpen {
		t.Fatalf("flagged entry mis-accounted: %+v", rs)
	}
}

// TestRemoteDownIsMissNotError: with nothing listening, every operation
// degrades to a miss/no-op and the client never panics or blocks.
func TestRemoteDownIsMissNotError(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listening at url now

	r := newRemote(t, url, RemoteConfig{Timeout: 200 * time.Millisecond})
	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("dead daemon produced a hit")
	}
	r.Put(bg, key(1), result("one")) // must not panic
	if n := r.InvalidateFuncs([]string{"fA"}); n != 0 {
		t.Fatalf("dead daemon invalidated %d entries", n)
	}
	rs := r.RemoteStats()
	if rs.Errors == 0 {
		t.Fatal("failed round-trips not counted")
	}
}

// TestRemoteCorruptPayloadIsMiss: a daemon answering 200 with garbage is
// a miss on the client, and counts toward the breaker.
func TestRemoteCorruptPayloadIsMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"Reports": "garbage`))
	}))
	t.Cleanup(ts.Close)
	r := newRemote(t, ts.URL, RemoteConfig{})
	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("corrupt payload produced a hit")
	}
	if rs := r.RemoteStats(); rs.Errors != 1 {
		t.Fatalf("corrupt payload counted %d errors, want 1", rs.Errors)
	}
}

// TestRemoteTimeoutIsMiss: a daemon slower than the request budget is a
// miss, bounded by the timeout.
func TestRemoteTimeoutIsMiss(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	t.Cleanup(func() { close(release); ts.Close() })
	r := newRemote(t, ts.URL, RemoteConfig{Timeout: 50 * time.Millisecond})
	start := time.Now()
	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("stalled daemon produced a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed-out Get took %s", elapsed)
	}
	if rs := r.RemoteStats(); rs.Errors != 1 {
		t.Fatalf("timeout counted %d errors, want 1", rs.Errors)
	}
}

// TestRemoteBreakerOpensAndRecloses drives the full circuit: consecutive
// failures open it (stopping traffic to the daemon), the cooldown lets a
// probe through, and a healthy daemon closes it again.
func TestRemoteBreakerOpensAndRecloses(t *testing.T) {
	var healthy atomic.Bool
	var requests atomic.Int64
	back := NewMemory(0)
	inner := NewCacheServer(back).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	r := newRemote(t, ts.URL, RemoteConfig{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})

	// Trip the breaker.
	for i := 0; i < 3; i++ {
		if _, ok := r.Get(bg, key(1)); ok {
			t.Fatal("unhealthy daemon produced a hit")
		}
	}
	rs := r.RemoteStats()
	if !rs.BreakerOpen || rs.BreakerOpens != 1 {
		t.Fatalf("breaker after 3 failures: %+v", rs)
	}

	// While open (within cooldown), requests short-circuit locally.
	before := requests.Load()
	for i := 0; i < 10; i++ {
		r.Get(bg, key(1))
	}
	if got := requests.Load(); got != before {
		t.Fatalf("open breaker let %d requests through", got-before)
	}

	// Past the cooldown with the daemon still down: one probe goes out,
	// fails, and re-opens the circuit.
	time.Sleep(60 * time.Millisecond)
	before = requests.Load()
	r.Get(bg, key(1))
	r.Get(bg, key(1))
	if got := requests.Load() - before; got != 1 {
		t.Fatalf("half-open breaker sent %d requests, want 1 probe", got)
	}

	// Heal the daemon, wait out the cooldown: the probe succeeds (a 404
	// miss is a healthy answer) and the breaker closes for good.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, ok := r.Get(bg, key(1)); ok {
		t.Fatal("hit on an entry never stored")
	}
	if rs := r.RemoteStats(); rs.BreakerOpen {
		t.Fatalf("breaker still open after healthy probe: %+v", rs)
	}
	r.Put(bg, key(1), result("one"))
	if _, ok := r.Get(bg, key(1)); !ok {
		t.Fatal("recovered daemon missed a stored entry")
	}
}

// TestRemoteBadURL: constructor rejects what can never work.
func TestRemoteBadURL(t *testing.T) {
	if _, err := NewRemote("not-a-url", RemoteConfig{}); err == nil {
		t.Fatal("scheme-less URL accepted")
	}
	if _, err := NewRemote("ftp://host", RemoteConfig{}); err == nil {
		t.Fatal("non-http scheme accepted")
	}
}

// TestTieredWithRemotePromotesAndPublishes: in the fleet composition
// Tiered(memory, remote), a remote hit is promoted into memory and a
// local computation (Put) is published to the daemon.
func TestTieredWithRemotePromotesAndPublishes(t *testing.T) {
	back := NewMemory(0)
	ts := newCacheTS(t, back)
	r := newRemote(t, ts.URL, RemoteConfig{})
	mem := NewMemory(0)
	tiered := NewTiered(mem, r)

	tiered.Put(bg, key(1), result("one"))
	if back.Stats().Puts != 1 {
		t.Fatal("local Put not published to the daemon")
	}

	// A fresh replica sharing the daemon: first Get is a remote hit,
	// promoted into its memory tier.
	mem2 := NewMemory(0)
	tiered2 := NewTiered(mem2, newRemote(t, ts.URL, RemoteConfig{}))
	if _, ok := tiered2.Get(bg, key(1)); !ok {
		t.Fatal("fresh replica missed its sibling's entry")
	}
	if mem2.Stats().Entries != 1 {
		t.Fatal("remote hit not promoted into the memory tier")
	}
}
