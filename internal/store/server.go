package store

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"knighter/internal/engine"
)

// maxEntryBytes bounds one serialized entry on the wire (both directions)
// so a corrupt or malicious peer cannot make either side buffer an
// unbounded body. Far above any real engine.Result.
const maxEntryBytes = 32 << 20

// CacheServer serves a Store over HTTP — the handler side of the Remote
// client, and the whole of the kcached daemon. The protocol is the Store
// interface spelled as four routes:
//
//	GET  /entry/{id}?fh=&ck=&eng=   cached result (200) or miss (404)
//	PUT  /entry/{id}?fh=&ck=&eng=   store a result (204)
//	POST /invalidate                {"func_hashes": [...]} -> {"invalidated": n}
//	GET  /stats                     store + request counters
//	GET  /healthz                   liveness
//
// Entries are addressed by Key.ID() in the path, with the key components
// repeated as query parameters: the server recomputes the content address
// from them and rejects mismatches, so a buggy client cannot accidentally
// store under a key other clients would trust. (The payload itself is not
// proven against the key — the daemon is a shared cache for a mutually
// trusting fleet, not a defense against malicious replicas.)
type CacheServer struct {
	st      Store
	started time.Time

	gets        atomic.Int64
	puts        atomic.Int64
	invalidates atomic.Int64
	badRequests atomic.Int64
}

// NewCacheServer wraps st (typically a *Disk) in the HTTP protocol.
func NewCacheServer(st Store) *CacheServer {
	return &CacheServer{st: st, started: time.Now()}
}

// Handler returns the route table.
func (cs *CacheServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /entry/{id}", cs.handleGet)
	mux.HandleFunc("PUT /entry/{id}", cs.handlePut)
	mux.HandleFunc("POST /invalidate", cs.handleInvalidate)
	mux.HandleFunc("GET /stats", cs.handleStats)
	mux.HandleFunc("GET /healthz", cs.handleHealthz)
	return mux
}

// entryKey reconstructs the key from the query parameters and verifies it
// matches the content address in the path. ok=false means the request was
// already answered with a 400.
func (cs *CacheServer) entryKey(w http.ResponseWriter, r *http.Request) (Key, bool) {
	q := r.URL.Query()
	k := Key{FuncHash: q.Get("fh"), CheckerFP: q.Get("ck"), EngineFP: q.Get("eng")}
	if k.FuncHash == "" {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"missing 'fh' (function hash)"}`, http.StatusBadRequest)
		return Key{}, false
	}
	if k.ID() != r.PathValue("id") {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"key components do not hash to the entry id"}`, http.StatusBadRequest)
		return Key{}, false
	}
	return k, true
}

func (cs *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	k, ok := cs.entryKey(w, r)
	if !ok {
		return
	}
	cs.gets.Add(1)
	res, ok := cs.st.Get(k)
	if !ok {
		http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func (cs *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	k, ok := cs.entryKey(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
	if err != nil || len(data) > maxEntryBytes {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"body unreadable or too large"}`, http.StatusBadRequest)
		return
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		// Never store bytes that do not round-trip as a Result: every
		// other replica would then fail its decode and count the shared
		// tier as broken.
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"body is not an engine.Result"}`, http.StatusBadRequest)
		return
	}
	if res.TimedOut || res.Canceled {
		// Timed-out and canceled results reflect one caller's wall clock
		// or lifetime, not the key's inputs — the engine-wide invariant
		// is that they are never cached, and the shared tier enforces it
		// here so one buggy client cannot poison every replica's warm
		// hits with truncated results.
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"timed-out or canceled results are uncacheable"}`, http.StatusBadRequest)
		return
	}
	cs.puts.Add(1)
	cs.st.Put(k, &res)
	w.WriteHeader(http.StatusNoContent)
}

func (cs *CacheServer) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var req invalidateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxEntryBytes)).Decode(&req); err != nil {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"bad JSON: `+err.Error()+`"}`, http.StatusBadRequest)
		return
	}
	cs.invalidates.Add(1)
	n := invalidateAll(cs.st, req.FuncHashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(invalidateResponse{Invalidated: n})
}

// CacheServerStats is the GET /stats reply.
type CacheServerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Store         Stats   `json:"store"`
	StoreHitRate  float64 `json:"store_hit_rate"`
	Gets          int64   `json:"gets"`
	Puts          int64   `json:"puts"`
	Invalidates   int64   `json:"invalidates"`
	BadRequests   int64   `json:"bad_requests"`
}

func (cs *CacheServer) handleStats(w http.ResponseWriter, r *http.Request) {
	st := cs.st.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CacheServerStats{
		UptimeSeconds: time.Since(cs.started).Seconds(),
		Store:         st,
		StoreHitRate:  st.HitRate(),
		Gets:          cs.gets.Load(),
		Puts:          cs.puts.Load(),
		Invalidates:   cs.invalidates.Load(),
		BadRequests:   cs.badRequests.Load(),
	})
}

func (cs *CacheServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "entries": cs.st.Stats().Entries})
}
