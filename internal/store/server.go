package store

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"knighter/internal/engine"
	"knighter/internal/obs"
)

// maxEntryBytes bounds one serialized entry on the wire (both directions)
// so a corrupt or malicious peer cannot make either side buffer an
// unbounded body. Far above any real engine.Result.
const maxEntryBytes = 32 << 20

// CacheServer serves a Store over HTTP — the handler side of the Remote
// client, and the whole of the kcached daemon. The protocol is the Store
// interface spelled as four routes:
//
//	GET  /entry/{id}?fh=&ck=&eng=   cached result (200) or miss (404)
//	PUT  /entry/{id}?fh=&ck=&eng=   store a result (204)
//	POST /invalidate                {"func_hashes": [...]} -> {"invalidated": n}
//	GET  /stats                     store + request counters
//	GET  /healthz                   liveness
//
// Entries are addressed by Key.ID() in the path, with the key components
// repeated as query parameters: the server recomputes the content address
// from them and rejects mismatches, so a buggy client cannot accidentally
// store under a key other clients would trust. (The payload itself is not
// proven against the key — the daemon is a shared cache for a mutually
// trusting fleet, not a defense against malicious replicas.)
type CacheServer struct {
	st      Store
	started time.Time

	gets        atomic.Int64
	puts        atomic.Int64
	invalidates atomic.Int64
	badRequests atomic.Int64

	// obs hooks, nil until Register is called: entry-request counters by
	// op and a request-latency histogram, exposed on GET /metrics.
	entryReqs *obs.CounterVec
	reqDur    *obs.HistogramVec
	metrics   http.Handler

	// traces, when EnableTracing was called, is the daemon's tail-sampled
	// trace store: every request records a root-span fragment (attached
	// under the caller's X-Span-Id) and GET /trace/{id} serves it back to
	// a coordinating kserve. Requests sharing a trace id — a scan's many
	// entry round-trips — merge into one fragment.
	traces *obs.TraceStore
}

// NewCacheServer wraps st (typically a *Disk) in the HTTP protocol.
func NewCacheServer(st Store) *CacheServer {
	return &CacheServer{st: st, started: time.Now()}
}

// EnableTracing installs the daemon's trace store; call before Register
// so the store's counters land on /metrics too.
func (cs *CacheServer) EnableTracing(ts *obs.TraceStore) { cs.traces = ts }

// Register wires the server's counters into reg and mounts reg's
// exposition on GET /metrics (kcached calls this; tests may skip it).
// The request totals that already exist as atomics for /stats are
// exposed as counter funcs rather than double-counted.
func (cs *CacheServer) Register(reg *obs.Registry) {
	cs.entryReqs = reg.CounterVec("entry_requests_total",
		"Entry requests served, by operation and outcome.", "op", "outcome")
	cs.reqDur = reg.HistogramVec("request_duration_seconds",
		"Wall time of one cache-protocol request.", nil, "op")
	reg.CounterFunc("invalidate_requests_total",
		"POST /invalidate requests served.",
		func() float64 { return float64(cs.invalidates.Load()) })
	reg.CounterFunc("bad_requests_total",
		"Requests rejected before reaching the store (bad key, oversized or unparseable body, uncacheable result).",
		func() float64 { return float64(cs.badRequests.Load()) })
	reg.GaugeFunc("store_entries", "Live entries in the backing store.",
		func() float64 { return float64(cs.st.Stats().Entries) })
	reg.GaugeFunc("store_bytes", "Serialized bytes of live entries in the backing store.",
		func() float64 { return float64(cs.st.Stats().Bytes) })
	cs.traces.Register(reg)
	if cs.traces != nil {
		reg.CounterFunc("trace_spans_dropped_total",
			"Trace spans dropped by the per-trace span cap.",
			func() float64 { return float64(obs.DroppedSpansTotal()) })
	}
	obs.RegisterBuildInfo(reg, func() float64 { return time.Since(cs.started).Seconds() })
	cs.metrics = reg.Handler()
}

// Handler returns the route table.
func (cs *CacheServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /entry/{id}", cs.timed("get", cs.handleGet))
	mux.HandleFunc("PUT /entry/{id}", cs.timed("put", cs.handlePut))
	mux.HandleFunc("POST /invalidate", cs.timed("invalidate", cs.handleInvalidate))
	mux.HandleFunc("GET /trace/{id}", cs.handleTrace)
	mux.HandleFunc("GET /traces", cs.handleTraces)
	mux.HandleFunc("GET /stats", cs.handleStats)
	mux.HandleFunc("GET /healthz", cs.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if cs.metrics == nil {
			http.Error(w, `{"error":"metrics not registered"}`, http.StatusNotFound)
			return
		}
		cs.metrics.ServeHTTP(w, r)
	})
	return mux
}

// timed wraps a handler with the per-op latency histogram (a no-op
// until Register) and, when tracing is enabled, a per-request trace
// fragment: a root span named after the op, attached under the caller's
// X-Span-Id, offered to the tail sampler when the request completes.
func (cs *CacheServer) timed(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var tr *obs.Trace
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if cs.traces != nil {
			tr = obs.NewTraceFor("kcached", r.Header.Get(obs.TraceHeader), r.Header.Get(obs.SpanHeader))
			w.Header().Set(obs.TraceHeader, tr.ID)
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		h(sw, r)
		elapsed := time.Since(start)
		if cs.reqDur != nil {
			if tr != nil {
				cs.reqDur.With(op).ObserveExemplar(elapsed.Seconds(), tr.ID)
			} else {
				cs.reqDur.With(op).Observe(elapsed.Seconds())
			}
		}
		if tr != nil {
			status := ""
			// An entry-get 404 is a miss, not a failure; anything else
			// non-2xx is worth tagging on the span.
			errored := sw.code >= 400 && !(op == "get" && sw.code == http.StatusNotFound)
			if errored {
				status = http.StatusText(sw.code)
			}
			tr.CloseRoot("kcached_"+op, status, elapsed)
			cs.traces.Add(tr, obs.TraceMeta{Route: op, Status: sw.code, Elapsed: elapsed, Errored: errored})
		}
	}
}

// handleTrace serves one retained trace fragment. kcached never fans
// out: it is always a leaf of the request tree, so the local store is
// the whole answer (the ?local=1 form coordinators send is accepted and
// identical).
func (cs *CacheServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	if cs.traces == nil {
		http.Error(w, `{"error":"tracing disabled (-trace-retain 0)"}`, http.StatusNotFound)
		return
	}
	st, ok := cs.traces.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, `{"error":"trace not retained (sampled out or evicted?)"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleTraces lists the local trace index: GET /traces?limit=N&slow=1.
func (cs *CacheServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	if cs.traces == nil {
		http.Error(w, `{"error":"tracing disabled (-trace-retain 0)"}`, http.StatusNotFound)
		return
	}
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	slowOnly := r.URL.Query().Get("slow") != ""
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"traces": cs.traces.List(limit, slowOnly)})
}

// countEntry records one entry-request outcome (no-op until Register).
func (cs *CacheServer) countEntry(op, outcome string) {
	if cs.entryReqs != nil {
		cs.entryReqs.With(op, outcome).Inc()
	}
}

// statusWriter captures the response code and size for access logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// AccessLog wraps h with a per-request log line carrying the method,
// path, status, size, duration, and the request's trace id (from the
// X-Trace-Id header; "-" when absent) — the kcached side of the fleet's
// trace stitching: grep both daemons' logs for one id and the full
// cross-host story of a request lines up.
func AccessLog(l *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		tid := r.Header.Get(obs.TraceHeader)
		if tid == "" {
			tid = "-"
		}
		l.Printf("%s %s %d %dB %.3fms trace=%s",
			r.Method, r.URL.Path, sw.code, sw.bytes,
			float64(time.Since(start).Microseconds())/1000, tid)
	})
}

// entryKey reconstructs the key from the query parameters and verifies it
// matches the content address in the path. ok=false means the request was
// already answered with a 400.
func (cs *CacheServer) entryKey(w http.ResponseWriter, r *http.Request) (Key, bool) {
	q := r.URL.Query()
	k := Key{FuncHash: q.Get("fh"), CheckerFP: q.Get("ck"), EngineFP: q.Get("eng")}
	if k.FuncHash == "" {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"missing 'fh' (function hash)"}`, http.StatusBadRequest)
		return Key{}, false
	}
	if k.ID() != r.PathValue("id") {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"key components do not hash to the entry id"}`, http.StatusBadRequest)
		return Key{}, false
	}
	return k, true
}

func (cs *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	k, ok := cs.entryKey(w, r)
	if !ok {
		return
	}
	cs.gets.Add(1)
	res, ok := cs.st.Get(r.Context(), k)
	if !ok {
		cs.countEntry("get", "miss")
		http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
		return
	}
	cs.countEntry("get", "hit")
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func (cs *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	k, ok := cs.entryKey(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
	if err != nil || len(data) > maxEntryBytes {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"body unreadable or too large"}`, http.StatusBadRequest)
		return
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		// Never store bytes that do not round-trip as a Result: every
		// other replica would then fail its decode and count the shared
		// tier as broken.
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"body is not an engine.Result"}`, http.StatusBadRequest)
		return
	}
	if res.TimedOut || res.Canceled {
		// Timed-out and canceled results reflect one caller's wall clock
		// or lifetime, not the key's inputs — the engine-wide invariant
		// is that they are never cached, and the shared tier enforces it
		// here so one buggy client cannot poison every replica's warm
		// hits with truncated results.
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"timed-out or canceled results are uncacheable"}`, http.StatusBadRequest)
		return
	}
	cs.puts.Add(1)
	cs.countEntry("put", "stored")
	cs.st.Put(r.Context(), k, &res)
	w.WriteHeader(http.StatusNoContent)
}

func (cs *CacheServer) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var req invalidateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxEntryBytes)).Decode(&req); err != nil {
		cs.badRequests.Add(1)
		http.Error(w, `{"error":"bad JSON: `+err.Error()+`"}`, http.StatusBadRequest)
		return
	}
	cs.invalidates.Add(1)
	n := invalidateAll(cs.st, req.FuncHashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(invalidateResponse{Invalidated: n})
}

// CacheServerStats is the GET /stats reply.
type CacheServerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Store         Stats   `json:"store"`
	StoreHitRate  float64 `json:"store_hit_rate"`
	Gets          int64   `json:"gets"`
	Puts          int64   `json:"puts"`
	Invalidates   int64   `json:"invalidates"`
	BadRequests   int64   `json:"bad_requests"`
	// TraceStore is present when tracing is enabled (EnableTracing).
	TraceStore *obs.TraceStoreStats `json:"trace_store,omitempty"`
}

func (cs *CacheServer) handleStats(w http.ResponseWriter, r *http.Request) {
	st := cs.st.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CacheServerStats{
		UptimeSeconds: time.Since(cs.started).Seconds(),
		Store:         st,
		StoreHitRate:  st.HitRate(),
		Gets:          cs.gets.Load(),
		Puts:          cs.puts.Load(),
		Invalidates:   cs.invalidates.Load(),
		BadRequests:   cs.badRequests.Load(),
		TraceStore:    cs.traces.Stats(),
	})
}

func (cs *CacheServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "entries": cs.st.Stats().Entries})
}
