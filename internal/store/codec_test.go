package store

import (
	"encoding/json"
	"reflect"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

func TestResultCodecRoundTrip(t *testing.T) {
	cases := map[string]*engine.Result{
		"empty": {},
		"flags-and-counters": {
			Paths: 1 << 20, Steps: 987654321,
			Truncated: true, TimedOut: true, Canceled: true,
		},
		"typical": result("use after free of 'p'"),
		"full": {
			Reports: []*checker.Report{
				{
					Checker: "knighter.uaf", BugType: "UseAfterFree",
					Message: "use of 'buf' after kfree",
					File:    "drivers/net/x.c", Func: "x_probe",
					Pos:      minic.Pos{File: "drivers/net/x.c", Line: 120, Col: 9},
					RegionAt: "x_probe:118",
					Trace: []checker.TraceStep{
						{Pos: minic.Pos{File: "drivers/net/x.c", Line: 117, Col: 3}, Note: "kfree(buf)"},
						{Pos: minic.Pos{File: "drivers/net/x.c", Line: 120, Col: 9}, Note: "use of freed 'buf'"},
					},
				},
				{
					// Zero-ish report: empty strings and no trace must survive.
					Checker: "", BugType: "", Message: "",
				},
			},
			Paths: 3, Steps: 41, Truncated: true,
			RuntimeErrs: []engine.RuntimeErr{
				{Func: "f1", Checker: "knighter.np", Panic: "index out of range"},
				{Func: "", Checker: "", Panic: ""},
			},
		},
		"unicode": {
			Reports: []*checker.Report{{Message: "déréférencement de NULL — 例"}},
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			buf := encodeResult(want)
			if len(buf) == 0 || buf[0] != resultCodecV1 {
				t.Fatalf("bad format tag: %v", buf[:1])
			}
			got, err := decodeResult(buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// Truncations and bit flips must fail decode, not panic or fabricate a
// result — a corrupt payload degrades to a cache miss.
func TestResultCodecRejectsCorruptPayloads(t *testing.T) {
	buf := encodeResult(result("msg"))
	for cut := 1; cut < len(buf); cut += 3 {
		if _, err := decodeResult(buf[:cut]); err == nil {
			// A prefix can still parse if the cut lands exactly after a
			// complete value but before a count... it cannot here, because
			// the encoding ends with RuntimeErrs whose count is mandatory.
			t.Fatalf("decode of %d-byte truncation succeeded", cut)
		}
	}
	// A huge length prefix must not cause a giant allocation or a panic.
	evil := append([]byte{resultCodecV1}, 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := decodeResult(evil); err == nil {
		t.Fatal("decode of absurd length prefix succeeded")
	}
}

// The disk tier must still read payloads written before the binary
// codec existed (the file-per-entry migration path stores raw JSON).
func TestSegmentDiskReadsLegacyJSONPayloads(t *testing.T) {
	d := newTestSegDisk(t, t.TempDir())
	defer d.Close()

	k := fkey("fLegacy", "ck")
	want := result("legacy json payload")
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] == resultCodecV1 {
		t.Fatal("test premise broken: JSON payload starts with the codec tag")
	}
	if err := d.eng.Put(k.ID(), segFuncTok(k.FuncHash), data); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(bg, k)
	if !ok {
		t.Fatal("legacy JSON payload unreadable")
	}
	if !sameResult(t, got, want) {
		t.Fatalf("legacy decode mismatch: %+v", got)
	}
}
