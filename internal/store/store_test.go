package store

import (
	"encoding/json"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

func key(n byte) Key {
	return Key{FuncHash: string([]byte{'f', n}), CheckerFP: "ck", EngineFP: "eng"}
}

func result(msg string) *engine.Result {
	return &engine.Result{
		Reports: []*checker.Report{{
			Checker: "knighter.t", BugType: "T", Message: msg,
			File: "a.c", Func: "f", Pos: minic.Pos{File: "a.c", Line: 3, Col: 1},
			Trace: []checker.TraceStep{{Pos: minic.Pos{File: "a.c", Line: 2, Col: 1}, Note: "assuming 'p' is true"}},
		}},
		Paths: 2, Steps: 10,
		RuntimeErrs: []engine.RuntimeErr{{Func: "f", Checker: "knighter.t", Panic: "boom"}},
	}
}

func TestHashSeparatesParts(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("Hash does not separate parts")
	}
	if Hash("x") != Hash("x") {
		t.Fatal("Hash is not deterministic")
	}
}

func TestKeyIDVariesPerComponent(t *testing.T) {
	base := Key{FuncHash: "f", CheckerFP: "c", EngineFP: "e"}
	for _, k := range []Key{
		{FuncHash: "g", CheckerFP: "c", EngineFP: "e"},
		{FuncHash: "f", CheckerFP: "d", EngineFP: "e"},
		{FuncHash: "f", CheckerFP: "c", EngineFP: "x"},
	} {
		if k.ID() == base.ID() {
			t.Fatalf("key %+v collides with base", k)
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(0)
	if _, ok := m.Get(bg, key(1)); ok {
		t.Fatal("empty store hit")
	}
	m.Put(bg, key(1), result("one"))
	got, ok := m.Get(bg, key(1))
	if !ok {
		t.Fatal("miss after put")
	}
	want, _ := json.Marshal(result("one"))
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("round trip mismatch:\n%s\n%s", want, have)
	}
	s := m.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemoryGetReturnsIndependentClone(t *testing.T) {
	m := NewMemory(0)
	m.Put(bg, key(1), result("one"))
	got, _ := m.Get(bg, key(1))
	got.Reports = got.Reports[:0] // caller truncates its copy
	got.RuntimeErrs = append(got.RuntimeErrs, engine.RuntimeErr{Func: "x"})
	again, _ := m.Get(bg, key(1))
	if len(again.Reports) != 1 || len(again.RuntimeErrs) != 1 {
		t.Fatalf("cached entry corrupted by caller mutation: %+v", again)
	}
}

func TestMemoryLRUEvictionByWeight(t *testing.T) {
	// All three results serialize to the same size; budget two of them
	// (plus slack smaller than a third), so the third Put must evict the
	// least recently used entry.
	w := weigh(result("1"))
	m := NewMemory(2*w + w/2)
	m.Put(bg, key(1), result("1"))
	m.Put(bg, key(2), result("2"))
	m.Get(bg, key(1)) // 1 is now most recently used
	m.Put(bg, key(3), result("3"))
	if _, ok := m.Get(bg, key(2)); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, ok := m.Get(bg, key(1)); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
	if _, ok := m.Get(bg, key(3)); !ok {
		t.Fatal("new entry 3 missing")
	}
	if s := m.Stats(); s.Evictions != 1 || s.Entries != 2 || s.Bytes != 2*w {
		t.Fatalf("stats = %+v, want 2 entries weighing %d", s, 2*w)
	}
}

func TestMemoryWeightAccounting(t *testing.T) {
	m := NewMemory(0)
	w1 := weigh(result("one"))
	m.Put(bg, key(1), result("one"))
	if s := m.Stats(); s.Bytes != w1 {
		t.Fatalf("bytes after one put = %d, want %d", s.Bytes, w1)
	}
	// Overwriting an entry replaces its weight, not adds to it.
	w2 := weigh(result("a-rather-longer-message"))
	m.Put(bg, key(1), result("a-rather-longer-message"))
	if s := m.Stats(); s.Bytes != w2 || s.Entries != 1 {
		t.Fatalf("bytes after overwrite = %+v, want %d in 1 entry", s, w2)
	}
	// Invalidation returns the weight to the budget.
	m.InvalidateFunc(key(1).FuncHash)
	if s := m.Stats(); s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("bytes after invalidation = %+v, want empty", s)
	}
}

func TestMemoryKeepsOversizedNewestEntry(t *testing.T) {
	// An entry bigger than the whole budget still caches (evicting
	// everything else): refusing it would disable caching for exactly the
	// most expensive functions.
	m := NewMemory(1)
	m.Put(bg, key(1), result("huge"))
	if _, ok := m.Get(bg, key(1)); !ok {
		t.Fatal("oversized entry rejected outright")
	}
	m.Put(bg, key(2), result("also-huge"))
	if _, ok := m.Get(bg, key(1)); ok {
		t.Fatal("over-budget tier kept two entries")
	}
	if _, ok := m.Get(bg, key(2)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestMemoryBulkInvalidateOnePass(t *testing.T) {
	m := NewMemory(0)
	m.Put(bg, Key{FuncHash: "fA", CheckerFP: "c1", EngineFP: "e"}, result("a1"))
	m.Put(bg, Key{FuncHash: "fA", CheckerFP: "c2", EngineFP: "e"}, result("a2"))
	m.Put(bg, Key{FuncHash: "fB", CheckerFP: "c1", EngineFP: "e"}, result("b"))
	m.Put(bg, Key{FuncHash: "fC", CheckerFP: "c1", EngineFP: "e"}, result("c"))
	if n := m.InvalidateFuncs([]string{"fA", "fC", "no-such-hash"}); n != 3 {
		t.Fatalf("bulk invalidation dropped %d entries, want 3", n)
	}
	if _, ok := m.Get(bg, Key{FuncHash: "fB", CheckerFP: "c1", EngineFP: "e"}); !ok {
		t.Fatal("unrelated entry dropped by bulk invalidation")
	}
	if s := m.Stats(); s.Invalidated != 3 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskRoundTripByteIdentical(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := result("disk")
	d.Put(bg, key(1), in)
	got, ok := d.Get(bg, key(1))
	if !ok {
		t.Fatal("miss after put")
	}
	want, _ := json.Marshal(in)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("disk round trip not byte-identical:\n%s\n%s", want, have)
	}
	if s := d.Stats(); s.Entries != 1 || s.Puts != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk.Put(bg, key(1), result("warm-from-disk"))
	tiered := NewTiered(mem, disk)

	if _, ok := tiered.Get(bg, key(1)); !ok {
		t.Fatal("tiered miss on disk-resident entry")
	}
	if s := mem.Stats(); s.Puts != 1 {
		t.Fatalf("disk hit not promoted to memory: %+v", s)
	}
	if _, ok := tiered.Get(bg, key(1)); !ok {
		t.Fatal("miss after promotion")
	}
	if s := tiered.Stats(); s.Hits != 2 || s.Misses != 0 {
		t.Fatalf("tiered stats = %+v", s)
	}

	tiered.Put(bg, key(2), result("two"))
	if _, ok := mem.Get(bg, key(2)); !ok {
		t.Fatal("put did not reach memory tier")
	}
	if _, ok := disk.Get(bg, key(2)); !ok {
		t.Fatal("put did not reach disk tier")
	}
}

func TestStatsHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate")
	}
	s := Stats{Hits: 9, Misses: 1}
	if r := s.HitRate(); r != 0.9 {
		t.Fatalf("hit rate = %v", r)
	}
	sum := s.Add(Stats{Hits: 1, Misses: 9, Puts: 2, Entries: 3, Bytes: 7})
	if sum.Hits != 10 || sum.Misses != 10 || sum.Puts != 2 || sum.Entries != 3 || sum.Bytes != 7 {
		t.Fatalf("Add = %+v", sum)
	}
}
