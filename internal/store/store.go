// Package store implements the content-addressed analysis-result cache
// of the incremental scan service.
//
// Analysis of one function is a pure function of three inputs: the
// function's source (plus the file-level declarations it can see), the
// checker semantics, and the engine bounds. The cache keys cached
// engine.Results by exactly that triple, so any scan — a refinement
// round re-running a barely-changed checker, an eval harness replaying
// the corpus, a kserve request — reuses every per-function result whose
// inputs did not change. This is the paper's §5 deployment cost
// (whole-tree -j32 re-scans per checker revision) turned incremental.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"knighter/internal/engine"
)

// Key addresses one cached per-function analysis result.
type Key struct {
	// FuncHash covers the function source and the file context visible
	// to analysis (file name, struct and global declarations).
	FuncHash string
	// CheckerFP covers the semantics of the checker batch, in order.
	CheckerFP string
	// EngineFP covers the engine's analysis bounds.
	EngineFP string
}

// ID collapses the key to a fixed-length content address, usable as a
// map key or a file name.
func (k Key) ID() string {
	h := sha256.Sum256([]byte("key:v1\x00" + k.FuncHash + "\x00" + k.CheckerFP + "\x00" + k.EngineFP))
	return hex.EncodeToString(h[:])
}

// Hash content-addresses a list of byte-strings (null-separated, so
// ("ab","c") and ("a","bc") hash differently).
func Hash(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Stats is a point-in-time snapshot of cache-effectiveness counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	// Bytes is the serialized size of the tier's live entries — the
	// weight the memory tier bounds itself by.
	Bytes int64 `json:"bytes"`
	// Invalidated counts entries dropped by InvalidateFunc (corpus
	// mutation made their function hash unreachable).
	Invalidated int64 `json:"invalidated"`
	// Expired counts disk entries removed by TTL garbage collection
	// (budget evictions count under Evictions instead).
	Expired int64 `json:"expired"`
	// Coalesced counts computations saved by in-flight coalescing (the
	// Coalesced tier only).
	Coalesced int64 `json:"coalesced"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add folds other's counters into s (Entries is summed too: tiers hold
// disjoint entry sets from the caller's perspective).
func (s Stats) Add(other Stats) Stats {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Puts += other.Puts
	s.Evictions += other.Evictions
	s.Entries += other.Entries
	s.Bytes += other.Bytes
	s.Invalidated += other.Invalidated
	s.Expired += other.Expired
	s.Coalesced += other.Coalesced
	return s
}

// Store is an analysis-result cache tier. Implementations must be safe
// for concurrent use and must return results that are semantically
// identical to what was stored (Get always hands back an independent
// clone, so callers may append to or re-sort the result's slices).
//
// Every operation carries the request context: local tiers ignore it,
// but the remote tier uses it to propagate the request's trace id to
// kcached and to stop waiting on the network when the caller is gone.
// A nil context is treated as context.Background().
type Store interface {
	// Get returns the cached result for k, or (nil, false).
	Get(ctx context.Context, k Key) (*engine.Result, bool)
	// Put stores r under k, overwriting any previous entry.
	Put(ctx context.Context, k Key, r *engine.Result)
	// Stats snapshots the tier's counters.
	Stats() Stats
}

// Invalidator is an optional Store extension for tiers that can drop
// every entry addressed by a given function hash. Corpus mutation calls
// it with the pre-mutation hashes of the touched functions: content
// addressing means those keys can never be requested again, so the
// entries are pure garbage. Invalidation is best-effort — a tier that
// does not implement it simply lets stale entries age out.
type Invalidator interface {
	// InvalidateFunc removes every entry whose key's FuncHash equals
	// funcHash, returning the number of entries dropped.
	InvalidateFunc(funcHash string) int
}

// BulkInvalidator is an optional Store extension for tiers that can drop
// the entries of many function hashes in one pass. A commit-sized
// changeset orphans hashes across several files at once; the bulk path
// lets a tier take its lock once (or batch its I/O) instead of paying
// per-hash overhead N times.
type BulkInvalidator interface {
	// InvalidateFuncs removes every entry addressed by any of the given
	// function hashes, returning the total number of entries dropped.
	InvalidateFuncs(funcHashes []string) int
}

// invalidateAll forwards a hash set to st through its widest supported
// invalidation interface: the bulk path when available, per-hash
// otherwise, and zero for tiers without invalidation.
func invalidateAll(st Store, funcHashes []string) int {
	switch inv := st.(type) {
	case BulkInvalidator:
		return inv.InvalidateFuncs(funcHashes)
	case Invalidator:
		n := 0
		for _, fh := range funcHashes {
			n += inv.InvalidateFunc(fh)
		}
		return n
	}
	return 0
}
