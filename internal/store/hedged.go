package store

import (
	"context"
	"sync/atomic"

	"knighter/internal/engine"
)

// Hedged races the shared fleet tier (remote kcached) against the local
// disk tier on every Get: both probes start together and the first HIT
// wins, so a slow or flaky network round-trip can never make a locally
// cached entry slower than local I/O — the remote tier bounds p99 from
// above instead of adding to it. A miss is only declared once both
// probes have missed (a fast local miss must not mask a remote hit).
//
// Puts write through to both sides, like Tiered: local for restart
// warmth, remote to publish the result to the fleet. A remote hit the
// local side missed is promoted into the local tier, so fleet results
// migrate toward the replicas that use them.
type Hedged struct {
	remote Store
	local  Store

	hits       atomic.Int64
	misses     atomic.Int64
	puts       atomic.Int64
	localWins  atomic.Int64
	remoteWins atomic.Int64
}

// NewHedged composes the remote and local tiers into one hedged store.
func NewHedged(remote, local Store) *Hedged {
	return &Hedged{remote: remote, local: local}
}

// hedgeAnswer is one probe's result.
type hedgeAnswer struct {
	r     *engine.Result
	ok    bool
	local bool
}

// Get implements Store: both probes run concurrently, the first hit is
// returned immediately and the loser is abandoned (its context is
// canceled, which the remote tier turns into an aborted request).
func (h *Hedged) Get(ctx context.Context, k Key) (*engine.Result, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan hedgeAnswer, 2)
	go func() {
		r, ok := h.remote.Get(rctx, k)
		ch <- hedgeAnswer{r, ok, false}
	}()
	go func() {
		r, ok := h.local.Get(rctx, k)
		ch <- hedgeAnswer{r, ok, true}
	}()
	for i := 0; i < 2; i++ {
		a := <-ch
		if !a.ok {
			continue
		}
		h.hits.Add(1)
		if a.local {
			h.localWins.Add(1)
		} else {
			h.remoteWins.Add(1)
			// The fleet had it and this replica's disk did not: promote, so
			// the next restart (or remote outage) serves it locally.
			h.local.Put(ctx, k, a.r)
		}
		return a.r, true
	}
	h.misses.Add(1)
	return nil, false
}

// Put implements Store: write through to both sides.
func (h *Hedged) Put(ctx context.Context, k Key, r *engine.Result) {
	h.local.Put(ctx, k, r)
	h.remote.Put(ctx, k, r)
	h.puts.Add(1)
}

// InvalidateFunc implements Invalidator.
func (h *Hedged) InvalidateFunc(funcHash string) int {
	return h.InvalidateFuncs([]string{funcHash})
}

// InvalidateFuncs implements BulkInvalidator: both sides get the whole
// hash set through their widest invalidation interface.
func (h *Hedged) InvalidateFuncs(funcHashes []string) int {
	return invalidateAll(h.local, funcHashes) + invalidateAll(h.remote, funcHashes)
}

// Stats implements Store: the hedge's own hit/miss/put counters, with
// Entries and Bytes from the local tier (the remote tier reports no
// entry counts — its contents belong to kcached's books) and the
// GC-style counters summed across both sides, mirroring Tiered.
func (h *Hedged) Stats() Stats {
	local, remote := h.local.Stats(), h.remote.Stats()
	return Stats{
		Hits:        h.hits.Load(),
		Misses:      h.misses.Load(),
		Puts:        h.puts.Load(),
		Evictions:   local.Evictions + remote.Evictions,
		Entries:     local.Entries,
		Bytes:       local.Bytes,
		Invalidated: local.Invalidated + remote.Invalidated,
		Expired:     local.Expired + remote.Expired,
	}
}

// WinStats reports how many hedged hits each side won — the number that
// says whether the fleet tier is actually faster than local I/O.
func (h *Hedged) WinStats() (localWins, remoteWins int64) {
	return h.localWins.Load(), h.remoteWins.Load()
}
