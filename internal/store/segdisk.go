package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"knighter/internal/engine"
	"knighter/internal/store/segment"
)

// SegmentDisk is the disk tier backed by the append-only segment engine
// (internal/store/segment): entries packed into a few large log files
// with an in-memory index, so a warm Get is one index probe and one
// pread instead of a file open, Put is one buffered append, and
// invalidation is an index drop plus a tombstone record. It replaces
// the file-per-entry Disk tier; NewSegmentDisk migrates an existing
// file-per-entry directory into segments on first open.
//
// Like every local tier it is best-effort: I/O errors degrade to cache
// misses, and durability is cache-grade (batched fsync — a crash loses
// at most the last flush window of puts, never corrupts the store).
type SegmentDisk struct {
	eng      *segment.Store
	hits     atomic.Int64
	misses   atomic.Int64
	migrated int
}

// SegmentDiskOption configures NewSegmentDisk.
type SegmentDiskOption func(*segment.Options)

// SegmentDiskMaxBytes sets the live-payload byte budget: past it,
// compaction evicts oldest-first until the tier fits. Non-positive =
// unbounded.
func SegmentDiskMaxBytes(n int64) SegmentDiskOption {
	return func(o *segment.Options) {
		if n > 0 {
			o.MaxBytes = n
		}
	}
}

// SegmentDiskSyncInterval overrides the batched-fsync cadence (negative
// disables the background flusher; tests use that to control sync
// points).
func SegmentDiskSyncInterval(d time.Duration) SegmentDiskOption {
	return func(o *segment.Options) { o.SyncInterval = d }
}

// segFuncTok maps a function hash to the engine's func token. It is the
// same digest the file-per-entry layout used for its shard directory
// names, which makes migration uniform: a legacy shard dir's name IS
// the token of every entry inside it, no reverse mapping needed.
func segFuncTok(funcHash string) string {
	return Hash("fdir:v1", funcHash)
}

// NewSegmentDisk opens (or creates) a segment-backed disk tier rooted
// at dir. If dir holds entries in the legacy file-per-entry layout
// (one <id>.json per entry under per-function shard directories), they
// are migrated into segments first — each file becomes one record,
// keeping its content address and its modification time as the TTL
// clock — and the legacy files are removed. A tier that was filled by
// an older binary therefore starts warm under the new engine.
func NewSegmentDisk(dir string, opts ...SegmentDiskOption) (*SegmentDisk, error) {
	o := segment.Options{}
	for _, opt := range opts {
		opt(&o)
	}
	eng, err := segment.Open(dir, o)
	if err != nil {
		return nil, err
	}
	d := &SegmentDisk{eng: eng}
	d.migrated = d.migrateLegacy(dir)
	return d, nil
}

// migrateLegacy folds a file-per-entry layout living alongside the
// segments into the engine. Best-effort, like the tier itself: a file
// that cannot be read is skipped (it was a cache entry; losing it is a
// future miss, not an error). Returns how many entries were migrated.
func (d *SegmentDisk) migrateLegacy(dir string) int {
	shards, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		funcTok := shard.Name()
		fdir := filepath.Join(dir, funcTok)
		entries, err := os.ReadDir(fdir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			p := filepath.Join(fdir, name)
			data, err := os.ReadFile(p)
			if err != nil {
				continue
			}
			at := time.Now()
			if info, err := e.Info(); err == nil {
				at = info.ModTime()
			}
			id := name[:len(name)-len(".json")]
			if d.eng.PutAt(id, funcTok, data, at) == nil {
				n++
			}
		}
		os.RemoveAll(fdir)
	}
	if n > 0 {
		d.eng.Sync()
	}
	return n
}

// Migrated reports how many legacy file-per-entry records this open
// folded into the segment log (daemons log it once at startup).
func (d *SegmentDisk) Migrated() int { return d.migrated }

// Get implements Store: one index probe, one pread, one decode. New
// records carry the binary codec (codec.go); payloads migrated from the
// file-per-entry layout are JSON and dispatch on the first byte.
func (d *SegmentDisk) Get(_ context.Context, k Key) (*engine.Result, bool) {
	data, ok := d.eng.Get(k.ID())
	if !ok || len(data) == 0 {
		d.misses.Add(1)
		return nil, false
	}
	if data[0] == resultCodecV1 {
		res, err := decodeResult(data)
		if err != nil {
			d.misses.Add(1)
			return nil, false
		}
		d.hits.Add(1)
		return res, true
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return &res, true
}

// Put implements Store: one buffered append; the batched flusher makes
// it durable within the sync interval.
func (d *SegmentDisk) Put(_ context.Context, k Key, r *engine.Result) {
	if r == nil {
		return
	}
	d.eng.Put(k.ID(), segFuncTok(k.FuncHash), encodeResult(r))
}

// InvalidateFunc implements Invalidator.
func (d *SegmentDisk) InvalidateFunc(funcHash string) int {
	return d.eng.InvalidateFunc(segFuncTok(funcHash))
}

// InvalidateFuncs implements BulkInvalidator: one lock hold and one
// append batch for the whole hash set.
func (d *SegmentDisk) InvalidateFuncs(funcHashes []string) int {
	toks := make([]string, len(funcHashes))
	for i, fh := range funcHashes {
		toks[i] = segFuncTok(fh)
	}
	return d.eng.InvalidateFuncs(toks)
}

// Compact runs one garbage-collection pass (TTL + byte budget +
// dead-segment rewrite). Exposed for tests and for daemons that want a
// final sweep at shutdown.
func (d *SegmentDisk) Compact(ttl time.Duration) segment.CompactResult {
	return d.eng.Compact(ttl)
}

// StartCompactLoop runs Compact on a ticker until ctx is done —
// replacing the file-per-entry tier's unstoppable GC goroutine with a
// loop the daemon's signal context actually stops. onSweep (optional)
// observes each pass.
func (d *SegmentDisk) StartCompactLoop(ctx context.Context, ttl time.Duration, onSweep func(removed int, dur time.Duration)) {
	d.eng.StartCompactLoop(ctx, ttl, 0, func(dur time.Duration, res segment.CompactResult) {
		if onSweep != nil {
			onSweep(res.Total(), dur)
		}
	})
}

// Close syncs and closes the engine. Operations afterwards are misses.
func (d *SegmentDisk) Close() error { return d.eng.Close() }

// Stats implements Store. Entries and Bytes come straight from the
// engine's index — exact for the live set by construction, not
// delta-maintained.
func (d *SegmentDisk) Stats() Stats {
	es := d.eng.Stats()
	return Stats{
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Puts:        es.Puts,
		Evictions:   es.Evicted,
		Entries:     es.Entries,
		Bytes:       es.Bytes,
		Invalidated: es.Invalidated,
		Expired:     es.Expired,
	}
}

// DiskBytes reports the total size of the segment files, dead records
// included — the number an operator's disk-usage alert sees, as opposed
// to Stats().Bytes which is the live payload weight.
func (d *SegmentDisk) DiskBytes() int64 { return d.eng.Stats().DiskBytes }
