package segment

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// testOptions disables the background flusher so tests control sync
// points explicitly.
func testOptions() Options {
	return Options{SyncInterval: -1}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, id, fn string, payload []byte) {
	t.Helper()
	if err := s.Put(id, fn, payload); err != nil {
		t.Fatalf("Put(%s): %v", id, err)
	}
}

func checkIntegrity(t *testing.T, s *Store) {
	t.Helper()
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// liveSet snapshots id -> payload for the whole live index.
func liveSet(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	var ids []string
	s.Walk(func(id string) { ids = append(ids, id) })
	for _, id := range ids {
		p, ok := s.Get(id)
		if !ok {
			t.Fatalf("walked id %q not gettable", id)
		}
		out[id] = string(p)
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()

	mustPut(t, s, "a", "f1", []byte("hello"))
	mustPut(t, s, "b", "f1", []byte("world"))
	mustPut(t, s, "c", "f2", []byte(""))

	for id, want := range map[string]string{"a": "hello", "b": "world", "c": ""} {
		got, ok := s.Get(id)
		if !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", id, got, ok, want)
		}
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) hit")
	}

	st := s.Stats()
	if st.Entries != 3 || st.Bytes != int64(len("hello")+len("world")) || st.Puts != 3 {
		t.Fatalf("stats = %+v", st)
	}
	checkIntegrity(t, s)
}

func TestOverwriteReplacesAndAccounts(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()

	mustPut(t, s, "a", "f1", []byte("short"))
	mustPut(t, s, "a", "f1", []byte("a longer payload"))
	got, ok := s.Get("a")
	if !ok || string(got) != "a longer payload" {
		t.Fatalf("Get(a) = %q,%v", got, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("a longer payload")) {
		t.Fatalf("stats after overwrite = %+v", st)
	}
	// Overwrite may even move the entry to a different func token; the
	// old token's index entry must not linger.
	mustPut(t, s, "a", "f2", []byte("moved"))
	if n := s.InvalidateFunc("f1"); n != 0 {
		t.Fatalf("InvalidateFunc(f1) dropped %d entries after the id moved to f2", n)
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("entry lost after func move")
	}
	checkIntegrity(t, s)
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("id%02d", i)
		fn := fmt.Sprintf("f%d", i%5)
		pay := fmt.Sprintf("payload-%d", i)
		mustPut(t, s, id, fn, []byte(pay))
		want[id] = pay
	}
	before := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	got := liveSet(t, s2)
	if len(got) != len(want) {
		t.Fatalf("reopen recovered %d entries, want %d", len(got), len(want))
	}
	for id, pay := range want {
		if got[id] != pay {
			t.Fatalf("reopen Get(%s) = %q want %q", id, got[id], pay)
		}
	}
	after := s2.Stats()
	if after.Entries != before.Entries || after.Bytes != before.Bytes {
		t.Fatalf("reopen stats %+v != pre-close %+v", after, before)
	}
	checkIntegrity(t, s2)
}

func TestTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustPut(t, s, "a", "f1", []byte("x"))
	mustPut(t, s, "b", "f1", []byte("y"))
	mustPut(t, s, "c", "f2", []byte("z"))
	if n := s.InvalidateFunc("f1"); n != 2 {
		t.Fatalf("InvalidateFunc = %d want 2", n)
	}
	s.Close()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get("a"); ok {
		t.Fatal("invalidated entry resurrected by replay")
	}
	if _, ok := s2.Get("b"); ok {
		t.Fatal("invalidated entry resurrected by replay")
	}
	if got, ok := s2.Get("c"); !ok || string(got) != "z" {
		t.Fatalf("untouched entry lost: %q,%v", got, ok)
	}
	checkIntegrity(t, s2)
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustPut(t, s, "a", "f1", []byte("committed"))
	s.Close()

	// Simulate a crash mid-append: garbage bytes (a partial record) on
	// the tail of the last segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segment files")
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, _ := os.Stat(last)
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x4b, 0x53, 0x47, 0x31, 0xff, 0x00}) // magic + torn length
	f.Close()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if got, ok := s2.Get("a"); !ok || string(got) != "committed" {
		t.Fatalf("committed entry lost after torn tail: %q,%v", got, ok)
	}
	// The tail must be truncated so new appends start on a clean frame.
	if info2, _ := os.Stat(last); info2.Size() != info.Size() {
		t.Fatalf("torn tail not truncated: %d != %d", info2.Size(), info.Size())
	}
	mustPut(t, s2, "b", "f1", []byte("after-crash"))
	s2.Close()

	s3 := mustOpen(t, dir, testOptions())
	defer s3.Close()
	for id, want := range map[string]string{"a": "committed", "b": "after-crash"} {
		if got, ok := s3.Get(id); !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", id, got, ok, want)
		}
	}
	checkIntegrity(t, s3)
}

func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustPut(t, s, "a", "f1", []byte("first"))
	mustPut(t, s, "b", "f1", []byte("second"))
	s.Close()

	// Flip a payload byte of the first record: its CRC fails, and since
	// framing past a corrupt record cannot be trusted, recovery keeps
	// only what it could verify before the damage.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	sort.Strings(segs)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+20] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get("a"); ok {
		t.Fatal("corrupt record served")
	}
	checkIntegrity(t, s2)
}

func TestCompactTTLAndBudgetBooks(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{SyncInterval: -1, MaxBytes: 30})
	defer s.Close()

	old := time.Now().Add(-2 * time.Hour)
	if err := s.PutAt("old1", "f1", []byte("0123456789"), old); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAt("old2", "f2", []byte("0123456789"), old); err != nil {
		t.Fatal(err)
	}
	// Fresh entries: 4 x 10 bytes = 40 live > 30 budget after TTL, so
	// the oldest fresh entry must be evicted too.
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := s.PutAt(id, "f3", []byte("0123456789"), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	res := s.Compact(time.Hour)
	if res.Expired != 2 {
		t.Fatalf("Expired = %d want 2 (res %+v)", res.Expired, res)
	}
	if res.Evicted != 1 {
		t.Fatalf("Evicted = %d want 1 (res %+v)", res.Evicted, res)
	}
	st := s.Stats()
	if st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("post-compact stats %+v", st)
	}
	if st.Expired != 2 || st.Evicted != 1 {
		t.Fatalf("cumulative books %+v", st)
	}
	if _, ok := s.Get("old1"); ok {
		t.Fatal("expired entry still served")
	}
	if _, ok := s.Get("new0"); ok {
		t.Fatal("evicted (oldest) entry still served")
	}
	if _, ok := s.Get("new3"); !ok {
		t.Fatal("newest entry lost")
	}
	checkIntegrity(t, s)
}

func TestCompactRewritesDeadSegments(t *testing.T) {
	dir := t.TempDir()
	// One record per segment: any append rotates once the active segment
	// holds anything.
	s := mustOpen(t, dir, Options{SyncInterval: -1, SegmentMaxBytes: 1})
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("id%02d", i), "f1", bytes.Repeat([]byte("x"), 100))
	}
	// Overwrite all but the last five: 15 segments become fully dead.
	for i := 0; i < 15; i++ {
		mustPut(t, s, fmt.Sprintf("id%02d", i), "f1", []byte("v2"))
	}
	before := s.Stats()
	res := s.Compact(0)
	if res.Removed == 0 {
		t.Fatalf("compaction removed no segments (res %+v)", res)
	}
	st := s.Stats()
	if st.DiskBytes >= before.DiskBytes {
		t.Fatalf("DiskBytes %d not reduced from %d", st.DiskBytes, before.DiskBytes)
	}
	if st.Entries != 20 {
		t.Fatalf("live entries %d changed by rewrite", st.Entries)
	}
	want := liveSet(t, s)
	checkIntegrity(t, s)
	s.Close()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	got := liveSet(t, s2)
	if len(got) != len(want) {
		t.Fatalf("reopen after compaction: %d entries want %d", len(got), len(want))
	}
	for id, pay := range want {
		if got[id] != pay {
			t.Fatalf("reopen Get(%s) = %q want %q", id, got[id], pay)
		}
	}
	checkIntegrity(t, s2)
}

// TestCompactForwardsTombstones builds the resurrection scenario: a
// dead put of func F sits in a surviving old segment, and the tombstone
// that killed it sits in a mostly-dead segment that compaction removes.
// Without tombstone forwarding, replay of the survivor would resurrect
// the dead entry after a restart.
func TestCompactForwardsTombstones(t *testing.T) {
	dir := t.TempDir()
	// Uniform record sizing so the test can steer segment boundaries:
	// 5-byte ids, 1-byte func tokens, 10-byte payloads.
	recSize := int64(headerSize + 9 + 8 + 5 + 1 + 10)
	pay := func(s string) []byte { return []byte(fmt.Sprintf("%-10s", s))[:10] }
	s := mustOpen(t, dir, Options{
		SyncInterval:        -1,
		SegmentMaxBytes:     2 * recSize,
		CompactDeadFraction: 0.6,
	})

	// seg1: keep1 (lives forever) + dead1/F (killed by the tombstone).
	mustPut(t, s, "keep1", "G", pay("keep"))
	mustPut(t, s, "dead1", "F", pay("stale"))
	// seg2: tombstone F + live2/F + fill1 (live2 re-put later makes this
	// segment mostly dead).
	if n := s.InvalidateFunc("F"); n != 1 {
		t.Fatalf("InvalidateFunc = %d", n)
	}
	mustPut(t, s, "live2", "F", pay("old"))
	mustPut(t, s, "fill1", "H", pay("fill"))
	// seg3: fill2 + live2 v2 (supersedes seg2's copy).
	mustPut(t, s, "fill2", "H", pay("fill"))
	mustPut(t, s, "live2", "F", pay("fresh"))
	// seg4 (active): fill3.
	mustPut(t, s, "fill3", "H", pay("fill"))

	res := s.Compact(0)
	if res.Removed == 0 {
		t.Fatalf("no segment removed (res %+v); dead-segment setup is off", res)
	}
	// seg1 must survive: it still holds keep1 and the dead F record.
	if _, err := os.Stat(s.segPath(1)); err != nil {
		t.Fatalf("seg1 did not survive compaction: %v", err)
	}
	checkIntegrity(t, s)
	s.Close()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if _, ok := s2.Get("dead1"); ok {
		t.Fatal("dead entry resurrected: tombstone was not forwarded past the removed segment")
	}
	for id, want := range map[string]string{
		"keep1": string(pay("keep")),
		"live2": string(pay("fresh")),
		"fill1": string(pay("fill")),
		"fill2": string(pay("fill")),
		"fill3": string(pay("fill")),
	} {
		if got, ok := s2.Get(id); !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", id, got, ok, want)
		}
	}
	checkIntegrity(t, s2)
}

// TestCompactSkipsRefsRelocatedByForwarding is the regression for a
// corruption bug: tombstone forwarding (while processing an early
// victim) re-appends live entries of the tombstoned func and updates
// their refs in place — including entries living in a LATER victim of
// the same pass. That victim's copy loop then saw the ref's new
// active-segment offset and copied garbage from its own file,
// repointing the index at it and leaving an unreplayable frame in the
// log. The copy loop must skip refs that no longer point into the
// victim.
func TestCompactSkipsRefsRelocatedByForwarding(t *testing.T) {
	dir := t.TempDir()
	// Uniform sizing: 5-byte ids, 1-byte func tokens, 10-byte payloads →
	// 45-byte put records, three per segment.
	recSize := int64(headerSize + 9 + 8 + 5 + 1 + 10)
	pay := func(s string) []byte { return []byte(fmt.Sprintf("%-10s", s))[:10] }
	s := mustOpen(t, dir, Options{
		SyncInterval:        -1,
		SegmentMaxBytes:     3 * recSize,
		CompactDeadFraction: 0.5,
	})

	// seg1 (survivor, dead fraction 1/3): keep1 + keep2 + dead1/F.
	mustPut(t, s, "keep1", "G", pay("keep"))
	mustPut(t, s, "keep2", "G", pay("keep"))
	mustPut(t, s, "dead1", "F", pay("stale"))
	// seg2 (victim, fully dead): tombstone F + junk1..3 v1.
	if n := s.InvalidateFunc("F"); n != 1 {
		t.Fatalf("InvalidateFunc = %d", n)
	}
	mustPut(t, s, "junk1", "H", pay("v1"))
	mustPut(t, s, "junk2", "H", pay("v1"))
	mustPut(t, s, "junk3", "H", pay("v1"))
	// seg3 (victim, dead fraction 2/3): liveF/F — the entry forwarding
	// will relocate — plus junk4/junk5 v1.
	mustPut(t, s, "liveF", "F", pay("fresh"))
	mustPut(t, s, "junk4", "H", pay("v1"))
	mustPut(t, s, "junk5", "H", pay("v1"))
	// seg4 (survivor): junk1..3 v2 kill seg2's copies.
	mustPut(t, s, "junk1", "H", pay("v2"))
	mustPut(t, s, "junk2", "H", pay("v2"))
	mustPut(t, s, "junk3", "H", pay("v2"))
	// seg5 (active): junk4/junk5 v2 kill seg3's copies.
	mustPut(t, s, "junk4", "H", pay("v2"))
	mustPut(t, s, "junk5", "H", pay("v2"))

	res := s.Compact(0)
	// Both seg2 (tombstone holder) and seg3 (home of the relocated entry)
	// must go: a pass that kept seg3 mishandled the relocated ref.
	if res.Removed != 2 {
		t.Fatalf("Removed = %d want 2 (res %+v)", res.Removed, res)
	}
	if got, ok := s.Get("liveF"); !ok || string(got) != string(pay("fresh")) {
		t.Fatalf("relocated entry corrupted by victim copy: %q,%v", got, ok)
	}
	want := liveSet(t, s)
	checkIntegrity(t, s)
	s.Close()

	// Replay must agree byte-for-byte: a garbage frame appended by the
	// bug truncates recovery of everything after it.
	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	got := liveSet(t, s2)
	if len(got) != len(want) {
		t.Fatalf("reopen: %d entries want %d", len(got), len(want))
	}
	for id, p := range want {
		if got[id] != p {
			t.Fatalf("reopen Get(%s) = %q want %q", id, got[id], p)
		}
	}
	if _, ok := s2.Get("dead1"); ok {
		t.Fatal("dead entry resurrected after compaction")
	}
	checkIntegrity(t, s2)
}

// TestCompactKeptVictimStillForwardsTombstones is the regression for a
// dropped-tombstone bug: survivors were computed up front excluding ALL
// victims, but a victim whose copy fails is kept on disk. If that kept
// victim is older than a removed victim holding a tombstone, the
// tombstone was skipped as unnecessary — and replay of the kept segment
// resurrected the dead entries after restart. A kept victim must count
// as a survivor for every later victim's forwarding decision.
func TestCompactKeptVictimStillForwardsTombstones(t *testing.T) {
	dir := t.TempDir()
	recSize := int64(headerSize + 9 + 8 + 5 + 1 + 10)
	pay := func(s string) []byte { return []byte(fmt.Sprintf("%-10s", s))[:10] }
	s := mustOpen(t, dir, Options{
		SyncInterval:        -1,
		SegmentMaxBytes:     2 * recSize,
		CompactDeadFraction: 0.5,
	})

	// seg1 (victim whose copy will fail): dead1/F first, live1/G second.
	mustPut(t, s, "dead1", "F", pay("stale"))
	mustPut(t, s, "live1", "G", pay("keep"))
	// seg2 (victim, fully dead): tombstone F + junkA/junkB v1.
	if n := s.InvalidateFunc("F"); n != 1 {
		t.Fatalf("InvalidateFunc = %d", n)
	}
	mustPut(t, s, "junkA", "H", pay("v1"))
	mustPut(t, s, "junkB", "H", pay("v1"))
	// seg3 (survivor): junkA/junkB v2.
	mustPut(t, s, "junkA", "H", pay("v2"))
	mustPut(t, s, "junkB", "H", pay("v2"))
	// seg4 (active).
	mustPut(t, s, "fill1", "H", pay("fill"))

	// Make seg1 dirty enough to be a victim (dead1 is dead: fraction
	// 1/2) and make its copy fail: tear live1's record off the tail, so
	// readRecord short-reads. dead1's record stays intact and replayable.
	if err := os.Truncate(s.segPath(1), recSize+10); err != nil {
		t.Fatal(err)
	}

	res := s.Compact(0)
	// seg2 removed; seg1 kept (copy failed).
	if res.Removed != 1 {
		t.Fatalf("Removed = %d want 1 (res %+v)", res.Removed, res)
	}
	if _, err := os.Stat(s.segPath(1)); err != nil {
		t.Fatalf("failed-copy victim was deleted: %v", err)
	}
	if _, err := os.Stat(s.segPath(2)); !os.IsNotExist(err) {
		t.Fatalf("dead victim not deleted: %v", err)
	}
	checkIntegrity(t, s)
	s.Close()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	// The kept seg1 replays dead1/F; the forwarded tombstone must kill it.
	if _, ok := s2.Get("dead1"); ok {
		t.Fatal("dead entry resurrected: tombstone dropped because its survivor was a kept victim")
	}
	for id, want := range map[string]string{
		"junkA": string(pay("v2")),
		"junkB": string(pay("v2")),
		"fill1": string(pay("fill")),
	} {
		if got, ok := s2.Get(id); !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", id, got, ok, want)
		}
	}
	checkIntegrity(t, s2)
}

// TestPutRejectsOversizedRecord: a record recovery would refuse to
// replay must never be written — on restart its length field reads as
// corruption and truncates every later record in the segment.
func TestPutRejectsOversizedRecord(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	if err := s.Put("big", "f", make([]byte, maxRecordBytes)); err != ErrRecordTooLarge {
		t.Fatalf("oversized Put err = %v want ErrRecordTooLarge", err)
	}
	st := s.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.DiskBytes != 0 {
		t.Fatalf("oversized Put left state behind: %+v", st)
	}
	mustPut(t, s, "ok", "f", []byte("fits"))
	if got, ok := s.Get("ok"); !ok || string(got) != "fits" {
		t.Fatalf("Get(ok) = %q,%v after rejected put", got, ok)
	}
	checkIntegrity(t, s)
}

func TestInvalidateFuncsBatch(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("id%d", i), fmt.Sprintf("f%d", i%3), []byte("p"))
	}
	n := s.InvalidateFuncs([]string{"f0", "f2", "missing"})
	// f0 holds ids 0,3,6,9; f2 holds 2,5,8.
	if n != 7 {
		t.Fatalf("InvalidateFuncs = %d want 7", n)
	}
	st := s.Stats()
	if st.Entries != 3 || st.Invalidated != 7 {
		t.Fatalf("stats %+v", st)
	}
	checkIntegrity(t, s)
}

func TestCloseThenOps(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	mustPut(t, s, "a", "f", []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Close hit")
	}
	if err := s.Put("b", "f", []byte("y")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if n := s.InvalidateFunc("f"); n != 0 {
		t.Fatalf("InvalidateFunc after Close = %d", n)
	}
}

// TestCompactLoopStopsOnContextCancel: the compaction loop honors the
// context-aware contract from day one — the daemons thread their signal
// context through it, so a graceful drain never races a sweep.
func TestCompactLoopStopsOnContextCancel(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	var sweeps atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	s.StartCompactLoop(ctx, 0, 2*time.Millisecond, func(time.Duration, CompactResult) {
		sweeps.Add(1)
	})
	deadline := time.Now().Add(2 * time.Second)
	for sweeps.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sweeps.Load() < 3 {
		t.Fatalf("compaction loop barely ran: %d sweeps", sweeps.Load())
	}
	cancel()
	// One sweep may be in flight at cancel time; after it lands, the
	// count must freeze.
	time.Sleep(20 * time.Millisecond)
	frozen := sweeps.Load()
	time.Sleep(50 * time.Millisecond)
	if got := sweeps.Load(); got != frozen {
		t.Fatalf("compaction loop kept sweeping after cancel: %d -> %d", frozen, got)
	}
}

func TestFlushLoopSyncsDirtySegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncInterval: 5 * time.Millisecond})
	mustPut(t, s, "a", "f", []byte("x"))
	deadline := time.Now().Add(2 * time.Second)
	for s.dirty.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.dirty.Load() {
		t.Fatal("flusher never cleared the dirty flag")
	}
	s.Close()
}
