package segment

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentOpsInvariants drives Put/Get/InvalidateFuncs from many
// goroutines while a compactor loops, with segment rotation and a byte
// budget both in play, then checks the ISSUE's acceptance invariant:
// the books balance against a full index walk, never go negative, and a
// reopen serves exactly the surviving live set byte-for-byte.
func TestConcurrentOpsInvariants(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{
		SyncInterval:    -1,
		SegmentMaxBytes: 4 << 10, // rotate often
		MaxBytes:        256 << 10,
	})

	const workers = 6
	const opsPerWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint id and func ranges per worker, so each goroutine can
			// reason locally while the engine-wide books stay shared.
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("w%d-id%d", w, i%40)
				fn := fmt.Sprintf("w%d-f%d", w, i%7)
				switch i % 5 {
				case 0, 1, 2:
					payload := []byte(fmt.Sprintf("payload-%d-%d-%s", w, i, id))
					if err := s.Put(id, fn, payload); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 3:
					s.Get(id)
				case 4:
					s.InvalidateFuncs([]string{fn})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			s.Compact(0)
		}
	}()
	wg.Wait()
	s.Compact(0)

	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("books went negative: %+v", st)
	}
	walked := 0
	s.Walk(func(string) { walked++ })
	if walked != st.Entries {
		t.Fatalf("Stats().Entries = %d, index walk = %d", st.Entries, walked)
	}

	// Crash-reopen equivalence: the committed live set must come back
	// byte-identical from a cold recovery scan.
	want := liveSet(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	got := liveSet(t, s2)
	if len(got) != len(want) {
		t.Fatalf("reopen: %d entries, want %d", len(got), len(want))
	}
	for id, pay := range want {
		if got[id] != pay {
			t.Fatalf("reopen Get(%s) = %q want %q", id, got[id], pay)
		}
	}
	if err := s2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// FuzzSegmentInvariants replays an arbitrary interleaving of
// put/overwrite/invalidate/compact/reopen decoded from the fuzz input,
// holding the engine to its accounting invariant after every step:
// Stats().Entries/Bytes exactly match a full index walk and never go
// negative, and a final reopen serves the live set byte-identically —
// the ISSUE 8 acceptance criterion, randomized.
func FuzzSegmentInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 10, 20, 30, 3, 3, 3, 4, 4, 4, 2, 2})
	f.Add([]byte("put-invalidate-compact-reopen"))
	f.Add([]byte{255, 254, 253, 4, 4, 4, 4, 0, 1, 2, 4})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{
			SyncInterval:    -1,
			SegmentMaxBytes: 512, // a few records per segment
			MaxBytes:        4 << 10,
		})
		defer func() { s.Close() }()

		// model mirrors what the engine must serve: id -> payload.
		model := map[string]string{}
		modelFn := map[string]string{} // id -> func token
		check := func() {
			t.Helper()
			if err := s.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Entries < 0 || st.Bytes < 0 {
				t.Fatalf("books negative: %+v", st)
			}
			walked := 0
			var walkedBytes int64
			s.Walk(func(id string) {
				walked++
				p, ok := s.Get(id)
				if !ok {
					t.Fatalf("indexed id %q unreadable", id)
				}
				walkedBytes += int64(len(p))
			})
			if walked != st.Entries || walkedBytes != st.Bytes {
				t.Fatalf("stats (%d entries, %d bytes) != walk (%d, %d)",
					st.Entries, st.Bytes, walked, walkedBytes)
			}
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			id := fmt.Sprintf("id%d", arg%24)
			fn := fmt.Sprintf("f%d", arg%5)
			switch op % 6 {
			case 0, 1: // put / overwrite
				payload := fmt.Sprintf("p-%d-%d", i, arg)
				if err := s.Put(id, fn, []byte(payload)); err != nil {
					t.Fatalf("Put: %v", err)
				}
				if oldFn, ok := modelFn[id]; ok && oldFn != fn {
					// moved funcs: model keys by id, nothing else to do
					_ = oldFn
				}
				model[id] = payload
				modelFn[id] = fn
			case 2: // invalidate one func
				s.InvalidateFuncs([]string{fn})
				for mid, mfn := range modelFn {
					if mfn == fn {
						delete(model, mid)
						delete(modelFn, mid)
					}
				}
			case 3: // get (also validates against the model)
				p, ok := s.Get(id)
				want, wok := model[id]
				if ok != wok || (ok && string(p) != want) {
					t.Fatalf("Get(%s) = %q,%v; model %q,%v", id, p, ok, want, wok)
				}
			case 4: // compact (no TTL: wall-clock must not drop entries mid-run)
				res := s.Compact(0)
				if res.Evicted > 0 {
					// The byte budget may evict oldest-first; mirror by trusting
					// the engine's live set (order is timestamp-based and the
					// model doesn't track time). Rebuild the model from it.
					surviving := map[string]string{}
					s.Walk(func(wid string) {
						if p, ok := s.Get(wid); ok {
							surviving[wid] = string(p)
						}
					})
					for mid := range model {
						if _, ok := surviving[mid]; !ok {
							delete(model, mid)
							delete(modelFn, mid)
						}
					}
				}
			case 5: // crash-reopen: close and recover mid-run
				if err := s.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				s = mustOpen(t, dir, Options{
					SyncInterval:    -1,
					SegmentMaxBytes: 512,
					MaxBytes:        4 << 10,
				})
			}
			check()
		}

		// Final reopen: the recovered store must serve the model exactly.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s = mustOpen(t, dir, testOptions())
		check()
		for id, want := range model {
			if got, ok := s.Get(id); !ok || string(got) != want {
				t.Fatalf("after final reopen Get(%s) = %q,%v want %q", id, got, ok, want)
			}
		}
		count := 0
		s.Walk(func(string) { count++ })
		if count != len(model) {
			t.Fatalf("after final reopen: %d live entries, model has %d", count, len(model))
		}
	})
}
