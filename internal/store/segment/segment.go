// Package segment implements the disk cache's storage engine: an
// append-only log of checksummed records packed into a few large segment
// files, with an in-memory index mapping each entry id to its
// (segment, offset, length). It replaces the file-per-entry layout whose
// open/stat/unlink syscalls and inode churn dominated warm-scan latency
// at fleet scale — here a warm GET is one index probe and one pread, a
// PUT is one buffered append, and deletion is an index removal whose
// disk space a background compaction reclaims later.
//
// The engine is deliberately generic: it maps string ids to byte
// payloads, with a secondary "func token" index so a corpus mutation can
// drop every entry of one function in O(entries-of-that-function). The
// store package's SegmentDisk adapter layers engine.Result serialization
// and store.Key addressing on top.
//
// Durability is cache-grade, by design: appends land in the OS page
// cache immediately (so every read in this process sees them) and a
// background flusher fsyncs the active segment at a bounded interval —
// a crash can lose at most the last flush window of puts, never corrupt
// the store. Every record carries a CRC; recovery is one sequential scan
// of the segments that rebuilds the index, truncates a torn tail, and
// skips anything that fails its checksum.
//
// Accounting is exact by construction: Entries and Bytes are derived
// from the index itself, and every index mutation happens under one
// lock — there are no delta-maintained counters that can drift when
// operations race, which is the accounting bug class the file-per-entry
// tier suffered from. Expired and Evicted count exactly what compaction
// dropped from the index; Invalidated counts exactly what invalidation
// removed.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// recMagic starts every record; a framing scan that lands on
	// anything else has hit a torn tail or corruption.
	recMagic = 0x4b534731 // "KSG1"
	// headerSize is the fixed record prefix: magic, body length, CRC.
	headerSize = 12
	// kindPut and kindTombstone are the two record types.
	kindPut       = 1
	kindTombstone = 2
	// maxRecordBytes bounds one record so a corrupt length field cannot
	// make recovery allocate an absurd buffer. Matches the wire bound the
	// cache protocol enforces. PutAt rejects anything larger: a record
	// that recovery would refuse to replay must never be written, or a
	// restart would treat it as corruption and truncate everything after
	// it.
	maxRecordBytes = 64 << 20
)

// ErrRecordTooLarge rejects a Put whose encoded record would exceed
// maxRecordBytes and therefore be unrecoverable after a restart.
var ErrRecordTooLarge = fmt.Errorf("segment: record exceeds %d bytes", maxRecordBytes)

// castagnoli is the CRC polynomial used for record checksums (hardware
// accelerated on every platform we run on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes an engine instance; zero values select the defaults.
type Options struct {
	// SegmentMaxBytes rotates the active segment past this size
	// (default 64 MiB).
	SegmentMaxBytes int64
	// MaxBytes is the live-payload byte budget (0 = unbounded): past it,
	// compaction evicts oldest-first until the live set fits.
	MaxBytes int64
	// SyncInterval is how often the background flusher fsyncs a dirty
	// active segment (default 100ms). Negative disables the flusher —
	// the caller syncs explicitly (tests, or callers that batch their
	// own barriers).
	SyncInterval time.Duration
	// CompactDeadFraction is the dead-byte fraction past which a sealed
	// segment is rewritten during compaction (default 0.5).
	CompactDeadFraction float64
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 64 << 20
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.CompactDeadFraction <= 0 {
		o.CompactDeadFraction = 0.5
	}
	return o
}

// ref locates one live entry: which segment, where the record starts,
// where its payload sits inside it, and when it was written (the TTL
// clock).
type ref struct {
	seg      uint32
	recOff   int64
	recLen   uint32
	payOff   int64
	payLen   uint32
	unixNano int64
	funcTok  string
}

// segFile is one open segment: the handle stays open for its entire
// life, so a GET is a pread with no open/close syscalls around it.
type segFile struct {
	id   uint32
	f    *os.File
	size int64
	// tombs lists the func tokens this segment holds tombstones for, so
	// compaction can forward the ones whose deletions an older surviving
	// segment's replay could otherwise undo.
	tombs []string
}

// Stats is the engine's point-in-time snapshot. Entries and Bytes come
// from the index under the lock — they cannot drift from the live set.
type Stats struct {
	Entries     int
	Bytes       int64 // live payload bytes (the cache-entry weight)
	DiskBytes   int64 // total segment-file bytes, dead records included
	Segments    int
	Puts        int64
	Invalidated int64
	Expired     int64
	Evicted     int64
	Compactions int64
}

// Store is the engine. Safe for concurrent use: reads take the read
// lock (index probe + pread), writes and compaction take the write
// lock.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	idx    map[string]*ref
	byFunc map[string]map[string]*ref
	// liveBytes is the sum of live payload lengths; maintained under mu
	// alongside every index mutation and verifiable against a full index
	// walk (VerifyIntegrity does exactly that).
	liveBytes int64
	segs      map[uint32]*segFile
	active    *segFile
	closed    bool

	// dirty flags an unsynced append; the flusher checks it each tick.
	dirty atomic.Bool
	stop  chan struct{}
	done  chan struct{}

	puts        atomic.Int64
	invalidated atomic.Int64
	expired     atomic.Int64
	evicted     atomic.Int64
	compactions atomic.Int64
}

// Open loads (or creates) the engine at dir: one sequential scan over
// the existing segments rebuilds the index, so a daemon restart starts
// warm without touching any entry it does not serve.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts.withDefaults(),
		idx:    map[string]*ref{},
		byFunc: map[string]map[string]*ref{},
		segs:   map[uint32]*segFile{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	if s.opts.SyncInterval > 0 {
		go s.flushLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

// segPath names a segment file.
func (s *Store) segPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
}

// recover scans every segment in id order, replaying puts and
// tombstones into the index. A record that fails its checksum in the
// last segment marks a torn tail: the file is truncated there and
// appends resume at that offset. In earlier segments the rest of the
// segment is skipped — its framing is lost, and whatever it held is
// either superseded by later records or gone with the crash that tore
// it.
func (s *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return err
	}
	var ids []uint32
	for _, name := range names {
		var id uint32
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		last := i == len(ids)-1
		if err := s.recoverSegment(id, last); err != nil {
			return err
		}
	}
	if s.active == nil || s.active.size >= s.opts.SegmentMaxBytes {
		next := uint32(1)
		if s.active != nil {
			next = s.active.id + 1
		}
		if err := s.openActive(next); err != nil {
			return err
		}
	}
	return nil
}

// recoverSegment replays one segment into the index.
func (s *Store) recoverSegment(id uint32, last bool) error {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	sf := &segFile{id: id, f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, headerSize)
	var body []byte
	for off+headerSize <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		bodyLen := binary.LittleEndian.Uint32(hdr[4:8])
		crc := binary.LittleEndian.Uint32(hdr[8:12])
		if magic != recMagic || bodyLen == 0 || bodyLen > maxRecordBytes ||
			off+headerSize+int64(bodyLen) > size {
			break
		}
		if int(bodyLen) > cap(body) {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := f.ReadAt(body, off+headerSize); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != crc {
			break
		}
		s.replay(sf, off, body)
		off += headerSize + int64(bodyLen)
	}
	if off < size && last {
		// Torn tail on the segment we are about to append to: truncate so
		// new records start on a clean frame.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return err
		}
		size = off
	}
	// A mid-chain segment keeps its (unreadable) tail as dead bytes; the
	// index never points there, and compaction will rewrite the segment's
	// live records and drop the file.
	sf.size = size
	s.segs[id] = sf
	if last {
		s.active = sf
	}
	return nil
}

// replay applies one decoded record body to the index during recovery.
func (s *Store) replay(sf *segFile, recOff int64, body []byte) {
	kind, unixNano, id, funcTok, payOff, payLen, ok := parseBody(body)
	if !ok {
		return
	}
	switch kind {
	case kindPut:
		s.indexPut(id, &ref{
			seg:      sf.id,
			recOff:   recOff,
			recLen:   headerSize + uint32(len(body)),
			payOff:   recOff + headerSize + payOff,
			payLen:   payLen,
			unixNano: unixNano,
			funcTok:  funcTok,
		})
	case kindTombstone:
		s.dropFuncLocked(funcTok)
		sf.tombs = append(sf.tombs, funcTok)
	}
}

// parseBody decodes a record body. For puts, payOff is the payload's
// offset WITHIN the body; payLen its length.
func parseBody(body []byte) (kind byte, unixNano int64, id, funcTok string, payOff int64, payLen uint32, ok bool) {
	if len(body) < 9 {
		return 0, 0, "", "", 0, 0, false
	}
	kind = body[0]
	unixNano = int64(binary.LittleEndian.Uint64(body[1:9]))
	rest := body[9:]
	switch kind {
	case kindPut:
		if len(rest) < 8 {
			return 0, 0, "", "", 0, 0, false
		}
		idLen := int(binary.LittleEndian.Uint16(rest[0:2]))
		fnLen := int(binary.LittleEndian.Uint16(rest[2:4]))
		payLen = binary.LittleEndian.Uint32(rest[4:8])
		if len(rest) != 8+idLen+fnLen+int(payLen) {
			return 0, 0, "", "", 0, 0, false
		}
		id = string(rest[8 : 8+idLen])
		funcTok = string(rest[8+idLen : 8+idLen+fnLen])
		payOff = int64(9 + 8 + idLen + fnLen)
		return kind, unixNano, id, funcTok, payOff, payLen, true
	case kindTombstone:
		if len(rest) < 2 {
			return 0, 0, "", "", 0, 0, false
		}
		fnLen := int(binary.LittleEndian.Uint16(rest[0:2]))
		if len(rest) != 2+fnLen {
			return 0, 0, "", "", 0, 0, false
		}
		funcTok = string(rest[2 : 2+fnLen])
		return kind, unixNano, "", funcTok, 0, 0, true
	}
	return 0, 0, "", "", 0, 0, false
}

// encodePut frames a put record.
func encodePut(id, funcTok string, payload []byte, unixNano int64) []byte {
	bodyLen := 9 + 8 + len(id) + len(funcTok) + len(payload)
	buf := make([]byte, headerSize+bodyLen)
	body := buf[headerSize:]
	body[0] = kindPut
	binary.LittleEndian.PutUint64(body[1:9], uint64(unixNano))
	binary.LittleEndian.PutUint16(body[9:11], uint16(len(id)))
	binary.LittleEndian.PutUint16(body[11:13], uint16(len(funcTok)))
	binary.LittleEndian.PutUint32(body[13:17], uint32(len(payload)))
	copy(body[17:], id)
	copy(body[17+len(id):], funcTok)
	copy(body[17+len(id)+len(funcTok):], payload)
	frame(buf)
	return buf
}

// encodeTombstone frames a tombstone record.
func encodeTombstone(funcTok string, unixNano int64) []byte {
	bodyLen := 9 + 2 + len(funcTok)
	buf := make([]byte, headerSize+bodyLen)
	body := buf[headerSize:]
	body[0] = kindTombstone
	binary.LittleEndian.PutUint64(body[1:9], uint64(unixNano))
	binary.LittleEndian.PutUint16(body[9:11], uint16(len(funcTok)))
	copy(body[11:], funcTok)
	frame(buf)
	return buf
}

// frame fills in the header (magic, body length, CRC) of an encoded
// record whose body is already in place.
func frame(buf []byte) {
	body := buf[headerSize:]
	binary.LittleEndian.PutUint32(buf[0:4], recMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(body, castagnoli))
}

// openActive creates and adopts a fresh active segment.
func (s *Store) openActive(id uint32) error {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	sf := &segFile{id: id, f: f}
	s.segs[id] = sf
	s.active = sf
	return nil
}

// appendLocked writes one framed record to the active segment, rotating
// first if the active segment is full. Returns the segment and record
// offset the record landed at. Caller holds the write lock.
func (s *Store) appendLocked(rec []byte) (*segFile, int64, error) {
	if s.active.size >= s.opts.SegmentMaxBytes {
		// Seal the outgoing segment with a final sync so rotation is also
		// a durability barrier, then start the next one.
		s.active.f.Sync()
		if err := s.openActive(s.active.id + 1); err != nil {
			return nil, 0, err
		}
	}
	off := s.active.size
	if _, err := s.active.f.WriteAt(rec, off); err != nil {
		return nil, 0, err
	}
	s.active.size += int64(len(rec))
	s.dirty.Store(true)
	return s.active, off, nil
}

// indexPut installs a ref, replacing any previous version of the id and
// keeping liveBytes exact. Caller holds the write lock.
func (s *Store) indexPut(id string, r *ref) {
	if old, ok := s.idx[id]; ok {
		s.liveBytes -= int64(old.payLen)
		if old.funcTok != r.funcTok {
			s.unindexFunc(id, old.funcTok)
		}
	}
	s.idx[id] = r
	s.liveBytes += int64(r.payLen)
	byFn := s.byFunc[r.funcTok]
	if byFn == nil {
		byFn = map[string]*ref{}
		s.byFunc[r.funcTok] = byFn
	}
	byFn[id] = r
}

// unindexFunc removes one id from the func index.
func (s *Store) unindexFunc(id, funcTok string) {
	if byFn := s.byFunc[funcTok]; byFn != nil {
		delete(byFn, id)
		if len(byFn) == 0 {
			delete(s.byFunc, funcTok)
		}
	}
}

// dropLocked removes one live entry from both indexes and the byte
// accounting. Caller holds the write lock.
func (s *Store) dropLocked(id string, r *ref) {
	delete(s.idx, id)
	s.liveBytes -= int64(r.payLen)
	s.unindexFunc(id, r.funcTok)
}

// dropFuncLocked removes every live entry of one func token, returning
// how many were dropped. Caller holds the write lock.
func (s *Store) dropFuncLocked(funcTok string) int {
	byFn := s.byFunc[funcTok]
	n := len(byFn)
	for id, r := range byFn {
		delete(s.idx, id)
		s.liveBytes -= int64(r.payLen)
	}
	delete(s.byFunc, funcTok)
	return n
}

// Put appends one entry. The previous version of the id (if any) becomes
// dead bytes for compaction to reclaim; the index moves to the new
// record atomically under the lock.
func (s *Store) Put(id, funcTok string, payload []byte) error {
	return s.PutAt(id, funcTok, payload, time.Now())
}

// PutAt is Put with an explicit timestamp — the TTL clock for the
// entry. Migration uses it to preserve the age of entries carried over
// from the file-per-entry layout.
func (s *Store) PutAt(id, funcTok string, payload []byte, t time.Time) error {
	if bodyLen := 9 + 8 + len(id) + len(funcTok) + len(payload); bodyLen > maxRecordBytes {
		return ErrRecordTooLarge
	}
	rec := encodePut(id, funcTok, payload, t.UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	sf, off, err := s.appendLocked(rec)
	if err != nil {
		return err
	}
	payOff := int64(headerSize + 9 + 8 + len(id) + len(funcTok))
	s.indexPut(id, &ref{
		seg:      sf.id,
		recOff:   off,
		recLen:   uint32(len(rec)),
		payOff:   off + payOff,
		payLen:   uint32(len(payload)),
		unixNano: t.UnixNano(),
		funcTok:  funcTok,
	})
	s.puts.Add(1)
	return nil
}

// Get returns the payload stored under id: one index probe, one pread.
// Any read failure is a miss — the engine is a cache.
func (s *Store) Get(id string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false
	}
	r, ok := s.idx[id]
	if !ok {
		return nil, false
	}
	sf := s.segs[r.seg]
	if sf == nil {
		return nil, false
	}
	buf := make([]byte, r.payLen)
	if _, err := sf.f.ReadAt(buf, r.payOff); err != nil {
		return nil, false
	}
	return buf, true
}

// InvalidateFunc drops every live entry of one func token, appending a
// tombstone so the deletion survives restart (without it, recovery would
// resurrect the entries as unreachable garbage). Returns the number of
// entries dropped.
func (s *Store) InvalidateFunc(funcTok string) int {
	return s.InvalidateFuncs([]string{funcTok})
}

// InvalidateFuncs drops the entries of many func tokens in one lock
// hold and one append batch.
func (s *Store) InvalidateFuncs(funcToks []string) int {
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	n := 0
	for _, fn := range funcToks {
		dropped := s.dropFuncLocked(fn)
		if dropped == 0 {
			continue
		}
		n += dropped
		// Tombstone only func tokens that actually had entries: an
		// invalidation storm over cold hashes must not bloat the log.
		if _, _, err := s.appendLocked(encodeTombstone(fn, now)); err == nil {
			s.active.tombs = append(s.active.tombs, fn)
		}
	}
	s.invalidated.Add(int64(n))
	return n
}

// Sync flushes the active segment to stable storage now.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.active == nil {
		return nil
	}
	s.dirty.Store(false)
	return s.active.f.Sync()
}

// flushLoop is the batched-fsync goroutine: puts never block on
// stable-storage latency; the flusher syncs a dirty active segment once
// per interval.
func (s *Store) flushLoop() {
	defer close(s.done)
	tick := time.NewTicker(s.opts.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if s.dirty.Swap(false) {
				s.mu.RLock()
				if !s.closed && s.active != nil {
					s.active.f.Sync()
				}
				s.mu.RUnlock()
			}
		}
	}
}

// Close syncs and closes every segment. The engine is unusable
// afterwards; operations return misses / zero.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		err = s.active.f.Sync()
	}
	s.closeFilesLocked()
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	return err
}

func (s *Store) closeFiles() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFilesLocked()
}

func (s *Store) closeFilesLocked() {
	for _, sf := range s.segs {
		sf.f.Close()
	}
}

// Stats snapshots the engine's counters. Entries and Bytes come from
// the index under the lock, so they are exact for the live set.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Entries:  len(s.idx),
		Bytes:    s.liveBytes,
		Segments: len(s.segs),
	}
	for _, sf := range s.segs {
		st.DiskBytes += sf.size
	}
	s.mu.RUnlock()
	st.Puts = s.puts.Load()
	st.Invalidated = s.invalidated.Load()
	st.Expired = s.expired.Load()
	st.Evicted = s.evicted.Load()
	st.Compactions = s.compactions.Load()
	return st
}

// VerifyIntegrity cross-checks the maintained accounting against a full
// index walk: the byte total must equal the sum of live payload
// lengths, both indexes must agree on the live set, and no counter may
// be negative. Tests (and the fuzz harness) call it after every
// operation; it is cheap enough to run in anger too.
func (s *Store) VerifyIntegrity() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var bytes int64
	for id, r := range s.idx {
		bytes += int64(r.payLen)
		byFn := s.byFunc[r.funcTok]
		if byFn == nil || byFn[id] != r {
			return fmt.Errorf("segment: entry %q missing from func index %q", id, r.funcTok)
		}
	}
	indexed := 0
	for fn, byFn := range s.byFunc {
		for id, r := range byFn {
			if s.idx[id] != r {
				return fmt.Errorf("segment: func index %q holds stale entry %q", fn, id)
			}
		}
		indexed += len(byFn)
	}
	if indexed != len(s.idx) {
		return fmt.Errorf("segment: func index holds %d entries, id index %d", indexed, len(s.idx))
	}
	if bytes != s.liveBytes {
		return fmt.Errorf("segment: liveBytes %d != index walk %d", s.liveBytes, bytes)
	}
	if s.liveBytes < 0 {
		return fmt.Errorf("segment: negative liveBytes %d", s.liveBytes)
	}
	return nil
}

// Walk calls fn for every live entry's id (no payload I/O). Order is
// unspecified. Used by tests to diff the live set against a reopened
// engine.
func (s *Store) Walk(fn func(id string)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.idx {
		fn(id)
	}
}

// readRecord fetches one full framed record (for compaction copies). A
// short read is an error, never a zero-padded success: compaction must
// take its keep-the-victim path rather than copy a truncated record.
func (sf *segFile) readRecord(off int64, length uint32) ([]byte, error) {
	buf := make([]byte, length)
	n, err := sf.f.ReadAt(buf, off)
	if n != int(length) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
