package segment

import (
	"context"
	"os"
	"sort"
	"time"
)

// CompactResult reports what one compaction pass actually did. The
// Expired/Evicted numbers are the entries the pass dropped from the
// index — the books are computed from the drop itself, so they cannot
// drift from the live set the way delta-maintained counters can.
type CompactResult struct {
	Expired   int
	Evicted   int
	Rewritten int // live records copied out of victim segments
	Removed   int // segment files deleted
}

// Total is the number of entries the pass removed from the live set.
func (r CompactResult) Total() int { return r.Expired + r.Evicted }

// Compact runs one pass of the engine's unified garbage collection:
//
//  1. TTL: drop live entries older than ttl (ttl <= 0 skips this phase).
//  2. Byte budget: if Options.MaxBytes is set and the live set exceeds
//     it, drop oldest entries first until it fits.
//  3. Rewrite: any sealed segment whose dead-byte fraction is at or
//     above Options.CompactDeadFraction has its live records copied to
//     the active segment and is then deleted — dead and invalidated
//     records simply don't survive the copy.
//
// The whole pass holds the write lock; it is O(live entries) plus the
// I/O of the records it copies.
func (s *Store) Compact(ttl time.Duration) CompactResult {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var res CompactResult
	if s.closed {
		return res
	}

	// Phase 1: TTL.
	if ttl > 0 {
		cutoff := now.Add(-ttl).UnixNano()
		for id, r := range s.idx {
			if r.unixNano < cutoff {
				s.dropLocked(id, r)
				res.Expired++
			}
		}
	}

	// Phase 2: byte budget, oldest first.
	if s.opts.MaxBytes > 0 && s.liveBytes > s.opts.MaxBytes {
		type victim struct {
			id string
			r  *ref
		}
		all := make([]victim, 0, len(s.idx))
		for id, r := range s.idx {
			all = append(all, victim{id, r})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].r.unixNano < all[j].r.unixNano })
		for _, v := range all {
			if s.liveBytes <= s.opts.MaxBytes {
				break
			}
			s.dropLocked(v.id, v.r)
			res.Evicted++
		}
	}

	// Phase 3: rewrite dead segments. Group live refs by segment so the
	// dead fraction and the copy set come from the index, not a file scan.
	liveBySeg := map[uint32][]*ref{}
	liveRecBytes := map[uint32]int64{}
	idBySegRef := map[*ref]string{}
	for id, r := range s.idx {
		liveBySeg[r.seg] = append(liveBySeg[r.seg], r)
		liveRecBytes[r.seg] += int64(r.recLen)
		idBySegRef[r] = id
	}

	var victims []*segFile
	for segID, sf := range s.segs {
		if s.active != nil && segID == s.active.id {
			continue
		}
		if sf.size == 0 {
			victims = append(victims, sf)
			continue
		}
		dead := sf.size - liveRecBytes[segID]
		if float64(dead)/float64(sf.size) >= s.opts.CompactDeadFraction {
			victims = append(victims, sf)
		}
	}
	if len(victims) == 0 {
		s.compactions.Add(1)
		s.expired.Add(int64(res.Expired))
		s.evicted.Add(int64(res.Evicted))
		return res
	}
	// Process victims in id order so records keep their replay order when
	// copied to the active segment.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	removing := map[uint32]bool{}
	for _, sf := range victims {
		removing[sf.id] = true
	}
	// oldestSurvivor is the smallest surviving segment id; a tombstone in
	// a victim only needs forwarding if an older segment survives it (its
	// replay could otherwise resurrect dead records of that func).
	oldestSurvivor := uint32(0)
	haveSurvivorBelow := func(victimID uint32) bool {
		return oldestSurvivor != 0 && oldestSurvivor < victimID
	}
	for id := range s.segs {
		if removing[id] {
			continue
		}
		if oldestSurvivor == 0 || id < oldestSurvivor {
			oldestSurvivor = id
		}
	}

	for _, sf := range victims {
		// Copy the victim's live records to the active segment, in offset
		// order (preserves intra-segment replay order).
		live := liveBySeg[sf.id]
		sort.Slice(live, func(i, j int) bool { return live[i].recOff < live[j].recOff })
		ok := true
		for _, r := range live {
			if r.seg != sf.id {
				// Tombstone forwarding for an earlier victim of this pass
				// already relocated this entry to the active segment; its
				// ref no longer points into this file. Copying at the new
				// offset would read garbage from the victim.
				continue
			}
			rec, err := sf.readRecord(r.recOff, r.recLen)
			if err != nil {
				ok = false
				break
			}
			dst, off, err := s.appendLocked(rec)
			if err != nil {
				ok = false
				break
			}
			payDelta := r.payOff - r.recOff
			r.seg = dst.id
			r.recOff = off
			r.payOff = off + payDelta
			res.Rewritten++
		}
		if !ok {
			// Copy failed mid-segment: keep the victim (its remaining refs
			// still point into it) and let a later pass retry. Refs already
			// copied point at the active segment, which is fine. The kept
			// file is now a survivor — later victims' tombstones must be
			// forwarded past it, or its replay could resurrect their dead
			// records after a restart.
			delete(removing, sf.id)
			if oldestSurvivor == 0 || sf.id < oldestSurvivor {
				oldestSurvivor = sf.id
			}
			continue
		}
		// Forward the victim's tombstones whose deletions could still be
		// undone by replaying an older surviving segment. Appended last,
		// a forwarded tombstone would also kill any live entries of its
		// func at replay — so those are re-appended after it, restoring
		// replay order.
		for _, fn := range sf.tombs {
			if !haveSurvivorBelow(sf.id) {
				continue
			}
			if _, _, err := s.appendLocked(encodeTombstone(fn, now.UnixNano())); err != nil {
				continue
			}
			s.active.tombs = append(s.active.tombs, fn)
			for rid, r := range s.byFunc[fn] {
				src := s.segs[r.seg]
				if src == nil {
					continue
				}
				rec, err := src.readRecord(r.recOff, r.recLen)
				if err != nil {
					s.dropLocked(rid, r)
					continue
				}
				dst, off, err := s.appendLocked(rec)
				if err != nil {
					s.dropLocked(rid, r)
					continue
				}
				payDelta := r.payOff - r.recOff
				r.seg = dst.id
				r.recOff = off
				r.payOff = off + payDelta
				res.Rewritten++
			}
		}
		// Sync the copies before unlinking their source: a crash between
		// the two must cost at most the flush window, never the copied
		// entries.
		if s.active != nil {
			s.active.f.Sync()
		}
		delete(s.segs, sf.id)
		sf.f.Close()
		os.Remove(s.segPath(sf.id))
		res.Removed++
		if oldestSurvivor == sf.id {
			oldestSurvivor = 0
			for id := range s.segs {
				if oldestSurvivor == 0 || id < oldestSurvivor {
					oldestSurvivor = id
				}
			}
		}
	}
	// A failed victim skips its per-victim sync, so sync once more before
	// clearing the dirty flag — otherwise its partial copies and forwarded
	// tombstones would sit unsynced until the next Put re-dirties the
	// segment, widening the crash-loss window past the flush interval.
	if s.active != nil && s.active.f.Sync() == nil {
		s.dirty.Store(false)
	}
	s.compactions.Add(1)
	s.expired.Add(int64(res.Expired))
	s.evicted.Add(int64(res.Evicted))
	return res
}

// CompactInterval picks a sweep cadence for a TTL: a quarter of the
// TTL, clamped to [1m, 15m]; 1m when no TTL is set (byte-budget-only
// configurations still need the loop).
func CompactInterval(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return time.Minute
	}
	every := ttl / 4
	if every < time.Minute {
		every = time.Minute
	}
	if every > 15*time.Minute {
		every = 15 * time.Minute
	}
	return every
}

// StartCompactLoop runs Compact on a ticker until ctx is done — the
// context-aware contract the file-per-entry tier's GC loop lacked, so a
// daemon's graceful drain never races a sweep. onSweep (optional) is
// called after each pass with its duration and result.
func (s *Store) StartCompactLoop(ctx context.Context, ttl, every time.Duration, onSweep func(time.Duration, CompactResult)) {
	if every <= 0 {
		every = CompactInterval(ttl)
	}
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				start := time.Now()
				res := s.Compact(ttl)
				if onSweep != nil {
					onSweep(time.Since(start), res)
				}
			}
		}
	}()
}
