package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knighter/internal/engine"
)

// TestCoalescedComputesOnce: N concurrent misses on one key run the
// computation once; everyone gets an equivalent result.
func TestCoalescedComputesOnce(t *testing.T) {
	c := NewCoalesced(NewMemory(0))
	const waiters = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	ready := make(chan struct{}, waiters)

	var wg sync.WaitGroup
	results := make([]*engine.Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _ := c.GetOrCompute(bg, key(1), func() (*engine.Result, bool) {
				ready <- struct{}{}
				<-gate // hold the flight open until every goroutine launched
				computes.Add(1)
				return result("shared"), true
			})
			results[i] = res
		}(i)
	}
	<-ready // one leader is inside compute
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	// Every goroutine that called while the flight was open joined it;
	// at most the stragglers that arrived after the leader finished can
	// have computed their own. The invariant worth pinning: far fewer
	// computations than callers, identical results for all, and real
	// coalescing counted.
	if n := computes.Load(); n >= waiters/2 {
		t.Fatalf("%d computations for %d concurrent callers", n, waiters)
	}
	for i, res := range results {
		if res == nil || len(res.Reports) != 1 || res.Reports[0].Message != "shared" {
			t.Fatalf("caller %d got %+v", i, res)
		}
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalescing counted: %+v", st)
	}
}

// TestCoalescedSharedResultsAreIndependent: callers mutating their
// copies must not corrupt the cached entry or each other.
func TestCoalescedSharedResultsAreIndependent(t *testing.T) {
	c := NewCoalesced(NewMemory(0))
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var leaderRes, followerRes *engine.Result

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		leaderRes, _ = c.GetOrCompute(bg, key(1), func() (*engine.Result, bool) {
			close(leaderIn)
			<-gate
			return result("shared"), true
		})
	}()
	go func() {
		defer wg.Done()
		<-leaderIn
		followerRes, _ = c.GetOrCompute(bg, key(1), func() (*engine.Result, bool) {
			// Runs only if this goroutine lost the race and arrived
			// after the leader finished; the assertions hold either way.
			return result("shared"), true
		})
	}()
	<-leaderIn
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	close(gate)
	wg.Wait()

	if leaderRes == nil || followerRes == nil {
		t.Fatal("nil results")
	}
	leaderRes.Reports[0] = nil
	followerRes.Reports[0] = nil
	if got, ok := c.Get(bg, key(1)); !ok || len(got.Reports) != 1 || got.Reports[0] == nil {
		t.Fatal("caller mutation reached the cached entry")
	}
}

// TestCoalescedUncacheableNotShared: a timed-out leader result is
// private to the leader — followers compute their own, and only clean
// results are cached.
func TestCoalescedUncacheableNotShared(t *testing.T) {
	c := NewCoalesced(NewMemory(0))
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		res, _ := c.GetOrCompute(bg, key(1), func() (*engine.Result, bool) {
			close(leaderIn)
			<-gate
			return &engine.Result{Truncated: true, TimedOut: true}, false
		})
		if !res.TimedOut {
			t.Error("leader's own result altered")
		}
	}()
	go func() {
		defer wg.Done()
		<-leaderIn
		res, shared := c.GetOrCompute(bg, key(1), func() (*engine.Result, bool) {
			return result("mine"), true
		})
		if shared {
			t.Error("uncacheable leader result was shared")
		}
		if res.TimedOut || len(res.Reports) != 1 || res.Reports[0].Message != "mine" {
			t.Errorf("follower got %+v", res)
		}
	}()
	<-leaderIn
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	close(gate)
	wg.Wait()

	// The follower's (cacheable) result IS cached; the leader's is not.
	if got, ok := c.Get(bg, key(1)); !ok || got.TimedOut {
		t.Fatalf("cached entry = %+v, %v; want the follower's clean result", got, ok)
	}
}

// TestCoalescedForwardsInvalidation: the wrapper is transparent to the
// invalidation path.
func TestCoalescedForwardsInvalidation(t *testing.T) {
	c := NewCoalesced(NewMemory(0))
	c.Put(bg, fkey("fA", "ck1"), result("a1"))
	c.Put(bg, fkey("fA", "ck2"), result("a2"))
	c.Put(bg, fkey("fB", "ck1"), result("b1"))
	if n := c.InvalidateFuncs([]string{"fA"}); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("unrelated entry dropped")
	}
}
