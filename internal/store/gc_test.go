package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fkey builds a key with an explicit function hash and checker
// fingerprint, so tests can lay out entries across both axes.
func fkey(funcHash, ckFP string) Key {
	return Key{FuncHash: funcHash, CheckerFP: ckFP, EngineFP: "eng"}
}

func TestMemoryInvalidateFuncDropsAllCheckersOfThatFunc(t *testing.T) {
	m := NewMemory(0)
	m.Put(bg, fkey("fA", "ck1"), result("a1"))
	m.Put(bg, fkey("fA", "ck2"), result("a2"))
	m.Put(bg, fkey("fB", "ck1"), result("b1"))

	if n := m.InvalidateFunc("fA"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := m.Get(bg, fkey("fA", "ck1")); ok {
		t.Fatal("fA/ck1 survived invalidation")
	}
	if _, ok := m.Get(bg, fkey("fA", "ck2")); ok {
		t.Fatal("fA/ck2 survived invalidation")
	}
	if _, ok := m.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("fB/ck1 dropped by unrelated invalidation")
	}
	s := m.Stats()
	if s.Invalidated != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if n := m.InvalidateFunc("no-such-hash"); n != 0 {
		t.Fatalf("invalidating an unknown hash dropped %d entries", n)
	}
}

func TestMemoryEvictionMaintainsFuncIndex(t *testing.T) {
	m := NewMemory(1) // one-byte budget: only the newest entry survives
	m.Put(bg, fkey("fA", "ck1"), result("a"))
	m.Put(bg, fkey("fB", "ck1"), result("b")) // evicts fA
	if n := m.InvalidateFunc("fA"); n != 0 {
		t.Fatalf("evicted entry still indexed: %d", n)
	}
	if n := m.InvalidateFunc("fB"); n != 1 {
		t.Fatalf("live entry not indexed: %d", n)
	}
}

func TestDiskInvalidateFunc(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(bg, fkey("fA", "ck1"), result("a1"))
	d.Put(bg, fkey("fA", "ck2"), result("a2"))
	d.Put(bg, fkey("fB", "ck1"), result("b1"))

	if n := d.InvalidateFunc("fA"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := d.Get(bg, fkey("fA", "ck1")); ok {
		t.Fatal("fA/ck1 survived invalidation")
	}
	if _, ok := d.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("fB/ck1 dropped by unrelated invalidation")
	}
	s := d.Stats()
	if s.Invalidated != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskGCDropsOnlyStaleEntries(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oldKey, newKey := fkey("fOld", "ck"), fkey("fNew", "ck")
	d.Put(bg, oldKey, result("old"))
	d.Put(bg, newKey, result("new"))

	// Backdate the old entry past the TTL.
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(d.path(oldKey), stale, stale); err != nil {
		t.Fatal(err)
	}

	removed, err := d.GC(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d entries, want 1", removed)
	}
	if _, ok := d.Get(bg, oldKey); ok {
		t.Fatal("stale entry survived GC")
	}
	if _, ok := d.Get(bg, newKey); !ok {
		t.Fatal("fresh entry removed by GC")
	}
	s := d.Stats()
	if s.Expired != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// A non-positive TTL disables collection entirely.
	if n, err := d.GC(0); n != 0 || err != nil {
		t.Fatalf("GC(0) = %d, %v; want no-op", n, err)
	}
	if _, ok := d.Get(bg, newKey); !ok {
		t.Fatal("GC(0) dropped a live entry")
	}
}

func TestNewDiskRemovesLegacyFlatEntries(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "deadbeef.json")
	if err := os.WriteFile(legacy, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatal("pre-sharding flat entry survived NewDisk; it is unreachable garbage")
	}
	// The sharded layout is untouched by the sweep.
	d.Put(bg, fkey("fA", "ck"), result("a"))
	if d2, err := NewDisk(dir); err != nil {
		t.Fatal(err)
	} else if _, ok := d2.Get(bg, fkey("fA", "ck")); !ok {
		t.Fatal("sharded entry lost across NewDisk")
	}
}

func TestTieredInvalidateFuncForwardsToBothTiers(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	tiered.Put(bg, fkey("fA", "ck"), result("a")) // write-through: both tiers
	if n := tiered.InvalidateFunc("fA"); n != 2 {
		t.Fatalf("tiered invalidation dropped %d entries, want 2 (one per tier)", n)
	}
	if _, ok := tiered.Get(bg, fkey("fA", "ck")); ok {
		t.Fatal("entry survived tiered invalidation")
	}
	if s := tiered.Stats(); s.Invalidated != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskByteAccounting(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(bg, fkey("fA", "ck1"), result("a"))
	d.Put(bg, fkey("fA", "ck2"), result("bb"))
	wantEntries, wantBytes := d.walk()
	if wantEntries != 2 || wantBytes == 0 {
		t.Fatalf("walk after two puts = %d entries / %d bytes", wantEntries, wantBytes)
	}
	if s := d.Stats(); s.Entries != wantEntries || s.Bytes != wantBytes {
		t.Fatalf("incremental counters %+v disagree with walk (%d entries, %d bytes)", s, wantEntries, wantBytes)
	}

	// Overwriting an entry replaces its weight instead of adding it.
	d.Put(bg, fkey("fA", "ck1"), result("a-much-longer-replacement-message"))
	wantEntries, wantBytes = d.walk()
	if s := d.Stats(); s.Entries != wantEntries || s.Bytes != wantBytes {
		t.Fatalf("counters after overwrite %+v disagree with walk (%d entries, %d bytes)", s, wantEntries, wantBytes)
	}

	// A fresh Disk over the same directory seeds its counters by walking.
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := d2.Stats(); s.Entries != wantEntries || s.Bytes != wantBytes {
		t.Fatalf("restart counters %+v disagree with walk (%d entries, %d bytes)", s, wantEntries, wantBytes)
	}

	// GC decrements exactly what it removed: backdate one entry past the
	// TTL, sweep, and both counters drop by that entry's size.
	stale := time.Now().Add(-2 * time.Hour)
	stalePath := d2.path(fkey("fA", "ck2"))
	staleInfo, err := os.Stat(stalePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(stalePath, stale, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.GC(time.Hour); err != nil {
		t.Fatal(err)
	}
	if s := d2.Stats(); s.Entries != wantEntries-1 || s.Bytes != wantBytes-staleInfo.Size() {
		t.Fatalf("counters after GC = %+v, want %d entries / %d bytes",
			s, wantEntries-1, wantBytes-staleInfo.Size())
	}

	// Invalidation returns the removed entries' bytes (d's counters
	// never saw d2's GC, so drive it on d2).
	d2.InvalidateFunc("fA")
	if s := d2.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("counters after invalidating everything = %+v, want zero", s)
	}
}

func TestTieredBulkInvalidateForwardsToBothTiers(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	tiered.Put(bg, fkey("fA", "ck"), result("a"))
	tiered.Put(bg, fkey("fB", "ck"), result("b"))
	tiered.Put(bg, fkey("fC", "ck"), result("c"))
	if n := tiered.InvalidateFuncs([]string{"fA", "fB"}); n != 4 {
		t.Fatalf("bulk tiered invalidation dropped %d entries, want 4 (two hashes x two tiers)", n)
	}
	if _, ok := tiered.Get(bg, fkey("fA", "ck")); ok {
		t.Fatal("entry survived bulk tiered invalidation")
	}
	if _, ok := tiered.Get(bg, fkey("fC", "ck")); !ok {
		t.Fatal("unrelated entry dropped")
	}
}

// TestDiskByteBudgetEvictsOldestFirst: past DiskMaxBytes, GC removes
// entries in modification-time order until the tier fits, counting them
// as Evictions (not Expired — that split is the TTL path's).
func TestDiskByteBudgetEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	probe, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	probe.Put(bg, fkey("probe", "ck"), result("mm"))
	entrySize := probe.Stats().Bytes
	probe.InvalidateFunc("probe")

	// Budget for two entries; store four (equal-size payloads).
	d, err := NewDisk(dir, DiskMaxBytes(2*entrySize))
	if err != nil {
		t.Fatal(err)
	}
	hashes := []string{"f1", "f2", "f3", "f4"}
	for i, fh := range hashes {
		d.Put(bg, fkey(fh, "ck"), result("mm"))
		// Distinct, strictly increasing mtimes: f1 oldest, f4 newest.
		when := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(d.path(fkey(fh, "ck")), when, when); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := d.GC(0) // no TTL: pure budget pass
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("GC removed %d entries, want 2", removed)
	}
	for _, fh := range []string{"f1", "f2"} {
		if _, ok := d.Get(bg, fkey(fh, "ck")); ok {
			t.Fatalf("oldest entry %s survived budget eviction", fh)
		}
	}
	for _, fh := range []string{"f3", "f4"} {
		if _, ok := d.Get(bg, fkey(fh, "ck")); !ok {
			t.Fatalf("newest entry %s evicted before older ones", fh)
		}
	}
	s := d.Stats()
	if s.Evictions != 2 || s.Expired != 0 {
		t.Fatalf("stats = %+v, want Evictions=2 Expired=0", s)
	}
	if s.Entries != 2 || s.Bytes != 2*entrySize {
		t.Fatalf("stats = %+v, want 2 entries / %d bytes", s, 2*entrySize)
	}
	// Counters agree with the disk after the eviction pass.
	if we, wb := d.walk(); s.Entries != we || s.Bytes != wb {
		t.Fatalf("counters %+v disagree with walk (%d entries, %d bytes)", s, we, wb)
	}
	// Under budget: the next sweep is a no-op.
	if n, err := d.GC(0); n != 0 || err != nil {
		t.Fatalf("GC under budget = %d, %v; want no-op", n, err)
	}
}

// TestDiskGCSplitsExpiredAndEvicted: one sweep applying both the TTL and
// the byte budget keeps the two counters separate.
func TestDiskGCSplitsExpiredAndEvicted(t *testing.T) {
	dir := t.TempDir()
	probe, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	probe.Put(bg, fkey("probe", "ck"), result("mm"))
	entrySize := probe.Stats().Bytes
	probe.InvalidateFunc("probe")

	d, err := NewDisk(dir, DiskMaxBytes(entrySize))
	if err != nil {
		t.Fatal(err)
	}
	// fExpired: beyond the TTL. fOld, fNew: live but over budget
	// together, so the older of the two is evicted.
	for fh, age := range map[string]time.Duration{
		"fExpired": 3 * time.Hour, "fOld": 30 * time.Minute, "fNew": time.Minute,
	} {
		d.Put(bg, fkey(fh, "ck"), result("mm"))
		when := time.Now().Add(-age)
		if err := os.Chtimes(d.path(fkey(fh, "ck")), when, when); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := d.GC(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("GC removed %d entries, want 2", removed)
	}
	s := d.Stats()
	if s.Expired != 1 || s.Evictions != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want Expired=1 Evictions=1 Entries=1", s)
	}
	if _, ok := d.Get(bg, fkey("fNew", "ck")); !ok {
		t.Fatal("newest entry did not survive the combined sweep")
	}
}
