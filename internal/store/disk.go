package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"knighter/internal/engine"
)

// Disk is the optional on-disk tier: one JSON file per entry, named by
// the key's content address. It survives process restarts, so a kserve
// daemon (or a repeated eval run) starts warm. All I/O errors are
// treated as cache misses — the disk tier is best-effort by design.
type Disk struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// NewDisk returns a disk store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Disk{dir: dir}, nil
}

func (d *Disk) path(k Key) string { return filepath.Join(d.dir, k.ID()+".json") }

// Get implements Store.
func (d *Disk) Get(k Key) (*engine.Result, bool) {
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	d.count(func(s *Stats) { s.Hits++ })
	return &res, true
}

// Put implements Store. The write is atomic (temp file + rename) so a
// concurrent reader never observes a torn entry.
func (d *Disk) Put(k Key, r *engine.Result) {
	if r == nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.count(func(s *Stats) { s.Puts++ })
}

// Stats implements Store. Entries counts the files currently on disk.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	if names, err := filepath.Glob(filepath.Join(d.dir, "*.json")); err == nil {
		s.Entries = len(names)
	}
	return s
}

func (d *Disk) count(f func(*Stats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}
