package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"knighter/internal/engine"
)

// Disk is the optional on-disk tier: one JSON file per entry, named by
// the key's content address and sharded into one directory per function
// hash — so corpus mutation can invalidate a function's entries with a
// single directory removal, and the TTL garbage collector can sweep
// entries without reading them. It survives process restarts, so a
// kserve daemon (or a repeated eval run) starts warm. All I/O errors
// are treated as cache misses — the disk tier is best-effort by design.
type Disk struct {
	dir string
	// maxBytes is the GC byte budget (0 = unbounded): past it, GC evicts
	// oldest-first until the tier fits again.
	maxBytes int64
	mu       sync.Mutex
	// entries and bytes mirror the on-disk state so Stats never walks
	// the tree (a saturated daemon's /stats poll must not pay one
	// os.Stat per cache entry). They are initialized by a one-time walk
	// in NewDisk and thereafter only move by deltas — Put, Invalidate,
	// and GC each account exactly what they added or removed, under the
	// lock. Single-process accuracy only, like the rest of the tier.
	entries int
	bytes   int64
	stats   Stats
}

// minGCInterval floors the GC sweep cadence. It is a variable only so
// tests can lower it to observe the loop's stop behavior without
// waiting a real minute.
var minGCInterval = time.Minute

// DiskOption configures NewDisk.
type DiskOption func(*Disk)

// DiskMaxBytes sets a byte budget for the tier: GC sweeps evict entries
// oldest-first (by modification time) until the tier fits, counting them
// as Evictions — the disk analog of the memory tier's LRU bound, at GC
// granularity rather than per-Put. Non-positive = unbounded.
func DiskMaxBytes(n int64) DiskOption {
	return func(d *Disk) {
		if n > 0 {
			d.maxBytes = n
		}
	}
}

// NewDisk returns a disk store rooted at dir, creating it if needed.
// Entries written by the pre-sharding layout (top-level <id>.json files)
// are unreachable under the sharded scheme, so they are removed here —
// otherwise they would sit as permanent garbage that even GC never
// visits. Pre-existing sharded entries are walked once to seed the
// entry/byte counters.
//
// Deprecated: the file-per-entry layout pays one file open per Get and
// its delta-maintained counters are racy by construction; use
// NewSegmentDisk, which opens the same directory, migrates any
// file-per-entry entries into the segment log on first open, and keeps
// exact books. NewDisk remains for tests and for tools that need the
// old layout on disk.
func NewDisk(dir string, opts ...DiskOption) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if legacy, err := filepath.Glob(filepath.Join(dir, "*.json")); err == nil {
		for _, p := range legacy {
			os.Remove(p)
		}
	}
	d := &Disk{dir: dir}
	for _, opt := range opts {
		opt(d)
	}
	d.entries, d.bytes = d.walk()
	return d, nil
}

// walk counts the live entries and their total size (the startup path;
// after that the counters move only by deltas).
func (d *Disk) walk() (int, int64) {
	entries, bytes := 0, int64(0)
	if names, err := filepath.Glob(filepath.Join(d.dir, "*", "*.json")); err == nil {
		for _, p := range names {
			if info, err := os.Stat(p); err == nil {
				entries++
				bytes += info.Size()
			}
		}
	}
	return entries, bytes
}

// funcDir shards entries by function hash. The hash is re-digested so
// arbitrary FuncHash strings always yield a safe directory name.
func (d *Disk) funcDir(funcHash string) string {
	return filepath.Join(d.dir, Hash("fdir:v1", funcHash))
}

func (d *Disk) path(k Key) string {
	return filepath.Join(d.funcDir(k.FuncHash), k.ID()+".json")
}

// Get implements Store. The context is unused — local file reads are
// not worth the cancellation plumbing.
func (d *Disk) Get(_ context.Context, k Key) (*engine.Result, bool) {
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	d.count(func(s *Stats) { s.Hits++ })
	return &res, true
}

// Put implements Store. The write is atomic (temp file + rename) so a
// concurrent reader never observes a torn entry.
func (d *Disk) Put(_ context.Context, k Key, r *engine.Result) {
	if r == nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	fdir := d.funcDir(k.FuncHash)
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(fdir, "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	// Stat, rename, and counter update happen under one lock: the
	// pre-rename size of any existing entry decides add-vs-replace, and
	// letting two same-key Puts interleave between stat and rename would
	// count one file twice, forever (a daemon without -cache-ttl never
	// runs the GC resync). The rename is a metadata operation; holding
	// the mutex across it is cheap.
	d.mu.Lock()
	oldSize := int64(-1)
	if info, err := os.Stat(d.path(k)); err == nil {
		oldSize = info.Size()
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		d.mu.Unlock()
		os.Remove(tmp.Name())
		return
	}
	d.stats.Puts++
	if oldSize >= 0 {
		d.bytes += int64(len(data)) - oldSize
	} else {
		d.entries++
		d.bytes += int64(len(data))
	}
	d.mu.Unlock()
}

// InvalidateFunc implements Invalidator: one directory removal drops
// every entry of the function, across all checker and engine
// fingerprints.
func (d *Disk) InvalidateFunc(funcHash string) int {
	fdir := d.funcDir(funcHash)
	// The whole list-measure-remove sequence holds the lock so a racing
	// Put cannot slip an entry into the directory between the listing
	// and the removal and leave the counters out of step with the disk.
	d.mu.Lock()
	defer d.mu.Unlock()
	names, _ := filepath.Glob(filepath.Join(fdir, "*.json"))
	// Count only stat-confirmed files: a GC sweep (which runs without the
	// lock) may have removed some of the globbed names already and will
	// account for them itself — counting them here too double-decrements
	// the counters, which is exactly the drift this used to have.
	n := 0
	removedBytes := int64(0)
	for _, p := range names {
		if info, err := os.Stat(p); err == nil {
			n++
			removedBytes += info.Size()
		}
	}
	if err := os.RemoveAll(fdir); err != nil {
		return 0
	}
	if n > 0 {
		d.stats.Invalidated += int64(n)
		d.entries -= n
		d.bytes -= removedBytes
		// Clamp: even if a racing sweep slipped between the stat pass and
		// the removal, the books must never report a negative tier.
		if d.entries < 0 {
			d.entries = 0
		}
		if d.bytes < 0 {
			d.bytes = 0
		}
	}
	return n
}

// InvalidateFuncs implements BulkInvalidator: one directory removal per
// hash, no per-entry I/O beyond the listing.
func (d *Disk) InvalidateFuncs(funcHashes []string) int {
	n := 0
	for _, fh := range funcHashes {
		n += d.InvalidateFunc(fh)
	}
	return n
}

// gcEntry is one live entry seen by a GC sweep: a byte-budget eviction
// candidate.
type gcEntry struct {
	path    string
	size    int64
	modTime time.Time
}

// GC removes entries older than maxAge (by modification time), then — if
// the tier was built with DiskMaxBytes and still exceeds its budget —
// evicts surviving entries oldest-first until it fits. Emptied shard
// directories are pruned. It returns the total number of entries
// removed. With maxAge <= 0 and no byte budget it is a no-op: the disk
// tier keeps everything.
func (d *Disk) GC(maxAge time.Duration) (int, error) {
	if maxAge <= 0 && d.maxBytes <= 0 {
		return 0, nil
	}
	var cutoff time.Time
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	expired := 0
	expiredBytes := int64(0)
	var live []gcEntry
	liveBytes := int64(0)
	liveByShard := map[string]int{}
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, err
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		fdir := filepath.Join(d.dir, shard.Name())
		entries, err := os.ReadDir(fdir)
		if err != nil {
			continue
		}
		liveByShard[fdir] = 0
		for _, e := range entries {
			p := filepath.Join(fdir, e.Name())
			info, err := e.Info()
			if err != nil {
				continue
			}
			if !cutoff.IsZero() && info.ModTime().Before(cutoff) {
				if os.Remove(p) == nil {
					expired++
					expiredBytes += info.Size()
					continue
				}
			}
			// The per-entry snapshot exists only for the budget pass; a
			// TTL-only tier keeps the sweep at one int per shard.
			if d.maxBytes > 0 {
				live = append(live, gcEntry{path: p, size: info.Size(), modTime: info.ModTime()})
				liveBytes += info.Size()
			}
			liveByShard[fdir]++
		}
	}

	// Budget pass over the sweep's own snapshot of the surviving
	// entries: oldest-first, so the eviction order is the disk analog of
	// LRU (a Get does not touch mtime, but a re-Put of a hot key does).
	evicted := 0
	evictedBytes := int64(0)
	if d.maxBytes > 0 && liveBytes > d.maxBytes {
		sort.Slice(live, func(i, j int) bool { return live[i].modTime.Before(live[j].modTime) })
		for _, e := range live {
			if liveBytes <= d.maxBytes {
				break
			}
			if os.Remove(e.path) == nil {
				evicted++
				evictedBytes += e.size
				liveBytes -= e.size
				liveByShard[filepath.Dir(e.path)]--
			}
		}
	}
	for fdir, n := range liveByShard {
		if n == 0 {
			os.Remove(fdir) // fails harmlessly if a Put raced in
		}
	}

	// Counters move by exactly what this sweep removed — a delta, like
	// Put and InvalidateFunc apply, never a snapshot: the sweep runs
	// without the lock, so a snapshot of "what I saw" could erase a
	// racing Put's contribution. Expired and Evictions stay split: TTL
	// removals age out, budget removals are pressure.
	if expired+evicted > 0 {
		d.mu.Lock()
		d.stats.Expired += int64(expired)
		d.stats.Evictions += int64(evicted)
		d.entries -= expired + evicted
		d.bytes -= expiredBytes + evictedBytes
		// Same clamp as InvalidateFunc: an invalidation racing the
		// lock-free sweep phase may have accounted some of these files
		// already; the books must never go negative.
		if d.entries < 0 {
			d.entries = 0
		}
		if d.bytes < 0 {
			d.bytes = 0
		}
		d.mu.Unlock()
	}
	return expired + evicted, nil
}

// StartGCLoop sweeps the tier in a background goroutine until ctx is
// done, dropping entries older than ttl and enforcing the byte budget
// (if any). Sweeps run every ttl/4 clamped to [1m, 15m]; a pure byte
// budget with no TTL sweeps every minute. onSweep, when non-nil,
// observes each sweep's outcome and duration — both daemons hook their
// logging, counters, and sweep-duration histograms there.
//
// The ctx parameter is what makes graceful shutdown honest: the daemons
// pass their signal context, so a drain never races a sweep that is
// still mutating the books while the final stats line is being logged.
func (d *Disk) StartGCLoop(ctx context.Context, ttl time.Duration, onSweep func(removed int, dur time.Duration, err error)) {
	every := minGCInterval
	if ttl > 0 {
		every = ttl / 4
		if every > 15*time.Minute {
			every = 15 * time.Minute
		}
	}
	if every < minGCInterval {
		every = minGCInterval
	}
	if ctx == nil {
		ctx = context.Background()
	}
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			start := time.Now()
			n, err := d.GC(ttl)
			if onSweep != nil {
				onSweep(n, time.Since(start), err)
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()
}

// Stats implements Store. Entries and Bytes come from the maintained
// counters — no directory walk, so polling /stats stays O(1) however
// large the tier grows.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	s.Entries = d.entries
	s.Bytes = d.bytes
	d.mu.Unlock()
	return s
}

func (d *Disk) count(f func(*Stats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}
