package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"

	"knighter/internal/engine"
)

// Disk is the optional on-disk tier: one JSON file per entry, named by
// the key's content address and sharded into one directory per function
// hash — so corpus mutation can invalidate a function's entries with a
// single directory removal, and the TTL garbage collector can sweep
// entries without reading them. It survives process restarts, so a
// kserve daemon (or a repeated eval run) starts warm. All I/O errors
// are treated as cache misses — the disk tier is best-effort by design.
type Disk struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// NewDisk returns a disk store rooted at dir, creating it if needed.
// Entries written by the pre-sharding layout (top-level <id>.json files)
// are unreachable under the sharded scheme, so they are removed here —
// otherwise they would sit as permanent garbage that even GC never
// visits.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if legacy, err := filepath.Glob(filepath.Join(dir, "*.json")); err == nil {
		for _, p := range legacy {
			os.Remove(p)
		}
	}
	return &Disk{dir: dir}, nil
}

// funcDir shards entries by function hash. The hash is re-digested so
// arbitrary FuncHash strings always yield a safe directory name.
func (d *Disk) funcDir(funcHash string) string {
	return filepath.Join(d.dir, Hash("fdir:v1", funcHash))
}

func (d *Disk) path(k Key) string {
	return filepath.Join(d.funcDir(k.FuncHash), k.ID()+".json")
}

// Get implements Store.
func (d *Disk) Get(k Key) (*engine.Result, bool) {
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	var res engine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	d.count(func(s *Stats) { s.Hits++ })
	return &res, true
}

// Put implements Store. The write is atomic (temp file + rename) so a
// concurrent reader never observes a torn entry.
func (d *Disk) Put(k Key, r *engine.Result) {
	if r == nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	fdir := d.funcDir(k.FuncHash)
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(fdir, "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.count(func(s *Stats) { s.Puts++ })
}

// InvalidateFunc implements Invalidator: one directory removal drops
// every entry of the function, across all checker and engine
// fingerprints.
func (d *Disk) InvalidateFunc(funcHash string) int {
	fdir := d.funcDir(funcHash)
	names, _ := filepath.Glob(filepath.Join(fdir, "*.json"))
	n := len(names)
	if err := os.RemoveAll(fdir); err != nil {
		return 0
	}
	if n > 0 {
		d.count(func(s *Stats) { s.Invalidated += int64(n) })
	}
	return n
}

// GC removes entries older than maxAge (by modification time) and prunes
// emptied shard directories. It returns the number of entries removed.
// A non-positive maxAge is a no-op: the disk tier keeps everything.
func (d *Disk) GC(maxAge time.Duration) (int, error) {
	if maxAge <= 0 {
		return 0, nil
	}
	cutoff := time.Now().Add(-maxAge)
	removed := 0
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, err
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		fdir := filepath.Join(d.dir, shard.Name())
		entries, err := os.ReadDir(fdir)
		if err != nil {
			continue
		}
		live := 0
		for _, e := range entries {
			p := filepath.Join(fdir, e.Name())
			info, err := e.Info()
			if err != nil {
				continue
			}
			if info.ModTime().Before(cutoff) {
				if os.Remove(p) == nil {
					removed++
					continue
				}
			}
			live++
		}
		if live == 0 {
			os.Remove(fdir) // fails harmlessly if a Put raced in
		}
	}
	if removed > 0 {
		d.count(func(s *Stats) { s.Expired += int64(removed) })
	}
	return removed, nil
}

// Stats implements Store. Entries counts the files currently on disk.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	if names, err := filepath.Glob(filepath.Join(d.dir, "*", "*.json")); err == nil {
		s.Entries = len(names)
	}
	return s
}

func (d *Disk) count(f func(*Stats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}
