package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func newTestSegDisk(t *testing.T, dir string, opts ...SegmentDiskOption) *SegmentDisk {
	t.Helper()
	// Tests control sync points; no background flusher.
	opts = append([]SegmentDiskOption{SegmentDiskSyncInterval(-1)}, opts...)
	d, err := NewSegmentDisk(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func sameResult(t *testing.T, got, want interface{}) bool {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	return string(g) == string(w)
}

func TestSegmentDiskRoundTrip(t *testing.T) {
	d := newTestSegDisk(t, t.TempDir())

	r := result("segdisk")
	d.Put(bg, fkey("fA", "ck1"), r)
	got, ok := d.Get(bg, fkey("fA", "ck1"))
	if !ok || !sameResult(t, got, r) {
		t.Fatalf("round trip failed: ok=%v got=%+v", ok, got)
	}
	if _, ok := d.Get(bg, fkey("fA", "ck2")); ok {
		t.Fatal("hit on a key never put")
	}
	st := d.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Get hands back an independent result: mutating it must not change
	// what the next Get sees.
	got.Reports[0].Message = "mutated"
	again, _ := d.Get(bg, fkey("fA", "ck1"))
	if again.Reports[0].Message != r.Reports[0].Message {
		t.Fatal("Get returned a shared result")
	}
}

func TestSegmentDiskInvalidatePersists(t *testing.T) {
	dir := t.TempDir()
	d := newTestSegDisk(t, dir)
	d.Put(bg, fkey("fA", "ck1"), result("a1"))
	d.Put(bg, fkey("fA", "ck2"), result("a2"))
	d.Put(bg, fkey("fB", "ck1"), result("b1"))
	if n := d.InvalidateFuncs([]string{"fA", "missing"}); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	st := d.Stats()
	if st.Entries != 1 || st.Invalidated != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The tombstone is in the log: a reopen must not resurrect fA.
	d2 := newTestSegDisk(t, dir)
	if _, ok := d2.Get(bg, fkey("fA", "ck1")); ok {
		t.Fatal("invalidated entry resurrected after reopen")
	}
	if _, ok := d2.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("surviving entry lost after reopen")
	}
}

func TestSegmentDiskMigratesFilePerEntry(t *testing.T) {
	dir := t.TempDir()
	legacy, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{fkey("fA", "ck1"), fkey("fA", "ck2"), fkey("fB", "ck1")}
	for i, k := range keys {
		legacy.Put(bg, k, result(string(rune('a'+i))))
	}

	d := newTestSegDisk(t, dir)
	if d.Migrated() != len(keys) {
		t.Fatalf("migrated %d entries, want %d", d.Migrated(), len(keys))
	}
	for i, k := range keys {
		got, ok := d.Get(bg, k)
		if !ok || !sameResult(t, got, result(string(rune('a'+i)))) {
			t.Fatalf("migrated entry %d: ok=%v got=%+v", i, ok, got)
		}
	}
	// The legacy shard directories are gone; only segments remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("legacy shard dir %q survived migration", e.Name())
		}
	}
	// Migrated entries keep their function-hash addressing: invalidation
	// by the ORIGINAL hash still drops them.
	if n := d.InvalidateFunc("fA"); n != 2 {
		t.Fatalf("InvalidateFunc(fA) after migration = %d, want 2", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Second open: nothing left to migrate, entries recovered from the
	// segment log.
	d2 := newTestSegDisk(t, dir)
	if d2.Migrated() != 0 {
		t.Fatalf("second open migrated %d entries", d2.Migrated())
	}
	if _, ok := d2.Get(bg, fkey("fB", "ck1")); !ok {
		t.Fatal("migrated entry lost after reopen")
	}
}

func TestSegmentDiskMigrationKeepsTTLClock(t *testing.T) {
	dir := t.TempDir()
	legacy, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Put(bg, fkey("fOld", "ck"), result("old"))
	legacy.Put(bg, fkey("fNew", "ck"), result("new"))
	// Age fOld's file two hours: migration must carry the mtime as the
	// entry's TTL clock, so a 1h TTL compaction expires it immediately.
	oldPath := filepath.Join(legacy.funcDir("fOld"), fkey("fOld", "ck").ID()+".json")
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(oldPath, past, past); err != nil {
		t.Fatal(err)
	}

	d := newTestSegDisk(t, dir)
	res := d.Compact(time.Hour)
	if res.Expired != 1 {
		t.Fatalf("expired %d migrated entries, want 1 (res %+v)", res.Expired, res)
	}
	if _, ok := d.Get(bg, fkey("fOld", "ck")); ok {
		t.Fatal("aged migrated entry survived TTL compaction")
	}
	if _, ok := d.Get(bg, fkey("fNew", "ck")); !ok {
		t.Fatal("fresh migrated entry expired")
	}
}

func TestSegmentDiskNilAndUncacheable(t *testing.T) {
	d := newTestSegDisk(t, t.TempDir())
	d.Put(bg, fkey("fA", "ck"), nil)
	if st := d.Stats(); st.Puts != 0 || st.Entries != 0 {
		t.Fatalf("nil Put stored something: %+v", st)
	}
}

func TestSegmentDiskStatsMatchEngineBooks(t *testing.T) {
	d := newTestSegDisk(t, t.TempDir(), SegmentDiskMaxBytes(1))
	for i := 0; i < 8; i++ {
		d.Put(bg, fkey(string(rune('a'+i)), "ck"), result("x"))
	}
	// A 1-byte budget evicts everything on compaction; Entries/Bytes
	// must be exactly zero afterwards, never negative.
	d.Compact(0)
	st := d.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-evict-all stats = %+v", st)
	}
	if st.Evictions != 8 {
		t.Fatalf("evictions = %d want 8", st.Evictions)
	}
	if !reflect.DeepEqual(st.Entries, 0) {
		t.Fatalf("entries %v", st.Entries)
	}
}
