package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"knighter/internal/engine"
	"knighter/internal/obs"
)

// Remote is the network cache tier: an HTTP client for a kcached daemon,
// letting a fleet of kserve replicas share one content-addressed result
// store. It implements Store and BulkInvalidator over the same key space
// the disk tier uses, so the daemon is nothing more than store.Disk with
// a socket in front.
//
// The tier is strictly best-effort, like Disk: every failure mode — the
// daemon down, a request timing out, a corrupt payload, the circuit
// breaker open — degrades to a cache miss, never to a request error, so
// a replica whose kcached disappears keeps serving from its local tiers
// with zero failed scans. A circuit breaker bounds the cost of a dead or
// slow daemon: after BreakerThreshold consecutive failures the tier
// stops issuing requests for BreakerCooldown, then lets a single probe
// through to test recovery.
type Remote struct {
	base   string
	client *http.Client

	mu sync.Mutex
	// breaker state and counters, guarded by mu.
	consecFails  int
	openUntil    time.Time
	probing      bool
	stats        Stats
	errors       int64
	breakerOpens int64

	threshold int
	cooldown  time.Duration
}

// RemoteConfig tunes the client; zero values select the defaults.
type RemoteConfig struct {
	// Timeout bounds one round-trip (default 2s). A slow kcached must
	// cost less than recomputing the result it would have returned.
	Timeout time.Duration
	// MaxConns bounds the connection pool to the daemon (default 16), so
	// a wide scan's miss storm cannot exhaust file descriptors.
	MaxConns int
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a probe
	// is allowed through (default 5s).
	BreakerCooldown time.Duration
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 16
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// NewRemote returns a remote tier talking to the kcached daemon at
// baseURL (e.g. "http://cache-host:8322").
func NewRemote(baseURL string, cfg RemoteConfig) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: remote URL %q: scheme must be http or https", baseURL)
	}
	cfg = cfg.withDefaults()
	return &Remote{
		base: strings.TrimRight(baseURL, "/"),
		client: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxConnsPerHost:     cfg.MaxConns,
				MaxIdleConnsPerHost: cfg.MaxConns,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
	}, nil
}

// entryURL addresses one entry: the content address is the path, and the
// key components ride as query parameters so the daemon can (a) verify
// the address and (b) shard storage by function hash exactly like the
// local disk tier.
func (r *Remote) entryURL(k Key) string {
	q := url.Values{}
	q.Set("fh", k.FuncHash)
	q.Set("ck", k.CheckerFP)
	q.Set("eng", k.EngineFP)
	return r.base + "/entry/" + k.ID() + "?" + q.Encode()
}

// allow reports whether the breaker permits a request right now.
func (r *Remote) allow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.consecFails < r.threshold {
		return true
	}
	// Open. Past the cooldown, let exactly one probe through at a time.
	if time.Now().After(r.openUntil) && !r.probing {
		r.probing = true
		return true
	}
	return false
}

// success records a healthy round-trip (including a 404 miss — the
// daemon answered), closing the breaker.
func (r *Remote) success() {
	r.mu.Lock()
	r.consecFails = 0
	r.probing = false
	r.mu.Unlock()
}

// abandon releases a request slot without judging the daemon: the
// caller's context was canceled mid-flight, which says nothing about
// kcached's health, so neither the consecutive-failure count nor the
// probe state should move toward (or away from) opening the breaker.
func (r *Remote) abandon() {
	r.mu.Lock()
	r.probing = false
	r.mu.Unlock()
}

// failure records a failed round-trip, opening the breaker at the
// threshold (and immediately re-opening it when a probe fails).
func (r *Remote) failure() {
	r.mu.Lock()
	r.errors++
	r.consecFails++
	r.probing = false
	if r.consecFails >= r.threshold {
		if r.consecFails == r.threshold || time.Now().After(r.openUntil) {
			r.breakerOpens++
		}
		r.openUntil = time.Now().Add(r.cooldown)
	}
	r.mu.Unlock()
}

// newRequest builds one round-trip's request, carrying the caller's
// trace id and parent span id (if any) so the kcached access log — and
// its trace-store fragment — can be stitched under the originating
// kserve request's span tree.
func (r *Remote) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	obs.InjectHeaders(ctx, req.Header)
	return req, nil
}

// Get implements Store. Any failure is a miss. The caller's context
// both propagates the trace id and aborts the network wait when the
// caller is gone — a cancellation-aborted Get is a miss that does NOT
// count against the breaker (the daemon did nothing wrong; the client
// hung up).
func (r *Remote) Get(ctx context.Context, k Key) (*engine.Result, bool) {
	if !r.allow() {
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	req, err := r.newRequest(ctx, http.MethodGet, r.entryURL(k), nil)
	if err != nil {
		r.abandon()
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if req.Context().Err() != nil {
			// Aborted by the caller, not failed by the daemon: release the
			// probe slot without moving the breaker either way.
			r.abandon()
		} else {
			r.failure()
		}
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		r.success()
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		r.failure()
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	var res engine.Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&res); err != nil {
		// A 200 carrying garbage is a daemon fault, not a miss on its
		// part — count it against the breaker so a corrupting proxy or
		// half-dead daemon gets cut off like a dead one.
		r.failure()
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	if res.TimedOut || res.Canceled {
		// The daemon rejects these at Put, but an old or foreign daemon
		// might not: a truncated result is uncacheable by the engine-wide
		// invariant, so serving it as a hit would propagate one caller's
		// timeout to every replica. The daemon did answer — a healthy
		// round-trip, just an unusable entry.
		r.success()
		r.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	r.success()
	r.count(func(s *Stats) { s.Hits++ })
	return &res, true
}

// Put implements Store. Best-effort: failures are dropped silently
// (beyond breaker accounting). Timed-out and canceled results are never
// sent — the daemon would reject them with a 400 that counts against
// our breaker. The publish deliberately detaches from the caller's
// cancellation (keeping its trace id): the computed bytes are valid for
// the whole fleet even if this caller just disconnected, and an aborted
// publish would read as a daemon failure to the breaker.
func (r *Remote) Put(ctx context.Context, k Key, res *engine.Result) {
	if res == nil || res.TimedOut || res.Canceled || !r.allow() {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := r.newRequest(context.WithoutCancel(ctx), http.MethodPut, r.entryURL(k), bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		r.failure()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		r.failure()
		return
	}
	r.success()
	r.count(func(s *Stats) { s.Puts++ })
}

// invalidateRequest is the POST /invalidate wire format.
type invalidateRequest struct {
	FuncHashes []string `json:"func_hashes"`
}

// invalidateResponse is its reply.
type invalidateResponse struct {
	Invalidated int `json:"invalidated"`
}

// InvalidateFuncs implements BulkInvalidator: one POST carries the whole
// orphan set. Best-effort like everything else here — if the daemon is
// unreachable the entries stay as garbage under unreachable keys (content
// addressing means they can never be served stale) until its GC ages
// them out.
func (r *Remote) InvalidateFuncs(funcHashes []string) int {
	if len(funcHashes) == 0 || !r.allow() {
		return 0
	}
	data, err := json.Marshal(invalidateRequest{FuncHashes: funcHashes})
	if err != nil {
		return 0
	}
	resp, err := r.client.Post(r.base+"/invalidate", "application/json", bytes.NewReader(data))
	if err != nil {
		r.failure()
		return 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		r.failure()
		return 0
	}
	var out invalidateResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		r.failure()
		return 0
	}
	r.success()
	r.count(func(s *Stats) { s.Invalidated += int64(out.Invalidated) })
	return out.Invalidated
}

// InvalidateFunc implements Invalidator.
func (r *Remote) InvalidateFunc(funcHash string) int {
	return r.InvalidateFuncs([]string{funcHash})
}

// Stats implements Store. Entries/Bytes are always zero — the daemon
// owns them; RemoteStats carries the client-side health counters.
func (r *Remote) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	r.mu.Unlock()
	return s
}

// RemoteStats is the client-side view of the network tier's health.
type RemoteStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Invalidated int64 `json:"invalidated"`
	// Errors counts failed round-trips of any kind (connection refused,
	// timeout, non-2xx, corrupt payload). Every one surfaced as a miss.
	Errors int64 `json:"errors"`
	// BreakerOpens counts closed→open transitions; BreakerOpen is the
	// instantaneous state.
	BreakerOpens int64 `json:"breaker_opens"`
	BreakerOpen  bool  `json:"breaker_open"`
}

// RemoteStats snapshots the health counters.
func (r *Remote) RemoteStats() RemoteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RemoteStats{
		Hits:         r.stats.Hits,
		Misses:       r.stats.Misses,
		Puts:         r.stats.Puts,
		Invalidated:  r.stats.Invalidated,
		Errors:       r.errors,
		BreakerOpens: r.breakerOpens,
		BreakerOpen:  r.consecFails >= r.threshold && !(time.Now().After(r.openUntil) && !r.probing),
	}
}

func (r *Remote) count(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}
