package store

import (
	"context"
	"sync"

	"knighter/internal/engine"
)

// Tiered composes a fast front tier (typically Memory) with a larger
// back tier (typically Disk). Gets probe front-to-back and promote back
// hits into the front tier; Puts write through to both.
type Tiered struct {
	front Store
	back  Store
	mu    sync.Mutex
	stats Stats
}

// NewTiered composes front and back into one store.
func NewTiered(front, back Store) *Tiered {
	return &Tiered{front: front, back: back}
}

// Get implements Store.
func (t *Tiered) Get(ctx context.Context, k Key) (*engine.Result, bool) {
	if r, ok := t.front.Get(ctx, k); ok {
		t.count(func(s *Stats) { s.Hits++ })
		return r, true
	}
	if r, ok := t.back.Get(ctx, k); ok {
		t.front.Put(ctx, k, r)
		t.count(func(s *Stats) { s.Hits++ })
		return r, true
	}
	t.count(func(s *Stats) { s.Misses++ })
	return nil, false
}

// Put implements Store.
func (t *Tiered) Put(ctx context.Context, k Key, r *engine.Result) {
	t.front.Put(ctx, k, r)
	t.back.Put(ctx, k, r)
	t.count(func(s *Stats) { s.Puts++ })
}

// Stats implements Store: the composite's own hit/miss/put counters,
// with entries and evictions aggregated from the tiers. Entries and
// Bytes both report the back tier alone, unconditionally: Puts write
// through and Gets promote, so the back tier is a superset of the front
// and summing the tiers would double-count every promoted entry. When
// the back tier is legitimately empty (right after a full invalidation,
// or a back tier that only holds what survives its budget) the
// composite reports empty too — falling back to front-tier counts here
// inflated /stats and /metrics with entries the back tier did not hold.
// Callers that want the per-tier breakdown use TierStats.
func (t *Tiered) Stats() Stats {
	t.mu.Lock()
	s := t.stats
	t.mu.Unlock()
	front, back := t.front.Stats(), t.back.Stats()
	s.Evictions = front.Evictions + back.Evictions
	s.Invalidated = front.Invalidated + back.Invalidated
	s.Expired = front.Expired + back.Expired
	s.Entries = back.Entries
	s.Bytes = back.Bytes
	return s
}

// InvalidateFunc implements Invalidator by forwarding to every tier
// that supports invalidation, returning the total entries dropped.
func (t *Tiered) InvalidateFunc(funcHash string) int {
	return t.InvalidateFuncs([]string{funcHash})
}

// InvalidateFuncs implements BulkInvalidator: each tier gets the whole
// hash set in one call (falling back to per-hash invalidation for tiers
// without a bulk path), so a changeset's orphan set costs one pass per
// tier.
func (t *Tiered) InvalidateFuncs(funcHashes []string) int {
	return invalidateAll(t.front, funcHashes) + invalidateAll(t.back, funcHashes)
}

// TierStats exposes the per-tier snapshots (front, back) for
// observability endpoints.
func (t *Tiered) TierStats() (Stats, Stats) {
	return t.front.Stats(), t.back.Stats()
}

func (t *Tiered) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}
