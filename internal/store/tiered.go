package store

import (
	"sync"

	"knighter/internal/engine"
)

// Tiered composes a fast front tier (typically Memory) with a larger
// back tier (typically Disk). Gets probe front-to-back and promote back
// hits into the front tier; Puts write through to both.
type Tiered struct {
	front Store
	back  Store
	mu    sync.Mutex
	stats Stats
}

// NewTiered composes front and back into one store.
func NewTiered(front, back Store) *Tiered {
	return &Tiered{front: front, back: back}
}

// Get implements Store.
func (t *Tiered) Get(k Key) (*engine.Result, bool) {
	if r, ok := t.front.Get(k); ok {
		t.count(func(s *Stats) { s.Hits++ })
		return r, true
	}
	if r, ok := t.back.Get(k); ok {
		t.front.Put(k, r)
		t.count(func(s *Stats) { s.Hits++ })
		return r, true
	}
	t.count(func(s *Stats) { s.Misses++ })
	return nil, false
}

// Put implements Store.
func (t *Tiered) Put(k Key, r *engine.Result) {
	t.front.Put(k, r)
	t.back.Put(k, r)
	t.count(func(s *Stats) { s.Puts++ })
}

// Stats implements Store: the composite's own hit/miss/put counters,
// with entries and evictions aggregated from the tiers.
func (t *Tiered) Stats() Stats {
	t.mu.Lock()
	s := t.stats
	t.mu.Unlock()
	front, back := t.front.Stats(), t.back.Stats()
	s.Evictions = front.Evictions + back.Evictions
	s.Invalidated = front.Invalidated + back.Invalidated
	s.Expired = front.Expired + back.Expired
	s.Entries = back.Entries
	if s.Entries == 0 {
		s.Entries = front.Entries
	}
	return s
}

// InvalidateFunc implements Invalidator by forwarding to every tier
// that supports invalidation, returning the total entries dropped.
func (t *Tiered) InvalidateFunc(funcHash string) int {
	n := 0
	if inv, ok := t.front.(Invalidator); ok {
		n += inv.InvalidateFunc(funcHash)
	}
	if inv, ok := t.back.(Invalidator); ok {
		n += inv.InvalidateFunc(funcHash)
	}
	return n
}

// TierStats exposes the per-tier snapshots (front, back) for
// observability endpoints.
func (t *Tiered) TierStats() (Stats, Stats) {
	return t.front.Stats(), t.back.Stats()
}

func (t *Tiered) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}
