// Package refine implements the closed-loop checker-refinement phase
// (paper §3.2 and §4): each valid checker scans the corpus, a triage
// agent labels sampled warnings, and a refinement agent tightens the
// checker until it is "plausible" — or the loop gives up.
package refine

import (
	"math/rand"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/llm"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/synth"
	"knighter/internal/triage"
	"knighter/internal/vcs"
)

// Disposition is the refinement outcome of one valid checker.
type Disposition string

// Dispositions.
const (
	// DirectPlausible: the checker was plausible on its first scan.
	DirectPlausible Disposition = "direct"
	// RefinedPlausible: the checker became plausible after refinement.
	RefinedPlausible Disposition = "refined"
	// Fail: refinement could not reach plausibility.
	Fail Disposition = "fail"
)

// Options mirrors the paper's refinement parameters.
type Options struct {
	TPlausible    int // < TPlausible reports => plausible (default 20)
	SampleSize    int // triaged warnings per round (default 5)
	MaxFPInSample int // plausible if sampled FPs <= this (default 1)
	MaxIters      int // refinement rounds (default 3)
	ScanCap       int // refinement-phase warning cap (default 100)
	SampleSeed    int64
}

func (o Options) withDefaults() Options {
	if o.TPlausible <= 0 {
		o.TPlausible = 20
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 5
	}
	if o.MaxFPInSample <= 0 {
		o.MaxFPInSample = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 3
	}
	if o.ScanCap <= 0 {
		o.ScanCap = 100
	}
	return o
}

// Loop drives refinement for valid checkers.
type Loop struct {
	// Inc schedules the loop's corpus scans through the analysis-result
	// cache: successive refinement rounds re-scan a near-identical
	// checker over an unchanged corpus, so most per-function work is a
	// cache hit, and the stillWarnsAt acceptance re-scans are pure hits.
	Inc    *scan.Incremental
	Triage *triage.Agent
	Model  llm.Model
	Val    *synth.Validator
	Opts   Options
}

// Codebase returns the parsed corpus the loop scans.
func (l *Loop) Codebase() *scan.Codebase { return l.Inc.Codebase() }

// NewLoop assembles a refinement loop with a private in-memory result
// cache. Use NewLoopWith to share a cache with other scan consumers
// (eval harness, kserve).
func NewLoop(cb *scan.Codebase, tr *triage.Agent, model llm.Model, val *synth.Validator, opts Options) *Loop {
	return NewLoopWith(scan.NewIncremental(cb, nil), tr, model, val, opts)
}

// NewLoopWith assembles a refinement loop over an existing incremental
// scanner (and therefore its result store).
func NewLoopWith(inc *scan.Incremental, tr *triage.Agent, model llm.Model, val *synth.Validator, opts Options) *Loop {
	return &Loop{Inc: inc, Triage: tr, Model: model, Val: val, Opts: opts.withDefaults()}
}

// Result of refining one checker.
type Result struct {
	Commit      *vcs.Commit
	Disposition Disposition
	// Spec and Checker are the final (possibly refined) versions.
	Spec    *ckdsl.Spec
	Checker *ckdsl.Compiled
	// Steps counts accepted refinement steps.
	Steps int
	// Rounds counts scan/triage rounds performed.
	Rounds int
	// FinalReports is the last refinement-phase scan's report list.
	FinalReports []*checker.Report
	Usage        llm.Usage
}

// Run refines one valid checker until plausible or the iteration budget
// is exhausted.
func (l *Loop) Run(commit *vcs.Commit, spec *ckdsl.Spec) *Result {
	res := &Result{Commit: commit, Spec: spec}
	cur := spec
	for round := 0; ; round++ {
		res.Rounds = round + 1
		ck, err := ckdsl.Compile(cur)
		if err != nil {
			// A refinement broke the checker (should not happen; the
			// acceptance check recompiles) — treat as failure.
			res.Disposition = Fail
			return res
		}
		res.Checker = ck
		res.Spec = cur
		scanRes := l.Inc.RunOne(ck, scan.Options{MaxReports: l.Opts.ScanCap})
		res.FinalReports = scanRes.Reports

		if len(scanRes.Reports) < l.Opts.TPlausible {
			res.Disposition = dispositionFor(round)
			return res
		}
		sample := sampleReports(scanRes.Reports, l.Opts.SampleSize, l.Opts.SampleSeed, commit.ID, round)
		var fps []*checker.Report
		for _, r := range sample {
			if !l.Triage.Classify(r, 0).Bug {
				fps = append(fps, r)
			}
		}
		if len(fps) <= l.Opts.MaxFPInSample {
			res.Disposition = dispositionFor(round)
			return res
		}
		if round >= l.Opts.MaxIters {
			res.Disposition = Fail
			return res
		}

		// Refinement: hand the FP functions' source to the agent. An
		// unproductive round (no change, or a change that is rejected)
		// consumes the iteration but the loop re-samples and retries
		// until the iteration budget runs out.
		fpSources := l.fpFunctionSources(fps)
		next, usage := l.Model.RefineChecker(commit, cur, fpSources, round)
		res.Usage.Add(usage)
		if next.String() == cur.String() {
			continue // nothing to apply this round
		}
		if !l.acceptRefinement(commit, next, fps) {
			continue
		}
		cur = next
		res.Steps++
	}
}

func dispositionFor(round int) Disposition {
	if round == 0 {
		return DirectPlausible
	}
	return RefinedPlausible
}

// acceptRefinement enforces the paper's acceptance criteria: the refined
// checker (1) clears identified false positives — at least one of them,
// since a sample can mix FP classes and a fix for one class is still
// progress — and (2) still distinguishes buggy from patched code.
func (l *Loop) acceptRefinement(commit *vcs.Commit, next *ckdsl.Spec, fps []*checker.Report) bool {
	ck, err := ckdsl.Compile(next)
	if err != nil {
		return false
	}
	v := l.Val.Validate(ck, commit)
	if !v.Valid || v.RuntimeError {
		return false
	}
	warns := l.stillWarns(ck, fps)
	cleared := 0
	for _, fp := range fps {
		if !warns[fp.File+"|"+fp.Func] {
			cleared++
		}
	}
	return cleared > 0
}

// stillWarns re-analyzes every FP's file in one batched scan — through
// the result cache, so the unchanged functions of those files cost
// nothing — and returns the set of file|func sites where the refined
// checker still reports.
func (l *Loop) stillWarns(ck *ckdsl.Compiled, fps []*checker.Report) map[string]bool {
	var files []int
	seen := map[int]bool{}
	for _, fp := range fps {
		if i := l.Codebase().FileIndex(fp.File); i >= 0 && !seen[i] {
			seen[i] = true
			files = append(files, i)
		}
	}
	warns := map[string]bool{}
	if len(files) == 0 {
		return warns
	}
	out := l.Inc.RunFiles(files, []checker.Checker{ck}, scan.Options{Workers: 1})
	for _, r := range out.Reports {
		warns[r.File+"|"+r.Func] = true
	}
	return warns
}

// fpFunctionSources extracts the source text of the FP functions for the
// refinement prompt.
func (l *Loop) fpFunctionSources(fps []*checker.Report) []string {
	var out []string
	seen := map[string]bool{}
	for _, fp := range fps {
		key := fp.File + "|" + fp.Func
		if seen[key] {
			continue
		}
		seen[key] = true
		cb := l.Codebase()
		for i, f := range cb.Corpus.Files {
			if f.Path != fp.File {
				continue
			}
			if fn := cb.Files()[i].LookupFunc(fp.Func); fn != nil {
				out = append(out, minic.FormatFunc(fn))
			}
		}
	}
	return out
}

// SampleForTest exposes the deterministic report sampler for evaluation
// code that needs the same sampling discipline (RQ4).
func SampleForTest(reports []*checker.Report, n int, key string) []*checker.Report {
	return sampleReports(reports, n, 0, key, 0)
}

// sampleReports draws a deterministic sample of up to n reports (the
// paper samples 5 warnings with a fixed random seed).
func sampleReports(reports []*checker.Report, n int, seed int64, commitID string, round int) []*checker.Report {
	if len(reports) <= n {
		return reports
	}
	h := int64(0)
	for _, b := range []byte(commitID) {
		h = h*131 + int64(b)
	}
	r := rand.New(rand.NewSource(seed ^ h ^ int64(round)<<17))
	idx := r.Perm(len(reports))[:n]
	out := make([]*checker.Report, 0, n)
	for _, i := range idx {
		out = append(out, reports[i])
	}
	return out
}
