package refine

import (
	"testing"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/synth"
	"knighter/internal/triage"
	"knighter/internal/vcs"
)

// fixture builds a small shared corpus + loop (corpus scale keeps bug
// and bait counts constant, so dynamics match the full run).
type fixture struct {
	corpus *kernel.Corpus
	loop   *Loop
	pipe   *synth.Pipeline
	store  *vcs.Store
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.2})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	loop := NewLoop(cb, triage.NewAgent(corpus), model, pipe.Val, Options{})
	shared = &fixture{corpus: corpus, loop: loop, pipe: pipe, store: kernel.BuildHandCommits(11)}
	return shared
}

func commitFor(t *testing.T, store *vcs.Store, class, flavor string) *vcs.Commit {
	t.Helper()
	for _, c := range store.All() {
		if c.Class == class && c.Flavor == flavor {
			return c
		}
	}
	t.Fatalf("no commit %s/%s", class, flavor)
	return nil
}

func TestDirectPlausible(t *testing.T) {
	fx := getFixture(t)
	c := commitFor(t, fx.store, kernel.ClassNPD, "devm_kzalloc")
	out := fx.pipe.GenChecker(c)
	if !out.Valid {
		t.Fatal("synthesis failed")
	}
	res := fx.loop.Run(c, out.Spec)
	if res.Disposition != DirectPlausible {
		t.Fatalf("disposition = %s (reports=%d)", res.Disposition, len(res.FinalReports))
	}
	if res.Steps != 0 {
		t.Errorf("direct checker took %d refinement steps", res.Steps)
	}
}

func TestRefinedPlausibleAddsUnwrap(t *testing.T) {
	fx := getFixture(t)
	c := commitFor(t, fx.store, kernel.ClassNPD, "kzalloc")
	out := fx.pipe.GenChecker(c)
	if !out.Valid {
		t.Fatal("synthesis failed")
	}
	if len(out.Spec.Unwrap) != 0 {
		t.Skip("first draft already carried unwrap; refinement axis not exercised at this seed")
	}
	res := fx.loop.Run(c, out.Spec)
	if res.Disposition != RefinedPlausible {
		t.Fatalf("disposition = %s", res.Disposition)
	}
	if len(res.Spec.Unwrap) == 0 {
		t.Errorf("refined spec did not gain unwrap:\n%s", res.Spec.String())
	}
	if res.Steps < 1 {
		t.Error("no refinement steps recorded")
	}
}

func TestFailWhenFPOutsideRepertoire(t *testing.T) {
	fx := getFixture(t)
	c := commitFor(t, fx.store, kernel.ClassNPD, "devm_ioremap")
	out := fx.pipe.GenChecker(c)
	if !out.Valid {
		t.Fatal("synthesis failed")
	}
	res := fx.loop.Run(c, out.Spec)
	if res.Disposition != Fail {
		t.Fatalf("disposition = %s, want fail (WARN_ON bait is unrefinable)", res.Disposition)
	}
	if res.Rounds < 2 {
		t.Errorf("fail after only %d round(s); the loop should retry", res.Rounds)
	}
}

func TestRefinedCheckerStaysValid(t *testing.T) {
	fx := getFixture(t)
	c := commitFor(t, fx.store, kernel.ClassUBI, "kfree")
	out := fx.pipe.GenChecker(c)
	if !out.Valid {
		t.Fatal("synthesis failed")
	}
	res := fx.loop.Run(c, out.Spec)
	if res.Disposition == Fail {
		t.Fatalf("UBI checker failed refinement (reports=%d)", len(res.FinalReports))
	}
	// Paper acceptance criterion 2: the final checker still
	// distinguishes buggy from patched.
	v := fx.pipe.Val.Validate(res.Checker, c)
	if !v.Valid {
		t.Errorf("final checker no longer validates: %+v", v)
	}
}

func TestSampleReportsDeterministicAndBounded(t *testing.T) {
	var reports []*checker.Report
	for i := 0; i < 40; i++ {
		reports = append(reports, &checker.Report{
			Checker: "x", File: "f.c",
			Pos: minic.Pos{Line: i + 1, Col: 1},
		})
	}
	a := sampleReports(reports, 5, 0, "commit-a", 0)
	b := sampleReports(reports, 5, 0, "commit-a", 0)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sample sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	c := sampleReports(reports, 5, 0, "commit-b", 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different commits should sample differently")
	}
	if got := sampleReports(reports[:3], 5, 0, "k", 0); len(got) != 3 {
		t.Errorf("small input sample = %d", len(got))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TPlausible != 20 || o.SampleSize != 5 || o.MaxFPInSample != 1 ||
		o.MaxIters != 3 || o.ScanCap != 100 {
		t.Errorf("defaults = %+v", o)
	}
}
