package smatch

import (
	"testing"

	"knighter/internal/kernel"
	"knighter/internal/minic"
)

func findingsFor(t *testing.T, src string) []Finding {
	t.Helper()
	f, err := minic.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	stats := &callStats{used: map[string]int{}, dropped: map[string]int{}}
	var out []Finding
	for _, fn := range f.Funcs {
		out = append(out, checkFunc("t.c", fn, stats)...)
	}
	return out
}

func hasCheck(fs []Finding, name string) bool {
	for _, f := range fs {
		if f.Check == name {
			return true
		}
	}
	return false
}

func TestCheckDerefFlagsUncheckedParam(t *testing.T) {
	fs := findingsFor(t, `
int f(struct dev *d)
{
	d->count = 1;
	return 0;
}
`)
	if !hasCheck(fs, "check_deref") {
		t.Errorf("unchecked param deref not flagged: %v", fs)
	}
}

func TestCheckDerefSkipsCheckedParam(t *testing.T) {
	fs := findingsFor(t, `
int f(struct dev *d)
{
	if (!d)
		return -EINVAL;
	d->count = 1;
	return 0;
}
`)
	if hasCheck(fs, "check_deref") {
		t.Errorf("checked param flagged: %v", fs)
	}
}

func TestCheckDerefSkipsAddressOf(t *testing.T) {
	// &pdev->dev computes an address; it is not a load through pdev.
	fs := findingsFor(t, `
int f(struct pci_dev *pdev)
{
	register_thing(&pdev->dev);
	return 0;
}
`)
	if hasCheck(fs, "check_deref") {
		t.Errorf("address-of flagged as deref: %v", fs)
	}
}

func TestCheckStackFrame(t *testing.T) {
	fs := findingsFor(t, `
int f(void)
{
	char buf[256];
	buf[0] = 1;
	return 0;
}
`)
	if !hasCheck(fs, "check_stack") {
		t.Errorf("large stack buffer not flagged: %v", fs)
	}
	fs = findingsFor(t, "int g(void)\n{\n\tchar small[8];\n\tsmall[0] = 1;\n\treturn 0;\n}\n")
	if hasCheck(fs, "check_stack") {
		t.Errorf("small buffer flagged: %v", fs)
	}
}

func TestDeviationAnalysis(t *testing.T) {
	// Build stats where "must_check" is used by 10 callers and dropped
	// by this one.
	f, err := minic.ParseFile("t.c", `
void g(void)
{
	must_check();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	stats := &callStats{used: map[string]int{"must_check": 10}, dropped: map[string]int{"must_check": 1}}
	fs := checkFunc("t.c", f.Funcs[0], stats)
	if !hasCheck(fs, "unchecked_return") {
		t.Errorf("deviation not flagged: %v", fs)
	}
}

func TestRunOnCorpusIsDeterministicAndDisjointFromSeededBugs(t *testing.T) {
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.15})
	r1, err := Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Findings) != len(r2.Findings) {
		t.Fatal("non-deterministic finding count")
	}
	if len(r1.Findings) == 0 {
		t.Fatal("baseline found nothing at all")
	}
	// RQ3's core claim: no baseline finding coincides with a seeded bug
	// under an equivalent category.
	catOf := map[string]string{
		"check_deref":      kernel.ClassNPD,
		"uninitialized":    kernel.ClassUBI,
		"unchecked_return": kernel.ClassMisuse,
	}
	for _, f := range r1.Findings {
		cls, mapped := catOf[f.Check]
		if !mapped {
			continue
		}
		if bug, ok := corpus.IsBugSite(f.File, f.Func); ok && bug.Class == cls {
			t.Errorf("baseline finding overlaps seeded bug %s: %v", bug.ID, f)
		}
	}
}

func TestSeverityCounts(t *testing.T) {
	r := &Result{Findings: []Finding{
		{Severity: Error}, {Severity: Error}, {Severity: Warning},
	}}
	if r.Errors() != 2 || r.Warnings() != 1 {
		t.Errorf("errors=%d warnings=%d", r.Errors(), r.Warnings())
	}
}
