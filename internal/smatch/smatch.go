// Package smatch implements the expert-written baseline analyzer for the
// RQ3 orthogonality comparison (§5.3).
//
// Like the real Smatch, it is a rule-based, largely flow-insensitive
// analyzer with generic checks (unchecked pointer parameters, naive
// uninitialized reads, stack-frame size, ignored return values,
// cross-function deviation analysis). Crucially, it lacks the
// patch-derived domain knowledge KNighter extracts — it does not know
// that devm_kzalloc() can return NULL — so it produces a large volume of
// generic findings that are disjoint from the seeded vulnerabilities.
package smatch

import (
	"fmt"
	"sort"

	"knighter/internal/kernel"
	"knighter/internal/minic"
)

// Severity of a finding.
type Severity string

// Severities.
const (
	Error   Severity = "error"
	Warning Severity = "warn"
)

// Finding is one Smatch report.
type Finding struct {
	File     string
	Func     string
	Line     int
	Severity Severity
	Check    string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d %s() %s: [%s] %s", f.File, f.Line, f.Func, f.Severity, f.Check, f.Message)
}

// Result of a Smatch run.
type Result struct {
	Findings []Finding
}

// Errors counts error-severity findings.
func (r *Result) Errors() int { return r.count(Error) }

// Warnings counts warning-severity findings.
func (r *Result) Warnings() int { return r.count(Warning) }

func (r *Result) count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// Run analyzes the whole corpus with every check.
func Run(c *kernel.Corpus) (*Result, error) {
	res := &Result{}
	// Deviation analysis needs corpus-wide call statistics first.
	stats := collectCallStats(c)
	for _, sf := range c.Files {
		f, err := minic.ParseFile(sf.Path, sf.Src)
		if err != nil {
			return nil, err
		}
		for _, fn := range f.Funcs {
			res.Findings = append(res.Findings, checkFunc(sf.Path, fn, stats)...)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res, nil
}

// callStats records, per callee, how often its result is used vs dropped
// (the deviation-analysis substrate: "most callers check, you don't").
type callStats struct {
	used    map[string]int
	dropped map[string]int
}

func collectCallStats(c *kernel.Corpus) *callStats {
	st := &callStats{used: map[string]int{}, dropped: map[string]int{}}
	for _, sf := range c.Files {
		f, err := minic.ParseFile(sf.Path, sf.Src)
		if err != nil {
			continue
		}
		for _, fn := range f.Funcs {
			walk(fn.Body, func(s minic.Stmt) {
				switch x := s.(type) {
				case *minic.ExprStmt:
					if call, ok := x.X.(*minic.CallExpr); ok {
						st.dropped[call.Fun]++
					} else {
						countUsedCalls(x.X, st)
					}
				case *minic.DeclStmt:
					if x.Init != nil {
						countUsedCalls(x.Init, st)
					}
				case *minic.ReturnStmt:
					if x.X != nil {
						countUsedCalls(x.X, st)
					}
				case *minic.IfStmt:
					countUsedCalls(x.Cond, st)
				}
			})
		}
	}
	return st
}

func countUsedCalls(e minic.Expr, st *callStats) {
	switch x := e.(type) {
	case *minic.CallExpr:
		st.used[x.Fun]++
		for _, a := range x.Args {
			countUsedCalls(a, st)
		}
	case *minic.AssignExpr:
		countUsedCalls(x.RHS, st)
	case *minic.BinaryExpr:
		countUsedCalls(x.X, st)
		countUsedCalls(x.Y, st)
	case *minic.UnaryExpr:
		countUsedCalls(x.X, st)
	case *minic.ParenExpr:
		countUsedCalls(x.X, st)
	}
}

func checkFunc(path string, fn *minic.FuncDecl, stats *callStats) []Finding {
	var out []Finding
	out = append(out, checkParamDeref(path, fn)...)
	out = append(out, checkStackFrame(path, fn)...)
	out = append(out, checkIgnoredReturn(path, fn, stats)...)
	out = append(out, checkLinearUninit(path, fn)...)
	out = append(out, checkSignedCompare(path, fn)...)
	return out
}

// checkParamDeref is the analog of Smatch's check_deref with static range
// analysis only: a pointer parameter dereferenced while the function
// never compares it against NULL. It has no allocator domain knowledge,
// so it fires on hardware-driver boilerplate, not on unchecked
// allocation results held in locals.
func checkParamDeref(path string, fn *minic.FuncDecl) []Finding {
	params := map[string]bool{}
	for _, p := range fn.Params {
		if p.Type.IsPointer() {
			params[p.Name] = true
		}
	}
	if len(params) == 0 {
		return nil
	}
	checked := map[string]bool{}
	walk(fn.Body, func(s minic.Stmt) {
		ifs, ok := s.(*minic.IfStmt)
		if !ok {
			return
		}
		markNullChecked(ifs.Cond, checked)
	})
	// Address computations (&p->field) do not load through the pointer;
	// collect them so they are not counted as dereferences.
	addrOnly := map[minic.Expr]bool{}
	walkExprs(fn.Body, func(e minic.Expr) {
		if u, ok := e.(*minic.UnaryExpr); ok && u.Op == minic.Amp {
			if m, ok := minic.Unparen(u.X).(*minic.MemberExpr); ok {
				addrOnly[m] = true
			}
		}
	})
	var out []Finding
	seen := map[string]bool{}
	walkExprs(fn.Body, func(e minic.Expr) {
		m, ok := e.(*minic.MemberExpr)
		if !ok || !m.Arrow || addrOnly[m] {
			return
		}
		id, ok := minic.Unparen(m.X).(*minic.Ident)
		if !ok || !params[id.Name] || checked[id.Name] || seen[id.Name] {
			return
		}
		seen[id.Name] = true
		out = append(out, Finding{
			File: path, Func: fn.Name, Line: m.Pos.Line, Severity: Error,
			Check:   "check_deref",
			Message: fmt.Sprintf("parameter '%s' dereferenced without NULL test", id.Name),
		})
	})
	return out
}

func markNullChecked(cond minic.Expr, checked map[string]bool) {
	switch x := minic.UnwrapCalls(cond, "unlikely", "likely", "WARN_ON").(type) {
	case *minic.UnaryExpr:
		if x.Op == minic.Bang {
			if id, ok := minic.Unparen(x.X).(*minic.Ident); ok {
				checked[id.Name] = true
			}
		}
	case *minic.BinaryExpr:
		if x.Op == minic.EqEq || x.Op == minic.NotEq || x.Op == minic.AmpAmp || x.Op == minic.PipePipe {
			markNullChecked(x.X, checked)
			markNullChecked(x.Y, checked)
		}
	case *minic.Ident:
		checked[x.Name] = true
	}
}

// checkStackFrame flags large on-stack buffers (a classic kernel Smatch
// warning).
func checkStackFrame(path string, fn *minic.FuncDecl) []Finding {
	var out []Finding
	total := 0
	var firstPos minic.Pos
	walk(fn.Body, func(s minic.Stmt) {
		d, ok := s.(*minic.DeclStmt)
		if !ok || !d.Type.IsArray() {
			return
		}
		sz := d.Type.ArrayLen
		if d.Type.Base == "u32" || d.Type.Base == "int" {
			sz *= 4
		}
		total += sz
		if firstPos.Line == 0 {
			firstPos = d.Pos
		}
	})
	if total > 60 {
		out = append(out, Finding{
			File: path, Func: fn.Name, Line: firstPos.Line, Severity: Warning,
			Check:   "check_stack",
			Message: fmt.Sprintf("function puts %d bytes on the stack", total),
		})
	}
	return out
}

// checkIgnoredReturn flags dropped return values of callees whose result
// is used by the overwhelming majority of other callers (deviation
// analysis in the style of Engler et al.).
func checkIgnoredReturn(path string, fn *minic.FuncDecl, stats *callStats) []Finding {
	var out []Finding
	walk(fn.Body, func(s minic.Stmt) {
		es, ok := s.(*minic.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*minic.CallExpr)
		if !ok {
			return
		}
		used, dropped := stats.used[call.Fun], stats.dropped[call.Fun]
		if used >= 8 && used >= 9*dropped {
			out = append(out, Finding{
				File: path, Func: fn.Name, Line: call.Pos.Line, Severity: Error,
				Check:   "unchecked_return",
				Message: fmt.Sprintf("return value of '%s' is usually checked (%d/%d callers)", call.Fun, used, used+dropped),
			})
		}
	})
	return out
}

// checkLinearUninit is a naive, flow-insensitive read-before-write scan:
// it walks statements in textual order and flags a variable read before
// any textual assignment. Control flow is ignored, which is what keeps it
// both noisy and blind to the path-sensitive seeded bugs.
func checkLinearUninit(path string, fn *minic.FuncDecl) []Finding {
	declared := map[string]minic.Pos{}
	assigned := map[string]bool{}
	var out []Finding
	reported := map[string]bool{}
	flag := func(reads map[string]minic.Pos) {
		for name, pos := range reads {
			if _, isLocal := declared[name]; isLocal && !assigned[name] && !reported[name] {
				reported[name] = true
				out = append(out, Finding{
					File: path, Func: fn.Name, Line: pos.Line, Severity: Error,
					Check:   "uninitialized",
					Message: fmt.Sprintf("'%s' read before textual assignment", name),
				})
			}
		}
	}
	walk(fn.Body, func(s minic.Stmt) {
		switch x := s.(type) {
		case *minic.DeclStmt:
			if x.Init != nil || x.Type.IsArray() {
				assigned[x.Name] = true
			}
			declared[x.Name] = x.Pos
		case *minic.ExprStmt:
			switch ex := x.X.(type) {
			case *minic.AssignExpr:
				reads := map[string]minic.Pos{}
				identReads(ex.RHS, reads)
				flag(reads)
				if id, ok := minic.Unparen(ex.LHS).(*minic.Ident); ok {
					assigned[id.Name] = true
				}
			case *minic.CallExpr:
				// Out-parameters (&x) textually assign; flag plain
				// value reads only, then credit the out-params.
				reads := map[string]minic.Pos{}
				var outParams []string
				for _, a := range ex.Args {
					if u, ok := minic.Unparen(a).(*minic.UnaryExpr); ok && u.Op == minic.Amp {
						if id, ok := minic.Unparen(u.X).(*minic.Ident); ok {
							outParams = append(outParams, id.Name)
							continue
						}
					}
					identReads(a, reads)
				}
				flag(reads)
				for _, name := range outParams {
					assigned[name] = true
				}
			}
		case *minic.ReturnStmt:
			if x.X != nil {
				reads := map[string]minic.Pos{}
				identReads(x.X, reads)
				flag(reads)
			}
		}
	})
	return out
}

func identReads(e minic.Expr, reads map[string]minic.Pos) {
	switch x := e.(type) {
	case *minic.Ident:
		reads[x.Name] = x.Pos
	case *minic.BinaryExpr:
		identReads(x.X, reads)
		identReads(x.Y, reads)
	case *minic.UnaryExpr:
		identReads(x.X, reads)
	case *minic.ParenExpr:
		identReads(x.X, reads)
	case *minic.IndexExpr:
		identReads(x.X, reads)
		identReads(x.Idx, reads)
	case *minic.MemberExpr:
		identReads(x.X, reads)
	}
}

// checkSignedCompare flags int variables compared with '>' against
// sizeof-like large constants (a lint-style volume check).
func checkSignedCompare(path string, fn *minic.FuncDecl) []Finding {
	var out []Finding
	walkExprs(fn.Body, func(e minic.Expr) {
		b, ok := e.(*minic.BinaryExpr)
		if !ok || b.Op != minic.Gt {
			return
		}
		if lit, ok := minic.Unparen(b.Y).(*minic.IntLit); ok && lit.Val >= 128 {
			out = append(out, Finding{
				File: path, Func: fn.Name, Line: b.Pos.Line, Severity: Warning,
				Check:   "impossible_mask",
				Message: "comparison against large constant may be type-confused on 32-bit",
			})
		}
	})
	return out
}

// --- AST walking helpers ---

func walk(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch x := s.(type) {
	case *minic.Block:
		for _, sub := range x.Stmts {
			walk(sub, visit)
		}
	case *minic.IfStmt:
		walk(x.Then, visit)
		walk(x.Else, visit)
	case *minic.WhileStmt:
		walk(x.Body, visit)
	case *minic.ForStmt:
		walk(x.Init, visit)
		walk(x.Body, visit)
	case *minic.LabeledStmt:
		walk(x.Stmt, visit)
	}
}

func walkExprs(s minic.Stmt, visit func(minic.Expr)) {
	walk(s, func(st minic.Stmt) {
		switch x := st.(type) {
		case *minic.ExprStmt:
			walkExpr(x.X, visit)
		case *minic.DeclStmt:
			if x.Init != nil {
				walkExpr(x.Init, visit)
			}
		case *minic.IfStmt:
			walkExpr(x.Cond, visit)
		case *minic.WhileStmt:
			walkExpr(x.Cond, visit)
		case *minic.ForStmt:
			if x.Cond != nil {
				walkExpr(x.Cond, visit)
			}
			if x.Post != nil {
				walkExpr(x.Post, visit)
			}
		case *minic.ReturnStmt:
			if x.X != nil {
				walkExpr(x.X, visit)
			}
		}
	})
}

func walkExpr(e minic.Expr, visit func(minic.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *minic.BinaryExpr:
		walkExpr(x.X, visit)
		walkExpr(x.Y, visit)
	case *minic.UnaryExpr:
		walkExpr(x.X, visit)
	case *minic.PostfixExpr:
		walkExpr(x.X, visit)
	case *minic.AssignExpr:
		walkExpr(x.LHS, visit)
		walkExpr(x.RHS, visit)
	case *minic.CallExpr:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *minic.IndexExpr:
		walkExpr(x.X, visit)
		walkExpr(x.Idx, visit)
	case *minic.MemberExpr:
		walkExpr(x.X, visit)
	case *minic.ParenExpr:
		walkExpr(x.X, visit)
	case *minic.CondExpr:
		walkExpr(x.Cond, visit)
		walkExpr(x.Then, visit)
		walkExpr(x.Else, visit)
	case *minic.CastExpr:
		walkExpr(x.X, visit)
	case *minic.SizeofExpr:
		if x.X != nil {
			walkExpr(x.X, visit)
		}
	}
}
