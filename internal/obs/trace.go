package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one request's span timeline: the stages the request passed
// through, with wall-clock offsets from the request's start. kserve
// assigns one per request (honoring an inbound X-Trace-Id), threads it
// through the scan via context, and the remote store tier forwards the
// id on every kcached round-trip — so one id stitches together the
// kserve access log, the per-stage timeline, and the kcached access log.
//
// Spans are aggregates, not raw events: a scan's cache-probe span is the
// summed probe time across all workers with Count = number of probes.
// That keeps a 10k-function scan's timeline at a handful of rows while
// still answering the triage question ("which stage ate the budget?").
type Trace struct {
	// ID is the request's trace id, propagated on X-Trace-Id.
	ID string
	// Start anchors span offsets.
	Start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one stage of a trace: name, offset from the trace start,
// duration, and how many operations the aggregate covers.
type Span struct {
	Name string `json:"name"`
	// OffsetMS is when the stage began, relative to the trace start.
	OffsetMS float64 `json:"offset_ms"`
	// DurMS is the stage's duration — summed across workers for
	// concurrent stages, so it can exceed the request's wall time.
	DurMS float64 `json:"dur_ms"`
	// Count is the number of operations aggregated into the span (0
	// means one, for plain stages).
	Count int `json:"count,omitempty"`
}

// NewTrace returns a trace anchored at now. An empty id gets a fresh
// random one — 16 hex chars, unique enough for log stitching within a
// fleet's retention window.
func NewTrace(id string) *Trace {
	if id == "" {
		var b [8]byte
		rand.Read(b[:])
		id = hex.EncodeToString(b[:])
	}
	return &Trace{ID: sanitizeID(id), Start: time.Now()}
}

// sanitizeID bounds an inbound trace id so a hostile client cannot
// inject log lines or megabytes through the header: printable
// non-space ASCII only, max 64 chars.
func sanitizeID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	return strings.Map(func(r rune) rune {
		if r <= ' ' || r > '~' {
			return '_'
		}
		return r
	}, id)
}

// Observe appends a span: a stage named name that began at start, ran
// for d, and covered count operations. Safe for concurrent use.
func (t *Trace) Observe(name string, start time.Time, d time.Duration, count int) {
	if t == nil {
		return
	}
	sp := Span{
		Name:     name,
		OffsetMS: float64(start.Sub(t.Start).Microseconds()) / 1000,
		DurMS:    float64(d.Microseconds()) / 1000,
		Count:    count,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a snapshot of the timeline in observation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the timeline as one log-friendly line:
// "parse=1.2ms cache_probe=3.4ms/120 engine_eval=56.7ms/3".
func (t *Trace) String() string {
	var b strings.Builder
	for i, sp := range t.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", sp.Name, sp.DurMS)
		if sp.Count > 0 {
			fmt.Fprintf(&b, "/%d", sp.Count)
		}
	}
	return b.String()
}

// traceKey is the context key for the request's trace.
type traceKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. Safe on a nil
// context.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceHeader is the HTTP header carrying the trace id between kserve
// and kcached (and honored from clients).
const TraceHeader = "X-Trace-Id"
