package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's span tree fragment: the spans this process
// recorded for the request, rooted at a per-request root span. kserve
// and kcached each mint one per request (honoring an inbound
// X-Trace-Id / X-Span-Id pair), thread it through the work via context,
// and forward both ids on every outbound hop — scatter sub-scans,
// /converge nudges, feed round-trips, and remote-store calls — so each
// process's fragment attaches under the caller's span and GET
// /trace/{id} can reassemble the cross-host tree.
//
// Spans are aggregates, not raw events: a scan's cache-probe span is the
// summed probe time across all workers with Count = number of probes.
// That keeps a 10k-function scan's timeline at a handful of rows while
// still answering the triage question ("which stage ate the budget?").
type Trace struct {
	// ID is the request's trace id, propagated on X-Trace-Id.
	ID string
	// SpanID is the root span's id: every span this process records
	// attaches under it, and outbound sub-requests carry it (or a
	// pre-minted child span id) as X-Span-Id.
	SpanID string
	// ParentSpanID is the inbound X-Span-Id — the caller's span this
	// fragment's root attaches under. Empty at the trace's origin.
	ParentSpanID string
	// Service names the process recording this fragment ("kserve-2",
	// "kcached").
	Service string
	// Start anchors span offsets.
	Start time.Time

	mu       sync.Mutex
	spans    []Span
	seq      int
	dropped  int
	degraded bool
	hedgeWin bool
}

// Span is one node of a trace: name, offset from its process's request
// start, duration, and how many operations the aggregate covers.
type Span struct {
	// SpanID identifies the span within the trace; ParentID is the span
	// it attaches under (a span in another process for fragment roots).
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	// Service is the process that recorded the span.
	Service string `json:"service,omitempty"`
	// Root marks the fragment's per-request root span: its OffsetMS is
	// relative to its own request's start (always 0), so cross-host
	// assembly rebases it onto its parent span's offset instead of
	// trusting cross-host clocks.
	Root bool   `json:"root,omitempty"`
	Name string `json:"name"`
	// OffsetMS is when the span began, relative to the fragment's start.
	OffsetMS float64 `json:"offset_ms"`
	// DurMS is the span's duration — summed across workers for
	// concurrent stages, so it can exceed the request's wall time.
	DurMS float64 `json:"dur_ms"`
	// Count is the number of operations aggregated into the span (0
	// means one, for plain stages).
	Count int `json:"count,omitempty"`
	// Status tags abnormal outcomes (SpanDegraded, SpanHedgeWin, or an
	// HTTP status class on error roots); empty on the happy path.
	Status string `json:"status,omitempty"`
}

// Span status tags. SpanDegraded marks a scatter partition recomputed on
// the coordinator's local snapshot after its shard failed; SpanHedgeWin
// marks a partition whose local hedge beat the remote sub-request.
const (
	SpanDegraded = "degraded_local_fallback"
	SpanHedgeWin = "hedge_win"
)

// MaxTraceSpans caps one trace fragment's span count so a pathological
// 100k-function scan (or a kcached fragment accumulating one root span
// per entry round-trip) cannot balloon request memory. Spans past the
// cap are counted, not stored.
const MaxTraceSpans = 512

// droppedSpans counts spans dropped by the cap, process-wide; daemons
// bridge it into their registries as trace_spans_dropped_total.
var droppedSpans atomic.Uint64

// DroppedSpansTotal reports spans dropped by the per-trace cap since
// process start.
func DroppedSpansTotal() uint64 { return droppedSpans.Load() }

// idCounter backs the fallback id path when crypto/rand fails.
var idCounter atomic.Uint64

// randomID mints a 16-hex-char id. If crypto/rand fails (fd exhaustion,
// a broken sandbox) it falls back to a monotonic-counter-derived id
// instead of silently returning a zeroed buffer — duplicate ids would
// cross-link unrelated requests in the trace store.
func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint32(b[:4], uint32(time.Now().UnixNano()))
		binary.BigEndian.PutUint32(b[4:], uint32(idCounter.Add(1)))
	}
	return hex.EncodeToString(b[:])
}

// NewTrace returns a trace anchored at now with a fresh root span id.
// An empty id gets a fresh random one — 16 hex chars, unique enough for
// stitching within a fleet's retention window.
func NewTrace(id string) *Trace { return NewTraceFor("", id, "") }

// NewTraceFor is NewTrace for a named service honoring an inbound
// parent span id — the form the daemons' request middleware uses.
func NewTraceFor(service, id, parentSpanID string) *Trace {
	if id == "" {
		id = randomID()
	}
	return &Trace{
		ID:           sanitizeID(id),
		SpanID:       randomID(),
		ParentSpanID: sanitizeID(parentSpanID),
		Service:      service,
		Start:        time.Now(),
	}
}

// sanitizeID bounds an inbound trace or span id so a hostile client
// cannot inject log lines or megabytes through the header: printable
// non-space ASCII only, max 64 chars.
func sanitizeID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	return strings.Map(func(r rune) rune {
		if r <= ' ' || r > '~' {
			return '_'
		}
		return r
	}, id)
}

// Observe appends a span: a stage named name that began at start, ran
// for d, and covered count operations. It attaches under the root span
// with a derived child span id. Safe for concurrent use.
func (t *Trace) Observe(name string, start time.Time, d time.Duration, count int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(Span{
		SpanID:   t.childIDLocked(),
		ParentID: t.SpanID,
		Service:  t.Service,
		Name:     name,
		OffsetMS: float64(start.Sub(t.Start).Microseconds()) / 1000,
		DurMS:    float64(d.Microseconds()) / 1000,
		Count:    count,
	})
	t.mu.Unlock()
}

// ObserveWith is Observe with a pre-minted span id (from NewChildSpanID,
// so the id could be propagated to a callee before the span completed)
// and an outcome status tag.
func (t *Trace) ObserveWith(spanID, name, status string, start time.Time, d time.Duration, count int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if spanID == "" {
		spanID = t.childIDLocked()
	}
	t.appendLocked(Span{
		SpanID:   spanID,
		ParentID: t.SpanID,
		Service:  t.Service,
		Name:     name,
		OffsetMS: float64(start.Sub(t.Start).Microseconds()) / 1000,
		DurMS:    float64(d.Microseconds()) / 1000,
		Count:    count,
		Status:   status,
	})
	t.mu.Unlock()
}

// NewChildSpanID reserves a child span id under the root — minted
// before an outbound sub-request so the callee's fragment can attach
// under the span that is still in flight. Returns "" on a nil trace.
func (t *Trace) NewChildSpanID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	id := t.childIDLocked()
	t.mu.Unlock()
	return id
}

// childIDLocked derives the next child span id from the root id and a
// sequence number: unique within the fragment (the root id is random per
// process), readable in a waterfall, and free of a rand syscall on the
// hot path. Callers hold t.mu.
func (t *Trace) childIDLocked() string {
	t.seq++
	return fmt.Sprintf("%s.%d", t.SpanID, t.seq)
}

// appendLocked appends sp, enforcing MaxTraceSpans. Callers hold t.mu.
func (t *Trace) appendLocked(sp Span) {
	if len(t.spans) >= MaxTraceSpans {
		t.dropped++
		droppedSpans.Add(1)
		return
	}
	t.spans = append(t.spans, sp)
}

// CloseRoot records the fragment's root span: the whole request, offset
// 0, attached under the inbound parent span (if any). Call once, when
// the request completes. The root bypasses the span cap so a capped
// fragment still assembles.
func (t *Trace) CloseRoot(name, status string, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{
		SpanID:   t.SpanID,
		ParentID: t.ParentSpanID,
		Service:  t.Service,
		Root:     true,
		Name:     name,
		DurMS:    float64(d.Microseconds()) / 1000,
		Status:   status,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// MarkDegraded flags the trace as having degraded a scatter partition
// to the local snapshot; MarkHedgeWin flags a partition won by its local
// hedge. Both are always-keep classes for the tail sampler.
func (t *Trace) MarkDegraded() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.degraded = true
	t.mu.Unlock()
}

func (t *Trace) MarkHedgeWin() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hedgeWin = true
	t.mu.Unlock()
}

// Degraded and HedgeWin report the flags set by the Mark methods.
func (t *Trace) Degraded() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degraded
}

func (t *Trace) HedgeWin() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hedgeWin
}

// DroppedSpans reports how many spans the cap dropped from this trace.
func (t *Trace) DroppedSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a snapshot of the fragment in observation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the timeline as one log-friendly line:
// "parse=1.2ms cache_probe=3.4ms/120 engine_eval=56.7ms/3".
func (t *Trace) String() string {
	var b strings.Builder
	for i, sp := range t.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", sp.Name, sp.DurMS)
		if sp.Count > 0 {
			fmt.Fprintf(&b, "/%d", sp.Count)
		}
	}
	return b.String()
}

// traceKey is the context key for the request's trace; spanKey carries
// the parent span id for one outbound sub-request (when it should be a
// specific child span rather than the root).
type (
	traceKey struct{}
	spanKey  struct{}
)

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. Safe on a nil
// context.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithParentSpan returns ctx carrying spanID as the parent for outbound
// requests made under it — the scatter path pins each shard
// sub-request's fragment under its own shard_N span this way.
func WithParentSpan(ctx context.Context, spanID string) context.Context {
	return context.WithValue(ctx, spanKey{}, spanID)
}

// ParentSpanFrom returns the outbound parent span id carried by ctx, or
// "".
func ParentSpanFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(spanKey{}).(string)
	return id
}

// InjectHeaders stamps h with the trace id and parent span id carried
// by ctx — the one call every outbound hop (scatter sub-scan, feed
// round-trip, remote-store call, converge nudge) makes so the callee's
// fragment attaches under the caller's span.
func InjectHeaders(ctx context.Context, h http.Header) {
	tr := TraceFrom(ctx)
	if tr == nil || tr.ID == "" {
		return
	}
	h.Set(TraceHeader, tr.ID)
	if sid := ParentSpanFrom(ctx); sid != "" {
		h.Set(SpanHeader, sid)
	} else if tr.SpanID != "" {
		h.Set(SpanHeader, tr.SpanID)
	}
}

// TraceHeader is the HTTP header carrying the trace id between kserve
// and kcached (and honored from clients). SpanHeader carries the
// caller's span id on the same hops, so the callee's fragment attaches
// under the right node of the tree.
const (
	TraceHeader = "X-Trace-Id"
	SpanHeader  = "X-Span-Id"
)
