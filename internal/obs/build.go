package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildVersion returns the binary's module version (falling back to the
// VCS revision, then "devel") and the Go toolchain that built it — the
// identity every daemon reports in /stats, -version, and the
// <ns>_build_info metric.
func BuildVersion() (version, goVersion string) {
	version = "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		} else {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 12 {
					version = s.Value[:12]
					break
				}
			}
		}
	}
	return version, runtime.Version()
}

// RegisterBuildInfo registers the conventional build-info gauge
// (<ns>_build_info{version,go} 1) plus an uptime gauge driven by
// uptimeSeconds.
func RegisterBuildInfo(reg *Registry, uptimeSeconds func() float64) {
	version, goVersion := BuildVersion()
	reg.GaugeVec("build_info", "Build identity; value is always 1.", "version", "go").
		With(version, goVersion).Set(1)
	if uptimeSeconds != nil {
		reg.GaugeFunc("uptime_seconds", "Seconds since the daemon started.", uptimeSeconds)
	}
}
