package obs

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleRegistry builds a registry exercising every metric kind, label
// shapes, and escaping.
func sampleRegistry() *Registry {
	reg := NewRegistry("t")
	reg.Counter("plain_total", "An unlabeled counter.").Add(3)
	cv := reg.CounterVec("requests_total", "Labeled counter.", "tier", "op")
	cv.With("memory", "get").Add(10)
	cv.With("remote", "get").Inc()
	cv.With("remote", "put").Inc()
	reg.Gauge("depth", "A gauge.").Set(4)
	reg.GaugeFunc("uptime_seconds", "Func gauge.", func() float64 { return 1.5 })
	reg.CounterFunc("engine_timeouts_total", "Func counter.", func() float64 { return 7 })
	h := reg.Histogram("latency_seconds", "A histogram.", nil)
	for _, v := range []float64{0.0001, 0.003, 0.003, 0.2, 99} {
		h.Observe(v)
	}
	hv := reg.HistogramVec("stage_seconds", "Labeled histogram.", []float64{0.01, 0.1, 1}, "stage")
	hv.With("parse").Observe(0.05)
	hv.With(`we"ird\st` + "\n" + `age`).Observe(0.5)
	reg.GaugeVec("build_info", "Build identity.", "version", "go").With("v1.2.3", "go1.23").Set(1)
	return reg
}

func expose(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

// ParsePromText is the test-side grammar check shared with the daemon
// tests: every non-comment line must match the sample grammar, and no
// series (name + label set) may appear twice. It returns the series
// identities in order.
func ParsePromText(t *testing.T, text string) []string {
	t.Helper()
	ids, err := CheckExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestExpositionGrammarAndUniqueness(t *testing.T) {
	text := expose(t, sampleRegistry())
	ids := ParsePromText(t, text)
	if len(ids) == 0 {
		t.Fatal("no series exposed")
	}
	for _, want := range []string{
		`t_plain_total 3`,
		`t_requests_total{tier="remote",op="get"} 1`,
		`t_uptime_seconds 1.5`,
		`t_engine_timeouts_total 7`,
		`t_build_info{version="v1.2.3",go="go1.23"} 1`,
		`t_latency_seconds_count 5`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
	// Escaped label values survive round-tripping through the grammar.
	if !strings.Contains(text, `stage="we\"ird\\st\nage"`) {
		t.Errorf("label escaping broken:\n%s", text)
	}
}

func TestHistogramBucketInvariants(t *testing.T) {
	text := expose(t, sampleRegistry())
	// For every histogram: cumulative bucket counts are monotone
	// non-decreasing in le, the +Inf bucket equals _count, and every
	// histogram ends with le="+Inf".
	type hist struct {
		lastLE    float64
		lastCount uint64
		sawInf    bool
		infCount  uint64
	}
	hists := map[string]*hist{}
	bucketRe := regexp.MustCompile(`^(.+)_bucket\{(?:.*,)?le="([^"]+)"\} (\d+)$`)
	countRe := regexp.MustCompile(`^(.+)_count(\{[^}]*\})? (\d+)$`)
	counts := map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			key := m[1] + "|" + labelPart(line)
			h := hists[key]
			if h == nil {
				h = &hist{lastLE: -1}
				hists[key] = h
			}
			n, _ := strconv.ParseUint(m[3], 10, 64)
			if n < h.lastCount {
				t.Errorf("bucket counts not monotone at %q", line)
			}
			if m[2] == "+Inf" {
				h.sawInf = true
				h.infCount = n
			} else {
				le, err := strconv.ParseFloat(m[2], 64)
				if err != nil {
					t.Fatalf("bad le in %q: %v", line, err)
				}
				if le <= h.lastLE {
					t.Errorf("le bounds not increasing at %q", line)
				}
				h.lastLE = le
			}
			h.lastCount = n
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			n, _ := strconv.ParseUint(m[3], 10, 64)
			counts[m[1]+"|"+labelPart(line)] = n
		}
	}
	if len(hists) < 3 {
		t.Fatalf("expected at least 3 histogram series, saw %d", len(hists))
	}
	for key, h := range hists {
		if !h.sawInf {
			t.Errorf("histogram %s has no +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok || c != h.infCount {
			t.Errorf("histogram %s: +Inf bucket %d != _count %d", key, h.infCount, c)
		}
	}
}

// labelPart extracts the non-le labels of a sample line, so bucket lines
// group with their _sum/_count siblings.
func labelPart(line string) string {
	i := strings.IndexByte(line, '{')
	if i < 0 {
		return ""
	}
	j := strings.LastIndexByte(line, '}')
	labels := line[i+1 : j]
	var keep []string
	for _, kv := range strings.Split(labels, ",") {
		if !strings.HasPrefix(kv, `le="`) {
			keep = append(keep, kv)
		}
	}
	return strings.Join(keep, ",")
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry("x")
	a := reg.Counter("c_total", "h")
	b := reg.Counter("c_total", "h")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	v1 := reg.CounterVec("v_total", "h", "tier")
	v2 := reg.CounterVec("v_total", "h", "tier")
	v1.With("memory").Inc()
	if v2.With("memory").Value() != 1 {
		t.Fatal("vec re-registration did not share series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("c_total", "h")
}

func TestHistogramObserveBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(100) // +Inf bucket
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("bucket le=2 = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if h.Count() != 3 || h.Sum() != 102.5 {
		t.Fatalf("count/sum = %d/%v, want 3/102.5", h.Count(), h.Sum())
	}
}

func TestTraceTimelineAndContext(t *testing.T) {
	tr := NewTrace("")
	if tr.ID == "" || len(tr.ID) != 16 {
		t.Fatalf("generated trace id %q, want 16 hex chars", tr.ID)
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the carried trace")
	}
	if TraceFrom(context.Background()) != nil || TraceFrom(nil) != nil {
		t.Fatal("TraceFrom on empty/nil context must be nil")
	}
	start := tr.Start.Add(2 * time.Millisecond)
	tr.Observe("parse", start, 3*time.Millisecond, 120)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "parse" || spans[0].Count != 120 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].OffsetMS < 1.9 || spans[0].OffsetMS > 2.1 || spans[0].DurMS != 3 {
		t.Fatalf("span timing = %+v", spans[0])
	}
	if s := tr.String(); !strings.Contains(s, "parse=3.000ms/120") {
		t.Fatalf("String() = %q", s)
	}
	// nil trace is inert.
	var nilTr *Trace
	nilTr.Observe("x", time.Now(), time.Second, 1)
	if nilTr.Spans() != nil {
		t.Fatal("nil trace must have no spans")
	}
}

func TestTraceIDSanitized(t *testing.T) {
	tr := NewTrace("ok-id_123")
	if tr.ID != "ok-id_123" {
		t.Fatalf("clean id mangled: %q", tr.ID)
	}
	tr = NewTrace("evil\nid\x00" + strings.Repeat("a", 100))
	if strings.ContainsAny(tr.ID, "\n\x00") || len(tr.ID) > 64 {
		t.Fatalf("hostile id not sanitized: %q", tr.ID)
	}
}
