package obs

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStore is the in-process half of fleet tracing: a bounded ring of
// recently completed trace fragments, tail-sampled — the keep decision
// happens AFTER the request finishes, when its outcome is known. Slow,
// errored, degraded-scatter, and hedge-win traces are always retained
// (they are exactly what an operator greps for); the unremarkable rest
// is sampled by a deterministic hash of the trace id, so every process
// in the fleet keeps or drops the SAME traces and cross-host assembly
// finds all fragments or none.
type TraceStore struct {
	capN   int
	sample float64
	slow   time.Duration

	mu    sync.Mutex
	byID  map[string]*StoredTrace
	order []string // insertion order, oldest first

	kept       atomic.Int64
	sampledOut atomic.Int64
	evicted    atomic.Int64
}

// TraceMeta is what the request middleware knows about a finished
// request when it offers the trace to the store.
type TraceMeta struct {
	// Route is the request's route label ("scan", "get", ...).
	Route string
	// Status is the HTTP status sent.
	Status int
	// Elapsed is the request's wall time.
	Elapsed time.Duration
	// Errored marks the request as an error for the keep policy. The
	// caller classifies: kserve treats any 4xx/5xx as errored; kcached
	// excludes entry-miss 404s (a miss is routine, not an error).
	Errored bool
}

// StoredTrace is one retained fragment: the request's identity, outcome,
// why it was kept, and its spans. It is also the GET /trace/{id}?local=1
// wire format between replicas.
type StoredTrace struct {
	TraceID string `json:"trace_id"`
	Service string `json:"service"`
	Route   string `json:"route"`
	Status  int    `json:"status"`
	// Kept records the keep-policy reason: "slow", "error", "degraded",
	// "hedge_win", or "sampled".
	Kept        string  `json:"kept"`
	StartUnixMS int64   `json:"start_unix_ms"`
	DurMS       float64 `json:"dur_ms"`
	// DroppedSpans counts spans the per-trace cap dropped.
	DroppedSpans int    `json:"dropped_spans,omitempty"`
	Spans        []Span `json:"spans"`
}

// TraceSummary is one GET /traces index row.
type TraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Service     string  `json:"service"`
	Route       string  `json:"route"`
	Status      int     `json:"status"`
	Kept        string  `json:"kept"`
	StartUnixMS int64   `json:"start_unix_ms"`
	DurMS       float64 `json:"dur_ms"`
	Spans       int     `json:"spans"`
}

// TraceStoreStats is the /stats view of the store.
type TraceStoreStats struct {
	Entries    int     `json:"entries"`
	Capacity   int     `json:"capacity"`
	SampleRate float64 `json:"sample_rate"`
	Kept       int64   `json:"kept"`
	SampledOut int64   `json:"sampled_out"`
	Evicted    int64   `json:"evicted"`
}

// NewTraceStore returns a store retaining up to capN traces, sampling
// unremarkable ones with probability sample (clamped to [0,1]), and
// always keeping traces at least slow long (0 disables the slow class).
// capN <= 0 returns nil — every method is nil-safe, so a disabled store
// needs no call-site guards.
func NewTraceStore(capN int, sample float64, slow time.Duration) *TraceStore {
	if capN <= 0 {
		return nil
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &TraceStore{capN: capN, sample: sample, slow: slow, byID: map[string]*StoredTrace{}}
}

// sampledIn decides the probabilistic keep for an unremarkable trace by
// hashing its id — deterministic, so every replica and kcached make the
// same call for the same trace and assembly is all-or-nothing.
func (ts *TraceStore) sampledIn(id string) bool {
	if ts.sample >= 1 {
		return true
	}
	if ts.sample <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64()>>11)/float64(uint64(1)<<53) < ts.sample
}

// keepReason classifies a finished trace: the always-keep classes in
// priority order, then the deterministic sample, then "".
func (ts *TraceStore) keepReason(tr *Trace, m TraceMeta) string {
	switch {
	case ts.slow > 0 && m.Elapsed >= ts.slow:
		return "slow"
	case m.Errored:
		return "error"
	case tr.Degraded():
		return "degraded"
	case tr.HedgeWin():
		return "hedge_win"
	case ts.sampledIn(tr.ID):
		return "sampled"
	}
	return ""
}

// Add offers a completed trace to the store. A trace id already present
// merges its spans into the existing entry (kcached sees one request
// per entry round-trip, all sharing the scan's trace id — the fragment
// is their union, capped at MaxTraceSpans). Safe for concurrent use.
func (ts *TraceStore) Add(tr *Trace, m TraceMeta) {
	if ts == nil || tr == nil || tr.ID == "" {
		return
	}
	spans := tr.Spans()
	dropped := tr.DroppedSpans()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st, ok := ts.byID[tr.ID]; ok {
		for _, sp := range spans {
			if len(st.Spans) >= MaxTraceSpans {
				st.DroppedSpans++
				droppedSpans.Add(1)
				continue
			}
			st.Spans = append(st.Spans, sp)
		}
		st.DroppedSpans += dropped
		return
	}
	reason := ts.keepReason(tr, m)
	if reason == "" {
		ts.sampledOut.Add(1)
		return
	}
	ts.kept.Add(1)
	ts.byID[tr.ID] = &StoredTrace{
		TraceID:      tr.ID,
		Service:      tr.Service,
		Route:        m.Route,
		Status:       m.Status,
		Kept:         reason,
		StartUnixMS:  tr.Start.UnixMilli(),
		DurMS:        float64(m.Elapsed.Microseconds()) / 1000,
		DroppedSpans: dropped,
		Spans:        spans,
	}
	ts.order = append(ts.order, tr.ID)
	for len(ts.order) > ts.capN {
		old := ts.order[0]
		ts.order = ts.order[1:]
		delete(ts.byID, old)
		ts.evicted.Add(1)
	}
}

// Get returns a copy of the stored fragment for id, if retained.
func (ts *TraceStore) Get(id string) (*StoredTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.byID[id]
	if !ok {
		return nil, false
	}
	cp := *st
	cp.Spans = append([]Span(nil), st.Spans...)
	return &cp, true
}

// List returns up to limit summaries, newest first. slowOnly restricts
// the index to traces kept by the slow class.
func (ts *TraceStore) List(limit int, slowOnly bool) []TraceSummary {
	if ts == nil {
		return nil
	}
	if limit <= 0 {
		limit = 50
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, min(limit, len(ts.order)))
	for i := len(ts.order) - 1; i >= 0 && len(out) < limit; i-- {
		st := ts.byID[ts.order[i]]
		if st == nil || (slowOnly && st.Kept != "slow") {
			continue
		}
		out = append(out, TraceSummary{
			TraceID:     st.TraceID,
			Service:     st.Service,
			Route:       st.Route,
			Status:      st.Status,
			Kept:        st.Kept,
			StartUnixMS: st.StartUnixMS,
			DurMS:       st.DurMS,
			Spans:       len(st.Spans),
		})
	}
	return out
}

// Stats snapshots the store's counters for /stats.
func (ts *TraceStore) Stats() *TraceStoreStats {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	entries := len(ts.byID)
	ts.mu.Unlock()
	return &TraceStoreStats{
		Entries:    entries,
		Capacity:   ts.capN,
		SampleRate: ts.sample,
		Kept:       ts.kept.Load(),
		SampledOut: ts.sampledOut.Load(),
		Evicted:    ts.evicted.Load(),
	}
}

// Register bridges the store's counters into reg (no-op on a nil
// store): trace_store_{kept,sampled_out,evicted}_total plus the live
// entry gauge.
func (ts *TraceStore) Register(reg *Registry) {
	if ts == nil {
		return
	}
	reg.CounterFunc("trace_store_kept_total",
		"Completed traces retained by the tail sampler (always-keep classes + sampled).",
		func() float64 { return float64(ts.kept.Load()) })
	reg.CounterFunc("trace_store_sampled_out_total",
		"Completed traces dropped by the probabilistic sampler (no always-keep class applied).",
		func() float64 { return float64(ts.sampledOut.Load()) })
	reg.CounterFunc("trace_store_evicted_total",
		"Retained traces evicted by the ring bound (-trace-retain).",
		func() float64 { return float64(ts.evicted.Load()) })
	reg.GaugeFunc("trace_store_entries", "Traces currently retained.",
		func() float64 {
			ts.mu.Lock()
			defer ts.mu.Unlock()
			return float64(len(ts.byID))
		})
}
