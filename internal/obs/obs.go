// Package obs is the fleet's observability layer: dependency-free
// counters, gauges, and latency histograms with Prometheus text-format
// exposition, plus per-request trace timelines (trace.go).
//
// The ROADMAP's cache/admission/fleet machinery is invisible without it:
// the remote tier silently degrades to local misses behind a circuit
// breaker, admission sheds with 429s, and engine timeouts quietly drop
// results from the cache. Every one of those behaviors is correct — and
// indistinguishable from a performance bug unless it is counted. This
// package holds the counting; kserve and kcached expose it on GET
// /metrics.
//
// The implementation is deliberately a small subset of the Prometheus
// client model (families, label vectors, cumulative histogram buckets)
// rather than a dependency: the repo's constraint is stdlib-only, and
// the exposition grammar is simple enough to own.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the default histogram layout for request and stage
// latencies: 100µs to 10s, roughly logarithmic — wide enough to cover a
// memory-tier hit (microseconds) and a cold full-corpus scan (seconds)
// in one series.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat is a float64 with atomic Add/Store/Load, the value cell
// behind counters, gauges, and histogram sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Counter is a monotonically increasing value. Whole-number increments
// — the overwhelmingly common case, and the one sitting on request hot
// paths — land in an integer cell via a single atomic add; fractional
// adds fall back to a CAS loop on a separate float cell. The split
// matters under contention: N workers hammering one counter pay one
// uncontended-retry-free XADD each instead of CAS retries.
type Counter struct {
	ints atomic.Uint64
	rest atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.ints.Add(1) }

// Add adds d, which must be non-negative (negative adds are dropped so a
// buggy caller cannot make a counter go backwards).
func (c *Counter) Add(d float64) {
	if d <= 0 {
		return
	}
	if u := uint64(d); float64(u) == d {
		c.ints.Add(u)
		return
	}
	c.rest.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return float64(c.ints.Load()) + c.rest.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the value by d (negative is fine).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a cumulative-bucket latency histogram (the Prometheus
// model: _bucket{le="..."} series plus _sum and _count).
type Histogram struct {
	// bounds are the ascending bucket upper limits, excluding +Inf.
	bounds []float64
	// counts[i] counts observations <= bounds[i]; the final slot is the
	// +Inf bucket. Stored non-cumulative; exposition accumulates.
	counts []atomic.Uint64
	sum    atomicFloat
	// exemplars[i] is the trace id of the LAST observation to land in
	// bucket i (nil until one does) — the link from a latency bucket on
	// a dashboard to an assembled trace on GET /trace/{id}.
	exemplars []atomic.Pointer[string]
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[string], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveExemplar is Observe plus an exemplar: traceID becomes the
// bucket's last-seen trace id, surfaced in /stats and as an # EXEMPLAR
// exposition comment. An empty id degrades to plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[i].Store(&traceID)
	}
}

// Exemplars returns the last trace id per bucket, keyed by the bucket's
// le value as rendered in the exposition ("+Inf" for the overflow
// bucket). Buckets without an exemplar are absent.
func (h *Histogram) Exemplars() map[string]string {
	out := map[string]string{}
	for i := range h.exemplars {
		id := h.exemplars[i].Load()
		if id == nil || *id == "" {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		out[le] = *id
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one label-value combination of a family: exactly one of the
// value cells is live, matching the family's kind.
type series struct {
	labels []string // label values, in the family's label-name order
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback-backed counter/gauge
}

// family is one named metric: a kind, a label schema, and a set of
// series (one per label-value combination; a single unlabeled series
// when the schema is empty).
type family struct {
	name   string
	help   string
	kind   string
	labels []string  // label names
	bucket []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// seriesFor returns (creating if needed) the series for the given label
// values.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bucket)
		}
		f.series[key] = s
	}
	return s
}

// Registry holds a namespace's metric families and renders them in
// Prometheus text format. All methods are safe for concurrent use, and
// registration is idempotent: asking twice for the same name returns the
// same family (a kind or label-schema mismatch panics — that is a
// programming error, not a runtime condition).
type Registry struct {
	ns string

	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns a registry whose metric names are prefixed with
// namespace + "_" (empty namespace = no prefix).
func NewRegistry(namespace string) *Registry {
	return &Registry{ns: namespace, families: map[string]*family{}}
}

func (r *Registry) fullName(name string) string {
	if r.ns == "" {
		return name
	}
	return r.ns + "_" + name
}

func (r *Registry) family(name, help, kind string, buckets []float64, labels []string) *family {
	full := r.fullName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[full]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind or label schema", full))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different label names", full))
			}
		}
		return f
	}
	f := &family{
		name: full, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bucket: buckets,
		series: map[string]*series{},
	}
	r.families[full] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).seriesFor(nil).c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, nil, labels)}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for pre-existing atomic counters (server
// request totals, engine timeout counts) that should not be double
// maintained.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.series[""] = &series{fn: fn}
	f.mu.Unlock()
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).seriesFor(nil).g
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, nil, labels)}
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (queue depths, breaker state, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.series[""] = &series{fn: fn}
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return r.family(name, help, kindHistogram, buckets, nil).seriesFor(nil).h
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, buckets, labels)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.seriesFor(values).c }

// WithFunc installs a callback-backed series at the given label values —
// the labeled sibling of CounterFunc, bridging state that is already
// counted elsewhere (a store tier's own stats atomics, a server's
// request totals) into a shared family without maintaining the count
// twice. Call at registration time, before the registry serves scrapes.
func (v *CounterVec) WithFunc(fn func() float64, values ...string) {
	v.f.seriesFor(values).fn = fn
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.seriesFor(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.seriesFor(values).h }

// Handler returns an http.Handler serving the registry in Prometheus
// text format — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// WriteTo renders every family in Prometheus text format, families
// sorted by name and series sorted by label values — a deterministic
// snapshot, so two scrapes with no traffic in between are byte-identical.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, len(keys))
	for i, k := range keys {
		ordered[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(ordered) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ordered {
		switch {
		case s.fn != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatFloat(s.fn()))
		case f.kind == kindHistogram:
			cum := uint64(0)
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labels, "le", bound), cum)
				writeExemplar(b, f.name, labelString(f.labels, s.labels, "le", bound), s.h, i)
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labels, "le", math.Inf(1)), cum)
			writeExemplar(b, f.name, labelString(f.labels, s.labels, "le", math.Inf(1)), s.h, len(s.h.bounds))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatFloat(s.h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labels, "", 0), cum)
		case f.kind == kindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatFloat(s.c.Value()))
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatFloat(s.g.Value()))
		}
	}
}

// writeExemplar emits the bucket's exemplar comment, if one was
// recorded:
//
//	# EXEMPLAR name_bucket{...,le="0.5"} trace_id="4f00d3a2"
//
// A comment line keeps the payload inside the plain text-format grammar
// (the OpenMetrics "# {}" syntax would break version=0.0.4 parsers);
// CheckExposition validates the shape and that the referenced bucket
// series exists.
func writeExemplar(b *strings.Builder, name, labels string, h *Histogram, i int) {
	id := h.exemplars[i].Load()
	if id == nil || *id == "" {
		return
	}
	fmt.Fprintf(b, "# EXEMPLAR %s_bucket%s trace_id=\"%s\"\n", name, labels, escapeLabel(*id))
}

// labelString renders {name="value",...}, appending an le label when
// leName is non-empty. Empty schema and no le = empty string.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
