package obs

import (
	"strings"
	"testing"
	"time"
)

// finished builds a completed trace with a root span, simulating what
// the request middleware hands the store.
func finished(id, service string, dur time.Duration) *Trace {
	tr := NewTraceFor(service, id, "")
	tr.Observe("stage", tr.Start, dur/2, 3)
	tr.CloseRoot("scan", "", dur)
	return tr
}

func TestTraceStoreAlwaysKeepClasses(t *testing.T) {
	// sample=0: nothing unremarkable survives, so anything kept got
	// there through an always-keep class.
	ts := NewTraceStore(16, 0, 50*time.Millisecond)

	ts.Add(finished("fast", "kserve", time.Millisecond), TraceMeta{Route: "scan", Status: 200, Elapsed: time.Millisecond})
	if _, ok := ts.Get("fast"); ok {
		t.Fatal("unremarkable trace survived sample=0")
	}

	ts.Add(finished("slow", "kserve", time.Second), TraceMeta{Route: "scan", Status: 200, Elapsed: time.Second})
	if st, ok := ts.Get("slow"); !ok || st.Kept != "slow" {
		t.Fatalf("slow trace: got %+v, %v", st, ok)
	}

	ts.Add(finished("err", "kserve", time.Millisecond), TraceMeta{Route: "scan", Status: 500, Elapsed: time.Millisecond, Errored: true})
	if st, ok := ts.Get("err"); !ok || st.Kept != "error" {
		t.Fatalf("errored trace: got %+v, %v", st, ok)
	}

	deg := finished("deg", "kserve", time.Millisecond)
	deg.MarkDegraded()
	ts.Add(deg, TraceMeta{Route: "scan", Status: 200, Elapsed: time.Millisecond})
	if st, ok := ts.Get("deg"); !ok || st.Kept != "degraded" {
		t.Fatalf("degraded trace: got %+v, %v", st, ok)
	}

	hw := finished("hedge", "kserve", time.Millisecond)
	hw.MarkHedgeWin()
	ts.Add(hw, TraceMeta{Route: "scan", Status: 200, Elapsed: time.Millisecond})
	if st, ok := ts.Get("hedge"); !ok || st.Kept != "hedge_win" {
		t.Fatalf("hedge-win trace: got %+v, %v", st, ok)
	}

	// Slow outranks error: a slow 500 is kept as "slow".
	ts.Add(finished("slowerr", "kserve", time.Second), TraceMeta{Status: 500, Elapsed: time.Second, Errored: true})
	if st, _ := ts.Get("slowerr"); st == nil || st.Kept != "slow" {
		t.Fatalf("slow+error priority: got %+v", st)
	}

	if got := ts.Stats().SampledOut; got != 1 {
		t.Fatalf("sampled_out = %d, want 1", got)
	}
	if got := ts.Stats().Kept; got != 5 {
		t.Fatalf("kept = %d, want 5", got)
	}
}

func TestTraceStoreSamplingDeterministic(t *testing.T) {
	// The probabilistic decision hashes the trace id, so two stores with
	// the same rate (different hosts in real life) agree on every id —
	// the property that makes cross-host assembly all-or-nothing.
	a := NewTraceStore(4096, 0.3, 0)
	b := NewTraceStore(4096, 0.3, 0)
	kept := 0
	for i := 0; i < 2000; i++ {
		id := "trace-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		if a.sampledIn(id) != b.sampledIn(id) {
			t.Fatalf("stores disagree on %q", id)
		}
		if a.sampledIn(id) {
			kept++
		}
	}
	// ~600 expected; a wide band guards the hash's uniformity, not luck.
	if kept < 400 || kept > 800 {
		t.Fatalf("kept %d of 2000 at rate 0.3 — sampler badly biased", kept)
	}
	if !NewTraceStore(1, 1, 0).sampledIn("x") {
		t.Fatal("sample=1 must keep everything")
	}
	if NewTraceStore(1, 0, 0).sampledIn("x") {
		t.Fatal("sample=0 must keep nothing")
	}
}

func TestTraceStoreEvictionFIFO(t *testing.T) {
	ts := NewTraceStore(3, 1, 0)
	for _, id := range []string{"t1", "t2", "t3", "t4", "t5"} {
		ts.Add(finished(id, "kserve", time.Millisecond), TraceMeta{Status: 200, Elapsed: time.Millisecond})
	}
	if _, ok := ts.Get("t1"); ok {
		t.Fatal("t1 should have been evicted")
	}
	if _, ok := ts.Get("t2"); ok {
		t.Fatal("t2 should have been evicted")
	}
	if _, ok := ts.Get("t5"); !ok {
		t.Fatal("t5 should be retained")
	}
	st := ts.Stats()
	if st.Entries != 3 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want 3 entries, 2 evicted", st)
	}
	// Newest first, and limit respected.
	list := ts.List(2, false)
	if len(list) != 2 || list[0].TraceID != "t5" || list[1].TraceID != "t4" {
		t.Fatalf("List(2) = %+v", list)
	}
}

func TestTraceStoreListSlowOnly(t *testing.T) {
	ts := NewTraceStore(8, 1, 100*time.Millisecond)
	ts.Add(finished("fast", "kserve", time.Millisecond), TraceMeta{Status: 200, Elapsed: time.Millisecond})
	ts.Add(finished("slow", "kserve", time.Second), TraceMeta{Status: 200, Elapsed: time.Second})
	list := ts.List(10, true)
	if len(list) != 1 || list[0].TraceID != "slow" {
		t.Fatalf("slow-only List = %+v", list)
	}
}

func TestTraceStoreMergesFragmentsByID(t *testing.T) {
	// kcached's reality: many requests share one scan's trace id; the
	// store's entry for that id is the union of their spans.
	ts := NewTraceStore(8, 1, 0)
	first := NewTraceFor("kcached", "shared", "parent.1")
	first.CloseRoot("kcached_get", "", time.Millisecond)
	ts.Add(first, TraceMeta{Route: "get", Status: 200, Elapsed: time.Millisecond})

	second := NewTraceFor("kcached", "shared", "parent.2")
	second.CloseRoot("kcached_put", "", time.Millisecond)
	ts.Add(second, TraceMeta{Route: "put", Status: 200, Elapsed: time.Millisecond})

	st, ok := ts.Get("shared")
	if !ok {
		t.Fatal("merged trace missing")
	}
	if len(st.Spans) != 2 {
		t.Fatalf("merged spans = %d, want 2", len(st.Spans))
	}
	if ts.Stats().Kept != 1 {
		t.Fatalf("kept = %d, want 1 (merge is not a new keep)", ts.Stats().Kept)
	}
}

func TestTraceSpanCap(t *testing.T) {
	before := DroppedSpansTotal()
	tr := NewTraceFor("kserve", "capped", "")
	for i := 0; i < MaxTraceSpans+40; i++ {
		tr.Observe("s", tr.Start, time.Microsecond, 1)
	}
	if n := len(tr.Spans()); n != MaxTraceSpans {
		t.Fatalf("stored spans = %d, want %d", n, MaxTraceSpans)
	}
	if d := tr.DroppedSpans(); d != 40 {
		t.Fatalf("dropped = %d, want 40", d)
	}
	if got := DroppedSpansTotal() - before; got != 40 {
		t.Fatalf("global dropped counter advanced %d, want 40", got)
	}
	// The root span bypasses the cap: the request's own outcome must
	// never be the thing the cap throws away.
	tr.CloseRoot("scan", "", time.Millisecond)
	spans := tr.Spans()
	if !spans[len(spans)-1].Root {
		t.Fatal("root span missing after cap reached")
	}
	// And the store carries the count through.
	ts := NewTraceStore(4, 1, 0)
	ts.Add(tr, TraceMeta{Status: 200, Elapsed: time.Millisecond})
	if st, _ := ts.Get("capped"); st == nil || st.DroppedSpans != 40 {
		t.Fatalf("stored DroppedSpans = %+v", st)
	}
}

func TestRandomIDFallbackUnique(t *testing.T) {
	// The fallback path (crypto/rand failed) must still mint distinct
	// ids; exercise the counter arm directly.
	a, b := randomID(), randomID()
	if a == b || len(a) != 16 {
		t.Fatalf("randomID gave %q, %q", a, b)
	}
}

func TestAssembleTraceCrossHost(t *testing.T) {
	// Coordinator fragment: root + two shard fan-out spans + a stage.
	coord := &StoredTrace{
		TraceID: "T", Service: "kserve-0", DurMS: 10,
		Spans: []Span{
			{SpanID: "r0", Root: true, Service: "kserve-0", Name: "scan", OffsetMS: 0, DurMS: 10},
			{SpanID: "r0.1", ParentID: "r0", Service: "kserve-0", Name: "shard_1", OffsetMS: 2, DurMS: 6},
			{SpanID: "r0.2", ParentID: "r0", Service: "kserve-0", Name: "shard_0", OffsetMS: 1, DurMS: 4, Status: SpanDegraded},
		},
	}
	// Shard 1's fragment: its root attaches under the coordinator's
	// shard_1 span; its own clock says it started at offset 0.
	sh1 := &StoredTrace{
		TraceID: "T", Service: "kserve-1",
		Spans: []Span{
			{SpanID: "r1", ParentID: "r0.1", Root: true, Service: "kserve-1", Name: "scan", OffsetMS: 0, DurMS: 5},
			{SpanID: "r1.1", ParentID: "r1", Service: "kserve-1", Name: "engine_eval", OffsetMS: 1, DurMS: 3},
		},
	}
	// kcached's fragment: root under shard 1's in-process stage span.
	kc := &StoredTrace{
		TraceID: "T", Service: "kcached",
		Spans: []Span{
			{SpanID: "rc", ParentID: "r1.1", Root: true, Service: "kcached", Name: "kcached_get", OffsetMS: 0, DurMS: 0.4},
		},
	}
	// An orphan: its parent span's fragment was never collected.
	orphan := &StoredTrace{
		TraceID: "T", Service: "kserve-2",
		Spans: []Span{
			{SpanID: "r2", ParentID: "missing", Root: true, Service: "kserve-2", Name: "scan", OffsetMS: 0, DurMS: 2},
		},
	}

	asm := AssembleTrace("T", []*StoredTrace{sh1, kc, orphan, coord})
	if asm.Root == nil || asm.Root.SpanID != "r0" {
		t.Fatalf("root = %+v", asm.Root)
	}
	if asm.SpanCount != 7 || asm.Fragments != 4 {
		t.Fatalf("span_count=%d fragments=%d", asm.SpanCount, asm.Fragments)
	}
	want := []string{"kcached", "kserve-0", "kserve-1", "kserve-2"}
	if len(asm.Services) != 4 || asm.Services[0] != want[0] || asm.Services[3] != want[3] {
		t.Fatalf("services = %v, want %v", asm.Services, want)
	}
	if len(asm.Orphans) != 1 || asm.Orphans[0].SpanID != "r2" {
		t.Fatalf("orphans = %+v", asm.Orphans)
	}

	// Children of the root sort by rebased offset: shard_0 (1ms) before
	// shard_1 (2ms).
	if asm.Root.Children[0].Name != "shard_0" || asm.Root.Children[1].Name != "shard_1" {
		t.Fatalf("root children order: %s, %s", asm.Root.Children[0].Name, asm.Root.Children[1].Name)
	}

	// Fragment-root rebasing: shard 1's root starts AT shard_1's abs
	// offset; its child keeps its in-fragment delta on top of that.
	sh1Node := asm.Root.Children[1].Children[0]
	if sh1Node.SpanID != "r1" || sh1Node.AbsOffsetMS != 2 {
		t.Fatalf("shard-1 fragment root: %+v", sh1Node)
	}
	eval := sh1Node.Children[0]
	if eval.SpanID != "r1.1" || eval.AbsOffsetMS != 3 {
		t.Fatalf("engine_eval abs offset = %v, want 3", eval.AbsOffsetMS)
	}
	kcNode := eval.Children[0]
	if kcNode.SpanID != "rc" || kcNode.AbsOffsetMS != 3 {
		t.Fatalf("kcached abs offset = %v, want 3 (parent's offset)", kcNode.AbsOffsetMS)
	}

	// Parent/child offset consistency across the whole tree.
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		for _, c := range n.Children {
			if c.AbsOffsetMS < n.AbsOffsetMS {
				t.Fatalf("child %s (%v) starts before parent %s (%v)",
					c.SpanID, c.AbsOffsetMS, n.SpanID, n.AbsOffsetMS)
			}
			walk(c)
		}
	}
	walk(asm.Root)

	wf := asm.Waterfall()
	for _, frag := range []string{"kserve-0 scan", "shard_1", "kserve-1 scan", "kcached kcached_get", "[degraded_local_fallback]", "orphans"} {
		if !strings.Contains(wf, frag) {
			t.Fatalf("waterfall missing %q:\n%s", frag, wf)
		}
	}
}

func TestAssembleTraceEmpty(t *testing.T) {
	asm := AssembleTrace("none", nil)
	if asm.SpanCount != 0 || asm.Root != nil || len(asm.Orphans) != 0 {
		t.Fatalf("empty assembly = %+v", asm)
	}
}

func TestExemplarExposition(t *testing.T) {
	reg := NewRegistry("t")
	h := reg.Histogram("scan_duration_seconds", "Scan wall time.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.5, "trace-b")
	h.Observe(0.7) // plain observe leaves trace-b in place
	text := expose(t, reg)
	if _, err := CheckExposition(text); err != nil {
		t.Fatalf("exposition with exemplars rejected: %v\n%s", err, text)
	}
	if !strings.Contains(text, `# EXEMPLAR t_scan_duration_seconds_bucket{le="0.1"} trace_id="trace-a"`) {
		t.Fatalf("missing le=0.1 exemplar:\n%s", text)
	}
	if !strings.Contains(text, `# EXEMPLAR t_scan_duration_seconds_bucket{le="1"} trace_id="trace-b"`) {
		t.Fatalf("missing le=1 exemplar:\n%s", text)
	}
	if m := h.Exemplars(); m["0.1"] != "trace-a" || m["1"] != "trace-b" {
		t.Fatalf("Exemplars() = %v", m)
	}
}

func TestCheckExpositionRejectsBadExemplars(t *testing.T) {
	// An exemplar referencing a series that was never emitted.
	bad := "t_x_bucket{le=\"1\"} 3\n# EXEMPLAR t_y_bucket{le=\"1\"} trace_id=\"t\"\n"
	if _, err := CheckExposition(bad); err == nil || !strings.Contains(err.Error(), "unknown series") {
		t.Fatalf("unknown-series exemplar not rejected: %v", err)
	}
	// An exemplar before its bucket line (writer contract: after).
	early := "# EXEMPLAR t_x_bucket{le=\"1\"} trace_id=\"t\"\nt_x_bucket{le=\"1\"} 3\n"
	if _, err := CheckExposition(early); err == nil {
		t.Fatal("early exemplar not rejected")
	}
	// Malformed exemplar comment.
	malformed := "t_x_bucket{le=\"1\"} 3\n# EXEMPLAR not a series\n"
	if _, err := CheckExposition(malformed); err == nil || !strings.Contains(err.Error(), "exemplar grammar") {
		t.Fatalf("malformed exemplar not rejected: %v", err)
	}
}
