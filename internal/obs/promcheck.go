package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// promSeriesLine matches one exposition sample: name{labels} value.
// Label values may contain anything except an unescaped quote.
var promSeriesLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// promExemplarLine matches an exemplar comment: the referenced series
// identity (a _bucket series with its le label) plus the trace id.
var promExemplarLine = regexp.MustCompile(
	`^# EXEMPLAR ([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})?) trace_id="(?:\\.|[^"\\])*"$`)

// CheckExposition validates a Prometheus text-format payload: every
// non-comment line must match the sample grammar, no series (name +
// label set) may appear twice, and every # EXEMPLAR comment must match
// the exemplar grammar AND reference a series already emitted (the
// writer puts each exemplar directly after its bucket line). It returns
// the series identities in order. Shared by the obs unit tests and the
// daemons' /metrics tests, so both check the same grammar.
func CheckExposition(text string) ([]string, error) {
	var ids []string
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			m := promExemplarLine.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d does not match the exemplar grammar: %q", ln+1, line)
			}
			if !seen[m[1]] {
				return nil, fmt.Errorf("line %d: exemplar references unknown series %q", ln+1, m[1])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSeriesLine.MatchString(line) {
			return nil, fmt.Errorf("line %d does not match the Prometheus sample grammar: %q", ln+1, line)
		}
		id := line[:strings.LastIndexByte(line, ' ')]
		if seen[id] {
			return nil, fmt.Errorf("duplicate series %q", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}
