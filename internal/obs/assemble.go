package obs

import (
	"fmt"
	"sort"
	"strings"
)

// TraceNode is one span in an assembled cross-host tree, with its
// children and its offset rebased onto the global (coordinator) clock.
type TraceNode struct {
	Span
	// AbsOffsetMS is the span's start relative to the assembled root.
	// Fragment roots are rebased to their parent span's offset rather
	// than trusting cross-host clocks, so parent/child offsets are
	// consistent by construction.
	AbsOffsetMS float64      `json:"abs_offset_ms"`
	Children    []*TraceNode `json:"children,omitempty"`
}

// AssembledTrace is the GET /trace/{id} reply: per-process fragments
// merged into one rooted span tree.
type AssembledTrace struct {
	TraceID string `json:"trace_id"`
	// Services lists every process that contributed a fragment, sorted.
	Services  []string `json:"services"`
	Fragments int      `json:"fragments"`
	SpanCount int      `json:"span_count"`
	// DroppedSpans sums the fragments' per-trace span-cap drops.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// DurMS is the root request's wall time.
	DurMS float64    `json:"dur_ms"`
	Root  *TraceNode `json:"root"`
	// Orphans are subtrees whose parent span was not collected (its
	// fragment was sampled out, evicted, or its host unreachable) —
	// surfaced rather than dropped, since partial evidence still
	// triages.
	Orphans []*TraceNode `json:"orphans,omitempty"`
}

// AssembleTrace merges per-process fragments into one tree ordered by
// offset. Fragment roots attach under the caller span named by their
// ParentID; their offsets (and their descendants') are rebased so a
// fragment root starts AT its parent span's offset — clock-skew-free,
// at the cost of folding the network hop into the child's apparent
// start.
func AssembleTrace(id string, frags []*StoredTrace) *AssembledTrace {
	out := &AssembledTrace{TraceID: id, Fragments: len(frags)}
	nodes := map[string]*TraceNode{}
	var all []*TraceNode
	services := map[string]bool{}
	for _, f := range frags {
		if f == nil {
			continue
		}
		if f.Service != "" {
			services[f.Service] = true
		}
		out.DroppedSpans += f.DroppedSpans
		for _, sp := range f.Spans {
			if sp.SpanID != "" && nodes[sp.SpanID] != nil {
				continue // same fragment collected twice (self + peer loop)
			}
			n := &TraceNode{Span: sp}
			if sp.SpanID != "" {
				nodes[sp.SpanID] = n
			}
			all = append(all, n)
		}
	}
	out.SpanCount = len(all)
	if len(all) == 0 {
		return out
	}

	// Attach children; spans whose parent was not collected become
	// orphan roots (the true root — empty ParentID — is one of them).
	var roots []*TraceNode
	for _, n := range all {
		if n.ParentID != "" {
			if p := nodes[n.ParentID]; p != nil && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	sort.SliceStable(roots, func(i, j int) bool {
		// The origin (no inbound parent at all, marked Root) sorts
		// first and becomes THE root; stray subtrees follow as orphans.
		oi, oj := roots[i].ParentID == "" && roots[i].Root, roots[j].ParentID == "" && roots[j].Root
		return oi && !oj
	})
	if roots[0].ParentID == "" && roots[0].Root {
		out.Root = roots[0]
		out.Orphans = roots[1:]
	} else {
		out.Orphans = roots
	}

	for _, r := range roots {
		rebase(r, r.OffsetMS)
	}
	if out.Root != nil {
		out.DurMS = out.Root.DurMS
	}
	for s := range services {
		out.Services = append(out.Services, s)
	}
	sort.Strings(out.Services)
	return out
}

// rebase assigns abs offsets depth-first: a fragment root starts AT its
// parent span's absolute offset (its own OffsetMS is relative to a
// different host's clock); an in-process span starts at its fragment's
// anchor plus its recorded offset. Children are sorted by rebased
// offset.
func rebase(n *TraceNode, abs float64) {
	n.AbsOffsetMS = abs
	// anchor is where this node's fragment started on the global clock:
	// for a fragment root that is its own abs; for an in-process span,
	// its abs minus its fragment-relative offset.
	anchor := abs
	if !n.Root {
		anchor = abs - n.OffsetMS
	}
	for _, c := range n.Children {
		if c.Root {
			rebase(c, abs)
		} else {
			rebase(c, anchor+c.OffsetMS)
		}
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		if a.AbsOffsetMS != b.AbsOffsetMS {
			return a.AbsOffsetMS < b.AbsOffsetMS
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.SpanID < b.SpanID
	})
}

// Waterfall renders the tree as an indented text timeline — the
// terminal-friendly view of the same JSON:
//
//	trace 4f00d3a2 — 3 services, 12 spans, 8.40ms
//	   0.000  kserve-0 scan 8.400ms
//	   0.012  ├─ snapshot_pin 0.010ms gen=3
//	   0.100  ├─ shard_1 3.200ms/40 [degraded_local_fallback]
//	   0.100  │  └─ kserve-1 scan 3.100ms
func (a *AssembledTrace) Waterfall() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s — %d services, %d spans, %.2fms", a.TraceID, len(a.Services), a.SpanCount, a.DurMS)
	if a.DroppedSpans > 0 {
		fmt.Fprintf(&b, " (%d spans dropped by cap)", a.DroppedSpans)
	}
	b.WriteByte('\n')
	if a.Root != nil {
		writeNode(&b, a.Root, "", "")
	}
	if len(a.Orphans) > 0 {
		b.WriteString("orphans (parent span not collected):\n")
		for _, o := range a.Orphans {
			writeNode(&b, o, "", "")
		}
	}
	return b.String()
}

// writeNode renders one span line plus its subtree. prefix is the
// accumulated tree indentation for this node's own line (ending in a
// branch glyph); childBase is what the children's prefixes build on.
func writeNode(b *strings.Builder, n *TraceNode, prefix, childBase string) {
	fmt.Fprintf(b, "%8.3f  %s", n.AbsOffsetMS, prefix)
	if n.Root && n.Service != "" {
		fmt.Fprintf(b, "%s ", n.Service)
	}
	fmt.Fprintf(b, "%s %.3fms", n.Name, n.DurMS)
	if n.Count > 0 {
		fmt.Fprintf(b, "/%d", n.Count)
	}
	if n.Status != "" {
		fmt.Fprintf(b, " [%s]", n.Status)
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			writeNode(b, c, childBase+"└─ ", childBase+"   ")
		} else {
			writeNode(b, c, childBase+"├─ ", childBase+"│  ")
		}
	}
}
