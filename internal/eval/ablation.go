package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/synth"
	"knighter/internal/vcs"
)

// AblationRow is one configuration row of paper Table 3.
type AblationRow struct {
	Variant  string
	Valid    int
	Syntax   int
	Runtime  int
	Semantic int
	Usage    llm.Usage
}

// AblationResult reproduces Table 3 (§5.4.2).
type AblationResult struct {
	Sample []*vcs.Commit
	Rows   []AblationRow
}

// SampleAblationCommits draws 2 commits per bug type with the given seed
// (the paper uses seed zero).
func SampleAblationCommits(store *vcs.Store, seed int64) []*vcs.Commit {
	r := rand.New(rand.NewSource(seed))
	var out []*vcs.Commit
	for _, cls := range kernel.AllClasses {
		commits := store.ByClass(cls)
		idx := r.Perm(len(commits))
		n := 2
		if len(idx) < n {
			n = len(idx)
		}
		for i := 0; i < n; i++ {
			out = append(out, commits[idx[i]])
		}
	}
	return out
}

// RunAblation evaluates every Table 3 configuration on the 20-commit
// sample: the default multi-stage pipeline, the single-stage variant,
// RAG-retrieved examples, and the alternative model backends.
func (h *Harness) RunAblation() *AblationResult {
	sample := SampleAblationCommits(h.Hand, 0)
	res := &AblationResult{Sample: sample}

	variants := []struct {
		name  string
		model *llm.Oracle
		opts  synth.Options
	}{
		{"Default", llm.NewOracle(llm.O3Mini), synth.Options{}},
		{"W/o multi-stage", &llm.Oracle{Profile: llm.O3Mini, SingleStage: true}, synth.Options{SingleStage: true}},
		{"W/ RAG", &llm.Oracle{Profile: llm.O3Mini, RAG: true, Namespace: "rag"}, synth.Options{}},
		{"W/ GPT-4o", llm.NewOracle(llm.GPT4o), synth.Options{}},
		{"W/ DeepSeek-R1", llm.NewOracle(llm.DeepSeekR1), synth.Options{}},
		{"W/ Gemini-2-flash", llm.NewOracle(llm.Gemini2Flash), synth.Options{}},
	}
	for _, v := range variants {
		row := AblationRow{Variant: v.name}
		pipe := synth.NewPipeline(v.model, v.opts)
		for _, c := range sample {
			out := pipe.GenChecker(c)
			row.Usage.Add(out.Usage)
			if out.Valid {
				row.Valid++
			}
			for _, f := range out.Failed {
				switch f.Symptom {
				case synth.SymptomCompile:
					row.Syntax++
				case synth.SymptomRuntime:
					row.Runtime++
				default:
					row.Semantic++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result as the paper's Table 3.
func (r *AblationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Ablation study results (20-commit sample, 2 per bug type, seed 0).\n\n")
	fmt.Fprintf(&sb, "%-20s %6s | %7s %8s %10s | %10s\n",
		"Variants", "Valid", "Syntax", "Runtime", "Semantics", "Tokens(M)")
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %6d | %7d %8d %10d | %10.2f\n",
			row.Variant, row.Valid, row.Syntax, row.Runtime, row.Semantic,
			float64(row.Usage.InputTokens+row.Usage.OutputTokens)/1e6)
	}
	return sb.String()
}
