package eval

import (
	"fmt"
	"sort"
	"strings"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/scan"
	"knighter/internal/vcs"
)

// FoundBug is one seeded vulnerability detected by a plausible checker.
type FoundBug struct {
	Bug    kernel.SeededBug
	Finder *vcs.Commit // the commit whose checker found it first
	// Maintainer-response model (Table 2 statuses).
	Confirmed bool
	Fixed     bool
	CVE       bool
}

// BugDetectionResult reproduces Table 2 and Figure 9 (§5.2).
type BugDetectionResult struct {
	Found []FoundBug
	// Triage-filtered report accounting (§5.1.2 false-positive rate).
	ReportsTotal    int
	ReportsBugLabel int
	TruePositives   int
	FalsePositives  int
	// Plausible checker inventory.
	PlausibleHand int
	PlausibleAuto int
	// Checkers that reported nothing (§5.1.2: 16 of 37).
	SilentCheckers int
	// Per-commit detection counts (Fig 9d).
	PerCommit map[string]int // commit ID -> unique bugs found
	finderOf  map[string]*vcs.Commit
}

// Table2 returns (total, confirmed, fixed, pending, cve).
func (r *BugDetectionResult) Table2() (int, int, int, int, int) {
	var confirmed, fixed, cve int
	for _, f := range r.Found {
		if f.Confirmed {
			confirmed++
		}
		if f.Fixed {
			fixed++
		}
		if f.CVE {
			cve++
		}
	}
	return len(r.Found), confirmed, fixed, len(r.Found) - confirmed, cve
}

// FPRate is the §5.1.2 false-positive rate among bug-labeled reports.
func (r *BugDetectionResult) FPRate() float64 {
	if r.ReportsBugLabel == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(r.ReportsBugLabel)
}

// RunBugDetection deploys every plausible checker (hand + auto) across
// the corpus, triages the reports, and matches against ground truth.
func (h *Harness) RunBugDetection(handOutcomes []*SynthesisOutcome) *BugDetectionResult {
	if handOutcomes == nil {
		handOutcomes = h.RunCommits(h.Hand)
	}
	autoOutcomes := h.RunCommits(h.Auto)

	res := &BugDetectionResult{
		PerCommit: map[string]int{},
		finderOf:  map[string]*vcs.Commit{},
	}
	// Plausible checkers in priority order: hand first (the paper's
	// initial evaluation set), then auto-collected.
	type deployed struct {
		so *SynthesisOutcome
	}
	var deploys []deployed
	for _, so := range handOutcomes {
		if so.Plausible() {
			deploys = append(deploys, deployed{so})
			res.PlausibleHand++
		}
	}
	for _, so := range autoOutcomes {
		if so.Plausible() {
			deploys = append(deploys, deployed{so})
			res.PlausibleAuto++
		}
	}

	// One batched scan with every plausible checker (the unconstrained
	// production scan: no warning caps).
	var cks []checker.Checker
	byName := map[string]*SynthesisOutcome{}
	order := map[string]int{}
	for i, d := range deploys {
		ck := d.so.Refine.Checker
		cks = append(cks, ck)
		byName[ck.Name()] = d.so
		order[ck.Name()] = i
	}
	scanRes := h.Inc.Run(cks, scan.Options{Workers: h.Cfg.Workers})
	res.ReportsTotal = len(scanRes.Reports)

	// Count silent checkers.
	reported := map[string]bool{}
	for _, rep := range scanRes.Reports {
		reported[rep.Checker] = true
	}
	for name := range byName {
		if !reported[name] {
			res.SilentCheckers++
		}
	}

	// Triage filter: keep reports the agent labels "bug" (§5.1.2 notes
	// the agent's low false-negative rate justifies this).
	foundBy := map[string]string{} // bug ID -> checker name
	for _, rep := range scanRes.Reports {
		if !h.Triage.Classify(rep, 0).Bug {
			continue
		}
		res.ReportsBugLabel++
		bug, ok := h.Corpus.IsBugSite(rep.File, rep.Func)
		if ok && kernel.BugTypeName(bug.Class) == rep.BugType {
			if prev, dup := foundBy[bug.ID]; !dup || order[rep.Checker] < order[prev] {
				foundBy[bug.ID] = rep.Checker
			}
		} else {
			res.FalsePositives++
		}
	}

	// Materialize found bugs with the maintainer-response model.
	var ids []string
	for id := range foundBy {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var bug kernel.SeededBug
		for _, b := range h.Corpus.Bugs {
			if b.ID == id {
				bug = b
				break
			}
		}
		finder := byName[foundBy[id]].Commit
		fb := FoundBug{Bug: bug, Finder: finder}
		fb.Confirmed = hashDraw("confirm", id) < 0.80 // ~77/92 confirmed
		fb.Fixed = fb.Confirmed && hashDraw("fixed", id) < 0.71
		fb.CVE = fb.Confirmed && hashDraw("cve", id) < 0.38
		res.Found = append(res.Found, fb)
		res.PerCommit[finder.ID]++
		res.finderOf[finder.ID] = finder
	}
	res.TruePositives = len(res.Found)
	return res
}

// hashDraw reuses the llm package's deterministic unit draw.
func hashDraw(purpose, key string) float64 {
	return llm.Roll("eval", purpose, key)
}

// --- Figure 9 data ---

// Fig9a returns bugs per class, split into hand/auto finder source.
func (r *BugDetectionResult) Fig9a() (classes []string, hand, auto map[string]int) {
	hand, auto = map[string]int{}, map[string]int{}
	seen := map[string]bool{}
	for _, f := range r.Found {
		if f.Finder.AutoCollected {
			auto[f.Bug.Class]++
		} else {
			hand[f.Bug.Class]++
		}
		seen[f.Bug.Class] = true
	}
	for cls := range seen {
		classes = append(classes, cls)
	}
	sort.Slice(classes, func(i, j int) bool {
		return hand[classes[i]]+auto[classes[i]] > hand[classes[j]]+auto[classes[j]]
	})
	return classes, hand, auto
}

// Fig9b returns bugs per subsystem, descending.
func (r *BugDetectionResult) Fig9b() ([]string, map[string]int) {
	counts := map[string]int{}
	for _, f := range r.Found {
		counts[f.Bug.Subsystem]++
	}
	var subs []string
	for s := range counts {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool {
		if counts[subs[i]] != counts[subs[j]] {
			return counts[subs[i]] > counts[subs[j]]
		}
		return subs[i] < subs[j]
	})
	return subs, counts
}

// Fig9cBucket is a lifetime histogram bucket.
type Fig9cBucket struct {
	Label string
	Count int
}

// Fig9c returns the lifetime histogram and the mean lifetime in years.
func (r *BugDetectionResult) Fig9c(now func(kernel.SeededBug) float64) ([]Fig9cBucket, float64) {
	buckets := []Fig9cBucket{
		{Label: "0-1 yr"}, {Label: "1-2 yr"}, {Label: "2-5 yr"},
		{Label: "5-10 yr"}, {Label: "10-15 yr"}, {Label: "15+ yr"},
	}
	var total float64
	for _, f := range r.Found {
		years := now(f.Bug)
		total += years
		switch {
		case years < 1:
			buckets[0].Count++
		case years < 2:
			buckets[1].Count++
		case years < 5:
			buckets[2].Count++
		case years < 10:
			buckets[3].Count++
		case years < 15:
			buckets[4].Count++
		default:
			buckets[5].Count++
		}
	}
	mean := 0.0
	if len(r.Found) > 0 {
		mean = total / float64(len(r.Found))
	}
	return buckets, mean
}

// Fig9d returns the per-commit detection counts, descending.
func (r *BugDetectionResult) Fig9d() []int {
	var counts []int
	for _, n := range r.PerCommit {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}

// Render formats Table 2 and the Figure 9 panels.
func (r *BugDetectionResult) Render(corpus *kernel.Corpus) string {
	var sb strings.Builder
	total, confirmed, fixed, pending, cve := r.Table2()
	sb.WriteString("Table 2: Newly detected bugs.\n\n")
	fmt.Fprintf(&sb, "%8s %10s %6s %8s %4s\n", "Total", "Confirmed", "Fixed", "Pending", "CVE")
	fmt.Fprintf(&sb, "%8d %10d %6d %8d %4d\n\n", total, confirmed, fixed, pending, cve)

	fmt.Fprintf(&sb, "Plausible checkers deployed: %d hand + %d auto (%d reported nothing)\n",
		r.PlausibleHand, r.PlausibleAuto, r.SilentCheckers)
	fmt.Fprintf(&sb, "Scan reports: %d total, %d labeled bug by triage, %d TP / %d FP => FP rate %.1f%%\n\n",
		r.ReportsTotal, r.ReportsBugLabel, r.TruePositives, r.FalsePositives, 100*r.FPRate())

	classes, hand, auto := r.Fig9a()
	sb.WriteString("Figure 9a: bugs per type (hand+auto):\n")
	for _, cls := range classes {
		fmt.Fprintf(&sb, "  %-18s %3d  (%d hand, %d auto) %s\n", cls,
			hand[cls]+auto[cls], hand[cls], auto[cls], bar(hand[cls]+auto[cls]))
	}
	sb.WriteString("\nFigure 9b: bugs per subsystem:\n")
	subs, counts := r.Fig9b()
	for _, s := range subs {
		fmt.Fprintf(&sb, "  %-10s %3d %s\n", s, counts[s], bar(counts[s]))
	}
	buckets, mean := r.Fig9c(func(b kernel.SeededBug) float64 {
		return corpus.NowDate.Sub(b.Introduced).Hours() / 24 / 365.25
	})
	sb.WriteString("\nFigure 9c: bug lifetimes:\n")
	for _, b := range buckets {
		fmt.Fprintf(&sb, "  %-8s %3d %s\n", b.Label, b.Count, bar(b.Count))
	}
	fmt.Fprintf(&sb, "  mean lifetime: %.1f years\n", mean)
	sb.WriteString("\nFigure 9d: bugs per source commit (descending):\n  ")
	counts9d := r.Fig9d()
	for i, n := range counts9d {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	fiveOrMore := 0
	sum := 0
	for _, n := range counts9d {
		sum += n
		if n >= 5 {
			fiveOrMore++
		}
	}
	if len(counts9d) > 0 {
		fmt.Fprintf(&sb, "\n  mean %.1f bugs/commit, %d commits found >= 5 bugs\n",
			float64(sum)/float64(len(counts9d)), fiveOrMore)
	}
	return sb.String()
}

func bar(n int) string { return strings.Repeat("#", n) }
