package eval

import (
	"fmt"
	"strings"

	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/refine"
	"knighter/internal/synth"
)

// Table1Row is one bug-class row of paper Table 1.
type Table1Row struct {
	Class   string
	Total   int
	Invalid int
	Direct  int
	Refined int
	Fail    int
}

// Table1Result reproduces Table 1 plus the §5.1 telemetry around it.
type Table1Result struct {
	Rows     []Table1Row
	Outcomes []*SynthesisOutcome
	// §5.1 synthesis statistics.
	ValidCount     int
	AvgAttempts    float64
	AvgCheckerLoC  float64
	PathSensitive  int
	RegionBased    int
	StateTracking  int
	ASTTraveler    int
	FailedAttempts int
	CompileErrs    int
	RuntimeErrs    int
	SemanticErrs   int
	FlagBoth       int
	MissBoth       int
	// §5.1.2 refinement statistics.
	RefinedOK   int
	RefineSteps int
	// Resource accounting.
	Usage   llm.Usage
	CostUSD float64
}

// RunTable1 executes the full synthesis + refinement pipeline over the
// 61-commit hand-labeled benchmark.
func (h *Harness) RunTable1() *Table1Result {
	outcomes := h.RunCommits(h.Hand)
	res := &Table1Result{Outcomes: outcomes}
	rows := map[string]*Table1Row{}
	for _, cls := range kernel.AllClasses {
		rows[cls] = &Table1Row{Class: cls}
	}
	attempts := 0
	for _, so := range outcomes {
		row := rows[so.Commit.Class]
		row.Total++
		res.Usage.Add(so.Synth.Usage)
		for _, f := range so.Synth.Failed {
			res.FailedAttempts++
			switch f.Symptom {
			case synth.SymptomCompile:
				res.CompileErrs++
			case synth.SymptomRuntime:
				res.RuntimeErrs++
			case synth.SymptomFlagBoth:
				res.SemanticErrs++
				res.FlagBoth++
			case synth.SymptomMissBoth:
				res.SemanticErrs++
				res.MissBoth++
			}
		}
		if !so.Synth.Valid {
			row.Invalid++
			continue
		}
		res.ValidCount++
		attempts += so.Synth.Iterations
		res.AvgCheckerLoC += float64(so.Synth.Spec.LineCount())
		caps := so.Synth.Spec.Capabilities()
		if caps.PathSensitive {
			res.PathSensitive++
		}
		if caps.RegionBased {
			res.RegionBased++
		}
		if caps.StateTracking {
			res.StateTracking++
		}
		if caps.ASTTraveler {
			res.ASTTraveler++
		}
		res.Usage.Add(so.Refine.Usage)
		res.RefineSteps += so.Refine.Steps
		switch so.Refine.Disposition {
		case refine.DirectPlausible:
			row.Direct++
		case refine.RefinedPlausible:
			row.Refined++
			res.RefinedOK++
		case refine.Fail:
			row.Fail++
		}
	}
	if res.ValidCount > 0 {
		res.AvgAttempts = float64(attempts) / float64(res.ValidCount)
		res.AvgCheckerLoC /= float64(res.ValidCount)
	}
	res.CostUSD = res.Usage.CostUSD(llm.O3Mini.InputCostPerM, llm.O3Mini.OutputCostPerM)
	for _, cls := range kernel.AllClasses {
		res.Rows = append(res.Rows, *rows[cls])
	}
	return res
}

// Render formats the result as the paper's Table 1.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Distribution of patch commits across 10 bug categories\n")
	sb.WriteString("and the validity status of their synthesized checkers.\n\n")
	fmt.Fprintf(&sb, "%-18s %5s %8s | %6s %8s %5s\n", "Bug Type", "Total", "Invalid", "Direct", "Refined", "Fail")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	var tot Table1Row
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-18s %5d %8d | %6d %8d %5d\n",
			row.Class, row.Total, row.Invalid, row.Direct, row.Refined, row.Fail)
		tot.Total += row.Total
		tot.Invalid += row.Invalid
		tot.Direct += row.Direct
		tot.Refined += row.Refined
		tot.Fail += row.Fail
	}
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	fmt.Fprintf(&sb, "%-18s %5d %8d | %6d %8d %5d\n",
		"Total", tot.Total, tot.Invalid, tot.Direct, tot.Refined, tot.Fail)
	fmt.Fprintf(&sb, "\nValid checkers: %d   avg synthesis attempts: %.1f   avg checker LoC: %.1f\n",
		r.ValidCount, r.AvgAttempts, r.AvgCheckerLoC)
	fmt.Fprintf(&sb, "Capabilities: path-sensitive %d, region %d, state-tracking %d, AST-traveler %d\n",
		r.PathSensitive, r.RegionBased, r.StateTracking, r.ASTTraveler)
	fmt.Fprintf(&sb, "Failed attempts: %d (compile %d, runtime %d, semantic %d [flag-both %d / miss-both %d])\n",
		r.FailedAttempts, r.CompileErrs, r.RuntimeErrs, r.SemanticErrs, r.FlagBoth, r.MissBoth)
	fmt.Fprintf(&sb, "Refinement: %d checkers refined to plausible, %d accepted refinement steps\n",
		r.RefinedOK, r.RefineSteps)
	fmt.Fprintf(&sb, "LLM usage: %.1fM input / %.1fM output tokens, %d calls, $%.2f total ($%.3f per commit)\n",
		float64(r.Usage.InputTokens)/1e6, float64(r.Usage.OutputTokens)/1e6, r.Usage.Calls,
		r.CostUSD, r.CostUSD/61)
	return sb.String()
}
