package eval

import (
	"testing"

	"knighter/internal/kernel"
	"knighter/internal/refine"
)

// TestFullScaleHeadlineNumbers regenerates the headline EXPERIMENTS.md
// numbers at full corpus scale. It is the repository's end-to-end
// reproduction check; skipped under -short.
func TestFullScaleHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale evaluation skipped in -short mode")
	}
	h, err := NewHarness(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1 := h.RunTable1()

	// Table 1 headline: 39 valid / 22 invalid (paper: 39/22).
	if t1.ValidCount != 39 {
		t.Errorf("valid checkers = %d, want 39", t1.ValidCount)
	}
	invalid := 0
	fails := map[string]int{}
	for _, row := range t1.Rows {
		invalid += row.Invalid
		if row.Fail > 0 {
			fails[row.Class] = row.Fail
		}
	}
	if invalid != 22 {
		t.Errorf("invalid = %d, want 22", invalid)
	}
	// The two refinement failures land on the paper's classes.
	if fails[kernel.ClassNPD] != 1 || fails[kernel.ClassDoubleFree] != 1 || len(fails) != 2 {
		t.Errorf("refinement failures = %v, want {NPD:1, Double-Free:1}", fails)
	}
	// Per-class invalid counts must match Table 1 exactly (they are
	// pinned by the destiny table).
	wantInvalid := map[string]int{
		kernel.ClassNPD: 1, kernel.ClassIntOver: 3, kernel.ClassOOB: 2,
		kernel.ClassBufOver: 3, kernel.ClassMemLeak: 2, kernel.ClassUAF: 4,
		kernel.ClassDoubleFree: 1, kernel.ClassUBI: 1, kernel.ClassConcurrency: 2,
		kernel.ClassMisuse: 3,
	}
	for _, row := range t1.Rows {
		if row.Invalid != wantInvalid[row.Class] {
			t.Errorf("%s invalid = %d, want %d", row.Class, row.Invalid, wantInvalid[row.Class])
		}
	}

	// Table 2 / Fig 9: all 92 seeded bugs rediscovered with the exact
	// paper distributions.
	bugs := h.RunBugDetection(t1.Outcomes)
	total, confirmed, fixed, _, cve := bugs.Table2()
	if total != 92 {
		t.Fatalf("bugs found = %d, want 92", total)
	}
	if confirmed < 70 || confirmed > 88 || fixed > confirmed || cve < 20 || cve > 40 {
		t.Errorf("statuses: confirmed=%d fixed=%d cve=%d", confirmed, fixed, cve)
	}
	if fp := bugs.FPRate(); fp < 0.2 || fp > 0.45 {
		t.Errorf("FP rate = %.2f, want near 0.32", fp)
	}
	_, hand, auto := bugs.Fig9a()
	if hand[kernel.ClassNPD] != 24 || auto[kernel.ClassNPD] != 30 {
		t.Errorf("NPD split = %d/%d, want 24/30", hand[kernel.ClassNPD], auto[kernel.ClassNPD])
	}
	subs, counts := bugs.Fig9b()
	if subs[0] != "drivers" || counts["drivers"] != 67 {
		t.Errorf("drivers = %d, want 67", counts["drivers"])
	}

	// Refinement reached plausibility for most initially-implausible
	// checkers (paper: 11 of 13).
	refinedOrFailed := 0
	for _, so := range t1.Outcomes {
		if so.Refine != nil && so.Refine.Disposition != refine.DirectPlausible {
			refinedOrFailed++
		}
	}
	if t1.RefinedOK < refinedOrFailed-3 {
		t.Errorf("refined %d of %d non-direct checkers", t1.RefinedOK, refinedOrFailed)
	}
}
