package eval

import (
	"fmt"
	"strings"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/refine"
	"knighter/internal/scan"
	"knighter/internal/smatch"
)

// OrthogonalityResult reproduces RQ3 (§5.3): the expert-written baseline
// finds a large, disjoint report population.
type OrthogonalityResult struct {
	SmatchErrors   int
	SmatchWarnings int
	// Overlap counts KNighter true positives that Smatch also flags
	// (same file+function with an equivalent check category).
	Overlap        int
	KNighterTPs    int
	SampleFindings []smatch.Finding
}

// RunOrthogonality runs the baseline across the corpus and intersects
// with KNighter's confirmed detections.
func (h *Harness) RunOrthogonality(bugs *BugDetectionResult) (*OrthogonalityResult, error) {
	sm, err := smatch.Run(h.Corpus)
	if err != nil {
		return nil, err
	}
	res := &OrthogonalityResult{
		SmatchErrors:   sm.Errors(),
		SmatchWarnings: sm.Warnings(),
		KNighterTPs:    len(bugs.Found),
	}
	if len(sm.Findings) > 5 {
		res.SampleFindings = sm.Findings[:5]
	} else {
		res.SampleFindings = sm.Findings
	}
	// Index Smatch findings by site and category equivalence.
	type site struct{ file, fn string }
	smatchAt := map[site][]smatch.Finding{}
	for _, f := range sm.Findings {
		smatchAt[site{f.File, f.Func}] = append(smatchAt[site{f.File, f.Func}], f)
	}
	for _, fb := range bugs.Found {
		for _, f := range smatchAt[site{fb.Bug.File, fb.Bug.Func}] {
			if smatchCategoryMatches(f.Check, fb.Bug.Class) {
				res.Overlap++
				break
			}
		}
	}
	return res, nil
}

// smatchCategoryMatches maps baseline check names onto the bug taxonomy.
func smatchCategoryMatches(check, class string) bool {
	switch check {
	case "check_deref":
		return class == kernel.ClassNPD
	case "uninitialized":
		return class == kernel.ClassUBI
	case "unchecked_return":
		return class == kernel.ClassMisuse
	default:
		return false
	}
}

// Render formats the RQ3 comparison.
func (r *OrthogonalityResult) Render() string {
	var sb strings.Builder
	sb.WriteString("RQ3: Orthogonality with the expert-written baseline (Smatch analog).\n\n")
	fmt.Fprintf(&sb, "Baseline reports: %d errors, %d warnings across the corpus\n",
		r.SmatchErrors, r.SmatchWarnings)
	fmt.Fprintf(&sb, "KNighter true positives also detected by the baseline: %d of %d\n\n",
		r.Overlap, r.KNighterTPs)
	sb.WriteString("Sample baseline findings:\n")
	for _, f := range r.SampleFindings {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}

// TriageEvalResult reproduces RQ4 (§5.4.1): the triage agent's confusion
// matrix on sampled reports plus 5-way self-consistency.
type TriageEvalResult struct {
	SampledReports    int
	ReportingCheckers int
	SilentCheckers    int
	TP, FP, TN, FN    int
	// Majority voting at thresholds 3 and 4 (5 runs).
	TPAt3, FPAt3 int
	TPAt4, FPAt4 int
}

// RunTriageEval samples up to 5 reports per valid checker and grades the
// triage agent against ground truth.
func (h *Harness) RunTriageEval(handOutcomes []*SynthesisOutcome) *TriageEvalResult {
	if handOutcomes == nil {
		handOutcomes = h.RunCommits(h.Hand)
	}
	res := &TriageEvalResult{}
	// Valid checkers, pre-refinement (the RQ4 population), scanned as one
	// batch over the shared store: each checker's result is identical to a
	// standalone scan, but the N scans share the warm corpus and a bounded
	// worker pool instead of running strictly one after another.
	var valid []*SynthesisOutcome
	var cks []checker.Checker
	for _, so := range handOutcomes {
		if so.Synth.Valid {
			valid = append(valid, so)
			cks = append(cks, so.Synth.Checker)
		}
	}
	// Cfg.Workers bounds total parallelism: passed as the pool size (with
	// per-scan workers auto-scaled down), not as per-scan workers, so the
	// batch cannot oversubscribe the machine by concurrency × workers.
	batch := h.Inc.RunBatch(cks, nil, scan.Options{MaxReports: 100}, h.Cfg.Workers)
	for bi, so := range valid {
		scanRes := batch[bi]
		if len(scanRes.Reports) == 0 {
			res.SilentCheckers++
			continue
		}
		res.ReportingCheckers++
		sample := sampleUpTo(scanRes.Reports, 5, so.Commit.ID)
		for _, rep := range sample {
			res.SampledReports++
			truth := h.Triage.IsTruePositive(rep)
			single := h.Triage.Classify(rep, 0).Bug
			switch {
			case single && truth:
				res.TP++
			case single && !truth:
				res.FP++
			case !single && !truth:
				res.TN++
			default:
				res.FN++
			}
			v3 := h.Triage.MajorityVote(rep, 5, 3).Bug
			v4 := h.Triage.MajorityVote(rep, 5, 4).Bug
			if v3 && truth {
				res.TPAt3++
			}
			if v3 && !truth {
				res.FPAt3++
			}
			if v4 && truth {
				res.TPAt4++
			}
			if v4 && !truth {
				res.FPAt4++
			}
		}
	}
	return res
}

// sampleUpTo deterministically samples n reports keyed by the commit id.
func sampleUpTo(reports []*checker.Report, n int, key string) []*checker.Report {
	if len(reports) <= n {
		return reports
	}
	// Reuse the refinement sampler's deterministic permutation.
	return refineSample(reports, n, key)
}

func refineSample(reports []*checker.Report, n int, key string) []*checker.Report {
	return refine.SampleForTest(reports, n, key)
}

// Render formats the RQ4 study.
func (r *TriageEvalResult) Render() string {
	var sb strings.Builder
	sb.WriteString("RQ4: Bug triage agent evaluation.\n\n")
	fmt.Fprintf(&sb, "Sampled %d reports from %d reporting checkers (%d valid checkers were silent)\n",
		r.SampledReports, r.ReportingCheckers, r.SilentCheckers)
	fmt.Fprintf(&sb, "Single-run agent:  TP %d  FP %d  TN %d  FN %d\n", r.TP, r.FP, r.TN, r.FN)
	fmt.Fprintf(&sb, "5-way majority (t=3): TP %d  FP %d\n", r.TPAt3, r.FPAt3)
	fmt.Fprintf(&sb, "5-way majority (t=4): TP %d  FP %d\n", r.TPAt4, r.FPAt4)
	if r.FN == 0 {
		sb.WriteString("Zero false negatives: the agent never discards a true bug.\n")
	}
	return sb.String()
}
