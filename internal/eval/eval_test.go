package eval

import (
	"strings"
	"sync"
	"testing"

	"knighter/internal/kernel"
)

var (
	evalOnce sync.Once
	evalH    *Harness
	evalT1   *Table1Result
	evalBugs *BugDetectionResult
)

// sharedHarness runs the (fairly expensive) pipeline once for all tests
// in this package, on a reduced-scale corpus.
func sharedHarness(t *testing.T) (*Harness, *Table1Result, *BugDetectionResult) {
	t.Helper()
	evalOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.CorpusScale = 0.2
		h, err := NewHarness(cfg)
		if err != nil {
			panic(err)
		}
		evalH = h
		evalT1 = h.RunTable1()
		evalBugs = h.RunBugDetection(evalT1.Outcomes)
	})
	return evalH, evalT1, evalBugs
}

func TestTable1Shape(t *testing.T) {
	_, t1, _ := sharedHarness(t)
	total := 0
	for _, row := range t1.Rows {
		total += row.Total
		if row.Invalid+row.Direct+row.Refined+row.Fail != row.Total {
			t.Errorf("row %s does not sum: %+v", row.Class, row)
		}
	}
	if total != 61 {
		t.Errorf("total commits = %d, want 61", total)
	}
	if t1.ValidCount != 39 {
		t.Errorf("valid checkers = %d, want 39 (paper)", t1.ValidCount)
	}
	if t1.FailedAttempts == 0 || t1.CompileErrs == 0 || t1.SemanticErrs == 0 {
		t.Errorf("failure telemetry empty: %+v", t1)
	}
	if t1.AvgAttempts < 1.5 || t1.AvgAttempts > 4.0 {
		t.Errorf("avg attempts = %.1f, expected near the paper's 2.4", t1.AvgAttempts)
	}
	if t1.Usage.Calls == 0 || t1.CostUSD <= 0 {
		t.Error("usage accounting missing")
	}
}

func TestTable1FailuresLandOnPaperClasses(t *testing.T) {
	// The plausibility criterion samples 5 warnings, so which checkers
	// end as refinement failures is sample-sensitive at reduced corpus
	// scale; the stable invariant is that the NPD devm_ioremap checker
	// (whose WARN_ON bait is outside the refinement repertoire) always
	// fails, and failures stay rare. The full-scale run (EXPERIMENTS.md)
	// lands on exactly the paper's one-NPD-one-Double-Free split.
	_, t1, _ := sharedHarness(t)
	fails := map[string]int{}
	total := 0
	for _, row := range t1.Rows {
		if row.Fail > 0 {
			fails[row.Class] = row.Fail
			total += row.Fail
		}
	}
	if fails[kernel.ClassNPD] != 1 {
		t.Errorf("refinement failures = %v, want the NPD WARN_ON checker to fail", fails)
	}
	if total > 4 {
		t.Errorf("refinement failures = %d, expected rare (paper: 2)", total)
	}
}

func TestBugDetectionShape(t *testing.T) {
	h, _, bugs := sharedHarness(t)
	total, confirmed, fixed, pending, cve := bugs.Table2()
	if total != 92 {
		t.Errorf("bugs found = %d, want 92", total)
	}
	if confirmed+pending != total || fixed > confirmed || cve > confirmed {
		t.Errorf("status model inconsistent: %d/%d/%d/%d/%d", total, confirmed, fixed, pending, cve)
	}
	if bugs.FPRate() < 0.15 || bugs.FPRate() > 0.5 {
		t.Errorf("FP rate = %.2f, expected near the paper's 0.32", bugs.FPRate())
	}
	// Fig 9a must match the paper's distribution exactly (the corpus
	// seeds it and the checkers must recover all of it).
	classes, hand, auto := bugs.Fig9a()
	want := map[string]int{
		kernel.ClassNPD: 54, kernel.ClassIntOver: 16, kernel.ClassMisuse: 7,
		kernel.ClassConcurrency: 4, kernel.ClassOOB: 3, kernel.ClassMemLeak: 3,
		kernel.ClassBufOver: 3, kernel.ClassUAF: 1, kernel.ClassUBI: 1,
	}
	for cls, n := range want {
		if hand[cls]+auto[cls] != n {
			t.Errorf("Fig9a %s = %d, want %d", cls, hand[cls]+auto[cls], n)
		}
	}
	if hand[kernel.ClassNPD] != 24 || auto[kernel.ClassNPD] != 30 {
		t.Errorf("NPD split = %d hand / %d auto, want 24/30", hand[kernel.ClassNPD], auto[kernel.ClassNPD])
	}
	if len(classes) != len(want) {
		t.Errorf("classes = %v", classes)
	}
	// Fig 9b: drivers dominate.
	subs, counts := bugs.Fig9b()
	if subs[0] != "drivers" || counts["drivers"] != 67 {
		t.Errorf("Fig9b top = %s/%d, want drivers/67", subs[0], counts[subs[0]])
	}
	// Fig 9c mean near 4.3 years.
	_, mean := bugs.Fig9c(func(b kernel.SeededBug) float64 {
		return h.Corpus.NowDate.Sub(b.Introduced).Hours() / 24 / 365.25
	})
	if mean < 3.5 || mean > 6.0 {
		t.Errorf("mean lifetime = %.1f", mean)
	}
	// Fig 9d: long tail with several >= 5.
	counts9d := bugs.Fig9d()
	if len(counts9d) == 0 || counts9d[0] < 5 {
		t.Errorf("Fig9d head = %v", counts9d)
	}
}

func TestOrthogonalityZeroOverlap(t *testing.T) {
	h, _, bugs := sharedHarness(t)
	orth, err := h.RunOrthogonality(bugs)
	if err != nil {
		t.Fatal(err)
	}
	if orth.Overlap != 0 {
		t.Errorf("overlap = %d, want 0 (RQ3)", orth.Overlap)
	}
	if orth.SmatchErrors+orth.SmatchWarnings == 0 {
		t.Error("baseline produced no findings at all")
	}
}

func TestTriageEvalZeroFalseNegatives(t *testing.T) {
	h, t1, _ := sharedHarness(t)
	tr := h.RunTriageEval(t1.Outcomes)
	if tr.FN != 0 {
		t.Errorf("false negatives = %d, want 0 (§5.4.1)", tr.FN)
	}
	if tr.SampledReports == 0 || tr.ReportingCheckers == 0 {
		t.Errorf("triage eval sampled nothing: %+v", tr)
	}
	// Majority voting must not lose true positives.
	if tr.TPAt3 != tr.TP || tr.TPAt4 != tr.TP {
		t.Errorf("majority voting changed TP count: single=%d t3=%d t4=%d", tr.TP, tr.TPAt3, tr.TPAt4)
	}
}

func TestAblationOrdering(t *testing.T) {
	h, _, _ := sharedHarness(t)
	abl := h.RunAblation()
	if len(abl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(abl.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range abl.Rows {
		byName[row.Variant] = row
	}
	def := byName["Default"]
	ss := byName["W/o multi-stage"]
	gem := byName["W/ Gemini-2-flash"]
	if def.Valid <= ss.Valid {
		t.Errorf("multi-stage (%d) must beat single-stage (%d)", def.Valid, ss.Valid)
	}
	if ss.Syntax <= def.Syntax {
		t.Errorf("single-stage should produce more syntax errors (%d vs %d)", ss.Syntax, def.Syntax)
	}
	if gem.Valid >= def.Valid {
		t.Errorf("gemini (%d) should trail the default (%d)", gem.Valid, def.Valid)
	}
	if gem.Syntax <= def.Syntax {
		t.Errorf("gemini should be dominated by syntax errors (%d vs %d)", gem.Syntax, def.Syntax)
	}
	if len(abl.Sample) != 20 {
		t.Errorf("ablation sample = %d commits, want 20", len(abl.Sample))
	}
}

func TestRendersContainHeadlineNumbers(t *testing.T) {
	h, t1, bugs := sharedHarness(t)
	if !strings.Contains(t1.Render(), "Valid checkers: 39") {
		t.Error("table 1 render missing valid count")
	}
	r2 := bugs.Render(h.Corpus)
	for _, want := range []string{"Table 2", "Figure 9a", "Figure 9b", "Figure 9c", "Figure 9d"} {
		if !strings.Contains(r2, want) {
			t.Errorf("bug render missing %q", want)
		}
	}
}

func TestDeterminismAcrossHarnesses(t *testing.T) {
	_, t1, _ := sharedHarness(t)
	cfg := DefaultConfig()
	cfg.CorpusScale = 0.2
	h2, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1b := h2.RunTable1()
	if t1.Render() != t1b.Render() {
		t.Error("Table 1 not reproducible across harnesses")
	}
}

func TestSampleAblationCommitsSeeded(t *testing.T) {
	h, _, _ := sharedHarness(t)
	a := SampleAblationCommits(h.Hand, 0)
	b := SampleAblationCommits(h.Hand, 0)
	if len(a) != 20 {
		t.Fatalf("sample size = %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("sampling not deterministic")
		}
	}
	c := SampleAblationCommits(h.Hand, 7)
	different := false
	for i := range a {
		if a[i].ID != c[i].ID {
			different = true
		}
	}
	if !different {
		t.Error("different seeds produced identical samples")
	}
}
