// Package eval regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrate: Table 1 (synthesis),
// Table 2 + Figure 9 (bug detection), Table 3 (ablation), the RQ3
// orthogonality comparison, and the RQ4 triage-agent study.
package eval

import (
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/refine"
	"knighter/internal/scan"
	"knighter/internal/store"
	"knighter/internal/synth"
	"knighter/internal/triage"
	"knighter/internal/vcs"
)

// Config pins every seed the evaluation depends on; two runs with the
// same Config produce byte-identical outputs.
type Config struct {
	CorpusSeed  int64
	CommitSeed  int64
	AutoSeed    int64
	AutoCount   int
	CorpusScale float64
	Workers     int
	// FPBugRate calibrates the triage agent (§5.4.1: it approved 22 of
	// 72 false reports).
	FPBugRate float64
}

// DefaultConfig is the configuration used throughout EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		CorpusSeed:  1,
		CommitSeed:  11,
		AutoSeed:    13,
		AutoCount:   100,
		CorpusScale: 1.0,
		FPBugRate:   0.32,
	}
}

// Harness owns the shared state of an evaluation run.
type Harness struct {
	Cfg      Config
	Corpus   *kernel.Corpus
	Codebase *scan.Codebase
	// Inc schedules every harness scan through one shared
	// analysis-result cache: the refinement loop, the bug-detection
	// deployment scan, and the RQ3 per-checker scans all hit the same
	// store, so re-running a table is largely cache-served.
	Inc    *scan.Incremental
	Hand   *vcs.Store
	Auto   *vcs.Store
	Model  *llm.Oracle
	Pipe   *synth.Pipeline
	Triage *triage.Agent
	Loop   *refine.Loop
}

// NewHarness builds the corpus, parses it, and wires the pipeline.
func NewHarness(cfg Config) (*Harness, error) {
	if cfg.CorpusScale <= 0 {
		cfg.CorpusScale = 1.0
	}
	if cfg.FPBugRate <= 0 {
		cfg.FPBugRate = 0.32
	}
	corpus := kernel.Generate(kernel.Config{Seed: cfg.CorpusSeed, Scale: cfg.CorpusScale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		return nil, err
	}
	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	tr := triage.NewAgent(corpus)
	tr.FPBugRate = cfg.FPBugRate
	h := &Harness{
		Cfg:      cfg,
		Corpus:   corpus,
		Codebase: cb,
		Inc:      scan.NewIncremental(cb, store.NewMemory(0)),
		Hand:     kernel.BuildHandCommits(cfg.CommitSeed),
		Auto:     kernel.BuildAutoNPDCommits(cfg.AutoSeed, cfg.AutoCount),
		Model:    model,
		Pipe:     pipe,
		Triage:   tr,
	}
	h.Loop = refine.NewLoopWith(h.Inc, tr, model, pipe.Val, refine.Options{})
	return h, nil
}

// SynthesisOutcome couples a commit's synthesis result with its
// refinement disposition.
type SynthesisOutcome struct {
	Commit *vcs.Commit
	Synth  *synth.Outcome
	Refine *refine.Result // nil when synthesis failed
}

// Disposition is a convenience accessor ("invalid" when synthesis
// failed).
func (s *SynthesisOutcome) Disposition() string {
	if s.Refine == nil {
		return "invalid"
	}
	return string(s.Refine.Disposition)
}

// Plausible reports whether the final checker may be deployed for bug
// finding.
func (s *SynthesisOutcome) Plausible() bool {
	return s.Refine != nil && s.Refine.Disposition != refine.Fail
}

// RunCommits synthesizes and refines checkers for every commit in the
// store, in insertion order.
func (h *Harness) RunCommits(store *vcs.Store) []*SynthesisOutcome {
	var out []*SynthesisOutcome
	for _, c := range store.All() {
		so := &SynthesisOutcome{Commit: c, Synth: h.Pipe.GenChecker(c)}
		if so.Synth.Valid {
			so.Refine = h.Loop.Run(c, so.Synth.Spec)
		}
		out = append(out, so)
	}
	return out
}
