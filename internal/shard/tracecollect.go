package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"knighter/internal/obs"
)

// TraceCollector gathers a trace's fragments from the rest of the fleet
// — the scatter side of GET /trace/{id}. It reuses the shard fan-out
// shape (concurrent sub-requests, per-peer timeout) but is deliberately
// best-effort everywhere: a peer that is down, answers slowly, or
// sampled the trace out simply contributes nothing, and the assembled
// tree reports the gap as an orphaned subtree instead of failing the
// request.
type TraceCollector struct {
	targets []string
	client  *http.Client
	timeout time.Duration
}

// NewTraceCollector returns a collector over the given base URLs
// (typically every peer except self, plus the kcached -cache-remote).
// Each fetch is bounded by perPeer (default 2s). Returns nil when there
// is nothing to collect from — nil-safe, like the trace store.
func NewTraceCollector(targets []string, perPeer time.Duration) *TraceCollector {
	if len(targets) == 0 {
		return nil
	}
	if perPeer <= 0 {
		perPeer = 2 * time.Second
	}
	return &TraceCollector{
		targets: append([]string(nil), targets...),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        16,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}},
		timeout: perPeer,
	}
}

// Targets reports the collector's base URLs (for /stats and logs).
func (tc *TraceCollector) Targets() []string {
	if tc == nil {
		return nil
	}
	return append([]string(nil), tc.targets...)
}

// Collect fetches id's fragment from every target concurrently via
// GET {base}/trace/{id}?local=1 (the loop-guarded local-only form) and
// returns whatever arrived, in target order. Failures and 404s are
// skipped.
func (tc *TraceCollector) Collect(ctx context.Context, id string) []*obs.StoredTrace {
	if tc == nil || id == "" {
		return nil
	}
	frags := make([]*obs.StoredTrace, len(tc.targets))
	var wg sync.WaitGroup
	for i, base := range tc.targets {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			frags[i] = tc.fetch(ctx, base, id)
		}(i, base)
	}
	wg.Wait()
	out := make([]*obs.StoredTrace, 0, len(frags))
	for _, f := range frags {
		if f != nil {
			out = append(out, f)
		}
	}
	return out
}

func (tc *TraceCollector) fetch(ctx context.Context, base, id string) *obs.StoredTrace {
	pctx, cancel := context.WithTimeout(ctx, tc.timeout)
	defer cancel()
	u := fmt.Sprintf("%s/trace/%s?local=1", base, url.PathEscape(id))
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, u, nil)
	if err != nil {
		return nil
	}
	resp, err := tc.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	var st obs.StoredTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil
	}
	if st.TraceID != id {
		return nil
	}
	return &st
}
