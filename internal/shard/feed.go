package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"knighter/internal/api"
	"knighter/internal/obs"
)

// DefaultFeedCap bounds the generation feed's retained entries. A
// shard that falls further behind than the retention window cannot
// converge from the feed alone and keeps 409ing sub-scans — the
// operator signal to reseed it.
const DefaultFeedCap = 1024

// Feed is the fleet's generation feed: an ordered, bounded ledger of
// committed changesets, served by kcached so a sharded fleet has one
// place to publish commits and one place to pull missed ones from. It
// is not a consensus log — coordinators apply locally first and
// publish after — but with writes routed through coordinators it gives
// every shard the same generation history in the same order.
type Feed struct {
	mu      sync.Mutex
	entries []api.FeedEntry // ascending, contiguous-by-arrival
	latest  int64
	cap     int
	// published/served count feed traffic for /metrics.
	published int64
	served    int64
}

// NewFeed returns a feed retaining up to capN entries (<= 0 uses
// DefaultFeedCap).
func NewFeed(capN int) *Feed {
	if capN <= 0 {
		capN = DefaultFeedCap
	}
	return &Feed{cap: capN}
}

// Publish appends one committed changeset. Publishing a generation the
// feed already has is idempotent (first writer wins); out-of-order
// generations are accepted and kept sorted by insertion point being the
// tail in practice — coordinators publish immediately after committing.
func (f *Feed) Publish(e api.FeedEntry) error {
	if e.Generation <= 0 {
		return fmt.Errorf("feed: generation must be > 0, got %d", e.Generation)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, have := range f.entries {
		if have.Generation == e.Generation {
			return nil
		}
	}
	i := len(f.entries)
	for i > 0 && f.entries[i-1].Generation > e.Generation {
		i--
	}
	f.entries = append(f.entries, api.FeedEntry{})
	copy(f.entries[i+1:], f.entries[i:])
	f.entries[i] = e
	if n := len(f.entries) - f.cap; n > 0 {
		f.entries = append([]api.FeedEntry(nil), f.entries[n:]...)
	}
	if e.Generation > f.latest {
		f.latest = e.Generation
	}
	f.published++
	return nil
}

// Since returns the retained entries with generation > from, ascending.
func (f *Feed) Since(from int64) api.FeedPage {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.served++
	page := api.FeedPage{Latest: f.latest}
	for _, e := range f.entries {
		if e.Generation > from {
			page.Entries = append(page.Entries, e)
		}
	}
	return page
}

// Register publishes the feed's counters on reg (kcached's /metrics).
func (f *Feed) Register(reg *obs.Registry) {
	reg.CounterFunc("feed_publishes_total",
		"Changeset commits published to the generation feed.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.published) })
	reg.CounterFunc("feed_pulls_total",
		"Generation-feed pulls served to converging shards.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.served) })
	reg.GaugeFunc("feed_latest_generation",
		"Highest generation published to the feed.",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(f.latest) })
}

// Handler serves the feed over HTTP:
//
//	POST /feed    {"generation": N, "changes": [...]}  -> 204
//	GET  /feed?from=N                                  -> FeedPage
func (f *Feed) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /feed", func(w http.ResponseWriter, r *http.Request) {
		var e api.FeedEntry
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			http.Error(w, "feed: bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := f.Publish(e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /feed", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f.Since(from))
	})
	return mux
}

// FeedClient talks to a remote feed (the kcached daemon's /feed).
type FeedClient struct {
	base   string
	client *http.Client
}

// NewFeedClient returns a client for the feed at base (e.g. the
// -cache-remote URL). Calls are bounded by timeout (default 5s).
func NewFeedClient(base string, timeout time.Duration) *FeedClient {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &FeedClient{base: base, client: &http.Client{Timeout: timeout}}
}

// Publish posts one committed changeset to the feed.
func (c *FeedClient) Publish(ctx context.Context, e api.FeedEntry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/feed", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHeaders(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("feed publish: %s", resp.Status)
	}
	return nil
}

// Since pulls the entries with generation > from.
func (c *FeedClient) Since(ctx context.Context, from int64) (api.FeedPage, error) {
	var page api.FeedPage
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/feed?from=%d", c.base, from), nil)
	if err != nil {
		return page, err
	}
	obs.InjectHeaders(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		return page, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("feed pull: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	return page, err
}
