package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knighter/internal/api"
)

// synthPartial fabricates the sub-scan reply a shard owner would return
// for files: one report per file (named after it), a runtime error for
// files carrying the "!" marker, and the per-file cuts the merge needs.
func synthPartial(files []string) *api.ScanResponse {
	p := &api.ScanResponse{FilesScanned: len(files), FuncsScanned: 2 * len(files), Generation: 7}
	for _, f := range files {
		cut := api.FileCut{Reports: 1}
		p.Reports = append(p.Reports, api.Report{Checker: "synth", File: f, Message: "r:" + f})
		if strings.Contains(f, "!") {
			p.RuntimeErrs = append(p.RuntimeErrs, "err:"+f)
			cut.RuntimeErrs = 1
		}
		p.FileCuts = append(p.FileCuts, cut)
	}
	return p
}

func synthLocal(ctx context.Context, files []string) ([]*api.ScanResponse, error) {
	return []*api.ScanResponse{synthPartial(files)}, nil
}

func TestRingPartitionPreservesOrder(t *testing.T) {
	ring := Ring{Count: 3}
	paths := make([]string, 40)
	for i := range paths {
		paths[i] = fmt.Sprintf("drivers/f%02d.c", i)
	}
	parts := ring.Partition(paths)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	total := 0
	for s, part := range parts {
		total += len(part)
		last := -1
		for _, p := range part {
			if ring.Owner(p) != s {
				t.Fatalf("%s landed in partition %d but Owner says %d", p, s, ring.Owner(p))
			}
			// Input order must be preserved within the partition.
			var idx int
			fmt.Sscanf(p, "drivers/f%02d.c", &idx)
			if idx <= last {
				t.Fatalf("partition %d out of input order: %v", s, part)
			}
			last = idx
		}
	}
	if total != len(paths) {
		t.Fatalf("partitions cover %d paths, want %d", total, len(paths))
	}
	// A single-shard ring owns everything.
	if (Ring{Count: 1}).Owner("anything.c") != 0 {
		t.Fatal("single-shard ring must own every path")
	}
}

func TestMergeScanReassemblesGlobalOrder(t *testing.T) {
	ring := Ring{Count: 3}
	paths := []string{"a.c", "b!.c", "c.c", "d.c", "e!.c", "f.c", "g.c"}
	partitions := ring.Partition(paths)
	parts := make([]*api.ScanResponse, 3)
	for s, files := range partitions {
		if len(files) > 0 {
			parts[s] = synthPartial(files)
		}
	}
	merged, err := MergeScan("synth", paths, ring, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Reports) != len(paths) {
		t.Fatalf("merged %d reports, want %d", len(merged.Reports), len(paths))
	}
	for i, rep := range merged.Reports {
		if rep.File != paths[i] {
			t.Fatalf("report %d is for %s, want %s (global order broken)", i, rep.File, paths[i])
		}
	}
	wantErrs := []string{"err:b!.c", "err:e!.c"}
	if fmt.Sprint(merged.RuntimeErrs) != fmt.Sprint(wantErrs) {
		t.Fatalf("runtime errs = %v, want %v", merged.RuntimeErrs, wantErrs)
	}
	if merged.FilesScanned != len(paths) || merged.FuncsScanned != 2*len(paths) {
		t.Fatalf("counters: files=%d funcs=%d", merged.FilesScanned, merged.FuncsScanned)
	}
	if merged.Generation != 7 {
		t.Fatalf("generation = %d, want the partials' max 7", merged.Generation)
	}

	// MaxReports truncates during the global walk, exactly like the
	// single-host merge loop.
	capped, err := MergeScan("synth", paths, ring, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Reports) != 4 || !capped.Truncated {
		t.Fatalf("capped merge: %d reports truncated=%v, want 4/true", len(capped.Reports), capped.Truncated)
	}
	for i, rep := range capped.Reports {
		if rep.File != paths[i] {
			t.Fatalf("capped report %d is for %s, want %s", i, rep.File, paths[i])
		}
	}
}

func TestMergeScanRejectsMalformedPartials(t *testing.T) {
	ring := Ring{Count: 2}
	paths := []string{"a.c", "b.c", "c.c", "d.c"}
	partitions := ring.Partition(paths)

	// A missing partial for a non-empty partition is an error, not a
	// silent hole in the results.
	parts := make([]*api.ScanResponse, 2)
	for s, files := range partitions {
		if len(files) > 0 {
			parts[s] = synthPartial(files)
		}
	}
	for s, files := range partitions {
		if len(files) == 0 {
			continue
		}
		broken := make([]*api.ScanResponse, 2)
		copy(broken, parts)
		broken[s] = nil
		if _, err := MergeScan("synth", paths, ring, broken, 0); err == nil {
			t.Fatal("missing partial not rejected")
		}
		// Wrong cut count means the shard scanned a different file list.
		short := *parts[s]
		short.FileCuts = short.FileCuts[:len(short.FileCuts)-1]
		broken[s] = &short
		if _, err := MergeScan("synth", paths, ring, broken, 0); err == nil {
			t.Fatal("cut-count mismatch not rejected")
		}
		// Cuts overrunning the payload mean the reply was truncated.
		lying := *parts[s]
		lying.Reports = lying.Reports[:len(lying.Reports)-1]
		broken[s] = &lying
		if _, err := MergeScan("synth", paths, ring, broken, 0); err == nil {
			t.Fatal("cut overrun not rejected")
		}
		break
	}
}

// newSynthPeer serves /scan like a shard owner would, via handle; it
// answers with synthPartial over the requested files unless handle
// overrides.
func newSynthPeer(t *testing.T, handle http.HandlerFunc) *httptest.Server {
	t.Helper()
	if handle == nil {
		handle = func(w http.ResponseWriter, r *http.Request) {
			var req api.ScanRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if !req.ShardLocal {
				http.Error(w, "sub-scan missing shard_local", http.StatusBadRequest)
				return
			}
			json.NewEncoder(w).Encode(synthPartial(req.Files))
		}
	}
	ts := httptest.NewServer(handle)
	t.Cleanup(ts.Close)
	return ts
}

func scatterPaths() []string {
	paths := make([]string, 24)
	for i := range paths {
		paths[i] = fmt.Sprintf("net/s%02d.c", i)
	}
	return paths
}

func TestScatterScanMergesRemoteAndLocal(t *testing.T) {
	peer := newSynthPeer(t, nil)
	sc := NewScatter(Config{
		Ring:  Ring{Count: 2},
		Self:  0,
		Peers: []string{"", peer.URL},
	}, Hooks{})
	paths := scatterPaths()
	merged, info, err := sc.Scan(context.Background(), ScanJob{
		Req: api.ScanRequest{Checker: "synth"}, Name: "synth", Paths: paths, Local: synthLocal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 || info.Degraded != 0 || info.Hedged != 0 {
		t.Fatalf("info = %+v, want 2 healthy shards", info)
	}
	for i, rep := range merged.Reports {
		if rep.File != paths[i] {
			t.Fatalf("report %d is for %s, want %s", i, rep.File, paths[i])
		}
	}
	if h := sc.PeerHealth(); !h[0] || !h[1] {
		t.Fatalf("peer health = %v, want all healthy", h)
	}
}

func TestScatterShardFailureFallsBackLocal(t *testing.T) {
	peer := newSynthPeer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shard on fire", http.StatusInternalServerError)
	})
	var degraded, healthFalse int
	sc := NewScatter(Config{
		Ring:  Ring{Count: 2},
		Self:  0,
		Peers: []string{"", peer.URL},
	}, Hooks{
		Degraded: func(s int) { degraded++ },
		PeerHealth: func(s int, healthy bool) {
			if !healthy {
				healthFalse++
			}
		},
	})
	paths := scatterPaths()
	merged, info, err := sc.Scan(context.Background(), ScanJob{
		Req: api.ScanRequest{Checker: "synth"}, Name: "synth", Paths: paths, Local: synthLocal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded != 1 || degraded != 1 {
		t.Fatalf("degraded = %d (hook %d), want 1", info.Degraded, degraded)
	}
	if healthFalse == 0 {
		t.Fatal("PeerHealth hook never reported the failure")
	}
	if h := sc.PeerHealth(); h[1] {
		t.Fatal("failed peer still marked healthy")
	}
	// Degraded, never wrong: the merged result is still complete and in
	// global order.
	if len(merged.Reports) != len(paths) {
		t.Fatalf("degraded merge has %d reports, want %d", len(merged.Reports), len(paths))
	}
	for i, rep := range merged.Reports {
		if rep.File != paths[i] {
			t.Fatalf("degraded report %d is for %s, want %s", i, rep.File, paths[i])
		}
	}
}

func TestScatterHedgeWinsOverStraggler(t *testing.T) {
	release := make(chan struct{})
	peer := newSynthPeer(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for client
		// disconnect (and cancels r.Context()) once the request body has
		// been consumed, and the canceled loser of the hedge race is
		// exactly such a disconnect.
		io.Copy(io.Discard, r.Body)
		select { // a straggler, not a corpse: answers only when released
		case <-release:
		case <-r.Context().Done():
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	})
	// Registered after newSynthPeer so it runs BEFORE ts.Close in LIFO
	// cleanup order — Close waits for the handler, which waits for this.
	t.Cleanup(func() { close(release) })
	var hedges int
	sc := NewScatter(Config{
		Ring:       Ring{Count: 2},
		Self:       0,
		Peers:      []string{"", peer.URL},
		Timeout:    30 * time.Second,
		HedgeAfter: 20 * time.Millisecond,
	}, Hooks{Hedged: func(s int) { hedges++ }})
	paths := scatterPaths()
	merged, info, err := sc.Scan(context.Background(), ScanJob{
		Req: api.ScanRequest{Checker: "synth"}, Name: "synth", Paths: paths, Local: synthLocal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Hedged != 1 || hedges != 1 {
		t.Fatalf("hedged = %d (hook %d), want 1", info.Hedged, hedges)
	}
	// The hedge covered a slow-but-alive shard: not a degraded scatter.
	if info.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0 (remote never failed)", info.Degraded)
	}
	if len(merged.Reports) != len(paths) {
		t.Fatalf("hedged merge has %d reports, want %d", len(merged.Reports), len(paths))
	}
}

func TestFeedPublishSinceAndRetention(t *testing.T) {
	f := NewFeed(3)
	if err := f.Publish(api.FeedEntry{Generation: 0}); err == nil {
		t.Fatal("generation 0 accepted")
	}
	for _, g := range []int64{2, 3, 2, 4} { // duplicate 2 is idempotent
		if err := f.Publish(api.FeedEntry{Generation: g, Changes: []api.Change{{Path: fmt.Sprintf("g%d.c", g), Source: "int x;"}}}); err != nil {
			t.Fatal(err)
		}
	}
	page := f.Since(2)
	if len(page.Entries) != 2 || page.Entries[0].Generation != 3 || page.Entries[1].Generation != 4 {
		t.Fatalf("Since(2) = %+v", page.Entries)
	}
	if page.Latest != 4 {
		t.Fatalf("latest = %d, want 4", page.Latest)
	}
	// Retention: cap 3, publishing 5 evicts the oldest (2).
	if err := f.Publish(api.FeedEntry{Generation: 5}); err != nil {
		t.Fatal(err)
	}
	if page := f.Since(0); len(page.Entries) != 3 || page.Entries[0].Generation != 3 {
		t.Fatalf("after eviction Since(0) = %+v, want generations 3..5", page.Entries)
	}
}

func TestFeedHTTPRoundTrip(t *testing.T) {
	f := NewFeed(0)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	c := NewFeedClient(ts.URL, 0)
	ctx := context.Background()
	for g := int64(2); g <= 4; g++ {
		if err := c.Publish(ctx, api.FeedEntry{Generation: g, Changes: []api.Change{{Path: "a.c", Source: "int x;"}}}); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.Since(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Entries[0].Generation != 3 || page.Latest != 4 {
		t.Fatalf("Since(2) over HTTP = %+v latest=%d", page.Entries, page.Latest)
	}
	if len(page.Entries[0].Changes) != 1 || page.Entries[0].Changes[0].Path != "a.c" {
		t.Fatalf("changes did not survive the round trip: %+v", page.Entries[0].Changes)
	}
}
