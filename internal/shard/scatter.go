package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/api"
	"knighter/internal/obs"
)

// ClientIDHeader propagates the end client's identity on sub-requests,
// so shard-side admission fairness charges the tenant, not the
// coordinator.
const ClientIDHeader = "X-Client-ID"

// Config wires a Scatter: the partition ring, this replica's own shard
// index, the peer base URLs (index-aligned with shards), and the
// per-shard sub-request budget.
type Config struct {
	Ring Ring
	// Self is this replica's shard index; its partition is always
	// scanned locally.
	Self int
	// Peers are the shard base URLs in shard-index order
	// (Peers[Self] names this replica and is never dialed).
	Peers []string
	// Timeout bounds each remote sub-request (default 60s). A shard
	// that does not answer within it is treated as dead for this
	// scatter and its partition falls back to the local snapshot.
	Timeout time.Duration
	// HedgeAfter, when > 0, starts a local-snapshot scan of a remote
	// partition that has been outstanding this long, racing it against
	// the straggler — first success wins, the loser is canceled.
	HedgeAfter time.Duration
	// Client is the HTTP client for sub-requests (default: a bounded
	// transport).
	Client *http.Client
}

// Hooks receives scatter-path observability events; any field may be
// nil.
type Hooks struct {
	// FanoutDone fires once per shard per scatter with the partition's
	// wall time (however it was served).
	FanoutDone func(s int, d time.Duration)
	// Degraded fires when a remote partition fell back to the local
	// snapshot because the shard failed or timed out.
	Degraded func(s int)
	// Hedged fires when a partition's local hedge was started.
	Hedged func(s int)
	// PeerHealth fires whenever a sub-request to shard s completes,
	// with the observed health.
	PeerHealth func(s int, healthy bool)
}

// Local recomputes one partition's sub-responses on the coordinator's
// own pinned snapshot — the fallback and hedge path. For a scan the
// slice has one entry; for a batch, one per checker. Implementations
// must honor ctx cancellation (a hedge that loses the race is
// canceled).
type Local func(ctx context.Context, files []string) ([]*api.ScanResponse, error)

// Scatter fans scan work out across the shard fleet and gathers the
// partials back. One Scatter lives for the daemon's lifetime.
type Scatter struct {
	cfg    Config
	hooks  Hooks
	client *http.Client
	// peerOK[s] is shard s's last-observed health: flipped false when a
	// sub-request to it fails, true again when one succeeds. Self stays
	// true.
	peerOK []atomic.Bool
}

// NewScatter builds a Scatter over cfg.
func NewScatter(cfg Config, hooks Hooks) *Scatter {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	cl := cfg.Client
	if cl == nil {
		cl = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        32,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	sc := &Scatter{cfg: cfg, hooks: hooks, client: cl, peerOK: make([]atomic.Bool, cfg.Ring.Count)}
	for i := range sc.peerOK {
		sc.peerOK[i].Store(true)
	}
	return sc
}

// PeerHealth reports each shard's last-observed health, indexed by
// shard (self is always true).
func (sc *Scatter) PeerHealth() []bool {
	out := make([]bool, len(sc.peerOK))
	for i := range sc.peerOK {
		out[i] = sc.peerOK[i].Load()
	}
	return out
}

// Info summarizes one scatter call.
type Info struct {
	// Shards is the number of non-empty partitions fanned out.
	Shards int
	// Degraded counts partitions that fell back to the local snapshot
	// after their shard failed; Hedged counts local hedges started.
	Degraded int
	Hedged   int
}

// ScanJob is one coordinated /scan: the sub-request template (checker,
// workers, timeout budget, min generation — Files and ShardLocal are
// filled per shard), the compiled checker's display name, the full
// ordered path list, and the local fallback.
type ScanJob struct {
	Req      api.ScanRequest
	Name     string
	Paths    []string
	ClientID string
	Local    Local
}

// Scan scatters job across the fleet and merges the partials into the
// single-host response. MaxReports is applied after the merge (the
// sub-requests run uncapped so no shard under-reports its partition).
func (sc *Scatter) Scan(ctx context.Context, job ScanJob) (*api.ScanResponse, Info, error) {
	remote := func(rctx context.Context, s int, files []string) ([]*api.ScanResponse, error) {
		sub := job.Req
		sub.Files = files
		sub.ShardLocal = true
		sub.MaxReports = 0
		sub.IncludeTiming = false
		var resp api.ScanResponse
		if err := sc.post(rctx, s, "/scan", sub, job.ClientID, &resp); err != nil {
			return nil, err
		}
		return []*api.ScanResponse{&resp}, nil
	}
	parts, info, err := sc.fanout(ctx, job.Paths, remote, job.Local)
	if err != nil {
		return nil, info, err
	}
	flat := make([]*api.ScanResponse, len(parts))
	for s, p := range parts {
		if p != nil {
			flat[s] = p[0]
		}
	}
	merged, err := MergeScan(job.Name, job.Paths, sc.cfg.Ring, flat, job.Req.MaxReports)
	return merged, info, err
}

// BatchJob is one coordinated /batch over the checkers that compiled;
// Names[i] labels Req.Checkers[i] in the merged responses.
type BatchJob struct {
	Req      api.BatchRequest
	Names    []string
	Paths    []string
	ClientID string
	Local    Local
}

// Batch scatters job and merges per-checker: result[i] is what a
// single-host scan of checker i over Paths would have produced.
func (sc *Scatter) Batch(ctx context.Context, job BatchJob) ([]*api.ScanResponse, Info, error) {
	remote := func(rctx context.Context, s int, files []string) ([]*api.ScanResponse, error) {
		sub := job.Req
		sub.Files = files
		sub.ShardLocal = true
		sub.MaxReports = 0
		sub.IncludeTiming = false
		var resp api.BatchResponse
		if err := sc.post(rctx, s, "/batch", sub, job.ClientID, &resp); err != nil {
			return nil, err
		}
		if len(resp.Results) != len(job.Req.Checkers) {
			return nil, fmt.Errorf("shard %d: %d batch entries for %d checkers", s, len(resp.Results), len(job.Req.Checkers))
		}
		for i, r := range resp.Results {
			if r == nil || r.Error != "" {
				return nil, fmt.Errorf("shard %d: batch entry %d failed remotely", s, i)
			}
		}
		return resp.Results, nil
	}
	parts, info, err := sc.fanout(ctx, job.Paths, remote, job.Local)
	if err != nil {
		return nil, info, err
	}
	merged := make([]*api.ScanResponse, len(job.Req.Checkers))
	for i := range job.Req.Checkers {
		flat := make([]*api.ScanResponse, len(parts))
		for s, p := range parts {
			if p != nil {
				flat[s] = p[i]
			}
		}
		m, err := MergeScan(job.Names[i], job.Paths, sc.cfg.Ring, flat, job.Req.MaxReports)
		if err != nil {
			return nil, info, err
		}
		merged[i] = m
	}
	return merged, info, nil
}

// fanout runs every non-empty partition concurrently: self locally,
// remote shards via remote() with timeout, hedging, and local fallback.
// parts is indexed by shard.
func (sc *Scatter) fanout(ctx context.Context, paths []string,
	remote func(ctx context.Context, s int, files []string) ([]*api.ScanResponse, error),
	local Local) ([][]*api.ScanResponse, Info, error) {

	partitions := sc.cfg.Ring.Partition(paths)
	parts := make([][]*api.ScanResponse, len(partitions))
	errs := make([]error, len(partitions))
	var degraded, hedged atomic.Int64
	var info Info
	tr := obs.TraceFrom(ctx)

	var wg sync.WaitGroup
	for s, files := range partitions {
		if len(files) == 0 {
			continue
		}
		info.Shards++
		wg.Add(1)
		go func(s int, files []string) {
			defer wg.Done()
			begin := time.Now()
			// Pre-mint the partition's span id so the sub-request can
			// carry it as X-Span-Id while the span is still open — the
			// shard owner's fragment then attaches under THIS span, not
			// the coordinator's root.
			sid := tr.NewChildSpanID()
			status := ""
			defer func() {
				d := time.Since(begin)
				tr.ObserveWith(sid, fmt.Sprintf("shard_%d", s), status, begin, d, len(files))
				if sc.hooks.FanoutDone != nil {
					sc.hooks.FanoutDone(s, d)
				}
			}()
			if s == sc.cfg.Self || s >= len(sc.cfg.Peers) || sc.cfg.Peers[s] == "" {
				parts[s], errs[s] = local(ctx, files)
				return
			}
			rctx := ctx
			if sid != "" {
				rctx = obs.WithParentSpan(ctx, sid)
			}
			var h, hw, d bool
			parts[s], h, hw, d, errs[s] = sc.runRemote(rctx, s, files, remote, local)
			if h {
				hedged.Add(1)
				if sc.hooks.Hedged != nil {
					sc.hooks.Hedged(s)
				}
			}
			if d {
				status = obs.SpanDegraded
				tr.MarkDegraded()
				degraded.Add(1)
				if sc.hooks.Degraded != nil {
					sc.hooks.Degraded(s)
				}
			} else if hw {
				status = obs.SpanHedgeWin
				tr.MarkHedgeWin()
			}
		}(s, files)
	}
	wg.Wait()
	info.Degraded = int(degraded.Load())
	info.Hedged = int(hedged.Load())
	for _, err := range errs {
		if err != nil {
			return nil, info, err
		}
	}
	return parts, info, nil
}

// runRemote serves one remote partition: the sub-request races an
// optional local hedge; a failed or timed-out sub-request falls back to
// the local snapshot. Returns the partial plus whether a hedge started,
// whether the hedge's result won the race, and whether the partition
// degraded to local because the shard failed.
func (sc *Scatter) runRemote(ctx context.Context, s int, files []string,
	remote func(ctx context.Context, s int, files []string) ([]*api.ScanResponse, error),
	local Local) (part []*api.ScanResponse, hedgeStarted, hedgeWon, degradedToLocal bool, err error) {

	type outcome struct {
		part []*api.ScanResponse
		err  error
	}
	rctx, rcancel := context.WithTimeout(ctx, sc.cfg.Timeout)
	defer rcancel()
	rch := make(chan outcome, 1)
	go func() {
		p, err := remote(rctx, s, files)
		rch <- outcome{p, err}
	}()

	var hch chan outcome
	var hcancel context.CancelFunc
	var hedgeTimer <-chan time.Time
	if sc.cfg.HedgeAfter > 0 {
		hedgeTimer = time.After(sc.cfg.HedgeAfter)
	}
	defer func() {
		if hcancel != nil {
			hcancel()
		}
	}()
	startHedge := func() {
		var hctx context.Context
		hctx, hcancel = context.WithCancel(ctx)
		hch = make(chan outcome, 1)
		hedgeStarted = true
		go func() {
			p, err := local(hctx, files)
			hch <- outcome{p, err}
		}()
	}

	remoteFailed := false
	for {
		select {
		case o := <-rch:
			if o.err == nil {
				sc.peerOK[s].Store(true)
				if sc.hooks.PeerHealth != nil {
					sc.hooks.PeerHealth(s, true)
				}
				return o.part, hedgeStarted, false, false, nil
			}
			sc.peerOK[s].Store(false)
			if sc.hooks.PeerHealth != nil {
				sc.hooks.PeerHealth(s, false)
			}
			remoteFailed = true
			rch = nil
			if hch == nil {
				// No hedge in flight: recompute the partition on the
				// local snapshot now (slower, never wrong).
				p, lerr := local(ctx, files)
				return p, hedgeStarted, false, true, lerr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			startHedge()
		case o := <-hch:
			hch = nil
			if o.err == nil {
				// The hedge won. If the remote had already failed this is
				// a degraded scatter; if it is merely slow, it is not —
				// cancel it and move on.
				rcancel()
				return o.part, hedgeStarted, true, remoteFailed, nil
			}
			if remoteFailed {
				return nil, hedgeStarted, false, true, fmt.Errorf("shard %d: remote and local fallback both failed: %w", s, o.err)
			}
			// Hedge failed but the remote is still in flight; keep
			// waiting on it.
		}
	}
}

// post issues one sub-request to shard s and decodes a 2xx reply into
// out. Any transport error or non-2xx status is a shard failure from
// the scatter's point of view — including a 409 from a shard that
// could not converge to the required generation in time, which the
// local fallback (already at that generation) then covers.
func (sc *Scatter) post(ctx context.Context, s int, path string, body any, clientID string, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sc.cfg.Peers[s]+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHeaders(ctx, req.Header)
	if clientID != "" {
		req.Header.Set(ClientIDHeader, clientID)
	}
	resp, err := sc.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("shard %d: %s %s: %s", s, path, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
