package shard

import (
	"fmt"

	"knighter/internal/api"
	"knighter/internal/store"
)

// MergeScan reassembles per-shard sub-scan replies into the response a
// single-host scan of paths would have produced. parts is indexed by
// shard; parts[s] is shard s's reply over ring.Partition(paths)[s] and
// may be nil only when that partition is empty.
//
// The merge walks paths in the given (global) order, looks up each
// path's owner, and consumes that owner's next file cut — so reports
// come out in exactly the file order a single host would have emitted,
// regardless of which shard computed them. MaxReports truncation is
// applied during the walk, mid-file if necessary, which byte-matches
// the single-host merge loop (counters and runtime errors keep
// accumulating past the cap, exactly as there).
//
// A partial that does not carry one cut per partition file is
// malformed; the caller (the scatter layer) treats that like a shard
// failure and retries the partition locally.
func MergeScan(name string, paths []string, ring Ring, parts []*api.ScanResponse, maxReports int) (*api.ScanResponse, error) {
	type cursor struct{ file, rep, errs int }
	cur := make([]cursor, len(parts))
	counts := ring.Partition(paths)
	for s, p := range parts {
		if len(counts[s]) == 0 {
			continue
		}
		if p == nil {
			return nil, fmt.Errorf("shard %d: no partial for a non-empty partition", s)
		}
		if len(p.FileCuts) != len(counts[s]) {
			return nil, fmt.Errorf("shard %d: %d file cuts for %d files", s, len(p.FileCuts), len(counts[s]))
		}
	}

	out := &api.ScanResponse{Checker: name, Reports: make([]api.Report, 0)}
	for _, path := range paths {
		s := ring.Owner(path)
		p := parts[s]
		c := &cur[s]
		cut := p.FileCuts[c.file]
		if c.rep+cut.Reports > len(p.Reports) || c.errs+cut.RuntimeErrs > len(p.RuntimeErrs) {
			return nil, fmt.Errorf("shard %d: file cuts overrun the partial's payload", s)
		}
		out.RuntimeErrs = append(out.RuntimeErrs, p.RuntimeErrs[c.errs:c.errs+cut.RuntimeErrs]...)
		for _, rep := range p.Reports[c.rep : c.rep+cut.Reports] {
			if maxReports > 0 && len(out.Reports) >= maxReports {
				out.Truncated = true
				break
			}
			out.Reports = append(out.Reports, rep)
		}
		c.file++
		c.rep += cut.Reports
		c.errs += cut.RuntimeErrs
	}

	var hits, misses int64
	for s, p := range parts {
		if p == nil || len(counts[s]) == 0 {
			continue
		}
		out.FilesScanned += p.FilesScanned
		out.FuncsScanned += p.FuncsScanned
		out.TimedOut += p.TimedOut
		out.Canceled = out.Canceled || p.Canceled
		out.Cache.Hits += p.Cache.Hits
		out.Cache.Misses += p.Cache.Misses
		out.Cache.Coalesced += p.Cache.Coalesced
		if p.Generation > out.Generation {
			out.Generation = p.Generation
		}
	}
	hits, misses = int64(out.Cache.Hits), int64(out.Cache.Misses)
	out.Cache.HitRate = store.Stats{Hits: hits, Misses: misses}.HitRate()
	if len(out.RuntimeErrs) == 0 {
		out.RuntimeErrs = nil
	}
	return out, nil
}
