// Package shard implements horizontal scan fan-out for a kserve fleet:
// a hash ring that partitions the corpus by file path across N shard
// owners, a scatter client that fans a scan or batch out to the owners
// as shard-local sub-requests (with per-shard timeouts, hedging against
// the local snapshot, and a local fallback when a shard is dead or
// behind), a deterministic merge that reassembles the partials
// byte-identically to a single-host scan, and a generation-feed client
// that commits changesets fleet-wide through kcached.
//
// The design premise is that every replica parses the FULL corpus —
// sharding shares scan *work*, not memory — which is what makes "any
// replica can coordinate" and "fall back to the local snapshot" cheap:
// a coordinator is never missing the files of a dead shard, it is just
// slower at scanning them.
package shard

import "hash/fnv"

// Ring is the fleet's partition function: file path → owning shard.
// It is pure and stateless, so every replica computes the same
// partition from nothing but -shard-count; no membership protocol or
// rebalancing traffic exists to disagree about.
type Ring struct {
	// Count is the number of shards (>= 1).
	Count int
}

// Owner returns the shard index that owns path.
func (r Ring) Owner(path string) int {
	if r.Count <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	return int(h.Sum64() % uint64(r.Count))
}

// Partition splits paths into per-shard partitions, preserving the
// input order within each partition — the property the merge relies on:
// concatenating the partitions' results in global path order only works
// if each shard scanned its files in that same relative order.
func (r Ring) Partition(paths []string) [][]string {
	parts := make([][]string, max(r.Count, 1))
	for _, p := range paths {
		o := r.Owner(p)
		parts[o] = append(parts[o], p)
	}
	return parts
}
