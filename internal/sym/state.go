package sym

import (
	"fmt"
	"sort"
	"strings"
)

// State is an immutable program state: region bindings, per-symbol
// constraints (nullness, integer ranges), and arbitrary checker-owned
// fact domains (the analog of CSA's REGISTER_MAP_WITH_PROGRAMSTATE).
//
// All mutating operations return a new State; existing States are never
// modified, so States can be freely shared between exploded-graph nodes.
type State struct {
	bindings map[RegionID]Value
	nullness map[SymbolID]Nullness
	ranges   map[SymbolID]Range
	facts    map[factKey]any
}

type factKey struct {
	Domain string
	Key    string
}

// NewState returns the empty initial state.
func NewState() *State {
	return &State{}
}

// clone returns a shallow copy; the caller must replace (not mutate) any
// map it wants to change.
func (s *State) clone() *State {
	c := *s
	return &c
}

func cloneMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BindRegion returns a state where region r holds value v.
func (s *State) BindRegion(r RegionID, v Value) *State {
	if cur, ok := s.bindings[r]; ok && cur == v {
		return s
	}
	c := s.clone()
	c.bindings = cloneMap(s.bindings)
	c.bindings[r] = v
	return c
}

// LookupRegion returns the value bound to region r.
func (s *State) LookupRegion(r RegionID) (Value, bool) {
	v, ok := s.bindings[r]
	return v, ok
}

// Bindings returns the bound regions in ascending order (for invariant
// checks and debug output).
func (s *State) Bindings() []RegionID {
	out := make([]RegionID, 0, len(s.bindings))
	for r := range s.bindings {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WithNullness returns a state where symbol sym has the given nullness.
func (s *State) WithNullness(sym SymbolID, n Nullness) *State {
	if sym == NoSymbol {
		return s
	}
	if cur, ok := s.nullness[sym]; ok && cur == n {
		return s
	}
	c := s.clone()
	c.nullness = cloneMap(s.nullness)
	c.nullness[sym] = n
	return c
}

// NullnessOf returns what is known about v being null on this path.
func (s *State) NullnessOf(v Value) Nullness {
	switch v.Kind {
	case KindInt:
		if v.Int == 0 {
			return IsNull
		}
		return NotNull
	case KindLoc:
		return NotNull
	case KindSymbol:
		if n, ok := s.nullness[v.Sym]; ok {
			return n
		}
		return MaybeNull
	default:
		return MaybeNull
	}
}

// WithRange returns a state constraining symbol sym to r.
func (s *State) WithRange(sym SymbolID, r Range) *State {
	if sym == NoSymbol {
		return s
	}
	if cur, ok := s.ranges[sym]; ok && cur == r {
		return s
	}
	c := s.clone()
	c.ranges = cloneMap(s.ranges)
	c.ranges[sym] = r
	return c
}

// RangeOf returns the interval constraint on v.
func (s *State) RangeOf(v Value) Range {
	switch v.Kind {
	case KindInt:
		return SingletonRange(v.Int)
	case KindSymbol:
		if r, ok := s.ranges[v.Sym]; ok {
			return r
		}
		return FullRange
	default:
		return FullRange
	}
}

// --- checker fact domains ---

// SetFact returns a state where domain[key] = value. Values stored in
// fact domains must be immutable (comparable types recommended).
func (s *State) SetFact(domain, key string, value any) *State {
	fk := factKey{domain, key}
	if cur, ok := s.facts[fk]; ok && cur == value {
		return s
	}
	c := s.clone()
	c.facts = cloneMap(s.facts)
	c.facts[fk] = value
	return c
}

// Fact returns domain[key].
func (s *State) Fact(domain, key string) (any, bool) {
	v, ok := s.facts[factKey{domain, key}]
	return v, ok
}

// DelFact returns a state with domain[key] removed.
func (s *State) DelFact(domain, key string) *State {
	fk := factKey{domain, key}
	if _, ok := s.facts[fk]; !ok {
		return s
	}
	c := s.clone()
	c.facts = cloneMap(s.facts)
	delete(c.facts, fk)
	return c
}

// FactKeys returns the sorted keys present in a domain.
func (s *State) FactKeys(domain string) []string {
	var out []string
	for fk := range s.facts {
		if fk.Domain == domain {
			out = append(out, fk.Key)
		}
	}
	sort.Strings(out)
	return out
}

// --- convenience typed fact helpers for region-keyed domains ---

// RegionKey renders a RegionID as a fact key.
func RegionKey(r RegionID) string { return fmt.Sprintf("r%d", r) }

// SymbolKey renders a SymbolID as a fact key.
func SymbolKey(sy SymbolID) string { return fmt.Sprintf("s%d", sy) }

// SetRegionFact stores a fact keyed by region.
func (s *State) SetRegionFact(domain string, r RegionID, value any) *State {
	return s.SetFact(domain, RegionKey(r), value)
}

// RegionFact loads a fact keyed by region.
func (s *State) RegionFact(domain string, r RegionID) (any, bool) {
	return s.Fact(domain, RegionKey(r))
}

// DelRegionFact removes a fact keyed by region.
func (s *State) DelRegionFact(domain string, r RegionID) *State {
	return s.DelFact(domain, RegionKey(r))
}

// FactRegions returns the RegionIDs keyed in a domain, ascending.
func (s *State) FactRegions(domain string) []RegionID {
	var out []RegionID
	for fk := range s.facts {
		if fk.Domain != domain {
			continue
		}
		var r RegionID
		if _, err := fmt.Sscanf(fk.Key, "r%d", &r); err == nil {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fingerprint returns a canonical string identifying the state's content.
// The engine uses it to deduplicate exploded nodes (same block + same
// fingerprint = already visited).
func (s *State) Fingerprint() string {
	var parts []string
	for r, v := range s.bindings {
		parts = append(parts, fmt.Sprintf("b%d=%s", r, v))
	}
	for sy, n := range s.nullness {
		parts = append(parts, fmt.Sprintf("n%d=%d", sy, n))
	}
	for sy, r := range s.ranges {
		parts = append(parts, fmt.Sprintf("g%d=%d:%d", sy, r.Min, r.Max))
	}
	for fk, v := range s.facts {
		parts = append(parts, fmt.Sprintf("f%s/%s=%v", fk.Domain, fk.Key, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
