package sym

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Min: 0, Max: 63}
	if !r.Contains(0) || !r.Contains(63) || r.Contains(64) || r.Contains(-1) {
		t.Error("Contains broken")
	}
	if r.IsEmpty() || r.IsFull() || r.IsSingleton() {
		t.Error("predicates broken")
	}
	if !SingletonRange(5).IsSingleton() {
		t.Error("singleton broken")
	}
	if !(Range{Min: 3, Max: 2}).IsEmpty() {
		t.Error("empty detection broken")
	}
}

func TestRangeIntersect(t *testing.T) {
	a := Range{Min: 0, Max: 100}
	b := Range{Min: 50, Max: 200}
	got := a.Intersect(b)
	if got.Min != 50 || got.Max != 100 {
		t.Errorf("intersect = %v", got)
	}
	if !a.Intersect(Range{Min: 200, Max: 300}).IsEmpty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestRangeAtMostAtLeast(t *testing.T) {
	r := FullRange.AtMost(63)
	if r.Max != 63 || r.Min != math.MinInt64 {
		t.Errorf("AtMost = %v", r)
	}
	r = r.AtLeast(0)
	if r.Min != 0 || r.Max != 63 {
		t.Errorf("AtLeast = %v", r)
	}
	if r.CanExceed(63) {
		t.Error("constrained range cannot exceed 63")
	}
	if !FullRange.CanExceed(63) {
		t.Error("full range can exceed anything")
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	big := Range{Min: math.MaxInt64 - 1, Max: math.MaxInt64}
	if got := big.Add(big); got.Max != math.MaxInt64 {
		t.Errorf("Add should saturate: %v", got)
	}
	if got := big.Mul(Range{Min: 2, Max: 2}); got.Max != math.MaxInt64 {
		t.Errorf("Mul should saturate: %v", got)
	}
}

func TestMulCanOverflow(t *testing.T) {
	small := Range{Min: 0, Max: 10}
	if small.MulCanOverflow(small, 32) {
		t.Error("10*10 cannot overflow u32")
	}
	unconstrained := FullRange.AtLeast(0)
	if !unconstrained.MulCanOverflow(unconstrained, 32) {
		t.Error("unconstrained product can overflow u32")
	}
	// Exactly at the boundary: 2^16 * 2^16 = 2^32 > u32 max.
	p16 := SingletonRange(1 << 16)
	if !p16.MulCanOverflow(p16, 32) {
		t.Error("2^16 * 2^16 overflows u32")
	}
}

// Property: intersection is commutative, idempotent, and shrinking.
func TestIntersectProperties(t *testing.T) {
	mk := func(a, b int32) Range {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Range{Min: lo, Max: hi}
	}
	f := func(a1, b1, a2, b2 int32) bool {
		r1, r2 := mk(a1, b1), mk(a2, b2)
		i12 := r1.Intersect(r2)
		i21 := r2.Intersect(r1)
		if i12 != i21 {
			return false
		}
		if r1.Intersect(r1) != r1 {
			return false
		}
		if i12.IsEmpty() {
			return true
		}
		// Shrinking: result within both operands.
		return i12.Min >= r1.Min && i12.Max <= r1.Max && i12.Min >= r2.Min && i12.Max <= r2.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Contains is consistent with interval arithmetic for Add on
// moderate values (no saturation in play).
func TestAddContainsProperty(t *testing.T) {
	f := func(a, b, x, y int16) bool {
		r1 := Range{Min: int64(minInt16(a, b)), Max: int64(maxInt16(a, b))}
		r2 := Range{Min: int64(minInt16(x, y)), Max: int64(maxInt16(x, y))}
		sum := r1.Add(r2)
		// Sum of endpoints must be contained.
		return sum.Contains(r1.Min+r2.Min) && sum.Contains(r1.Max+r2.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func minInt16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func maxInt16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}
