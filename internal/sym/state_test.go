package sym

import (
	"testing"
	"testing/quick"

	"knighter/internal/minic"
)

func TestStateImmutability(t *testing.T) {
	s0 := NewState()
	s1 := s0.BindRegion(1, MakeInt(42))
	s2 := s1.BindRegion(1, MakeInt(7))
	s3 := s1.BindRegion(2, MakeSym(5))

	if _, ok := s0.LookupRegion(1); ok {
		t.Error("s0 must not see binding added in s1")
	}
	if v, _ := s1.LookupRegion(1); v.Int != 42 {
		t.Errorf("s1 r1 = %v, want 42", v)
	}
	if v, _ := s2.LookupRegion(1); v.Int != 7 {
		t.Errorf("s2 r1 = %v, want 7", v)
	}
	if v, _ := s3.LookupRegion(1); v.Int != 42 {
		t.Errorf("s3 r1 = %v, want 42 (inherited)", v)
	}
	if v, ok := s3.LookupRegion(2); !ok || v.Sym != 5 {
		t.Errorf("s3 r2 = %v", v)
	}
}

func TestBindSameValueSharesState(t *testing.T) {
	s0 := NewState().BindRegion(1, MakeInt(1))
	s1 := s0.BindRegion(1, MakeInt(1))
	if s0 != s1 {
		t.Error("re-binding the same value should return the same state")
	}
}

func TestNullness(t *testing.T) {
	s := NewState()
	if got := s.NullnessOf(MakeInt(0)); got != IsNull {
		t.Errorf("NullnessOf(0) = %v", got)
	}
	if got := s.NullnessOf(MakeInt(3)); got != NotNull {
		t.Errorf("NullnessOf(3) = %v", got)
	}
	if got := s.NullnessOf(MakeLoc(4)); got != NotNull {
		t.Errorf("NullnessOf(&r4) = %v", got)
	}
	v := MakeSym(9)
	if got := s.NullnessOf(v); got != MaybeNull {
		t.Errorf("unconstrained symbol = %v", got)
	}
	s2 := s.WithNullness(9, NotNull)
	if got := s2.NullnessOf(v); got != NotNull {
		t.Errorf("constrained symbol = %v", got)
	}
	if got := s.NullnessOf(v); got != MaybeNull {
		t.Error("original state must stay unconstrained")
	}
}

func TestRangeConstraints(t *testing.T) {
	s := NewState()
	v := MakeSym(3)
	if !s.RangeOf(v).IsFull() {
		t.Error("unconstrained symbol should have full range")
	}
	s2 := s.WithRange(3, Range{Min: 0, Max: 63})
	r := s2.RangeOf(v)
	if r.Min != 0 || r.Max != 63 {
		t.Errorf("range = %v", r)
	}
	if got := s2.RangeOf(MakeInt(10)); !got.IsSingleton() || got.Min != 10 {
		t.Errorf("concrete range = %v", got)
	}
}

func TestFactsLifecycle(t *testing.T) {
	s := NewState()
	s1 := s.SetFact("NullMap", "r1", false)
	s2 := s1.SetFact("NullMap", "r2", true)
	s3 := s2.DelFact("NullMap", "r1")

	if _, ok := s.Fact("NullMap", "r1"); ok {
		t.Error("base state must not see facts")
	}
	if v, ok := s2.Fact("NullMap", "r1"); !ok || v != false {
		t.Errorf("s2 r1 = %v %v", v, ok)
	}
	if _, ok := s3.Fact("NullMap", "r1"); ok {
		t.Error("s3 must not see deleted fact")
	}
	if keys := s2.FactKeys("NullMap"); len(keys) != 2 || keys[0] != "r1" || keys[1] != "r2" {
		t.Errorf("keys = %v", keys)
	}
	if keys := s3.FactKeys("NullMap"); len(keys) != 1 || keys[0] != "r2" {
		t.Errorf("keys after delete = %v", keys)
	}
}

func TestFactDomainsAreIndependent(t *testing.T) {
	s := NewState().SetFact("A", "k", 1).SetFact("B", "k", 2)
	a, _ := s.Fact("A", "k")
	b, _ := s.Fact("B", "k")
	if a != 1 || b != 2 {
		t.Errorf("a=%v b=%v", a, b)
	}
}

func TestRegionFactHelpers(t *testing.T) {
	s := NewState().SetRegionFact("D", 7, "x").SetRegionFact("D", 3, "y")
	regs := s.FactRegions("D")
	if len(regs) != 2 || regs[0] != 3 || regs[1] != 7 {
		t.Errorf("regions = %v", regs)
	}
	if v, ok := s.RegionFact("D", 7); !ok || v != "x" {
		t.Errorf("fact = %v %v", v, ok)
	}
	s2 := s.DelRegionFact("D", 7)
	if len(s2.FactRegions("D")) != 1 {
		t.Error("delete failed")
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	s1 := NewState().BindRegion(1, MakeInt(1)).SetFact("M", "k", true)
	s2 := NewState().BindRegion(1, MakeInt(2)).SetFact("M", "k", true)
	s3 := NewState().SetFact("M", "k", true).BindRegion(1, MakeInt(1))
	if s1.Fingerprint() == s2.Fingerprint() {
		t.Error("different states must have different fingerprints")
	}
	if s1.Fingerprint() != s3.Fingerprint() {
		t.Error("insertion order must not affect fingerprint")
	}
}

// Property: fingerprints are order-insensitive and Set/Del round-trips
// return to the original fingerprint.
func TestFingerprintProperties(t *testing.T) {
	f := func(keys []uint8, vals []int8) bool {
		if len(keys) > 8 {
			keys = keys[:8]
		}
		s := NewState()
		for i, k := range keys {
			v := int8(0)
			if i < len(vals) {
				v = vals[i]
			}
			s = s.SetRegionFact("P", RegionID(k%16+1), v)
		}
		// Apply in reverse order: same final content, same fingerprint.
		s2 := NewState()
		for i := len(keys) - 1; i >= 0; i-- {
			v := int8(0)
			if i < len(vals) {
				v = vals[i]
			}
			s2 = s2.SetRegionFact("P", RegionID(keys[i]%16+1), v)
		}
		// Note: duplicate keys may overwrite differently depending on
		// order; restrict the property to unique keys.
		seen := map[uint8]bool{}
		for _, k := range keys {
			if seen[k%16] {
				return true // skip non-unique inputs
			}
			seen[k%16] = true
		}
		return s.Fingerprint() == s2.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArenaInterning(t *testing.T) {
	a := NewArena()
	p := minic.Pos{File: "t.c", Line: 1, Col: 1}
	v1 := a.VarRegion("ptr", p)
	v2 := a.VarRegion("ptr", p)
	if v1 != v2 {
		t.Error("var regions must intern")
	}
	f1 := a.FieldRegion(v1, "next", p)
	f2 := a.FieldRegion(v1, "next", p)
	if f1 != f2 {
		t.Error("field regions must intern")
	}
	e1 := a.ElemRegion(v1, 3, p)
	e2 := a.ElemRegion(v1, 3, p)
	e3 := a.ElemRegion(v1, 4, p)
	if e1 != e2 || e1 == e3 {
		t.Errorf("elem interning wrong: %d %d %d", e1, e2, e3)
	}
	s := a.NewSymbol("devm_kzalloc", p)
	r1 := a.SymRegionFor(s, "devm_kzalloc", p)
	r2 := a.SymRegionFor(s, "devm_kzalloc", p)
	if r1 != r2 {
		t.Error("sym regions must intern")
	}
}

func TestArenaHierarchy(t *testing.T) {
	a := NewArena()
	p := minic.Pos{Line: 1, Col: 1}
	base := a.VarRegion("dev", p)
	fld := a.FieldRegion(base, "priv", p)
	elem := a.ElemRegion(fld, -1, p)
	if got := a.Base(elem); got != base {
		t.Errorf("Base = %d, want %d", got, base)
	}
	if !a.IsSubRegionOf(elem, base) {
		t.Error("elem should be subregion of base")
	}
	if !a.IsSubRegionOf(base, base) {
		t.Error("region is subregion of itself")
	}
	other := a.VarRegion("x", p)
	if a.IsSubRegionOf(other, base) {
		t.Error("unrelated region must not be subregion")
	}
}

func TestDescribe(t *testing.T) {
	a := NewArena()
	p := minic.Pos{Line: 1, Col: 1}
	base := a.VarRegion("spi_bus", p)
	fld := a.FieldRegion(base, "spi_int", p)
	elem := a.ElemRegion(fld, 2, p)
	if got := a.Describe(elem); got != "spi_bus->spi_int[2]" {
		t.Errorf("Describe = %q", got)
	}
	s := a.NewSymbol("devm_kzalloc", p)
	sr := a.SymRegionFor(s, "devm_kzalloc", p)
	if got := a.Describe(sr); got != "<devm_kzalloc() result>" {
		t.Errorf("Describe = %q", got)
	}
}

func TestValueBasics(t *testing.T) {
	if !MakeInt(0).IsNullConst() {
		t.Error("0 is the null constant")
	}
	if MakeInt(1).IsNullConst() {
		t.Error("1 is not null")
	}
	if !MakeLoc(3).IsLoc() || !MakeSym(2).IsSymbol() || !Unknown.IsUnknown() {
		t.Error("kind predicates broken")
	}
	if MakeInt(5).String() != "5" || MakeSym(2).String() != "sym2" {
		t.Error("String() broken")
	}
}
