package sym

import (
	"fmt"

	"knighter/internal/minic"
)

// RegionKind discriminates memory regions.
type RegionKind uint8

// Region kinds.
const (
	VarRegion    RegionKind = iota // a named local variable or parameter
	FieldRegion                    // base.field / base->field
	ElemRegion                     // base[index]
	SymRegion                      // the pointee of a symbolic pointer
	GlobalRegion                   // a named global
)

// Region describes one memory region. Regions are interned in an Arena so
// identity comparisons are RegionID comparisons.
type Region struct {
	ID     RegionID
	Kind   RegionKind
	Name   string   // variable/field name (Var/Field/Global)
	Parent RegionID // base region for Field/Elem
	Index  int64    // constant index for Elem (or -1 for unknown)
	Sym    SymbolID // owning symbol for SymRegion
	// ConjuredBy is the callee name whose return value created the
	// region (SymRegion provenance, e.g. "devm_kzalloc").
	ConjuredBy string
	// ArrayLen is the declared element count for fixed arrays (Var/Field
	// regions of array type), 0 if not an array.
	ArrayLen int
	Pos      minic.Pos
}

// Arena interns symbols and regions for one function analysis. It is
// mutable and shared across all paths of a single symbolic execution; all
// path-specific data lives in State.
type Arena struct {
	regions   []*Region
	symbols   []*SymbolInfo
	varIdx    map[string]RegionID
	globalIdx map[string]RegionID
	fieldIdx  map[fieldKey]RegionID
	elemIdx   map[elemKey]RegionID
	symRegIdx map[SymbolID]RegionID
}

// SymbolInfo records provenance for a symbol.
type SymbolInfo struct {
	ID SymbolID
	// ConjuredBy is the callee name for call-return symbols, or
	// "param:<name>" for parameters, or "load" for unknown loads.
	ConjuredBy string
	Pos        minic.Pos
}

type fieldKey struct {
	parent RegionID
	name   string
}

type elemKey struct {
	parent RegionID
	index  int64
}

// NewArena returns an empty arena. RegionID 0 and SymbolID 0 are reserved
// as "none".
func NewArena() *Arena {
	return &Arena{
		regions:   []*Region{{}}, // slot 0 reserved
		symbols:   []*SymbolInfo{{}},
		varIdx:    map[string]RegionID{},
		globalIdx: map[string]RegionID{},
		fieldIdx:  map[fieldKey]RegionID{},
		elemIdx:   map[elemKey]RegionID{},
		symRegIdx: map[SymbolID]RegionID{},
	}
}

// Region returns the region with the given id, or nil for NoRegion.
func (a *Arena) Region(id RegionID) *Region {
	if id <= 0 || int(id) >= len(a.regions) {
		return nil
	}
	return a.regions[id]
}

// Symbol returns the info for a symbol id, or nil.
func (a *Arena) Symbol(id SymbolID) *SymbolInfo {
	if id <= 0 || int(id) >= len(a.symbols) {
		return nil
	}
	return a.symbols[id]
}

// NumRegions returns the number of interned regions.
func (a *Arena) NumRegions() int { return len(a.regions) - 1 }

func (a *Arena) addRegion(r *Region) RegionID {
	r.ID = RegionID(len(a.regions))
	a.regions = append(a.regions, r)
	return r.ID
}

// NewSymbol conjures a fresh symbol with provenance.
func (a *Arena) NewSymbol(conjuredBy string, pos minic.Pos) SymbolID {
	info := &SymbolInfo{ID: SymbolID(len(a.symbols)), ConjuredBy: conjuredBy, Pos: pos}
	a.symbols = append(a.symbols, info)
	return info.ID
}

// VarRegion interns the region for a named local/parameter.
func (a *Arena) VarRegion(name string, pos minic.Pos) RegionID {
	if id, ok := a.varIdx[name]; ok {
		return id
	}
	id := a.addRegion(&Region{Kind: VarRegion, Name: name, Index: -1, Pos: pos})
	a.varIdx[name] = id
	return id
}

// GlobalRegion interns the region for a named global.
func (a *Arena) GlobalRegion(name string, pos minic.Pos) RegionID {
	if id, ok := a.globalIdx[name]; ok {
		return id
	}
	id := a.addRegion(&Region{Kind: GlobalRegion, Name: name, Index: -1, Pos: pos})
	a.globalIdx[name] = id
	return id
}

// FieldRegion interns base.field.
func (a *Arena) FieldRegion(parent RegionID, name string, pos minic.Pos) RegionID {
	k := fieldKey{parent, name}
	if id, ok := a.fieldIdx[k]; ok {
		return id
	}
	id := a.addRegion(&Region{Kind: FieldRegion, Name: name, Parent: parent, Index: -1, Pos: pos})
	a.fieldIdx[k] = id
	return id
}

// ElemRegion interns base[index]; index -1 means "unknown index" and all
// unknown indexes of a base share one region (index-insensitive).
func (a *Arena) ElemRegion(parent RegionID, index int64, pos minic.Pos) RegionID {
	k := elemKey{parent, index}
	if id, ok := a.elemIdx[k]; ok {
		return id
	}
	id := a.addRegion(&Region{Kind: ElemRegion, Parent: parent, Index: index, Pos: pos})
	a.elemIdx[k] = id
	return id
}

// SymRegionFor interns the pointee region of a symbolic pointer.
// conjuredBy records which callee produced the pointer (provenance used
// by checkers, e.g. "devm_kzalloc").
func (a *Arena) SymRegionFor(s SymbolID, conjuredBy string, pos minic.Pos) RegionID {
	if id, ok := a.symRegIdx[s]; ok {
		return id
	}
	id := a.addRegion(&Region{Kind: SymRegion, Sym: s, ConjuredBy: conjuredBy, Index: -1, Pos: pos})
	a.symRegIdx[s] = id
	return id
}

// ExistingSymRegion returns the pointee region already interned for a
// symbol, without creating one.
func (a *Arena) ExistingSymRegion(s SymbolID) (RegionID, bool) {
	id, ok := a.symRegIdx[s]
	return id, ok
}

// SetArrayLen records the declared fixed-array length on a region.
func (a *Arena) SetArrayLen(id RegionID, n int) {
	if r := a.Region(id); r != nil {
		r.ArrayLen = n
	}
}

// Base returns the outermost ancestor region (following Parent links).
func (a *Arena) Base(id RegionID) RegionID {
	for {
		r := a.Region(id)
		if r == nil || r.Parent == NoRegion {
			return id
		}
		id = r.Parent
	}
}

// IsSubRegionOf reports whether id is base itself or derived from base
// via field/element paths.
func (a *Arena) IsSubRegionOf(id, base RegionID) bool {
	for id != NoRegion {
		if id == base {
			return true
		}
		r := a.Region(id)
		if r == nil {
			return false
		}
		id = r.Parent
	}
	return false
}

// Describe renders a human-readable path for the region ("spi_bus",
// "spi_bus->spi_int[2]", "<devm_kzalloc() result>").
func (a *Arena) Describe(id RegionID) string {
	r := a.Region(id)
	if r == nil {
		return "<no region>"
	}
	switch r.Kind {
	case VarRegion, GlobalRegion:
		return r.Name
	case FieldRegion:
		return a.Describe(r.Parent) + "->" + r.Name
	case ElemRegion:
		if r.Index >= 0 {
			return fmt.Sprintf("%s[%d]", a.Describe(r.Parent), r.Index)
		}
		return a.Describe(r.Parent) + "[...]"
	case SymRegion:
		if r.ConjuredBy != "" {
			return fmt.Sprintf("<%s() result>", r.ConjuredBy)
		}
		return fmt.Sprintf("<sym%d pointee>", r.Sym)
	}
	return fmt.Sprintf("<r%d>", id)
}
