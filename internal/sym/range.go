package sym

import (
	"fmt"
	"math"
)

// Range is a closed integer interval [Min, Max] used for lightweight
// value-range constraints (bounds checks, overflow reasoning).
type Range struct {
	Min, Max int64
}

// FullRange is the unconstrained interval.
var FullRange = Range{Min: math.MinInt64, Max: math.MaxInt64}

// SingletonRange returns the interval [v, v].
func SingletonRange(v int64) Range { return Range{Min: v, Max: v} }

// IsEmpty reports whether the interval contains no values (an infeasible
// path constraint).
func (r Range) IsEmpty() bool { return r.Min > r.Max }

// IsFull reports whether the interval is unconstrained.
func (r Range) IsFull() bool { return r == FullRange }

// IsSingleton reports whether the interval contains exactly one value.
func (r Range) IsSingleton() bool { return r.Min == r.Max }

// Contains reports whether v lies in the interval.
func (r Range) Contains(v int64) bool { return r.Min <= v && v <= r.Max }

// Intersect returns the intersection of two intervals.
func (r Range) Intersect(o Range) Range {
	return Range{Min: maxInt64(r.Min, o.Min), Max: minInt64(r.Max, o.Max)}
}

// AtMost returns the interval restricted to values <= v.
func (r Range) AtMost(v int64) Range { return r.Intersect(Range{Min: math.MinInt64, Max: v}) }

// AtLeast returns the interval restricted to values >= v.
func (r Range) AtLeast(v int64) Range { return r.Intersect(Range{Min: v, Max: math.MaxInt64}) }

// CanExceed reports whether some value in the interval is > limit.
func (r Range) CanExceed(limit int64) bool { return r.Max > limit }

// CanBeNegative reports whether some value in the interval is < 0.
func (r Range) CanBeNegative() bool { return r.Min < 0 }

// Add returns the interval sum with saturation on overflow.
func (r Range) Add(o Range) Range {
	return Range{Min: satAdd(r.Min, o.Min), Max: satAdd(r.Max, o.Max)}
}

// Mul returns the interval product with saturation, assuming non-negative
// operands widen toward +inf (sufficient for size arithmetic).
func (r Range) Mul(o Range) Range {
	candidates := []int64{
		satMul(r.Min, o.Min), satMul(r.Min, o.Max),
		satMul(r.Max, o.Min), satMul(r.Max, o.Max),
	}
	out := Range{Min: candidates[0], Max: candidates[0]}
	for _, c := range candidates[1:] {
		out.Min = minInt64(out.Min, c)
		out.Max = maxInt64(out.Max, c)
	}
	return out
}

// MulCanOverflow reports whether the product of two intervals can exceed
// the given unsigned bit-width (e.g. 32 for a u32 size computation).
func (r Range) MulCanOverflow(o Range, bits uint) bool {
	if bits >= 63 {
		bits = 62
	}
	limit := int64(1)<<bits - 1
	return r.Mul(o).CanExceed(limit)
}

func (r Range) String() string {
	lo := "-inf"
	if r.Min != math.MinInt64 {
		lo = fmt.Sprintf("%d", r.Min)
	}
	hi := "+inf"
	if r.Max != math.MaxInt64 {
		hi = fmt.Sprintf("%d", r.Max)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s > 0 {
		return math.MinInt64
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}
