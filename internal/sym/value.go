// Package sym provides the symbolic-value layer of the analyzer: symbols,
// memory regions, integer ranges, and the immutable ProgramState that
// path-sensitive execution threads through the exploded graph.
//
// It is the reproduction's analog of the Clang Static Analyzer's SVal /
// MemRegion / ProgramState machinery (paper §2.1).
package sym

import "fmt"

// SymbolID identifies a symbolic value conjured during analysis (a
// function parameter, an unknown load, or a call's return value).
type SymbolID int32

// NoSymbol is the zero SymbolID, used when a Value carries no symbol.
const NoSymbol SymbolID = 0

// RegionID identifies a memory region in the Arena.
type RegionID int32

// NoRegion is the zero RegionID, used when a Value carries no region.
const NoRegion RegionID = 0

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	KindUnknown ValueKind = iota // nothing is known
	KindInt                      // concrete integer
	KindSymbol                   // opaque symbolic value
	KindLoc                      // address of a region (a non-null pointer)
)

// Value is an abstract value: a concrete integer, a symbol, the address
// of a region, or unknown. The zero Value is Unknown.
type Value struct {
	Kind ValueKind
	Int  int64
	Sym  SymbolID
	Reg  RegionID
}

// Unknown is the unknown value.
var Unknown = Value{Kind: KindUnknown}

// MakeInt returns a concrete integer value.
func MakeInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// MakeSym returns a symbolic value.
func MakeSym(s SymbolID) Value { return Value{Kind: KindSymbol, Sym: s} }

// MakeLoc returns the address of region r (a definitely-non-null pointer).
func MakeLoc(r RegionID) Value { return Value{Kind: KindLoc, Reg: r} }

// IsUnknown reports whether v carries no information.
func (v Value) IsUnknown() bool { return v.Kind == KindUnknown }

// IsConcreteInt reports whether v is a concrete integer.
func (v Value) IsConcreteInt() bool { return v.Kind == KindInt }

// IsNullConst reports whether v is the concrete integer 0 (the NULL
// pointer constant in C).
func (v Value) IsNullConst() bool { return v.Kind == KindInt && v.Int == 0 }

// IsSymbol reports whether v is a pure symbol.
func (v Value) IsSymbol() bool { return v.Kind == KindSymbol }

// IsLoc reports whether v is the address of a region.
func (v Value) IsLoc() bool { return v.Kind == KindLoc }

// Equal reports structural equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindSymbol:
		return fmt.Sprintf("sym%d", v.Sym)
	case KindLoc:
		return fmt.Sprintf("&r%d", v.Reg)
	default:
		return "unknown"
	}
}

// Nullness is the tri-state null constraint on a pointer-valued symbol.
type Nullness uint8

// Nullness states.
const (
	MaybeNull Nullness = iota // unconstrained
	NotNull                   // proven non-null on this path
	IsNull                    // proven null on this path
)

func (n Nullness) String() string {
	switch n {
	case NotNull:
		return "non-null"
	case IsNull:
		return "null"
	default:
		return "maybe-null"
	}
}
