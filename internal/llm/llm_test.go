package llm

import (
	"strings"
	"testing"

	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/vcs"
)

func TestReadPatchRecognizesEveryBenchmarkCommit(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	wantKind := map[string]FixKind{
		kernel.ClassNPD:         FixAddNullCheck,
		kernel.ClassIntOver:     FixAddBoundBeforeMulAlloc,
		kernel.ClassOOB:         FixAddIndexBound,
		kernel.ClassBufOver:     FixClampUserCopy,
		kernel.ClassMemLeak:     FixFreeOnErrorPath,
		kernel.ClassUAF:         FixMoveFreeLater,
		kernel.ClassDoubleFree:  FixClearOrDropDupFree,
		kernel.ClassUBI:         FixInitCleanupPtr,
		kernel.ClassConcurrency: FixAddUnlockOnPath,
	}
	for _, c := range store.All() {
		facts := ReadPatch(c)
		if facts.Kind == FixUnknown {
			t.Errorf("%s/%s: patch reading failed", c.Class, c.Flavor)
			continue
		}
		if want, ok := wantKind[c.Class]; ok && facts.Kind != want {
			t.Errorf("%s/%s: kind = %v, want %v", c.Class, c.Flavor, facts.Kind, want)
		}
		if c.Class == kernel.ClassMisuse {
			if facts.Kind != FixTerminateBuffer && facts.Kind != FixCheckSign {
				t.Errorf("Misuse/%s: kind = %v", c.Flavor, facts.Kind)
			}
		}
		// The inferred class must match the dataset label.
		if got := facts.Kind.ClassOf(); got != c.Class {
			t.Errorf("%s/%s: inferred class %q", c.Class, c.Flavor, got)
		}
	}
}

func TestReadPatchAnchorsMatchFlavors(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	for _, c := range store.All() {
		facts := ReadPatch(c)
		switch c.Class {
		case kernel.ClassNPD, kernel.ClassIntOver, kernel.ClassOOB,
			kernel.ClassUAF, kernel.ClassDoubleFree, kernel.ClassConcurrency:
			if facts.Anchor != c.Flavor {
				t.Errorf("%s/%s: anchor = %q", c.Class, c.Flavor, facts.Anchor)
			}
		case kernel.ClassMemLeak:
			if facts.Anchor != c.Flavor || facts.Release != "kfree" {
				t.Errorf("MemLeak/%s: anchor=%q release=%q", c.Flavor, facts.Anchor, facts.Release)
			}
		}
	}
}

func TestReadPatchDeriveDetection(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := store.ByClass(kernel.ClassUAF)[0] // free_netdev flavor
	facts := ReadPatch(c)
	if facts.Derive != "netdev_priv" {
		t.Errorf("derive = %q, want netdev_priv", facts.Derive)
	}
	// Plain ordering UAF has no derive relation.
	c2 := store.ByClass(kernel.ClassUAF)[2] // kfree flavor
	if facts2 := ReadPatch(c2); facts2.Derive != "" {
		t.Errorf("kfree UAF derive = %q, want empty", facts2.Derive)
	}
}

func TestOracleDeterminism(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := store.All()[0]
	o1 := NewOracle(O3Mini)
	o2 := NewOracle(O3Mini)
	for iter := 1; iter <= 3; iter++ {
		pa1, _ := o1.AnalyzePattern(c, iter)
		pa2, _ := o2.AnalyzePattern(c, iter)
		if pa1.Text != pa2.Text || pa1.Accurate != pa2.Accurate {
			t.Fatalf("pattern analysis not deterministic at iter %d", iter)
		}
		pl1, _ := o1.SynthesizePlan(c, pa1, iter)
		pl2, _ := o2.SynthesizePlan(c, pa2, iter)
		t1, _ := o1.ImplementChecker(c, pa1, pl1, iter)
		t2, _ := o2.ImplementChecker(c, pa2, pl2, iter)
		if t1 != t2 {
			t.Fatalf("implementation not deterministic at iter %d", iter)
		}
	}
}

func TestCorruptSyntaxAlwaysBreaksParse(t *testing.T) {
	spec := `checker x {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`
	for _, v := range []float64{0.1, 0.3, 0.6, 0.9} {
		broken := corruptSyntax(spec, v)
		if broken == spec {
			t.Fatalf("corruptSyntax(%v) did not change the text", v)
		}
		if _, err := ckdsl.Parse(broken); err == nil {
			t.Errorf("corruptSyntax(%v) output still parses:\n%s", v, broken)
		}
	}
	// Variant fallback: a spec without "source {" or "yields" still breaks.
	lockSpec := `checker y {
  bugtype "Concurrency"
  sink { end-of-function holding locked }
}
`
	// Registration would fail, but parsing succeeds; corruption must
	// break the parse regardless of which variant is drawn.
	for _, v := range []float64{0.1, 0.9} {
		broken := corruptSyntax(lockSpec, v)
		if _, err := ckdsl.Parse(broken); err == nil {
			t.Errorf("fallback corruption (%v) still parses:\n%s", v, broken)
		}
	}
}

func TestIncapableCommitNeverYieldsWorkingChecker(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	var target = findCommit(t, store.All(), "NPD", "kstrdup") // destiny: incapable
	o := NewOracle(O3Mini)
	for iter := 1; iter <= 10; iter++ {
		pa, _ := o.AnalyzePattern(target, iter)
		plan, _ := o.SynthesizePlan(target, pa, iter)
		text, _ := o.ImplementChecker(target, pa, plan, iter)
		ck, err := ckdsl.CompileSource(text)
		if err != nil {
			continue // broken output is fine for an incapable commit
		}
		// If it compiles, it must not track the true anchor (the model
		// misunderstood the patch).
		spec := ck.Spec()
		for _, src := range spec.Sources {
			if src.Callee == "kstrdup" {
				t.Fatalf("iter %d: incapable commit produced correctly-anchored checker", iter)
			}
		}
	}
}

func TestRepairFixesFixableSyntax(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	o := NewOracle(O3Mini)
	fixedOnce := false
	for _, c := range store.All() {
		for iter := 1; iter <= 10; iter++ {
			pa, _ := o.AnalyzePattern(c, iter)
			plan, _ := o.SynthesizePlan(c, pa, iter)
			sh := o.shapeFor(c, pa, plan, iter)
			if !sh.syntax || sh.syntaxUnfixable {
				continue
			}
			text, _ := o.ImplementChecker(c, pa, plan, iter)
			if _, err := ckdsl.Parse(text); err == nil {
				t.Fatalf("syntax-shaped attempt parsed: %s/%s iter %d", c.Class, c.Flavor, iter)
			}
			// Fixable errors must be repaired within the 5-attempt budget
			// with overwhelming probability; require one success.
			for attempt := 1; attempt <= 5; attempt++ {
				repaired, _ := o.RepairChecker(c, iter, attempt, text, "syntax error")
				if _, err := ckdsl.Parse(repaired); err == nil {
					fixedOnce = true
					break
				}
			}
		}
		if fixedOnce {
			break
		}
	}
	if !fixedOnce {
		t.Fatal("no fixable syntax error was ever repaired")
	}
}

func TestRefineRepertoire(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	o := NewOracle(O3Mini)
	npd := findCommit(t, store.All(), "NPD", "kzalloc")
	base := &ckdsl.Spec{
		Name:        "t",
		BugTypeName: "Null-Pointer-Dereference",
		TrackAlias:  true,
		Sources:     []ckdsl.SourceRule{{Kind: ckdsl.SrcCallYields, Callee: "kzalloc", Yields: "nullable"}},
		Guards:      []ckdsl.GuardRule{{Kind: ckdsl.GuardNullCheck}},
		Sinks:       []ckdsl.SinkRule{{Kind: ckdsl.SinkDerefUnchecked}},
	}

	// unlikely() FP source -> unwrap added.
	out, _ := o.RefineChecker(npd, base, []string{"if (unlikely(!p))\n\treturn -ENOMEM;"}, 0)
	if len(out.Unwrap) == 0 {
		t.Error("unwrap not added for unlikely() FP")
	}
	// WARN_ON FP source -> outside the repertoire, unchanged.
	out, _ = o.RefineChecker(npd, base, []string{"if (WARN_ON(!p))\n\treturn -ENOMEM;"}, 0)
	if out.String() != base.String() {
		t.Error("WARN_ON FP should be unrefinable")
	}
	// __free FP -> assign guard added for uninit checkers.
	ubi := &ckdsl.Spec{
		Name: "u", BugTypeName: "Use-Before-Initialization",
		Sources: []ckdsl.SourceRule{{Kind: ckdsl.SrcDeclUninit, CleanupOnly: true}},
		Sinks:   []ckdsl.SinkRule{{Kind: ckdsl.SinkEndUninitCleanup}},
	}
	out, _ = o.RefineChecker(npd, ubi, []string{"struct c *p __free(kfree);\np = kzalloc(8, GFP_KERNEL);"}, 0)
	found := false
	for _, g := range out.Guards {
		if g.Kind == ckdsl.GuardAssignInit {
			found = true
		}
	}
	if !found {
		t.Error("assign guard not added for __free FP")
	}
	// Free-then-realloc FP -> alias tracking for freed-state checkers.
	uaf := &ckdsl.Spec{
		Name: "f", BugTypeName: "Use-After-Free",
		Sources: []ckdsl.SourceRule{{Kind: ckdsl.SrcCallFrees, Callee: "kfree"}},
		Sinks:   []ckdsl.SinkRule{{Kind: ckdsl.SinkDerefFreed}},
	}
	out, _ = o.RefineChecker(npd, uaf, []string{"kfree(dev->base);\ndev->base = kmalloc(64, GFP_KERNEL);"}, 0)
	if !out.TrackAlias {
		t.Error("alias tracking not added for free-reassign FP")
	}
}

func TestUsageAccounting(t *testing.T) {
	var u Usage
	u.Add(Usage{InputTokens: 1000, OutputTokens: 500, Calls: 1})
	u.Add(Usage{InputTokens: 2000, OutputTokens: 100, Calls: 2})
	if u.InputTokens != 3000 || u.OutputTokens != 600 || u.Calls != 3 {
		t.Errorf("usage = %+v", u)
	}
	cost := u.CostUSD(1.0, 10.0)
	want := 3000.0/1e6*1.0 + 600.0/1e6*10.0
	if cost < want-1e-9 || cost > want+1e-9 {
		t.Errorf("cost = %v, want %v", cost, want)
	}
	if EstimateTokens("abcdefgh") != 2 {
		t.Errorf("EstimateTokens = %d", EstimateTokens("abcdefgh"))
	}
}

func TestPromptsContainPaperSections(t *testing.T) {
	store := kernel.BuildHandCommits(11)
	c := store.All()[0]
	p := PatternPrompt(c, false)
	for _, want := range []string{"bug pattern", "# Target Patch", "Commit message", "Diff"} {
		if !strings.Contains(p, want) {
			t.Errorf("pattern prompt missing %q", want)
		}
	}
	if !strings.Contains(PlanPrompt(c, "x", false), "Utility Functions") {
		t.Error("plan prompt missing utility functions")
	}
	if !strings.Contains(TriagePrompt("p", "t", "r"), "TP (matches the target bug pattern") {
		t.Error("triage prompt missing classification instructions")
	}
	// RAG prompts are substantially longer (the token-cost mechanism).
	if len(PatternPrompt(c, true)) <= len(p) {
		t.Error("RAG prompt should be longer")
	}
}

func TestRollProperties(t *testing.T) {
	// Trailing-part variation must change the draw (the FNV-avalanche
	// regression that once froze per-iteration rolls).
	seen := map[bool]int{}
	for i := 0; i < 200; i++ {
		v := roll("a", "b", string(rune('0'+i%10)), itoa(i))
		if v < 0 || v >= 1 {
			t.Fatalf("roll out of range: %v", v)
		}
		seen[v < 0.5]++
	}
	if seen[true] < 50 || seen[false] < 50 {
		t.Errorf("roll badly skewed: %v", seen)
	}
	if roll("x") != roll("x") {
		t.Error("roll not deterministic")
	}
	if roll("x", "y") == roll("xy") {
		t.Error("part boundaries must matter")
	}
}

func itoa(n int) string {
	return string(rune('a' + n%26))
}

func findCommit(t *testing.T, all []*vcs.Commit, class, flavor string) *vcs.Commit {
	t.Helper()
	for _, c := range all {
		if c.Class == class && c.Flavor == flavor {
			return c
		}
	}
	t.Fatalf("commit %s/%s not found", class, flavor)
	return nil
}
