package llm

import (
	"fmt"
	"strings"

	"knighter/internal/ckdsl"
	"knighter/internal/vcs"
)

// attemptDefect classifies the semantic layer of one generation attempt.
type attemptDefect int

const (
	defectNone         attemptDefect = iota
	defectRuntime                    // hallucinated API usage that crashes at analysis time
	defectWrongCallee                // compiles, tracks the wrong function (misses both sides)
	defectMissingGuard               // compiles, flags buggy AND patched (guard unrecognized)
)

// attemptShape is the full defect profile of one attempt: a semantic
// layer (is the checker's logic right?) and an independent syntax
// overlay (did the emission also break the grammar?). Keeping the layers
// independent means a repaired syntax error still leaves a semantically
// wrong checker wrong — repair fixes compilation, not understanding.
type attemptShape struct {
	semantic        attemptDefect
	syntax          bool
	syntaxUnfixable bool
}

// shapeFor decides, deterministically, what this iteration produces.
func (o *Oracle) shapeFor(c *vcs.Commit, pa *PatternAnalysis, plan *Plan, iter int) attemptShape {
	var sh attemptShape
	if o.capable(c) && pa.Accurate && plan.Accurate && o.succeedsAt(c, iter) {
		sh.semantic = defectNone
	} else {
		v := roll(o.key("defect", c.ID, fmt.Sprint(iter))...)
		switch {
		case v < o.Profile.APIHallucinationRate:
			sh.semantic = defectRuntime
		case flagBothCapable(pa.Facts.Kind) &&
			rollBelow(0.2, o.key("semkind", c.ID, fmt.Sprint(iter))...):
			// Semantic failures are mostly wrong-callee (misses both
			// versions, 173/207 in §5.1), sometimes missing-guard
			// (flags both, 34/207) where the pattern admits it.
			sh.semantic = defectMissingGuard
		default:
			sh.semantic = defectWrongCallee
		}
	}
	syntaxRate := o.Profile.SyntaxErrorRate
	if o.SingleStage {
		// Without a plan, the model free-writes more broken checkers.
		syntaxRate = minF(0.95, syntaxRate*1.9)
	}
	sh.syntax = rollBelow(syntaxRate, o.key("syntax", c.ID, fmt.Sprint(iter))...)
	if sh.syntax {
		sh.syntaxUnfixable = rollBelow(o.Profile.UnfixableRate, o.key("unfixable", c.ID, fmt.Sprint(iter))...)
	}
	return sh
}

// flagBothCapable reports whether dropping the guard makes the checker
// flag both the buggy and the patched version (rather than accidentally
// staying valid through engine-level reasoning).
func flagBothCapable(k FixKind) bool {
	switch k {
	case FixAddNullCheck, FixTerminateBuffer, FixAddUnlockOnPath:
		return true
	}
	return false
}

// kindHasArgRules reports whether the pattern's DSL program contains an
// "arg N" clause a hallucinated index could corrupt.
func kindHasArgRules(k FixKind) bool {
	switch k {
	case FixMoveFreeLater, FixClearOrDropDupFree, FixFreeOnErrorPath,
		FixAddUnlockOnPath, FixTerminateBuffer, FixCheckSign, FixClampUserCopy,
		FixAddBoundBeforeMulAlloc:
		return true
	}
	return false
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ImplementChecker implements Model: it renders the DSL program for this
// iteration, applying the attempt's defects.
func (o *Oracle) ImplementChecker(c *vcs.Commit, pa *PatternAnalysis, plan *Plan, iter int) (string, Usage) {
	prompt := ImplementPrompt(c, plan.Text())
	text := o.attemptText(c, pa, plan, iter, true)
	return text, Usage{InputTokens: EstimateTokens(prompt), OutputTokens: EstimateTokens(text), Calls: 1}
}

// attemptText renders the attempt's checker text; withSyntaxDefect
// controls whether the syntax overlay is materialized (the repair agent
// regenerates without it).
func (o *Oracle) attemptText(c *vcs.Commit, pa *PatternAnalysis, plan *Plan, iter int, withSyntaxDefect bool) string {
	sh := o.shapeFor(c, pa, plan, iter)
	facts := pa.Facts
	if sh.semantic == defectRuntime && !kindHasArgRules(facts.Kind) {
		// A hallucinated argument index has nowhere to land in this
		// pattern shape; the hallucination manifests as a wrong callee
		// instead.
		sh.semantic = defectWrongCallee
	}
	if sh.semantic == defectWrongCallee {
		facts.Anchor = wrongCallee(facts.Anchor)
		if facts.Consumer != "" {
			facts.Consumer = wrongCallee(facts.Consumer)
		}
		if facts.Release != "" {
			facts.Release = wrongCallee(facts.Release)
		}
		if facts.Derive != "" {
			facts.Derive = wrongCallee(facts.Derive)
		}
	}
	spec := o.specForFacts(c, facts, iter, sh.semantic)
	text := spec.String()
	if sh.semantic == defectRuntime {
		// Hallucinated argument index: compiles, crashes during analysis.
		text = strings.Replace(text, "arg 0", "arg 7", 1)
	}
	if sh.syntax && withSyntaxDefect {
		text = corruptSyntax(text, roll(o.key("corrupt", c.ID, fmt.Sprint(iter))...))
	}
	return text
}

// specForFacts builds the checker spec the model writes for the given
// facts. Optional robustness features are included only with
// EnhancementRate probability — first valid checkers are usually naive,
// and the refinement loop is what hardens them (paper §3.2).
func (o *Oracle) specForFacts(c *vcs.Commit, f DiffFacts, iter int, defect attemptDefect) *ckdsl.Spec {
	dropGuards := defect == defectMissingGuard
	enhanced := func(which string) bool {
		return rollBelow(o.Profile.EnhancementRate, o.key("enh", which, c.ID, fmt.Sprint(iter))...)
	}
	name := checkerName(c, f)
	spec := &ckdsl.Spec{
		Name:        name,
		BugTypeName: bugTypeFor(f.Kind),
		Description: fmt.Sprintf("synthesized from commit %s (%s)", c.ID, f.Kind),
	}
	switch f.Kind {
	case FixAddNullCheck:
		spec.TrackAlias = true
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallYields, Callee: f.Anchor, Yields: "nullable"})
		if !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardNullCheck})
		}
		if enhanced("unwrap") {
			spec.Unwrap = []string{"unlikely", "likely"}
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkDerefUnchecked,
			Message: fmt.Sprintf("%s() may return NULL and is dereferenced without a check", f.Anchor)})
	case FixMoveFreeLater:
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallFrees, Callee: f.Anchor, Arg: 0})
		if f.Derive != "" {
			spec.TrackAlias = true // derived-object tracking requires value identity
			spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallDerives, Callee: f.Derive, Arg: 0})
		} else if enhanced("alias") {
			spec.TrackAlias = true
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkDerefFreed,
			Message: fmt.Sprintf("object used after %s()", f.Anchor)})
	case FixClearOrDropDupFree:
		// The few-shot example set includes a double-free checker with
		// an alias map (commit 4575962aeed6, §4), so double-free
		// checkers come out alias-tracking from the start.
		spec.TrackAlias = true
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallFrees, Callee: f.Anchor, Arg: 0})
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkCallArgFreed, Callee: f.Anchor, Arg: 0,
			Message: fmt.Sprintf("double %s() of the same object", f.Anchor)})
	case FixFreeOnErrorPath:
		spec.TrackAlias = true
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallYields, Callee: f.Anchor, Yields: "alloc"})
		if !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardCallReleases, Callee: f.Release, Arg: 0})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkEndHeld, Holding: "alloc",
			Message: fmt.Sprintf("memory from %s() leaked on this path", f.Anchor)})
	case FixInitCleanupPtr:
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcDeclUninit, CleanupOnly: true})
		if defect == defectWrongCallee {
			// The classic misunderstanding: checking for reads of the
			// uninitialized variable instead of the cleanup-at-return
			// hazard. With the assignment guard this finds nothing in
			// either version (reads all happen after assignment).
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardAssignInit})
			spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkUseUninit,
				Message: "variable may be used uninitialized"})
		} else {
			if enhanced("assign-guard") && !dropGuards {
				spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardAssignInit})
			}
			spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkEndUninitCleanup,
				Message: "cleanup handler may run on an uninitialized pointer"})
		}
	case FixAddUnlockOnPath:
		spec.Sources = append(spec.Sources,
			ckdsl.SourceRule{Kind: ckdsl.SrcCallLocks, Callee: f.Anchor, Arg: 0})
		if !dropGuards {
			// The missing-guard failure mode here is forgetting to model
			// the releasing call, which makes the checker flag both the
			// buggy and the patched version.
			spec.Sources = append(spec.Sources,
				ckdsl.SourceRule{Kind: ckdsl.SrcCallUnlocks, Callee: f.Release, Arg: 0})
		}
		spec.Sinks = append(spec.Sinks,
			ckdsl.SinkRule{Kind: ckdsl.SinkEndHeld, Holding: "locked",
				Message: fmt.Sprintf("return without releasing the lock taken by %s()", f.Anchor)},
			ckdsl.SinkRule{Kind: ckdsl.SinkCallArgLocked, Callee: f.Anchor, Arg: 0,
				Message: "lock acquired twice"})
	case FixClampUserCopy:
		if enhanced("boundcheck") {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardBoundCheck})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkCopyOverflow,
			Callee: f.Anchor, SizeArg: 2, BufArg: 0, Slack: 1,
			Message: "copy_from_user() may overflow the destination buffer"})
	case FixAddBoundBeforeMulAlloc:
		if enhanced("boundcheck") && !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardBoundCheck})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkMulOverflow,
			Callee: f.Anchor, Arg: 0, Bits: 32,
			Message: fmt.Sprintf("size multiplication for %s() may overflow", f.Anchor)})
	case FixAddIndexBound:
		spec.TrackAlias = true
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallYields, Callee: f.Anchor, Yields: "taint"})
		if !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardBoundCheck})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkIndexTainted,
			Message: fmt.Sprintf("index from %s() used without a bounds check", f.Anchor)})
	case FixTerminateBuffer:
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallWrites, Callee: f.Anchor, Arg: 0})
		if !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardTerminate})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkCallArgUnterminated,
			Callee: f.Consumer, Arg: 0,
			Message: fmt.Sprintf("%s() on a buffer that may lack NUL termination", f.Consumer)})
	case FixCheckSign:
		// Recognizing helper-function bounds as sign guards is a subtle
		// piece of checker logic; first drafts almost never have it.
		if enhanced("sign-boundcheck") && enhanced("sign-boundcheck-2") && !dropGuards {
			spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardBoundCheck})
		}
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkCallArgNegative,
			Callee: f.Consumer, Arg: 0,
			Message: fmt.Sprintf("%s() result may be negative when passed to %s()", f.Anchor, f.Consumer)})
	default:
		// Confused analysis: emit a generic checker that compiles but
		// cannot match anything in the patch.
		spec.TrackAlias = true
		spec.Sources = append(spec.Sources, ckdsl.SourceRule{Kind: ckdsl.SrcCallYields, Callee: orUnknown(f.Anchor), Yields: "nullable"})
		spec.Guards = append(spec.Guards, ckdsl.GuardRule{Kind: ckdsl.GuardNullCheck})
		spec.Sinks = append(spec.Sinks, ckdsl.SinkRule{Kind: ckdsl.SinkDerefUnchecked, Message: "possible invalid use"})
	}
	return spec
}

func bugTypeFor(k FixKind) string {
	switch k.ClassOf() {
	case "NPD":
		return "Null-Pointer-Dereference"
	case "UBI":
		return "Use-Before-Initialization"
	case "Unknown":
		return "Null-Pointer-Dereference"
	default:
		return k.ClassOf()
	}
}

func checkerName(c *vcs.Commit, f DiffFacts) string {
	base := strings.ToLower(strings.ReplaceAll(f.Kind.ClassOf(), "-", "_"))
	anchor := strings.ReplaceAll(orUnknown(f.Anchor), "<unknown>", "unknown")
	return fmt.Sprintf("%s_%s_%s", base, anchor, c.ID[:6])
}

// corruptSyntax injects a realistic parse-breaking mistake. The chosen
// corruption always breaks the parse: variants that do not apply to this
// particular program fall back to dropping the closing brace.
func corruptSyntax(text string, v float64) string {
	out := text
	switch {
	case v < 0.25:
		out = strings.Replace(text, "source {", "sourze {", 1)
	case v < 0.5:
		out = strings.Replace(text, "sink {", "sink { emit-on", 1)
	case v < 0.75:
		out = text // fall through to brace drop
	default:
		out = strings.Replace(text, "yields", "yeilds", 1)
	}
	if out == text {
		if i := strings.LastIndex(text, "}"); i >= 0 {
			out = text[:i] + text[i+1:]
		}
	}
	return out
}

// RepairChecker implements Model: given the compiler error, the repair
// agent re-emits the checker; with probability RepairSkill a fixable
// syntax defect is gone (semantic defects survive — repair fixes
// compilation, not understanding, mirroring §3.1.3). Unfixable syntax
// defects come back corrupted no matter how many rounds are granted.
func (o *Oracle) RepairChecker(c *vcs.Commit, iter, attempt int, dsl, compileErr string) (string, Usage) {
	prompt := RepairPrompt(dsl, compileErr)
	pa, _ := o.AnalyzePattern(c, iter)
	plan, _ := o.SynthesizePlan(c, pa, iter)
	sh := o.shapeFor(c, pa, plan, iter)
	var text string
	fixed := !sh.syntaxUnfixable &&
		rollBelow(o.Profile.RepairSkill, o.key("repair", c.ID, fmt.Sprint(iter), fmt.Sprint(attempt))...)
	if fixed {
		text = o.attemptText(c, pa, plan, iter, false) // regenerated without the syntax corruption
	} else {
		// Unsuccessful repair: a different corruption of the same program.
		text = corruptSyntax(o.attemptText(c, pa, plan, iter, false),
			roll(o.key("recorrupt", c.ID, fmt.Sprint(iter), fmt.Sprint(attempt))...))
	}
	return text, Usage{InputTokens: EstimateTokens(prompt), OutputTokens: EstimateTokens(text), Calls: 1}
}

// RefineChecker implements Model: the refinement agent inspects the
// false-positive functions and applies a fix from its repertoire. FP
// idioms outside the repertoire (WARN_ON() checks, free-NULL-free
// sequences) go unrecognized and the spec comes back unchanged — those
// checkers end as the paper's refinement failures.
func (o *Oracle) RefineChecker(c *vcs.Commit, spec *ckdsl.Spec, fpSources []string, step int) (*ckdsl.Spec, Usage) {
	prompt := RefinePrompt(spec.String(), fpSources)
	out := *spec // shallow copy; slices replaced on change
	changed := false
	joined := strings.Join(fpSources, "\n")

	hasGuard := func(k ckdsl.GuardKind) bool {
		for _, g := range out.Guards {
			if g.Kind == k {
				return true
			}
		}
		return false
	}

	if strings.Contains(joined, "unlikely(") && len(out.Unwrap) == 0 {
		out.Unwrap = []string{"unlikely", "likely"}
		changed = true
	}
	if strings.Contains(joined, "__free(") && !hasGuard(ckdsl.GuardAssignInit) && hasUninitSource(&out) {
		out.Guards = append(append([]ckdsl.GuardRule{}, out.Guards...), ckdsl.GuardRule{Kind: ckdsl.GuardAssignInit})
		changed = true
	}
	if strings.Contains(joined, "] = 0;") && !hasGuard(ckdsl.GuardTerminate) && hasWritesSource(&out) {
		out.Guards = append(append([]ckdsl.GuardRule{}, out.Guards...), ckdsl.GuardRule{Kind: ckdsl.GuardTerminate})
		changed = true
	}
	if needsBoundGuard(&out) && !hasGuard(ckdsl.GuardBoundCheck) && containsComparisonGuard(joined) {
		out.Guards = append(append([]ckdsl.GuardRule{}, out.Guards...), ckdsl.GuardRule{Kind: ckdsl.GuardBoundCheck})
		changed = true
	}
	if !out.TrackAlias && strings.Contains(joined, "= kmalloc(") && hasFreesSource(&out) {
		// Freed-then-reallocated pointers demand value-identity tracking.
		out.TrackAlias = true
		changed = true
	}
	_ = changed
	return &out, Usage{InputTokens: EstimateTokens(prompt), OutputTokens: EstimateTokens(out.String()), Calls: 1}
}

func hasUninitSource(s *ckdsl.Spec) bool {
	for _, src := range s.Sources {
		if src.Kind == ckdsl.SrcDeclUninit {
			return true
		}
	}
	return false
}

func hasWritesSource(s *ckdsl.Spec) bool {
	for _, src := range s.Sources {
		if src.Kind == ckdsl.SrcCallWrites {
			return true
		}
	}
	return false
}

func hasFreesSource(s *ckdsl.Spec) bool {
	for _, src := range s.Sources {
		if src.Kind == ckdsl.SrcCallFrees {
			return true
		}
	}
	return false
}

func needsBoundGuard(s *ckdsl.Spec) bool {
	for _, sk := range s.Sinks {
		switch sk.Kind {
		case ckdsl.SinkMulOverflow, ckdsl.SinkCopyOverflow, ckdsl.SinkCallArgNegative, ckdsl.SinkIndexTainted:
			return true
		}
	}
	return false
}

func containsComparisonGuard(src string) bool {
	return strings.Contains(src, " > ") || strings.Contains(src, " >= ") || strings.Contains(src, " < ")
}
