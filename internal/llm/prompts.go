package llm

import (
	"fmt"
	"strings"

	"knighter/internal/vcs"
)

// The prompt templates mirror paper Figure 5. The simulated models do not
// "read" them (their behaviour is driven by the structural patch analysis
// in facts.go), but the pipeline assembles them exactly as the real
// system would, and token/cost accounting is computed from them — so the
// resource-efficiency numbers of §5.1 have a faithful basis.

const patternPromptTemplate = `# Instruction
You will be provided with a patch in Linux kernel.
Please analyze the patch and find out the **bug pattern** in this patch.
A **bug pattern** is the root cause of this bug, meaning that programs
with this pattern will have a great possibility of having the same bug.
Note that the bug pattern should be specific and accurate, which can be
used to identify the buggy code provided in the patch.

# Examples
%s

# Target Patch
%s
`

const planPromptTemplate = `# Instruction
Please organize an elaborate plan to help to write a checker to detect
such **bug pattern**.

# Utility Functions
%s

# Examples
%s

# Target Patch
%s

# Target Pattern
%s
`

const implementPromptTemplate = `# Instruction
Implement the checker following the plan, using the checker template.

# Checker Template
checker <name> {
  bugtype "<category>"
  description "<one line>"
  source { ... }
  guard { ... }
  sink { ... }
}

# Utility Functions
%s

# Plan
%s

# Target Patch
%s
`

const repairPromptTemplate = `# Instruction
The checker below fails to compile. Fix the compilation error and return
the corrected checker.

# Compiler Output
%s

# Checker
%s
`

const triagePromptTemplate = `# Instruction
Determine whether the static analyzer report is a real bug in the Linux
kernel and matches the target bug pattern.
- Compare the report against the target bug pattern, using the buggy
  function (pre-patch) and the fix patch as the reference.
- Explain your reasoning for classifying this as either:
  - TP (matches the target bug pattern and is a real bug), or
  - FP (does not match the target pattern or not a real bug).

# Patch
%s

# Target Pattern
%s

# Report
%s
`

const refinePromptTemplate = `# Instruction
The checker below produced the false-positive reports listed. Refine the
checker so it no longer reports these cases while still detecting the
original bug pattern.

# Checker
%s

# False Positives
%s
`

// utilityFunctions is the curated helper library of §4 ("9 utility
// functions"), included in plan/implementation prompts.
var utilityFunctions = []string{
	"getMemRegionFromExpr(expr) — resolve the memory region an expression denotes",
	"exprHasName(expr, name) — whether a call expression targets the named function",
	"markRegionChecked(state, region) — record that a region passed a guard",
	"regionIsTracked(state, map, region) — look up a region in a checker state map",
	"valueRangeOf(state, value) — the interval constraint on a symbolic value",
	"unwrapAnnotations(expr, names...) — see through unlikely()/likely() wrappers",
	"bufferLengthOf(region) — declared fixed length of an array region",
	"derivedRegionsOf(state, region) — regions recorded as derived from a base object",
	"reportAtAccess(ctx, msg, region) — emit a bug report at the current access",
}

// fewShotExamples summarizes the three hand-written end-to-end examples
// of §4 (commits 3027e7b15b02, 3948abaa4e2b, 4575962aeed6).
var fewShotExamples = `Example 1 (3027e7b15b02, Null-Pointer-Dereference): track the return
value of an allocator in a state map, mark it on null checks, report
dereferences of unchecked values.
Example 2 (3948abaa4e2b, Use-Before-Initialization): track declarations
without initializers, clear on assignment, report uses while possibly
uninitialized.
Example 3 (4575962aeed6, Double-Free): mark freed arguments, report a
second free of the same object.`

// PatternPrompt renders the Figure 5a prompt for a commit.
func PatternPrompt(c *vcs.Commit, ragExamples bool) string {
	ex := fewShotExamples
	if ragExamples {
		// The RAG variant retrieves three full official checkers, which
		// are substantially longer than the curated examples (§5.4.2);
		// modeled as a longer examples section.
		ex = strings.Repeat(fewShotExamples+"\n(retrieved official checker source elided)\n", 3)
	}
	return fmt.Sprintf(patternPromptTemplate, ex, patchSection(c))
}

// PlanPrompt renders the Figure 5b prompt.
func PlanPrompt(c *vcs.Commit, pattern string, ragExamples bool) string {
	ex := fewShotExamples
	if ragExamples {
		ex = strings.Repeat(fewShotExamples+"\n(retrieved official checker source elided)\n", 3)
	}
	return fmt.Sprintf(planPromptTemplate, strings.Join(utilityFunctions, "\n"), ex, patchSection(c), pattern)
}

// ImplementPrompt renders the implementation-stage prompt.
func ImplementPrompt(c *vcs.Commit, plan string) string {
	return fmt.Sprintf(implementPromptTemplate, strings.Join(utilityFunctions, "\n"), plan, patchSection(c))
}

// RepairPrompt renders the syntax-repair prompt.
func RepairPrompt(dsl, compileErr string) string {
	return fmt.Sprintf(repairPromptTemplate, compileErr, dsl)
}

// TriagePrompt renders the Figure 5c prompt.
func TriagePrompt(patchText, pattern, report string) string {
	return fmt.Sprintf(triagePromptTemplate, patchText, pattern, report)
}

// RefinePrompt renders the refinement prompt.
func RefinePrompt(spec string, fps []string) string {
	return fmt.Sprintf(refinePromptTemplate, spec, strings.Join(fps, "\n---\n"))
}

// patchSection renders the commit message, pre-patch function, and diff
// (the paper supplies all three to the agents).
func patchSection(c *vcs.Commit) string {
	return fmt.Sprintf("## Commit message\n%s\n\n## Buggy code (pre-patch)\n%s\n\n## Diff\n%s",
		c.Message(), c.Before, c.Diff())
}
