package llm

import (
	"strings"

	"knighter/internal/minic"
	"knighter/internal/patch"
	"knighter/internal/vcs"
)

// DiffFacts is what patch reading extracts: the structural story of the
// fix. It is derived purely from the patch text and the pre-patch source
// (the same inputs the paper's pattern-analysis agent receives), never
// from dataset metadata.
type DiffFacts struct {
	// Kind is the inferred fix shape.
	Kind FixKind
	// Anchor is the API the pattern hangs on (allocator, free function,
	// lock function, producer, ...).
	Anchor string
	// Release is the paired releasing API (kfree for leaks, the unlock
	// function for locks).
	Release string
	// Derive is a secondary API whose result aliases the anchor's object
	// (e.g. netdev_priv for free_netdev).
	Derive string
	// Consumer is the sink API for misuse patterns (sscanf, request_irq).
	Consumer string
	// GuardedVar is the variable the added guard protects.
	GuardedVar string
}

// FixKind classifies the fix shape read out of the diff.
type FixKind int

// Fix shapes.
const (
	FixUnknown FixKind = iota
	FixAddNullCheck
	FixAddBoundBeforeMulAlloc
	FixAddIndexBound
	FixClampUserCopy
	FixFreeOnErrorPath
	FixMoveFreeLater
	FixClearOrDropDupFree
	FixInitCleanupPtr
	FixAddUnlockOnPath
	FixTerminateBuffer
	FixCheckSign
)

var fixKindNames = map[FixKind]string{
	FixUnknown: "unknown", FixAddNullCheck: "add-null-check",
	FixAddBoundBeforeMulAlloc: "bound-before-mul-alloc",
	FixAddIndexBound:          "add-index-bound",
	FixClampUserCopy:          "clamp-user-copy",
	FixFreeOnErrorPath:        "free-on-error-path",
	FixMoveFreeLater:          "move-free-later",
	FixClearOrDropDupFree:     "clear-or-drop-dup-free",
	FixInitCleanupPtr:         "init-cleanup-ptr",
	FixAddUnlockOnPath:        "add-unlock-on-path",
	FixTerminateBuffer:        "terminate-buffer",
	FixCheckSign:              "check-sign",
}

func (k FixKind) String() string { return fixKindNames[k] }

// ClassOf maps a fix shape to the bug-class taxonomy of Table 1.
func (k FixKind) ClassOf() string {
	switch k {
	case FixAddNullCheck:
		return "NPD"
	case FixAddBoundBeforeMulAlloc:
		return "Integer-Overflow"
	case FixAddIndexBound:
		return "Out-of-Bound"
	case FixClampUserCopy:
		return "Buffer-Overflow"
	case FixFreeOnErrorPath:
		return "Memory-Leak"
	case FixMoveFreeLater:
		return "Use-After-Free"
	case FixClearOrDropDupFree:
		return "Double-Free"
	case FixInitCleanupPtr:
		return "UBI"
	case FixAddUnlockOnPath:
		return "Concurrency"
	case FixTerminateBuffer, FixCheckSign:
		return "Misuse"
	}
	return "Unknown"
}

// unlockToLock maps an unlock API to its acquiring API.
var unlockToLock = map[string]string{
	"spin_unlock":            "spin_lock",
	"spin_unlock_irqrestore": "spin_lock_irqsave",
	"mutex_unlock":           "mutex_lock",
	"read_unlock":            "read_lock",
	"write_unlock":           "write_lock",
}

// freeLikeCalls are APIs that release an object, in a fixed scan order
// (longest names first so e.g. "kvfree" is never mistaken for "vfree").
var freeLikeCalls = []string{
	"x509_free_certificate", "crypto_free_shash", "dma_free_coherent",
	"fwnode_handle_put", "mmc_free_host", "sock_release", "usb_free_urb",
	"free_netdev", "bitmap_free", "put_device", "bio_put",
	"kvfree", "vfree", "kfree",
}

// countCalls counts occurrences of callee(argText) in src at identifier
// boundaries (so kvfree(x) does not count as vfree(x)).
func countCalls(src, callee, argText string) int {
	needle := callee + "(" + argText + ")"
	n := 0
	for i := 0; ; {
		j := strings.Index(src[i:], needle)
		if j < 0 {
			return n
		}
		at := i + j
		if at == 0 || !isIdentChar(src[at-1]) {
			n++
		}
		i = at + len(needle)
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ReadPatch analyzes a commit's diff plus pre-patch source and extracts
// DiffFacts. It is deterministic, structural patch reading — the ground
// truth the simulated LLM's pattern-analysis agent degrades from.
func ReadPatch(c *vcs.Commit) DiffFacts {
	diff := c.Diff()
	added := patch.AddedLines(diff)
	removed := patch.RemovedLines(diff)
	before, errB := minic.ParseFile(c.File, c.Before)
	if errB != nil {
		return DiffFacts{}
	}
	fn := before.LookupFunc(c.FuncName)
	if fn == nil && len(before.Funcs) > 0 {
		fn = before.Funcs[0]
	}

	joinAdd := strings.Join(added, "\n")

	// 1. UBI: an added "= NULL" initializer on a __free declaration.
	for _, l := range added {
		t := strings.TrimSpace(l)
		if strings.Contains(t, "__free(") && strings.Contains(t, "= NULL") {
			name := between(t, "__free(", ")")
			return DiffFacts{Kind: FixInitCleanupPtr, Anchor: name}
		}
	}

	// 2. UAF: a free-like call removed from one place and re-added later
	// (moved), with uses of the object (or data derived from it) in
	// between.
	if f := moveFreeFacts(added, removed, fn); f.Kind != FixUnknown {
		return f
	}

	// 3. Double-free: an added "x = NULL" after a free, or a removed
	// duplicate free call.
	if f := dupFreeFacts(added, removed, c.Before); f.Kind != FixUnknown {
		return f
	}

	// 4. Concurrency: an added unlock call on an early-return path.
	for _, l := range added {
		t := strings.TrimSpace(l)
		for unlock, lock := range unlockToLock {
			if strings.HasPrefix(t, unlock+"(") {
				return DiffFacts{Kind: FixAddUnlockOnPath, Anchor: lock, Release: unlock}
			}
		}
	}

	// 5. Memory leak: an added free-like call immediately before an
	// error return.
	if f := leakFacts(added, fn); f.Kind != FixUnknown {
		return f
	}

	// 6. Buffer termination: an added "buf[n] = 0;" line.
	for _, l := range added {
		t := strings.TrimSpace(l)
		if strings.Contains(t, "] = 0;") && !strings.Contains(t, "==") {
			if idx := strings.Index(t, "["); idx > 0 {
				buf := t[:idx]
				consumer := findConsumer(fn, buf, []string{"sscanf", "strim", "kstrtoul", "simple_strtol"})
				if consumer != "" {
					return DiffFacts{Kind: FixTerminateBuffer, Anchor: "copy_from_user", Consumer: consumer, GuardedVar: buf}
				}
			}
		}
	}

	// 7. Sign check: added "if (x < 0)" where x is produced by a call
	// and consumed by another call.
	if f := signFacts(added, fn); f.Kind != FixUnknown {
		return f
	}

	// 8. User-copy clamp: added min()/bound against sizeof before
	// copy_from_user.
	if strings.Contains(joinAdd, "min(") && strings.Contains(c.Before, "copy_from_user(") ||
		(strings.Contains(joinAdd, "sizeof(") && strings.Contains(joinAdd, "- 1") &&
			strings.Contains(c.Before, "copy_from_user(")) {
		return DiffFacts{Kind: FixClampUserCopy, Anchor: "copy_from_user"}
	}

	// 9. Null check: added "if (!x)" with an error return; anchor is the
	// call whose result x holds.
	if f := nullCheckFacts(added, fn); f.Kind != FixUnknown {
		return f
	}

	// 10. Integer overflow: added count bound before an alloc whose size
	// argument multiplies.
	if f := mulBoundFacts(added, fn, c.Before); f.Kind != FixUnknown {
		return f
	}

	// 11. Index bound: added "if (i >= N)" before a subscript use.
	if f := indexBoundFacts(added, fn); f.Kind != FixUnknown {
		return f
	}

	return DiffFacts{}
}

func between(s, a, b string) string {
	i := strings.Index(s, a)
	if i < 0 {
		return ""
	}
	rest := s[i+len(a):]
	j := strings.Index(rest, b)
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// calleeOfAssignTo scans the function body for "name = CALL(...)" and
// returns the callee.
func calleeOfAssignTo(fn *minic.FuncDecl, name string) string {
	if fn == nil {
		return ""
	}
	out := ""
	walkStmts(fn.Body, func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.DeclStmt:
			if st.Name == name {
				if call, ok := minic.Unparen(st.Init).(*minic.CallExpr); ok && st.Init != nil {
					out = call.Fun
				}
			}
		case *minic.ExprStmt:
			if as, ok := st.X.(*minic.AssignExpr); ok && as.Op == minic.Assign {
				if id, ok := minic.Unparen(as.LHS).(*minic.Ident); ok && id.Name == name {
					if call, ok := minic.Unparen(as.RHS).(*minic.CallExpr); ok {
						out = call.Fun
					}
				}
			}
		}
	})
	return out
}

// walkStmts visits every statement in a body, recursively.
func walkStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch st := s.(type) {
	case *minic.Block:
		for _, sub := range st.Stmts {
			walkStmts(sub, visit)
		}
	case *minic.IfStmt:
		walkStmts(st.Then, visit)
		walkStmts(st.Else, visit)
	case *minic.WhileStmt:
		walkStmts(st.Body, visit)
	case *minic.ForStmt:
		walkStmts(st.Init, visit)
		walkStmts(st.Body, visit)
	case *minic.LabeledStmt:
		walkStmts(st.Stmt, visit)
	}
}

func nullCheckFacts(added []string, fn *minic.FuncDecl) DiffFacts {
	for _, l := range added {
		t := strings.TrimSpace(l)
		if !strings.HasPrefix(t, "if (!") {
			continue
		}
		v := between(t, "if (!", ")")
		v = strings.TrimSpace(v)
		if v == "" || strings.ContainsAny(v, " <>=") {
			continue
		}
		anchor := calleeOfAssignTo(fn, v)
		if anchor != "" {
			return DiffFacts{Kind: FixAddNullCheck, Anchor: anchor, GuardedVar: v}
		}
	}
	return DiffFacts{}
}

func mulBoundFacts(added []string, fn *minic.FuncDecl, before string) DiffFacts {
	var bounded string
	for _, l := range added {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "if (") && strings.Contains(t, " > ") {
			bounded = strings.TrimSpace(between(t, "if (", " > "))
		}
	}
	if bounded == "" {
		return DiffFacts{}
	}
	// Find an allocation whose size argument multiplies the bounded var.
	anchor := ""
	if fn != nil {
		walkStmts(fn.Body, func(s minic.Stmt) {
			es, ok := s.(*minic.ExprStmt)
			if !ok {
				return
			}
			as, ok := es.X.(*minic.AssignExpr)
			if !ok {
				return
			}
			call, ok := minic.Unparen(as.RHS).(*minic.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			if bin, ok := minic.Unparen(call.Args[0]).(*minic.BinaryExpr); ok && bin.Op == minic.Star {
				anchor = call.Fun
			}
		})
	}
	if anchor == "" {
		return DiffFacts{}
	}
	return DiffFacts{Kind: FixAddBoundBeforeMulAlloc, Anchor: anchor, GuardedVar: bounded}
}

func indexBoundFacts(added []string, fn *minic.FuncDecl) DiffFacts {
	var idx string
	for _, l := range added {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "if (") && strings.Contains(t, " >= ") {
			idx = strings.TrimSpace(between(t, "if (", " >= "))
		}
	}
	if idx == "" {
		return DiffFacts{}
	}
	anchor := calleeOfAssignTo(fn, idx)
	if anchor == "" {
		return DiffFacts{}
	}
	return DiffFacts{Kind: FixAddIndexBound, Anchor: anchor, GuardedVar: idx}
}

func leakFacts(added []string, fn *minic.FuncDecl) DiffFacts {
	for _, l := range added {
		t := strings.TrimSpace(l)
		for _, free := range freeLikeCalls {
			if strings.HasPrefix(t, free+"(") {
				v := strings.TrimSuffix(between(t, free+"(", ")"), ";")
				anchor := calleeOfAssignTo(fn, v)
				if anchor != "" && anchor != free {
					return DiffFacts{Kind: FixFreeOnErrorPath, Anchor: anchor, Release: free, GuardedVar: v}
				}
			}
		}
	}
	return DiffFacts{}
}

func moveFreeFacts(added, removed []string, fn *minic.FuncDecl) DiffFacts {
	// A "moved" line appears in both added and removed.
	for _, r := range removed {
		rt := strings.TrimSpace(r)
		for _, free := range freeLikeCalls {
			if !strings.HasPrefix(rt, free+"(") {
				continue
			}
			for _, a := range added {
				if strings.TrimSpace(a) == rt {
					freedVar := strings.TrimSuffix(between(rt, free+"(", ")"), ";")
					derive, _ := deriveOf(fn, freedVar)
					return DiffFacts{Kind: FixMoveFreeLater, Anchor: free, Derive: derive, GuardedVar: freedVar}
				}
			}
		}
	}
	return DiffFacts{}
}

// deriveOf finds "x = PRIV(y)" in fn where y is the given variable, i.e.
// a pointer derived from the freed object.
func deriveOf(fn *minic.FuncDecl, freed string) (string, string) {
	derive, derived := "", ""
	if fn == nil {
		return "", ""
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		d, ok := s.(*minic.DeclStmt)
		if !ok || d.Init == nil {
			return
		}
		call, ok := minic.Unparen(d.Init).(*minic.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		if id, ok := minic.Unparen(call.Args[0]).(*minic.Ident); ok && id.Name == freed {
			derive, derived = call.Fun, d.Name
		}
	})
	return derive, derived
}

func dupFreeFacts(added, removed []string, before string) DiffFacts {
	// Style A: the fix NULLs the pointer after the first free.
	for _, a := range added {
		t := strings.TrimSpace(a)
		if strings.HasSuffix(t, "= NULL;") && !strings.Contains(t, "__free") {
			v := strings.TrimSpace(strings.TrimSuffix(t, "= NULL;"))
			for _, free := range freeLikeCalls {
				if countCalls(before, free, v) >= 2 {
					return DiffFacts{Kind: FixClearOrDropDupFree, Anchor: free, GuardedVar: v}
				}
			}
		}
	}
	// Style B: the fix removes the duplicated free call.
	for _, r := range removed {
		t := strings.TrimSpace(r)
		for _, free := range freeLikeCalls {
			if strings.HasPrefix(t, free+"(") {
				v := strings.TrimSuffix(between(t, free+"(", ")"), ";")
				if countCalls(before, free, v) >= 2 {
					return DiffFacts{Kind: FixClearOrDropDupFree, Anchor: free, GuardedVar: v}
				}
			}
		}
	}
	return DiffFacts{}
}

func signFacts(added []string, fn *minic.FuncDecl) DiffFacts {
	for _, l := range added {
		t := strings.TrimSpace(l)
		if !strings.HasPrefix(t, "if (") || !strings.Contains(t, " < 0)") {
			continue
		}
		v := strings.TrimSpace(between(t, "if (", " < 0)"))
		if v == "" {
			continue
		}
		producer := calleeOfAssignTo(fn, v)
		consumer := findConsumer(fn, v, []string{"request_irq", "devm_request_irq", "enable_irq"})
		if producer != "" && consumer != "" {
			return DiffFacts{Kind: FixCheckSign, Anchor: producer, Consumer: consumer, GuardedVar: v}
		}
	}
	return DiffFacts{}
}

// findConsumer locates a call in fn taking the named variable as its
// first argument, restricted to the candidate list (empty list = any).
func findConsumer(fn *minic.FuncDecl, v string, candidates []string) string {
	if fn == nil {
		return ""
	}
	out := ""
	isCandidate := func(name string) bool {
		if len(candidates) == 0 {
			return true
		}
		for _, c := range candidates {
			if c == name {
				return true
			}
		}
		return false
	}
	var scanExpr func(e minic.Expr)
	scanExpr = func(e minic.Expr) {
		call, ok := minic.Unparen(e).(*minic.CallExpr)
		if !ok {
			return
		}
		if len(call.Args) > 0 && isCandidate(call.Fun) {
			if id, ok := minic.Unparen(call.Args[0]).(*minic.Ident); ok && id.Name == v {
				out = call.Fun
			}
		}
		for _, a := range call.Args {
			scanExpr(a)
		}
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.ExprStmt:
			scanExpr(st.X)
		case *minic.ReturnStmt:
			if st.X != nil {
				scanExpr(st.X)
			}
		case *minic.IfStmt:
			scanExpr(st.Cond)
		}
	})
	return out
}
