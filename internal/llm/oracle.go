package llm

import (
	"fmt"
	"strings"

	"knighter/internal/ckdsl"
	"knighter/internal/vcs"
)

// PatternAnalysis is the output of the bug-pattern-analysis stage.
type PatternAnalysis struct {
	Facts    DiffFacts
	Text     string
	Accurate bool
}

// Plan is the output of the plan-synthesis stage.
type Plan struct {
	Steps    []string
	Accurate bool
}

// Text renders the plan as prose.
func (p *Plan) Text() string { return strings.Join(p.Steps, "\n") }

// Model is the generation interface the synthesis pipeline drives.
type Model interface {
	Name() string
	AnalyzePattern(c *vcs.Commit, iter int) (*PatternAnalysis, Usage)
	SynthesizePlan(c *vcs.Commit, pa *PatternAnalysis, iter int) (*Plan, Usage)
	ImplementChecker(c *vcs.Commit, pa *PatternAnalysis, plan *Plan, iter int) (string, Usage)
	RepairChecker(c *vcs.Commit, iter, attempt int, dsl, compileErr string) (string, Usage)
	RefineChecker(c *vcs.Commit, spec *ckdsl.Spec, fpSources []string, step int) (*ckdsl.Spec, Usage)
}

// Oracle is the deterministic simulated LLM.
type Oracle struct {
	Profile *Profile
	// SingleStage reproduces the "w/o multi-stage" ablation: the
	// implementation happens without the explicit pattern/plan stages,
	// with correspondingly degraded success and syntax rates (Table 3).
	SingleStage bool
	// RAG reproduces the RAG-example ablation: comparable quality at
	// roughly double the prompt-token cost.
	RAG bool
	// Namespace separates experiments so ablation runs draw fresh rolls.
	Namespace string
}

// NewOracle returns an oracle for the profile.
func NewOracle(p *Profile) *Oracle { return &Oracle{Profile: p} }

// Name implements Model.
func (o *Oracle) Name() string { return o.Profile.Name }

func (o *Oracle) key(parts ...string) []string {
	return append([]string{o.Profile.Name, o.Namespace, fmt.Sprint(o.SingleStage)}, parts...)
}

// rootCause classifies why the model fails on a commit it does not
// understand: inaccurate pattern (9%), inaccurate plan (32%), or
// inaccurate implementation (59%) — the §5.1 failure-root-cause split.
func (o *Oracle) rootCause(c *vcs.Commit) string {
	v := roll(o.key("rootcause", c.ID)...)
	switch {
	case v < 0.09:
		return "pattern"
	case v < 0.41:
		return "plan"
	default:
		return "impl"
	}
}

// capable reports whether the model will ever synthesize a valid checker
// for this commit; failures are commit-level, not attempt-level, because
// a misunderstood patch stays misunderstood across iterations. The
// hand-benchmark commits of the default model are pinned by the profile's
// calibration table; everything else is probabilistic.
func (o *Oracle) capable(c *vcs.Commit) bool {
	base := false
	if o.Profile.CommitSkill != nil && !c.AutoCollected {
		key := fmt.Sprintf("%s/%s#%d", c.Class, c.Flavor, c.Seq)
		if v, ok := o.Profile.CommitSkill[key]; ok {
			base = v
		} else {
			base = o.rollCapable(c)
		}
	} else {
		base = o.rollCapable(c)
	}
	if base && o.SingleStage {
		// Without the explicit pattern/plan stages some otherwise
		// tractable commits are never understood (paper Table 3: 8
		// valid single-stage vs 12 multi-stage).
		return rollBelow(0.67, o.key("ss-capable", c.ID)...)
	}
	return base
}

func (o *Oracle) rollCapable(c *vcs.Commit) bool {
	cap := o.Profile.CapabilityFor(c.Class)
	if !c.Detailed {
		// Terse commit messages make pattern extraction harder.
		cap *= 0.9
	}
	return rollBelow(cap, o.key("capable", c.ID)...)
}

// succeedsAt reports whether a capable model's iteration produces the
// correct checker (geometric over iterations).
func (o *Oracle) succeedsAt(c *vcs.Commit, iter int) bool {
	p := o.Profile.SuccessPerAttempt
	if o.SingleStage {
		p *= 0.65 // without the plan stage, more attempts flounder
	}
	return rollBelow(p, o.key("succ", c.ID, fmt.Sprint(iter))...)
}

// AnalyzePattern implements Model (paper Fig. 5a stage).
func (o *Oracle) AnalyzePattern(c *vcs.Commit, iter int) (*PatternAnalysis, Usage) {
	prompt := PatternPrompt(c, o.RAG)
	facts := ReadPatch(c)
	accurate := facts.Kind != FixUnknown
	if !o.capable(c) && o.rootCause(c) == "pattern" {
		// The model distills a wrong root cause: it fixates on an
		// incidental API in the patch context.
		facts = DiffFacts{Kind: facts.Kind, Anchor: wrongCallee(facts.Anchor)}
		accurate = false
	}
	text := fmt.Sprintf(
		"The bug pattern is %s anchored on %s: code calling %s without the corresponding guard is likely to exhibit the same defect.",
		facts.Kind, orUnknown(facts.Anchor), orUnknown(facts.Anchor))
	out := &PatternAnalysis{Facts: facts, Text: text, Accurate: accurate}
	return out, Usage{InputTokens: EstimateTokens(prompt), OutputTokens: EstimateTokens(text), Calls: 1}
}

// SynthesizePlan implements Model (paper Fig. 5b stage).
func (o *Oracle) SynthesizePlan(c *vcs.Commit, pa *PatternAnalysis, iter int) (*Plan, Usage) {
	prompt := PlanPrompt(c, pa.Text, o.RAG)
	steps := planSteps(pa.Facts)
	accurate := pa.Accurate
	if !o.capable(c) && o.rootCause(c) == "plan" {
		// Plausible but wrong plan: the right events, the wrong state
		// machine.
		steps = []string{
			"1. Track every pointer assignment in a program-state map.",
			"2. On any call, clear the map.",
			"3. Report at end of function if the map is non-empty.",
		}
		accurate = false
	}
	return &Plan{Steps: steps, Accurate: accurate},
		Usage{InputTokens: EstimateTokens(prompt), OutputTokens: EstimateTokens(strings.Join(steps, "\n")), Calls: 1}
}

func planSteps(f DiffFacts) []string {
	switch f.Kind {
	case FixAddNullCheck:
		return []string{
			"1. Program state: map regions returned by " + f.Anchor + "() to a checked/unchecked flag.",
			"2. checkPostCall: on " + f.Anchor + "(), record the returned region as unchecked.",
			"3. checkBranchCondition: recognize if (!p) / p == NULL and mark the region checked.",
			"4. checkLocation: report a dereference of an unchecked region.",
			"5. checkBind: propagate the flag across pointer aliases.",
		}
	case FixMoveFreeLater:
		steps := []string{
			"1. Program state: map objects freed by " + f.Anchor + "().",
			"2. checkPostCall: mark the argument of " + f.Anchor + "() freed.",
			"3. checkLocation: report any dereference of freed memory.",
		}
		if f.Derive != "" {
			steps = append(steps, "4. checkPostCall: link "+f.Derive+"() results to their base object so freeing the base frees the derived data.")
		}
		return steps
	case FixClearOrDropDupFree:
		return []string{
			"1. Program state: map objects released by " + f.Anchor + "().",
			"2. checkPreCall: report a second " + f.Anchor + "() on an already-freed object.",
		}
	case FixFreeOnErrorPath:
		return []string{
			"1. Program state: map allocations from " + f.Anchor + "().",
			"2. checkPostCall: stop tracking when " + f.Release + "() releases or the pointer escapes.",
			"3. checkEndFunction: report allocations still held on a return path.",
		}
	case FixInitCleanupPtr:
		return []string{
			"1. checkDecl: track __free() pointers declared without an initializer.",
			"2. checkEndFunction: report paths where cleanup runs while the pointer is still uninitialized.",
		}
	case FixAddUnlockOnPath:
		return []string{
			"1. Program state: lock map keyed by lock object.",
			"2. checkPostCall: set on " + f.Anchor + "(), clear on " + f.Release + "().",
			"3. checkEndFunction: report returns with the lock held.",
			"4. checkPreCall: report re-acquisition of a held lock.",
		}
	case FixClampUserCopy:
		return []string{
			"1. checkPreCall: at copy_from_user(), compare the size argument's range against the destination buffer's declared capacity minus one.",
			"2. Report when the copy can exceed the capacity.",
		}
	case FixAddBoundBeforeMulAlloc:
		return []string{
			"1. checkPreCall: at " + f.Anchor + "(), inspect a multiplicative size argument.",
			"2. Report when the operand ranges allow a 32-bit overflow.",
		}
	case FixAddIndexBound:
		return []string{
			"1. checkPostCall: taint indexes produced by " + f.Anchor + "().",
			"2. checkLocation: report tainted subscripts that can exceed the array bound.",
		}
	case FixTerminateBuffer:
		return []string{
			"1. checkPostCall: mark buffers written by copy_from_user() as unterminated.",
			"2. checkBind: clear the mark when a terminating zero is stored.",
			"3. checkPreCall: report " + f.Consumer + "() on an unterminated buffer.",
		}
	case FixCheckSign:
		return []string{
			"1. Track the value returned by " + f.Anchor + "().",
			"2. checkPreCall: report passing a possibly-negative value to " + f.Consumer + "().",
		}
	}
	return []string{"1. Inspect calls related to the patch.", "2. Report suspicious uses."}
}

func orUnknown(s string) string {
	if s == "" {
		return "<unknown>"
	}
	return s
}

// wrongCallee produces the kind of near-miss API confusion real models
// exhibit (dropping a devm_ prefix, swapping to a sibling API).
func wrongCallee(anchor string) string {
	switch {
	case anchor == "":
		return "kmalloc"
	case strings.HasPrefix(anchor, "devm_"):
		return strings.TrimPrefix(anchor, "devm_")
	case strings.HasSuffix(anchor, "zalloc"):
		return strings.TrimSuffix(anchor, "zalloc") + "calloc"
	default:
		return anchor + "_sync"
	}
}
