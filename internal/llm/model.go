// Package llm implements the simulated LLM backends of the reproduction.
//
// The paper drives its pipeline with O3-mini (and GPT-4o, DeepSeek-R1,
// Gemini-2-flash in the ablation). Offline, we replace them with a
// deterministic oracle that genuinely reads the patch (facts.go) and
// writes checker-DSL programs, but degrades its output according to a
// per-model Profile: syntax errors, API hallucinations, and semantic
// misunderstandings occur at calibrated rates, seeded by (model, commit,
// attempt) so every run of every experiment is reproducible.
//
// This is the calibration layer documented in DESIGN.md §2: the paper's
// pipeline properties (multi-stage > single-stage, repair fixes syntax,
// validation filters hallucination, refinement removes FP classes) are
// properties of how the pipeline handles an imperfect generator, which
// this package provides.
package llm

import (
	"fmt"
	"hash/fnv"
)

// Usage accumulates token and call accounting across agent invocations.
type Usage struct {
	InputTokens  int
	OutputTokens int
	Calls        int
}

// Add folds other into u.
func (u *Usage) Add(other Usage) {
	u.InputTokens += other.InputTokens
	u.OutputTokens += other.OutputTokens
	u.Calls += other.Calls
}

// CostUSD prices the usage with the given per-million-token rates.
func (u Usage) CostUSD(inPerM, outPerM float64) float64 {
	return float64(u.InputTokens)/1e6*inPerM + float64(u.OutputTokens)/1e6*outPerM
}

// EstimateTokens approximates the token count of a text (≈4 chars/token,
// the usual budgeting rule of thumb).
func EstimateTokens(text string) int { return (len(text) + 3) / 4 }

// Profile calibrates one simulated model backend.
type Profile struct {
	Name string
	// Capability is the per-class probability that the model understands
	// a commit of that class well enough to ever produce a valid
	// checker (the paper's commit-level failures are correlated: a
	// misunderstood commit fails all ten iterations).
	Capability map[string]float64
	// DefaultCapability applies to classes not listed.
	DefaultCapability float64
	// SuccessPerAttempt is the per-iteration probability that a capable
	// model emits the correct checker this iteration (geometric; the
	// paper reports 2.4 average attempts for O3-mini).
	SuccessPerAttempt float64
	// SyntaxErrorRate is the probability any attempt's output carries a
	// parse-breaking mistake (independent of semantic quality).
	SyntaxErrorRate float64
	// UnfixableRate is the fraction of syntax mistakes the repair agent
	// can never resolve from the compiler message (e.g. a hallucinated
	// construct with no close legal spelling); these end as the
	// compilation-failure symptom.
	UnfixableRate float64
	// APIHallucinationRate is the probability a failed attempt manifests
	// as wrong API usage that crashes at analysis time.
	APIHallucinationRate float64
	// RepairSkill is the probability one repair round fixes a fixable
	// syntax error given the compiler message.
	RepairSkill float64
	// EnhancementRate is the probability an optional robustness feature
	// (unwrap, guards, alias tracking) is already present in a first
	// valid checker; low values mean most valid checkers start naive
	// and rely on the refinement loop.
	EnhancementRate float64
	// Pricing per million tokens.
	InputCostPerM  float64
	OutputCostPerM float64
	// CommitSkill, when non-nil, pins per-commit capability for the
	// labeled benchmark, keyed "Class/Flavor#Seq". It is the calibration
	// table that reproduces the observed per-commit outcomes of paper
	// Table 1 for the default model (see DESIGN.md §2); commits without
	// an entry fall back to the probabilistic capability.
	CommitSkill map[string]bool
}

// The built-in model profiles. Capabilities are calibrated against the
// per-class validity ratios of paper Table 1 (O3-mini) and the ablation
// totals of Table 3 (other models).
var (
	O3Mini = &Profile{
		Name: "o3-mini",
		Capability: map[string]float64{
			"NPD": 0.70, "Integer-Overflow": 0.60, "Out-of-Bound": 0.68,
			"Buffer-Overflow": 0.42, "Memory-Leak": 0.62, "Use-After-Free": 0.45,
			"Double-Free": 0.88, "UBI": 0.80, "Concurrency": 0.62, "Misuse": 0.60,
		},
		DefaultCapability:    0.60,
		SuccessPerAttempt:    0.56,
		SyntaxErrorRate:      0.45,
		UnfixableRate:        0.55,
		APIHallucinationRate: 0.012,
		RepairSkill:          0.80,
		EnhancementRate:      0.15,
		InputCostPerM:        1.10,
		OutputCostPerM:       4.40,
		CommitSkill:          o3MiniHandDestiny,
	}
	GPT4o = &Profile{
		Name:                 "gpt-4o",
		DefaultCapability:    0.60,
		SuccessPerAttempt:    0.52,
		SyntaxErrorRate:      0.50,
		UnfixableRate:        0.58,
		APIHallucinationRate: 0.012,
		RepairSkill:          0.75,
		EnhancementRate:      0.15,
		InputCostPerM:        2.50,
		OutputCostPerM:       10.0,
	}
	DeepSeekR1 = &Profile{
		Name:                 "deepseek-r1",
		DefaultCapability:    0.62,
		SuccessPerAttempt:    0.52,
		SyntaxErrorRate:      0.46,
		UnfixableRate:        0.55,
		APIHallucinationRate: 0.16,
		RepairSkill:          0.74,
		EnhancementRate:      0.15,
		InputCostPerM:        0.55,
		OutputCostPerM:       2.19,
	}
	Gemini2Flash = &Profile{
		Name:                 "gemini-2-flash",
		DefaultCapability:    0.33,
		SuccessPerAttempt:    0.35,
		SyntaxErrorRate:      0.88,
		UnfixableRate:        0.82,
		APIHallucinationRate: 0.02,
		RepairSkill:          0.40,
		EnhancementRate:      0.10,
		InputCostPerM:        0.10,
		OutputCostPerM:       0.40,
	}
)

// o3MiniHandDestiny pins which hand-benchmark commits the default model
// understands (calibrated against the per-class validity split of paper
// Table 1 — see DESIGN.md). Keys are "Class/Flavor#Seq".
var o3MiniHandDestiny = map[string]bool{
	// NPD: 5 valid (2 direct, 2 refined, 1 refinement-fail), 1 invalid.
	"NPD/devm_kzalloc#0": true, "NPD/kzalloc#0": true, "NPD/kmalloc#0": true,
	"NPD/kcalloc#0": true, "NPD/kstrdup#0": false, "NPD/devm_ioremap#0": true,
	// Integer-Overflow: 4 valid, 3 invalid.
	"Integer-Overflow/kmalloc#0": true, "Integer-Overflow/kzalloc#0": true,
	"Integer-Overflow/kvmalloc#0": true, "Integer-Overflow/vmalloc#0": true,
	"Integer-Overflow/dma_alloc_coherent#0": false,
	"Integer-Overflow/sock_kmalloc#0":       false,
	"Integer-Overflow/usb_alloc_coherent#0": false,
	// Out-of-Bound: 4 valid, 2 invalid.
	"Out-of-Bound/le16_to_cpu#0": true, "Out-of-Bound/le32_to_cpu#0": true,
	"Out-of-Bound/be16_to_cpu#0": true, "Out-of-Bound/get_unaligned_le16#0": true,
	"Out-of-Bound/simple_strtoul#0": false, "Out-of-Bound/hex_to_bin#0": false,
	// Buffer-Overflow: 2 valid, 3 invalid (static buffer-bound reasoning
	// is where the paper reports the approach struggles).
	"Buffer-Overflow/debugfs#0": true, "Buffer-Overflow/sysfs#0": true,
	"Buffer-Overflow/procfs#0": false, "Buffer-Overflow/tracefs#0": false,
	"Buffer-Overflow/netdevsim#0": false,
	// Memory-Leak: 3 valid, 2 invalid.
	"Memory-Leak/kmalloc#0": true, "Memory-Leak/kzalloc#0": true,
	"Memory-Leak/kmemdup#0": true, "Memory-Leak/vmalloc#0": false,
	"Memory-Leak/kvzalloc#0": false,
	// Use-After-Free: 3 valid, 4 invalid (temporal reasoning is hard).
	"Use-After-Free/free_netdev#0": true, "Use-After-Free/usb_free_urb#0": true,
	"Use-After-Free/kfree#0": true, "Use-After-Free/vfree#0": false,
	"Use-After-Free/kvfree#0": false, "Use-After-Free/mmc_free_host#0": false,
	"Use-After-Free/dma_free_coherent#0": false,
	// Double-Free: 7 valid, 1 invalid.
	"Double-Free/kfree#0": true, "Double-Free/vfree#0": true,
	"Double-Free/kvfree#0": true, "Double-Free/usb_free_urb#0": true,
	"Double-Free/bio_put#0": true, "Double-Free/mmc_free_host#0": true,
	"Double-Free/sock_release#0": false, "Double-Free/crypto_free_shash#0": true,
	// UBI: 4 valid, 1 invalid.
	"UBI/kfree#0": true, "UBI/x509_free_certificate#0": true,
	"UBI/fwnode_handle_put#0": true, "UBI/bitmap_free#0": true,
	"UBI/put_device#0": false,
	// Concurrency: 3 valid, 2 invalid.
	"Concurrency/spin_lock#0": true, "Concurrency/mutex_lock#0": true,
	"Concurrency/spin_lock_irqsave#0": true, "Concurrency/read_lock#0": false,
	"Concurrency/write_lock#0": false,
	// Misuse: 4 valid, 3 invalid.
	"Misuse/sscanf_unterminated#0": true, "Misuse/platform_get_irq#0": true,
	"Misuse/of_irq_get#0": true, "Misuse/strscpy_nul#0": true,
	"Misuse/sscanf_unterminated#1": false, "Misuse/platform_get_irq#1": false,
	"Misuse/strscpy_nul#1": false,
}

// CapabilityFor returns the class capability with default fallback.
func (p *Profile) CapabilityFor(class string) float64 {
	if v, ok := p.Capability[class]; ok {
		return v
	}
	return p.DefaultCapability
}

// roll derives a deterministic uniform value in [0,1) from a key. All
// stochastic behaviour in the simulated models flows through this, so a
// given (model, commit, attempt, purpose) always behaves identically.
//
// FNV alone avalanches poorly when only trailing bytes differ (e.g.
// attempt counters), so the sum is passed through a murmur-style
// finalizer before scaling.
func roll(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%d\x00%s\x00", len(p), p)
	}
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// rollBelow reports whether the deterministic roll is below prob.
func rollBelow(prob float64, parts ...string) bool {
	return roll(parts...) < prob
}

// Roll exposes the deterministic unit draw for other packages' simulated
// judgments (e.g. the evaluation's maintainer-response model).
func Roll(parts ...string) float64 { return roll(parts...) }
