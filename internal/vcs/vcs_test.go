package vcs

import (
	"strings"
	"testing"
)

func mkCommit(class, subj string) *Commit {
	return &Commit{
		Subject: subj,
		File:    "drivers/spi/x.c",
		Class:   class,
		Before:  "int f(void)\n{\n\treturn 1;\n}\n",
		After:   "int f(void)\n{\n\treturn 2;\n}\n",
	}
}

func TestStoreAddGet(t *testing.T) {
	s := NewStore()
	c := s.Add(mkCommit("NPD", "fix a"))
	if c.ID == "" {
		t.Fatal("no id assigned")
	}
	if got := s.Get(c.ID); got != c {
		t.Fatal("Get failed")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreOrderAndClasses(t *testing.T) {
	s := NewStore()
	a := s.Add(mkCommit("NPD", "fix a"))
	b := s.Add(mkCommit("Misuse", "fix b"))
	c := s.Add(mkCommit("NPD", "fix c"))
	all := s.All()
	if len(all) != 3 || all[0] != a || all[1] != b || all[2] != c {
		t.Fatal("insertion order not preserved")
	}
	npd := s.ByClass("NPD")
	if len(npd) != 2 || npd[0] != a || npd[1] != c {
		t.Fatal("ByClass wrong")
	}
	cls := s.Classes()
	if len(cls) != 2 || cls[0] != "Misuse" || cls[1] != "NPD" {
		t.Fatalf("Classes = %v", cls)
	}
}

func TestCommitMessageAndDiff(t *testing.T) {
	c := mkCommit("NPD", "spi: fix null deref")
	c.Body = "A detailed explanation."
	msg := c.Message()
	if !strings.HasPrefix(msg, "spi: fix null deref\n\n") || !strings.Contains(msg, "detailed") {
		t.Errorf("message = %q", msg)
	}
	c.Body = ""
	if c.Message() != "spi: fix null deref" {
		t.Errorf("terse message = %q", c.Message())
	}
	d := c.Diff()
	if !strings.Contains(d, "-\treturn 1;") || !strings.Contains(d, "+\treturn 2;") {
		t.Errorf("diff = %s", d)
	}
}

func TestHashIDStable(t *testing.T) {
	a := HashID("x", "y")
	b := HashID("x", "y")
	c := HashID("x", "z")
	if a != b {
		t.Error("hash not stable")
	}
	if a == c {
		t.Error("hash collision on different input")
	}
	if len(a) != 12 {
		t.Errorf("id length = %d", len(a))
	}
	// Length-prefixing prevents concatenation ambiguity.
	if HashID("ab", "c") == HashID("a", "bc") {
		t.Error("ambiguous hashing")
	}
}
