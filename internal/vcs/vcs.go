// Package vcs is a miniature commit store: enough version-control
// machinery to hand the synthesis pipeline what Algorithm 1 consumes — a
// patch commit with its message, the buggy (pre-patch) and patched
// (post-patch) file contents, and metadata used by the evaluation.
package vcs

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"knighter/internal/patch"
)

// Commit is one bug-fix commit: a single-file change with both sides
// retained so validation can scan pre- and post-patch objects.
type Commit struct {
	ID        string // 12-hex commit id
	Subject   string // one-line summary
	Body      string // free-text explanation (may be terse)
	File      string // e.g. "drivers/spi/spi-pci1xxxx.c"
	Subsystem string // top-level directory
	FuncName  string // primary modified function
	// Class is the labeled bug category (Table 1 taxonomy).
	Class string
	// Flavor is the API anchor of the pattern (e.g. "devm_kzalloc").
	Flavor string
	// Detailed indicates a commit message that explains the root cause
	// (like paper Fig. 4) rather than a terse "fix crash" subject.
	Detailed bool
	// Seq is the occurrence index of this (Class, Flavor) pair within
	// its dataset, used to key per-commit model-capability calibration.
	Seq int
	// AutoCollected marks commits from the keyword-collected NPD set
	// (§5.2) rather than the hand-labeled 61-commit benchmark.
	AutoCollected bool
	Before        string // pre-patch file content (buggy)
	After         string // post-patch file content (fixed)
	AuthorDate    time.Time
}

// Message renders the full commit message (subject + body).
func (c *Commit) Message() string {
	if c.Body == "" {
		return c.Subject
	}
	return c.Subject + "\n\n" + c.Body
}

// Diff returns the unified diff of the commit.
func (c *Commit) Diff() string {
	return patch.Diff(c.File, c.File, c.Before, c.After, 3)
}

// Store holds commits indexed by id.
type Store struct {
	commits map[string]*Commit
	order   []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{commits: map[string]*Commit{}}
}

// Add inserts a commit, assigning its content-derived ID if unset.
func (s *Store) Add(c *Commit) *Commit {
	if c.ID == "" {
		c.ID = HashID(c.File, c.FuncName, c.Subject, c.Before, c.After)
	}
	if _, dup := s.commits[c.ID]; !dup {
		s.order = append(s.order, c.ID)
	}
	s.commits[c.ID] = c
	return c
}

// Get returns the commit with the given id, or nil.
func (s *Store) Get(id string) *Commit { return s.commits[id] }

// All returns the commits in insertion order.
func (s *Store) All() []*Commit {
	out := make([]*Commit, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.commits[id])
	}
	return out
}

// ByClass returns commits of one bug class, insertion-ordered.
func (s *Store) ByClass(class string) []*Commit {
	var out []*Commit
	for _, c := range s.All() {
		if c.Class == class {
			out = append(out, c)
		}
	}
	return out
}

// Classes returns the distinct classes present, sorted.
func (s *Store) Classes() []string {
	seen := map[string]bool{}
	for _, c := range s.All() {
		seen[c.Class] = true
	}
	var out []string
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of commits.
func (s *Store) Len() int { return len(s.order) }

// HashID derives a stable 12-hex id from content.
func HashID(parts ...string) string {
	h := sha1.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
