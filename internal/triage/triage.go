// Package triage implements report distillation and the bug-triage agent
// (paper §3.2, Fig. 5c): reports are stripped to their essential lines
// and classified TP ("bug") / FP ("not-a-bug") against the target
// pattern.
//
// The agent's judgment is simulated with calibrated access to the
// corpus's ground truth: real bugs are always labeled "bug" (the paper
// measured zero false negatives for its agent, §5.4.1), while false
// reports are mislabeled "bug" at a configurable rate (the 22-of-79
// over-approval the paper observed).
package triage

import (
	"fmt"
	"math"
	"strings"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/llm"
)

// Distilled is the reduced report handed to the triage agent: the
// relevant lines and trace only, stripped of surrounding context (§3.2).
type Distilled struct {
	File    string
	Func    string
	Line    int
	Checker string
	BugType string
	Message string
	Region  string
	Trace   []string
}

// Distill reduces a full report.
func Distill(r *checker.Report) Distilled {
	d := Distilled{
		File: r.File, Func: r.Func, Line: r.Pos.Line,
		Checker: r.Checker, BugType: r.BugType, Message: r.Message,
		Region: r.RegionAt,
	}
	for _, t := range r.Trace {
		d.Trace = append(d.Trace, fmt.Sprintf("%d: %s", t.Pos.Line, t.Note))
	}
	if len(d.Trace) > 8 {
		d.Trace = d.Trace[len(d.Trace)-8:]
	}
	return d
}

// Render formats the distilled report for the triage prompt.
func (d Distilled) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:%d in %s(): [%s] %s", d.File, d.Line, d.Func, d.BugType, d.Message)
	if d.Region != "" {
		fmt.Fprintf(&sb, " (at %s)", d.Region)
	}
	for _, t := range d.Trace {
		sb.WriteString("\n  " + t)
	}
	return sb.String()
}

// Verdict is a triage decision.
type Verdict struct {
	Bug    bool
	Reason string
}

// Agent classifies reports.
type Agent struct {
	Corpus *kernel.Corpus
	// FPBugRate is the probability a false report is (incorrectly)
	// labeled "bug"; the paper's agent approved 22 of 72 false reports.
	FPBugRate float64
	// Namespace separates experiments' deterministic draws.
	Namespace string
	// Usage accounts the simulated prompt/response tokens.
	Usage llm.Usage
}

// NewAgent returns a triage agent over the corpus ground truth.
func NewAgent(c *kernel.Corpus) *Agent {
	return &Agent{Corpus: c, FPBugRate: 0.32}
}

// IsTruePositive consults ground truth: the report must land in a seeded
// bug's function and match its class.
func (a *Agent) IsTruePositive(r *checker.Report) bool {
	bug, ok := a.Corpus.IsBugSite(r.File, r.Func)
	if !ok {
		return false
	}
	return kernel.BugTypeName(bug.Class) == r.BugType
}

// Classify runs the agent once on a report. run distinguishes
// self-consistency resamples (§5.4.1): the same report can get different
// verdicts across runs, but (report, run) is deterministic.
func (a *Agent) Classify(r *checker.Report, run int) Verdict {
	d := Distill(r)
	prompt := llm.TriagePrompt("(patch elided)", r.Checker, d.Render())
	a.Usage.Add(llm.Usage{InputTokens: llm.EstimateTokens(prompt), OutputTokens: 40, Calls: 1})

	if a.IsTruePositive(r) {
		return Verdict{Bug: true, Reason: "matches the target bug pattern; the flagged path is feasible"}
	}
	// A false report: some false reports are inherently convincing and
	// fool the agent on (almost) every run, others are obviously
	// spurious. The per-report convincingness c is fixed; per-run draws
	// vary around it. The exponent keeps the marginal "bug" rate at
	// FPBugRate while making verdicts strongly report-correlated — which
	// is why n-way self-consistency barely improves over a single run
	// (paper §5.4.1).
	c := llm.Roll(a.Namespace, "convincing", r.Key(), r.Message)
	exponent := 1.0/a.FPBugRate - 1.0
	pRun := powFast(c, exponent)
	if llm.Roll(a.Namespace, r.Key(), r.Message, fmt.Sprint(run)) < pRun {
		return Verdict{Bug: true, Reason: "pattern appears to match; could not rule the path infeasible"}
	}
	return Verdict{Bug: false, Reason: "guard or reinitialization on the path makes the report spurious"}
}

// powFast computes c^e for the convincingness curve; inputs are in
// (0,1) and e > 0, so math.Pow edge cases do not arise.
func powFast(c, e float64) float64 {
	if c <= 0 {
		return 0
	}
	if c >= 1 {
		return 1
	}
	return math.Pow(c, e)
}

// MajorityVote classifies with n-way self-consistency: the report is
// labeled "bug" iff at least threshold runs say so (§5.4.1).
func (a *Agent) MajorityVote(r *checker.Report, n, threshold int) Verdict {
	bugVotes := 0
	for run := 0; run < n; run++ {
		if a.Classify(r, run).Bug {
			bugVotes++
		}
	}
	return Verdict{
		Bug:    bugVotes >= threshold,
		Reason: fmt.Sprintf("%d/%d runs voted bug", bugVotes, n),
	}
}
