package triage

import (
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/kernel"
	"knighter/internal/minic"
)

func corpusForTest() *kernel.Corpus {
	return kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
}

func reportAt(file, fn, bugType string, line int) *checker.Report {
	return &checker.Report{
		Checker: "knighter.test", BugType: bugType,
		Message: "test report", File: file, Func: fn,
		Pos: minic.Pos{File: file, Line: line, Col: 1},
		Trace: []checker.TraceStep{
			{Pos: minic.Pos{Line: line - 1}, Note: "assuming 'x' is true"},
		},
	}
}

func TestTruePositivesAlwaysLabeledBug(t *testing.T) {
	c := corpusForTest()
	a := NewAgent(c)
	for _, bug := range c.Bugs {
		r := reportAt(bug.File, bug.Func, kernel.BugTypeName(bug.Class), 10)
		for run := 0; run < 5; run++ {
			if v := a.Classify(r, run); !v.Bug {
				t.Fatalf("TP labeled not-a-bug (bug %s, run %d)", bug.ID, run)
			}
		}
	}
}

func TestClassMismatchIsNotTruePositive(t *testing.T) {
	c := corpusForTest()
	a := NewAgent(c)
	bug := c.Bugs[0]
	wrongType := "Concurrency"
	if kernel.BugTypeName(bug.Class) == wrongType {
		wrongType = "Memory-Leak"
	}
	r := reportAt(bug.File, bug.Func, wrongType, 10)
	if a.IsTruePositive(r) {
		t.Error("class-mismatched report counted as TP")
	}
}

func TestFalseReportLabelRateNearCalibration(t *testing.T) {
	c := corpusForTest()
	a := NewAgent(c)
	a.FPBugRate = 0.32
	bugLabels := 0
	const n = 600
	for i := 0; i < n; i++ {
		r := reportAt("not/a/real/file.c", "no_such_fn", "Null-Pointer-Dereference", i+1)
		if a.Classify(r, 0).Bug {
			bugLabels++
		}
	}
	rate := float64(bugLabels) / n
	if rate < 0.22 || rate > 0.42 {
		t.Errorf("FP bug-label rate = %.2f, want ≈ 0.32", rate)
	}
}

func TestVerdictsAreReportCorrelated(t *testing.T) {
	// The same false report should get mostly-consistent verdicts across
	// runs (the §5.4.1 self-consistency finding), i.e. per-report flip
	// rates are bimodal rather than iid.
	c := corpusForTest()
	a := NewAgent(c)
	consistent := 0
	const reports = 200
	for i := 0; i < reports; i++ {
		r := reportAt("fake.c", "fn", "Misuse", i+1)
		first := a.Classify(r, 0).Bug
		same := 0
		for run := 1; run <= 4; run++ {
			if a.Classify(r, run).Bug == first {
				same++
			}
		}
		if same == 4 {
			consistent++
		}
	}
	if consistent < reports/2 {
		t.Errorf("only %d/%d reports fully consistent across runs; verdicts look iid", consistent, reports)
	}
}

func TestMajorityVoteMonotoneInThreshold(t *testing.T) {
	c := corpusForTest()
	a := NewAgent(c)
	for i := 0; i < 100; i++ {
		r := reportAt("fake.c", "fn", "Misuse", i+1)
		v3 := a.MajorityVote(r, 5, 3).Bug
		v4 := a.MajorityVote(r, 5, 4).Bug
		if v4 && !v3 {
			t.Fatal("t=4 bug but t=3 not-a-bug: majority voting not monotone")
		}
	}
}

func TestDistillAndRender(t *testing.T) {
	r := reportAt("drivers/spi/x.c", "probe_fn", "Null-Pointer-Dereference", 42)
	r.RegionAt = "p->count"
	d := Distill(r)
	if d.File != "drivers/spi/x.c" || d.Line != 42 || d.Func != "probe_fn" {
		t.Errorf("distilled = %+v", d)
	}
	text := d.Render()
	for _, want := range []string{"drivers/spi/x.c:42", "probe_fn()", "Null-Pointer-Dereference", "p->count", "assuming"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestDistillTruncatesLongTraces(t *testing.T) {
	r := reportAt("f.c", "fn", "Misuse", 1)
	r.Trace = nil
	for i := 0; i < 30; i++ {
		r.Trace = append(r.Trace, checker.TraceStep{Pos: minic.Pos{Line: i}, Note: "step"})
	}
	d := Distill(r)
	if len(d.Trace) > 8 {
		t.Errorf("trace not distilled: %d steps", len(d.Trace))
	}
}

func TestUsageAccounted(t *testing.T) {
	c := corpusForTest()
	a := NewAgent(c)
	r := reportAt("f.c", "fn", "Misuse", 1)
	a.Classify(r, 0)
	if a.Usage.Calls != 1 || a.Usage.InputTokens == 0 {
		t.Errorf("usage = %+v", a.Usage)
	}
}
