package kernel

import (
	"fmt"
	"math/rand"
	"strings"
)

// Bug class labels (the Table 1 taxonomy).
const (
	ClassNPD         = "NPD"
	ClassIntOver     = "Integer-Overflow"
	ClassOOB         = "Out-of-Bound"
	ClassBufOver     = "Buffer-Overflow"
	ClassMemLeak     = "Memory-Leak"
	ClassUAF         = "Use-After-Free"
	ClassDoubleFree  = "Double-Free"
	ClassUBI         = "UBI"
	ClassConcurrency = "Concurrency"
	ClassMisuse      = "Misuse"
)

// AllClasses lists the ten categories in Table 1 order.
var AllClasses = []string{
	ClassNPD, ClassIntOver, ClassOOB, ClassBufOver, ClassMemLeak,
	ClassUAF, ClassDoubleFree, ClassUBI, ClassConcurrency, ClassMisuse,
}

// BugTypeName maps a class label to the human bug-type string checkers
// report.
func BugTypeName(class string) string {
	switch class {
	case ClassNPD:
		return "Null-Pointer-Dereference"
	case ClassUBI:
		return "Use-Before-Initialization"
	default:
		return class
	}
}

// Pattern describes one bug idiom anchored on an API ("flavor"): how to
// render a buggy and a fixed version of a function exhibiting it, plus
// commit-message templates.
type Pattern struct {
	Class  string
	Flavor string
	// Render produces a self-contained buggy and fixed source file pair
	// using the given names.
	Render func(nm *NameSet, r *rand.Rand) (buggy, fixed string)
	// Subject and DetailBody template a commit message; %[1]s is the
	// function name, %[2]s the flavor API.
	Subject    string
	DetailBody string
}

// PatternFor returns the registered pattern for (class, flavor), or nil.
func PatternFor(class, flavor string) *Pattern {
	for _, p := range Patterns {
		if p.Class == class && p.Flavor == flavor {
			return p
		}
	}
	return nil
}

// FlavorsOf returns the flavors registered for a class, in order.
func FlavorsOf(class string) []string {
	var out []string
	for _, p := range Patterns {
		if p.Class == class {
			out = append(out, p.Flavor)
		}
	}
	return out
}

// allocCall renders a call to an allocator flavor with idiomatic args.
func allocCall(flavor string, sizeExpr string) string {
	switch {
	case strings.HasPrefix(flavor, "devm_"):
		return fmt.Sprintf("%s(&pdev->dev, %s, GFP_KERNEL)", flavor, sizeExpr)
	case flavor == "kcalloc" || flavor == "devm_kcalloc":
		return fmt.Sprintf("%s(8, %s, GFP_KERNEL)", flavor, sizeExpr)
	case flavor == "kstrdup" || flavor == "devm_kstrdup":
		return fmt.Sprintf("%s(name, GFP_KERNEL)", flavor)
	case flavor == "kmemdup":
		return fmt.Sprintf("kmemdup(src, %s, GFP_KERNEL)", sizeExpr)
	case flavor == "vzalloc" || flavor == "kvzalloc" || flavor == "vmalloc":
		if flavor == "vmalloc" || flavor == "vzalloc" {
			return fmt.Sprintf("%s(%s)", flavor, sizeExpr)
		}
		return fmt.Sprintf("%s(%s, GFP_KERNEL)", flavor, sizeExpr)
	case flavor == "alloc_workqueue":
		return "alloc_workqueue(name, 0, 0)"
	default:
		return fmt.Sprintf("%s(%s, GFP_KERNEL)", flavor, sizeExpr)
	}
}

// npdPattern builds the missing-NULL-check pattern for one allocator.
func npdPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassNPD,
		Flavor:  flavor,
		Subject: fmt.Sprintf("Fix a possible null pointer dereference after %s", flavor),
		DetailBody: fmt.Sprintf(
			"In function %%[1]s, there is a potential null pointer that may be\n"+
				"caused by a failed memory allocation by the function %s. Hence, a\n"+
				"null pointer check needs to be added to prevent null pointer\n"+
				"dereferencing later in the code.", flavor),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			alloc := allocCall(flavor, fmt.Sprintf("sizeof(struct %s)", nm.Struct))
			header := fmt.Sprintf(`struct %s {
	int %s;
	int %s;
};

static int %s(struct platform_device *pdev, char *name)
{
	struct %s *%s;
	%s = %s;
`, nm.Struct, nm.Field, nm.Field2, nm.Fn, nm.Struct, nm.Ptr, nm.Ptr, alloc)
			tail := fmt.Sprintf(`	%s->%s = 0;
	platform_set_drvdata(pdev, %s);
	return 0;
}
`, nm.Ptr, nm.Field, nm.Ptr)
			buggy := header + tail
			fixed := header + fmt.Sprintf("\tif (!%s)\n\t\treturn -ENOMEM;\n", nm.Ptr) + tail
			return buggy, fixed
		},
	}
}

// intOverPattern builds the unchecked size-multiplication pattern.
func intOverPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassIntOver,
		Flavor:  flavor,
		Subject: fmt.Sprintf("Fix integer overflow in %s size computation", flavor),
		DetailBody: fmt.Sprintf(
			"The allocation size passed to %s is computed by multiplying a\n"+
				"user-controlled count by the element size without checking for\n"+
				"overflow. On 32-bit the product can wrap, leading to a short\n"+
				"allocation and subsequent heap corruption. Bound the count before\n"+
				"the multiplication.", flavor),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			elem := []int{8, 16, 32, 64}[r.Intn(4)]
			bound := []int{256, 1024, 4096}[r.Intn(3)]
			header := fmt.Sprintf(`static int %s(struct platform_device *pdev, size_t %s)
{
	u8 *table;
`, nm.Fn, nm.Size)
			allocStmt := fmt.Sprintf("\ttable = %s;\n", allocCall(flavor, fmt.Sprintf("%s * %d", nm.Size, elem)))
			tail := `	if (!table)
		return -ENOMEM;
	setup_table(pdev, table);
	return 0;
}
`
			buggy := header + allocStmt + tail
			fixed := header +
				fmt.Sprintf("\tif (%s > %d)\n\t\treturn -EINVAL;\n", nm.Size, bound) +
				allocStmt + tail
			return buggy, fixed
		},
	}
}

// oobPattern builds the untrusted-index pattern for one decoder.
func oobPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassOOB,
		Flavor:  flavor,
		Subject: fmt.Sprintf("Fix out-of-bounds read with index from %s", flavor),
		DetailBody: fmt.Sprintf(
			"The index obtained from %s comes straight from the wire and is\n"+
				"used to subscript a fixed-size table without validation, allowing\n"+
				"an out-of-bounds access. Validate the index against the table\n"+
				"size first.", flavor),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static int %s(struct sk_buff *skb)
{
	u32 map[%d];
	int %s;

	load_map(skb, map);
	%s = %s(skb->data);
`, nm.Fn, nm.TabLen, nm.Idx, nm.Idx, flavor)
			tail := fmt.Sprintf("\treturn map[%s];\n}\n", nm.Idx)
			buggy := header + tail
			fixed := header + fmt.Sprintf("\tif (%s >= %d)\n\t\treturn -EINVAL;\n", nm.Idx, nm.TabLen) + tail
			return buggy, fixed
		},
	}
}

// bufOverPattern builds the unbounded copy_from_user pattern; the flavor
// distinguishes the surrounding handler context.
func bufOverPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassBufOver,
		Flavor:  flavor,
		Subject: "Fix possible buffer overflow in " + flavor + " write handler",
		DetailBody: "The write handler copies nbytes from userspace into a fixed\n" +
			"on-stack buffer without limiting the size, so a large write\n" +
			"overflows the buffer. Clamp the copy to sizeof(buf) - 1 so a\n" +
			"trailing NUL always fits.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static ssize_t %s_write(struct file *file, char *ubuf, size_t %s)
{
	char %s[%d];

	memset(%s, 0, sizeof(%s));
`, nm.Fn, nm.Size, nm.Buf, nm.BufLen, nm.Buf, nm.Buf)
			tail := fmt.Sprintf(`	%s_apply(file, %s);
	return %s;
}
`, nm.Chip, nm.Buf, nm.Size)
			buggy := header + fmt.Sprintf("\tif (copy_from_user(%s, ubuf, %s))\n\t\treturn -EFAULT;\n", nm.Buf, nm.Size) + tail
			fixed := header + fmt.Sprintf(`	size_t bsize;
	bsize = min(%s, sizeof(%s) - 1);
	if (copy_from_user(%s, ubuf, bsize))
		return -EFAULT;
`, nm.Size, nm.Buf, nm.Buf) + tail
			return buggy, fixed
		},
	}
}

// memLeakPattern builds the leak-on-error-path pattern.
func memLeakPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassMemLeak,
		Flavor:  flavor,
		Subject: fmt.Sprintf("Fix memory leak of %s buffer on error path", flavor),
		DetailBody: fmt.Sprintf(
			"When the hardware init step fails, the function returns without\n"+
				"releasing the buffer allocated with %s earlier, leaking it on\n"+
				"every failed probe. Free the buffer before returning the error.", flavor),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	u8 *%s;
	int ret;

	%s = %s;
	if (!%s)
		return -ENOMEM;
	ret = %s_hw_init(pdev);
`, nm.Fn, nm.Buf, nm.Buf, allocCall(flavor, fmt.Sprintf("%d", nm.BufLen)), nm.Buf, nm.Chip)
			tail := fmt.Sprintf(`	%s_apply(pdev, %s);
	kfree(%s);
	return 0;
}
`, nm.Chip, nm.Buf, nm.Buf)
			buggy := header + "\tif (ret)\n\t\treturn ret;\n" + tail
			fixed := header + fmt.Sprintf("\tif (ret) {\n\t\tkfree(%s);\n\t\treturn ret;\n\t}\n", nm.Buf) + tail
			return buggy, fixed
		},
	}
}

// uafPattern builds the use-after-free pattern; the free_netdev flavor
// mirrors the paper's CVE-2025-21715 case study.
func uafPattern(flavor string) *Pattern {
	switch flavor {
	case "free_netdev":
		return &Pattern{
			Class:   ClassUAF,
			Flavor:  flavor,
			Subject: "Fix use-after-free of private data in remove path",
			DetailBody: "free_netdev() releases the net_device together with its private\n" +
				"area obtained via netdev_priv(), so the private data must not be\n" +
				"touched after the free. Move free_netdev() after all accesses to\n" +
				"the private data.",
			Render: func(nm *NameSet, r *rand.Rand) (string, string) {
				header := fmt.Sprintf(`struct %s {
	int %s;
};

static void %s(struct platform_device *pdev)
{
	struct net_device *ndev = platform_get_drvdata(pdev);
	struct %s *%s = netdev_priv(ndev);

`, nm.Struct, nm.Field, nm.Fn, nm.Struct, nm.Ptr)
				use := fmt.Sprintf("\tif (%s->%s)\n\t\tregulator_disable(%s->%s);\n", nm.Ptr, nm.Field, nm.Ptr, nm.Field)
				buggy := header + "\tfree_netdev(ndev);\n" + use + "}\n"
				fixed := header + use + "\tfree_netdev(ndev);\n}\n"
				return buggy, fixed
			},
		}
	default: // kfree-style ordering flavors
		return &Pattern{
			Class:   ClassUAF,
			Flavor:  flavor,
			Subject: fmt.Sprintf("Fix use-after-free: %s called before last use", flavor),
			DetailBody: fmt.Sprintf(
				"The object is released with %s and then dereferenced to log its\n"+
					"state, a use-after-free. Reorder the free after the final use.", flavor),
			Render: func(nm *NameSet, r *rand.Rand) (string, string) {
				header := fmt.Sprintf(`struct %s {
	int %s;
};

static void %s(struct %s *%s)
{
`, nm.Struct, nm.Field, nm.Fn, nm.Struct, nm.Ptr)
				use := fmt.Sprintf("\tlog_state(%s->%s);\n", nm.Ptr, nm.Field)
				free := fmt.Sprintf("\t%s(%s);\n", flavor, nm.Ptr)
				buggy := header + free + use + "}\n"
				fixed := header + use + free + "}\n"
				return buggy, fixed
			},
		}
	}
}

// doubleFreePattern builds the duplicated-release pattern. fixStyle is
// "clear" (NULL the pointer after the first release, the common kernel
// fix) or "remove" (drop the duplicated release entirely).
func doubleFreePattern(flavor, fixStyle string) *Pattern {
	return &Pattern{
		Class:   ClassDoubleFree,
		Flavor:  flavor,
		Subject: fmt.Sprintf("Fix double free via duplicated %s on error path", flavor),
		DetailBody: fmt.Sprintf(
			"The descriptor is released with %s both in the failure branch and\n"+
				"in the common error label, so a failing reset frees it twice.", flavor),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`struct %s {
	u8 *%s;
};

static int %s(struct %s *ctx, struct platform_device *pdev)
{
	%s(ctx->%s);
`, nm.Struct, nm.Ptr2, nm.Fn, nm.Struct, flavor, nm.Ptr2)
			tail := fmt.Sprintf(`	if (%s_reset(pdev))
		goto %s;
	return 0;
%s:
	%s(ctx->%s);
	return -EIO;
}
`, nm.Chip, nm.Label, nm.Label, flavor, nm.Ptr2)
			buggy := header + tail
			var fixed string
			if fixStyle == "remove" {
				fixed = header + fmt.Sprintf(`	if (%s_reset(pdev))
		goto %s;
	return 0;
%s:
	return -EIO;
}
`, nm.Chip, nm.Label, nm.Label)
			} else {
				fixed = header + fmt.Sprintf("\tctx->%s = NULL;\n", nm.Ptr2) + tail
			}
			return buggy, fixed
		},
	}
}

// ubiPattern builds the uninitialized-cleanup-pointer pattern (paper
// Fig. 8a, commit 90ca6956d383).
func ubiPattern(flavor string) *Pattern {
	return &Pattern{
		Class:   ClassUBI,
		Flavor:  flavor,
		Subject: "Fix freeing uninitialized pointer in early-return path",
		DetailBody: "The __free(" + flavor + ") auto-cleanup pointer is declared without an\n" +
			"initializer, so the early parameter-validation return runs the\n" +
			"cleanup handler on a garbage pointer. Initialize it to NULL.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`struct %s_caps {
	int %s;
};

static int %s(struct ice_port_info *pi, int mode)
{
`, nm.Chip, nm.Field, nm.Fn)
			declBuggy := fmt.Sprintf("\tstruct %s_caps *pcaps __free(%s);\n", nm.Chip, flavor)
			declFixed := fmt.Sprintf("\tstruct %s_caps *pcaps __free(%s) = NULL;\n", nm.Chip, flavor)
			tail := fmt.Sprintf(`	if (!pi)
		return -EINVAL;
	pcaps = kzalloc(sizeof(struct %s_caps), GFP_KERNEL);
	if (!pcaps)
		return -ENOMEM;
	%s_fill_caps(pi, pcaps);
	return 0;
}
`, nm.Chip, nm.Chip)
			return header + declBuggy + tail, header + declFixed + tail
		},
	}
}

// concurrencyPattern builds the missing-unlock-on-early-return pattern.
func concurrencyPattern(lockFn, unlockFn string) *Pattern {
	return &Pattern{
		Class:   ClassConcurrency,
		Flavor:  lockFn,
		Subject: fmt.Sprintf("Fix missing %s on error path", unlockFn),
		DetailBody: fmt.Sprintf(
			"The early validation return leaves the function without calling\n"+
				"%s, so the lock taken with %s is never released and the next\n"+
				"writer deadlocks. Unlock before returning the error.", unlockFn, lockFn),
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`struct %s {
	int %s;
	int %s;
};

static int %s(struct %s *dev, int val)
{
	%s(&dev->%s);
`, nm.Struct, nm.Lock, nm.Field, nm.Fn, nm.Struct, lockFn, nm.Lock)
			tail := fmt.Sprintf(`	dev->%s = val;
	%s(&dev->%s);
	return 0;
}
`, nm.Field, unlockFn, nm.Lock)
			buggy := header + "\tif (val < 0)\n\t\treturn -EINVAL;\n" + tail
			fixed := header + fmt.Sprintf("\tif (val < 0) {\n\t\t%s(&dev->%s);\n\t\treturn -EINVAL;\n\t}\n", unlockFn, nm.Lock) + tail
			return buggy, fixed
		},
	}
}

// misuseUntermPattern: parsing a user buffer that may lack a NUL.
func misuseUntermPattern() *Pattern {
	return &Pattern{
		Class:   ClassMisuse,
		Flavor:  "sscanf_unterminated",
		Subject: "Fix string parsing of unterminated user buffer",
		DetailBody: "copy_from_user() does not NUL-terminate the destination, but the\n" +
			"buffer is then handed to sscanf(), which requires a terminated\n" +
			"string; a size-long write leaves the buffer unterminated and\n" +
			"sscanf reads past the end. Store a trailing zero after the copy.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static ssize_t %s_store(struct device *dev, char *ubuf, size_t %s)
{
	char %s[%d];
	int val;

	if (%s > sizeof(%s) - 1)
		return -EINVAL;
	if (copy_from_user(%s, ubuf, %s))
		return -EFAULT;
`, nm.Fn, nm.Size, nm.Buf, nm.BufLen, nm.Size, nm.Buf, nm.Buf, nm.Size)
			tail := fmt.Sprintf(`	sscanf(%s, "%%d", &val);
	%s_set_level(dev, val);
	return %s;
}
`, nm.Buf, nm.Chip, nm.Size)
			buggy := header + tail
			fixed := header + fmt.Sprintf("\t%s[%s] = 0;\n", nm.Buf, nm.Size) + tail
			return buggy, fixed
		},
	}
}

// misuseIrqPattern: platform_get_irq() result used without a sign check.
func misuseIrqPattern() *Pattern {
	return &Pattern{
		Class:   ClassMisuse,
		Flavor:  "platform_get_irq",
		Subject: "Fix unchecked platform_get_irq() result",
		DetailBody: "platform_get_irq() returns a negative errno on failure, and\n" +
			"passing that negative value to request_irq() registers a bogus\n" +
			"interrupt line. Check the result before requesting the IRQ.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	int irq;

	irq = platform_get_irq(pdev, 0);
`, nm.Fn)
			tail := fmt.Sprintf("\treturn request_irq(irq, %s_isr);\n}\n", nm.Chip)
			buggy := header + tail
			fixed := header + "\tif (irq < 0)\n\t\treturn irq;\n" + tail
			return buggy, fixed
		},
	}
}

// Patterns is the full registry: every (class, flavor) the corpus,
// commit dataset, and oracle know about.
var Patterns = buildPatterns()

func buildPatterns() []*Pattern {
	var ps []*Pattern
	// NPD: hand-labeled flavors first, then auto-collected flavors.
	for _, f := range []string{
		"devm_kzalloc", "kzalloc", "kmalloc", "kcalloc", "kstrdup", "devm_ioremap",
		// auto-collected NPD flavors
		"devm_kcalloc", "kmemdup", "vzalloc", "kvzalloc", "devm_kmalloc",
		"kzalloc_node", "alloc_workqueue", "devm_kstrdup",
	} {
		ps = append(ps, npdPattern(f))
	}
	for _, f := range []string{"kmalloc", "kzalloc", "kvmalloc", "vmalloc", "dma_alloc_coherent", "sock_kmalloc", "usb_alloc_coherent"} {
		ps = append(ps, intOverPattern(f))
	}
	for _, f := range []string{"le16_to_cpu", "le32_to_cpu", "be16_to_cpu", "get_unaligned_le16", "simple_strtoul", "hex_to_bin"} {
		ps = append(ps, oobPattern(f))
	}
	for _, f := range []string{"debugfs", "sysfs", "procfs", "tracefs", "netdevsim"} {
		ps = append(ps, bufOverPattern(f))
	}
	for _, f := range []string{"kmalloc", "kzalloc", "kmemdup", "vmalloc", "kvzalloc"} {
		ps = append(ps, memLeakPattern(f))
	}
	for _, f := range []string{"free_netdev", "kfree", "usb_free_urb", "vfree", "kvfree", "mmc_free_host", "dma_free_coherent"} {
		ps = append(ps, uafPattern(f))
	}
	for _, f := range []string{"kfree", "vfree", "kvfree", "usb_free_urb", "bio_put", "mmc_free_host", "sock_release"} {
		ps = append(ps, doubleFreePattern(f, "clear"))
	}
	// The crypto flavor's historical fix removed the duplicated release
	// instead of NULL-clearing, which is what lets a syntactic checker
	// validate against it (and later fail refinement on the corpus).
	ps = append(ps, doubleFreePattern("crypto_free_shash", "remove"))
	for _, f := range []string{"kfree", "x509_free_certificate", "fwnode_handle_put", "put_device", "bitmap_free"} {
		ps = append(ps, ubiPattern(f))
	}
	ps = append(ps,
		concurrencyPattern("spin_lock", "spin_unlock"),
		concurrencyPattern("mutex_lock", "mutex_unlock"),
		concurrencyPattern("spin_lock_irqsave", "spin_unlock_irqrestore"),
		concurrencyPattern("read_lock", "read_unlock"),
		concurrencyPattern("write_lock", "write_unlock"),
	)
	ps = append(ps, misuseUntermPattern(), misuseIrqPattern())
	// Misuse variants that anchor on other APIs but reuse the two
	// mechanics (sign-check and termination).
	ps = append(ps, &Pattern{
		Class:   ClassMisuse,
		Flavor:  "of_irq_get",
		Subject: "Fix unchecked of_irq_get() result",
		DetailBody: "of_irq_get() can return a negative errno which must not be\n" +
			"passed to devm_request_irq() unchecked.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	int irq;

	irq = of_irq_get(pdev, 0);
`, nm.Fn)
			tail := fmt.Sprintf("\treturn devm_request_irq(irq, %s_isr);\n}\n", nm.Chip)
			return header + tail, header + "\tif (irq < 0)\n\t\treturn irq;\n" + tail
		},
	}, &Pattern{
		Class:   ClassMisuse,
		Flavor:  "strscpy_nul",
		Subject: "Fix strim() on unterminated buffer",
		DetailBody: "The buffer filled by copy_from_user() is passed to strim() which\n" +
			"requires NUL termination.",
		Render: func(nm *NameSet, r *rand.Rand) (string, string) {
			header := fmt.Sprintf(`static ssize_t %s_store(struct device *dev, char *ubuf, size_t %s)
{
	char %s[%d];

	if (%s > sizeof(%s) - 1)
		return -EINVAL;
	if (copy_from_user(%s, ubuf, %s))
		return -EFAULT;
`, nm.Fn, nm.Size, nm.Buf, nm.BufLen, nm.Size, nm.Buf, nm.Buf, nm.Size)
			tail := fmt.Sprintf("\tstrim(%s);\n\treturn %s;\n}\n", nm.Buf, nm.Size)
			return header + tail, header + fmt.Sprintf("\t%s[%s] = 0;\n", nm.Buf, nm.Size) + tail
		},
	})
	return ps
}
