package kernel

import (
	"math/rand"
	"strings"
	"testing"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

func TestEveryPatternRendersParsableCode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, p := range Patterns {
		nm := newNames(r, "drivers")
		buggy, fixed := p.Render(nm, r)
		if _, err := minic.ParseFile("buggy.c", buggy); err != nil {
			t.Errorf("%s/%s buggy does not parse: %v\n%s", p.Class, p.Flavor, err, buggy)
		}
		if _, err := minic.ParseFile("fixed.c", fixed); err != nil {
			t.Errorf("%s/%s fixed does not parse: %v\n%s", p.Class, p.Flavor, err, fixed)
		}
		if buggy == fixed {
			t.Errorf("%s/%s: buggy and fixed are identical", p.Class, p.Flavor)
		}
	}
}

func TestEveryBaitRendersParsableCode(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	kinds := []BaitKind{BaitUnlikelyCheck, BaitHelperBound, BaitCleanupAssigned,
		BaitTerminatedBuf, BaitWarnOnCheck, BaitFreeReassign, BaitFreeClearFree}
	for _, k := range kinds {
		nm := newNames(r, "drivers")
		src := baitFunc(k, "kzalloc", nm, r)
		if src == "" {
			t.Errorf("bait %s rendered empty", k)
			continue
		}
		if _, err := minic.ParseFile("bait.c", src); err != nil {
			t.Errorf("bait %s does not parse: %v\n%s", k, err, src)
		}
	}
}

func TestBenignFunctionsParse(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		nm := newNames(r, "drivers")
		src := benignFunc(nm, r)
		if _, err := minic.ParseFile("benign.c", src); err != nil {
			t.Fatalf("benign %d does not parse: %v\n%s", i, err, src)
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	c1 := Generate(Config{Seed: 42, Scale: 0.1})
	c2 := Generate(Config{Seed: 42, Scale: 0.1})
	if len(c1.Files) != len(c2.Files) || len(c1.Bugs) != len(c2.Bugs) {
		t.Fatal("corpus generation is not deterministic in shape")
	}
	for i := range c1.Files {
		if c1.Files[i].Src != c2.Files[i].Src {
			t.Fatalf("file %s differs between runs", c1.Files[i].Path)
		}
	}
	c3 := Generate(Config{Seed: 43, Scale: 0.1})
	same := true
	for i := range c1.Files {
		if i < len(c3.Files) && c1.Files[i].Src != c3.Files[i].Src {
			same = false
		}
	}
	if same && len(c1.Files) == len(c3.Files) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCorpusShape(t *testing.T) {
	c := Generate(Config{Seed: 1})
	if len(c.Bugs) != 92 {
		t.Errorf("seeded bugs = %d, want 92", len(c.Bugs))
	}
	// Fig 9a totals per class.
	byClass := map[string]int{}
	for _, b := range c.Bugs {
		byClass[b.Class]++
	}
	want := map[string]int{
		ClassNPD: 54, ClassIntOver: 16, ClassMisuse: 7, ClassConcurrency: 4,
		ClassOOB: 3, ClassMemLeak: 3, ClassBufOver: 3, ClassUAF: 1, ClassUBI: 1,
	}
	for cls, n := range want {
		if byClass[cls] != n {
			t.Errorf("class %s: %d bugs, want %d", cls, byClass[cls], n)
		}
	}
	if byClass[ClassDoubleFree] != 0 {
		t.Errorf("double-free latent bugs = %d, want 0", byClass[ClassDoubleFree])
	}
	// Fig 9b: drivers must dominate.
	bySub := map[string]int{}
	for _, b := range c.Bugs {
		bySub[b.Subsystem]++
	}
	if bySub["drivers"] != 67 {
		t.Errorf("drivers bugs = %d, want 67", bySub["drivers"])
	}
	// Fig 9a split: 24 hand NPD + 30 auto NPD.
	auto := 0
	for _, b := range c.Bugs {
		if b.FromAuto {
			auto++
		}
	}
	if auto != 30 {
		t.Errorf("auto-collected bugs = %d, want 30", auto)
	}
}

func TestCorpusLifetimes(t *testing.T) {
	c := Generate(Config{Seed: 1})
	var totalYears float64
	buckets := map[int]int{}
	for _, b := range c.Bugs {
		years := c.NowDate.Sub(b.Introduced).Hours() / 24 / 365.25
		totalYears += years
		switch {
		case years < 1:
			buckets[0]++
		case years < 2:
			buckets[1]++
		case years < 5:
			buckets[2]++
		case years < 10:
			buckets[3]++
		case years < 15:
			buckets[4]++
		default:
			buckets[5]++
		}
	}
	mean := totalYears / float64(len(c.Bugs))
	if mean < 3.0 || mean > 6.0 {
		t.Errorf("mean lifetime = %.1f years, want ~4.3", mean)
	}
	if buckets[0] != 26 || buckets[1] != 16 || buckets[2] != 22 ||
		buckets[3] != 16 || buckets[4] != 7 || buckets[5] != 5 {
		t.Errorf("lifetime buckets = %v, want [26 16 22 16 7 5]", buckets)
	}
}

func TestEveryCorpusFileParses(t *testing.T) {
	c := Generate(Config{Seed: 5, Scale: 0.25})
	for _, f := range c.Files {
		if _, err := minic.ParseFile(f.Path, f.Src); err != nil {
			t.Fatalf("%s does not parse: %v", f.Path, err)
		}
	}
}

func TestCorpusAnalyzableWithoutCrash(t *testing.T) {
	c := Generate(Config{Seed: 5, Scale: 0.1})
	for _, f := range c.Files {
		pf, err := minic.ParseFile(f.Path, f.Src)
		if err != nil {
			t.Fatalf("parse %s: %v", f.Path, err)
		}
		res := engine.AnalyzeFile(pf, engine.Options{Checkers: []checker.Checker{}})
		if len(res.RuntimeErrs) != 0 {
			t.Fatalf("%s: runtime errors: %v", f.Path, res.RuntimeErrs)
		}
	}
}

func TestHandCommitDataset(t *testing.T) {
	store := BuildHandCommits(11)
	if store.Len() != 61 {
		t.Fatalf("hand commits = %d, want 61", store.Len())
	}
	perClass := map[string]int{}
	for _, c := range store.All() {
		perClass[c.Class]++
		if c.Before == c.After {
			t.Errorf("commit %s has no change", c.ID)
		}
		if c.Diff() == "" {
			t.Errorf("commit %s has empty diff", c.ID)
		}
		if _, err := minic.ParseFile(c.File, c.Before); err != nil {
			t.Errorf("commit %s buggy side does not parse: %v", c.ID, err)
		}
		if _, err := minic.ParseFile(c.File, c.After); err != nil {
			t.Errorf("commit %s fixed side does not parse: %v", c.ID, err)
		}
	}
	want := map[string]int{
		ClassNPD: 6, ClassIntOver: 7, ClassOOB: 6, ClassBufOver: 5,
		ClassMemLeak: 5, ClassUAF: 7, ClassDoubleFree: 8, ClassUBI: 5,
		ClassConcurrency: 5, ClassMisuse: 7,
	}
	for cls, n := range want {
		if perClass[cls] != n {
			t.Errorf("class %s: %d commits, want %d (Table 1)", cls, perClass[cls], n)
		}
	}
}

func TestAutoCommitDataset(t *testing.T) {
	store := BuildAutoNPDCommits(13, 100)
	if store.Len() != 100 {
		t.Fatalf("auto commits = %d, want 100", store.Len())
	}
	for _, c := range store.All() {
		if c.Class != ClassNPD || !c.AutoCollected {
			t.Fatalf("auto commit %s mislabeled: %s auto=%v", c.ID, c.Class, c.AutoCollected)
		}
	}
}

func TestCommitDiffLooksLikeAPatch(t *testing.T) {
	store := BuildHandCommits(11)
	c := store.ByClass(ClassNPD)[0]
	d := c.Diff()
	if !strings.Contains(d, "--- a/") || !strings.Contains(d, "+++ b/") ||
		!strings.Contains(d, "@@") || !strings.Contains(d, "+") {
		t.Errorf("diff malformed:\n%s", d)
	}
	// The NPD fix adds a NULL check.
	if !strings.Contains(d, "return -ENOMEM") {
		t.Errorf("NPD diff should add -ENOMEM return:\n%s", d)
	}
}

func TestBugTypeNames(t *testing.T) {
	if BugTypeName(ClassNPD) != "Null-Pointer-Dereference" {
		t.Error("NPD name wrong")
	}
	if BugTypeName(ClassUBI) != "Use-Before-Initialization" {
		t.Error("UBI name wrong")
	}
	if BugTypeName(ClassMemLeak) != "Memory-Leak" {
		t.Error("pass-through name wrong")
	}
}

func TestGroundTruthLookups(t *testing.T) {
	c := Generate(Config{Seed: 1, Scale: 0.25})
	b := c.Bugs[0]
	got, ok := c.IsBugSite(b.File, b.Func)
	if !ok || got.ID != b.ID {
		t.Error("IsBugSite failed for a known bug")
	}
	if _, ok := c.IsBugSite("nonexistent.c", "nope"); ok {
		t.Error("IsBugSite false positive")
	}
	bait := c.Baits[0]
	if _, ok := c.BaitAt(bait.File, bait.Func); !ok {
		t.Error("BaitAt failed for a known bait")
	}
}
