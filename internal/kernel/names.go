// Package kernel generates the synthetic Linux-like corpus the
// reproduction analyzes: a deterministic source tree across kernel
// subsystems with seeded ground-truth bugs (the latent vulnerabilities of
// §5.2), FP-bait idioms that exercise the refinement loop, and the
// labeled commit dataset of Table 1.
package kernel

import (
	"fmt"
	"math/rand"
)

// NameSet carries the identifiers one generated function uses. Keeping
// them in one bag makes templates readable and guarantees that a buggy /
// fixed pair uses identical names.
type NameSet struct {
	Fn     string // function name, e.g. "mchp9250_spi_probe"
	Chip   string // device/chip prefix, e.g. "mchp9250"
	Struct string // main struct, e.g. "mchp9250_priv"
	Dev    string // device struct, e.g. "spi_device"
	Field  string // scalar field
	Field2 string // second field
	Ptr    string // pointer variable
	Ptr2   string // second pointer variable
	Buf    string // buffer variable
	Size   string // size variable
	Idx    string // index variable
	Lock   string // lock field
	Label  string // goto label
	BufLen int    // declared buffer length
	TabLen int    // table length
}

var chipVendors = []string{
	"mchp", "nxp", "qcom", "rtl", "bcm", "ti", "st", "amlogic", "sprd",
	"rzg", "imx", "sun8i", "mtk", "exar", "davinci", "xlnx", "cdns",
	"atmel", "mvebu", "tegra", "hisi", "fsl", "omap", "rcar", "ingenic",
}

var chipRoles = map[string][]string{
	"drivers": {"spi", "i2c", "uart", "gpio", "pwm", "adc", "dma", "rtc",
		"wdt", "mmc", "nand", "phy", "can", "eth", "hdmi", "mipi", "csi",
		"tsc", "crypto", "thermal"},
	"sound":   {"codec", "dai", "pcm", "dmic", "amp", "mixer", "ssi", "i2s"},
	"net":     {"mac", "mii", "ptp", "switch", "wifi", "bt", "rmnet", "xdp"},
	"fs":      {"inode", "dentry", "super", "quota", "xattr", "bmap"},
	"samples": {"demo", "example", "probe", "hello"},
	"arch":    {"irqchip", "timer", "pmu", "smp", "cache"},
	"lib":     {"ratelimit", "bitmap", "crc", "sort", "radix"},
	"include": {"helper", "inline", "accessor", "wrapper"},
}

var verbWords = []string{
	"probe", "remove", "init", "setup", "config", "start", "stop",
	"resume", "suspend", "attach", "detach", "enable", "disable",
	"update", "reset", "sync", "flush", "read", "write", "xfer",
}

var fieldWords = []string{
	"count", "state", "mode", "flags", "version", "index", "speed",
	"width", "depth", "mask", "level", "delay", "rate", "threshold",
}

var ptrWords = []string{
	"priv", "ctx", "data", "info", "cfg", "desc", "entry", "node",
	"chan", "port", "ring", "slot",
}

var bufWords = []string{"buf", "mybuf", "kbuf", "tmp", "cmd", "msg", "name"}

var labelWords = []string{"err", "out", "fail", "err_free", "out_unlock", "err_disable"}

// newNames draws a fresh NameSet for a subsystem from the rng.
func newNames(r *rand.Rand, subsystem string) *NameSet {
	roles := chipRoles[subsystem]
	if roles == nil {
		roles = chipRoles["drivers"]
	}
	vendor := chipVendors[r.Intn(len(chipVendors))]
	role := roles[r.Intn(len(roles))]
	chip := fmt.Sprintf("%s%d_%s", vendor, 1000+r.Intn(9000), role)
	verb := verbWords[r.Intn(len(verbWords))]
	lens := []int{16, 32, 64, 128, 256}
	n := &NameSet{
		Chip:   chip,
		Fn:     fmt.Sprintf("%s_%s", chip, verb),
		Struct: chip + "_" + ptrWords[r.Intn(len(ptrWords))],
		Dev:    "platform_device",
		Field:  fieldWords[r.Intn(len(fieldWords))],
		Field2: fieldWords[r.Intn(len(fieldWords))],
		Ptr:    ptrWords[r.Intn(len(ptrWords))],
		Ptr2:   ptrWords[r.Intn(len(ptrWords))],
		Buf:    bufWords[r.Intn(len(bufWords))],
		Size:   []string{"size", "len", "nbytes", "count"}[r.Intn(4)],
		Idx:    []string{"idx", "i", "slot", "pos"}[r.Intn(4)],
		Lock:   []string{"lock", "tx_lock", "list_lock"}[r.Intn(3)],
		Label:  labelWords[r.Intn(len(labelWords))],
		BufLen: lens[r.Intn(len(lens))],
		TabLen: []int{8, 16, 32, 64}[r.Intn(4)],
	}
	if n.Field2 == n.Field {
		n.Field2 = n.Field + "2"
	}
	if n.Ptr2 == n.Ptr {
		n.Ptr2 = n.Ptr + "2"
	}
	return n
}
