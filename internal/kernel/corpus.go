package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"knighter/internal/minic"
)

// SourceFile is one generated file of the corpus.
type SourceFile struct {
	Path      string
	Subsystem string
	Src       string
}

// SeededBug is a ground-truth latent bug planted in the corpus — the
// reproduction's analog of the 92 real vulnerabilities of §5.2.
type SeededBug struct {
	ID         string
	File       string
	Func       string
	Class      string
	Flavor     string
	Subsystem  string
	Introduced time.Time
	// FromAuto marks bugs whose flavor is only covered by the
	// auto-collected commit set (the light-purple split in Fig. 9a/9b).
	FromAuto bool
}

// PlantedBait is a correct function that a naive checker may flag; any
// report against it is a false positive by construction.
type PlantedBait struct {
	File   string
	Func   string
	Kind   BaitKind
	Flavor string
}

// Corpus is the generated source tree plus its ground truth.
type Corpus struct {
	Files []*SourceFile
	Bugs  []SeededBug
	Baits []PlantedBait
	// NowDate anchors bug-lifetime computation.
	NowDate time.Time
}

// IsBugSite reports whether (file, function) hosts a seeded bug of a
// class, and returns it.
func (c *Corpus) IsBugSite(file, fn string) (*SeededBug, bool) {
	for i := range c.Bugs {
		if c.Bugs[i].File == file && c.Bugs[i].Func == fn {
			return &c.Bugs[i], true
		}
	}
	return nil, false
}

// BaitAt returns the planted bait at (file, function), if any.
func (c *Corpus) BaitAt(file, fn string) (*PlantedBait, bool) {
	for i := range c.Baits {
		if c.Baits[i].File == file && c.Baits[i].Func == fn {
			return &c.Baits[i], true
		}
	}
	return nil, false
}

// Config controls corpus generation.
type Config struct {
	Seed int64
	// Scale multiplies the benign-function volume (1.0 = default layout,
	// roughly 2000 functions). Seeded bugs and bait counts are fixed by
	// the plans regardless of scale.
	Scale float64
}

type bugSeed struct {
	class  string
	flavor string
	count  int
	auto   bool
}

// defaultBugPlan plants the latent-bug population whose totals match the
// paper's Fig. 9a distribution (54 NPD — 24 hand + 30 auto — 16 IntOver,
// 7 Misuse, 4 Concurrency, 3 OOB, 3 MemLeak, 3 BufOver, 1 UAF, 1 UBI).
var defaultBugPlan = []bugSeed{
	{ClassNPD, "devm_kzalloc", 8, false},
	{ClassNPD, "kzalloc", 7, false},
	{ClassNPD, "kmalloc", 5, false},
	{ClassNPD, "kcalloc", 4, false},
	{ClassNPD, "devm_kcalloc", 6, true},
	{ClassNPD, "kmemdup", 5, true},
	{ClassNPD, "vzalloc", 4, true},
	{ClassNPD, "kvzalloc", 4, true},
	{ClassNPD, "devm_kmalloc", 4, true},
	{ClassNPD, "kzalloc_node", 3, true},
	{ClassNPD, "alloc_workqueue", 2, true},
	{ClassNPD, "devm_kstrdup", 2, true},
	{ClassIntOver, "kmalloc", 5, false},
	{ClassIntOver, "kzalloc", 4, false},
	{ClassIntOver, "kvmalloc", 4, false},
	{ClassIntOver, "vmalloc", 3, false},
	{ClassOOB, "le16_to_cpu", 2, false},
	{ClassOOB, "le32_to_cpu", 1, false},
	{ClassBufOver, "debugfs", 2, false},
	{ClassBufOver, "sysfs", 1, false},
	{ClassMemLeak, "kmalloc", 2, false},
	{ClassMemLeak, "kzalloc", 1, false},
	{ClassUAF, "free_netdev", 1, false},
	{ClassUBI, "kfree", 1, false},
	{ClassConcurrency, "spin_lock", 2, false},
	{ClassConcurrency, "mutex_lock", 2, false},
	{ClassMisuse, "sscanf_unterminated", 4, false},
	{ClassMisuse, "platform_get_irq", 3, false},
}

type baitSeed struct {
	kind   BaitKind
	flavor string
	count  int
}

// defaultBaitPlan plants false-positive bait. Flavors whose checker must
// go through refinement get >= 20 instances (so the naive checker
// exceeds T_plausible and enters the refinement loop); the rest get a
// handful (residual FP pressure for the triage agent).
var defaultBaitPlan = []baitSeed{
	// Drives NPD refinement (kzalloc/kmalloc commits).
	{BaitUnlikelyCheck, "kzalloc", 24},
	{BaitUnlikelyCheck, "kmalloc", 22},
	{BaitUnlikelyCheck, "devm_kzalloc", 3},
	{BaitUnlikelyCheck, "kcalloc", 2},
	// Drives IntOver refinement (kzalloc/kvmalloc/vmalloc commits).
	{BaitHelperBound, "kzalloc", 22},
	{BaitHelperBound, "kvmalloc", 22},
	{BaitHelperBound, "vmalloc", 21},
	{BaitHelperBound, "kmalloc", 4},
	// Drives UBI refinement (3 cleanup flavors).
	{BaitCleanupAssigned, "kfree", 22},
	{BaitCleanupAssigned, "x509_free_certificate", 21},
	{BaitCleanupAssigned, "fwnode_handle_put", 21},
	{BaitCleanupAssigned, "bitmap_free", 4},
	// Drives Misuse refinement (platform_get_irq flavor).
	{BaitIrqRangeCheck, "platform_get_irq", 22},
	{BaitIrqRangeCheck, "of_irq_get", 3},
	// Residual pressure only: terminate-guarded checkers stay quiet here.
	{BaitTerminatedBuf, "copy_from_user", 4},
	// Drives UAF refinement (kfree flavor).
	{BaitFreeReassign, "kfree", 22},
	// Keeps the crypto double-free checker unrefinable ("fail"): the
	// reinit idiom is outside the refinement repertoire.
	{BaitFreeReinitFree, "crypto_free_shash", 22},
	// Keeps the devm_ioremap NPD checker unrefinable ("fail").
	{BaitWarnOnCheck, "devm_ioremap", 22},
	// Residual FP pressure on plausible checkers (triage-agent food);
	// counts stay below T_plausible margins per flavor.
	{BaitWarnOnCheck, "devm_kzalloc", 8},
	{BaitWarnOnCheck, "kzalloc", 8},
	{BaitWarnOnCheck, "kmalloc", 7},
	{BaitWarnOnCheck, "kcalloc", 9},
	{BaitWarnOnCheck, "devm_kcalloc", 8},
	{BaitWarnOnCheck, "kmemdup", 8},
	{BaitWarnOnCheck, "vzalloc", 8},
	{BaitWarnOnCheck, "kvzalloc", 8},
	{BaitWarnOnCheck, "devm_kmalloc", 8},
	{BaitWarnOnCheck, "kzalloc_node", 8},
	{BaitWarnOnCheck, "alloc_workqueue", 6},
	{BaitWarnOnCheck, "devm_kstrdup", 8},
}

// subsystemLayout fixes the relative file volume per subsystem and the
// seeded-bug allocation, shaped like Fig. 9b (drivers 67/92, ...).
var subsystemLayout = []struct {
	name     string
	files    int
	bugShare int // out of 92
}{
	{"drivers", 190, 67},
	{"sound", 34, 10},
	{"net", 30, 7},
	{"fs", 22, 3},
	{"samples", 6, 2},
	{"arch", 14, 1},
	{"lib", 11, 1},
	{"include", 8, 1},
}

// lifetimeBuckets shapes Fig. 9c: how long the seeded bugs have been
// latent (bucket bounds in years, counts out of 92; mean ≈ 4.3y).
var lifetimeBuckets = []struct {
	minY, maxY float64
	count      int
}{
	{0, 1, 26}, {1, 2, 16}, {2, 5, 22}, {5, 10, 16}, {10, 15, 7}, {15, 22, 5},
}

// Generate builds the corpus deterministically from cfg.
func Generate(cfg Config) *Corpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	now := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	c := &Corpus{NowDate: now}

	// 1. Lay out the files per subsystem.
	type fileSlot struct {
		file   *SourceFile
		names  []*NameSet
		bodies []string
		used   map[string]bool
	}
	var slots []*fileSlot
	slotsBySub := map[string][]*fileSlot{}
	for _, sub := range subsystemLayout {
		n := int(float64(sub.files) * cfg.Scale)
		if n < 3 {
			n = 3
		}
		for i := 0; i < n; i++ {
			nm := newNames(r, sub.name)
			path := filePathFor(sub.name, nm, i)
			fs := &fileSlot{
				file: &SourceFile{Path: path, Subsystem: sub.name},
				used: map[string]bool{},
			}
			fs.names = append(fs.names, nm)
			slots = append(slots, fs)
			slotsBySub[sub.name] = append(slotsBySub[sub.name], fs)
		}
	}

	// freshNames draws a NameSet whose function name is unused in slot.
	freshNames := func(fs *fileSlot) *NameSet {
		for {
			nm := newNames(r, fs.file.Subsystem)
			if !fs.used[nm.Fn] {
				fs.used[nm.Fn] = true
				return nm
			}
		}
	}

	// 2. Plant the latent bugs, honoring the subsystem shares.
	bugSlots := buildBugSubsystems(r)
	bi := 0
	for _, seed := range defaultBugPlan {
		pat := PatternFor(seed.class, seed.flavor)
		if pat == nil {
			panic("kernel: no pattern for " + seed.class + "/" + seed.flavor)
		}
		for k := 0; k < seed.count; k++ {
			sub := bugSlots[bi%len(bugSlots)]
			bi++
			group := slotsBySub[sub]
			fs := group[r.Intn(len(group))]
			nm := freshNames(fs)
			buggy, _ := pat.Render(nm, r)
			fs.bodies = append(fs.bodies, buggy)
			c.Bugs = append(c.Bugs, SeededBug{
				ID:        fmt.Sprintf("KB-%03d", len(c.Bugs)+1),
				File:      fs.file.Path,
				Func:      renderedFuncName(buggy, nm.Fn),
				Class:     seed.class,
				Flavor:    seed.flavor,
				Subsystem: sub,
				FromAuto:  seed.auto,
			})
		}
	}

	// 3. Assign lifetimes per the bucket distribution.
	assignLifetimes(r, c)

	// 4. Plant the FP bait.
	for _, seed := range defaultBaitPlan {
		for k := 0; k < seed.count; k++ {
			// Bait concentrates where the code is: mostly drivers.
			sub := "drivers"
			if r.Intn(5) == 0 {
				sub = []string{"sound", "net", "fs"}[r.Intn(3)]
			}
			group := slotsBySub[sub]
			fs := group[r.Intn(len(group))]
			nm := freshNames(fs)
			body := baitFunc(seed.kind, seed.flavor, nm, r)
			fs.bodies = append(fs.bodies, body)
			c.Baits = append(c.Baits, PlantedBait{
				File: fs.file.Path, Func: renderedFuncName(body, nm.Fn), Kind: seed.kind, Flavor: seed.flavor,
			})
		}
	}

	// 5. Fill with benign functions and assemble the files.
	for _, fs := range slots {
		benign := 2 + r.Intn(4)
		for k := 0; k < benign; k++ {
			nm := freshNames(fs)
			fs.bodies = append(fs.bodies, benignFunc(nm, r))
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "// SPDX-License-Identifier: GPL-2.0\n// %s\n\n", fs.file.Path)
		sb.WriteString(structDecls(fs.names[0]))
		sb.WriteString("\n")
		for i, body := range fs.bodies {
			if i > 0 {
				sb.WriteString("\n")
			}
			sb.WriteString(body)
		}
		fs.file.Src = sb.String()
		c.Files = append(c.Files, fs.file)
	}
	sort.Slice(c.Files, func(i, j int) bool { return c.Files[i].Path < c.Files[j].Path })
	return c
}

// renderedFuncName extracts the actual function name from a rendered
// body: templates may decorate the base name (e.g. "_write"/"_store"
// handler suffixes), and the ground-truth ledger must record the name
// reports will carry.
func renderedFuncName(src, base string) string {
	if f, err := minic.ParseFile("x.c", src); err == nil && len(f.Funcs) > 0 {
		return f.Funcs[len(f.Funcs)-1].Name
	}
	return base
}

// buildBugSubsystems expands the per-subsystem bug shares into a shuffled
// assignment list of length 92.
func buildBugSubsystems(r *rand.Rand) []string {
	var out []string
	for _, sub := range subsystemLayout {
		for i := 0; i < sub.bugShare; i++ {
			out = append(out, sub.name)
		}
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func assignLifetimes(r *rand.Rand, c *Corpus) {
	var ages []float64
	for _, b := range lifetimeBuckets {
		for i := 0; i < b.count; i++ {
			ages = append(ages, b.minY+r.Float64()*(b.maxY-b.minY))
		}
	}
	r.Shuffle(len(ages), func(i, j int) { ages[i], ages[j] = ages[j], ages[i] })
	for i := range c.Bugs {
		age := ages[i%len(ages)]
		c.Bugs[i].Introduced = c.NowDate.Add(-time.Duration(age * 365.25 * 24 * float64(time.Hour)))
	}
}

var subDirs = map[string][]string{
	"drivers": {"spi", "i2c", "net/ethernet", "gpu", "usb", "mmc", "tty", "iio", "media", "pinctrl"},
	"sound":   {"soc", "pci", "usb", "core"},
	"net":     {"core", "ipv4", "mac80211", "sched"},
	"fs":      {"ext4", "btrfs", "nfs", "proc"},
	"samples": {"bpf", "kobject"},
	"arch":    {"arm64", "x86", "riscv"},
	"lib":     {""},
	"include": {"linux"},
}

func filePathFor(sub string, nm *NameSet, i int) string {
	dirs := subDirs[sub]
	dir := dirs[i%len(dirs)]
	base := strings.ReplaceAll(nm.Chip, "_", "-") + ".c"
	if sub == "include" {
		base = strings.ReplaceAll(nm.Chip, "_", "-") + ".h"
	}
	if dir == "" {
		return sub + "/" + base
	}
	return sub + "/" + dir + "/" + base
}
