package kernel

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"knighter/internal/vcs"
)

// handCommitPlan is the labeled 61-commit benchmark dataset (paper
// Table 1 distribution: NPD 6, Integer-Overflow 7, Out-of-Bound 6,
// Buffer-Overflow 5, Memory-Leak 5, Use-After-Free 7, Double-Free 8,
// UBI 5, Concurrency 5, Misuse 7).
var handCommitPlan = []struct{ class, flavor string }{
	// NPD (6)
	{ClassNPD, "devm_kzalloc"}, {ClassNPD, "kzalloc"}, {ClassNPD, "kmalloc"},
	{ClassNPD, "kcalloc"}, {ClassNPD, "kstrdup"}, {ClassNPD, "devm_ioremap"},
	// Integer-Overflow (7)
	{ClassIntOver, "kmalloc"}, {ClassIntOver, "kzalloc"}, {ClassIntOver, "kvmalloc"},
	{ClassIntOver, "vmalloc"}, {ClassIntOver, "dma_alloc_coherent"},
	{ClassIntOver, "sock_kmalloc"}, {ClassIntOver, "usb_alloc_coherent"},
	// Out-of-Bound (6)
	{ClassOOB, "le16_to_cpu"}, {ClassOOB, "le32_to_cpu"}, {ClassOOB, "be16_to_cpu"},
	{ClassOOB, "get_unaligned_le16"}, {ClassOOB, "simple_strtoul"}, {ClassOOB, "hex_to_bin"},
	// Buffer-Overflow (5) — one copy_from_user pattern, five contexts.
	{ClassBufOver, "debugfs"}, {ClassBufOver, "sysfs"}, {ClassBufOver, "procfs"},
	{ClassBufOver, "tracefs"}, {ClassBufOver, "netdevsim"},
	// Memory-Leak (5)
	{ClassMemLeak, "kmalloc"}, {ClassMemLeak, "kzalloc"}, {ClassMemLeak, "kmemdup"},
	{ClassMemLeak, "vmalloc"}, {ClassMemLeak, "kvzalloc"},
	// Use-After-Free (7)
	{ClassUAF, "free_netdev"}, {ClassUAF, "usb_free_urb"}, {ClassUAF, "kfree"},
	{ClassUAF, "vfree"}, {ClassUAF, "kvfree"}, {ClassUAF, "mmc_free_host"},
	{ClassUAF, "dma_free_coherent"},
	// Double-Free (8)
	{ClassDoubleFree, "kfree"}, {ClassDoubleFree, "vfree"}, {ClassDoubleFree, "kvfree"},
	{ClassDoubleFree, "usb_free_urb"}, {ClassDoubleFree, "bio_put"},
	{ClassDoubleFree, "mmc_free_host"}, {ClassDoubleFree, "sock_release"},
	{ClassDoubleFree, "crypto_free_shash"},
	// UBI (5)
	{ClassUBI, "kfree"}, {ClassUBI, "x509_free_certificate"},
	{ClassUBI, "fwnode_handle_put"}, {ClassUBI, "bitmap_free"}, {ClassUBI, "put_device"},
	// Concurrency (5)
	{ClassConcurrency, "spin_lock"}, {ClassConcurrency, "mutex_lock"},
	{ClassConcurrency, "spin_lock_irqsave"}, {ClassConcurrency, "read_lock"},
	{ClassConcurrency, "write_lock"},
	// Misuse (7)
	{ClassMisuse, "sscanf_unterminated"}, {ClassMisuse, "platform_get_irq"},
	{ClassMisuse, "of_irq_get"}, {ClassMisuse, "strscpy_nul"},
	{ClassMisuse, "sscanf_unterminated"}, {ClassMisuse, "platform_get_irq"},
	{ClassMisuse, "strscpy_nul"},
}

// autoNPDFlavors are the allocator flavors covered by the keyword-based
// auto-collection of NPD commits (§5.2): a mix of new flavors and
// repeats of the hand-labeled ones.
var autoNPDFlavors = []string{
	"devm_kcalloc", "kmemdup", "vzalloc", "kvzalloc", "devm_kmalloc",
	"kzalloc_node", "alloc_workqueue", "devm_kstrdup",
	"devm_kzalloc", "kzalloc", "kmalloc", "kcalloc",
}

// BuildHandCommits renders the 61-commit labeled benchmark.
func BuildHandCommits(seed int64) *vcs.Store {
	r := rand.New(rand.NewSource(seed))
	store := vcs.NewStore()
	seq := map[string]int{}
	for i, plan := range handCommitPlan {
		c := renderCommit(r, plan.class, plan.flavor, false, i)
		key := plan.class + "/" + plan.flavor
		c.Seq = seq[key]
		seq[key]++
		store.Add(c)
	}
	return store
}

// BuildAutoNPDCommits renders n keyword-collected NPD commits.
func BuildAutoNPDCommits(seed int64, n int) *vcs.Store {
	r := rand.New(rand.NewSource(seed))
	store := vcs.NewStore()
	seq := map[string]int{}
	for i := 0; i < n; i++ {
		flavor := autoNPDFlavors[i%len(autoNPDFlavors)]
		c := renderCommit(r, ClassNPD, flavor, true, i)
		c.Seq = seq[flavor]
		seq[flavor]++
		store.Add(c)
	}
	return store
}

func renderCommit(r *rand.Rand, class, flavor string, auto bool, idx int) *vcs.Commit {
	pat := PatternFor(class, flavor)
	if pat == nil {
		panic("kernel: no pattern for commit " + class + "/" + flavor)
	}
	sub := "drivers"
	roll := r.Intn(10)
	switch {
	case roll == 7:
		sub = "sound"
	case roll == 8:
		sub = "net"
	case roll == 9:
		sub = "fs"
	}
	nm := newNames(r, sub)
	buggy, fixed := pat.Render(nm, r)
	fnName := renderedFuncName(buggy, nm.Fn)
	file := filePathFor(sub, nm, r.Intn(6))

	// Roughly a quarter of real commit messages are terse one-liners;
	// the rest explain the root cause like paper Fig. 4.
	detailed := r.Float64() > 0.25
	body := ""
	if detailed {
		body = fmt.Sprintf(pat.DetailBody, fnName, flavor)
	}
	subjPrefix := strings.TrimSuffix(strings.TrimPrefix(file, sub+"/"), ".c")
	subj := fmt.Sprintf("%s: %s: %s", sub, subjPrefix, pat.Subject)

	// Author dates fall in the few years before the evaluation window.
	days := 60 + r.Intn(1400)
	date := time.Date(2025, 1, 15, 0, 0, 0, 0, time.UTC).AddDate(0, 0, -days)

	return &vcs.Commit{
		Subject:       subj,
		Body:          body,
		File:          file,
		Subsystem:     sub,
		FuncName:      fnName,
		Class:         class,
		Flavor:        flavor,
		Detailed:      detailed,
		AutoCollected: auto,
		Before:        buggy,
		After:         fixed,
		AuthorDate:    date,
	}
}
