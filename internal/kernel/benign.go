package kernel

import (
	"fmt"
	"math/rand"
)

// BaitKind labels the false-positive-bait idioms: correct code that naive
// (pre-refinement) checkers flag. Each kind corresponds to a defect the
// simulated LLM can leave in a first-draft checker.
type BaitKind string

// Bait kinds.
const (
	// BaitUnlikelyCheck: allocation checked via if (unlikely(!p)) — an FP
	// for NPD checkers that do not unwrap annotation macros (paper Fig 7).
	BaitUnlikelyCheck BaitKind = "unlikely-check"
	// BaitHelperBound: multiplication bounded by a comparison against a
	// runtime limit the range engine cannot fold — an FP for overflow
	// checkers missing the boundcheck guard.
	BaitHelperBound BaitKind = "helper-bound"
	// BaitCleanupAssigned: __free pointer assigned on every path — an FP
	// for UBI checkers missing the assign-initializes guard (Fig 8b).
	BaitCleanupAssigned BaitKind = "cleanup-assigned"
	// BaitTerminatedBuf: user buffer explicitly NUL-terminated — an FP
	// for misuse checkers missing the terminate guard.
	BaitTerminatedBuf BaitKind = "terminated-buf"
	// BaitWarnOnCheck: allocation checked via if (WARN_ON(!p)) — remains
	// an FP even for refined checkers (only unlikely/likely are
	// unwrapped); these are the residual FPs the triage agent faces.
	BaitWarnOnCheck BaitKind = "warn-on-check"
	// BaitFreeReassign: pointer freed, reallocated, then used — an FP
	// for UAF checkers without alias (value) tracking.
	BaitFreeReassign BaitKind = "free-reassign"
	// BaitFreeClearFree: pointer freed, cleared to NULL, then passed to
	// the free function again (a safe kernel idiom) — an FP for
	// double-free checkers without alias tracking.
	BaitFreeClearFree BaitKind = "free-clear-free"
	// BaitFreeReinitFree: freed handle reinitialized by a helper call
	// the intraprocedural analysis cannot see into, then released again
	// — correct code that even an alias-tracking double-free checker
	// flags. This FP class is outside the refinement agent's repertoire,
	// producing the paper's unrefinable checkers.
	BaitFreeReinitFree BaitKind = "free-reinit-free"
	// BaitIrqRangeCheck: an IRQ number validated against a
	// device-specific helper bound rather than a plain `< 0` check — an
	// FP for sign checkers missing the boundcheck guard.
	BaitIrqRangeCheck BaitKind = "irq-range-check"
)

// baitFunc renders one bait function for a flavor. The code is CORRECT —
// any report against it is a false positive by construction.
func baitFunc(kind BaitKind, flavor string, nm *NameSet, r *rand.Rand) string {
	switch kind {
	case BaitUnlikelyCheck:
		return fmt.Sprintf(`static int %s(struct platform_device *pdev, char *name)
{
	struct %s *%s;
	%s = %s;
	if (unlikely(!%s))
		return -ENOMEM;
	%s->%s = 1;
	platform_set_drvdata(pdev, %s);
	return 0;
}
`, nm.Fn, nm.Struct, nm.Ptr, nm.Ptr, allocCall(flavor, fmt.Sprintf("sizeof(struct %s)", nm.Struct)), nm.Ptr, nm.Ptr, nm.Field, nm.Ptr)
	case BaitWarnOnCheck:
		return fmt.Sprintf(`static int %s(struct platform_device *pdev, char *name)
{
	struct %s *%s;
	%s = %s;
	if (WARN_ON(!%s))
		return -ENOMEM;
	%s->%s = 1;
	platform_set_drvdata(pdev, %s);
	return 0;
}
`, nm.Fn, nm.Struct, nm.Ptr, nm.Ptr, allocCall(flavor, fmt.Sprintf("sizeof(struct %s)", nm.Struct)), nm.Ptr, nm.Ptr, nm.Field, nm.Ptr)
	case BaitHelperBound:
		elem := []int{8, 16, 32}[r.Intn(3)]
		return fmt.Sprintf(`static int %s(struct platform_device *pdev, size_t %s)
{
	u8 *table;
	if (%s > %s_max_entries(pdev))
		return -EINVAL;
	table = %s;
	if (!table)
		return -ENOMEM;
	setup_table(pdev, table);
	kfree(table);
	return 0;
}
`, nm.Fn, nm.Size, nm.Size, nm.Chip, allocCall(flavor, fmt.Sprintf("%s * %d", nm.Size, elem)))
	case BaitCleanupAssigned:
		return fmt.Sprintf(`static int %s(struct device *dev)
{
	struct %s *%s __free(%s);
	%s = kzalloc(sizeof(struct %s), GFP_KERNEL);
	if (!%s)
		return -ENOMEM;
	%s_apply(dev, %s);
	return 0;
}
`, nm.Fn, nm.Struct, nm.Ptr, flavor, nm.Ptr, nm.Struct, nm.Ptr, nm.Chip, nm.Ptr)
	case BaitFreeReassign:
		return fmt.Sprintf(`static int %s(struct %s *dev)
{
	%s(dev->base);
	dev->base = kmalloc(%d, GFP_KERNEL);
	if (!dev->base)
		return -ENOMEM;
	dev->base[0] = 1;
	return 0;
}
`, nm.Fn, nm.Struct, flavor, nm.BufLen)
	case BaitFreeClearFree:
		return fmt.Sprintf(`static void %s(struct %s *dev, int err)
{
	%s(dev->base);
	dev->base = NULL;
	if (err)
		%s(dev->base);
}
`, nm.Fn, nm.Struct, flavor, flavor)
	case BaitFreeReinitFree:
		return fmt.Sprintf(`static void %s(struct %s *dev, int err)
{
	%s(dev->base);
	if (%s_reinit(dev))
		%s(dev->base);
}
`, nm.Fn, nm.Struct, flavor, nm.Chip, flavor)
	case BaitIrqRangeCheck:
		consumer := "request_irq"
		if flavor == "of_irq_get" {
			consumer = "devm_request_irq"
		}
		return fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	int irq;
	irq = %s(pdev, 0);
	if (irq > %s_last_irq(pdev))
		return -EINVAL;
	return %s(irq, %s_isr);
}
`, nm.Fn, flavor, nm.Chip, consumer, nm.Chip)
	case BaitTerminatedBuf:
		return fmt.Sprintf(`static ssize_t %s_store(struct device *dev, char *ubuf, size_t %s)
{
	char %s[%d];
	int val;
	if (%s > sizeof(%s) - 1)
		return -EINVAL;
	if (copy_from_user(%s, ubuf, %s))
		return -EFAULT;
	%s[%s] = 0;
	sscanf(%s, "%%d", &val);
	return %s;
}
`, nm.Fn, nm.Size, nm.Buf, nm.BufLen, nm.Size, nm.Buf, nm.Buf, nm.Size, nm.Buf, nm.Size, nm.Buf, nm.Size)
	}
	return ""
}

// benignFunc renders plain correct driver code: the bulk of the corpus.
func benignFunc(nm *NameSet, r *rand.Rand) string {
	switch r.Intn(10) {
	case 0: // guarded allocation, plain check
		flavors := []string{"kzalloc", "kmalloc", "devm_kzalloc", "kcalloc"}
		f := flavors[r.Intn(len(flavors))]
		return fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	struct %s *%s;
	%s = %s;
	if (!%s)
		return -ENOMEM;
	%s->%s = 0;
	platform_set_drvdata(pdev, %s);
	return 0;
}
`, nm.Fn, nm.Struct, nm.Ptr, nm.Ptr, allocCall(f, fmt.Sprintf("sizeof(struct %s)", nm.Struct)), nm.Ptr, nm.Ptr, nm.Field, nm.Ptr)
	case 1: // register read/modify/write
		return fmt.Sprintf(`static int %s(struct %s *dev, u32 mask)
{
	u32 val;
	val = readl(dev->base);
	val = val | mask;
	writel(val, dev->base);
	return 0;
}
`, nm.Fn, nm.Struct)
	case 2: // bounded loop
		return fmt.Sprintf(`static int %s(struct %s *dev, int n)
{
	int total = 0;
	for (int i = 0; i < n; i++)
		total += %s_sample(dev, i);
	return total;
}
`, nm.Fn, nm.Struct, nm.Chip)
	case 3: // balanced locking
		return fmt.Sprintf(`static void %s(struct %s *dev, int val)
{
	spin_lock(&dev->%s);
	dev->%s = val;
	spin_unlock(&dev->%s);
}
`, nm.Fn, nm.Struct, nm.Lock, nm.Field, nm.Lock)
	case 4: // getter with validation
		return fmt.Sprintf(`static int %s(struct %s *dev, int %s)
{
	if (%s < 0 || %s >= %d)
		return -EINVAL;
	return dev->%s + %s;
}
`, nm.Fn, nm.Struct, nm.Idx, nm.Idx, nm.Idx, nm.TabLen, nm.Field, nm.Idx)
	case 5: // bounded copy with explicit clamp
		return fmt.Sprintf(`static ssize_t %s_write(struct file *file, char *ubuf, size_t %s)
{
	char %s[%d];
	size_t n;
	n = min(%s, sizeof(%s) - 1);
	if (copy_from_user(%s, ubuf, n))
		return -EFAULT;
	%s[n] = 0;
	return n;
}
`, nm.Fn, nm.Size, nm.Buf, nm.BufLen, nm.Size, nm.Buf, nm.Buf, nm.Buf)
	case 6: // alloc + full cleanup on both paths
		return fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	u8 *%s;
	int ret;
	%s = kmalloc(%d, GFP_KERNEL);
	if (!%s)
		return -ENOMEM;
	ret = %s_hw_init(pdev);
	if (ret) {
		kfree(%s);
		return ret;
	}
	kfree(%s);
	return 0;
}
`, nm.Fn, nm.Buf, nm.Buf, nm.BufLen, nm.Buf, nm.Chip, nm.Buf, nm.Buf)
	case 7: // switch-based command dispatch (kernel ioctl style)
		return fmt.Sprintf(`static int %s(struct %s *dev, int cmd)
{
	int ret;
	switch (cmd) {
	case 0:
		ret = %s_start(dev);
		break;
	case 1:
		dev->%s = 2;
		ret = 0;
		break;
	default:
		ret = -EINVAL;
		break;
	}
	return ret;
}
`, nm.Fn, nm.Struct, nm.Chip, nm.Field)
	case 8: // goto-based unwind ladder
		return fmt.Sprintf(`static int %s(struct platform_device *pdev)
{
	u8 *%s;
	int ret;
	%s = kmalloc(%d, GFP_KERNEL);
	if (!%s)
		return -ENOMEM;
	ret = %s_hw_init(pdev);
	if (ret)
		goto %s;
	ret = %s_start(pdev);
	if (ret)
		goto %s;
	kfree(%s);
	return 0;
%s:
	kfree(%s);
	return ret;
}
`, nm.Fn, nm.Buf, nm.Buf, nm.BufLen, nm.Buf, nm.Chip, nm.Label, nm.Chip,
			nm.Label, nm.Buf, nm.Label, nm.Buf)
	default: // state machine step
		return fmt.Sprintf(`static int %s(struct %s *dev)
{
	int state = dev->%s;
	if (state == 0)
		return %s_start(dev);
	if (state == 1) {
		dev->%s = 2;
		return 0;
	}
	return -EBUSY;
}
`, nm.Fn, nm.Struct, nm.Field, nm.Chip, nm.Field)
	}
}

// structDecls renders the shared struct declarations a corpus file needs
// so that every generated function body type-resolves.
func structDecls(nm *NameSet) string {
	return fmt.Sprintf(`struct %s {
	int %s;
	int %s;
	int %s;
	u8 *base;
	struct regulator *supply;
};
`, nm.Struct, nm.Field, nm.Field2, nm.Lock)
}
