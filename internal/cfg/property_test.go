package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"knighter/internal/minic"
)

// cfgProgGen emits random parseable programs spanning the full
// control-flow surface (nested conditionals, loops, switch desugaring,
// goto ladders, early returns).
type cfgProgGen struct{ r *rand.Rand }

func (g *cfgProgGen) cond() string {
	return []string{"a", "b > 3", "!p", "a == b", "a && b", "a || !b"}[g.r.Intn(6)]
}

func (g *cfgProgGen) stmt(depth, indent int, labels *int) string {
	pad := ""
	for i := 0; i < indent; i++ {
		pad += "\t"
	}
	if depth <= 0 {
		return pad + "a = a + 1;\n"
	}
	switch g.r.Intn(9) {
	case 0:
		s := pad + "if (" + g.cond() + ") {\n" + g.stmt(depth-1, indent+1, labels)
		if g.r.Intn(2) == 0 {
			s += pad + "} else {\n" + g.stmt(depth-1, indent+1, labels)
		}
		return s + pad + "}\n"
	case 1:
		return pad + "while (" + g.cond() + ") {\n" +
			g.stmt(depth-1, indent+1, labels) + pad + "}\n"
	case 2:
		inner := g.stmt(depth-1, indent+1, labels)
		extra := ""
		if g.r.Intn(2) == 0 {
			extra = pad + "\tif (" + g.cond() + ")\n" + pad + "\t\tbreak;\n"
		}
		return pad + "for (int i = 0; i < 4; i++) {\n" + inner + extra + pad + "}\n"
	case 3:
		return pad + "return a;\n"
	case 4:
		*labels++
		return pad + "goto done;\n"
	case 5:
		return pad + "switch (a) {\n" +
			pad + "case 0:\n" + g.stmt(0, indent+1, labels) + pad + "\tbreak;\n" +
			pad + "case 1:\n" + pad + "\treturn 1;\n" +
			pad + "default:\n" + g.stmt(0, indent+1, labels) + pad + "\tbreak;\n" +
			pad + "}\n"
	case 6:
		return pad + "b = f(a);\n"
	case 7:
		return g.stmt(depth-1, indent, labels) + g.stmt(depth-1, indent, labels)
	default:
		return pad + "p = q;\n"
	}
}

func (g *cfgProgGen) program() string {
	labels := 0
	body := ""
	n := 2 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		body += g.stmt(2, 1, &labels)
	}
	tail := "\treturn 0;\n"
	if labels > 0 {
		tail = "\treturn 0;\ndone:\n\treturn -1;\n"
	}
	return "int gen(int a, int b, struct s *p, struct s *q)\n{\n" + body + tail + "}\n"
}

// TestCFGWellFormedOnRandomPrograms: every generated program must lower
// to a graph where all blocks are terminated, all successors are in the
// graph, the entry is block 0, and every reachable block is reachable
// from entry (by construction of pruning).
func TestCFGWellFormedOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		g := &cfgProgGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		fn, err := minic.ParseFunc("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: program does not parse: %v\n%s", seed, err, src)
		}
		graph, err := Build(fn)
		if err != nil {
			t.Fatalf("seed %d: build failed: %v\n%s", seed, err, src)
		}
		inGraph := map[*Block]bool{}
		for i, b := range graph.Blocks {
			if b.ID != i {
				t.Fatalf("seed %d: block %d has ID %d", seed, i, b.ID)
			}
			inGraph[b] = true
		}
		reach := map[*Block]bool{}
		var visit func(*Block)
		visit = func(b *Block) {
			if reach[b] {
				return
			}
			reach[b] = true
			if b.Term == nil {
				t.Fatalf("seed %d: reachable block %d unterminated\n%s", seed, b.ID, src)
			}
			for _, s := range b.Term.Succs() {
				if !inGraph[s] {
					t.Fatalf("seed %d: successor outside graph", seed)
				}
				visit(s)
			}
		}
		visit(graph.Entry())
		for _, b := range graph.Blocks {
			if !reach[b] {
				t.Fatalf("seed %d: block %d kept but unreachable", seed, b.ID)
			}
		}
		// At least one return-terminated block must exist.
		returns := 0
		for _, b := range graph.Blocks {
			if _, ok := b.Term.(*Return); ok {
				returns++
			}
		}
		if returns == 0 {
			t.Fatalf("seed %d: no return block\n%s", seed, src)
		}
	}
}

// TestCFGStatementConservation: every Decl/Expr statement of the source
// appears in exactly one reachable block (or is legitimately pruned as
// dead code after a return/goto).
func TestCFGStatementConservation(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		g := &cfgProgGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		fn, err := minic.ParseFunc("gen.c", src)
		if err != nil {
			t.Fatal(err)
		}
		graph, err := Build(fn)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[minic.Stmt]int{}
		for _, b := range graph.Blocks {
			for _, s := range b.Stmts {
				seen[s]++
			}
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: statement %q appears %d times",
					seed, minic.FormatStmt(s), n)
			}
		}
	}
}

// TestCFGDeterministic: building twice from the same AST yields the same
// shape.
func TestCFGDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := &cfgProgGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		fn, err := minic.ParseFunc("gen.c", src)
		if err != nil {
			t.Fatal(err)
		}
		g1, err1 := Build(fn)
		g2, err2 := Build(fn)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("error disagreement")
		}
		if err1 != nil {
			continue
		}
		if shapeOf(g1) != shapeOf(g2) {
			t.Fatalf("seed %d: shapes differ", seed)
		}
	}
}

func shapeOf(g *Graph) string {
	out := ""
	for _, b := range g.Blocks {
		out += fmt.Sprintf("B%d[%d]:", b.ID, len(b.Stmts))
		switch t := b.Term.(type) {
		case *Branch:
			out += fmt.Sprintf("br(%d,%d);", t.Then.ID, t.Else.ID)
		case *Jump:
			out += fmt.Sprintf("j(%d);", t.To.ID)
		case *Return:
			out += "ret;"
		}
	}
	return out
}
