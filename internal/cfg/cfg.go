// Package cfg lowers mini-C function bodies to control-flow graphs.
//
// The graph shape mirrors what the Clang Static Analyzer builds before
// symbolic execution: straight-line blocks of simple statements joined by
// branch / jump / return terminators, with goto and labels resolved to
// explicit edges.
package cfg

import (
	"fmt"
	"strings"

	"knighter/internal/minic"
)

// Graph is the control-flow graph of one function. Blocks[0] is the entry
// block. Every reachable block has a non-nil terminator.
type Graph struct {
	Fn     *minic.FuncDecl
	Blocks []*Block
}

// Entry returns the function entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Block is a maximal straight-line statement sequence.
type Block struct {
	ID    int
	Stmts []minic.Stmt // DeclStmt and ExprStmt only
	Term  Terminator
	Label string // non-empty if the block is a goto target
}

// Terminator ends a block.
type Terminator interface {
	// Succs returns the successor blocks.
	Succs() []*Block
	termNode()
}

// Branch is a two-way conditional terminator.
type Branch struct {
	Cond minic.Expr
	Then *Block
	Else *Block
	Pos  minic.Pos
}

// Jump is an unconditional edge.
type Jump struct {
	To *Block
}

// Return leaves the function; X may be nil.
type Return struct {
	X   minic.Expr
	Pos minic.Pos
}

// Succs implements Terminator.
func (t *Branch) Succs() []*Block { return []*Block{t.Then, t.Else} }

// Succs implements Terminator.
func (t *Jump) Succs() []*Block { return []*Block{t.To} }

// Succs implements Terminator.
func (t *Return) Succs() []*Block { return nil }

func (*Branch) termNode() {}
func (*Jump) termNode()   {}
func (*Return) termNode() {}

// BuildError reports a control-flow construction problem (for example a
// goto to an undefined label).
type BuildError struct {
	Pos minic.Pos
	Msg string
}

func (e *BuildError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type loopCtx struct {
	continueTo *Block
	breakTo    *Block
}

type builder struct {
	g             *Graph
	cur           *Block
	labels        map[string]*Block
	definedLabels map[string]bool
	gotos         map[string][]minic.Pos // labels referenced by gotos
	loops         []loopCtx
	nextID        int
	errList       []error
}

// Build lowers fn's body to a CFG. Unreachable blocks are pruned.
func Build(fn *minic.FuncDecl) (*Graph, error) {
	b := &builder{
		g:             &Graph{Fn: fn},
		labels:        map[string]*Block{},
		definedLabels: map[string]bool{},
		gotos:         map[string][]minic.Pos{},
	}
	entry := b.newBlock()
	b.cur = entry
	b.buildBlock(fn.Body)
	if b.cur != nil && b.cur.Term == nil {
		b.cur.Term = &Return{Pos: fn.Pos}
	}
	// Any label referenced by goto must have been defined.
	for name, poss := range b.gotos {
		if !b.definedLabels[name] {
			return nil, &BuildError{Pos: poss[0], Msg: fmt.Sprintf("goto undefined label %q", name)}
		}
	}
	if len(b.errList) > 0 {
		return nil, b.errList[0]
	}
	b.prune()
	return b.g, nil
}

func (b *builder) markDefined(name string) { b.definedLabels[name] = true }

func (b *builder) newBlock() *Block {
	blk := &Block{ID: b.nextID}
	b.nextID++
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// labelBlock returns (creating on demand) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	blk.Label = name
	b.labels[name] = blk
	return blk
}

func (b *builder) emit(s minic.Stmt) {
	if b.cur == nil || b.cur.Term != nil {
		// Unreachable statement after return/goto: place in a fresh
		// dangling block so positions survive, it will be pruned.
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) terminate(t Terminator) {
	if b.cur == nil || b.cur.Term != nil {
		b.cur = b.newBlock()
	}
	b.cur.Term = t
}

func (b *builder) buildBlock(blk *minic.Block) {
	for _, s := range blk.Stmts {
		b.buildStmt(s)
	}
}

func (b *builder) buildStmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.Block:
		b.buildBlock(st)
	case *minic.DeclStmt, *minic.ExprStmt:
		b.emit(s)
	case *minic.ReturnStmt:
		b.terminate(&Return{X: st.X, Pos: st.Pos})
		b.cur = nil
	case *minic.IfStmt:
		thenB := b.newBlock()
		elseB := b.newBlock()
		joinB := b.newBlock()
		b.terminate(&Branch{Cond: st.Cond, Then: thenB, Else: elseB, Pos: st.Pos})
		b.cur = thenB
		b.buildStmt(st.Then)
		b.finishWithJump(joinB)
		b.cur = elseB
		if st.Else != nil {
			b.buildStmt(st.Else)
		}
		b.finishWithJump(joinB)
		b.cur = joinB
	case *minic.WhileStmt:
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.finishWithJump(header)
		b.cur = header
		b.terminate(&Branch{Cond: st.Cond, Then: body, Else: after, Pos: st.Pos})
		b.loops = append(b.loops, loopCtx{continueTo: header, breakTo: after})
		b.cur = body
		b.buildStmt(st.Body)
		b.finishWithJump(header)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *minic.ForStmt:
		if st.Init != nil {
			b.buildStmt(st.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.finishWithJump(header)
		b.cur = header
		if st.Cond != nil {
			b.terminate(&Branch{Cond: st.Cond, Then: body, Else: after, Pos: st.Pos})
		} else {
			b.terminate(&Jump{To: body})
		}
		b.loops = append(b.loops, loopCtx{continueTo: post, breakTo: after})
		b.cur = body
		b.buildStmt(st.Body)
		b.finishWithJump(post)
		b.cur = post
		if st.Post != nil {
			b.emit(&minic.ExprStmt{X: st.Post, Pos: st.Post.NodePos()})
		}
		b.finishWithJump(header)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *minic.BreakStmt:
		if len(b.loops) == 0 {
			b.errList = append(b.errList, &BuildError{Pos: st.Pos, Msg: "break outside loop"})
			return
		}
		b.terminate(&Jump{To: b.loops[len(b.loops)-1].breakTo})
		b.cur = nil
	case *minic.ContinueStmt:
		if len(b.loops) == 0 {
			b.errList = append(b.errList, &BuildError{Pos: st.Pos, Msg: "continue outside loop"})
			return
		}
		b.terminate(&Jump{To: b.loops[len(b.loops)-1].continueTo})
		b.cur = nil
	case *minic.GotoStmt:
		b.gotos[st.Label] = append(b.gotos[st.Label], st.Pos)
		b.terminate(&Jump{To: b.labelBlock(st.Label)})
		b.cur = nil
	case *minic.LabeledStmt:
		lb := b.labelBlock(st.Label)
		b.markDefined(st.Label)
		b.finishWithJump(lb)
		b.cur = lb
		if st.Stmt != nil {
			b.buildStmt(st.Stmt)
		}
	default:
		b.errList = append(b.errList, &BuildError{Pos: s.NodePos(), Msg: fmt.Sprintf("cfg: unsupported statement %T", s)})
	}
}

// finishWithJump terminates the current block with a jump to target if it
// is still open; a nil or already-terminated current block is left alone.
func (b *builder) finishWithJump(target *Block) {
	if b.cur != nil && b.cur.Term == nil {
		b.cur.Term = &Jump{To: target}
	}
}

// prune removes blocks unreachable from entry and renumbers the rest.
func (b *builder) prune() {
	if len(b.g.Blocks) == 0 {
		return
	}
	reach := map[*Block]bool{}
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk == nil || reach[blk] {
			return
		}
		reach[blk] = true
		if blk.Term != nil {
			for _, s := range blk.Term.Succs() {
				visit(s)
			}
		}
	}
	visit(b.g.Blocks[0])
	var kept []*Block
	for _, blk := range b.g.Blocks {
		if reach[blk] {
			blk.ID = len(kept)
			kept = append(kept, blk)
		}
	}
	b.g.Blocks = kept
}

// Dot renders the graph in Graphviz dot syntax (debug aid).
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Fn.Name)
	for _, blk := range g.Blocks {
		var lines []string
		if blk.Label != "" {
			lines = append(lines, blk.Label+":")
		}
		for _, s := range blk.Stmts {
			lines = append(lines, minic.FormatStmt(s))
		}
		label := fmt.Sprintf("B%d\\n%s", blk.ID, strings.ReplaceAll(strings.Join(lines, "\\n"), "\"", "'"))
		fmt.Fprintf(&sb, "  b%d [shape=box,label=\"%s\"];\n", blk.ID, label)
		switch t := blk.Term.(type) {
		case *Branch:
			fmt.Fprintf(&sb, "  b%d -> b%d [label=\"T: %s\"];\n", blk.ID, t.Then.ID,
				strings.ReplaceAll(minic.FormatExpr(t.Cond), "\"", "'"))
			fmt.Fprintf(&sb, "  b%d -> b%d [label=\"F\"];\n", blk.ID, t.Else.ID)
		case *Jump:
			fmt.Fprintf(&sb, "  b%d -> b%d;\n", blk.ID, t.To.ID)
		case *Return:
			fmt.Fprintf(&sb, "  b%d -> exit;\n", blk.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
