package cfg

import (
	"strings"
	"testing"

	"knighter/internal/minic"
)

func mustBuild(t *testing.T, src string) *Graph {
	t.Helper()
	fn, err := minic.ParseFunc("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := Build(fn)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// checkWellFormed verifies structural invariants every built graph must
// satisfy: all blocks terminated, successors in the graph, entry first.
func checkWellFormed(t *testing.T, g *Graph) {
	t.Helper()
	inGraph := map[*Block]bool{}
	for i, b := range g.Blocks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		inGraph[b] = true
	}
	for _, b := range g.Blocks {
		if b.Term == nil {
			t.Errorf("block %d has no terminator", b.ID)
			continue
		}
		for _, s := range b.Term.Succs() {
			if !inGraph[s] {
				t.Errorf("block %d has successor outside graph", b.ID)
			}
		}
	}
}

func TestStraightLine(t *testing.T) {
	g := mustBuild(t, "int f(void)\n{\n\tint a = 1;\n\ta = a + 1;\n\treturn a;\n}\n")
	checkWellFormed(t, g)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if _, ok := g.Blocks[0].Term.(*Return); !ok {
		t.Fatalf("terminator = %T", g.Blocks[0].Term)
	}
	if len(g.Blocks[0].Stmts) != 2 {
		t.Errorf("stmts = %d, want 2", len(g.Blocks[0].Stmts))
	}
}

func TestIfElseDiamond(t *testing.T) {
	g := mustBuild(t, `
int f(int x)
{
	int r;
	if (x > 0)
		r = 1;
	else
		r = 2;
	return r;
}
`)
	checkWellFormed(t, g)
	br, ok := g.Entry().Term.(*Branch)
	if !ok {
		t.Fatalf("entry terminator = %T", g.Entry().Term)
	}
	if br.Then == br.Else {
		t.Error("then and else must differ")
	}
	// Both arms must reach the same join block.
	tj, ok1 := br.Then.Term.(*Jump)
	ej, ok2 := br.Else.Term.(*Jump)
	if !ok1 || !ok2 || tj.To != ej.To {
		t.Fatalf("arms do not join: %T %T", br.Then.Term, br.Else.Term)
	}
	if _, ok := tj.To.Term.(*Return); !ok {
		t.Errorf("join terminator = %T", tj.To.Term)
	}
}

func TestEarlyReturnNoJoinEdge(t *testing.T) {
	g := mustBuild(t, `
int f(int x)
{
	if (!x)
		return -1;
	return x;
}
`)
	checkWellFormed(t, g)
	br := g.Entry().Term.(*Branch)
	if _, ok := br.Then.Term.(*Return); !ok {
		t.Errorf("then terminator = %T, want Return", br.Then.Term)
	}
}

func TestWhileLoopShape(t *testing.T) {
	g := mustBuild(t, `
int f(int n)
{
	while (n > 0)
		n--;
	return n;
}
`)
	checkWellFormed(t, g)
	// Find the header: a block with a Branch whose Then eventually jumps
	// back to it.
	var header *Block
	for _, b := range g.Blocks {
		if br, ok := b.Term.(*Branch); ok {
			cur := br.Then
			for i := 0; i < 10 && cur != nil; i++ {
				j, ok := cur.Term.(*Jump)
				if !ok {
					break
				}
				if j.To == b {
					header = b
					break
				}
				cur = j.To
			}
		}
	}
	if header == nil {
		t.Fatal("no back edge found")
	}
}

func TestForLoopDesugar(t *testing.T) {
	g := mustBuild(t, `
int f(int n)
{
	int s = 0;
	for (int i = 0; i < n; i++)
		s += i;
	return s;
}
`)
	checkWellFormed(t, g)
	// init block must contain both decls (s and i).
	if len(g.Entry().Stmts) != 2 {
		t.Errorf("entry stmts = %d, want 2 (s and i decls)", len(g.Entry().Stmts))
	}
}

func TestGotoErrorPath(t *testing.T) {
	g := mustBuild(t, `
int f(int x)
{
	int r = 0;
	if (x < 0)
		goto err;
	r = 1;
	return r;
err:
	cleanup();
	return -1;
}
`)
	checkWellFormed(t, g)
	var errBlock *Block
	for _, b := range g.Blocks {
		if b.Label == "err" {
			errBlock = b
		}
	}
	if errBlock == nil {
		t.Fatal("err label block not found")
	}
	if len(errBlock.Stmts) != 1 {
		t.Errorf("err block stmts = %d, want 1 (cleanup call)", len(errBlock.Stmts))
	}
	if _, ok := errBlock.Term.(*Return); !ok {
		t.Errorf("err block terminator = %T", errBlock.Term)
	}
}

func TestGotoUndefinedLabel(t *testing.T) {
	fn, err := minic.ParseFunc("t.c", "int f(void)\n{\n\tgoto nowhere;\n}\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Build(fn); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestBreakContinue(t *testing.T) {
	g := mustBuild(t, `
int f(int n)
{
	int s = 0;
	while (n > 0) {
		n--;
		if (n == 5)
			continue;
		if (n == 2)
			break;
		s += n;
	}
	return s;
}
`)
	checkWellFormed(t, g)
}

func TestBreakOutsideLoopFails(t *testing.T) {
	fn, err := minic.ParseFunc("t.c", "int f(void)\n{\n\tbreak;\n}\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Build(fn); err == nil {
		t.Fatal("expected error for break outside loop")
	}
}

func TestUnreachableCodePruned(t *testing.T) {
	g := mustBuild(t, `
int f(void)
{
	return 1;
	return 2;
}
`)
	checkWellFormed(t, g)
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			t.Errorf("unexpected reachable stmt %v", minic.FormatStmt(s))
		}
		if r, ok := b.Term.(*Return); ok {
			if lit, ok := r.X.(*minic.IntLit); !ok || lit.Val != 1 {
				t.Errorf("return expr = %v", minic.FormatExpr(r.X))
			}
		}
	}
}

func TestImplicitVoidReturn(t *testing.T) {
	g := mustBuild(t, "void f(int x)\n{\n\tx = 1;\n}\n")
	checkWellFormed(t, g)
	r, ok := g.Blocks[len(g.Blocks)-1].Term.(*Return)
	if !ok || r.X != nil {
		t.Fatalf("implicit return missing: %T", g.Blocks[len(g.Blocks)-1].Term)
	}
}

func TestInfiniteForLoop(t *testing.T) {
	g := mustBuild(t, `
int f(int n)
{
	for (;;) {
		n--;
		if (n == 0)
			break;
	}
	return n;
}
`)
	checkWellFormed(t, g)
}

func TestDotOutput(t *testing.T) {
	g := mustBuild(t, "int f(int x)\n{\n\tif (x)\n\t\treturn 1;\n\treturn 0;\n}\n")
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}

func TestNestedLoops(t *testing.T) {
	g := mustBuild(t, `
int f(int n)
{
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < i; j++) {
			if (j == 3)
				break;
			s += j;
		}
		if (s > 100)
			break;
	}
	return s;
}
`)
	checkWellFormed(t, g)
	// Count back edges: must be exactly 2 (one per loop).
	idx := map[*Block]int{}
	for i, b := range g.Blocks {
		idx[b] = i
	}
	// A simple DFS-based back-edge count on reducible loops: edge to a
	// block currently on the DFS stack.
	onStack := map[*Block]bool{}
	visited := map[*Block]bool{}
	back := 0
	var dfs func(*Block)
	dfs = func(b *Block) {
		visited[b] = true
		onStack[b] = true
		for _, s := range b.Term.Succs() {
			if onStack[s] {
				back++
			} else if !visited[s] {
				dfs(s)
			}
		}
		onStack[b] = false
	}
	dfs(g.Entry())
	if back != 2 {
		t.Errorf("back edges = %d, want 2", back)
	}
}
