// Package knighter's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (§5), plus ablation benchmarks for the
// design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benchmarks regenerate the corresponding result each
// iteration (on a reduced-scale corpus so the suite stays fast) and
// report domain-specific metrics alongside time/allocs.
package knighter

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/engine"
	"knighter/internal/eval"
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/minic"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/shard"
	"knighter/internal/smatch"
	"knighter/internal/store"
	"knighter/internal/synth"
)

// benchScale shrinks the corpus for the benchmark suite; the kbench
// binary runs the full-scale evaluation.
const benchScale = 0.25

var (
	benchOnce    sync.Once
	benchHarness *eval.Harness
	benchT1      *eval.Table1Result
	benchBugs    *eval.BugDetectionResult
)

func setupBench(b *testing.B) (*eval.Harness, *eval.Table1Result, *eval.BugDetectionResult) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := eval.DefaultConfig()
		cfg.CorpusScale = benchScale
		h, err := eval.NewHarness(cfg)
		if err != nil {
			panic(err)
		}
		benchHarness = h
		benchT1 = h.RunTable1()
		benchBugs = h.RunBugDetection(benchT1.Outcomes)
	})
	return benchHarness, benchT1, benchBugs
}

// BenchmarkTable1SynthesisPipeline regenerates Table 1: the multi-stage
// synthesis + refinement pipeline over the 61-commit benchmark.
func BenchmarkTable1SynthesisPipeline(b *testing.B) {
	h, _, _ := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := h.RunTable1()
		b.ReportMetric(float64(t1.ValidCount), "valid-checkers")
		b.ReportMetric(t1.AvgAttempts, "avg-attempts")
	}
}

// BenchmarkTable2BugDetection regenerates Table 2: deploying every
// plausible checker across the kernel corpus and triaging the reports.
func BenchmarkTable2BugDetection(b *testing.B) {
	h, t1, _ := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bugs := h.RunBugDetection(t1.Outcomes)
		total, confirmed, _, _, cve := bugs.Table2()
		b.ReportMetric(float64(total), "bugs-found")
		b.ReportMetric(float64(confirmed), "confirmed")
		b.ReportMetric(float64(cve), "cves")
		b.ReportMetric(100*bugs.FPRate(), "fp-rate-pct")
	}
}

// BenchmarkTable3Ablation regenerates Table 3: six pipeline/model
// configurations over the 20-commit sample.
func BenchmarkTable3Ablation(b *testing.B) {
	h, _, _ := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abl := h.RunAblation()
		b.ReportMetric(float64(abl.Rows[0].Valid), "default-valid")
		b.ReportMetric(float64(abl.Rows[1].Valid), "single-stage-valid")
		b.ReportMetric(float64(abl.Rows[len(abl.Rows)-1].Valid), "gemini-valid")
	}
}

// BenchmarkFig9aBugTypes regenerates the per-bug-type breakdown.
func BenchmarkFig9aBugTypes(b *testing.B) {
	_, _, bugs := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classes, hand, auto := bugs.Fig9a()
		if len(classes) == 0 {
			b.Fatal("no classes")
		}
		b.ReportMetric(float64(hand[classes[0]]+auto[classes[0]]), "top-class-bugs")
	}
}

// BenchmarkFig9bSubsystems regenerates the per-subsystem breakdown.
func BenchmarkFig9bSubsystems(b *testing.B) {
	_, _, bugs := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subs, counts := bugs.Fig9b()
		if len(subs) == 0 {
			b.Fatal("no subsystems")
		}
		b.ReportMetric(float64(counts[subs[0]]), "top-subsystem-bugs")
	}
}

// BenchmarkFig9cLifetimes regenerates the bug-lifetime histogram.
func BenchmarkFig9cLifetimes(b *testing.B) {
	h, _, bugs := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mean := bugs.Fig9c(func(bg kernel.SeededBug) float64 {
			return h.Corpus.NowDate.Sub(bg.Introduced).Hours() / 24 / 365.25
		})
		b.ReportMetric(mean, "mean-lifetime-years")
	}
}

// BenchmarkFig9dPerCommit regenerates the per-commit detection counts.
func BenchmarkFig9dPerCommit(b *testing.B) {
	_, _, bugs := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := bugs.Fig9d()
		five := 0
		for _, n := range counts {
			if n >= 5 {
				five++
			}
		}
		b.ReportMetric(float64(five), "commits-with-5plus")
	}
}

// BenchmarkRQ3Orthogonality runs the Smatch-analog baseline and the
// overlap analysis.
func BenchmarkRQ3Orthogonality(b *testing.B) {
	h, _, bugs := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orth, err := h.RunOrthogonality(bugs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(orth.SmatchErrors+orth.SmatchWarnings), "baseline-reports")
		b.ReportMetric(float64(orth.Overlap), "overlap")
	}
}

// BenchmarkRQ4Triage runs the triage-agent study.
func BenchmarkRQ4Triage(b *testing.B) {
	h, t1, _ := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := h.RunTriageEval(t1.Outcomes)
		b.ReportMetric(float64(tr.FN), "false-negatives")
		b.ReportMetric(float64(tr.FP), "false-positives")
	}
}

// --- ablation benchmarks for DESIGN.md design choices ---

const benchNPDSrc = `
static int probe_one(struct platform_device *pdev, char *name)
{
	struct priv *p;
	struct priv *q;
	p = devm_kzalloc(&pdev->dev, 64, GFP_KERNEL);
	q = p;
	if (unlikely(!q))
		return -ENOMEM;
	p->count = 1;
	platform_set_drvdata(pdev, p);
	return 0;
}
`

func mustChecker(b *testing.B, dsl string) *ckdsl.Compiled {
	b.Helper()
	ck, err := ckdsl.CompileSource(dsl)
	if err != nil {
		b.Fatal(err)
	}
	return ck
}

func mustFile(b *testing.B, src string) *minic.File {
	b.Helper()
	f, err := minic.ParseFile("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkAblationAliasTracking compares value-based (semantic) and
// syntactic object tracking: precision differs (the syntactic variant
// false-positives on the alias check) and so does cost.
func BenchmarkAblationAliasTracking(b *testing.B) {
	base := `
checker bench_npd {
  bugtype "Null-Pointer-Dereference"
  %s
  unwrap "unlikely" "likely"
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`
	file := mustFile(b, benchNPDSrc)
	for _, mode := range []struct{ name, directive string }{
		{"ValueTracking", "track aliases"},
		{"Syntactic", "track regions"},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ck := mustChecker(b, strings.Replace(base, "%s", mode.directive, 1))
			reports := 0
			for i := 0; i < b.N; i++ {
				res := engine.AnalyzeFile(file, engine.Options{Checkers: []checker.Checker{ck}})
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationUnwrap compares checkers with and without
// annotation-macro unwrapping on unlikely()-guarded code.
func BenchmarkAblationUnwrap(b *testing.B) {
	withUnwrap := `
checker bench_unwrap {
  bugtype "Null-Pointer-Dereference"
  track aliases
  unwrap "unlikely" "likely"
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`
	withoutUnwrap := strings.Replace(withUnwrap, "  unwrap \"unlikely\" \"likely\"\n", "", 1)
	file := mustFile(b, benchNPDSrc)
	for _, mode := range []struct{ name, dsl string }{
		{"WithUnwrap", withUnwrap},
		{"WithoutUnwrap", withoutUnwrap},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ck := mustChecker(b, mode.dsl)
			fps := 0
			for i := 0; i < b.N; i++ {
				res := engine.AnalyzeFile(file, engine.Options{Checkers: []checker.Checker{ck}})
				fps = len(res.Reports) // the code is correct: any report is an FP
			}
			b.ReportMetric(float64(fps), "false-positives")
		})
	}
}

// BenchmarkAblationPathBudget sweeps the engine's loop/path bounds: the
// analysis-time vs coverage trade-off.
func BenchmarkAblationPathBudget(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, `
checker bench_budget {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`)
	for _, budget := range []struct {
		name   string
		visits int
		paths  int
	}{
		{"Tight-1x64", 1, 64},
		{"Default-2x512", 2, 512},
		{"Wide-4x2048", 4, 2048},
	} {
		b.Run(budget.name, func(b *testing.B) {
			reports := 0
			for i := 0; i < b.N; i++ {
				res := h.Codebase.RunOne(ck, scan.Options{Engine: engine.Options{
					MaxBlockVisits: budget.visits, MaxPaths: budget.paths,
				}})
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationValidationThreshold sweeps T_valid (paper §4 default
// 50): how permissive validation affects the number of valid checkers.
func BenchmarkAblationValidationThreshold(b *testing.B) {
	h, _, _ := setupBench(b)
	for _, tv := range []int{1, 50, 1000} {
		b.Run(benchName("TValid", tv), func(b *testing.B) {
			valid := 0
			for i := 0; i < b.N; i++ {
				pipe := synth.NewPipeline(llm.NewOracle(llm.O3Mini), synth.Options{TValid: tv})
				valid = 0
				for _, c := range h.Hand.All()[:20] {
					if pipe.GenChecker(c).Valid {
						valid++
					}
				}
			}
			b.ReportMetric(float64(valid), "valid-checkers")
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + strings.TrimLeft(strings.Repeat("0", 4), "0") + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

// --- substrate micro-benchmarks ---

// BenchmarkMiniCParse measures frontend throughput on a corpus file.
func BenchmarkMiniCParse(b *testing.B) {
	h, _, _ := setupBench(b)
	src := h.Corpus.Files[0].Src
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := minic.ParseFile("bench.c", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFunction measures symbolic execution of one function
// with a live checker.
func BenchmarkEngineFunction(b *testing.B) {
	file := mustFile(b, benchNPDSrc)
	ck := mustChecker(b, `
checker bench_engine {
  bugtype "Null-Pointer-Dereference"
  track aliases
  unwrap "unlikely" "likely"
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`)
	for i := 0; i < b.N; i++ {
		engine.AnalyzeFile(file, engine.Options{Checkers: []checker.Checker{ck}})
	}
}

// BenchmarkFullCorpusScan measures a whole-corpus scan with one checker
// (the refinement loop's unit of work).
func BenchmarkFullCorpusScan(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, `
checker bench_scan {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Codebase.RunOne(ck, scan.Options{})
	}
}

const benchCacheDSL = `
checker bench_cache {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

// BenchmarkScanColdCache measures an incremental full-corpus scan
// against an empty result store: every function is a miss, so this is
// the uncached analysis cost plus cache bookkeeping.
func BenchmarkScanColdCache(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, benchCacheDSL)
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		inc := scan.NewIncremental(h.Codebase, store.NewMemory(0))
		res = inc.RunOne(ck, scan.Options{})
	}
	b.ReportMetric(float64(len(res.Reports)), "reports")
	b.ReportMetric(float64(res.CacheMisses), "cache-misses")
}

// BenchmarkScanWarmCache measures the same scan against a fully warmed
// store: no symbolic execution runs, only hashing, lookups, and the
// deterministic merge. The ratio to BenchmarkScanColdCache is the cache
// speedup the incremental scan service delivers on repeat scans (the
// refinement loop's and kserve's steady state).
func BenchmarkScanWarmCache(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, benchCacheDSL)
	inc := scan.NewIncremental(h.Codebase, store.NewMemory(0))
	inc.RunOne(ck, scan.Options{}) // warm every entry
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		res = inc.RunOne(ck, scan.Options{})
	}
	if res.CacheMisses != 0 {
		b.Fatalf("warm scan missed %d times", res.CacheMisses)
	}
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
}

// BenchmarkScanWarmInstrumented is BenchmarkScanWarmCache with the full
// observability stack kserve wires at boot: instrumented memory tier,
// instrumented coalescing wrapper, stage observer, and a per-request
// trace recording the span timeline. The delta to BenchmarkScanWarmCache
// is the total metrics + tracing overhead on the hot warm-scan path —
// the observability layer budgets it at <= ~5%.
func BenchmarkScanWarmInstrumented(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, benchCacheDSL)
	reg := obs.NewRegistry("kserve")
	st := store.Instrument(reg, "coalesced",
		store.NewCoalesced(store.Instrument(reg, "memory", store.NewMemory(0)).SampleLatency(4)),
	).SampleLatency(4)
	inc := scan.NewIncremental(h.Codebase, st)
	stageDur := reg.HistogramVec("scan_stage_duration_seconds", "bench", nil, "stage")
	inc.SetStageObserver(stageObserverFunc(func(stage string, d time.Duration) {
		stageDur.With(stage).Observe(d.Seconds())
	}))
	inc.RunOne(ck, scan.Options{}) // warm every entry
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		ctx := obs.WithTrace(context.Background(), obs.NewTrace(""))
		res = inc.RunOne(ck, scan.Options{Context: ctx})
	}
	if res.CacheMisses != 0 {
		b.Fatalf("warm scan missed %d times", res.CacheMisses)
	}
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
}

// BenchmarkScanWarmTraced is BenchmarkScanWarmCache with ONLY the
// distributed-tracing layer on: a fresh per-request trace (span tree +
// tail-sample bookkeeping) per iteration, offered to a trace store when
// it completes — no metrics registry, no instrumented tiers, isolating
// the tracing subsystem's own cost. The delta to BenchmarkScanWarmCache
// is the tracing overhead on the hot warm-scan path, budgeted at
// <= ~2%: child span ids derive from the root id and a counter (no
// rand syscall per span), spans aggregate per stage rather than per
// function, and the tail-sampling keep decision is one hash.
func BenchmarkScanWarmTraced(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, benchCacheDSL)
	inc := scan.NewIncremental(h.Codebase, store.NewMemory(0))
	ts := obs.NewTraceStore(512, 0.05, 0)
	inc.RunOne(ck, scan.Options{}) // warm every entry
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		tr := obs.NewTraceFor("kserve", "", "")
		ctx := obs.WithTrace(context.Background(), tr)
		start := time.Now()
		res = inc.RunOne(ck, scan.Options{Context: ctx})
		elapsed := time.Since(start)
		tr.CloseRoot("scan", "", elapsed)
		ts.Add(tr, obs.TraceMeta{Route: "scan", Status: 200, Elapsed: elapsed})
	}
	if res.CacheMisses != 0 {
		b.Fatalf("warm scan missed %d times", res.CacheMisses)
	}
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
}

// stageObserverFunc adapts a function to scan.StageObserver.
type stageObserverFunc func(stage string, d time.Duration)

func (f stageObserverFunc) ObserveStage(stage string, d time.Duration) { f(stage, d) }

// BenchmarkScanWarmRemote measures the fleet steady state: a fresh
// replica (empty memory tier) whose every lookup is answered by an
// in-process kcached over a warm disk tier. The gap to
// BenchmarkScanWarmCache is the network tier's round-trip cost; the gap
// to BenchmarkScanColdCache is what a second replica saves by joining a
// warm fleet instead of scanning cold.
func BenchmarkScanWarmRemote(b *testing.B) {
	h, _, _ := setupBench(b)
	ck := mustChecker(b, benchCacheDSL)
	disk, err := store.NewDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	kc := httptest.NewServer(store.NewCacheServer(disk).Handler())
	defer kc.Close()
	newReplicaStore := func() store.Store {
		remote, err := store.NewRemote(kc.URL, store.RemoteConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return store.NewCoalesced(store.NewTiered(store.NewMemory(0), remote))
	}
	// Replica A's cold scan warms the shared tier.
	scan.NewIncremental(h.Codebase, newReplicaStore()).RunOne(ck, scan.Options{})
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		// Each iteration is a brand-new replica: first scan, warm fleet.
		res = scan.NewIncremental(h.Codebase, newReplicaStore()).RunOne(ck, scan.Options{})
	}
	if res.CacheMisses != 0 {
		b.Fatalf("fleet-warm scan missed %d times", res.CacheMisses)
	}
	b.ReportMetric(float64(res.CacheHits), "remote-hits")
}

// benchDiskEntries fills a disk tier with a fleet-realistic working set
// for the Get benchmarks and returns the keys.
func benchDiskEntries(b *testing.B, d store.Store) []store.Key {
	b.Helper()
	keys := make([]store.Key, 512)
	res := &engine.Result{Paths: 3, Steps: 40}
	for i := range keys {
		keys[i] = store.Key{
			FuncHash:  store.Hash("bench-fn", string(rune(i%64))),
			CheckerFP: store.Hash("bench-ck", string(rune(i/64))),
			EngineFP:  "eng",
		}
		d.Put(context.Background(), keys[i], res)
	}
	return keys
}

// BenchmarkDiskGetSegment measures a warm Get on the segment-packed
// disk store: one in-memory index probe plus one pread on an
// already-open segment file. Its baseline is
// BenchmarkDiskGetFilePerEntry — the layout it replaced, which pays an
// open/read/close round per Get. The ISSUE 8 acceptance bar is >= 5x.
func BenchmarkDiskGetSegment(b *testing.B) {
	d, err := store.NewSegmentDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	keys := benchDiskEntries(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Get(context.Background(), keys[i%len(keys)]); !ok {
			b.Fatal("warm get missed")
		}
	}
}

// BenchmarkDiskGetFilePerEntry is the file-per-entry baseline for
// BenchmarkDiskGetSegment.
func BenchmarkDiskGetFilePerEntry(b *testing.B) {
	d, err := store.NewDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	keys := benchDiskEntries(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Get(context.Background(), keys[i%len(keys)]); !ok {
			b.Fatal("warm get missed")
		}
	}
}

// BenchmarkSmatchBaseline measures the baseline analyzer's full-corpus
// run.
func BenchmarkSmatchBaseline(b *testing.B) {
	h, _, _ := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smatch.Run(h.Corpus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckerValidation measures one differential validation (the
// inner loop of Algorithm 1's stage 4).
func BenchmarkCheckerValidation(b *testing.B) {
	h, _, _ := setupBench(b)
	c := h.Hand.ByClass(kernel.ClassNPD)[0]
	ck := mustChecker(b, `
checker bench_validate {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`)
	val := synth.NewValidator(50)
	for i := 0; i < b.N; i++ {
		val.Validate(ck, c)
	}
}

// BenchmarkScanAfterPatch measures the mutable-corpus steady state: a
// warm store, one function patched per iteration, then a full re-scan.
// Only the patched function re-analyzes; everything else is a cache
// hit, so this should sit near BenchmarkScanWarmCache, not
// BenchmarkScanColdCache.
func BenchmarkScanAfterPatch(b *testing.B) {
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: benchScale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		b.Fatal(err)
	}
	ck := mustChecker(b, benchCacheDSL)
	inc := scan.NewIncremental(cb, store.NewMemory(0))

	// Pick a file, canonicalize it, and prepare two variants of its last
	// function to alternate between (so every iteration really mutates).
	path := cb.Files()[0].Name
	if _, err := inc.Replace(path, minic.FormatFile(cb.Files()[0])); err != nil {
		b.Fatal(err)
	}
	fn := cb.Files()[0].Funcs[len(cb.Files()[0].Funcs)-1]
	orig := minic.FormatFunc(fn)
	brace := strings.Index(orig, "{")
	alt := orig[:brace+1] + "\n\tint bench_probe;" + orig[brace+1:]
	inc.RunOne(ck, scan.Options{}) // warm every entry

	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		src := alt
		if i%2 == 1 {
			src = orig
		}
		if _, err := inc.Patch(path, fn.Name, src); err != nil {
			b.Fatal(err)
		}
		res = inc.RunOne(ck, scan.Options{})
	}
	if res.CacheMisses != 1 {
		b.Fatalf("post-patch scan missed %d times, want 1", res.CacheMisses)
	}
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
}

// changesetFixture prepares K canonicalized files with two alternating
// variants of each file's last function, so every benchmark iteration
// can apply a real K-file changeset.
type changesetFixture struct {
	inc  *scan.Incremental
	orig []scan.Change
	alt  []scan.Change
}

func newChangesetFixture(b *testing.B, k int) *changesetFixture {
	b.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: benchScale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		b.Fatal(err)
	}
	fx := &changesetFixture{inc: scan.NewIncremental(cb, store.NewMemory(0))}
	for i := 0; i < k; i++ {
		path := cb.Files()[i].Name
		if _, err := fx.inc.Replace(path, minic.FormatFile(cb.Files()[i])); err != nil {
			b.Fatal(err)
		}
		fn := cb.Files()[i].Funcs[len(cb.Files()[i].Funcs)-1]
		orig := minic.FormatFunc(fn)
		brace := strings.Index(orig, "{")
		alt := orig[:brace+1] + "\n\tint bench_changeset;" + orig[brace+1:]
		fx.orig = append(fx.orig, scan.Change{Path: path, Func: fn.Name, Source: orig})
		fx.alt = append(fx.alt, scan.Change{Path: path, Func: fn.Name, Source: alt})
	}
	return fx
}

func (fx *changesetFixture) apply(b *testing.B, i int) *scan.Changeset {
	b.Helper()
	changes := fx.alt
	if i%2 == 1 {
		changes = fx.orig
	}
	cs, err := fx.inc.ApplyChangeset(changes)
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkChangesetApply measures the commit-apply path alone: a 4-file
// changeset staged, validated, swapped, and bulk-invalidated per
// iteration — the /changeset endpoint's cost with HTTP and scanning
// stripped away.
func BenchmarkChangesetApply(b *testing.B) {
	const k = 4
	fx := newChangesetFixture(b, k)
	ck := mustChecker(b, benchCacheDSL)
	fx.inc.RunOne(ck, scan.Options{}) // populate the store so invalidation has work
	b.ResetTimer()
	var cs *scan.Changeset
	for i := 0; i < b.N; i++ {
		cs = fx.apply(b, i)
	}
	b.ReportMetric(float64(cs.Changed), "changed-funcs")
	b.ReportMetric(float64(len(cs.StaleHashes)), "stale-hashes")
}

// BenchmarkScanAfterChangeset measures the commit-scale steady state: a
// warm store, one 4-file changeset per iteration, then a full re-scan.
// Misses stay confined to the four touched functions, so this should sit
// near BenchmarkScanWarmCache (plus four analyses), far from
// BenchmarkScanColdCache.
func BenchmarkScanAfterChangeset(b *testing.B) {
	const k = 4
	fx := newChangesetFixture(b, k)
	ck := mustChecker(b, benchCacheDSL)
	fx.inc.RunOne(ck, scan.Options{}) // warm every entry
	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		fx.apply(b, i)
		res = fx.inc.RunOne(ck, scan.Options{})
	}
	if res.CacheMisses != k {
		b.Fatalf("post-changeset scan missed %d times, want %d", res.CacheMisses, k)
	}
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
}

// BenchmarkScanDuringChangeset measures the MVCC acceptance criterion:
// warm scans with a changeset storm committing concurrently. Scans pin
// a snapshot at admission and never wait on the writer, so per-scan
// wall time should sit within ~10% of BenchmarkScanWarmCache (modulo
// the handful of misses each commit introduces) — not degrade to the
// drain-the-readers stalls of the old RWMutex design.
func BenchmarkScanDuringChangeset(b *testing.B) {
	const k = 4
	fx := newChangesetFixture(b, k)
	ck := mustChecker(b, benchCacheDSL)
	fx.inc.RunOne(ck, scan.Options{}) // warm every entry

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		changes := [2][]scan.Change{fx.alt, fx.orig}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fx.inc.ApplyChangeset(changes[i%2]); err != nil {
				panic(err) // benchmark fixture changes are valid by construction
			}
		}
	}()

	b.ResetTimer()
	var res *scan.Result
	for i := 0; i < b.N; i++ {
		res = fx.inc.RunOne(ck, scan.Options{})
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(res.CacheHits), "cache-hits")
	b.ReportMetric(float64(res.Generation), "generation")
}

// benchShardCodebase parses one full copy of the benchmark corpus — one
// fleet replica's memory image (sharding shares scan work, not memory).
func benchShardCodebase(b *testing.B) *scan.Codebase {
	b.Helper()
	cb, err := scan.NewCodebase(kernel.Generate(kernel.Config{Seed: 1, Scale: benchScale}))
	if err != nil {
		b.Fatal(err)
	}
	return cb
}

func benchFileIdx(b *testing.B, cb *scan.Codebase, paths []string) []int {
	b.Helper()
	idx := make([]int, len(paths))
	for i, p := range paths {
		if idx[i] = cb.FileIndex(p); idx[i] < 0 {
			b.Fatalf("unknown file %s", p)
		}
	}
	return idx
}

// BenchmarkScanColdSingleWorker is the single-host baseline for
// BenchmarkScanShardedFanout: a cold full-corpus scan with ONE analysis
// worker — the same per-host worker budget each shard gets, so the
// ratio between the two benchmarks isolates what the fan-out adds
// (a second host's worth of compute) rather than comparing different
// levels of local parallelism.
func BenchmarkScanColdSingleWorker(b *testing.B) {
	cb := benchShardCodebase(b)
	ck := mustChecker(b, benchCacheDSL)
	all := make([]int, len(cb.Files()))
	for i := range all {
		all[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := scan.NewIncremental(cb, store.NewMemory(0)).
			RunFiles(all, []checker.Checker{ck}, scan.Options{Workers: 1})
		if res.CacheHits != 0 {
			b.Fatal("cold scan hit the cache")
		}
	}
}

// BenchmarkScanShardedFanout measures the tentpole: a cold full-corpus
// scan scattered across TWO in-process shard owners (the coordinator's
// local partition plus one peer behind real HTTP) and merged. Each host
// runs one analysis worker, so against BenchmarkScanColdSingleWorker
// this is the horizontal-scaling claim: >= 1.5x faster with
// byte-identical output (asserted here before timing starts).
//
// The speedup needs GOMAXPROCS >= 2 — both "hosts" live in this
// process, so each needs its own core to scan concurrently, exactly as
// two real machines would. On a single-core runner the two benchmarks
// converge and the delta IS the scatter tax (HTTP + JSON + merge),
// which is worth watching in its own right; the byte-identity gate
// runs regardless.
func BenchmarkScanShardedFanout(b *testing.B) {
	cbA := benchShardCodebase(b) // coordinator replica
	cbB := benchShardCodebase(b) // peer shard owner
	ck := mustChecker(b, benchCacheDSL)
	cks := []checker.Checker{ck}
	paths := make([]string, len(cbA.Files()))
	for i, f := range cbA.Files() {
		paths[i] = f.Name
	}
	ring := shard.Ring{Count: 2}

	// Per-iteration cold stores, swapped in behind a mutex so the peer
	// handler (a different goroutine) reads the current one.
	var mu sync.Mutex
	var incA, incB *scan.Incremental
	swap := func() {
		mu.Lock()
		incA = scan.NewIncremental(cbA, store.NewMemory(0))
		incB = scan.NewIncremental(cbB, store.NewMemory(0))
		mu.Unlock()
	}
	cur := func() (*scan.Incremental, *scan.Incremental) {
		mu.Lock()
		defer mu.Unlock()
		return incA, incB
	}
	swap()

	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.ScanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_, inc := cur()
		res := inc.RunFiles(benchFileIdx(b, cbB, req.Files), cks,
			scan.Options{Workers: 1, Context: r.Context()})
		json.NewEncoder(w).Encode(api.ScanResult("bench_cache", res, false, true))
	}))
	defer peer.Close()

	sc := shard.NewScatter(shard.Config{Ring: ring, Self: 0, Peers: []string{"", peer.URL}}, shard.Hooks{})
	job := shard.ScanJob{
		Req:   api.ScanRequest{Checker: benchCacheDSL},
		Name:  "bench_cache",
		Paths: paths,
		Local: func(ctx context.Context, files []string) ([]*api.ScanResponse, error) {
			inc, _ := cur()
			res := inc.RunFiles(benchFileIdx(b, cbA, files), cks,
				scan.Options{Workers: 1, Context: ctx})
			return []*api.ScanResponse{api.ScanResult("bench_cache", res, false, true)}, nil
		},
	}

	// Byte-identity gate: the merged scatter must equal the single-host
	// scan before its speed means anything.
	single := scan.NewIncremental(cbA, store.NewMemory(0)).
		RunFiles(benchFileIdx(b, cbA, paths), cks, scan.Options{Workers: 1})
	want := api.ScanResult("bench_cache", single, false, false)
	merged, info, err := sc.Scan(context.Background(), job)
	if err != nil {
		b.Fatal(err)
	}
	if info.Degraded != 0 {
		b.Fatalf("healthy fleet degraded %d partitions", info.Degraded)
	}
	wantJSON, _ := json.Marshal(want.Reports)
	gotJSON, _ := json.Marshal(merged.Reports)
	if string(wantJSON) != string(gotJSON) ||
		merged.FilesScanned != want.FilesScanned || merged.FuncsScanned != want.FuncsScanned {
		b.Fatalf("sharded scan diverged from single host:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swap()
		if _, _, err := sc.Scan(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(merged.Reports)), "reports")
}

// BenchmarkBatchScanWarm measures the kserve /batch steady state: four
// checker revisions scheduled over a fully warmed shared store.
func BenchmarkBatchScanWarm(b *testing.B) {
	h, _, _ := setupBench(b)
	var cks []checker.Checker
	for _, name := range []string{"rev_a", "rev_b", "rev_c", "rev_d"} {
		cks = append(cks, mustChecker(b, strings.ReplaceAll(benchCacheDSL, "bench_cache", name)))
	}
	inc := scan.NewIncremental(h.Codebase, store.NewMemory(0))
	inc.RunBatch(cks, nil, scan.Options{}, 0) // warm all four
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := inc.RunBatch(cks, nil, scan.Options{}, 0)
		for _, res := range results {
			if res.CacheMisses != 0 {
				b.Fatalf("warm batch missed %d times", res.CacheMisses)
			}
		}
	}
}
