// Command kbench regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	kbench -all              # every experiment (default)
//	kbench -table 1|2|3      # a specific table
//	kbench -fig 9            # the Figure 9 panels (with Table 2)
//	kbench -rq 1|2|3|4       # a specific research question
//	kbench -scale 0.25       # shrink the corpus for quick runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"knighter/internal/eval"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	table := flag.Int("table", 0, "regenerate table 1, 2, or 3")
	fig := flag.Int("fig", 0, "regenerate figure 9")
	rq := flag.Int("rq", 0, "run research question 1-4")
	scale := flag.Float64("scale", 1.0, "corpus scale factor")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 && *rq == 0 {
		*all = true
	}

	cfg := eval.DefaultConfig()
	cfg.CorpusScale = *scale
	cfg.CorpusSeed = *seed
	start := time.Now()
	h, err := eval.NewHarness(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbench:", err)
		os.Exit(1)
	}
	fmt.Printf("corpus: %d files, %d seeded bugs, %d bait functions (built in %s)\n\n",
		len(h.Corpus.Files), len(h.Corpus.Bugs), len(h.Corpus.Baits), time.Since(start).Round(time.Millisecond))

	needT1 := *all || *table == 1 || *table == 2 || *fig == 9 || *rq == 1 || *rq == 2 || *rq == 3 || *rq == 4
	var t1 *eval.Table1Result
	if needT1 {
		t1 = h.RunTable1()
	}
	if *all || *table == 1 || *rq == 1 {
		fmt.Println(t1.Render())
	}

	var bugs *eval.BugDetectionResult
	if *all || *table == 2 || *fig == 9 || *rq == 2 || *rq == 3 {
		bugs = h.RunBugDetection(t1.Outcomes)
		fmt.Println(bugs.Render(h.Corpus))
	}
	if *all || *rq == 3 {
		orth, err := h.RunOrthogonality(bugs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kbench:", err)
			os.Exit(1)
		}
		fmt.Println(orth.Render())
	}
	if *all || *rq == 4 {
		fmt.Println(h.RunTriageEval(t1.Outcomes).Render())
	}
	if *all || *table == 3 {
		fmt.Println(h.RunAblation().Render())
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
