// Command kscan runs checker-DSL programs over code: either the built-in
// synthetic kernel corpus or mini-C files on disk.
//
// Usage:
//
//	kscan -checker npd.ck                 # scan the synthetic corpus
//	kscan -checker npd.ck file.c ...      # scan specific files
//	kscan -checker npd.ck -triage         # label reports with the triage agent
//	kscan -smatch                         # run the baseline analyzer instead
package main

import (
	"flag"
	"fmt"
	"os"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/smatch"
	"knighter/internal/triage"
)

func main() {
	checkerPath := flag.String("checker", "", "path to a checker DSL file")
	runSmatch := flag.Bool("smatch", false, "run the Smatch-analog baseline instead of a checker")
	doTriage := flag.Bool("triage", false, "classify reports with the triage agent")
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	maxReports := flag.Int("max-reports", 0, "cap collected reports (0 = unlimited)")
	flag.Parse()

	if *runSmatch {
		corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})
		res, err := smatch.Run(corpus)
		if err != nil {
			fatal(err)
		}
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		fmt.Printf("\n%d errors, %d warnings\n", res.Errors(), res.Warnings())
		return
	}

	if *checkerPath == "" {
		fatal(fmt.Errorf("missing -checker (or -smatch)"))
	}
	src, err := os.ReadFile(*checkerPath)
	if err != nil {
		fatal(err)
	}
	ck, err := ckdsl.CompileSource(string(src))
	if err != nil {
		fatal(fmt.Errorf("checker does not compile: %w", err))
	}

	var reports []*checker.Report
	var agent *triage.Agent
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			f, err := minic.ParseFile(path, string(data))
			if err != nil {
				fatal(err)
			}
			res := engine.AnalyzeFile(f, engine.Options{Checkers: []checker.Checker{ck}})
			reports = append(reports, res.Reports...)
			for _, re := range res.RuntimeErrs {
				fmt.Fprintln(os.Stderr, "kscan:", re.Error())
			}
		}
	} else {
		corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})
		cb, err := scan.NewCodebase(corpus)
		if err != nil {
			fatal(err)
		}
		res := cb.RunOne(ck, scan.Options{MaxReports: *maxReports})
		reports = res.Reports
		if *doTriage {
			agent = triage.NewAgent(corpus)
		}
		fmt.Fprintf(os.Stderr, "scanned %d files / %d functions\n", res.FilesScanned, res.FuncsScanned)
	}

	bugs := 0
	for _, r := range reports {
		if agent != nil {
			v := agent.Classify(r, 0)
			label := "not-a-bug"
			if v.Bug {
				label = "bug"
				bugs++
			}
			fmt.Printf("[%s] %s\n", label, r)
		} else {
			fmt.Println(r)
		}
	}
	if agent != nil {
		fmt.Fprintf(os.Stderr, "%d reports, %d labeled bug\n", len(reports), bugs)
	} else {
		fmt.Fprintf(os.Stderr, "%d reports\n", len(reports))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kscan:", err)
	os.Exit(1)
}
