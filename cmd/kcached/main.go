// Command kcached is the fleet cache daemon: it serves the
// content-addressed analysis-result store over HTTP so a fleet of kserve
// replicas shares one warm cache. A replica started with
// -cache-remote=http://kcached-host:8322 composes this daemon between
// its in-memory tier and its (optional) local disk tier; the second
// replica's first scan of a corpus its sibling already analyzed is then
// answered from here instead of recomputed.
//
// The daemon is deliberately nothing more than the existing store.Disk
// tier behind the store.CacheServer protocol: entries are one JSON file
// each, sharded by function hash, and survive restarts. Consistency
// needs no coordination — keys are content addresses, so an entry can
// only ever be correct for the inputs that produced it; invalidation
// (POST /invalidate, issued by replicas applying changesets) is garbage
// collection of unreachable keys, not a correctness mechanism.
//
// Usage:
//
//	kcached -cache-dir /var/cache/kcached
//	kcached -addr :8322 -cache-ttl 72h -cache-max-bytes 1073741824
//	kcached -cache-dir /var/cache/kcached -pprof-addr localhost:6061
//
// Endpoints:
//
//	GET  /entry/{id}?fh=&ck=&eng=   cached result (200) or miss (404)
//	PUT  /entry/{id}?fh=&ck=&eng=   store a result (204)
//	POST /invalidate                {"func_hashes": [...]}
//	GET  /stats                     store + request counters
//	GET  /metrics                   Prometheus text exposition
//	GET  /healthz                   liveness
//
// Every request is access-logged with its X-Trace-Id (when the client —
// a kserve replica's remote tier — sent one), so one trace id greps
// across both daemons' logs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knighter/internal/obs"
	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8322", "listen address")
	cacheDir := flag.String("cache-dir", "", "cache directory (required)")
	cacheTTL := flag.Duration("cache-ttl", 0, "drop entries older than this (0 = keep forever)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "byte budget; GC evicts oldest-first past it (0 = unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "optional side listen address for net/http/pprof (e.g. localhost:6061); never exposed on the main port")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		v, gv := obs.BuildVersion()
		fmt.Printf("kcached %s (%s)\n", v, gv)
		return
	}
	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "kcached: -cache-dir is required")
		os.Exit(2)
	}
	var opts []store.DiskOption
	if *cacheMaxBytes > 0 {
		opts = append(opts, store.DiskMaxBytes(*cacheMaxBytes))
	}
	disk, err := store.NewDisk(*cacheDir, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcached:", err)
		os.Exit(1)
	}
	// The daemon's store is the instrumented disk tier: kcached's
	// /metrics carries the same store_* families as kserve's, under the
	// kcached namespace with tier="disk".
	reg := obs.NewRegistry("kcached")
	gcSweep := reg.Histogram("gc_sweep_duration_seconds",
		"Wall time of one GC sweep over the backing store.", nil)
	cs := store.NewCacheServer(store.Instrument(reg, "disk", disk))
	cs.Register(reg)
	if *cacheTTL > 0 || *cacheMaxBytes > 0 {
		disk.StartGCLoop(*cacheTTL, func(n int, dur time.Duration, err error) {
			gcSweep.Observe(dur.Seconds())
			if err != nil {
				log.Printf("kcached: GC: %v", err)
			} else if n > 0 {
				log.Printf("kcached: GC removed %d entries in %s", n, dur)
			}
		})
	}
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	// Graceful shutdown: SIGTERM/SIGINT stops the listener, in-flight
	// entry requests drain (bounded), and the final store shape goes to
	// the log — a fleet roll never truncates a PUT mid-body.
	hs := &http.Server{Addr: *addr, Handler: store.AccessLog(log.Default(), cs.Handler())}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	st := disk.Stats()
	version, goVersion := obs.BuildVersion()
	log.Printf("kcached: %s (%s) serving %s (%d entries, %d bytes) on %s",
		version, goVersion, *cacheDir, st.Entries, st.Bytes, *addr)
	select {
	case err := <-errCh:
		log.Fatal("kcached: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("kcached: shutdown signal; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("kcached: shutdown: %v", err)
		}
		st := disk.Stats()
		log.Printf("kcached: final stats: entries=%d bytes=%d hits=%d misses=%d hit_rate=%.3f",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.HitRate())
	}
}

// startPprof serves net/http/pprof on its own listener — never the main
// port, so profiling endpoints are reachable only where the operator
// points them (typically localhost).
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("kcached: pprof on %s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("kcached: pprof: %v", err)
		}
	}()
}
